(* Tests for the generic MCTS planner on small hand-made games where the
   optimum is known. *)

(* A depth-2 tree game: two actions at the root, two at each child.
   Terminal rewards are fixed; the "network" returns uniform priors and a
   configurable value estimate. *)

type toy = { path : int list }

let toy_game ?(value_est = fun _ -> 0.0) rewards =
  {
    Mcts.num_actions = 2;
    is_terminal = (fun s -> List.length s.path >= 2);
    terminal_value =
      (fun s ->
        match s.path with
        | [ b; a ] -> rewards.(a).(b)
        | _ -> invalid_arg "toy terminal");
    legal = (fun _ _ -> true);
    apply = (fun s a -> { path = a :: s.path });
    evaluate = (fun s -> ([| 0.5; 0.5 |], value_est s));
    batched_evaluate = None;
  }

let test_finds_best_leaf () =
  (* best leaf is (1, 0) with reward 1.0 *)
  let rewards = [| [| -1.0; -0.5 |]; [| 1.0; -1.0 |] |] in
  let game = toy_game rewards in
  let t = Mcts.create { Mcts.default_config with k = 200 } game { path = [] } in
  Mcts.run t;
  let p = Mcts.policy t in
  Alcotest.(check bool) "prefers action 1" true (p.(1) > p.(0));
  Mcts.advance t 1;
  Mcts.run t;
  let p2 = Mcts.policy t in
  Alcotest.(check bool) "then prefers action 0" true (p2.(0) > p2.(1))

let test_policy_normalized () =
  let rewards = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |] |] in
  let t =
    Mcts.create { Mcts.default_config with k = 50 } (toy_game rewards)
      { path = [] }
  in
  Mcts.run t;
  let p = Mcts.policy t in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (p.(0) +. p.(1))

let test_policy_before_run_uniform () =
  let rewards = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let t = Mcts.create Mcts.default_config (toy_game rewards) { path = [] } in
  let p = Mcts.policy t in
  Alcotest.(check (float 1e-9)) "uniform over legal" 0.5 p.(0)

let test_legality_respected () =
  let rewards = [| [| -1.0; -1.0 |]; [| 1.0; 1.0 |] |] in
  let game = { (toy_game rewards) with Mcts.legal = (fun s a -> not (s.path = [] && a = 1)) } in
  let t = Mcts.create { Mcts.default_config with k = 100 } game { path = [] } in
  Mcts.run t;
  let counts = Mcts.visit_counts t in
  Alcotest.(check int) "illegal action never visited" 0 counts.(1)

let test_advance_retreat () =
  let rewards = [| [| 0.5; 0.1 |]; [| 0.2; 0.9 |] |] in
  let t =
    Mcts.create { Mcts.default_config with k = 50 } (toy_game rewards)
      { path = [] }
  in
  Mcts.run t;
  Alcotest.(check int) "depth 0" 0 (Mcts.depth t);
  Mcts.advance t 0;
  Alcotest.(check int) "depth 1" 1 (Mcts.depth t);
  Alcotest.(check (list int)) "state advanced" [ 0 ]
    (Mcts.root_state t).path;
  Mcts.retreat t;
  Alcotest.(check int) "depth 0 again" 0 (Mcts.depth t);
  Alcotest.(check (list int)) "state restored" [] (Mcts.root_state t).path;
  Alcotest.check_raises "retreat at initial root"
    (Invalid_argument "Mcts.retreat: at the initial root") (fun () ->
      Mcts.retreat t)

let test_subtree_reuse () =
  let rewards = [| [| 0.5; 0.1 |]; [| 0.2; 0.9 |] |] in
  let t =
    Mcts.create { Mcts.default_config with k = 100 } (toy_game rewards)
      { path = [] }
  in
  Mcts.run t;
  let created_before = Mcts.nodes_created t in
  Mcts.advance t 1;
  (* the subtree under action 1 was fully enumerated (only 2 leaves),
     so further simulations hit terminals and create nothing *)
  Mcts.run t;
  Alcotest.(check int) "no new nodes for an enumerated subtree"
    created_before (Mcts.nodes_created t)

let test_nodes_created_counts () =
  let rewards = [| [| 0.5; 0.1 |]; [| 0.2; 0.9 |] |] in
  let t =
    Mcts.create { Mcts.default_config with k = 3 } (toy_game rewards)
      { path = [] }
  in
  Alcotest.(check int) "root counted" 1 (Mcts.nodes_created t);
  Mcts.run t;
  Alcotest.(check bool) "grew" true (Mcts.nodes_created t > 1);
  (* the whole game tree has 1 + 2 + 4 = 7 states *)
  Mcts.run_n t 100;
  Alcotest.(check bool) "bounded by total states" true
    (Mcts.nodes_created t <= 7)

let test_q_converges_to_terminal_reward () =
  (* one action, one step: Q(root, 0) must converge to the true reward *)
  let game =
    {
      Mcts.num_actions = 1;
      is_terminal = (fun s -> s.path <> []);
      terminal_value = (fun _ -> 0.7);
      legal = (fun _ _ -> true);
      apply = (fun s a -> { path = a :: s.path });
      evaluate = (fun _ -> ([| 1.0 |], 0.0));
      batched_evaluate = None;
    }
  in
  let t = Mcts.create { Mcts.default_config with k = 20 } game { path = [] } in
  Mcts.run t;
  Alcotest.(check (float 1e-6)) "root value = reward" 0.7 (Mcts.root_value t)

let test_value_estimate_guides_search () =
  (* terminal rewards identical, but the value net scores subtree 0 higher;
     with few simulations the search should visit it more *)
  let rewards = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let game =
    toy_game ~value_est:(fun s -> if s.path = [ 0 ] then 0.9 else -0.9) rewards
  in
  let t = Mcts.create { Mcts.default_config with k = 12 } game { path = [] } in
  Mcts.run t;
  let c = Mcts.visit_counts t in
  Alcotest.(check bool) "value-favored branch visited more" true (c.(0) > c.(1))

let test_root_noise () =
  let rewards = [| [| 0.5; 0.1 |]; [| 0.2; 0.9 |] |] in
  let game = toy_game rewards in
  let t = Mcts.create { Mcts.default_config with k = 1 } game { path = [] } in
  Mcts.run t;
  (* pure noise (epsilon = 1) must still leave a distribution over legal
     actions, and keep the search functional *)
  Mcts.add_root_noise ~rng:(Random.State.make [| 5 |]) ~epsilon:1.0 ~alpha:0.5 t;
  Mcts.run_n t 100;
  let p = Mcts.policy t in
  Alcotest.(check (float 1e-6)) "policy still normalized" 1.0 (p.(0) +. p.(1));
  (* with a legality mask, noise must not leak onto illegal actions *)
  let game1 = { game with Mcts.legal = (fun _ a -> a = 0) } in
  let t1 = Mcts.create { Mcts.default_config with k = 1 } game1 { path = [] } in
  Mcts.run t1;
  Mcts.add_root_noise ~rng:(Random.State.make [| 6 |]) ~epsilon:1.0 ~alpha:0.5 t1;
  Mcts.run_n t1 50;
  Alcotest.(check int) "illegal stays unvisited" 0 (Mcts.visit_counts t1).(1)

let test_illegal_advance_rejected () =
  let rewards = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let game = { (toy_game rewards) with Mcts.legal = (fun _ a -> a = 0) } in
  let t = Mcts.create Mcts.default_config game { path = [] } in
  Alcotest.check_raises "illegal advance"
    (Invalid_argument "Mcts.advance: illegal action") (fun () ->
      Mcts.advance t 1)

(* ------------------------------------------------------------------ *)
(* Batched leaf evaluation (virtual-loss waves) *)

(* route the same scalar evaluator through batched_evaluate *)
let with_batched game =
  {
    game with
    Mcts.batched_evaluate =
      Some (fun states -> Array.of_list (List.map game.Mcts.evaluate states));
  }

let test_wave_batch1_identical_toy () =
  (* batch = 1 routed through batched_evaluate must reproduce the scalar
     search node for node: identical visits, Q values, policy, and node
     count — exactly, not approximately *)
  let rewards = [| [| -1.0; 0.3 |]; [| 0.8; -0.2 |] |] in
  List.iter
    (fun k ->
      let cfg = { Mcts.default_config with k; check = true } in
      let ts = Mcts.create cfg (toy_game rewards) { path = [] } in
      let tb = Mcts.create cfg (with_batched (toy_game rewards)) { path = [] } in
      Mcts.run ts;
      Mcts.run tb;
      Alcotest.(check (array int))
        (Printf.sprintf "visits k=%d" k)
        (Mcts.visit_counts ts) (Mcts.visit_counts tb);
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "Q k=%d" k)
        (Mcts.root_qs ts) (Mcts.root_qs tb);
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "policy k=%d" k)
        (Mcts.policy ts) (Mcts.policy tb);
      Alcotest.(check int)
        (Printf.sprintf "nodes k=%d" k)
        (Mcts.nodes_created ts) (Mcts.nodes_created tb))
    [ 1; 7; 50; 200 ]

let test_wave_batch_gt1_toy () =
  (* larger waves remain a well-formed search: invariants hold
     (check = true), the policy stays normalized, the best arm is still
     found, and the simulation budget is spent (the only descents that do
     not touch a root edge are the ones before the root is expanded — at
     most one wave's worth) *)
  let rewards = [| [| -1.0; -0.5 |]; [| 1.0; -1.0 |] |] in
  List.iter
    (fun batch ->
      let cfg = { Mcts.default_config with k = 200; batch; check = true } in
      let t = Mcts.create cfg (with_batched (toy_game rewards)) { path = [] } in
      Mcts.run t;
      let p = Mcts.policy t in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "normalized batch=%d" batch)
        1.0
        (p.(0) +. p.(1));
      Alcotest.(check bool)
        (Printf.sprintf "best arm batch=%d" batch)
        true
        (p.(1) > p.(0));
      let visits = Array.fold_left ( + ) 0 (Mcts.visit_counts t) in
      Alcotest.(check bool)
        (Printf.sprintf "budget spent batch=%d (%d visits)" batch visits)
        true
        (visits >= 200 - batch && visits < 200))
    [ 2; 8; 64 ]

let test_wave_net_batch1_identical () =
  (* the real PBQP game: scalar Pvnet.predict evaluation vs the batched
     predict_batch path must give bit-identical search statistics *)
  let m = 3 in
  let net =
    Nn.Pvnet.create
      ~rng:(Random.State.make [| 5 |])
      { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
        gcn_layers = 1 }
  in
  let g, _ =
    Pbqp.Generate.planted
      ~rng:(Random.State.make [| 21 |])
      { Pbqp.Generate.default with n = 8; m; p_edge = 0.4; p_inf = 0.3;
        zero_inf = true; cost_max = 10.0 }
  in
  let st = Core.State.of_graph g in
  let scalar =
    Core.Game.make ~batched:false ~net ~mode:Core.Game.Feasibility ~m ()
  in
  let batched = Core.Game.make ~net ~mode:Core.Game.Feasibility ~m () in
  let cfg = { Mcts.default_config with k = 60; check = true } in
  let ts = Mcts.create cfg scalar st in
  let tb = Mcts.create cfg batched st in
  Mcts.run ts;
  Mcts.run tb;
  Alcotest.(check (array int)) "visits" (Mcts.visit_counts ts)
    (Mcts.visit_counts tb);
  Alcotest.(check (array (float 0.0))) "Q" (Mcts.root_qs ts) (Mcts.root_qs tb);
  Alcotest.(check (array (float 0.0))) "policy" (Mcts.policy ts)
    (Mcts.policy tb)

let test_wave_batch_gt1_certified () =
  (* batch > 1 changes which leaves get explored, so no node-for-node
     claim — but solutions on guaranteed-solvable planted ATE instances
     must still exist and certify against the original graph *)
  let m = 3 in
  let net =
    Nn.Pvnet.create
      ~rng:(Random.State.make [| 9 |])
      { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
        gcn_layers = 1 }
  in
  let rng = Random.State.make [| 77 |] in
  for trial = 1 to 4 do
    let g, _ =
      Pbqp.Generate.planted ~rng
        { Pbqp.Generate.default with n = 8; m; p_edge = 0.4; p_inf = 0.3;
          zero_inf = true; cost_max = 10.0 }
    in
    let sol, _ =
      Core.Solver.solve_feasible ~net
        ~mcts:{ Mcts.default_config with k = 40; batch = 8 }
        g
    in
    match sol with
    | None -> Alcotest.failf "trial %d: no solution on a planted instance" trial
    | Some s ->
        let findings = Check.Certify.solution g s in
        if Check.Diag.has_errors findings then
          Alcotest.failf "trial %d: certification failed:\n%s" trial
            (Check.Diag.to_string (Check.Diag.errors_only findings))
  done

let () =
  Alcotest.run "mcts"
    [
      ( "search",
        [
          Alcotest.test_case "finds best leaf" `Quick test_finds_best_leaf;
          Alcotest.test_case "policy normalized" `Quick test_policy_normalized;
          Alcotest.test_case "uniform before run" `Quick
            test_policy_before_run_uniform;
          Alcotest.test_case "legality respected" `Quick test_legality_respected;
          Alcotest.test_case "Q converges to reward" `Quick
            test_q_converges_to_terminal_reward;
          Alcotest.test_case "value estimates guide search" `Quick
            test_value_estimate_guides_search;
          Alcotest.test_case "dirichlet root noise" `Quick test_root_noise;
        ] );
      ( "tree",
        [
          Alcotest.test_case "advance/retreat" `Quick test_advance_retreat;
          Alcotest.test_case "subtree reuse" `Quick test_subtree_reuse;
          Alcotest.test_case "node counter" `Quick test_nodes_created_counts;
          Alcotest.test_case "illegal advance rejected" `Quick
            test_illegal_advance_rejected;
        ] );
      ( "batched",
        [
          Alcotest.test_case "batch=1 wave = scalar (toy)" `Quick
            test_wave_batch1_identical_toy;
          Alcotest.test_case "batch>1 waves well-formed (toy)" `Quick
            test_wave_batch_gt1_toy;
          Alcotest.test_case "batch=1 wave = scalar (pvnet game)" `Quick
            test_wave_net_batch1_identical;
          Alcotest.test_case "batch>1 solutions certified" `Quick
            test_wave_batch_gt1_certified;
        ] );
    ]
