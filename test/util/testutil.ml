(* Shared helpers for the test suites. *)

open Pbqp

let rng seed = Random.State.make [| seed |]

(* Alcotest testables *)

let cost = Alcotest.testable Cost.pp (fun a b -> Cost.approx_equal a b)
let cost_exact = Alcotest.testable Cost.pp Cost.equal
let vec = Alcotest.testable Vec.pp (Vec.approx_equal ?eps:None)
let mat = Alcotest.testable Mat.pp (Mat.approx_equal ?eps:None)
let solution = Alcotest.testable Solution.pp Solution.equal
let graph = Alcotest.testable Graph.pp (Graph.approx_equal ?eps:None)

(* Random graph generators for qcheck: generate a seed + a config, rebuild
   deterministically so shrinking stays meaningful. *)

type graph_spec = {
  seed : int;
  n : int;
  m : int;
  p_edge : float;
  p_inf : float;
  zero_inf : bool;
}

let build_graph spec =
  Generate.erdos_renyi ~rng:(rng spec.seed)
    {
      Generate.n = spec.n;
      m = spec.m;
      p_edge = spec.p_edge;
      p_inf = spec.p_inf;
      cost_max = 10.;
      zero_inf = spec.zero_inf;
      min_liberty = 1;
    }

let graph_spec_gen ?(zero_inf = false) ?(nmax = 8) ?(mmax = 4) ?(p_inf = 0.15)
    () =
  let open QCheck.Gen in
  let* seed = int_bound 1_000_000 in
  let* n = int_range 1 nmax in
  let* m = int_range 1 mmax in
  let* p_edge = float_range 0.0 1.0 in
  pure { seed; n; m; p_edge; p_inf; zero_inf }

let arb_graph_spec ?zero_inf ?nmax ?mmax ?p_inf () =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "{seed=%d; n=%d; m=%d; p_edge=%.3f; p_inf=%.3f; zero_inf=%b}"
        s.seed s.n s.m s.p_edge s.p_inf s.zero_inf)
    (graph_spec_gen ?zero_inf ?nmax ?mmax ?p_inf ())

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Bitwise equality over flat (floatarray) tensor storage — approx
   comparisons would hide accumulation-order bugs in the GEMM kernels. *)

let bits_eq (x : float) (y : float) =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let fa_bits_equal a b =
  Float.Array.length a = Float.Array.length b
  &&
  let ok = ref true in
  Float.Array.iteri
    (fun i x -> if not (bits_eq x (Float.Array.get b i)) then ok := false)
    a;
  !ok

let tensor_bits_equal a b =
  Tensor.shape a = Tensor.shape b
  && fa_bits_equal (Tensor.data a) (Tensor.data b)
