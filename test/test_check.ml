(* Tests for the lib/check verification layer itself: generated instances
   pass well-formedness, solver solutions pass certification, corrupted
   solutions and malformed inputs are rejected, and the cross-layer
   checkers agree with the repo's original fail-fast validators. *)

open Testutil
open Pbqp

let structural_only =
  List.filter (fun f ->
      not (String.starts_with ~prefix:"pbqp-arc" f.Check.Diag.rule))

let no_errors name findings =
  match Check.Diag.errors_only findings with
  | [] -> true
  | errs ->
      QCheck.Test.fail_reportf "%s:@.%s" name (Check.Diag.to_string errs)

(* ------------------------------------------------------------------ *)
(* Diag *)

let test_diag_basics () =
  let c = Check.Diag.collector () in
  Check.Diag.errorf c "rule-a" (Check.Diag.Vertex 3) "broken %d" 7;
  Check.Diag.warningf c "rule-b" Check.Diag.Global "odd";
  Check.Diag.infof c "rule-c" (Check.Diag.Line 2) "fyi";
  let fs = Check.Diag.report c in
  Alcotest.(check int) "count" 3 (List.length fs);
  Alcotest.(check int) "errors" 1 (Check.Diag.count Check.Diag.Error fs);
  Alcotest.(check bool) "has_errors" true (Check.Diag.has_errors fs);
  Alcotest.(check int) "exit" 1 (Check.Diag.exit_code fs);
  let first = List.hd fs in
  Alcotest.(check string)
    "render" "error[rule-a] v3: broken 7"
    (Format.asprintf "%a" Check.Diag.pp_finding first);
  (* severity sort puts the error first even after reordering *)
  let sorted = Check.Diag.by_severity (List.rev fs) in
  Alcotest.(check bool)
    "sorted" true
    ((List.hd sorted).Check.Diag.severity = Check.Diag.Error)

(* ------------------------------------------------------------------ *)
(* Invariants: positive and negative *)

let prop_generated_wellformed =
  qtest ~count:150 "generated graphs are structurally well-formed"
    (arb_graph_spec ()) (fun spec ->
      let g = build_graph spec in
      no_errors "wellformed" (structural_only (Check.Invariants.graph g)))

let prop_planted_wellformed =
  qtest ~count:100 "planted graphs fully well-formed (arc-consistent)"
    (arb_graph_spec ()) (fun spec ->
      let g, _ =
        Generate.planted ~rng:(rng spec.seed)
          {
            Generate.n = spec.n;
            m = spec.m;
            p_edge = spec.p_edge;
            p_inf = spec.p_inf;
            cost_max = 10.;
            zero_inf = spec.zero_inf;
            min_liberty = 1;
          }
      in
      no_errors "planted" (Check.Invariants.graph g))

let prop_reduced_wellformed =
  qtest ~count:100 "R0/R1/R2-reduced residuals stay well-formed"
    (arb_graph_spec ()) (fun spec ->
      let g = build_graph spec in
      let residual, _ = Solvers.Scholz.reduce_exact g in
      (* exact reduction of an unsolvable instance can leave a vertex with
         every color infinite; that is the checker correctly detecting
         infeasibility, not a malformed residual *)
      let solvable =
        List.filter
          (fun f -> f.Check.Diag.rule <> "pbqp-no-color")
          (structural_only (Check.Invariants.graph residual))
      in
      no_errors "residual" solvable)

let test_rejects_no_color () =
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| Cost.inf; Cost.inf |]);
  Alcotest.(check bool)
    "rejected" true
    (Check.Diag.has_errors (Check.Invariants.graph g))

let test_rejects_parse_error () =
  let findings = Check.Invariants.lint_string "pbqp 2 2\nv 0 1.0\n" in
  Alcotest.(check bool) "rejected" true (Check.Diag.has_errors findings);
  (* the line number is recovered into the location *)
  match findings with
  | [ f ] ->
      Alcotest.(check string)
        "located" "line 2"
        (Check.Diag.location_string f.Check.Diag.location)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_io_roundtrip_lints () =
  let g = Generate.fig2 () in
  let findings = Check.Invariants.lint_string (Io.to_string g) in
  Alcotest.(check bool)
    "roundtrip clean" false
    (Check.Diag.has_errors findings)

(* ------------------------------------------------------------------ *)
(* Certify *)

let prop_recompute_matches_solution_cost =
  qtest ~count:150 "recompute agrees with Solution.cost"
    (arb_graph_spec ()) (fun spec ->
      let g = build_graph spec in
      match fst (Solvers.Brute.solve ~max_states:100_000 g) with
      | None -> true
      | Some (sol, _) ->
          Cost.approx_equal ~eps:1e-9
            (Check.Certify.recompute g sol)
            (Solution.cost g sol))

let prop_classic_solvers_certify =
  qtest ~count:60 "all classic solvers certify on generated graphs"
    (arb_graph_spec ~nmax:7 ()) (fun spec ->
      let g = build_graph spec in
      no_errors "classic" (Check.Certify.classic_findings g))

let prop_corrupted_solution_rejected =
  qtest ~count:60 "corrupting an optimal solution is caught"
    (arb_graph_spec ~nmax:7 ()) (fun spec ->
      let g = build_graph spec in
      match fst (Solvers.Brute.solve ~max_states:100_000 g) with
      | None -> true
      | Some (sol, cost) ->
          let a = Solution.to_array sol in
          (* out-of-range color on the first live vertex *)
          let u = List.hd (Graph.vertices g) in
          a.(u) <- Graph.m g + 1;
          let bad = Solution.of_array a in
          Check.Diag.has_errors (Check.Certify.solution ~reported:cost g bad))

let prop_understated_cost_rejected =
  qtest ~count:60 "understating the cost is caught"
    (arb_graph_spec ~nmax:7 ()) (fun spec ->
      let g = build_graph spec in
      match fst (Solvers.Brute.solve ~max_states:100_000 g) with
      | None -> true
      | Some (sol, cost) when Cost.to_float cost > 1.0 ->
          let lie = Cost.of_float (Cost.to_float cost /. 2.0) in
          Check.Diag.has_errors (Check.Certify.solution ~reported:lie g sol)
          && Check.Diag.has_errors (Check.Certify.against_brute g ~reported:lie)
      | Some _ -> true)

let test_brute_verdict_infeasible () =
  let g = Graph.create ~m:2 ~n:2 in
  (* interference edge + equal forced colors -> infeasible *)
  Graph.set_cost g 0 (Vec.of_array [| 0.0; Cost.inf |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; Cost.inf |]);
  Graph.add_edge g 0 1
    (Mat.of_arrays [| [| Cost.inf; 0.0 |]; [| 0.0; Cost.inf |] |]);
  (match Check.Certify.brute_optimum g with
  | Check.Certify.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible");
  Alcotest.(check bool)
    "finite claim rejected" true
    (Check.Diag.has_errors (Check.Certify.against_brute g ~reported:0.0))

(* ------------------------------------------------------------------ *)
(* CIR *)

let prop_fuzzgen_pipeline_verifies =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"fuzzgen programs verify end to end"
       QCheck.(int_bound 1_000_000)
       (fun seed ->
         let src = Cir.Fuzzgen.generate ~rng:(rng seed) in
         List.for_all
           (fun kind ->
             no_errors
               (Check_ir.Cir_check.alloc_kind_name kind)
               (Check_ir.Cir_check.check_source ~kind src))
           [ Check_ir.Cir_check.Basic; Check_ir.Cir_check.Greedy;
             Check_ir.Cir_check.Pbqp ]))

let test_cir_rejects_bad_allocation () =
  let src = "int main() { int a = 1; int b = 2; int c = a + b; return c; }" in
  let prog = Cir.Lower.compile src in
  let f = List.hd prog.Cir.Ir.funcs in
  let live = Cir.Liveness.analyze f in
  let alloc = Cir.Regalloc.basic live in
  (* clobber: force every vreg into register 0 *)
  let bad = Array.map (fun _ -> Cir.Regalloc.Reg 0) alloc in
  Alcotest.(check bool)
    "good accepted" false
    (Check.Diag.has_errors (Check_ir.Cir_check.allocation live alloc));
  Alcotest.(check bool)
    "clobbered rejected" true
    (Check.Diag.has_errors (Check_ir.Cir_check.allocation live bad))

let test_cir_use_before_def () =
  (* hand-build a function where block 1 uses %2 that only block 2 defines *)
  let blocks =
    [|
      { Cir.Ir.id = 0; instrs = []; term = Cir.Ir.Br (Cir.Ir.VInt 1, 1, 2);
        depth = 0 };
      { Cir.Ir.id = 1;
        instrs = [ Cir.Ir.Mov (1, Cir.Ir.VReg 2) ];
        term = Cir.Ir.Ret (Some (Cir.Ir.VReg 1)); depth = 0 };
      { Cir.Ir.id = 2;
        instrs = [ Cir.Ir.Mov (2, Cir.Ir.VInt 5) ];
        term = Cir.Ir.Jmp 1; depth = 0 };
    |]
  in
  let f =
    { Cir.Ir.name = "f"; params = []; ret = Some Cir.Ir.Tint; blocks;
      vreg_types = Array.make 3 Cir.Ir.Tint }
  in
  let findings = Check_ir.Cir_check.func f in
  Alcotest.(check bool) "flagged" true (Check.Diag.has_errors findings);
  Alcotest.(check bool)
    "right rule" true
    (List.exists
       (fun x -> x.Check.Diag.rule = "cir-use-before-def")
       findings)

(* ------------------------------------------------------------------ *)
(* ATE *)

let test_ate_witness_verifies () =
  let machine = Ate.Machine.default in
  let prog, witness =
    Ate.Progen.generate_with_witness ~machine ~rng:(rng 7) ~target_vregs:15 ()
  in
  let info = Ate.Program.analyze_exn prog in
  Alcotest.(check bool)
    "witness clean" false
    (Check.Diag.has_errors
       (Check_ir.Ate_check.assignment machine info ~assignment:witness));
  (* collapse everything onto r0: interference and classes must fire *)
  let bad _ = Some 0 in
  Alcotest.(check bool)
    "collapsed rejected" true
    (Check.Diag.has_errors
       (Check_ir.Ate_check.assignment machine info ~assignment:bad))

let test_ate_pad_checked () =
  let machine = Ate.Machine.default in
  let prog = Ate.Progen.generate ~machine ~rng:(rng 11) ~target_vregs:20 () in
  Alcotest.(check bool)
    "pad verified" false
    (Check.Diag.has_errors (Check_ir.Ate_check.padded machine prog))

(* ------------------------------------------------------------------ *)
(* MCTS tree validation *)

let counting_game =
  (* trivial 2-action game: count to 3 *)
  {
    Mcts.num_actions = 2;
    is_terminal = (fun s -> s >= 3);
    terminal_value = (fun _ -> 1.0);
    legal = (fun s a -> a = 0 || s mod 2 = 0);
    apply = (fun s _ -> s + 1);
    evaluate = (fun _ -> ([| 0.6; 0.4 |], 0.5));
    batched_evaluate = None;
  }

let test_mcts_validate_healthy () =
  let t =
    Mcts.create { Mcts.default_config with k = 40; check = true } counting_game 0
  in
  Mcts.run t;
  (* config.check already validated after run; also assert directly *)
  Alcotest.(check (list string)) "no violations" [] (Mcts.validate t);
  Mcts.advance t 0;
  Mcts.run t;
  Alcotest.(check (list string)) "still clean" [] (Mcts.validate t)

let test_mcts_validate_catches () =
  let t = Mcts.create { Mcts.default_config with k = 20 } counting_game 0 in
  Mcts.run t;
  (* corrupt a prior through the evaluate hook's output is impossible from
     outside; instead check that a bogus game contract is caught: an
     evaluate returning NaN priors *)
  let bad_game = { counting_game with evaluate = (fun _ -> ([| Float.nan; 0.4 |], 0.5)) } in
  let t2 = Mcts.create { Mcts.default_config with k = 10 } bad_game 0 in
  Mcts.run t2;
  Alcotest.(check bool) "NaN prior caught" true (Mcts.validate t2 <> []);
  Alcotest.(check (list string)) "healthy stays clean" [] (Mcts.validate t)

(* ------------------------------------------------------------------ *)
(* Selftest battery (small budget: keep the suite fast) *)

let test_selftest_battery () =
  let cases = Check_ir.Selftest.run ~graphs:10 ~seed:3 () in
  List.iter
    (fun (c : Check_ir.Selftest.case) ->
      if not c.ok then Alcotest.failf "case %s: %s" c.name c.detail)
    cases

let () =
  Alcotest.run "check"
    [
      ( "diag",
        [ Alcotest.test_case "collector & rendering" `Quick test_diag_basics ]
      );
      ( "invariants",
        [
          prop_generated_wellformed;
          prop_planted_wellformed;
          prop_reduced_wellformed;
          Alcotest.test_case "rejects all-inf vertex" `Quick
            test_rejects_no_color;
          Alcotest.test_case "rejects parse error with line" `Quick
            test_rejects_parse_error;
          Alcotest.test_case "io roundtrip lints clean" `Quick
            test_io_roundtrip_lints;
        ] );
      ( "certify",
        [
          prop_recompute_matches_solution_cost;
          prop_classic_solvers_certify;
          prop_corrupted_solution_rejected;
          prop_understated_cost_rejected;
          Alcotest.test_case "brute infeasibility verdict" `Quick
            test_brute_verdict_infeasible;
        ] );
      ( "cir",
        [
          prop_fuzzgen_pipeline_verifies;
          Alcotest.test_case "rejects clobbered allocation" `Quick
            test_cir_rejects_bad_allocation;
          Alcotest.test_case "use before def" `Quick test_cir_use_before_def;
        ] );
      ( "ate",
        [
          Alcotest.test_case "witness verifies, collapse rejected" `Quick
            test_ate_witness_verifies;
          Alcotest.test_case "pad output verified" `Quick test_ate_pad_checked;
        ] );
      ( "mcts",
        [
          Alcotest.test_case "healthy tree validates" `Quick
            test_mcts_validate_healthy;
          Alcotest.test_case "NaN priors caught" `Quick
            test_mcts_validate_catches;
        ] );
      ( "selftest",
        [ Alcotest.test_case "battery passes" `Quick test_selftest_battery ] );
    ]
