(* Tests for the tensor / autodiff / optimizer / policy-value-network
   stack.  The centerpiece is numerical gradient checking: every autodiff
   primitive is validated against central finite differences. *)

open Testutil

let feps = 1e-4

(* ------------------------------------------------------------------ *)
(* Tensor *)

let t_approx = Alcotest.testable Tensor.pp (Tensor.approx_equal ~eps:1e-9)

let test_tensor_shapes () =
  let a = Tensor.zeros [| 3 |] in
  Alcotest.(check int) "rank" 1 (Tensor.rank a);
  Alcotest.(check int) "numel" 3 (Tensor.numel a);
  let b = Tensor.zeros [| 2; 4 |] in
  let r, c = Tensor.dims2 b in
  Alcotest.(check (pair int int)) "dims2" (2, 4) (r, c);
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Tensor: shape must be [|n|] or [|r; c|] with positive dims")
    (fun () -> ignore (Tensor.zeros [| 0 |]))

let test_tensor_matmul () =
  let a = Tensor.of_array2 [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Tensor.of_array2 [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  Alcotest.check t_approx "matmul"
    (Tensor.of_array2 [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (Tensor.matmul a b)

let test_tensor_mv_tmv () =
  let m = Tensor.of_array2 [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let v = Tensor.of_array1 [| 1.; 0.; -1. |] in
  Alcotest.check t_approx "mv" (Tensor.of_array1 [| -2.; -2. |]) (Tensor.mv m v);
  let u = Tensor.of_array1 [| 1.; 2. |] in
  Alcotest.check t_approx "tmv = transpose mv"
    (Tensor.mv (Tensor.transpose m) u)
    (Tensor.tmv m u)

let test_tensor_outer_dot () =
  let u = Tensor.of_array1 [| 1.; 2. |] in
  let v = Tensor.of_array1 [| 3.; 4.; 5. |] in
  Alcotest.check t_approx "outer"
    (Tensor.of_array2 [| [| 3.; 4.; 5. |]; [| 6.; 8.; 10. |] |])
    (Tensor.outer u v);
  Alcotest.(check (float 1e-9)) "dot" 11.0 (Tensor.dot u (Tensor.of_array1 [| 3.; 4. |]))

let test_tensor_concat () =
  let a = Tensor.of_array1 [| 1.; 2. |] in
  let b = Tensor.of_array1 [| 3. |] in
  Alcotest.check t_approx "concat"
    (Tensor.of_array1 [| 1.; 2.; 3. |])
    (Tensor.concat1 [ a; b ])

let test_tensor_reductions () =
  let a = Tensor.of_array1 [| 1.; -2.; 4. |] in
  Alcotest.(check (float 1e-9)) "sum" 3.0 (Tensor.sum a);
  Alcotest.(check (float 1e-9)) "mean" 1.0 (Tensor.mean a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Tensor.max_value a);
  Alcotest.(check int) "argmax" 2 (Tensor.argmax1 a);
  Alcotest.(check (float 1e-9)) "l2sq" 21.0 (Tensor.l2norm_sq a)

let test_tensor_shape_errors () =
  let a = Tensor.zeros [| 2 |] and b = Tensor.zeros [| 3 |] in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Tensor.add: shape mismatch") (fun () ->
      ignore (Tensor.add a b));
  Alcotest.check_raises "matmul mismatch"
    (Invalid_argument "Tensor.matmul: inner dims differ") (fun () ->
      ignore (Tensor.matmul (Tensor.zeros [| 2; 3 |]) (Tensor.zeros [| 2; 3 |])))

(* ------------------------------------------------------------------ *)
(* Autodiff: numerical gradient checking *)

(* [check_grads vars f] compares autodiff gradients of the scalar function
   [f : Ad.ctx -> Ad.t] w.r.t. every var against central differences. *)
let check_grads ?(tol = 1e-4) name (vars : Nn.Var.t list) f =
  let eval () =
    let ctx = Nn.Ad.ctx () in
    Tensor.get1 (Nn.Ad.value (f ctx)) 0
  in
  let ctx = Nn.Ad.ctx () in
  let root = f ctx in
  Nn.Ad.backward root;
  List.iter
    (fun (v : Nn.Var.t) ->
      let g =
        match Nn.Ad.var_grad ctx v with
        | Some g -> g
        | None -> Tensor.zeros (Tensor.shape v.Nn.Var.value)
      in
      let data = Tensor.data v.Nn.Var.value in
      let gd = Tensor.data g in
      Float.Array.iteri
        (fun i x ->
          Float.Array.set data i (x +. feps);
          let up = eval () in
          Float.Array.set data i (x -. feps);
          let down = eval () in
          Float.Array.set data i x;
          let num = (up -. down) /. (2.0 *. feps) in
          let gi = Float.Array.get gd i in
          if Float.abs (num -. gi) > tol *. (1.0 +. Float.abs num) then
            Alcotest.failf "%s: var %s[%d]: numerical %.6f vs autodiff %.6f"
              name v.Nn.Var.name i num gi)
        data)
    vars

let mkvar name a = Nn.Var.create ~name (Tensor.of_array1 a)
let mkvar2 name a = Nn.Var.create ~name (Tensor.of_array2 a)

let test_grad_arith () =
  let a = mkvar "a" [| 0.5; -1.2; 2.0 |] in
  let b = mkvar "b" [| 1.5; 0.3; -0.7 |] in
  check_grads "add-mul-sub" [ a; b ] (fun ctx ->
      let x = Nn.Ad.of_var ctx a and y = Nn.Ad.of_var ctx b in
      Nn.Ad.sum (Nn.Ad.mul (Nn.Ad.add x y) (Nn.Ad.sub x y)))

let test_grad_scale_neg_mean () =
  let a = mkvar "a" [| 0.5; -1.2; 2.0; 0.1 |] in
  check_grads "scale-neg-mean" [ a ] (fun ctx ->
      let x = Nn.Ad.of_var ctx a in
      Nn.Ad.mean (Nn.Ad.neg (Nn.Ad.scale 3.0 (Nn.Ad.mul x x))))

let test_grad_relu_tanh () =
  (* keep values away from the ReLU kink *)
  let a = mkvar "a" [| 0.5; -1.2; 2.0; -0.4 |] in
  check_grads "relu" [ a ] (fun ctx ->
      Nn.Ad.sum (Nn.Ad.relu (Nn.Ad.of_var ctx a)));
  check_grads "tanh" [ a ] (fun ctx ->
      Nn.Ad.sum (Nn.Ad.tanh_ (Nn.Ad.of_var ctx a)))

let test_grad_mv () =
  let m = mkvar2 "m" [| [| 0.5; -1.0 |]; [| 2.0; 0.3 |]; [| -0.2; 1.1 |] |] in
  let v = mkvar "v" [| 0.7; -0.6 |] in
  check_grads "mv" [ m; v ] (fun ctx ->
      Nn.Ad.sum (Nn.Ad.tanh_ (Nn.Ad.mv (Nn.Ad.of_var ctx m) (Nn.Ad.of_var ctx v))))

let test_grad_matmul () =
  let a = mkvar2 "a" [| [| 0.5; -1.0 |]; [| 2.0; 0.3 |] |] in
  let b = mkvar2 "b" [| [| 1.5; 0.2 |]; [| -0.7; 0.9 |] |] in
  check_grads "matmul" [ a; b ] (fun ctx ->
      Nn.Ad.sum (Nn.Ad.matmul (Nn.Ad.of_var ctx a) (Nn.Ad.of_var ctx b)))

let test_grad_concat_meanlist () =
  let a = mkvar "a" [| 0.5; -1.2 |] in
  let b = mkvar "b" [| 1.5; 0.3 |] in
  let c = mkvar "c" [| -0.9; 0.8 |] in
  check_grads "concat" [ a; b; c ] (fun ctx ->
      Nn.Ad.sum
        (Nn.Ad.tanh_
           (Nn.Ad.concat1
              [ Nn.Ad.of_var ctx a; Nn.Ad.of_var ctx b; Nn.Ad.of_var ctx c ])));
  check_grads "mean_list" [ a; b; c ] (fun ctx ->
      Nn.Ad.sum
        (Nn.Ad.tanh_
           (Nn.Ad.mean_list
              [ Nn.Ad.of_var ctx a; Nn.Ad.of_var ctx b; Nn.Ad.of_var ctx c ])))

let test_grad_softmax_xent () =
  let logits = mkvar "logits" [| 0.5; -1.2; 2.0; 0.1 |] in
  let target = Tensor.of_array1 [| 0.1; 0.2; 0.6; 0.1 |] in
  check_grads "softmax_xent" [ logits ] (fun ctx ->
      Nn.Ad.softmax_xent (Nn.Ad.of_var ctx logits) target)

let test_grad_layernorm () =
  let x = mkvar "x" [| 0.5; -1.2; 2.0; 0.1; -0.6 |] in
  let gain = mkvar "gain" [| 1.1; 0.9; 1.0; 1.2; 0.8 |] in
  let bias = mkvar "bias" [| 0.1; -0.1; 0.0; 0.2; -0.2 |] in
  check_grads "layernorm" [ x; gain; bias ] (fun ctx ->
      Nn.Ad.sum
        (Nn.Ad.tanh_
           (Nn.Ad.layernorm ~gain:(Nn.Ad.of_var ctx gain)
              ~bias:(Nn.Ad.of_var ctx bias) (Nn.Ad.of_var ctx x))))

let test_grad_shared_var () =
  (* a var used twice must accumulate both contributions: d/dx (x·x) = 2x *)
  let a = mkvar "a" [| 0.5; -1.2; 2.0 |] in
  let ctx = Nn.Ad.ctx () in
  let x = Nn.Ad.of_var ctx a in
  let x' = Nn.Ad.of_var ctx a in
  let root = Nn.Ad.sum (Nn.Ad.mul x x') in
  Nn.Ad.backward root;
  let g = Option.get (Nn.Ad.var_grad ctx a) in
  Alcotest.check t_approx "grad is 2x"
    (Tensor.of_array1 [| 1.0; -2.4; 4.0 |])
    g

let test_grad_layers () =
  let rng = rng 5 in
  let lin = Nn.Layer.Linear.create ~rng ~name:"l" ~in_dim:3 ~out_dim:2 in
  let x = mkvar "x" [| 0.5; -1.2; 2.0 |] in
  check_grads "linear layer"
    (x :: Nn.Layer.Linear.params lin)
    (fun ctx ->
      Nn.Ad.sum (Nn.Ad.tanh_ (Nn.Layer.Linear.forward ctx lin (Nn.Ad.of_var ctx x))));
  let res = Nn.Layer.Residual.create ~rng ~name:"r" ~dim:3 in
  check_grads "residual block"
    (x :: Nn.Layer.Residual.params res)
    (fun ctx ->
      Nn.Ad.sum
        (Nn.Ad.tanh_ (Nn.Layer.Residual.forward ctx res (Nn.Ad.of_var ctx x))))

(* ------------------------------------------------------------------ *)
(* Adam *)

let test_adam_quadratic () =
  (* minimize |w - target|^2: Adam should converge *)
  let w = mkvar "w" [| 5.0; -3.0 |] in
  let target = Tensor.of_array1 [| 1.0; 2.0 |] in
  let opt = Nn.Adam.create { Nn.Adam.default_config with lr = 0.1; weight_decay = 0.0 } in
  for _ = 1 to 300 do
    let ctx = Nn.Ad.ctx () in
    let d = Nn.Ad.sub (Nn.Ad.of_var ctx w) (Nn.Ad.const target) in
    let loss = Nn.Ad.sum (Nn.Ad.mul d d) in
    Nn.Ad.backward loss;
    Nn.Adam.step opt [ (w, Option.get (Nn.Ad.var_grad ctx w)) ]
  done;
  Alcotest.(check bool) "converged" true
    (Tensor.approx_equal ~eps:1e-2 target w.Nn.Var.value)

let test_adam_grad_clip () =
  (* a huge gradient must be scaled down to the clip norm before the
     update; the resulting step is bounded by ~lr *)
  let w = mkvar "w" [| 0.0 |] in
  let opt =
    Nn.Adam.create
      { Nn.Adam.default_config with lr = 0.1; weight_decay = 0.0; grad_clip = 1.0 }
  in
  Nn.Adam.step opt [ (w, Tensor.of_array1 [| 1e9 |]) ];
  Alcotest.(check bool) "step bounded" true
    (Float.abs (Tensor.get1 w.Nn.Var.value 0) <= 0.11)

let test_adam_weight_decay () =
  (* zero gradient + weight decay shrinks weights toward zero *)
  let w = mkvar "w" [| 4.0 |] in
  let opt =
    Nn.Adam.create { Nn.Adam.default_config with lr = 0.1; weight_decay = 0.5 }
  in
  for _ = 1 to 50 do
    Nn.Adam.step opt [ (w, Tensor.zeros [| 1 |]) ]
  done;
  Alcotest.(check bool) "shrunk" true (Float.abs (Tensor.get1 w.Nn.Var.value 0) < 1.0)

let test_adam_save_load_continues_identically () =
  (* moments + step count round-trip by parameter NAME (ids are not
     stable across processes), and a reloaded optimizer must continue
     bit-identically with the original *)
  let cfg = { Nn.Adam.default_config with lr = 0.05 } in
  let grad i = Tensor.of_array1 [| sin (float_of_int i); 0.5 |] in
  let w1 = mkvar "w" [| 3.0; -2.0 |] in
  let opt1 = Nn.Adam.create cfg in
  for i = 1 to 10 do
    Nn.Adam.step opt1 [ (w1, grad i) ]
  done;
  let path = Filename.temp_file "adam" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nn.Adam.save opt1 ~params:[ w1 ] path;
      (* a fresh var with the same name but a different id *)
      let w2 = mkvar "w" (Tensor.to_array1 w1.Nn.Var.value) in
      let opt2 = Nn.Adam.create cfg in
      Nn.Adam.load opt2 ~params:[ w2 ] path;
      Alcotest.(check int) "step restored" (Nn.Adam.steps_taken opt1)
        (Nn.Adam.steps_taken opt2);
      for i = 11 to 20 do
        Nn.Adam.step opt1 [ (w1, grad i) ];
        Nn.Adam.step opt2 [ (w2, grad i) ]
      done;
      Alcotest.(check bool) "continuation bit-identical" true
        (tensor_bits_equal w1.Nn.Var.value w2.Nn.Var.value);
      Alcotest.check_raises "unknown param"
        (Invalid_argument "Adam.load: unknown param w") (fun () ->
          Nn.Adam.load (Nn.Adam.create cfg) ~params:[ mkvar "other" [| 0.0 |] ]
            path))

(* ------------------------------------------------------------------ *)
(* Pvnet *)

open Pbqp

let small_graph () =
  let g = Graph.create ~m:3 ~n:4 in
  Graph.set_cost g 0 (Vec.of_array [| 0.0; Cost.inf; 1.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 2.0; 0.0; 0.0 |]);
  Graph.set_cost g 2 (Vec.of_array [| 0.0; 0.0; Cost.inf |]);
  Graph.set_cost g 3 (Vec.of_array [| 1.0; 1.0; 1.0 |]);
  Graph.add_edge g 0 1 (Mat.interference 3);
  Graph.add_edge g 1 2 (Mat.interference 3);
  Graph.add_edge g 2 3 (Mat.interference 3);
  g

let mknet ?(seed = 3) () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m:3) with trunk_width = 16; trunk_blocks = 1 }

let test_pvnet_predict_shape () =
  let net = mknet () in
  let g = small_graph () in
  let priors, v = Nn.Pvnet.predict net g ~next:0 in
  Alcotest.(check int) "priors length" 3 (Array.length priors);
  Alcotest.(check (float 1e-6)) "priors sum to 1" 1.0
    (Array.fold_left ( +. ) 0.0 priors);
  Alcotest.(check (float 1e-9)) "infinite color masked" 0.0 priors.(1);
  Alcotest.(check bool) "value in [-1,1]" true (v >= -1.0 && v <= 1.0)

let test_pvnet_dead_end_priors () =
  let net = mknet () in
  let g = Graph.create ~m:3 ~n:1 in
  Graph.set_cost g 0 (Vec.make 3 Cost.inf);
  let priors, _ = Nn.Pvnet.predict net g ~next:0 in
  Alcotest.(check (float 1e-9)) "all-zero priors on dead end" 0.0
    (Array.fold_left ( +. ) 0.0 priors)

let test_pvnet_deterministic () =
  let net = mknet () in
  let g = small_graph () in
  let p1, v1 = Nn.Pvnet.predict net g ~next:2 in
  let p2, v2 = Nn.Pvnet.predict net g ~next:2 in
  Alcotest.(check (array (float 1e-12))) "same priors" p1 p2;
  Alcotest.(check (float 1e-12)) "same value" v1 v2

let test_pvnet_m_mismatch () =
  let net = mknet () in
  let g = Graph.create ~m:2 ~n:1 in
  Alcotest.check_raises "m mismatch"
    (Invalid_argument "Pvnet.forward: m mismatch") (fun () ->
      ignore (Nn.Pvnet.predict net g ~next:0))

let test_pvnet_training_reduces_loss () =
  let net = mknet () in
  let g = small_graph () in
  let sample =
    { Nn.Pvnet.graph = g; next = 0; policy = [| 0.8; 0.0; 0.2 |]; value = 1.0 }
  in
  let opt = Nn.Adam.create { Nn.Adam.default_config with lr = 0.01 } in
  let first = Nn.Pvnet.train_batch net opt [ sample ] in
  let last = ref first in
  for _ = 1 to 60 do
    last := Nn.Pvnet.train_batch net opt [ sample ]
  done;
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.4f -> %.4f)" first !last)
    true (!last < first)

let test_pvnet_training_moves_prediction () =
  let net = mknet ~seed:11 () in
  let g = small_graph () in
  let sample =
    { Nn.Pvnet.graph = g; next = 0; policy = [| 1.0; 0.0; 0.0 |]; value = 1.0 }
  in
  let opt = Nn.Adam.create { Nn.Adam.default_config with lr = 0.01 } in
  for _ = 1 to 150 do
    ignore (Nn.Pvnet.train_batch net opt [ sample ])
  done;
  let priors, v = Nn.Pvnet.predict net g ~next:0 in
  Alcotest.(check bool) "policy mass on color 0" true (priors.(0) > 0.8);
  Alcotest.(check bool) "value pulled toward +1" true (v > 0.5)

let test_pvnet_save_load () =
  let net = mknet ~seed:7 () in
  let g = small_graph () in
  let p1, v1 = Nn.Pvnet.predict net g ~next:1 in
  let path = Filename.temp_file "pvnet" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nn.Pvnet.save net path;
      let net' = Nn.Pvnet.load path in
      let p2, v2 = Nn.Pvnet.predict net' g ~next:1 in
      Alcotest.(check (array (float 1e-12))) "same priors after reload" p1 p2;
      Alcotest.(check (float 1e-12)) "same value after reload" v1 v2)

let test_pvnet_param_count () =
  let net = mknet () in
  Alcotest.(check bool) "has parameters" true (Nn.Pvnet.param_count net > 100)

(* --- batched inference: predict_batch must match per-state predict --- *)

let check_batch_matches_scalar ?(eps = 1e-9) net states =
  let preds = Nn.Pvnet.predict_batch net states in
  Alcotest.(check int) "one result per state" (List.length states)
    (Array.length preds);
  List.iteri
    (fun i (g, next) ->
      let p_s, v_s = Nn.Pvnet.predict net g ~next in
      let p_b, v_b = preds.(i) in
      Alcotest.(check (array (float eps)))
        (Printf.sprintf "priors of state %d" i)
        p_s p_b;
      Alcotest.(check (float eps)) (Printf.sprintf "value of state %d" i) v_s v_b)
    states

let test_pvnet_predict_batch_basic () =
  let net = mknet () in
  Alcotest.(check int) "empty batch" 0
    (Array.length (Nn.Pvnet.predict_batch net []));
  let g = small_graph () in
  (* batch of 1, all vertices, and duplicated states in one batch *)
  check_batch_matches_scalar net [ (g, 2) ];
  check_batch_matches_scalar net (List.map (fun v -> (g, v)) (Graph.vertices g));
  check_batch_matches_scalar net [ (g, 0); (g, 0); (g, 3); (g, 0) ]

let test_pvnet_predict_batch_m_mismatch () =
  let net = mknet () in
  let g = Graph.create ~m:2 ~n:1 in
  Alcotest.check_raises "m mismatch"
    (Invalid_argument "Pvnet.predict_batch: m mismatch") (fun () ->
      ignore (Nn.Pvnet.predict_batch net [ (g, 0) ]))

(* Property: batches mixing graphs of different sizes (ragged next-vertex
   sets), with duplicates, sized 1..32, agree with scalar predict to
   1e-9 on every prior and value. *)
let test_pvnet_predict_batch_property =
  let net = lazy (mknet ~seed:19 ()) in
  qtest ~count:40 "predict_batch = predict (random ragged batches)"
    (arb_graph_spec ~nmax:8 ~mmax:3 ())
    (fun spec ->
      let spec = { spec with m = 3 } in
      let net = Lazy.force net in
      let g1 = build_graph spec in
      let g2 = build_graph { spec with seed = spec.seed + 1; n = spec.n + 2 } in
      let all =
        List.map (fun v -> (g1, v)) (Graph.vertices g1)
        @ List.map (fun v -> (g2, v)) (Graph.vertices g2)
      in
      (* duplicate some states and cap the batch at 32 *)
      let states = List.filteri (fun i _ -> i < 32) (all @ all) in
      check_batch_matches_scalar net states;
      true)

(* gradient check through the full network on a tiny graph *)
let test_pvnet_full_gradcheck () =
  let net =
    Nn.Pvnet.create ~rng:(rng 13)
      { (Nn.Pvnet.default_config ~m:2) with trunk_width = 4; trunk_blocks = 1;
        gcn_layers = 1 }
  in
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 0.5; 1.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; 2.0 |]);
  Graph.add_edge g 0 1 (Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]);
  let sample =
    { Nn.Pvnet.graph = g; next = 0; policy = [| 0.7; 0.3 |]; value = 0.5 }
  in
  check_grads ~tol:2e-3 "pvnet loss" (Nn.Pvnet.params net) (fun ctx ->
      Nn.Pvnet.loss net ctx sample)

(* ------------------------------------------------------------------ *)
(* lib/check gradient batteries: Linear / ReLU / Tanh / LayerNorm / the
   residual block (tolerance 1e-4), and the full pvnet loss. *)

let no_grad_errors name findings =
  match Check.Diag.errors_only findings with
  | [] -> ()
  | errs -> Alcotest.failf "%s:\n%s" name (Check.Diag.to_string errs)

let test_check_layer_battery () =
  no_grad_errors "layer battery"
    (Check.Gradcheck.layer_battery ~tol:1e-4 ())

let test_check_pvnet_battery () =
  no_grad_errors "pvnet battery" (Check.Gradcheck.pvnet_battery ())

(* zero tolerance must flag float-rounding mismatches on every layer —
   proof the finite-difference sweep actually runs and compares *)
let test_check_battery_detects () =
  let findings = Check.Gradcheck.layer_battery ~tol:0.0 () in
  if not (Check.Diag.has_errors findings) then
    Alcotest.fail "tolerance-0 battery reported no findings"

let () =
  Alcotest.run "nn"
    [
      ( "tensor",
        [
          Alcotest.test_case "shapes" `Quick test_tensor_shapes;
          Alcotest.test_case "matmul" `Quick test_tensor_matmul;
          Alcotest.test_case "mv/tmv" `Quick test_tensor_mv_tmv;
          Alcotest.test_case "outer/dot" `Quick test_tensor_outer_dot;
          Alcotest.test_case "concat" `Quick test_tensor_concat;
          Alcotest.test_case "reductions" `Quick test_tensor_reductions;
          Alcotest.test_case "shape errors" `Quick test_tensor_shape_errors;
        ] );
      ( "autodiff",
        [
          Alcotest.test_case "arith grads" `Quick test_grad_arith;
          Alcotest.test_case "scale/neg/mean grads" `Quick
            test_grad_scale_neg_mean;
          Alcotest.test_case "relu/tanh grads" `Quick test_grad_relu_tanh;
          Alcotest.test_case "mv grads" `Quick test_grad_mv;
          Alcotest.test_case "matmul grads" `Quick test_grad_matmul;
          Alcotest.test_case "concat/mean_list grads" `Quick
            test_grad_concat_meanlist;
          Alcotest.test_case "softmax xent grads" `Quick test_grad_softmax_xent;
          Alcotest.test_case "layernorm grads" `Quick test_grad_layernorm;
          Alcotest.test_case "shared var accumulates" `Quick
            test_grad_shared_var;
          Alcotest.test_case "layer grads" `Quick test_grad_layers;
        ] );
      ( "adam",
        [
          Alcotest.test_case "quadratic convergence" `Quick test_adam_quadratic;
          Alcotest.test_case "gradient clipping" `Quick test_adam_grad_clip;
          Alcotest.test_case "weight decay" `Quick test_adam_weight_decay;
          Alcotest.test_case "save/load continues identically" `Quick
            test_adam_save_load_continues_identically;
        ] );
      ( "pvnet",
        [
          Alcotest.test_case "predict shape & masking" `Quick
            test_pvnet_predict_shape;
          Alcotest.test_case "dead-end priors" `Quick test_pvnet_dead_end_priors;
          Alcotest.test_case "deterministic" `Quick test_pvnet_deterministic;
          Alcotest.test_case "m mismatch" `Quick test_pvnet_m_mismatch;
          Alcotest.test_case "training reduces loss" `Quick
            test_pvnet_training_reduces_loss;
          Alcotest.test_case "training moves prediction" `Quick
            test_pvnet_training_moves_prediction;
          Alcotest.test_case "save/load roundtrip" `Quick test_pvnet_save_load;
          Alcotest.test_case "param count" `Quick test_pvnet_param_count;
          Alcotest.test_case "predict_batch basics" `Quick
            test_pvnet_predict_batch_basic;
          Alcotest.test_case "predict_batch m mismatch" `Quick
            test_pvnet_predict_batch_m_mismatch;
          test_pvnet_predict_batch_property;
          Alcotest.test_case "full network gradcheck" `Quick
            test_pvnet_full_gradcheck;
        ] );
      ( "check-gradcheck",
        [
          Alcotest.test_case "layer battery (1e-4)" `Quick
            test_check_layer_battery;
          Alcotest.test_case "pvnet battery" `Quick test_check_pvnet_battery;
          Alcotest.test_case "detects at tol 0" `Quick
            test_check_battery_detects;
        ] );
    ]
