(* Differential tests for the incremental (trail) state and the
   evaluation cache: random apply/undo interleavings and cursor walks
   against the persistent State oracle (structurally bit-equal at every
   depth), LRU/version semantics of Nn.Evalcache, and bit-identical
   episodes, solves and whole training runs across
   {persistent, incremental} x {cache off, on}. *)

open Pbqp
open Testutil

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Trail state vs the persistent oracle *)

let check_agree msg st ist =
  if not (Graph.equal (Core.State.graph st) (Core.Istate.graph ist)) then
    Alcotest.failf "%s: graphs differ" msg;
  if not (bits_eq (Core.State.base_cost st) (Core.Istate.base_cost ist)) then
    Alcotest.failf "%s: base costs differ" msg;
  if not (Solution.equal (Core.State.assignment st) (Core.Istate.assignment ist))
  then Alcotest.failf "%s: assignments differ" msg;
  if Core.State.hash st <> Core.Istate.hash ist then
    Alcotest.failf "%s: hashes differ" msg;
  if Core.State.next_vertex st <> Core.Istate.next_vertex ist then
    Alcotest.failf "%s: next vertices differ" msg;
  if Core.State.is_dead_end st <> Core.Istate.is_dead_end ist then
    Alcotest.failf "%s: dead-end flags differ" msg

let random_legal r st =
  let m = Core.State.m st in
  let legal = List.filter (Core.State.legal st) (List.init m Fun.id) in
  match legal with
  | [] -> None
  | l -> Some (List.nth l (Random.State.int r (List.length l)))

(* Random interleaving of applies and undos, checked against a stack of
   persistent states after every operation.  Redos are covered for free:
   an undo followed by a re-apply of the same color replays a memoized
   tree edge whenever the walk has been there before. *)
let test_walk_matches_oracle =
  qtest ~count:150 "apply/undo interleaving = persistent stack (bitwise)"
    (arb_graph_spec ~nmax:10 ~mmax:4 ())
    (fun spec ->
      let g = build_graph spec in
      let st0 = Core.State.of_graph g in
      let ist = Core.Istate.of_state st0 in
      let r = rng (spec.seed + 1) in
      let stack = ref [ st0 ] in
      check_agree "initial" st0 ist;
      for step = 1 to 60 do
        let top = List.hd !stack in
        let depth = List.length !stack - 1 in
        let apply_color =
          if Core.State.is_complete top then None else random_legal r top
        in
        match
          (apply_color, depth > 0 && Random.State.int r 10 < 4, depth > 0)
        with
        | Some c, false, _ ->
            stack := Core.State.apply top c :: !stack;
            Core.Istate.apply ist c;
            check_agree (Printf.sprintf "step %d (apply %d)" step c)
              (List.hd !stack) ist
        | _, true, _ | None, _, true ->
            stack := List.tl !stack;
            Core.Istate.undo ist;
            check_agree (Printf.sprintf "step %d (undo)" step)
              (List.hd !stack) ist
        | None, _, false -> ()
      done;
      true)

(* Cursors queried in random order: every query seeks the shared trail to
   the cursor's position; interleaving positions across the whole tree
   exercises pop-to-LCA/replay far harder than MCTS's orderly walks. *)
let test_cursor_seeks_match_oracle =
  qtest ~count:75 "random-order cursor queries = persistent states"
    (arb_graph_spec ~nmax:9 ~mmax:4 ())
    (fun spec ->
      let g = build_graph spec in
      let st0 = Core.State.of_graph g in
      let ist = Core.Istate.of_state st0 in
      let r = rng (spec.seed + 2) in
      let pairs = ref [| (st0, Core.Istate.Cursor.root ist) |] in
      (* grow a random tree of positions *)
      for _ = 1 to 25 do
        let st, cur = !pairs.(Random.State.int r (Array.length !pairs)) in
        if not (Core.State.is_complete st) then
          match random_legal r st with
          | None -> ()
          | Some c ->
              let child = (Core.State.apply st c, Core.Istate.Cursor.apply cur c) in
              pairs := Array.append !pairs [| child |]
      done;
      (* query the positions in random order, twice *)
      for round = 1 to 2 do
        for _ = 1 to 2 * Array.length !pairs do
          let st, cur = !pairs.(Random.State.int r (Array.length !pairs)) in
          let msg = Printf.sprintf "round %d" round in
          if not (Graph.equal (Core.State.graph st) (Core.Istate.Cursor.graph cur))
          then Alcotest.failf "%s: graphs differ" msg;
          if not (bits_eq (Core.State.base_cost st) (Core.Istate.Cursor.base_cost cur))
          then Alcotest.failf "%s: base costs differ" msg;
          if Core.State.hash st <> Core.Istate.Cursor.hash cur then
            Alcotest.failf "%s: hashes differ" msg;
          if not
               (Solution.equal (Core.State.assignment st)
                  (Core.Istate.Cursor.assignment cur))
          then Alcotest.failf "%s: assignments differ" msg;
          if Core.State.is_terminal st <> Core.Istate.Cursor.is_terminal cur
          then Alcotest.failf "%s: terminal flags differ" msg
        done
      done;
      true)

let test_snapshot_outlives_motion () =
  let g =
    Generate.erdos_renyi ~rng:(rng 3)
      { Generate.default with n = 8; m = 3; p_edge = 0.5; p_inf = 0.0 }
  in
  let st0 = Core.State.of_graph g in
  let ist = Core.Istate.of_state st0 in
  let root = Core.Istate.Cursor.root ist in
  let c1 = Core.Istate.Cursor.apply root 0 in
  let snap = Core.Istate.Cursor.graph_snapshot c1 in
  let st1 = Core.State.apply st0 0 in
  (* move the trail somewhere else: the snapshot must not change *)
  let c2 = Core.Istate.Cursor.apply c1 1 in
  ignore (Core.Istate.Cursor.graph c2);
  ignore (Core.Istate.Cursor.graph root);
  Alcotest.(check graph) "snapshot = persistent state after trail motion"
    (Core.State.graph st1) snap

let test_istate_validations () =
  let g =
    Generate.erdos_renyi ~rng:(rng 4)
      { Generate.default with n = 4; m = 3; p_edge = 0.5; p_inf = 0.0 }
  in
  let st = Core.State.of_graph g in
  Alcotest.check_raises "of_state rejects colored states"
    (Invalid_argument "Istate.of_state: state already has colored vertices")
    (fun () -> ignore (Core.Istate.of_state (Core.State.apply st 0)));
  let ist = Core.Istate.of_state st in
  Alcotest.check_raises "undo at the root"
    (Invalid_argument "Istate.undo: at the root") (fun () ->
      Core.Istate.undo ist);
  Alcotest.check_raises "illegal color"
    (Invalid_argument "Istate.apply: illegal color") (fun () ->
      Core.Istate.apply ist (-1))

(* ------------------------------------------------------------------ *)
(* Evaluation cache: LRU + version semantics *)

let entry priors value = (Array.of_list priors, value)

let test_cache_roundtrip () =
  let c = Nn.Evalcache.create ~capacity:4 in
  Alcotest.(check (option (pair (array (float 0.0)) (float 0.0))))
    "empty" None
    (Nn.Evalcache.find c ~version:1 (42, 0));
  Nn.Evalcache.store c ~version:1 (42, 0) (entry [ 0.25; 0.75 ] 0.5);
  (match Nn.Evalcache.find c ~version:1 (42, 0) with
  | Some (priors, v) ->
      Alcotest.(check (array (float 0.0))) "priors" [| 0.25; 0.75 |] priors;
      Alcotest.(check (float 0.0)) "value" 0.5 v;
      (* hits are copies: mutating one must not corrupt the cache *)
      priors.(0) <- 99.0
  | None -> Alcotest.fail "stored entry not found");
  (match Nn.Evalcache.find c ~version:1 (42, 0) with
  | Some (priors, _) ->
      Alcotest.(check (array (float 0.0)))
        "stored priors unaffected by caller mutation" [| 0.25; 0.75 |] priors
  | None -> Alcotest.fail "entry vanished");
  Alcotest.(check int) "hits" 2 (Nn.Evalcache.hits c);
  Alcotest.(check int) "misses" 1 (Nn.Evalcache.misses c)

let test_cache_lru_eviction () =
  let c = Nn.Evalcache.create ~capacity:2 in
  Nn.Evalcache.store c ~version:1 (1, 0) (entry [ 1.0 ] 1.0);
  Nn.Evalcache.store c ~version:1 (2, 0) (entry [ 1.0 ] 2.0);
  (* touch key 1 so key 2 is the least recently used *)
  ignore (Nn.Evalcache.find c ~version:1 (1, 0));
  Nn.Evalcache.store c ~version:1 (3, 0) (entry [ 1.0 ] 3.0);
  Alcotest.(check int) "capacity respected" 2 (Nn.Evalcache.length c);
  Alcotest.(check bool) "LRU key evicted" true
    (Nn.Evalcache.find c ~version:1 (2, 0) = None);
  Alcotest.(check bool) "recently-used key kept" true
    (Nn.Evalcache.find c ~version:1 (1, 0) <> None);
  Alcotest.(check bool) "new key present" true
    (Nn.Evalcache.find c ~version:1 (3, 0) <> None)

let test_cache_version_invalidates () =
  let c = Nn.Evalcache.create ~capacity:4 in
  Nn.Evalcache.store c ~version:1 (7, 2) (entry [ 0.5 ] 0.25);
  Alcotest.(check bool) "entry of stale weights is a miss" true
    (Nn.Evalcache.find c ~version:2 (7, 2) = None);
  (* re-store under the new version: served again *)
  Nn.Evalcache.store c ~version:2 (7, 2) (entry [ 0.5 ] 0.75);
  (match Nn.Evalcache.find c ~version:2 (7, 2) with
  | Some (_, v) -> Alcotest.(check (float 0.0)) "fresh value" 0.75 v
  | None -> Alcotest.fail "re-stored entry not found");
  Alcotest.(check (float 1e-9)) "hit rate counts the stale miss"
    (1.0 /. 2.0) (Nn.Evalcache.hit_rate c);
  Nn.Evalcache.clear c;
  Alcotest.(check int) "clear empties" 0 (Nn.Evalcache.length c);
  Alcotest.(check int) "clear resets hits" 0 (Nn.Evalcache.hits c)

let test_cache_validates () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Evalcache.create: capacity <= 0") (fun () ->
      ignore (Nn.Evalcache.create ~capacity:0))

let test_pvnet_version_bumps () =
  let m = 3 in
  let net =
    Nn.Pvnet.create ~rng:(rng 3)
      { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
        gcn_layers = 1 }
  in
  let v0 = Nn.Pvnet.version net in
  let opt = Nn.Adam.create Nn.Adam.default_config in
  let g =
    Generate.erdos_renyi ~rng:(rng 5)
      { Generate.default with n = 4; m; p_edge = 0.5; p_inf = 0.0 }
  in
  let sample =
    { Nn.Pvnet.graph = g; next = List.hd (Graph.vertices g);
      policy = Array.make m (1.0 /. float_of_int m); value = 0.5 }
  in
  ignore (Nn.Pvnet.train_batch net opt [ sample ]);
  Alcotest.(check bool) "optimizer step changes the version" true
    (Nn.Pvnet.version net <> v0);
  let replica = Nn.Pvnet.clone net in
  Alcotest.(check int) "clone carries the version (weights are synced)"
    (Nn.Pvnet.version net) (Nn.Pvnet.version replica)

(* ------------------------------------------------------------------ *)
(* Episode / solver equivalence *)

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

let samples_identical sa sb =
  List.length sa = List.length sb
  && List.for_all2
       (fun (a : Nn.Pvnet.sample) (b : Nn.Pvnet.sample) ->
         Graph.equal a.Nn.Pvnet.graph b.Nn.Pvnet.graph
         && a.next = b.next
         && Array.for_all2 bits_eq a.policy b.policy
         && bits_eq a.value b.value)
       sa sb

let check_episode_pair ~msg ?cache_a ?cache_b ~batched g net =
  let play incremental cache =
    let st = Core.State.of_graph g in
    let batch = if batched then 4 else 1 in
    let cfg =
      {
        Core.Episode.default_config with
        Core.Episode.mcts = { Mcts.default_config with k = 8; batch };
      }
    in
    let f =
      if incremental then Core.Episode.play_incremental else Core.Episode.play
    in
    f ~collect:true ~batched ?cache ~rng:(rng 7) ~net
      ~mode:Core.Game.Feasibility cfg st
  in
  let oa, sa = play false cache_a in
  let ob, sb = play true cache_b in
  if not (bits_eq oa.Core.Episode.cost ob.Core.Episode.cost) then
    Alcotest.failf "%s: costs differ" msg;
  if oa.Core.Episode.nodes <> ob.Core.Episode.nodes then
    Alcotest.failf "%s: node counts differ" msg;
  (match (oa.Core.Episode.solution, ob.Core.Episode.solution) with
  | None, None -> ()
  | Some a, Some b when Solution.equal a b -> ()
  | _ -> Alcotest.failf "%s: solutions differ" msg);
  if not (samples_identical sa sb) then Alcotest.failf "%s: samples differ" msg

let test_episode_equivalence =
  qtest ~count:20 "play_incremental = play (scalar, batched, cached)"
    (arb_graph_spec ~nmax:8 ~mmax:4 ())
    (fun spec ->
      let g = build_graph spec in
      let net = tiny_net ~m:spec.m () in
      check_episode_pair ~msg:"scalar" ~batched:false g net;
      check_episode_pair ~msg:"batched" ~batched:true g net;
      let ec = Nn.Evalcache.create ~capacity:512 in
      let cache = Nn.Cache.Local ec in
      check_episode_pair ~msg:"cache on incremental side" ~cache_b:cache
        ~batched:true g net;
      (* second run with the now-warm cache: hits must not change play *)
      check_episode_pair ~msg:"warm cache" ~cache_b:cache ~batched:true g net;
      if Nn.Evalcache.hits ec = 0 then
        Alcotest.fail "warm cache saw no hits";
      let cache_p = Nn.Cache.local ~capacity:512 in
      check_episode_pair ~msg:"cache on persistent side" ~cache_a:cache_p
        ~batched:true g net;
      true)

let test_solver_equivalence =
  qtest ~count:15 "solve_feasible/minimize: incremental + cache = persistent"
    (arb_graph_spec ~nmax:8 ~mmax:4 ~zero_inf:true ())
    (fun spec ->
      let g = build_graph spec in
      let net = tiny_net ~m:spec.m () in
      let mcts = { Mcts.default_config with k = 6 } in
      let feas ~incremental ~eval_cache =
        Core.Solver.solve_feasible ~net ~mcts ~incremental ~eval_cache
          ~max_backtracks:200 g
      in
      let sol0, st0 = feas ~incremental:false ~eval_cache:0 in
      List.iter
        (fun (incremental, eval_cache) ->
          let sol, st = feas ~incremental ~eval_cache in
          if st <> st0 then
            Alcotest.failf "feasible stats differ (incr=%b cache=%d)"
              incremental eval_cache;
          match (sol0, sol) with
          | None, None -> ()
          | Some a, Some b when Solution.equal a b -> ()
          | _ ->
              Alcotest.failf "feasible solutions differ (incr=%b cache=%d)"
                incremental eval_cache)
        [ (true, 0); (false, 256); (true, 256) ];
      let mini ~incremental ~eval_cache =
        Core.Solver.minimize ~net ~mcts ~incremental ~eval_cache g
      in
      let min0, mst0 = mini ~incremental:false ~eval_cache:0 in
      List.iter
        (fun (incremental, eval_cache) ->
          let mn, mst = mini ~incremental ~eval_cache in
          if mst <> mst0 then
            Alcotest.failf "minimize stats differ (incr=%b cache=%d)"
              incremental eval_cache;
          match (min0, mn) with
          | None, None -> ()
          | Some (a, ca), Some (b, cb)
            when Solution.equal a b && bits_eq ca cb -> ()
          | _ ->
              Alcotest.failf "minimize results differ (incr=%b cache=%d)"
                incremental eval_cache)
        [ (true, 0); (false, 256); (true, 256) ];
      true)

let test_solver_rejects_incremental_rollouts () =
  let g =
    Generate.erdos_renyi ~rng:(rng 8)
      { Generate.default with n = 4; m = 3; p_edge = 0.5; p_inf = 0.0 }
  in
  let net = tiny_net ~m:3 () in
  Alcotest.check_raises "rollouts are persistent-only"
    (Invalid_argument "Solver.solve_feasible: rollouts are unsupported incrementally")
    (fun () ->
      ignore (Core.Solver.solve_feasible ~net ~rollouts:true ~incremental:true g))

(* ------------------------------------------------------------------ *)
(* Whole-run invariance: {persistent, incremental} x {cache off, on} *)

let params_identical a b =
  List.for_all2
    (fun (x : Nn.Var.t) (y : Nn.Var.t) ->
      tensor_bits_equal x.Nn.Var.value y.Nn.Var.value)
    (Nn.Pvnet.params a) (Nn.Pvnet.params b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_training_invariant_under_incremental_and_cache () =
  let m = 3 in
  let dir = Filename.temp_file "incrrun" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let run ~label ~incremental ~eval_cache ~domains =
    let prefix = Filename.concat dir label in
    let cfg =
      {
        (Core.Train.default_config ~m) with
        iterations = 2;
        episodes_per_iteration = 3;
        domains;
        incremental;
        eval_cache;
        mcts = { Mcts.default_config with k = 6 };
        net =
          { (Nn.Pvnet.default_config ~m) with trunk_width = 8;
            trunk_blocks = 1; gcn_layers = 1 };
        n_mean = 6.0;
        n_stddev = 1.0;
        n_min = 3;
        arena_games = 2;
        batches_per_iteration = 2;
        batch_size = 8;
        checkpoint = Some prefix;
      }
    in
    let net = Core.Train.run ~rng:(rng 5) cfg in
    (net, read_file (prefix ^ ".replay.txt"))
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let net0, replay0 =
        run ~label:"base" ~incremental:false ~eval_cache:0 ~domains:1
      in
      List.iter
        (fun (label, incremental, eval_cache, domains) ->
          let net, replay = run ~label ~incremental ~eval_cache ~domains in
          Alcotest.(check string)
            (label ^ ": replay identical, byte for byte")
            replay0 replay;
          Alcotest.(check bool)
            (label ^ ": final net identical, bit for bit")
            true (params_identical net0 net))
        [
          ("incr", true, 0, 1);
          ("cache", false, 512, 1);
          ("incr-cache", true, 512, 1);
          ("incr-cache-j2", true, 512, 2);
        ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incr"
    [
      ( "istate",
        [
          test_walk_matches_oracle;
          test_cursor_seeks_match_oracle;
          Alcotest.test_case "snapshot outlives trail motion" `Quick
            test_snapshot_outlives_motion;
          Alcotest.test_case "validations" `Quick test_istate_validations;
        ] );
      ( "evalcache",
        [
          Alcotest.test_case "roundtrip + copies" `Quick test_cache_roundtrip;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "version invalidation" `Quick
            test_cache_version_invalidates;
          Alcotest.test_case "validation" `Quick test_cache_validates;
          Alcotest.test_case "pvnet version stamps" `Quick
            test_pvnet_version_bumps;
        ] );
      ( "episode",
        [ test_episode_equivalence ] );
      ( "solver",
        [
          test_solver_equivalence;
          Alcotest.test_case "incremental rollouts rejected" `Quick
            test_solver_rejects_incremental_rollouts;
        ] );
      ( "training-run",
        [
          Alcotest.test_case
            "{persistent,incremental} x {cache off,on} x domains" `Slow
            test_training_invariant_under_incremental_and_cache;
        ] );
    ]
