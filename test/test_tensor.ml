(* Equivalence tests for the cache-tiled GEMM: [Tensor.matmul] (tiled)
   must be BIT-identical to [Tensor.matmul_naive] — same k-ascending
   accumulation order per output element, so not even the last ulp may
   differ.  Random shapes, adversarial shapes straddling the 32-wide
   block boundary, sparsity (the zero-skip path), and the row-stacking
   helpers. *)

open Testutil

(* bit-level equality: approx_equal would hide an accumulation-order bug *)
let bits_equal a b = tensor_bits_equal a b

let t_bits = Alcotest.testable Tensor.pp bits_equal

(* Random matrices with zeros mixed in (exercises the tiled kernel's
   zero-skip), negatives, and a wide magnitude range so accumulation
   order would actually show up in the low bits if it differed. *)
let random_matrix rng ?(p_zero = 0.2) r c =
  Tensor.init2 r c (fun _ _ ->
      if Random.State.float rng 1.0 < p_zero then 0.0
      else
        let mag = 10.0 ** Random.State.float rng 6.0 in
        (Random.State.float rng 2.0 -. 1.0) *. mag)

let check_pair rng ?p_zero ra ca cb =
  let a = random_matrix rng ?p_zero ra ca in
  let b = random_matrix rng ?p_zero ca cb in
  let tiled = Tensor.matmul a b in
  let naive = Tensor.matmul_naive a b in
  if not (bits_equal tiled naive) then
    Alcotest.failf "tiled <> naive for %dx%d @ %dx%d" ra ca ca cb

let test_tiled_equals_naive_random =
  let arb =
    QCheck.make
      ~print:(fun (s, ra, ca, cb) -> Printf.sprintf "seed=%d %dx%d @ %dx%d" s ra ca ca cb)
      QCheck.Gen.(
        let* s = int_bound 1_000_000 in
        let* ra = int_range 1 70 in
        let* ca = int_range 1 70 in
        let* cb = int_range 1 70 in
        pure (s, ra, ca, cb))
  in
  qtest ~count:60 "tiled = naive (random shapes, bitwise)" arb
    (fun (s, ra, ca, cb) ->
      check_pair (rng s) ra ca cb;
      true)

let test_tiled_equals_naive_adversarial () =
  let rng = rng 42 in
  (* degenerate and block-boundary-straddling shapes: the tile width is
     32, so 31/32/33 and 64/65 cross every edge case of the loop nest *)
  List.iter
    (fun (ra, ca, cb) -> check_pair rng ra ca cb)
    [
      (1, 1, 1);
      (1, 64, 1);
      (1, 33, 50);  (* 1xN row vector *)
      (50, 33, 1);  (* Nx1 column result *)
      (64, 1, 64);  (* inner dim 1 *)
      (31, 31, 31);
      (32, 32, 32);
      (33, 33, 33);
      (31, 32, 33);
      (33, 32, 31);
      (64, 65, 63);
      (65, 64, 65);
      (2, 96, 2);   (* many k-blocks, tiny output *)
      (96, 2, 96);  (* one k-block, many row/col blocks *)
    ]

let test_tiled_equals_naive_sparse () =
  (* all-zero and nearly-all-zero inputs: the zero-skip must still write
     every output element (no stale garbage), and signed zeros must not
     leak a -0.0 that the naive kernel would not produce *)
  let rng = rng 7 in
  let a = Tensor.init2 40 40 (fun i j -> if i = j then -1.0 else 0.0) in
  let b = random_matrix rng 40 40 in
  Alcotest.check t_bits "negated diagonal" (Tensor.matmul_naive a b)
    (Tensor.matmul a b);
  let z = Tensor.zeros [| 33; 33 |] in
  let b33 = random_matrix rng 33 50 in
  Alcotest.check t_bits "zero times random" (Tensor.matmul_naive z b33)
    (Tensor.matmul z b33);
  check_pair rng ~p_zero:0.95 45 45 45

let test_matmul_into_reuses_buffer () =
  let rng = rng 9 in
  let a = random_matrix rng 20 33 in
  let b = random_matrix rng 33 17 in
  let out = Tensor.init2 20 17 (fun _ _ -> Float.nan) in
  (* garbage in the output buffer must be fully overwritten *)
  Tensor.matmul_into out a b;
  Alcotest.check t_bits "into = fresh" (Tensor.matmul a b) out;
  (* and the buffer is reusable across calls *)
  let a2 = random_matrix rng 20 33 in
  Tensor.matmul_into out a2 b;
  Alcotest.check t_bits "second fill" (Tensor.matmul a2 b) out

let test_matmul_into_errors () =
  let a = Tensor.zeros [| 2; 3 |] and b = Tensor.zeros [| 3; 4 |] in
  Alcotest.check_raises "inner dims"
    (Invalid_argument "Tensor.matmul_into: inner dims differ") (fun () ->
      Tensor.matmul_into (Tensor.zeros [| 2; 4 |]) a (Tensor.zeros [| 2; 4 |]));
  Alcotest.check_raises "output shape"
    (Invalid_argument "Tensor.matmul_into: output shape mismatch") (fun () ->
      Tensor.matmul_into (Tensor.zeros [| 4; 2 |]) a b);
  let sq = Tensor.zeros [| 3; 3 |] in
  Alcotest.check_raises "aliasing"
    (Invalid_argument "Tensor.matmul_into: output aliases an input") (fun () ->
      Tensor.matmul_into sq sq sq)

let test_stack_rows_row_roundtrip () =
  let rng = rng 11 in
  let m = random_matrix rng 7 5 in
  let rows = List.init 7 (Tensor.row m) in
  Alcotest.check t_bits "stack (row m i) = m" m (Tensor.stack_rows rows);
  let r3 = Tensor.row m 3 in
  Alcotest.(check int) "row rank" 1 (Tensor.rank r3);
  Alcotest.(check (float 0.0)) "row copies" (Tensor.get2 m 3 2)
    (Tensor.get1 r3 2);
  (* mutating the extracted row must not write through to the matrix *)
  Float.Array.set (Tensor.data r3) 2 123.0;
  Alcotest.(check bool) "row is a copy" false (Tensor.get2 m 3 2 = 123.0)

let test_blit_row_into () =
  let rng = rng 13 in
  let m = random_matrix rng 4 6 in
  let src = random_matrix rng 1 6 in
  let src = Tensor.row src 0 in
  let expect =
    Tensor.init2 4 6 (fun i j ->
        if i = 2 then Tensor.get1 src j else Tensor.get2 m i j)
  in
  Tensor.blit_row_into src 2 m;
  Alcotest.check t_bits "row 2 overwritten, others untouched" expect m;
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Tensor.blit_row_into: width mismatch") (fun () ->
      Tensor.blit_row_into (Tensor.zeros [| 5 |]) 0 m);
  Alcotest.check_raises "row out of bounds"
    (Invalid_argument "Tensor.blit_row_into: row out of bounds") (fun () ->
      Tensor.blit_row_into (Tensor.zeros [| 6 |]) 4 m)

(* ------------------------------------------------------------------ *)
(* Packed-panel GEMM with fused epilogues: [matmul_packed_into] must be
   bit-identical to the retained naive/tiled kernels (same ascending-k
   zero-skip accumulation per cell) and, with epilogues, to the unfused
   sequence "matmul, + bias, + residual, relu" in exactly that order. *)

(* the unfused reference epilogue, same float ops in the same order as
   the fused kernel's *)
let epilogue ?bias ?residual ~relu prod =
  let r, c = Tensor.dims2 prod in
  Tensor.init2 r c (fun i j ->
      let v = Tensor.get2 prod i j in
      let v = match bias with Some b -> v +. Tensor.get1 b j | None -> v in
      let v =
        match residual with Some m -> Tensor.get2 m i j +. v | None -> v
      in
      if relu then (if v > 0.0 then v else 0.0) else v)

let check_packed rng ?p_zero ra ca cb =
  let a = random_matrix rng ?p_zero ra ca in
  let b = random_matrix rng ?p_zero ca cb in
  let out = Tensor.init2 ra cb (fun _ _ -> Float.nan) in
  Tensor.matmul_packed_into out a (Tensor.pack b);
  if not (bits_equal out (Tensor.matmul_naive a b)) then
    Alcotest.failf "packed <> naive for %dx%d @ %dx%d" ra ca ca cb

let test_packed_equals_naive_random =
  let arb =
    QCheck.make
      ~print:(fun (s, ra, ca, cb) ->
        Printf.sprintf "seed=%d %dx%d @ %dx%d" s ra ca ca cb)
      QCheck.Gen.(
        let* s = int_bound 1_000_000 in
        let* ra = int_range 1 70 in
        let* ca = int_range 1 70 in
        let* cb = int_range 1 70 in
        pure (s, ra, ca, cb))
  in
  qtest ~count:60 "packed = naive (random shapes, bitwise)" arb
    (fun (s, ra, ca, cb) ->
      check_packed (rng s) ra ca cb;
      true)

let test_packed_adversarial () =
  let rng = rng 21 in
  (* the panel width is 8: 7/8/9 and 15/16/17 cross every tail case, and
     the 95%-zero pair exercises the zero-skip against panel padding *)
  List.iter
    (fun (ra, ca, cb) -> check_packed rng ra ca cb)
    [
      (1, 1, 1);
      (1, 64, 1);
      (3, 5, 7);
      (5, 3, 8);
      (4, 4, 9);
      (2, 33, 15);
      (33, 2, 16);
      (9, 17, 17);
      (31, 32, 33);
      (16, 48, 24);
    ];
  check_packed rng ~p_zero:0.95 45 45 45

let test_pack_transposed () =
  let rng = rng 23 in
  (* x (b x k) times w^T for an n x k weight: the linear-layer forward *)
  List.iter
    (fun (b, k, n) ->
      let x = random_matrix rng b k in
      let w = random_matrix rng n k in
      let out = Tensor.init2 b n (fun _ _ -> Float.nan) in
      Tensor.matmul_packed_into out x (Tensor.pack_transposed w);
      Alcotest.check t_bits
        (Printf.sprintf "x w^T %dx%dx%d" b k n)
        (Tensor.matmul_naive x (Tensor.transpose w))
        out;
      Alcotest.(check (pair int int))
        "packed_dims" (k, n)
        (Tensor.packed_dims (Tensor.pack_transposed w)))
    [ (1, 1, 1); (4, 7, 9); (32, 39, 32); (5, 16, 13) ]

let test_fused_equals_unfused () =
  let rng = rng 25 in
  List.iter
    (fun (ra, ca, cb) ->
      let a = random_matrix rng ra ca in
      let b = random_matrix rng ca cb in
      let bias = Tensor.row (random_matrix rng 1 cb) 0 in
      let residual = random_matrix rng ra cb in
      let bp = Tensor.pack b in
      let prod = Tensor.matmul_naive a b in
      let check ?bias ?residual ~relu name =
        let out = Tensor.init2 ra cb (fun _ _ -> Float.nan) in
        Tensor.matmul_packed_into ?bias ?residual ~relu out a bp;
        Alcotest.check t_bits
          (Printf.sprintf "%s %dx%dx%d" name ra ca cb)
          (epilogue ?bias ?residual ~relu prod)
          out
      in
      check ~relu:false "no epilogue";
      check ~bias ~relu:false "bias";
      check ~bias ~relu:true "bias+relu";
      check ~bias ~residual ~relu:false "bias+residual";
      check ~bias ~residual ~relu:true "bias+residual+relu";
      check ~residual ~relu:true "residual+relu")
    [ (1, 3, 5); (7, 9, 8); (32, 39, 32); (13, 16, 17) ]

let test_fused_residual_aliasing () =
  (* out == residual: each cell is read before its single write, so
     accumulating straight into the residual buffer is bit-identical to
     the copying variant — the Pvnet trunk writes fc2 + skip in place *)
  let rng = rng 27 in
  let a = random_matrix rng 12 33 in
  let b = random_matrix rng 33 20 in
  let bias = Tensor.row (random_matrix rng 1 20) 0 in
  let residual = random_matrix rng 12 20 in
  let expect =
    epilogue ~bias ~residual ~relu:false (Tensor.matmul_naive a b)
  in
  let out = Tensor.copy residual in
  Tensor.matmul_packed_into ~bias ~residual:out out a (Tensor.pack b);
  Alcotest.check t_bits "out == residual aliasing" expect out

let test_packed_errors () =
  let a = Tensor.zeros [| 2; 3 |] in
  let bp = Tensor.pack (Tensor.zeros [| 3; 4 |]) in
  Alcotest.check_raises "inner dims"
    (Invalid_argument "Tensor.matmul_packed_into: inner dims differ")
    (fun () ->
      Tensor.matmul_packed_into (Tensor.zeros [| 2; 4 |])
        (Tensor.zeros [| 2; 4 |])
        bp);
  Alcotest.check_raises "output shape"
    (Invalid_argument "Tensor.matmul_packed_into: output shape mismatch")
    (fun () -> Tensor.matmul_packed_into (Tensor.zeros [| 4; 2 |]) a bp);
  Alcotest.check_raises "aliasing input"
    (Invalid_argument "Tensor.matmul_packed_into: output aliases input")
    (fun () ->
      let sq = Tensor.zeros [| 3; 3 |] in
      Tensor.matmul_packed_into sq sq (Tensor.pack (Tensor.zeros [| 3; 3 |])));
  Alcotest.check_raises "bias width"
    (Invalid_argument "Tensor.matmul_packed_into: bias width mismatch")
    (fun () ->
      Tensor.matmul_packed_into
        ~bias:(Tensor.zeros [| 3 |])
        (Tensor.zeros [| 2; 4 |])
        a bp)

(* ------------------------------------------------------------------ *)
(* floatarray bridges *)

let test_float_array_bridges () =
  let rng = rng 29 in
  let t = Tensor.row (random_matrix rng 1 9) 0 in
  let fa = Tensor.to_float_array t in
  Alcotest.check t_bits "of_float_array (to_float_array t) = t" t
    (Tensor.of_float_array fa);
  (* both directions copy: mutating the bridge value must not alias *)
  Float.Array.set fa 0 42.0;
  Alcotest.(check bool) "to_float_array copies" false (Tensor.get1 t 0 = 42.0);
  let t2 = Tensor.of_float_array fa in
  Float.Array.set fa 1 43.0;
  Alcotest.(check bool) "of_float_array copies" false (Tensor.get1 t2 1 = 43.0);
  (* rank-2 flattens row-major *)
  let m = random_matrix rng 3 4 in
  let fm = Tensor.to_float_array m in
  Alcotest.(check int) "rank-2 flat length" 12 (Float.Array.length fm);
  Alcotest.(check bool) "row-major order" true
    (Float.Array.get fm 5 = Tensor.get2 m 1 1);
  Alcotest.check_raises "empty"
    (Invalid_argument "Tensor.of_float_array: empty") (fun () ->
      ignore (Tensor.of_float_array (Float.Array.create 0)))

(* ------------------------------------------------------------------ *)
(* int8 quantized GEMM *)

let test_quantized_accuracy () =
  let rng = rng 31 in
  (* well-scaled inputs (the serving regime): per-row int8 must stay
     within a small relative error of the float product *)
  let b = 16 and k = 48 and n = 24 in
  let x =
    Tensor.init2 b k (fun _ _ -> Random.State.float rng 2.0 -. 1.0)
  in
  let w =
    Tensor.init2 n k (fun _ _ -> Random.State.float rng 2.0 -. 1.0)
  in
  let qw = Tensor.Q.quantize_rows w in
  Alcotest.(check (pair int int))
    "dims" (n, k)
    (Tensor.Q.rows qw, Tensor.Q.cols qw);
  let scr = Tensor.Q.scratch ~rows:b ~cols:k in
  let out = Tensor.zeros [| b; n |] in
  Tensor.Q.matmul_qt_into ~scratch:scr out x qw;
  let exact = Tensor.matmul_naive x (Tensor.transpose w) in
  (* |q - x| <= scale/2 per operand; with k=48 unit-range terms the
     product error stays well under 0.05 absolute *)
  for i = 0 to b - 1 do
    for j = 0 to n - 1 do
      let d = Float.abs (Tensor.get2 out i j -. Tensor.get2 exact i j) in
      if d > 0.05 then
        Alcotest.failf "quantized error %.4f at (%d, %d)" d i j
    done
  done;
  (* determinism: a second run is bitwise identical *)
  let out2 = Tensor.zeros [| b; n |] in
  Tensor.Q.matmul_qt_into ~scratch:scr out2 x qw;
  Alcotest.check t_bits "deterministic" out out2;
  (* the fused epilogue follows the same order as the float kernel *)
  let bias = Tensor.row (random_matrix rng 1 n) 0 in
  let residual = random_matrix rng b n in
  let fused = Tensor.zeros [| b; n |] in
  Tensor.Q.matmul_qt_into ~bias ~residual ~relu:true ~scratch:scr fused x qw;
  Alcotest.check t_bits "fused = plain + epilogue"
    (epilogue ~bias ~residual ~relu:true out)
    fused

let test_quantized_corruption_visible () =
  (* corrupt_for_test must produce a divergence a certifier can see *)
  let rng = rng 33 in
  let b = 4 and k = 32 and n = 8 in
  let x = Tensor.init2 b k (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
  let w = Tensor.init2 n k (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
  let qw = Tensor.Q.quantize_rows w in
  let scr = Tensor.Q.scratch ~rows:b ~cols:k in
  let before = Tensor.zeros [| b; n |] in
  Tensor.Q.matmul_qt_into ~scratch:scr before x qw;
  Tensor.Q.corrupt_for_test qw;
  let after = Tensor.zeros [| b; n |] in
  Tensor.Q.matmul_qt_into ~scratch:scr after x qw;
  Alcotest.(check bool) "corruption changes the product" false
    (bits_equal before after)

let test_quantized_errors () =
  let x = Tensor.zeros [| 4; 6 |] in
  let qw = Tensor.Q.quantize_rows (Tensor.zeros [| 5; 6 |]) in
  Alcotest.check_raises "scratch too small"
    (Invalid_argument "Tensor.Q.matmul_qt_into: scratch too small")
    (fun () ->
      Tensor.Q.matmul_qt_into
        ~scratch:(Tensor.Q.scratch ~rows:2 ~cols:6)
        (Tensor.zeros [| 4; 5 |])
        x qw);
  Alcotest.check_raises "inner dims"
    (Invalid_argument "Tensor.Q.matmul_qt_into: inner dims differ")
    (fun () ->
      Tensor.Q.matmul_qt_into
        ~scratch:(Tensor.Q.scratch ~rows:4 ~cols:7)
        (Tensor.zeros [| 4; 5 |])
        (Tensor.zeros [| 4; 7 |])
        qw)

let test_stack_rows_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Tensor.stack_rows: empty")
    (fun () -> ignore (Tensor.stack_rows []));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Tensor.stack_rows: ragged rows") (fun () ->
      ignore (Tensor.stack_rows [ Tensor.zeros [| 2 |]; Tensor.zeros [| 3 |] ]));
  Alcotest.check_raises "row out of bounds"
    (Invalid_argument "Tensor.row: index out of bounds") (fun () ->
      ignore (Tensor.row (Tensor.zeros [| 2; 2 |]) 2))

let () =
  Alcotest.run "tensor"
    [
      ( "tiled-gemm",
        [
          test_tiled_equals_naive_random;
          Alcotest.test_case "adversarial shapes" `Quick
            test_tiled_equals_naive_adversarial;
          Alcotest.test_case "sparse inputs" `Quick
            test_tiled_equals_naive_sparse;
          Alcotest.test_case "matmul_into buffer reuse" `Quick
            test_matmul_into_reuses_buffer;
          Alcotest.test_case "matmul_into errors" `Quick
            test_matmul_into_errors;
        ] );
      ( "packed-gemm",
        [
          test_packed_equals_naive_random;
          Alcotest.test_case "panel-boundary shapes" `Quick
            test_packed_adversarial;
          Alcotest.test_case "pack_transposed = x w^T" `Quick
            test_pack_transposed;
          Alcotest.test_case "fused = unfused epilogue" `Quick
            test_fused_equals_unfused;
          Alcotest.test_case "out == residual aliasing" `Quick
            test_fused_residual_aliasing;
          Alcotest.test_case "packed errors" `Quick test_packed_errors;
        ] );
      ( "bridges",
        [
          Alcotest.test_case "floatarray round-trips copy" `Quick
            test_float_array_bridges;
        ] );
      ( "quantized",
        [
          Alcotest.test_case "int8 accuracy + fused epilogue" `Quick
            test_quantized_accuracy;
          Alcotest.test_case "corruption is visible" `Quick
            test_quantized_corruption_visible;
          Alcotest.test_case "quantized errors" `Quick test_quantized_errors;
        ] );
      ( "row-helpers",
        [
          Alcotest.test_case "stack_rows/row roundtrip" `Quick
            test_stack_rows_row_roundtrip;
          Alcotest.test_case "blit_row_into" `Quick test_blit_row_into;
          Alcotest.test_case "stack_rows errors" `Quick test_stack_rows_errors;
        ] );
    ]
