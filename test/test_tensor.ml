(* Equivalence tests for the cache-tiled GEMM: [Tensor.matmul] (tiled)
   must be BIT-identical to [Tensor.matmul_naive] — same k-ascending
   accumulation order per output element, so not even the last ulp may
   differ.  Random shapes, adversarial shapes straddling the 32-wide
   block boundary, sparsity (the zero-skip path), and the row-stacking
   helpers. *)

open Testutil

(* bit-level equality: approx_equal would hide an accumulation-order bug *)
let bits_equal a b =
  Tensor.shape a = Tensor.shape b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       (Tensor.data a) (Tensor.data b)

let t_bits = Alcotest.testable Tensor.pp bits_equal

(* Random matrices with zeros mixed in (exercises the tiled kernel's
   zero-skip), negatives, and a wide magnitude range so accumulation
   order would actually show up in the low bits if it differed. *)
let random_matrix rng ?(p_zero = 0.2) r c =
  Tensor.init2 r c (fun _ _ ->
      if Random.State.float rng 1.0 < p_zero then 0.0
      else
        let mag = 10.0 ** Random.State.float rng 6.0 in
        (Random.State.float rng 2.0 -. 1.0) *. mag)

let check_pair rng ?p_zero ra ca cb =
  let a = random_matrix rng ?p_zero ra ca in
  let b = random_matrix rng ?p_zero ca cb in
  let tiled = Tensor.matmul a b in
  let naive = Tensor.matmul_naive a b in
  if not (bits_equal tiled naive) then
    Alcotest.failf "tiled <> naive for %dx%d @ %dx%d" ra ca ca cb

let test_tiled_equals_naive_random =
  let arb =
    QCheck.make
      ~print:(fun (s, ra, ca, cb) -> Printf.sprintf "seed=%d %dx%d @ %dx%d" s ra ca ca cb)
      QCheck.Gen.(
        let* s = int_bound 1_000_000 in
        let* ra = int_range 1 70 in
        let* ca = int_range 1 70 in
        let* cb = int_range 1 70 in
        pure (s, ra, ca, cb))
  in
  qtest ~count:60 "tiled = naive (random shapes, bitwise)" arb
    (fun (s, ra, ca, cb) ->
      check_pair (rng s) ra ca cb;
      true)

let test_tiled_equals_naive_adversarial () =
  let rng = rng 42 in
  (* degenerate and block-boundary-straddling shapes: the tile width is
     32, so 31/32/33 and 64/65 cross every edge case of the loop nest *)
  List.iter
    (fun (ra, ca, cb) -> check_pair rng ra ca cb)
    [
      (1, 1, 1);
      (1, 64, 1);
      (1, 33, 50);  (* 1xN row vector *)
      (50, 33, 1);  (* Nx1 column result *)
      (64, 1, 64);  (* inner dim 1 *)
      (31, 31, 31);
      (32, 32, 32);
      (33, 33, 33);
      (31, 32, 33);
      (33, 32, 31);
      (64, 65, 63);
      (65, 64, 65);
      (2, 96, 2);   (* many k-blocks, tiny output *)
      (96, 2, 96);  (* one k-block, many row/col blocks *)
    ]

let test_tiled_equals_naive_sparse () =
  (* all-zero and nearly-all-zero inputs: the zero-skip must still write
     every output element (no stale garbage), and signed zeros must not
     leak a -0.0 that the naive kernel would not produce *)
  let rng = rng 7 in
  let a = Tensor.init2 40 40 (fun i j -> if i = j then -1.0 else 0.0) in
  let b = random_matrix rng 40 40 in
  Alcotest.check t_bits "negated diagonal" (Tensor.matmul_naive a b)
    (Tensor.matmul a b);
  let z = Tensor.zeros [| 33; 33 |] in
  let b33 = random_matrix rng 33 50 in
  Alcotest.check t_bits "zero times random" (Tensor.matmul_naive z b33)
    (Tensor.matmul z b33);
  check_pair rng ~p_zero:0.95 45 45 45

let test_matmul_into_reuses_buffer () =
  let rng = rng 9 in
  let a = random_matrix rng 20 33 in
  let b = random_matrix rng 33 17 in
  let out = Tensor.init2 20 17 (fun _ _ -> Float.nan) in
  (* garbage in the output buffer must be fully overwritten *)
  Tensor.matmul_into out a b;
  Alcotest.check t_bits "into = fresh" (Tensor.matmul a b) out;
  (* and the buffer is reusable across calls *)
  let a2 = random_matrix rng 20 33 in
  Tensor.matmul_into out a2 b;
  Alcotest.check t_bits "second fill" (Tensor.matmul a2 b) out

let test_matmul_into_errors () =
  let a = Tensor.zeros [| 2; 3 |] and b = Tensor.zeros [| 3; 4 |] in
  Alcotest.check_raises "inner dims"
    (Invalid_argument "Tensor.matmul_into: inner dims differ") (fun () ->
      Tensor.matmul_into (Tensor.zeros [| 2; 4 |]) a (Tensor.zeros [| 2; 4 |]));
  Alcotest.check_raises "output shape"
    (Invalid_argument "Tensor.matmul_into: output shape mismatch") (fun () ->
      Tensor.matmul_into (Tensor.zeros [| 4; 2 |]) a b);
  let sq = Tensor.zeros [| 3; 3 |] in
  Alcotest.check_raises "aliasing"
    (Invalid_argument "Tensor.matmul_into: output aliases an input") (fun () ->
      Tensor.matmul_into sq sq sq)

let test_stack_rows_row_roundtrip () =
  let rng = rng 11 in
  let m = random_matrix rng 7 5 in
  let rows = List.init 7 (Tensor.row m) in
  Alcotest.check t_bits "stack (row m i) = m" m (Tensor.stack_rows rows);
  let r3 = Tensor.row m 3 in
  Alcotest.(check int) "row rank" 1 (Tensor.rank r3);
  Alcotest.(check (float 0.0)) "row copies" (Tensor.get2 m 3 2)
    (Tensor.get1 r3 2);
  (* mutating the extracted row must not write through to the matrix *)
  (Tensor.data r3).(2) <- 123.0;
  Alcotest.(check bool) "row is a copy" false (Tensor.get2 m 3 2 = 123.0)

let test_blit_row_into () =
  let rng = rng 13 in
  let m = random_matrix rng 4 6 in
  let src = random_matrix rng 1 6 in
  let src = Tensor.row src 0 in
  let expect =
    Tensor.init2 4 6 (fun i j ->
        if i = 2 then Tensor.get1 src j else Tensor.get2 m i j)
  in
  Tensor.blit_row_into src 2 m;
  Alcotest.check t_bits "row 2 overwritten, others untouched" expect m;
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Tensor.blit_row_into: width mismatch") (fun () ->
      Tensor.blit_row_into (Tensor.zeros [| 5 |]) 0 m);
  Alcotest.check_raises "row out of bounds"
    (Invalid_argument "Tensor.blit_row_into: row out of bounds") (fun () ->
      Tensor.blit_row_into (Tensor.zeros [| 6 |]) 4 m)

let test_stack_rows_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Tensor.stack_rows: empty")
    (fun () -> ignore (Tensor.stack_rows []));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Tensor.stack_rows: ragged rows") (fun () ->
      ignore (Tensor.stack_rows [ Tensor.zeros [| 2 |]; Tensor.zeros [| 3 |] ]));
  Alcotest.check_raises "row out of bounds"
    (Invalid_argument "Tensor.row: index out of bounds") (fun () ->
      ignore (Tensor.row (Tensor.zeros [| 2; 2 |]) 2))

let () =
  Alcotest.run "tensor"
    [
      ( "tiled-gemm",
        [
          test_tiled_equals_naive_random;
          Alcotest.test_case "adversarial shapes" `Quick
            test_tiled_equals_naive_adversarial;
          Alcotest.test_case "sparse inputs" `Quick
            test_tiled_equals_naive_sparse;
          Alcotest.test_case "matmul_into buffer reuse" `Quick
            test_matmul_into_reuses_buffer;
          Alcotest.test_case "matmul_into errors" `Quick
            test_matmul_into_errors;
        ] );
      ( "row-helpers",
        [
          Alcotest.test_case "stack_rows/row roundtrip" `Quick
            test_stack_rows_row_roundtrip;
          Alcotest.test_case "blit_row_into" `Quick test_blit_row_into;
          Alcotest.test_case "stack_rows errors" `Quick test_stack_rows_errors;
        ] );
    ]
