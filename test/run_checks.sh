#!/bin/sh
# One-shot verification gate: build, run every test suite, then run the
# linter's self-test battery (also available as `dune build @check`).
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @quick =="
# sub-minute inner-loop suites (tensor/nn equivalence, MCTS, pbqp); the
# full matrix follows, this just fails fast on the cheap ones
dune build @quick

echo "== dune build @analyze =="
# the repo's own static analysis (lib/analyze): guarded-by lock regions,
# lock-order cycles, hash-order/Random nondeterminism and the [@hot]
# allocation lint over lib/ and bin/; any finding whose rule|file|symbol
# key is not in ANALYZE_BASELINE fails the gate
dune build @analyze

echo "== pbqp_analyze --json =="
# same gate, machine-readable: non-zero exit on any unbaselined finding
dune exec bin/pbqp_analyze.exe -- --json --baseline ANALYZE_BASELINE lib bin

echo "== dune runtest =="
dune runtest

echo "== dune build @gemm =="
# GEMM-kernel equivalence suite: the packed-panel fused kernels and the
# tiled kernel bitwise against the naive reference, the floatarray
# bridges, and the int8 quantized kernel's accuracy envelope
dune build @gemm

echo "== dune build @par =="
# parallel-runtime equivalence suite: pool GEMM / train step / whole
# training runs must be bit-identical to serial at every pool size
dune build @par

echo "== dune build @incr =="
# incremental-state/evaluation-cache equivalence suite: trail apply/undo
# and cursor seeks vs the persistent State oracle (bitwise), Evalcache
# LRU/version semantics, and episode/solver/training equivalence across
# {persistent, incremental} x {cache off, on}
dune build @incr

echo "== dune build @exact =="
# exact-solver differential suite: 500 seeded graphs exact-vs-brute,
# family floor sweeps (no solver ever below the proven optimum), bound
# admissibility / budget-determinism properties, the Certify exact
# oracle, label round-trips, and the minimized fixture corpus
dune build @exact

echo "== dune build @serve =="
# inference-service equivalence suite: the Nn.Infer ticket protocol
# (coalescing, timeout flushes, first-exn), striped-cache consistency
# under domains, and bitwise episodes/training runs across
# {direct, service} x pool sizes x {cache off, on}
dune build @serve

echo "== dune build @daemon =="
# allocation-service suite: the Serve.Wire codec and malformed-frame
# rejection, daemon admission control, deadlines, hot-reload, the
# 4-concurrent-clients-bitwise-=-serial determinism claim, and the
# poisoned-batch Nn.Infer regression
dune build @daemon

echo "== dune build @dist =="
# distributed actor/learner suite: manifest and message codecs, binary
# parameter-snapshot round trips, the sharded replay vs the plain ring,
# the weighted (staleness) train step, and the whole-run equalities
# (--actors 1 = in-process bitwise; multi-actor runs bit-reproducible)
dune build @dist

echo "== multi-domain smoke (train -j 2 --incremental --eval-cache --check) =="
# a tiny end-to-end training run on the domain pool with per-episode
# solution certification on, exercising pool self-play on the trail
# state with the shared striped evaluation cache + the data-parallel
# gradient step + the arena under the checker
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
dune exec bin/train.exe -- -i 1 -e 4 -j 2 -k 8 --n-mean 8 --check \
  --incremental --eval-cache 512 --batch 8 -o "$smoke_dir/smoke.ckpt"
test -f "$smoke_dir/smoke.ckpt"

echo "== service smoke (train -j 2 --serve-batch 16) =="
# the same tiny run with the cross-worker inference service coalescing
# leaf evaluations across both workers (still under the checker)
dune exec bin/train.exe -- -i 1 -e 4 -j 2 -k 8 --n-mean 8 --check \
  --incremental --eval-cache 512 --serve-batch 16 --batch 8 \
  -o "$smoke_dir/serve.ckpt"
test -f "$smoke_dir/serve.ckpt"

echo "== distributed smoke (2 actor subprocesses vs single-process) =="
# the real subprocess topology: one in-process reference run, then a
# --actors 1 run (must produce a bitwise-identical net checkpoint and
# replay buffer on the same seed), then two --actors 2 runs with a
# seeded manifest (their learner replay digests must agree with each
# other — bit-reproducibility across invocations)
train=./_build/default/bin/train.exe
dist_args="-i 1 -e 4 -j 1 -k 6 --n-mean 6 --batch 8 --seed 11"
"$train" $dist_args --checkpoint "$smoke_dir/ref" \
  -o "$smoke_dir/ref.ckpt" > /dev/null
"$train" $dist_args --checkpoint "$smoke_dir/d1" --actors 1 \
  --manifest "$smoke_dir/d1.manifest" -o "$smoke_dir/d1.ckpt" > /dev/null
cmp "$smoke_dir/ref.ckpt" "$smoke_dir/d1.ckpt" || {
  echo "--actors 1 net checkpoint differs from the in-process run"; exit 1
}
cmp "$smoke_dir/ref.replay.txt" "$smoke_dir/d1.replay.txt" || {
  echo "--actors 1 replay buffer differs from the in-process run"; exit 1
}
"$train" $dist_args --checkpoint "$smoke_dir/d2a" --actors 2 \
  --manifest "$smoke_dir/d2a.manifest" -o "$smoke_dir/d2a.ckpt" > /dev/null
"$train" $dist_args --checkpoint "$smoke_dir/d2b" --actors 2 \
  --manifest "$smoke_dir/d2b.manifest" -o "$smoke_dir/d2b.ckpt" > /dev/null
cmp "$smoke_dir/d2a.replay.txt" "$smoke_dir/d2b.replay.txt" || {
  echo "2-actor learner replay digest not reproducible across runs"; exit 1
}
cmp "$smoke_dir/d2a.ckpt" "$smoke_dir/d2b.ckpt" || {
  echo "2-actor net checkpoint not reproducible across runs"; exit 1
}

echo "== allocation daemon smoke (4 concurrent clients vs batch CLI) =="
# start the daemon on a scratch socket, drive it with 4 concurrent
# clients, check every daemon answer against the batch CLI on the same
# instance, push one rl solve through the coalescing tier, query stats,
# then SIGTERM and require a clean drain (exit 0, socket unlinked)
serve=./_build/default/bin/pbqp_serve.exe
solve=./_build/default/bin/pbqp_solve.exe
daemon_sock="$smoke_dir/pbqp_serve.sock"
"$serve" daemon --socket "$daemon_sock" -m 2 --workers 2 \
  > "$smoke_dir/daemon.log" 2>&1 &
daemon_pid=$!
i=0
until "$serve" ping --socket "$daemon_sock" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "daemon never came up"; cat "$smoke_dir/daemon.log"; exit 1
  fi
  sleep 0.1
done
smoke_fixtures="mrv_01 mrv_02 greedy_01 negative_00"
client_pids=""
for f in $smoke_fixtures; do
  "$serve" solve --socket "$daemon_sock" "test/fixtures/exact/$f.pbqp" \
    > "$smoke_dir/$f.daemon" 2>/dev/null &
  client_pids="$client_pids $!"
done
for p in $client_pids; do wait "$p"; done
for f in $smoke_fixtures; do
  want=$("$solve" -s scholz "test/fixtures/exact/$f.pbqp" \
    | sed -n 's/.*cost \([-0-9.]*\).*/\1/p' | head -1)
  got=$(sed -n 's/^cost \(.*\)$/\1/p' "$smoke_dir/$f.daemon")
  if [ "$got" != "$want" ]; then
    echo "daemon $f: cost $got != batch CLI cost $want"; exit 1
  fi
done
"$serve" solve --socket "$daemon_sock" -s rl -k 8 \
  test/fixtures/exact/mrv_01.pbqp > /dev/null
"$serve" stats --socket "$daemon_sock" | grep -q '^served ' || {
  echo "stats reply missing the served counter"; exit 1
}
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "daemon exited non-zero after SIGTERM"; exit 1; }
if [ -e "$daemon_sock" ]; then echo "socket not unlinked on drain"; exit 1; fi

echo "== bench --compare vs checked-in trajectory (serve group) =="
# perf-regression gate: rerun the serve bench group and fail on any
# >25% ns/op regression against the checked-in BENCH_serve.json (the
# other BENCH_*.json groups are far slower to rerun; serve covers the
# coalesced-inference and scratch-arena hot paths this gate protects).
# One retry: on a 1-core host a background blip can push a row past the
# threshold; a real regression fails both runs.
dune exec bench/main.exe -- serve --compare BENCH_serve.json || {
  echo "-- retrying once (transient load can trip the 25% threshold) --"
  dune exec bench/main.exe -- serve --compare BENCH_serve.json
}

echo "== bench --compare vs checked-in trajectory (gap group) =="
# optimality-gap gate: re-prove every family optimum with the exact
# branch-and-bound solver and fail on a >25% growth in branch-and-bound
# nodes per proof vs the checked-in BENCH_gap.json — the prover is
# deterministic, so unlike wall time this only moves on a real
# algorithmic regression (weakened bound or branching); one retry kept
# for symmetry with the serve gate
dune exec bench/main.exe -- gap --compare BENCH_gap.json || {
  echo "-- retrying once (transient load can trip the 25% threshold) --"
  dune exec bench/main.exe -- gap --compare BENCH_gap.json
}

echo "== bench --compare vs checked-in trajectory (daemon group) =="
# allocation-service gate: rerun the daemon bench (requests/s, p50/p99
# latency, leaf-evals/s over the real socket at 1/4/16 clients) and
# fail on a >25% per-request ns regression vs BENCH_daemon.json — or on
# the acceptance gate itself: coalesced serving below 1.5x the
# per-request ablation's requests/s at 4+ clients, or a mean coalesced
# batch size <= 1
dune exec bench/main.exe -- daemon --compare BENCH_daemon.json || {
  echo "-- retrying once (transient load can trip the 25% threshold) --"
  dune exec bench/main.exe -- daemon --compare BENCH_daemon.json
}

echo "== bench --compare vs checked-in trajectory (dist group) =="
# distributed-training gate: rerun the dist bench (whole training runs,
# in-process vs 1/2/4 domain-hosted actors over the real wire protocol)
# and fail on a >25% per-iteration ns regression vs BENCH_dist.json
dune exec bench/main.exe -- dist --compare BENCH_dist.json || {
  echo "-- retrying once (transient load can trip the 25% threshold) --"
  dune exec bench/main.exe -- dist --compare BENCH_dist.json
}

echo "== pbqp_lint --self-test =="
dune exec bin/pbqp_lint.exe -- --self-test

echo "== pbqp_lint --gen 50 --certify =="
dune exec bin/pbqp_lint.exe -- --gen 50 --certify

echo "== pbqp_lint --fuzz 25 (exact routing, quick profile) =="
# differential fuzzing of compiled MiniC programs with every PBQP graph
# of at most 24 live vertices also certified against the exact solver's
# proven optimum (--gap-vertices default); a claimed allocator cost
# below the optimum is an error
dune exec bin/pbqp_lint.exe -- --fuzz 25 --gap-nodes 500000

echo "all checks passed"
