#!/bin/sh
# One-shot verification gate: build, run every test suite, then run the
# linter's self-test battery (also available as `dune build @check`).
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @quick =="
# sub-minute inner-loop suites (tensor/nn equivalence, MCTS, pbqp); the
# full matrix follows, this just fails fast on the cheap ones
dune build @quick

echo "== dune runtest =="
dune runtest

echo "== pbqp_lint --self-test =="
dune exec bin/pbqp_lint.exe -- --self-test

echo "== pbqp_lint --gen 50 --certify =="
dune exec bin/pbqp_lint.exe -- --gen 50 --certify

echo "all checks passed"
