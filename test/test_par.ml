(* Determinism-under-parallelism tests for the Par.Pool runtime: pool
   semantics (order-keyed results, fixed reduction order, exception
   propagation, nested-region inlining), the pool-backed GEMM against the
   serial reference (bitwise), the data-parallel training step against
   the serial one (bitwise), and a whole domains=4 training run against
   domains=1 (identical replay buffer and weights). *)

open Testutil

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let with_pool ~domains f =
  let pool = Par.Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_order () =
  with_pool ~domains:4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let ys = Par.Pool.map pool xs ~f:(fun ~worker:_ x -> x * x) in
      Alcotest.(check (array int))
        "slot i holds f(x_i) regardless of scheduling"
        (Array.map (fun x -> x * x) xs)
        ys)

let test_pool_reduce_order () =
  (* catastrophic-cancellation values: any reordering of the fold would
     change the float result, so equality with the sequential fold is
     evidence the reduction order really is fixed *)
  let v i = (10.0 ** float_of_int (i mod 17)) -. (0.1 *. float_of_int i) in
  let n = 200 in
  let serial = ref 0.0 in
  for i = 0 to n - 1 do
    serial := !serial +. v i
  done;
  with_pool ~domains:4 (fun pool ->
      let parallel =
        Par.Pool.reduce pool ~n ~map:(fun ~worker:_ i -> v i)
          ~fold:( +. ) ~init:0.0
      in
      Alcotest.(check bool)
        "ascending-index fold, bit for bit" true
        (Int64.equal (Int64.bits_of_float !serial)
           (Int64.bits_of_float parallel)))

let test_pool_parallel_for_covers () =
  with_pool ~domains:3 (fun pool ->
      let n = 97 in
      let hits = Array.make n 0 in
      (* disjoint chunks: each index is written by exactly one task *)
      Par.Pool.parallel_for pool ~n ~chunk:5 (fun ~worker:_ i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index ran exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_exception_propagates () =
  with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "task failure re-raised on caller"
        (Failure "task 13") (fun () ->
          ignore
            (Par.Pool.map pool
               (Array.init 20 (fun i -> i))
               ~f:(fun ~worker:_ i ->
                 if i = 13 then failwith "task 13" else i)));
      (* the pool must survive a failed region *)
      let ys =
        Par.Pool.map pool (Array.init 5 (fun i -> i)) ~f:(fun ~worker:_ i ->
            i + 1)
      in
      Alcotest.(check (array int)) "pool usable after failure"
        [| 1; 2; 3; 4; 5 |] ys)

let test_pool_reuse_many_regions () =
  with_pool ~domains:4 (fun pool ->
      let total = ref 0 in
      for round = 1 to 50 do
        let s =
          Par.Pool.reduce pool ~n:round ~map:(fun ~worker:_ i -> i)
            ~fold:( + ) ~init:0
        in
        total := !total + s
      done;
      let expect = ref 0 in
      for round = 1 to 50 do
        expect := !expect + (round * (round - 1) / 2)
      done;
      Alcotest.(check int) "50 regions on one pool" !expect !total)

let test_pool_nested_runs_inline () =
  with_pool ~domains:3 (fun pool ->
      (* a task that itself submits a region: must not deadlock, and the
         inner region must see the outer worker's index *)
      let outer =
        Par.Pool.map pool (Array.init 6 (fun i -> i)) ~f:(fun ~worker i ->
            let inner =
              Par.Pool.map pool
                (Array.init 4 (fun j -> j))
                ~f:(fun ~worker:w j ->
                  Alcotest.(check int) "nested task inherits worker" worker w;
                  (i * 10) + j)
            in
            Array.fold_left ( + ) 0 inner)
      in
      Alcotest.(check (array int)) "nested results"
        (Array.init 6 (fun i -> (i * 40) + 6))
        outer)

let test_pool_shutdown_idempotent () =
  let pool = Par.Pool.create ~domains:3 in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  Alcotest.check_raises "used after shutdown"
    (Invalid_argument "Par.Pool: pool already shut down") (fun () ->
      Par.Pool.run pool [| (fun _ -> ()) |])

let test_pool_size_clamped () =
  with_pool ~domains:0 (fun pool ->
      Alcotest.(check int) "size >= 1" 1 (Par.Pool.size pool);
      let ys =
        Par.Pool.map pool (Array.init 3 (fun i -> i)) ~f:(fun ~worker:_ i ->
            i * 2)
      in
      Alcotest.(check (array int)) "inline pool works" [| 0; 2; 4 |] ys)

(* ------------------------------------------------------------------ *)
(* Pool-backed GEMM: bitwise vs the serial reference *)

let bits_equal a b = tensor_bits_equal a b

let random_matrix rng ?(p_zero = 0.2) r c =
  Tensor.init2 r c (fun _ _ ->
      if Random.State.float rng 1.0 < p_zero then 0.0
      else
        let mag = 10.0 ** Random.State.float rng 6.0 in
        (Random.State.float rng 2.0 -. 1.0) *. mag)

let with_tensor_pool ~domains f =
  with_pool ~domains (fun pool ->
      let prev = Tensor.get_pool () in
      Fun.protect
        ~finally:(fun () -> Tensor.set_pool prev)
        (fun () ->
          Tensor.set_pool (Some pool);
          f ()))

let check_pool_matmul rng ra ca cb =
  let a = random_matrix rng ra ca in
  let b = random_matrix rng ca cb in
  let naive = Tensor.matmul_naive a b in
  let pooled = Tensor.matmul a b in
  if not (bits_equal pooled naive) then
    Alcotest.failf "pool matmul <> naive for %dx%d @ %dx%d" ra ca ca cb

let test_pool_matmul_random =
  (* shapes up to 96^3 ≈ 885k mul-adds: comfortably across the 65536
     pool threshold, so both the inline and the split path are hit *)
  let arb =
    QCheck.make
      ~print:(fun (s, ra, ca, cb) ->
        Printf.sprintf "seed=%d %dx%d @ %dx%d" s ra ca ca cb)
      QCheck.Gen.(
        let* s = int_bound 1_000_000 in
        let* ra = int_range 1 96 in
        let* ca = int_range 1 96 in
        let* cb = int_range 1 96 in
        pure (s, ra, ca, cb))
  in
  qtest ~count:40 "pool matmul = naive (random shapes, bitwise)" arb
    (fun (s, ra, ca, cb) ->
      with_tensor_pool ~domains:4 (fun () -> check_pool_matmul (rng s) ra ca cb);
      true)

let test_pool_matmul_adversarial () =
  (* block boundary is 32 and the row split is by pool size: 31/32/33/64/
     65 rows, single rows, and thin/fat shapes straddle every edge *)
  let shapes =
    [
      (1, 300, 300);
      (2, 200, 200);
      (3, 150, 150);
      (31, 64, 64);
      (32, 64, 64);
      (33, 64, 64);
      (64, 32, 32);
      (65, 33, 31);
      (96, 96, 1);
      (5, 1, 96);
      (128, 16, 16);
    ]
  in
  List.iter
    (fun domains ->
      with_tensor_pool ~domains (fun () ->
          let rng = rng (1000 + domains) in
          List.iter
            (fun (ra, ca, cb) -> check_pool_matmul rng ra ca cb)
            shapes))
    [ 2; 3; 4; 8 ]

let test_pool_matmul_same_result_every_size () =
  (* the same product at pool sizes 1..8 (and no pool) must agree bit for
     bit — the row partition may not leak into the result *)
  let rng = rng 7 in
  let a = random_matrix rng 67 51 in
  let b = random_matrix rng 51 43 in
  Tensor.set_pool None;
  let reference = Tensor.matmul a b in
  List.iter
    (fun domains ->
      with_tensor_pool ~domains (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "pool size %d matches serial" domains)
            true
            (bits_equal (Tensor.matmul a b) reference)))
    [ 1; 2; 3; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Data-parallel training step: bitwise vs the serial step *)

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

let params_identical a b =
  List.for_all2
    (fun (x : Nn.Var.t) (y : Nn.Var.t) ->
      tensor_bits_equal x.Nn.Var.value y.Nn.Var.value)
    (Nn.Pvnet.params a) (Nn.Pvnet.params b)

let training_batch ~m ~seed n =
  let r = rng seed in
  List.init n (fun _ ->
      let g =
        Pbqp.Generate.erdos_renyi ~rng:r
          { Pbqp.Generate.default with n = 6; m; p_edge = 0.4; p_inf = 0.1 }
      in
      let next = Random.State.int r 6 in
      let raw = Array.init m (fun _ -> Random.State.float r 1.0 +. 0.01) in
      let s = Array.fold_left ( +. ) 0.0 raw in
      {
        Nn.Pvnet.graph = g;
        next;
        policy = Array.map (fun x -> x /. s) raw;
        value = Random.State.float r 2.0 -. 1.0;
      })

let test_train_batch_parallel_bitwise () =
  let m = 4 in
  let serial = tiny_net ~m () in
  let parallel = Nn.Pvnet.clone serial in
  let opt_s = Nn.Adam.create Nn.Adam.default_config in
  let opt_p = Nn.Adam.create Nn.Adam.default_config in
  with_pool ~domains:3 (fun pool ->
      let replicas =
        Array.init (Par.Pool.size pool) (fun w ->
            if w = 0 then parallel else Nn.Pvnet.clone parallel)
      in
      (* several compounding steps: a single-ulp divergence in step 1
         would be amplified by Adam's moments and caught below *)
      for step = 1 to 4 do
        let batch = training_batch ~m ~seed:(50 + step) 7 in
        let ls = Nn.Pvnet.train_batch serial opt_s batch in
        let lp =
          Nn.Pvnet.train_batch_parallel ~pool ~replicas parallel opt_p batch
        in
        Alcotest.(check bool)
          (Printf.sprintf "step %d loss identical" step)
          true
          (Int64.equal (Int64.bits_of_float ls) (Int64.bits_of_float lp));
        Alcotest.(check bool)
          (Printf.sprintf "step %d weights identical" step)
          true
          (params_identical serial parallel)
      done)

let test_train_batch_parallel_any_pool_size () =
  let m = 3 in
  let batch = training_batch ~m ~seed:77 6 in
  let reference = tiny_net ~m () in
  let opt_r = Nn.Adam.create Nn.Adam.default_config in
  let _ = Nn.Pvnet.train_batch reference opt_r batch in
  List.iter
    (fun domains ->
      let net = tiny_net ~m () in
      let opt = Nn.Adam.create Nn.Adam.default_config in
      with_pool ~domains (fun pool ->
          let replicas =
            Array.init (Par.Pool.size pool) (fun w ->
                if w = 0 then net else Nn.Pvnet.clone net)
          in
          let _ =
            Nn.Pvnet.train_batch_parallel ~pool ~replicas net opt batch
          in
          Alcotest.(check bool)
            (Printf.sprintf "pool size %d = serial step" domains)
            true
            (params_identical reference net)))
    [ 1; 2; 4; 8 ]

let test_train_batch_parallel_validates () =
  let m = 3 in
  let net = tiny_net ~m () in
  let opt = Nn.Adam.create Nn.Adam.default_config in
  with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "replica count must match pool size"
        (Invalid_argument
           "Pvnet.train_batch_parallel: replicas/pool size mismatch")
        (fun () ->
          ignore
            (Nn.Pvnet.train_batch_parallel ~pool ~replicas:[| net |] net opt
               (training_batch ~m ~seed:9 2))))

(* ------------------------------------------------------------------ *)
(* Whole-run invariance: domains=4 vs domains=1, same seed *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_training_domain_count_invariant () =
  let m = 3 in
  let dir = Filename.temp_file "parrun" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let run domains =
    let prefix = Filename.concat dir (Printf.sprintf "d%d" domains) in
    let cfg =
      {
        (Core.Train.default_config ~m) with
        iterations = 2;
        episodes_per_iteration = 4;
        domains;
        mcts = { Mcts.default_config with k = 6 };
        net =
          { (Nn.Pvnet.default_config ~m) with trunk_width = 8;
            trunk_blocks = 1; gcn_layers = 1 };
        n_mean = 6.0;
        n_stddev = 1.0;
        n_min = 3;
        arena_games = 2;
        batches_per_iteration = 2;
        batch_size = 8;
        checkpoint = Some prefix;
      }
    in
    let failures = ref [] in
    let net =
      Core.Train.run
        ~on_iteration:(fun p ->
          failures := p.Core.Train.episodes_failed :: !failures)
        ~rng:(rng 5) cfg
    in
    (net, read_file (prefix ^ ".replay.txt"), !failures)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let net1, replay1, failed1 = run 1 in
      let net4, replay4, failed4 = run 4 in
      Alcotest.(check string)
        "replay buffers identical, byte for byte" replay1 replay4;
      Alcotest.(check (list int)) "episodes_failed identical" failed1 failed4;
      Alcotest.(check bool) "final nets identical, bit for bit" true
        (params_identical net1 net4))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps order" `Quick test_pool_map_order;
          Alcotest.test_case "reduce order fixed" `Quick
            test_pool_reduce_order;
          Alcotest.test_case "parallel_for covers" `Quick
            test_pool_parallel_for_covers;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "reuse across regions" `Quick
            test_pool_reuse_many_regions;
          Alcotest.test_case "nested regions inline" `Quick
            test_pool_nested_runs_inline;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "size clamped" `Quick test_pool_size_clamped;
        ] );
      ( "gemm",
        [
          test_pool_matmul_random;
          Alcotest.test_case "adversarial shapes x pool sizes" `Quick
            test_pool_matmul_adversarial;
          Alcotest.test_case "same bits at every pool size" `Quick
            test_pool_matmul_same_result_every_size;
        ] );
      ( "train-step",
        [
          Alcotest.test_case "parallel = serial, bitwise, compounding" `Quick
            test_train_batch_parallel_bitwise;
          Alcotest.test_case "every pool size = serial" `Quick
            test_train_batch_parallel_any_pool_size;
          Alcotest.test_case "replica validation" `Quick
            test_train_batch_parallel_validates;
        ] );
      ( "training-run",
        [
          Alcotest.test_case "domains=4 = domains=1 (replay + weights)"
            `Slow test_training_domain_count_invariant;
        ] );
    ]
