(* Tests for the cross-worker dynamic-batching inference service
   (Nn.Infer) and the shared striped evaluation cache (Nn.Stripedcache):
   ticket-protocol semantics (single-worker fast path, full-batch
   coalescing, timeout flushes, oversized waves never split, first-exn
   propagation to every submitter of a failed batch), bitwise episode
   equivalence across {direct, service} x pool sizes x {cache off, on},
   striped-cache consistency under concurrent domains, and a whole
   training run with the service on vs off. *)

open Pbqp
open Testutil

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let with_pool ~domains f =
  let pool = Par.Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

let random_graph ~seed ~n ~m =
  Generate.erdos_renyi ~rng:(rng seed)
    { Generate.default with n; m; p_edge = 0.5; p_inf = 0.1 }

(* One prepared leaf per vertex of [g] — a stand-in for an MCTS wave. *)
let wave net g =
  Array.of_list
    (List.map (fun v -> Nn.Pvnet.prepare net g ~next:v) (Graph.vertices g))

let results_eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (pa, va) (pb, vb) ->
         bits_eq va vb
         && Array.length pa = Array.length pb
         && Array.for_all2 bits_eq pa pb)
       a b

let check_results msg a b =
  if not (results_eq a b) then Alcotest.failf "%s: results differ" msg

(* ------------------------------------------------------------------ *)
(* Ticket protocol *)

let test_single_worker_direct () =
  let m = 3 in
  let net = tiny_net ~m () in
  let g = random_graph ~seed:11 ~n:6 ~m in
  let preps = wave net g in
  let direct = Nn.Pvnet.predict_prepared net preps in
  let srv = Nn.Infer.create ~max_batch:4 ~wait_us:0 ~workers:1 () in
  check_results "single worker = direct predict_prepared" direct
    (Nn.Infer.submit srv ~net preps);
  let s = Nn.Infer.stats srv in
  Alcotest.(check int) "fast path counts no batches" 0 s.Nn.Infer.batches;
  Alcotest.(check int) "fast path counts no rows" 0 s.Nn.Infer.rows;
  Alcotest.(check int) "empty submit" 0
    (Array.length (Nn.Infer.submit srv ~net [||]))

let test_coalesces_full_batch () =
  let m = 3 in
  let base = tiny_net ~m () in
  with_pool ~domains:4 (fun pool ->
      let nw = Par.Pool.size pool in
      let replicas =
        Array.init nw (fun w -> if w = 0 then base else Nn.Pvnet.clone base)
      in
      let graphs = Array.init nw (fun i -> random_graph ~seed:(20 + i) ~n:5 ~m) in
      let waves = Array.init nw (fun i -> wave base graphs.(i)) in
      let rows = Array.fold_left (fun a w -> a + Array.length w) 0 waves in
      let direct =
        Array.map (fun w -> Nn.Pvnet.predict_prepared base w) waves
      in
      (* wait far above any plausible scheduling delay: each of the nw
         submitters blocks until its ticket is answered, so no worker can
         take a second task, and the only possible flush before the (huge)
         timeout is the full one that coalesces all nw waves *)
      let srv =
        Nn.Infer.create ~max_batch:rows ~wait_us:5_000_000 ~workers:nw ()
      in
      let served =
        Par.Pool.map pool (Array.init nw Fun.id) ~f:(fun ~worker i ->
            Nn.Infer.submit srv ~net:replicas.(worker) waves.(i))
      in
      Array.iteri
        (fun i r ->
          check_results
            (Printf.sprintf "wave %d coalesced = direct (bitwise)" i)
            direct.(i) r)
        served;
      let s = Nn.Infer.stats srv in
      Alcotest.(check int) "one coalesced batch" 1 s.Nn.Infer.batches;
      Alcotest.(check int) "all rows in it" rows s.Nn.Infer.rows;
      Alcotest.(check int) "flushed full" 1 s.Nn.Infer.full_flushes;
      Alcotest.(check int) "largest batch" rows s.Nn.Infer.max_batch_rows)

let test_partial_wave_flushes_on_timeout () =
  let m = 3 in
  let net = tiny_net ~m () in
  let g = random_graph ~seed:13 ~n:5 ~m in
  let preps = wave net g in
  let direct = Nn.Pvnet.predict_prepared net preps in
  (* workers:2 forces the queue path, but nobody else ever submits: the
     lone ticket can only leave via the wait_us expiry, served by its own
     submitter *)
  let srv = Nn.Infer.create ~max_batch:64 ~wait_us:3_000 ~workers:2 () in
  check_results "timeout-flushed wave = direct" direct
    (Nn.Infer.submit srv ~net preps);
  let s = Nn.Infer.stats srv in
  Alcotest.(check int) "one batch" 1 s.Nn.Infer.batches;
  Alcotest.(check int) "flushed by timeout" 1 s.Nn.Infer.timeout_flushes;
  Alcotest.(check int) "not full" 0 s.Nn.Infer.full_flushes;
  Alcotest.(check int) "rows" (Array.length preps) s.Nn.Infer.rows

let test_oversized_wave_never_split () =
  let m = 3 in
  let net = tiny_net ~m () in
  let g = random_graph ~seed:17 ~n:7 ~m in
  let preps = wave net g in
  let direct = Nn.Pvnet.predict_prepared net preps in
  let srv = Nn.Infer.create ~max_batch:2 ~wait_us:1_000 ~workers:2 () in
  check_results "oversized wave runs whole" direct
    (Nn.Infer.submit srv ~net preps);
  let s = Nn.Infer.stats srv in
  Alcotest.(check int) "one batch despite the budget" 1 s.Nn.Infer.batches;
  Alcotest.(check int) "all rows together" (Array.length preps)
    s.Nn.Infer.max_batch_rows

let test_server_exception_propagates () =
  let m = 3 in
  let base = tiny_net ~m () in
  let other = tiny_net ~seed:4 ~m:5 () in
  let w_good = wave base (random_graph ~seed:31 ~n:5 ~m) in
  (* rows prepared under an m=5 net are wider than the m=3 server
     expects: whichever ticket heads the batch, the coalesced forward
     raises, and EVERY submitter of the batch must re-raise *)
  let w_bad = wave other (random_graph ~seed:32 ~n:5 ~m:5) in
  with_pool ~domains:2 (fun pool ->
      let rows = Array.length w_good + Array.length w_bad in
      let srv =
        Nn.Infer.create ~max_batch:rows ~wait_us:5_000_000 ~workers:2 ()
      in
      let replicas = [| base; Nn.Pvnet.clone base |] in
      let raised =
        Par.Pool.map pool [| w_good; w_bad |] ~f:(fun ~worker w ->
            match Nn.Infer.submit srv ~net:replicas.(worker) w with
            | _ -> false
            | exception Invalid_argument _ -> true)
      in
      Alcotest.(check (array bool)) "both submitters see the failure"
        [| true; true |] raised;
      (* the service survives a failed batch: two good waves coalesce *)
      let g2 = random_graph ~seed:33 ~n:5 ~m in
      let w2 = wave base g2 in
      let direct = Nn.Pvnet.predict_prepared base w2 in
      let srv2 =
        Nn.Infer.create ~max_batch:(2 * Array.length w2) ~wait_us:5_000_000
          ~workers:2 ()
      in
      let again =
        Par.Pool.map pool [| 0; 1 |] ~f:(fun ~worker _ ->
            Nn.Infer.submit srv2 ~net:replicas.(worker) w2)
      in
      Array.iter (fun r -> check_results "post-failure submit" direct r) again)

(* Regression for the daemon-wedging failure mode: an exception raised
   in the server's result-DISTRIBUTION phase (after the forward, lock
   held) used to propagate with [serving] still set, parking every other
   submitter in Condition.wait forever.  The poison hook injects exactly
   that; every ticket of the batch must re-raise, and the service must
   keep working afterwards. *)
let test_poisoned_batch_releases_every_waiter () =
  let m = 3 in
  let base = tiny_net ~m () in
  with_pool ~domains:3 (fun pool ->
      let nw = Par.Pool.size pool in
      let replicas =
        Array.init nw (fun w -> if w = 0 then base else Nn.Pvnet.clone base)
      in
      let waves =
        Array.init nw (fun i -> wave base (random_graph ~seed:(70 + i) ~n:5 ~m))
      in
      let rows = Array.fold_left (fun a w -> a + Array.length w) 0 waves in
      (* one full batch holding every wave: all nw submitters have
         tickets in the poisoned batch, most of them parked waiters *)
      let srv =
        Nn.Infer.create ~max_batch:rows ~wait_us:5_000_000 ~workers:nw ()
      in
      let exception Poison in
      Nn.Infer.poison_next_batch_for_test srv Poison;
      let outcomes =
        Par.Pool.map pool (Array.init nw Fun.id) ~f:(fun ~worker i ->
            match Nn.Infer.submit srv ~net:replicas.(worker) waves.(i) with
            | _ -> false
            | exception Poison -> true)
      in
      Alcotest.(check (array bool)) "poison fans out to every submitter"
        (Array.make nw true) outcomes;
      (* not wedged: the poison is one-shot, the serving flag cleared,
         the broadcast happened — the same waves now evaluate bitwise *)
      let direct = Array.map (Nn.Pvnet.predict_prepared base) waves in
      let again =
        Par.Pool.map pool (Array.init nw Fun.id) ~f:(fun ~worker i ->
            Nn.Infer.submit srv ~net:replicas.(worker) waves.(i))
      in
      Array.iteri
        (fun i r -> check_results "post-poison submit bitwise" direct.(i) r)
        again;
      let s = Nn.Infer.stats srv in
      Alcotest.(check bool) "batches kept being served" true
        (s.Nn.Infer.batches >= 2))

let test_infer_validations () =
  Alcotest.check_raises "max_batch positive"
    (Invalid_argument "Infer.create: max_batch <= 0") (fun () ->
      ignore (Nn.Infer.create ~max_batch:0 ~workers:2 ()));
  Alcotest.check_raises "workers positive"
    (Invalid_argument "Infer.create: workers <= 0") (fun () ->
      ignore (Nn.Infer.create ~workers:0 ()));
  Alcotest.check_raises "wait_us non-negative"
    (Invalid_argument "Infer.create: wait_us < 0") (fun () ->
      ignore (Nn.Infer.create ~wait_us:(-1) ~workers:2 ()))

(* ------------------------------------------------------------------ *)
(* Episode equivalence: {direct} = {service} x pool size x cache *)

let samples_identical sa sb =
  List.length sa = List.length sb
  && List.for_all2
       (fun (a : Nn.Pvnet.sample) (b : Nn.Pvnet.sample) ->
         Graph.equal a.Nn.Pvnet.graph b.Nn.Pvnet.graph
         && a.next = b.next
         && Array.for_all2 bits_eq a.policy b.policy
         && bits_eq a.value b.value)
       sa sb

let episode_cfg =
  {
    Core.Episode.default_config with
    Core.Episode.mcts = { Mcts.default_config with k = 8; batch = 4 };
  }

let play_episode ?cache ?serve ~incremental ~net i g =
  let st = Core.State.of_graph g in
  let f =
    if incremental then Core.Episode.play_incremental else Core.Episode.play
  in
  f ~collect:true ?cache ?serve ~rng:(rng (100 + i)) ~net
    ~mode:Core.Game.Feasibility episode_cfg st

let check_episode_runs ~msg reference outcomes =
  List.iteri
    (fun i ((oa, sa), (ob, sb)) ->
      let msg = Printf.sprintf "%s (episode %d)" msg i in
      if not (bits_eq oa.Core.Episode.cost ob.Core.Episode.cost) then
        Alcotest.failf "%s: costs differ" msg;
      if oa.Core.Episode.nodes <> ob.Core.Episode.nodes then
        Alcotest.failf "%s: node counts differ" msg;
      (match (oa.Core.Episode.solution, ob.Core.Episode.solution) with
      | None, None -> ()
      | Some a, Some b when Solution.equal a b -> ()
      | _ -> Alcotest.failf "%s: solutions differ" msg);
      if not (samples_identical sa sb) then
        Alcotest.failf "%s: samples differ" msg)
    (List.combine (Array.to_list reference) (Array.to_list outcomes))

let test_episodes_bitwise_under_service () =
  let m = 3 in
  let episodes = 6 in
  let base = tiny_net ~m () in
  let graphs =
    Array.init episodes (fun i -> random_graph ~seed:(40 + i) ~n:7 ~m)
  in
  List.iter
    (fun incremental ->
      let reference =
        Array.mapi
          (fun i g -> play_episode ~incremental ~net:base i g)
          graphs
      in
      List.iter
        (fun domains ->
          List.iter
            (fun cached ->
              with_pool ~domains (fun pool ->
                  let nw = Par.Pool.size pool in
                  let replicas =
                    Array.init nw (fun w ->
                        if w = 0 then base else Nn.Pvnet.clone base)
                  in
                  let serve =
                    Nn.Infer.create ~max_batch:8 ~wait_us:200 ~workers:nw ()
                  in
                  let cache =
                    if cached then
                      Some (Nn.Cache.striped ~stripes:4 ~capacity:4096)
                    else None
                  in
                  let outcomes =
                    Par.Pool.map pool (Array.init episodes Fun.id)
                      ~f:(fun ~worker i ->
                        play_episode ?cache ~serve ~incremental
                          ~net:replicas.(worker) i graphs.(i))
                  in
                  check_episode_runs
                    ~msg:
                      (Printf.sprintf "incr=%b j=%d cache=%b" incremental
                         domains cached)
                    reference outcomes))
            [ false; true ])
        [ 1; 2; 4 ])
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Striped cache under concurrent domains *)

let test_striped_cache_consistent_under_domains () =
  let sc = Nn.Stripedcache.create ~stripes:4 ~capacity:64 in
  let workers = 4 in
  let ops = 4_000 in
  (* entries encode their own key: any torn or cross-wired read surfaces
     as an internally inconsistent tuple *)
  let entry h next =
    ([| float_of_int h; float_of_int next |], float_of_int (h + next))
  in
  with_pool ~domains:workers (fun pool ->
      let bad = Array.make workers 0 in
      let finds = Array.make workers 0 in
      let hits = Array.make workers 0 in
      Par.Pool.run pool
        (Array.init workers (fun i _ ->
             let r = rng (900 + i) in
             for _ = 1 to ops do
               (* a small key space forces collisions and LRU churn *)
               let h = Random.State.int r 97 in
               let next = Random.State.int r 5 in
               if Random.State.bool r then
                 Nn.Stripedcache.store sc ~version:1 (h, next) (entry h next)
               else begin
                 finds.(i) <- finds.(i) + 1;
                 match Nn.Stripedcache.find sc ~version:1 (h, next) with
                 | None -> ()
                 | Some (p, v) ->
                     hits.(i) <- hits.(i) + 1;
                     if
                       Array.length p <> 2
                       || not (bits_eq p.(0) (float_of_int h))
                       || not (bits_eq p.(1) (float_of_int next))
                       || not (bits_eq v (float_of_int (h + next)))
                     then bad.(i) <- bad.(i) + 1
               end
             done));
      Alcotest.(check (array int)) "no torn or cross-wired reads"
        (Array.make workers 0) bad;
      let s = Nn.Stripedcache.stats sc in
      let total_finds = Array.fold_left ( + ) 0 finds in
      let total_hits = Array.fold_left ( + ) 0 hits in
      Alcotest.(check int) "shard counters account for every find"
        total_finds
        (s.Nn.Evalcache.hits + s.Nn.Evalcache.misses);
      Alcotest.(check int) "shard hit counters agree" total_hits
        s.Nn.Evalcache.hits;
      Alcotest.(check bool) "capacity respected" true
        (s.Nn.Evalcache.size <= 64);
      Alcotest.(check int) "stripes rounded to a power of two" 4
        (Nn.Stripedcache.stripes sc))

let test_striped_cache_version_and_stats () =
  let sc = Nn.Stripedcache.create ~stripes:3 (* rounds to 4 *) ~capacity:16 in
  Alcotest.(check int) "rounded up" 4 (Nn.Stripedcache.stripes sc);
  Nn.Stripedcache.store sc ~version:1 (7, 0) ([| 0.5 |], 0.25);
  Alcotest.(check bool) "hit under the same version" true
    (Nn.Stripedcache.find sc ~version:1 (7, 0) <> None);
  Alcotest.(check bool) "stale version misses" true
    (Nn.Stripedcache.find sc ~version:2 (7, 0) = None);
  let s = Nn.Stripedcache.stats sc in
  Alcotest.(check int) "one hit" 1 s.Nn.Evalcache.hits;
  Alcotest.(check int) "one miss" 1 s.Nn.Evalcache.misses;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Nn.Stripedcache.hit_rate sc);
  Nn.Stripedcache.clear sc;
  Alcotest.(check int) "clear empties" 0 (Nn.Stripedcache.stats sc).Nn.Evalcache.size

(* ------------------------------------------------------------------ *)
(* Whole training run: serve on = serve off, bit for bit *)

let params_identical a b =
  List.for_all2
    (fun (x : Nn.Var.t) (y : Nn.Var.t) ->
      tensor_bits_equal x.Nn.Var.value y.Nn.Var.value)
    (Nn.Pvnet.params a) (Nn.Pvnet.params b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_training_invariant_under_service () =
  let m = 3 in
  let dir = Filename.temp_file "serverun" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let run ~label ~domains ~serve_batch =
    let prefix = Filename.concat dir label in
    let cfg =
      {
        (Core.Train.default_config ~m) with
        iterations = 2;
        episodes_per_iteration = 3;
        domains;
        incremental = true;
        eval_cache = 512;
        cache_stripes = 4;
        serve_batch;
        serve_wait_us = 200;
        mcts = { Mcts.default_config with k = 6 };
        net =
          { (Nn.Pvnet.default_config ~m) with trunk_width = 8;
            trunk_blocks = 1; gcn_layers = 1 };
        n_mean = 6.0;
        n_stddev = 1.0;
        n_min = 3;
        arena_games = 2;
        batches_per_iteration = 2;
        batch_size = 8;
        checkpoint = Some prefix;
      }
    in
    let net = Core.Train.run ~rng:(rng 5) cfg in
    (net, read_file (prefix ^ ".replay.txt"))
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let net0, replay0 = run ~label:"off" ~domains:2 ~serve_batch:0 in
      List.iter
        (fun (label, domains, serve_batch) ->
          let net, replay = run ~label ~domains ~serve_batch in
          Alcotest.(check string)
            (label ^ ": replay identical, byte for byte")
            replay0 replay;
          Alcotest.(check bool)
            (label ^ ": final net identical, bit for bit")
            true (params_identical net0 net))
        [ ("serve-j2", 2, 16); ("serve-j4-b4", 4, 4) ])

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* The int8 quantized serving path behind the Check.Quantcert gate. *)

let test_quantized_certified_serving () =
  let m = 4 in
  let net = tiny_net ~m () in
  let g = random_graph ~seed:51 ~n:8 ~m in
  let report = Check.Quantcert.certify net in
  Alcotest.(check bool) "fresh tiny net certifies" true
    (Check.Quantcert.certified report);
  Alcotest.(check bool) "certificate installed" true
    (Nn.Pvnet.quantized_certified net);
  Alcotest.(check bool) "states were compared" true
    (report.Check.Quantcert.states > 0);
  (* the certified quantized batch serves, and stays near the float path *)
  let preps_f = wave net g in
  let float_out = Nn.Pvnet.predict_prepared net preps_f in
  let preps_q =
    Array.of_list
      (List.map
         (fun v -> Nn.Pvnet.prepare ~quantized:true net g ~next:v)
         (Graph.vertices g))
  in
  let quant_out = Nn.Pvnet.predict_prepared net preps_q in
  Alcotest.(check int) "same batch size" (Array.length float_out)
    (Array.length quant_out);
  Array.iteri
    (fun i (pf, vf) ->
      let pq, vq = quant_out.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "value %d within harness bound" i)
        true
        (Float.abs (vf -. vq) <= 0.1);
      Array.iteri
        (fun j p ->
          Alcotest.(check bool)
            (Printf.sprintf "prior (%d, %d) within harness bound" i j)
            true
            (Float.abs (p -. pq.(j)) <= 0.05))
        pf)
    float_out;
  (* any weight mutation revokes the version-stamped certificate *)
  Nn.Pvnet.bump_version net;
  Alcotest.(check bool) "bump revokes" false (Nn.Pvnet.quantized_certified net)

let test_quantized_gate_rejects_uncertified () =
  let m = 4 in
  let net = tiny_net ~m () in
  let g = random_graph ~seed:53 ~n:6 ~m in
  Alcotest.(check bool) "no certificate yet" false
    (Nn.Pvnet.quantized_certified net);
  (* default prepare silently serves float while uncertified *)
  let out = Nn.Pvnet.predict_prepared net (wave net g) in
  Alcotest.(check bool) "float fallback serves" true (Array.length out > 0);
  (* an explicit quantized request without a certificate must raise *)
  let preps =
    Array.of_list
      (List.map
         (fun v -> Nn.Pvnet.prepare ~quantized:true net g ~next:v)
         (Graph.vertices g))
  in
  Alcotest.check_raises "gate raises"
    (Invalid_argument
       "Pvnet.predict_prepared: quantized path not certified for current \
        weights") (fun () -> ignore (Nn.Pvnet.predict_prepared net preps))

let test_quantized_corruption_rejected () =
  let m = 4 in
  let net = tiny_net ~seed:5 ~m () in
  Alcotest.(check bool) "clean weights certify" true
    (Check.Quantcert.certified (Check.Quantcert.certify net));
  (* tamper the memoized int8 policy-head weights in place: the version
     stamp still matches, so only the accuracy harness can notice *)
  Nn.Pvnet.corrupt_quantized_for_test net;
  let report = Check.Quantcert.certify net in
  Alcotest.(check bool) "harness rejects corruption" false
    (Check.Quantcert.certified report);
  Alcotest.(check bool) "findings carry errors" true
    (Check.Diag.has_errors report.Check.Quantcert.findings);
  Alcotest.(check bool) "certificate cleared" false
    (Nn.Pvnet.quantized_certified net)

let test_quantized_certificate_syncs () =
  let m = 4 in
  let src = tiny_net ~m () in
  let dst = Nn.Pvnet.clone src in
  ignore (Check.Quantcert.certify src : Check.Quantcert.report);
  Nn.Pvnet.set_quantized_serve src true;
  Alcotest.(check bool) "src certified" true (Nn.Pvnet.quantized_certified src);
  Nn.Pvnet.sync ~src ~dst;
  (* equal version stamps imply bitwise-equal weights, so the copied
     certificate is sound on the replica *)
  Alcotest.(check bool) "replica certified" true
    (Nn.Pvnet.quantized_certified dst);
  Alcotest.(check bool) "replica serving mode" true (Nn.Pvnet.quantized_serve dst)

let () =
  Alcotest.run "serve"
    [
      ( "quantized",
        [
          Alcotest.test_case "certify + serve + revoke" `Quick
            test_quantized_certified_serving;
          Alcotest.test_case "gate rejects uncertified" `Quick
            test_quantized_gate_rejects_uncertified;
          Alcotest.test_case "harness rejects corrupted weights" `Quick
            test_quantized_corruption_rejected;
          Alcotest.test_case "sync transfers the certificate" `Quick
            test_quantized_certificate_syncs;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "single worker = direct" `Quick
            test_single_worker_direct;
          Alcotest.test_case "full batch coalesces" `Quick
            test_coalesces_full_batch;
          Alcotest.test_case "partial wave flushes on timeout" `Quick
            test_partial_wave_flushes_on_timeout;
          Alcotest.test_case "oversized wave never split" `Quick
            test_oversized_wave_never_split;
          Alcotest.test_case "server exception reaches every submitter"
            `Quick test_server_exception_propagates;
          Alcotest.test_case "poisoned batch releases every waiter" `Quick
            test_poisoned_batch_releases_every_waiter;
          Alcotest.test_case "validations" `Quick test_infer_validations;
        ] );
      ( "episodes",
        [
          Alcotest.test_case
            "episodes bitwise: service x pool size x cache" `Slow
            test_episodes_bitwise_under_service;
        ] );
      ( "striped-cache",
        [
          Alcotest.test_case "consistent under 4 domains" `Quick
            test_striped_cache_consistent_under_domains;
          Alcotest.test_case "version + stats plumbing" `Quick
            test_striped_cache_version_and_stats;
        ] );
      ( "training-run",
        [
          Alcotest.test_case "serve on = serve off (replay + weights)"
            `Slow test_training_invariant_under_service;
        ] );
    ]
