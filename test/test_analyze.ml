(* Tests for lib/analyze, the repo's own static-analysis pass: each
   seeded fixture bug class is caught (and its "good" twin is clean),
   the baseline machinery round-trips, and — the real gate — the
   shipped lib/ and bin/ trees produce zero findings. *)

(* cwd is test/ under `dune runtest` but the repo root under
   `dune exec test/test_analyze.exe` — accept both *)
let fixture name =
  let local = Filename.concat "fixtures/analyze" (name ^ ".ml") in
  if Sys.file_exists local then local else Filename.concat "test" local

let run_fixture name =
  (Analyze.run ~roots:[ fixture name ]).Analyze.findings

let rules fs =
  List.sort_uniq String.compare (List.map (fun f -> f.Analyze.Report.rule) fs)

let count_rule rule fs =
  List.length (List.filter (fun f -> f.Analyze.Report.rule = rule) fs)

let check_clean name =
  let fs = run_fixture name in
  Alcotest.(check (list string))
    (name ^ " is clean") [] (List.map Analyze.Report.key fs)

(* parsing must have worked: a clean run over a missing/broken file
   would pass every vacuous assertion *)
let check_parsed name =
  let fs = run_fixture name in
  Alcotest.(check int) (name ^ " parses") 0 (count_rule "parse-error" fs)

(* --- concurrency ------------------------------------------------------ *)

let test_guarded () =
  let fs = run_fixture "guarded_bad" in
  Alcotest.(check int) "guarded-by errors" 4 (count_rule "guarded-by" fs);
  Alcotest.(check int) "requires-lock errors" 1 (count_rule "requires-lock" fs);
  Alcotest.(check (list string))
    "no other rules" [ "guarded-by"; "requires-lock" ] (rules fs);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "severity error" true
        (f.Analyze.Report.severity = Check.Diag.Error))
    fs;
  check_parsed "guarded_good";
  check_clean "guarded_good"

let test_lockorder () =
  let fs = run_fixture "lockorder_bad" in
  Alcotest.(check int) "cycle reported once" 1 (count_rule "lock-order-cycle" fs);
  Alcotest.(check int) "reacquire reported" 1 (count_rule "lock-reacquire" fs);
  (* the cycle message names both locks and the transitive edge's witness *)
  let cycle =
    List.find (fun f -> f.Analyze.Report.rule = "lock-order-cycle") fs
  in
  let mem needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "names m1" true
    (mem "Lockorder_bad.m1" cycle.Analyze.Report.message);
  Alcotest.(check bool)
    "names m2" true
    (mem "Lockorder_bad.m2" cycle.Analyze.Report.message);
  Alcotest.(check bool)
    "transitive edge via inner" true
    (mem "via Lockorder_bad.inner" cycle.Analyze.Report.message);
  check_parsed "lockorder_good";
  check_clean "lockorder_good"

let test_shared () =
  let fs = run_fixture "shared_bad" in
  Alcotest.(check int)
    "unguarded globals" 3
    (count_rule "unguarded-global-mutable" fs);
  Alcotest.(check int) "guarded global access" 1 (count_rule "guarded-by" fs);
  check_parsed "shared_good";
  check_clean "shared_good"

(* --- determinism ------------------------------------------------------ *)

let test_hashtbl_order () =
  let fs = run_fixture "hashtbl_bad" in
  Alcotest.(check int) "order warning" 1 (count_rule "hashtbl-order" fs);
  Alcotest.(check int)
    "float reductions (order attribute does not bless them)" 2
    (count_rule "unordered-float-reduce" fs);
  check_parsed "hashtbl_good";
  check_clean "hashtbl_good"

let test_random () =
  let fs = run_fixture "random_bad" in
  Alcotest.(check int) "global stream" 1 (count_rule "random-global" fs);
  Alcotest.(check int) "self-init" 2 (count_rule "random-self-init" fs);
  check_parsed "random_good";
  check_clean "random_good"

(* --- hot paths -------------------------------------------------------- *)

let test_hot () =
  let fs = run_fixture "hot_bad" in
  Alcotest.(check int) "closure" 1 (count_rule "hot-closure" fs);
  Alcotest.(check int) "alloc call" 1 (count_rule "hot-alloc-call" fs);
  Alcotest.(check int) "partial apply" 1 (count_rule "hot-partial-apply" fs);
  Alcotest.(check int) "boxed allocs" 3 (count_rule "hot-boxed-alloc" fs);
  Alcotest.(check int) "printf" 1 (count_rule "hot-printf" fs);
  check_parsed "hot_good";
  check_clean "hot_good"

let test_hot_matrix () =
  let fs = run_fixture "matrix_bad" in
  (* make_matrix and the nested literal (reported once, not per row) *)
  Alcotest.(check int) "boxed matrices" 2 (count_rule "hot-boxed-matrix" fs);
  (* the per-call floatarray/bigarray scratch allocations *)
  Alcotest.(check int) "unboxed alloc calls" 2 (count_rule "hot-alloc-call" fs);
  Alcotest.(check (list string))
    "no other rules" [ "hot-alloc-call"; "hot-boxed-matrix" ] (rules fs);
  check_parsed "matrix_good";
  check_clean "matrix_good"

(* --- baseline --------------------------------------------------------- *)

let test_baseline () =
  let fs = run_fixture "guarded_bad" in
  Alcotest.(check bool) "has findings" true (fs <> []);
  (* baselining everything suppresses everything *)
  let entries = Analyze.Baseline.of_string (Analyze.Baseline.to_string fs) in
  let applied = Analyze.Baseline.apply entries fs in
  Alcotest.(check int) "all suppressed" 0
    (List.length applied.Analyze.Baseline.fresh);
  Alcotest.(check int) "suppressed count" (List.length fs)
    applied.Analyze.Baseline.suppressed;
  Alcotest.(check int) "no stale entries" 0
    (List.length applied.Analyze.Baseline.stale);
  (* a partial baseline lets the rest through and flags unused entries *)
  let path = fixture "guarded_bad" in
  let partial =
    Analyze.Baseline.of_string
      (Printf.sprintf
         "# comment\nguarded-by|%s|bump\nguarded-by|%s|no_such_symbol\n" path
         path)
  in
  let applied = Analyze.Baseline.apply partial fs in
  Alcotest.(check bool) "others still fresh" true
    (applied.Analyze.Baseline.fresh <> []);
  Alcotest.(check int) "stale entry reported" 1
    (List.length applied.Analyze.Baseline.stale);
  Alcotest.(check bool) "bump suppressed" true
    (List.for_all
       (fun f -> f.Analyze.Report.symbol <> "bump")
       applied.Analyze.Baseline.fresh)

let test_json () =
  let fs = run_fixture "random_bad" in
  let json = Analyze.Report.to_json ~baselined:0 ~files:1 fs in
  List.iter
    (fun needle ->
      let nl = String.length needle and hl = String.length json in
      let rec go i =
        i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
      in
      Alcotest.(check bool) ("json contains " ^ needle) true (go 0))
    [
      {|"schema": "pbqp-analyze-v1"|};
      {|"rule":"random-global"|};
      {|"errors": 3|};
      {|"files": 1|};
    ]

(* --- the gate: the shipped tree is clean ------------------------------ *)

(* The test binary runs in _build/default/test; dune copies the whole
   source tree (dune-project included) into _build/default, so walking
   up to the first directory holding dune-project + lib finds the
   build-root copy of the repo. *)
let rec repo_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else repo_root parent

let test_repo_clean () =
  match repo_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
      let roots =
        [ Filename.concat root "lib"; Filename.concat root "bin" ]
      in
      let result = Analyze.run ~roots in
      Alcotest.(check bool)
        "analyzed a real tree (>= 30 files)" true
        (result.Analyze.files >= 30);
      Alcotest.(check (list string))
        "zero findings on the shipped tree" []
        (List.map Analyze.Report.key result.Analyze.findings)

let () =
  Alcotest.run "analyze"
    [
      ( "concurrency",
        [
          Alcotest.test_case "guarded-by / requires-lock" `Quick test_guarded;
          Alcotest.test_case "lock-order cycle" `Quick test_lockorder;
          Alcotest.test_case "module-level mutables" `Quick test_shared;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "hashtbl order" `Quick test_hashtbl_order;
          Alcotest.test_case "random streams" `Quick test_random;
        ] );
      ( "hotpath",
        [
          Alcotest.test_case "allocation classes" `Quick test_hot;
          Alcotest.test_case "boxed matrices" `Quick test_hot_matrix;
        ] );
      ( "infra",
        [
          Alcotest.test_case "baseline round-trip" `Quick test_baseline;
          Alcotest.test_case "json shape" `Quick test_json;
          Alcotest.test_case "shipped tree is clean" `Quick test_repo_clean;
        ] );
    ]
