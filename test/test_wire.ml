(* Tests for the serving subsystem (Serve.Wire / Serve.Daemon /
   Serve.Client / Serve.Registry): frame-codec and request/reply
   round-trips, malformed-input rejection (truncated, oversized and
   garbage frames answered or dropped, never a crash or hang), deadline
   and admission-control semantics, checkpoint hot-reload, and the
   headline determinism claim — a 4-client concurrent session returns
   bitwise-identical allocations to the serial solver on the same
   inputs, coalesced batches and shared cache notwithstanding. *)

open Pbqp
open Testutil

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

let random_graph ~seed ~n ~m =
  Generate.erdos_renyi ~rng:(rng seed)
    { Generate.default with n; m; p_edge = 0.5; p_inf = 0.1 }

(* ------------------------------------------------------------------ *)
(* Io solution round-trip (the shared assign-line form) *)

let test_solution_roundtrip () =
  let sol = Solution.of_array [| 2; 0; -1; 1 |] in
  let s = Pbqp.Io.solution_to_string sol in
  Alcotest.(check solution) "solution round-trips" sol
    (Pbqp.Io.solution_of_string s);
  Alcotest.(check bool) "one line form" true
    (String.length (String.trim s) > 0
    && not (String.contains (String.trim s) '\n'))

let test_solution_rejects_malformed () =
  let rejects s =
    match Pbqp.Io.solution_of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Invalid_argument _ -> ()
  in
  rejects "nonsense 1 2";
  rejects "assign 1 x 2";
  rejects ""

(* ------------------------------------------------------------------ *)
(* Frame codec and header parsing (pure) *)

let test_frame_codec () =
  let payload = "request ping" in
  let b = Serve.Wire.encode_frame payload in
  Alcotest.(check int) "framed length"
    (Serve.Wire.header_bytes + String.length payload)
    (Bytes.length b);
  Alcotest.(check int) "declared length" (String.length payload)
    (Serve.Wire.decode_len b 0);
  (* encode_frame delegates to the shared Frame codec, so the rejection
     is raised under its name *)
  Alcotest.check_raises "oversized payload rejected at encode"
    (Invalid_argument "Frame.encode: payload too large") (fun () ->
      ignore (Serve.Wire.encode_frame (String.make (Serve.Wire.max_frame + 1) 'x')))

let roundtrip_request env =
  match Serve.Wire.request_of_string (Serve.Wire.request_to_string env) with
  | Ok env' -> env'
  | Error e -> Alcotest.failf "request did not round-trip: %s" e

let test_request_roundtrip () =
  let p = { Serve.Wire.default_params with solver = "rl"; k = 7;
            backtrack = true; deadline_ms = 250 } in
  let body = "pbqp 2 2\nv 0 1 2\n" in
  (match roundtrip_request { id = 9; req = Serve.Wire.Pbqp (p, body) } with
  | { id = 9; req = Serve.Wire.Pbqp (p', body') } ->
      Alcotest.(check string) "solver" "rl" p'.Serve.Wire.solver;
      Alcotest.(check int) "k" 7 p'.Serve.Wire.k;
      Alcotest.(check bool) "backtrack" true p'.Serve.Wire.backtrack;
      Alcotest.(check int) "deadline" 250 p'.Serve.Wire.deadline_ms;
      Alcotest.(check string) "body untouched" body body'
  | _ -> Alcotest.fail "wrong request kind");
  (match roundtrip_request { id = 0; req = Serve.Wire.Reload "/tmp/x.ckpt" } with
  | { req = Serve.Wire.Reload "/tmp/x.ckpt"; _ } -> ()
  | _ -> Alcotest.fail "reload did not round-trip");
  match roundtrip_request { id = 3; req = Serve.Wire.Stats } with
  | { id = 3; req = Serve.Wire.Stats } -> ()
  | _ -> Alcotest.fail "stats did not round-trip"

let test_request_rejects_malformed () =
  let rejects s =
    match Serve.Wire.request_of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  rejects "hello world";
  rejects "request teleport";
  rejects "request pbqp k=notanint\npbqp 1 1";
  rejects "request pbqp frobnicate=1\npbqp 1 1";
  rejects "reply solution cost=1 nodes=0 backtracks=0\nassign 0"

let test_reply_roundtrip () =
  let check_rt reply =
    match Serve.Wire.reply_of_string (Serve.Wire.reply_to_string ~id:4 reply) with
    | Ok (4, r) -> r
    | Ok (id, _) -> Alcotest.failf "id mangled: %d" id
    | Error e -> Alcotest.failf "reply did not round-trip: %s" e
  in
  (match
     check_rt
       (Serve.Wire.Solution
          { cost = "12."; nodes = 3; backtracks = 1; assignment = "assign 0 1" })
   with
  | Serve.Wire.Solution { cost = "12."; nodes = 3; backtracks = 1;
                          assignment = "assign 0 1" } -> ()
  | _ -> Alcotest.fail "solution mangled");
  (match check_rt (Serve.Wire.Stats_reply [ ("a", "1"); ("b", "2.5") ]) with
  | Serve.Wire.Stats_reply [ ("a", "1"); ("b", "2.5") ] -> ()
  | _ -> Alcotest.fail "stats mangled");
  (match check_rt (Serve.Wire.Error_reply "boom") with
  | Serve.Wire.Error_reply "boom" -> ()
  | _ -> Alcotest.fail "error mangled");
  match check_rt Serve.Wire.Overloaded with
  | Serve.Wire.Overloaded -> ()
  | _ -> Alcotest.fail "overloaded mangled"

(* ------------------------------------------------------------------ *)
(* In-process daemon harness *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pbqp_wire_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let with_daemon ?(workers = 2) ?(queue_cap = 64) ?(coalesce = true) ?net f =
  let net = match net with Some n -> n | None -> tiny_net ~m:3 () in
  let config =
    { Serve.Daemon.default_config with socket_path = fresh_sock ();
      workers; queue_cap; coalesce }
  in
  let t = Serve.Daemon.create ~config net in
  let d = Domain.spawn (fun () -> Serve.Daemon.run t) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Daemon.stop t;
      Domain.join d)
    (fun () -> f config.Serve.Daemon.socket_path t)

let with_client path f =
  let c = Serve.Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let request_exn c req =
  match Serve.Client.request c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "protocol error: %s" e

let graph_body g = Pbqp.Io.to_string g

(* ------------------------------------------------------------------ *)
(* Liveness, scholz equivalence, stats, reload *)

let test_ping_and_stats () =
  with_daemon (fun path _t ->
      with_client path (fun c ->
          (match request_exn c Serve.Wire.Ping with
          | Serve.Wire.Pong -> ()
          | _ -> Alcotest.fail "expected pong");
          match request_exn c Serve.Wire.Stats with
          | Serve.Wire.Stats_reply kvs ->
              List.iter
                (fun key ->
                  Alcotest.(check bool)
                    (Printf.sprintf "stats has %s" key)
                    true (List.mem_assoc key kvs))
                [ "version"; "generation"; "served"; "eval_count";
                  "cache_hits"; "infer_batches"; "queue_depth" ]
          | _ -> Alcotest.fail "expected stats"))

let test_scholz_matches_cli_solver () =
  let g = random_graph ~seed:51 ~n:9 ~m:3 in
  let s, c, _ = Solvers.Scholz.solve_with_cost g in
  with_daemon (fun path _t ->
      with_client path (fun client ->
          match
            request_exn client
              (Serve.Wire.Pbqp (Serve.Wire.default_params, graph_body g))
          with
          | Serve.Wire.Solution { cost; assignment; _ } ->
              Alcotest.(check string) "cost matches batch solver"
                (Cost.to_string c) cost;
              Alcotest.(check string) "assignment matches batch solver"
                (String.trim (Pbqp.Io.solution_to_string s))
                assignment
          | r ->
              Alcotest.failf "expected solution, got %s"
                (Serve.Wire.reply_to_string ~id:0 r)))

let test_reload_swaps_model () =
  let net_a = tiny_net ~seed:3 ~m:3 () in
  let net_b = tiny_net ~seed:8 ~m:3 () in
  let ckpt = Filename.temp_file "pbqp_wire_reload" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      Nn.Pvnet.save net_b ckpt;
      with_daemon ~net:net_a (fun path _t ->
          with_client path (fun c ->
              let v0 =
                match request_exn c Serve.Wire.Stats with
                | Serve.Wire.Stats_reply kvs ->
                    int_of_string (List.assoc "version" kvs)
                | _ -> Alcotest.fail "expected stats"
              in
              (match request_exn c (Serve.Wire.Reload ckpt) with
              | Serve.Wire.Reloaded { version } ->
                  Alcotest.(check bool) "fresh version" true (version <> v0)
              | r ->
                  Alcotest.failf "expected reloaded, got %s"
                    (Serve.Wire.reply_to_string ~id:0 r));
              (match request_exn c (Serve.Wire.Reload "/nonexistent/x.ckpt") with
              | Serve.Wire.Error_reply _ -> ()
              | _ -> Alcotest.fail "expected error for a bad checkpoint");
              (* the daemon still solves after the swap *)
              let g = random_graph ~seed:52 ~n:7 ~m:3 in
              let p = { Serve.Wire.default_params with solver = "rl"; k = 6 } in
              match request_exn c (Serve.Wire.Pbqp (p, graph_body g)) with
              | Serve.Wire.Solution _ | Serve.Wire.No_solution _ -> ()
              | _ -> Alcotest.fail "rl solve failed after reload")))

(* ------------------------------------------------------------------ *)
(* Malformed input: never crash, never hang *)

let test_garbage_payload_gets_error_reply () =
  with_daemon (fun path _t ->
      with_client path (fun c ->
          Serve.Client.send_raw c "utter nonsense\nwith a body";
          (match Serve.Client.receive c with
          | Ok (_, Serve.Wire.Error_reply _) -> ()
          | Ok _ -> Alcotest.fail "expected an error reply"
          | Error e -> Alcotest.failf "connection died: %s" e);
          (* the connection survives a garbage payload *)
          match request_exn c Serve.Wire.Ping with
          | Serve.Wire.Pong -> ()
          | _ -> Alcotest.fail "expected pong after garbage"))

let test_oversized_frame_rejected () =
  with_daemon (fun path _t ->
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (ADDR_UNIX path);
          (* a header declaring a 64 MiB payload: rejected on sight,
             before any body arrives *)
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int (64 * 1024 * 1024));
          ignore (Unix.write fd hdr 0 4);
          (match Serve.Wire.read_frame fd with
          | Some payload -> (
              match Serve.Wire.reply_of_string payload with
              | Ok (_, Serve.Wire.Error_reply _) -> ()
              | _ -> Alcotest.fail "expected an error reply")
          | None -> Alcotest.fail "daemon closed without replying");
          (* the poisoned framing closes the connection... *)
          Alcotest.(check bool) "connection closed after bad length" true
            (Serve.Wire.read_frame fd = None));
      (* ...and the daemon keeps serving everyone else *)
      with_client path (fun c ->
          match request_exn c Serve.Wire.Ping with
          | Serve.Wire.Pong -> ()
          | _ -> Alcotest.fail "daemon dead after oversized frame"))

let test_truncated_frame_dropped () =
  with_daemon (fun path _t ->
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX path);
      (* declare 100 bytes, send 10, vanish *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 100l;
      ignore (Unix.write fd hdr 0 4);
      ignore (Unix.write_substring fd "0123456789" 0 10);
      Unix.close fd;
      (* the daemon must shrug it off and keep serving *)
      with_client path (fun c ->
          match request_exn c Serve.Wire.Ping with
          | Serve.Wire.Pong -> ()
          | _ -> Alcotest.fail "daemon dead after truncated frame"))

(* ------------------------------------------------------------------ *)
(* Deadlines and admission control *)

let test_deadline_zero_times_out () =
  let g = random_graph ~seed:53 ~n:8 ~m:3 in
  with_daemon (fun path _t ->
      with_client path (fun c ->
          let p = { Serve.Wire.default_params with solver = "rl"; k = 8;
                    deadline_ms = 0 } in
          match request_exn c (Serve.Wire.Pbqp (p, graph_body g)) with
          | Serve.Wire.Timeout -> ()
          | r ->
              Alcotest.failf "expected timeout, got %s"
                (Serve.Wire.reply_to_string ~id:0 r)))

let test_overload_rejects_at_admission () =
  (* one worker, queue of one: occupy the worker with a slow solve, then
     pipeline a burst — the IO domain admits at most the queue's worth
     and answers [overloaded] for the rest, immediately *)
  let slow = random_graph ~seed:54 ~n:12 ~m:3 in
  let quick = random_graph ~seed:55 ~n:4 ~m:3 in
  with_daemon ~workers:1 ~queue_cap:1 (fun path _t ->
      with_client path (fun c_slow ->
          with_client path (fun c_burst ->
              Serve.Client.send c_slow
                { Serve.Wire.id = 0;
                  req =
                    Serve.Wire.Pbqp
                      ( { Serve.Wire.default_params with solver = "rl";
                          k = 300 },
                        graph_body slow ) };
              (* wait until the worker has dequeued the slow request
                 (queue_depth drains to 0) — otherwise the burst races
                 it for the queue slot and every burst request can get
                 rejected.  stats is answered inline by the IO domain,
                 so this works while the lone worker is busy. *)
              let deadline = Unix.gettimeofday () +. 5.0 in
              let rec wait_pickup () =
                let depth =
                  match Serve.Client.request c_burst Serve.Wire.Stats with
                  | Ok (Serve.Wire.Stats_reply kvs) ->
                      List.assoc "queue_depth" kvs
                  | _ -> Alcotest.fail "stats poll failed"
                in
                if depth <> "0" then
                  if Unix.gettimeofday () > deadline then
                    Alcotest.fail "slow request never picked up"
                  else begin
                    ignore (Unix.select [] [] [] 0.002);
                    wait_pickup ()
                  end
              in
              wait_pickup ();
              let n_burst = 8 in
              for i = 1 to n_burst do
                Serve.Client.send c_burst
                  { Serve.Wire.id = i;
                    req =
                      Serve.Wire.Pbqp
                        (Serve.Wire.default_params, graph_body quick) }
              done;
              let ok = ref 0 and over = ref 0 in
              for _ = 1 to n_burst do
                match Serve.Client.receive c_burst with
                | Ok (_, Serve.Wire.Solution _) -> incr ok
                | Ok (_, Serve.Wire.Overloaded) -> incr over
                | Ok (_, r) ->
                    Alcotest.failf "unexpected burst reply %s"
                      (Serve.Wire.reply_to_string ~id:0 r)
                | Error e -> Alcotest.failf "burst connection died: %s" e
              done;
              Alcotest.(check int) "every burst request answered" n_burst
                (!ok + !over);
              Alcotest.(check bool) "the bounded queue rejected some" true
                (!over > 0);
              Alcotest.(check bool) "the admitted ones were served" true
                (!ok > 0);
              match Serve.Client.receive c_slow with
              | Ok (_, (Serve.Wire.Solution _ | Serve.Wire.No_solution _)) ->
                  ()
              | Ok (_, r) ->
                  Alcotest.failf "slow request got %s"
                    (Serve.Wire.reply_to_string ~id:0 r)
              | Error e -> Alcotest.failf "slow connection died: %s" e)))

(* ------------------------------------------------------------------ *)
(* The headline determinism claim *)

let test_concurrent_clients_bitwise_serial () =
  let m = 3 in
  let k = 12 in
  let graphs =
    Array.init 6 (fun i -> random_graph ~seed:(60 + i) ~n:(6 + i) ~m)
  in
  (* serial reference: the CLI solver's exact configuration, no cache,
     no coalescing, fresh net with the daemon's weights *)
  let reference =
    let net = tiny_net ~m () in
    Array.map
      (fun g ->
        match
          Core.Solver.solve_feasible ~net
            ~mcts:{ Mcts.default_config with k } g
        with
        | Some s, _ ->
            ( Cost.to_string (Solution.cost g s),
              String.trim (Pbqp.Io.solution_to_string s) )
        | None, _ -> Alcotest.fail "reference solve found no solution")
      graphs
  in
  with_daemon ~workers:4 (fun path _t ->
      let run_client offset =
        with_client path (fun c ->
            Array.init (Array.length graphs) (fun j ->
                let i = (j + offset) mod Array.length graphs in
                let p =
                  { Serve.Wire.default_params with solver = "rl"; k }
                in
                match
                  request_exn c (Serve.Wire.Pbqp (p, graph_body graphs.(i)))
                with
                | Serve.Wire.Solution { cost; assignment; _ } ->
                    (i, cost, assignment)
                | r ->
                    Alcotest.failf "client got %s"
                      (Serve.Wire.reply_to_string ~id:0 r)))
      in
      (* 4 concurrent clients, phase-shifted orders: different requests
         coalesce into shared batches, identical requests share cache
         entries — results must not notice *)
      let domains =
        Array.init 4 (fun cidx -> Domain.spawn (fun () -> run_client cidx))
      in
      let all = Array.map Domain.join domains in
      Array.iter
        (Array.iter (fun (i, cost, assignment) ->
             let rcost, rassign = reference.(i) in
             Alcotest.(check string)
               (Printf.sprintf "graph %d cost bitwise" i)
               rcost cost;
             Alcotest.(check string)
               (Printf.sprintf "graph %d assignment bitwise" i)
               rassign assignment))
        all;
      (* and the coalescing was real: cross-request batches formed *)
      with_client path (fun c ->
          match request_exn c Serve.Wire.Stats with
          | Serve.Wire.Stats_reply kvs ->
              let batches = int_of_string (List.assoc "infer_batches" kvs) in
              let rows = int_of_string (List.assoc "infer_rows" kvs) in
              Alcotest.(check bool) "batches were served" true (batches > 0);
              Alcotest.(check bool) "coalescing happened" true (rows > batches)
          | _ -> Alcotest.fail "expected stats"))

let () =
  Alcotest.run "wire"
    [
      ( "io-solution",
        [
          Alcotest.test_case "assign line round-trips" `Quick
            test_solution_roundtrip;
          Alcotest.test_case "malformed assign rejected" `Quick
            test_solution_rejects_malformed;
        ] );
      ( "codec",
        [
          Alcotest.test_case "frame codec" `Quick test_frame_codec;
          Alcotest.test_case "request round-trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_request_rejects_malformed;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "ping + stats" `Quick test_ping_and_stats;
          Alcotest.test_case "scholz solve = batch CLI solver" `Quick
            test_scholz_matches_cli_solver;
          Alcotest.test_case "reload hot-swaps the model" `Quick
            test_reload_swaps_model;
          Alcotest.test_case "garbage payload -> error reply" `Quick
            test_garbage_payload_gets_error_reply;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "truncated frame dropped" `Quick
            test_truncated_frame_dropped;
          Alcotest.test_case "deadline 0 -> timeout" `Quick
            test_deadline_zero_times_out;
          Alcotest.test_case "overload rejected at admission" `Quick
            test_overload_rejects_at_admission;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "4 concurrent clients bitwise = serial" `Slow
            test_concurrent_clients_bitwise_serial;
        ] );
    ]
