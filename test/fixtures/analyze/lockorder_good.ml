(* Fixture: two locks, always acquired m1-then-m2 — no cycle. *)

let m1 = Mutex.create ()
let m2 = Mutex.create ()

let both () =
  Mutex.lock m1;
  Mutex.lock m2;
  Mutex.unlock m2;
  Mutex.unlock m1

let via_protect () =
  Mutex.protect m1 (fun () -> Mutex.protect m2 (fun () -> ()))

let just_one () =
  Mutex.lock m2;
  Mutex.unlock m2
