(* Fixture: allocation-free hot code, including the idioms the lint
   must NOT flag. *)

let add3 a b c = a + b + c

let sum2 a b = a + b
[@@hot]

(* local refs are the loop-counter idiom, not steady-state churn *)
let iota n =
  let i = ref 0 and acc = ref 0 in
  while !i < n do
    acc := !acc + !i;
    incr i
  done;
  !acc
[@@hot]

(* a tuple as a match scrutinee is deconstructed in place *)
let swap_order a b =
  match (a, b) with
  | x, y when x > y -> x - y
  | x, y -> y - x
[@@hot]

(* full application of a known function *)
let full x = add3 x 1 2
[@@hot]

(* explicit waiver for a deliberate allocation *)
let blessed a b = ((a, b) [@analyze.ok "boxed once at setup, not per call"])
[@@hot]
