(* Fixture: module-level state that is atomic, guarded, or explicitly
   waived — nothing to report. *)

let hits = Atomic.make 0
let m = Mutex.create ()
let table = Hashtbl.create 16 [@@guarded_by "m"]
let cache = Hashtbl.create 16 [@@analyze.unshared "single-domain CLI scratch"]

let lookup k = Mutex.protect m (fun () -> Hashtbl.find_opt table k)
let hit () = Atomic.incr hits
