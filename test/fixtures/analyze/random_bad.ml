(* Fixture: global Random stream and wall-clock seeding. *)

let noise () = Random.float 1.0
let seed_clock () = Random.self_init ()
let state_clock () = Random.State.make_self_init ()
