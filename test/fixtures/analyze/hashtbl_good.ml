(* Fixture: blessed or restructured iteration — nothing to report. *)

(* per-entry action commutes; blessed at the binding *)
let clear_all tbl =
  Hashtbl.iter (fun k _ -> Hashtbl.remove tbl k) (Hashtbl.copy tbl)
[@@analyze.order_insensitive "commuting removals of distinct keys"]

(* deterministic order: sort the keys first *)
let total tbl =
  let keys =
    (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
    [@analyze.order_insensitive "collected set is sorted before use"])
    |> List.sort compare
  in
  List.fold_left (fun acc k -> acc +. Hashtbl.find tbl k) 0.0 keys
