(* Fixture: flat-indexed numeric hot code the matrix lint must not
   flag — preallocated storage mutated in place, i * cols + j access. *)

let saxpy_flat a x y cols i j =
  let idx = (i * cols) + j in
  Float.Array.unsafe_set y idx
    ((a *. Float.Array.unsafe_get x idx) +. Float.Array.unsafe_get y idx)
[@@hot]

(* reading/writing an existing boxed matrix is fine; only building one
   per call is the bug *)
let read_cell (m : float array array) i j = m.(i).(j)
[@@hot]

(* a blessed one-time build at setup *)
let setup r c = ((Array.make_matrix r c 0.0) [@analyze.ok "built once at init"])
[@@hot]
