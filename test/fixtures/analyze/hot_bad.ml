(* Fixture: every allocation class the [@hot] lint knows. *)

let add3 a b c = a + b + c

(* closure literal + allocating stdlib call *)
let scale k xs = List.map (fun x -> k * x) xs
[@@hot]

(* partial application against the registered arity of add3 *)
let partial x = add3 x 1
[@@hot]

(* tuple construction *)
let pair a b = (a, b)
[@@hot]

(* non-constant constructor *)
let wrap x = Some x
[@@hot]

(* formatting *)
let shout x = Printf.printf "%d\n" x
[@@hot]

(* string concatenation *)
let greet name = "hello " ^ name
[@@hot]
