(* Fixture: all randomness flows through an explicitly seeded state. *)

let make seed = Random.State.make [| seed |]
let noise st = Random.State.float st 1.0
let pick st n = Random.State.int st n
