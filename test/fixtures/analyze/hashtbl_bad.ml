(* Fixture: raw hash-order iteration (warning) and a float reduction in
   hash order (error, not blessable by the order attribute). *)

let dump tbl =
  Hashtbl.iter (fun k v -> print_endline (k ^ string_of_int v)) tbl

let total tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0

(* the order attribute must NOT silence a float reduction *)
let total_blessed tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0
[@@analyze.order_insensitive "wishful thinking"]
