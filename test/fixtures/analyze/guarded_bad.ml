(* Fixture: guarded-by / requires-lock violations.  Parsed by
   test_analyze, never compiled. *)

type t = {
  mutex : Mutex.t;
  mutable count : int; [@guarded_by "mutex"]
}

(* entered with the lock held by contract; body is clean *)
let bump_locked t = t.count <- t.count + 1
[@@requires_lock "mutex"]

(* write with no lock: guarded-by *)
let bump t = t.count <- t.count + 1

(* read with no lock: guarded-by *)
let peek t = t.count

(* requires_lock callee invoked outside any lock region: requires-lock *)
let sneaky t = bump_locked t

(* lock only on one branch: the branch intersection drops it, so the
   unconditional write is a guarded-by violation *)
let branchy t flag =
  if flag then Mutex.lock t.mutex;
  t.count <- 0;
  if flag then Mutex.unlock t.mutex
