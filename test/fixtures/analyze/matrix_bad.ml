(* Fixture: boxed row-pointer matrices in hot bodies — the allocation
   pattern the flat-tensor rework removed from the forward path. *)

(* Array.make_matrix builds one heap block per row *)
let scratch r c = Array.make_matrix r c 0.0
[@@hot]

(* a nested array literal is the same boxed shape, spelled inline;
   reported once for the matrix, not once per row *)
let stencil () = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]
[@@hot]

(* the unboxed replacements still count as allocations when they happen
   per call *)
let flat_scratch n = Float.Array.create n
[@@hot]

let big_scratch n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
[@@hot]
