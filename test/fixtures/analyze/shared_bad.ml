(* Fixture: module-level mutable state with no guard, plus an unlocked
   access to a guarded global. *)

let table = Hashtbl.create 16
let counter = ref 0
let scratch = Array.make 8 0.0

let m = Mutex.create ()
let guarded_tbl = Hashtbl.create 16 [@@guarded_by "m"]

(* guarded global touched outside its lock region: guarded-by *)
let lookup k = Hashtbl.find_opt guarded_tbl k
