(* Fixture: every guarded access is inside its lock region — the
   analyzer must report nothing here. *)

type t = {
  mutex : Mutex.t;
  mutable count : int; [@guarded_by "mutex"]
}

let bump_locked t = t.count <- t.count + 1
[@@requires_lock "mutex"]

let bump t =
  Mutex.lock t.mutex;
  bump_locked t;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let read t = Mutex.protect t.mutex (fun () -> t.count)

(* Condition.wait atomically releases and reacquires: still held after *)
let wait_zero t cond =
  Mutex.lock t.mutex;
  while t.count > 0 do
    Condition.wait cond t.mutex
  done;
  t.count <- -1;
  Mutex.unlock t.mutex

(* both branches agree on the held set *)
let toggle t flag =
  Mutex.lock t.mutex;
  (if flag then t.count <- 0 else t.count <- 1);
  Mutex.unlock t.mutex
