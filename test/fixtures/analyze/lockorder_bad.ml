(* Fixture: inconsistent lock acquisition order, one side of the cycle
   through a call (exercises the acquires-set fixpoint), plus a
   non-reentrant re-acquisition. *)

let m1 = Mutex.create ()
let m2 = Mutex.create ()

let inner () =
  Mutex.lock m2;
  Mutex.unlock m2

(* m1 -> m2 via the call to inner *)
let outer () =
  Mutex.lock m1;
  inner ();
  Mutex.unlock m1

(* m2 -> m1 directly: closes the cycle *)
let reversed () =
  Mutex.lock m2;
  Mutex.lock m1;
  Mutex.unlock m1;
  Mutex.unlock m2

(* OCaml mutexes are not reentrant: self-deadlock *)
let twice () =
  Mutex.lock m1;
  Mutex.lock m1;
  Mutex.unlock m1
