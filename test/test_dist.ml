(* Distributed actor/learner self-play tests: the manifest and message
   codecs, the binary parameter-snapshot round trip, the sharded replay
   buffer against the plain ring, the weighted training step, and the
   headline equalities — a 1-actor distributed run is bitwise-identical
   to the in-process trainer, and multi-actor seeded runs are
   bit-reproducible (actors hosted in domains over socketpairs; the
   subprocess topology speaks the same wire protocol). *)

open Pbqp
open Testutil

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

let params_identical a b =
  List.for_all2
    (fun (x : Nn.Var.t) (y : Nn.Var.t) ->
      tensor_bits_equal x.Nn.Var.value y.Nn.Var.value)
    (Nn.Pvnet.params a) (Nn.Pvnet.params b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Manifest *)

let test_manifest_roundtrip () =
  let m = Dist.Manifest.make ~seed:469290422 ~actors:3 in
  let path = Filename.temp_file "manifest" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dist.Manifest.save m path;
      let m' = Dist.Manifest.load path in
      Alcotest.(check int) "seed" m.Dist.Manifest.seed m'.Dist.Manifest.seed;
      Alcotest.(check int) "actors" 3 m'.Dist.Manifest.actors)

let test_manifest_validates () =
  Alcotest.check_raises "actors must be positive"
    (Invalid_argument "Manifest.make: actors <= 0") (fun () ->
      ignore (Dist.Manifest.make ~seed:1 ~actors:0));
  let m = Dist.Manifest.make ~seed:1 ~actors:2 in
  (match Dist.Manifest.actor_root m 2 with
  | _ -> Alcotest.fail "out-of-range actor id accepted"
  | exception Invalid_argument _ -> ());
  (* actor roots derive from Train's rng discipline: actor i's root is
     the (i+1)-th sequential split of the manifest rng, so roots of the
     same manifest are reproducible and distinct across actors *)
  let draw r = Random.State.bits (Dist.Manifest.actor_root m r) in
  Alcotest.(check int) "root 0 reproducible" (draw 0) (draw 0);
  Alcotest.(check bool) "roots differ across actors" true
    (draw 0 <> draw 1)

(* ------------------------------------------------------------------ *)
(* Message codecs *)

let sample_fixture () =
  let g = Generate.fig2 () in
  let st = Core.State.apply (Core.State.of_graph g) 0 in
  [
    { Nn.Pvnet.graph = Graph.copy (Core.State.graph st); next = 1;
      policy = [| 0.75; 0.25 |]; value = -1.0 };
    { Nn.Pvnet.graph = g; next = 0; policy = [| 0.5; 0.5 |]; value = 1.0 };
  ]

let test_msg_to_actor_roundtrip () =
  (* snapshot bodies are binary (little-endian float bits): embed
     newlines and NULs to pin down length-delimited framing *)
  let best = "pvnet-bin1\nbody\x00with\nbinary" and current = "\x00\x01\xff" in
  let msgs =
    [
      Dist.Msg.Snapshot { generation = 7; best; current };
      Dist.Msg.Assign { iteration = 3; lo = 12; hi = 24 };
      Dist.Msg.Quit;
    ]
  in
  List.iter
    (fun m ->
      let s = Dist.Msg.to_actor_to_string m in
      let m' = Dist.Msg.to_actor_of_string s in
      Alcotest.(check string) "re-encode fixed point" s
        (Dist.Msg.to_actor_to_string m');
      match (m, m') with
      | Dist.Msg.Snapshot a, Dist.Msg.Snapshot b ->
          Alcotest.(check int) "generation" a.generation b.generation;
          Alcotest.(check string) "best body" a.best b.best;
          Alcotest.(check string) "current body" a.current b.current
      | Dist.Msg.Assign a, Dist.Msg.Assign b ->
          Alcotest.(check (list int)) "assign fields"
            [ a.iteration; a.lo; a.hi ]
            [ b.iteration; b.lo; b.hi ]
      | Dist.Msg.Quit, Dist.Msg.Quit -> ()
      | _ -> Alcotest.fail "constructor changed across round trip")
    msgs

let test_msg_to_learner_roundtrip () =
  let samples = sample_fixture () in
  let m =
    Dist.Msg.Episode
      { iteration = 5; index = 11; actor = 1; generation = 4; failed = false;
        samples }
  in
  let s = Dist.Msg.to_learner_to_string m in
  let (Dist.Msg.Episode e) = Dist.Msg.to_learner_of_string s in
  Alcotest.(check (list int)) "header fields"
    [ 5; 11; 1; 4 ]
    [ e.iteration; e.index; e.actor; e.generation ];
  Alcotest.(check bool) "failed" false e.failed;
  Alcotest.(check int) "sample count" 2 (List.length e.samples);
  (* the sample payload is the replay text codec: exact float
     round-trip, so re-encoding is a fixed point *)
  Alcotest.(check string) "re-encode fixed point" s
    (Dist.Msg.to_learner_to_string (Dist.Msg.Episode e));
  List.iter2
    (fun (a : Nn.Pvnet.sample) (b : Nn.Pvnet.sample) ->
      Alcotest.(check int) "next" a.next b.next;
      Alcotest.(check bool) "value" true (a.value = b.value);
      Alcotest.(check bool) "policy" true (a.policy = b.policy))
    samples e.samples;
  match Dist.Msg.to_learner_of_string "bogus 1 2\n" with
  | _ -> Alcotest.fail "malformed header accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Binary parameter snapshots (satellite: codec round-trip coverage) *)

let test_snapshot_roundtrip_bitwise () =
  let m = 3 in
  let src = tiny_net ~seed:3 ~m () in
  (* nudge the weights off their init so the round trip exercises
     non-trivial float bit patterns *)
  let opt = Nn.Adam.create Nn.Adam.default_config in
  let batch =
    List.init 4 (fun i ->
        let g =
          Generate.erdos_renyi ~rng:(rng (40 + i))
            { Generate.default with n = 6; m; p_edge = 0.4 }
        in
        { Nn.Pvnet.graph = g; next = 0;
          policy = Array.make m (1.0 /. float_of_int m);
          value = 0.25 *. float_of_int i })
  in
  ignore (Nn.Pvnet.train_batch src opt batch : float);
  let snap = Nn.Pvnet.snapshot src in
  (* load into a differently-initialised net of the same config *)
  let dst = tiny_net ~seed:99 ~m () in
  Alcotest.(check bool) "distinct before load" false
    (params_identical src dst);
  let v0 = Nn.Pvnet.version dst in
  Nn.Pvnet.load_snapshot dst snap;
  Alcotest.(check bool) "params bitwise-identical after load" true
    (params_identical src dst);
  Alcotest.(check bool) "version stamp refreshed" true
    (Nn.Pvnet.version dst <> v0);
  (* loading must not have tied storage: training dst leaves src alone *)
  ignore (Nn.Pvnet.train_batch dst opt batch : float);
  Alcotest.(check bool) "storage not aliased" false
    (params_identical src dst);
  (* fresh-net constructor (actor-side first receive) *)
  let fresh = Nn.Pvnet.snapshot_of_string snap in
  Alcotest.(check bool) "snapshot_of_string identical" true
    (params_identical src fresh);
  (* snapshotting is read-only and deterministic *)
  Alcotest.(check string) "snapshot is a pure function of the params" snap
    (Nn.Pvnet.snapshot fresh)

let test_snapshot_across_copy_into_replica () =
  (* the learner snapshots nets that are also the source of copy_into
     replica refreshes; a snapshot taken from a refreshed replica must
     equal one taken from the original *)
  let m = 3 in
  let src = tiny_net ~seed:3 ~m () in
  let replica = tiny_net ~seed:42 ~m () in
  Nn.Pvnet.copy_into ~src ~dst:replica;
  Alcotest.(check string) "replica snapshot identical"
    (Nn.Pvnet.snapshot src)
    (Nn.Pvnet.snapshot replica);
  let back = Nn.Pvnet.snapshot_of_string (Nn.Pvnet.snapshot replica) in
  Alcotest.(check bool) "round trip through replica" true
    (params_identical src back)

let test_snapshot_rejects_mismatch () =
  let snap = Nn.Pvnet.snapshot (tiny_net ~m:3 ()) in
  let other = tiny_net ~m:4 () in
  (match Nn.Pvnet.load_snapshot other snap with
  | () -> Alcotest.fail "config mismatch accepted"
  | exception Invalid_argument _ -> ());
  match Nn.Pvnet.snapshot_of_string "not a snapshot" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Sharded replay *)

let mk_sample v =
  let g = Graph.create ~m:2 ~n:1 in
  { Nn.Pvnet.graph = g; next = 0; policy = [| 1.0; 0.0 |]; value = v }

let test_shards_one_equals_replay () =
  (* shards=1 must be element-for-element the plain ring: same draws
     under the same rng, byte-identical checkpoint *)
  let replay = Core.Replay.create ~capacity:5 in
  let shards = Dist.Shards.create ~capacity:5 ~shards:1 in
  List.iter
    (fun v ->
      Core.Replay.add replay (mk_sample v);
      Dist.Shards.add shards ~origin:0 ~lag:0 (mk_sample v))
    [ 1.; 2.; 3.; 4.; 5.; 6.; 7. ];
  Alcotest.(check int) "length" (Core.Replay.length replay)
    (Dist.Shards.length shards);
  let values_r =
    List.map (fun (s : Nn.Pvnet.sample) -> s.value)
      (Core.Replay.sample_batch ~rng:(rng 11) replay 64)
  in
  let values_s =
    List.map (fun ((s : Nn.Pvnet.sample), _lag) -> s.value)
      (Dist.Shards.sample_batch ~rng:(rng 11) shards 64)
  in
  Alcotest.(check (list (float 0.0))) "identical draws" values_r values_s;
  let pr = Filename.temp_file "replay" ".txt" in
  let ps = Filename.temp_file "shards" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove pr; Sys.remove ps)
    (fun () ->
      Core.Replay.save replay pr;
      Dist.Shards.save shards ps;
      Alcotest.(check string) "byte-identical checkpoint" (read_file pr)
        (read_file ps))

let test_shards_eviction_per_shard () =
  (* capacity 6 over 2 shards = 3 slots each; overflowing shard 0 must
     evict only shard 0's oldest *)
  let t = Dist.Shards.create ~capacity:6 ~shards:2 in
  List.iter (fun v -> Dist.Shards.add t ~origin:0 ~lag:0 (mk_sample v))
    [ 1.; 2.; 3.; 4.; 5. ];
  List.iter (fun v -> Dist.Shards.add t ~origin:1 ~lag:2 (mk_sample v))
    [ 10.; 11. ];
  Alcotest.(check int) "length caps per shard" 5 (Dist.Shards.length t);
  Alcotest.(check int) "capacity" 6 (Dist.Shards.capacity t);
  let drawn = Dist.Shards.sample_batch ~rng:(rng 2) t 200 in
  List.iter
    (fun ((s : Nn.Pvnet.sample), lag) ->
      Alcotest.(check bool) "shard-0 oldest evicted" true (s.value >= 3.0);
      Alcotest.(check int) "lag travels with the sample"
        (if s.value >= 10.0 then 2 else 0)
        lag)
    drawn;
  (* both shards are reachable from the concatenated draw space *)
  Alcotest.(check bool) "draws hit both shards" true
    (List.exists (fun ((s : Nn.Pvnet.sample), _) -> s.value >= 10.0) drawn
    && List.exists (fun ((s : Nn.Pvnet.sample), _) -> s.value < 10.0) drawn)

let test_shards_save_load () =
  let t = Dist.Shards.create ~capacity:8 ~shards:3 in
  List.iteri
    (fun i v -> Dist.Shards.add t ~origin:(i mod 3) ~lag:(i mod 2)
        (mk_sample v))
    [ 1.; 2.; 3.; 4.; 5. ];
  let path = Filename.temp_file "shards" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dist.Shards.save t path;
      let t' = Dist.Shards.create ~capacity:8 ~shards:2 in
      Dist.Shards.load_into t' path;
      Alcotest.(check int) "length restored" 5 (Dist.Shards.length t');
      let values u =
        List.sort_uniq compare
          (List.map (fun ((s : Nn.Pvnet.sample), _) -> s.value)
             (Dist.Shards.sample_batch ~rng:(rng 4) u 400))
      in
      Alcotest.(check (list (float 0.0))) "same sample set" (values t)
        (values t');
      List.iter
        (fun (_, lag) ->
          Alcotest.(check int) "reloaded samples restart at lag 0" 0 lag)
        (Dist.Shards.sample_batch ~rng:(rng 5) t' 50));
  Alcotest.check_raises "shard count validated"
    (Invalid_argument "Shards.create: capacity < shards") (fun () ->
      ignore (Dist.Shards.create ~capacity:1 ~shards:2))

(* ------------------------------------------------------------------ *)
(* Weighted training step (staleness down-weighting) *)

let with_pool ~domains f =
  let pool = Par.Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let training_batch ~m ~seed n =
  let r = rng seed in
  List.init n (fun _ ->
      let g =
        Generate.erdos_renyi ~rng:r
          { Generate.default with n = 6; m; p_edge = 0.4; p_inf = 0.1 }
      in
      let next = Random.State.int r 6 in
      let raw = Array.init m (fun _ -> Random.State.float r 1.0 +. 0.01) in
      let s = Array.fold_left ( +. ) 0.0 raw in
      {
        Nn.Pvnet.graph = g;
        next;
        policy = Array.map (fun x -> x /. s) raw;
        value = Random.State.float r 2.0 -. 1.0;
      })

let test_weights_all_ones_bitwise () =
  let m = 3 in
  let batch = training_batch ~m ~seed:77 6 in
  let step ?weights () =
    let net = tiny_net ~m () in
    let opt = Nn.Adam.create Nn.Adam.default_config in
    with_pool ~domains:2 (fun pool ->
        let replicas =
          Array.init (Par.Pool.size pool) (fun w ->
              if w = 0 then net else Nn.Pvnet.clone net)
        in
        let loss =
          Nn.Pvnet.train_batch_parallel ?weights ~pool ~replicas net opt
            batch
        in
        (net, loss))
  in
  let n0, l0 = step () in
  let n1, l1 = step ~weights:(Array.make 6 1.0) () in
  Alcotest.(check bool) "explicit 1.0s = omitted, bitwise" true
    (Int64.equal (Int64.bits_of_float l0) (Int64.bits_of_float l1)
    && params_identical n0 n1);
  let n2, _ = step ~weights:[| 1.0; 0.5; 1.0; 0.25; 1.0; 1.0 |] () in
  Alcotest.(check bool) "down-weighting changes the step" false
    (params_identical n0 n2)

let test_weights_length_validated () =
  let m = 3 in
  let net = tiny_net ~m () in
  let opt = Nn.Adam.create Nn.Adam.default_config in
  with_pool ~domains:1 (fun pool ->
      Alcotest.check_raises "weights/samples mismatch"
        (Invalid_argument
           "Pvnet.train_batch_parallel: weights/samples mismatch")
        (fun () ->
          ignore
            (Nn.Pvnet.train_batch_parallel ~weights:[| 0.5 |] ~pool
               ~replicas:[| net |] net opt (training_batch ~m ~seed:9 2))))

(* ------------------------------------------------------------------ *)
(* Whole-run equalities: distributed vs in-process, reproducibility *)

let in_temp_dir f =
  let dir = Filename.temp_file "distrun" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run_config ~m prefix =
  {
    (Core.Train.default_config ~m) with
    iterations = 2;
    episodes_per_iteration = 4;
    domains = 1;
    mcts = { Mcts.default_config with k = 6 };
    net =
      { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
        gcn_layers = 1 };
    n_mean = 6.0;
    n_stddev = 1.0;
    n_min = 3;
    arena_games = 2;
    batches_per_iteration = 2;
    batch_size = 8;
    checkpoint = Some prefix;
  }

let run_distributed ?shards ?stale_decay ?pipeline ~actors ~seed cfg =
  let launch, join = Dist.Spawn.domains ~config:cfg in
  let net =
    Core.Train.run
      ~make_source:
        (Dist.Learner.source ~config:cfg ~actors ?shards ?stale_decay
           ?pipeline ~on_shutdown:join ~launch ())
      ~rng:(rng seed) cfg
  in
  net

let test_one_actor_equals_in_process () =
  let m = 3 in
  in_temp_dir (fun dir ->
      let p_local = Filename.concat dir "local" in
      let p_dist = Filename.concat dir "dist" in
      let local = Core.Train.run ~rng:(rng 7) (run_config ~m p_local) in
      let dist =
        run_distributed ~actors:1 ~seed:7 (run_config ~m p_dist)
      in
      Alcotest.(check string) "replay buffers identical, byte for byte"
        (read_file (p_local ^ ".replay.txt"))
        (read_file (p_dist ^ ".replay.txt"));
      Alcotest.(check bool) "final nets identical, bit for bit" true
        (params_identical local dist))

let test_two_actors_reproducible () =
  let m = 3 in
  in_temp_dir (fun dir ->
      let go tag =
        let prefix = Filename.concat dir tag in
        let net = run_distributed ~actors:2 ~seed:7 (run_config ~m prefix) in
        (net, read_file (prefix ^ ".replay.txt"))
      in
      let net_a, replay_a = go "a" in
      let net_b, replay_b = go "b" in
      Alcotest.(check string) "2-actor replay reproducible" replay_a replay_b;
      Alcotest.(check bool) "2-actor net reproducible" true
        (params_identical net_a net_b))

let test_pipelined_stale_run_reproducible () =
  (* pipeline=1 plays each iteration's episodes under weights exactly
     one generation old and down-weights them — still deterministic *)
  let m = 3 in
  in_temp_dir (fun dir ->
      let go tag =
        let prefix = Filename.concat dir tag in
        let net =
          run_distributed ~actors:2 ~shards:3 ~stale_decay:0.8 ~pipeline:1
            ~seed:7 (run_config ~m prefix)
        in
        (net, read_file (prefix ^ ".replay.txt"))
      in
      let net_a, replay_a = go "a" in
      let net_b, replay_b = go "b" in
      Alcotest.(check string) "pipelined replay reproducible" replay_a
        replay_b;
      Alcotest.(check bool) "pipelined net reproducible" true
        (params_identical net_a net_b))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dist"
    [
      ( "manifest",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "validation + root streams" `Quick
            test_manifest_validates;
        ] );
      ( "msg",
        [
          Alcotest.test_case "to_actor round trips (binary-safe)" `Quick
            test_msg_to_actor_roundtrip;
          Alcotest.test_case "to_learner round trips" `Quick
            test_msg_to_learner_roundtrip;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "save/load bitwise round trip" `Quick
            test_snapshot_roundtrip_bitwise;
          Alcotest.test_case "across a copy_into replica" `Quick
            test_snapshot_across_copy_into_replica;
          Alcotest.test_case "mismatch rejected" `Quick
            test_snapshot_rejects_mismatch;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shards=1 = plain replay ring" `Quick
            test_shards_one_equals_replay;
          Alcotest.test_case "per-shard eviction + lag" `Quick
            test_shards_eviction_per_shard;
          Alcotest.test_case "save/load round trip" `Quick
            test_shards_save_load;
        ] );
      ( "weighted-step",
        [
          Alcotest.test_case "all-ones = unweighted, bitwise" `Quick
            test_weights_all_ones_bitwise;
          Alcotest.test_case "length validated" `Quick
            test_weights_length_validated;
        ] );
      ( "runs",
        [
          Alcotest.test_case "--actors 1 = in-process (replay + weights)"
            `Slow test_one_actor_equals_in_process;
          Alcotest.test_case "2 actors bit-reproducible" `Slow
            test_two_actors_reproducible;
          Alcotest.test_case "pipeline + stale decay reproducible" `Slow
            test_pipelined_stale_run_reproducible;
        ] );
    ]
