(* Tests for the Deep-RL PBQP solver core: reduced-graph states, coloring
   orders, rewards, episodes, backtracking, the replay buffer, the solver
   facade, and a miniature end-to-end training run. *)

open Pbqp
open Testutil

let tiny_net ?(seed = 3) ~m () =
  Nn.Pvnet.create ~rng:(rng seed)
    { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
      gcn_layers = 1 }

(* ------------------------------------------------------------------ *)
(* State *)

let test_state_initial () =
  let g = Generate.fig2 () in
  let st = Core.State.of_graph g in
  Alcotest.(check int) "m" 2 (Core.State.m st);
  Alcotest.(check (option int)) "next vertex" (Some 0) (Core.State.next_vertex st);
  Alcotest.(check bool) "not complete" false (Core.State.is_complete st);
  Alcotest.(check bool) "not dead end" false (Core.State.is_dead_end st);
  Alcotest.(check int) "remaining" 3 (Core.State.remaining st);
  Alcotest.check cost "base cost 0" 0.0 (Core.State.base_cost st)

let test_state_fig3_transition () =
  (* Figure 3 of the paper: coloring vertex 1 (our vertex 0) with color 2
     (our color 1) must fold the selected matrix rows into the neighbors. *)
  let g = Generate.fig2 () in
  let st = Core.State.of_graph g in
  let st1 = Core.State.apply st 1 in
  let g1 = Core.State.graph st1 in
  Alcotest.(check bool) "vertex 0 detached" false (Graph.is_alive g1 0);
  (* vertex 1's vector gains row 1 of M01 = (x, 8) with x = 10 *)
  Alcotest.check vec "neighbor 1 updated"
    (Vec.of_array [| 5.0 +. 10.0; 0.0 +. 8.0 |])
    (Graph.cost g1 1);
  (* vertex 2's vector gains row 1 of M02 = (5, x) *)
  Alcotest.check vec "neighbor 2 updated"
    (Vec.of_array [| 0.0 +. 5.0; 7.0 +. 10.0 |])
    (Graph.cost g1 2);
  Alcotest.check cost "base cost = selected vertex cost" 2.0
    (Core.State.base_cost st1)

let test_state_full_play_cost_equivalence () =
  (* playing (0,0,0) on fig2 accumulates exactly the Equation-1 cost 11 *)
  let g = Generate.fig2 () in
  let st = Core.State.of_graph g in
  let final = List.fold_left Core.State.apply st [ 0; 0; 0 ] in
  Alcotest.(check bool) "complete" true (Core.State.is_complete final);
  Alcotest.check cost "accumulated = Equation 1" 11.0
    (Core.State.base_cost final);
  Alcotest.check cost "matches Solution.cost" 11.0
    (Solution.cost g (Core.State.assignment final))

let test_state_persistence () =
  let g = Generate.fig2 () in
  let st = Core.State.of_graph g in
  let _st1 = Core.State.apply st 0 in
  (* the original state is untouched *)
  Alcotest.(check (option int)) "still at vertex 0" (Some 0)
    (Core.State.next_vertex st);
  Alcotest.(check int) "graph still full" 3 (Graph.n_alive (Core.State.graph st))

let test_state_illegal () =
  let g = Graph.create ~m:2 ~n:1 in
  Graph.set_cost g 0 (Vec.of_array [| 1.0; Cost.inf |]);
  let st = Core.State.of_graph g in
  Alcotest.(check bool) "color 0 legal" true (Core.State.legal st 0);
  Alcotest.(check bool) "color 1 illegal" false (Core.State.legal st 1);
  Alcotest.check_raises "apply illegal"
    (Invalid_argument "State.apply: illegal color") (fun () ->
      ignore (Core.State.apply st 1))

let test_state_dead_end () =
  (* coloring vertex 0 with color 0 forces both colors of vertex 1 to inf *)
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 0.0; 0.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; 0.0 |]);
  Graph.add_edge g 0 1
    (Mat.of_arrays [| [| Cost.inf; Cost.inf |]; [| 0.0; 0.0 |] |]);
  let st = Core.State.of_graph g in
  let st' = Core.State.apply st 0 in
  Alcotest.(check bool) "dead end" true (Core.State.is_dead_end st');
  Alcotest.(check bool) "terminal" true (Core.State.is_terminal st');
  Alcotest.(check bool) "not complete" false (Core.State.is_complete st');
  let ok = Core.State.apply st 1 in
  Alcotest.(check bool) "other color fine" false (Core.State.is_dead_end ok)

let test_state_custom_order () =
  let g = Generate.fig2 () in
  let st = Core.State.of_graph ~order:[| 2; 0; 1 |] g in
  Alcotest.(check (option int)) "starts at 2" (Some 2) (Core.State.next_vertex st);
  Alcotest.check_raises "bad order"
    (Invalid_argument "State.of_graph: order is not a permutation of the vertices")
    (fun () -> ignore (Core.State.of_graph ~order:[| 0; 0; 1 |] g))

let prop_state_cost_equivalence =
  qtest ~count:80 "random playout cost equals Equation 1 (Fig. 3 equivalence)"
    (arb_graph_spec ~nmax:8 ~mmax:3 ~p_inf:0.2 ()) (fun spec ->
      let g = build_graph spec in
      let r = rng (spec.seed + 7) in
      let rec play st =
        if Core.State.is_complete st then Some st
        else if Core.State.is_dead_end st then None
        else
          let colors =
            List.filter (Core.State.legal st)
              (List.init spec.m Fun.id)
          in
          match colors with
          | [] -> None
          | cs ->
              let c = List.nth cs (Random.State.int r (List.length cs)) in
              play (Core.State.apply st c)
      in
      match play (Core.State.of_graph g) with
      | None -> true (* dead end: nothing to compare *)
      | Some final ->
          Cost.approx_equal ~eps:1e-6
            (Core.State.base_cost final)
            (Solution.cost g (Core.State.assignment final)))

(* ------------------------------------------------------------------ *)
(* Order *)

let liberty_graph () =
  (* liberties: v0=1, v1=3, v2=2 *)
  let g = Graph.create ~m:3 ~n:3 in
  Graph.set_cost g 0 (Vec.of_array [| 0.0; Cost.inf; Cost.inf |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; 0.0; 0.0 |]);
  Graph.set_cost g 2 (Vec.of_array [| 0.0; 0.0; Cost.inf |]);
  g

let test_order_kinds () =
  let g = liberty_graph () in
  Alcotest.(check (array int)) "by id" [| 0; 1; 2 |]
    (Core.Order.compute Core.Order.By_id g);
  Alcotest.(check (array int)) "increasing liberty" [| 0; 2; 1 |]
    (Core.Order.compute Core.Order.Increasing_liberty g);
  Alcotest.(check (array int)) "decreasing liberty" [| 1; 2; 0 |]
    (Core.Order.compute Core.Order.Decreasing_liberty g);
  let shuffled = Core.Order.compute ~rng:(rng 4) Core.Order.Random g in
  Alcotest.(check (list int)) "random is a permutation" [ 0; 1; 2 ]
    (List.sort Int.compare (Array.to_list shuffled));
  Alcotest.check_raises "random needs rng"
    (Invalid_argument "Order.compute: Random order needs an rng") (fun () ->
      ignore (Core.Order.compute Core.Order.Random g))

(* ------------------------------------------------------------------ *)
(* Game rewards *)

let test_rewards_feasibility () =
  Alcotest.(check (float 1e-9)) "finite wins" 1.0
    (Core.Game.reward Core.Game.Feasibility 0.0);
  Alcotest.(check (float 1e-9)) "inf loses" (-1.0)
    (Core.Game.reward Core.Game.Feasibility Cost.inf)

let test_rewards_minimize () =
  let mode = Core.Game.Minimize { reference = 10.0; shaping = 0.0 } in
  Alcotest.(check (float 1e-9)) "smaller wins" 1.0 (Core.Game.reward mode 5.0);
  Alcotest.(check (float 1e-9)) "equal ties" 0.0 (Core.Game.reward mode 10.0);
  Alcotest.(check (float 1e-9)) "bigger loses" (-1.0) (Core.Game.reward mode 12.0);
  Alcotest.(check (float 1e-9)) "inf always loses" (-1.0)
    (Core.Game.reward mode Cost.inf);
  let shaped = Core.Game.Minimize { reference = 10.0; shaping = 5.0 } in
  let r = Core.Game.reward shaped 5.0 in
  Alcotest.(check bool) "shaped in (0,1)" true (r > 0.0 && r < 1.0);
  Alcotest.(check (float 1e-9)) "shaped tie is 0" 0.0
    (Core.Game.reward shaped 10.0);
  Alcotest.(check (float 1e-9)) "finite beats inf reference" 1.0
    (Core.Game.reward (Core.Game.Minimize { reference = Cost.inf; shaping = 0.0 }) 3.0)

(* ------------------------------------------------------------------ *)
(* Episode *)

let test_episode_completes_fig2 () =
  let g = Generate.fig2 () in
  let net = tiny_net ~m:2 () in
  let outcome, samples =
    Core.Episode.play ~collect:true ~rng:(rng 1) ~net
      ~mode:(Core.Game.Minimize { reference = 24.0; shaping = 5.0 })
      { Core.Episode.mcts = { Mcts.default_config with k = 30 };
        temperature_moves = 0; root_noise = None }
      (Core.State.of_graph g)
  in
  (match outcome.Core.Episode.solution with
  | Some sol ->
      Alcotest.check cost "episode cost consistent"
        outcome.Core.Episode.cost (Solution.cost g sol)
  | None -> Alcotest.fail "fig2 has no dead ends");
  Alcotest.(check int) "one sample per move" 3 (List.length samples);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "placeholder value" 0.0 s.Nn.Pvnet.value;
      Alcotest.(check (float 1e-6)) "policy normalized" 1.0
        (Array.fold_left ( +. ) 0.0 s.Nn.Pvnet.policy))
    samples;
  let stamped = Core.Episode.set_values 1.0 samples in
  List.iter
    (fun s -> Alcotest.(check (float 1e-9)) "stamped" 1.0 s.Nn.Pvnet.value)
    stamped

let test_episode_with_enough_search_is_optimal () =
  (* fig2 has 8 leaves; with a large k MCTS enumerates them all and argmax
     play must find the optimum 11 *)
  let g = Generate.fig2 () in
  let net = tiny_net ~m:2 ~seed:5 () in
  let outcome, _ =
    Core.Episode.play ~rng:(rng 1) ~net
      ~mode:(Core.Game.Minimize { reference = 24.0; shaping = 5.0 })
      { Core.Episode.mcts = { Mcts.default_config with k = 200 };
        temperature_moves = 0; root_noise = None }
      (Core.State.of_graph g)
  in
  Alcotest.check cost "optimal" 11.0 outcome.Core.Episode.cost

(* ------------------------------------------------------------------ *)
(* Backtrack *)

let planted_ate ~seed ~n ~m =
  fst
    (Generate.planted ~rng:(rng seed)
       {
         Generate.default with
         n;
         m;
         p_edge = 0.3;
         p_inf = 0.55;
         zero_inf = true;
       })

let test_backtrack_solves_planted () =
  let m = 4 in
  let net = tiny_net ~m () in
  let solved = ref 0 in
  for seed = 0 to 4 do
    let g = planted_ate ~seed ~n:16 ~m in
    let order = Core.Order.compute Core.Order.Decreasing_liberty g in
    let result =
      Core.Backtrack.solve ~net ~mode:Core.Game.Feasibility
        { Core.Backtrack.default_config with
          mcts = { Mcts.default_config with k = 16 } }
        (Core.State.of_graph ~order g)
    in
    match result.Core.Backtrack.solution with
    | Some sol ->
        incr solved;
        Alcotest.(check bool) "valid" true (Solution.valid g sol)
    | None -> ()
  done;
  Alcotest.(check int) "all planted instances solved" 5 !solved

let test_backtrack_disabled_fails_on_dead_end () =
  (* a forced dead end: vertex 0 colored greedily kills vertex 1 unless
     backtracking retries *)
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 0.0; 0.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; Cost.inf |]);
  Graph.add_edge g 0 1
    (Mat.of_arrays [| [| Cost.inf; 0.0 |]; [| 0.0; 0.0 |] |]);
  (* color 0 for vertex 0 makes vertex 1 all-inf; color 1 is fine *)
  let net = tiny_net ~m:2 () in
  let run ~enabled =
    Core.Backtrack.solve ~net ~mode:Core.Game.Feasibility
      { Core.Backtrack.default_config with
        enabled;
        mcts = { Mcts.default_config with k = 4 } }
      (Core.State.of_graph g)
  in
  let with_bt = run ~enabled:true in
  Alcotest.(check bool) "backtracking solves it" true
    (with_bt.Core.Backtrack.solution <> None);
  (* without backtracking the result depends on which color the tiny net
     tries first; it must at least never return an invalid solution *)
  let without = run ~enabled:false in
  match without.Core.Backtrack.solution with
  | Some sol -> Alcotest.(check bool) "valid if returned" true (Solution.valid g sol)
  | None -> ()

let test_backtrack_infeasible_terminates () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 0 2 (Mat.interference 2);
  let net = tiny_net ~m:2 () in
  let result =
    Core.Backtrack.solve ~net ~mode:Core.Game.Feasibility
      { Core.Backtrack.default_config with
        mcts = { Mcts.default_config with k = 8 } }
      (Core.State.of_graph g)
  in
  Alcotest.(check bool) "no solution" true (result.Core.Backtrack.solution = None);
  Alcotest.(check bool) "exhausted search, not budget" false
    result.Core.Backtrack.budget_exhausted

let test_backtrack_budget () =
  let g = planted_ate ~seed:9 ~n:20 ~m:3 in
  let net = tiny_net ~m:3 () in
  let result =
    Core.Backtrack.solve ~net ~mode:Core.Game.Feasibility
      { Core.Backtrack.default_config with
        max_backtracks = 0;
        mcts = { Mcts.default_config with k = 4 } }
      (Core.State.of_graph g)
  in
  (* with zero backtracks allowed either it one-shots the instance or it
     reports budget exhaustion *)
  if result.Core.Backtrack.solution = None then
    Alcotest.(check bool) "budget reported" true
      (result.Core.Backtrack.budget_exhausted
      || result.Core.Backtrack.backtracks = 0)

let test_backtrack_dead_on_arrival () =
  let g = Graph.create ~m:2 ~n:1 in
  Graph.set_cost g 0 (Vec.make 2 Cost.inf);
  let net = tiny_net ~m:2 () in
  let result =
    Core.Backtrack.solve ~net ~mode:Core.Game.Feasibility
      Core.Backtrack.default_config (Core.State.of_graph g)
  in
  Alcotest.(check bool) "fails immediately" true
    (result.Core.Backtrack.solution = None)

(* ------------------------------------------------------------------ *)
(* Rollout *)

let test_rollout_greedy () =
  let g = Generate.fig2 () in
  let st = Core.State.of_graph g in
  let c = Core.Rollout.greedy_cost st in
  Alcotest.(check bool) "finite completion" true (Cost.is_finite c);
  (match Core.Rollout.greedy_solution st with
  | Some (sol, c') ->
      Alcotest.check cost "solution cost matches" c' (Solution.cost g sol)
  | None -> Alcotest.fail "fig2 completes greedily");
  (* greedy at least matches the optimum bound from below *)
  Alcotest.(check bool) "greedy >= optimum" true (Cost.compare c 11.0 >= 0)

let test_rollout_dead_end () =
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 0.0; Cost.inf |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; Cost.inf |]);
  Graph.add_edge g 0 1 (Mat.interference 2);
  let st = Core.State.of_graph g in
  Alcotest.check cost_exact "dead end is inf" Cost.inf
    (Core.Rollout.greedy_cost st);
  Alcotest.(check bool) "no solution" true
    (Core.Rollout.greedy_solution st = None);
  Alcotest.(check (float 1e-9)) "feasibility reward -1" (-1.0)
    (Core.Rollout.value ~mode:Core.Game.Feasibility st)

(* ------------------------------------------------------------------ *)
(* Replay *)

let mk_sample v =
  let g = Graph.create ~m:2 ~n:1 in
  { Nn.Pvnet.graph = g; next = 0; policy = [| 1.0; 0.0 |]; value = v }

let test_replay_fifo_eviction () =
  let r = Core.Replay.create ~capacity:3 in
  List.iter (fun v -> Core.Replay.add r (mk_sample v)) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "size capped" 3 (Core.Replay.length r);
  let batch = Core.Replay.sample_batch ~rng:(rng 1) r 100 in
  Alcotest.(check int) "batch size" 100 (List.length batch);
  List.iter
    (fun s ->
      Alcotest.(check bool) "oldest evicted" true (s.Nn.Pvnet.value >= 2.0))
    batch

let test_replay_save_load () =
  let r = Core.Replay.create ~capacity:10 in
  (* reduced-graph samples with dead vertices must round-trip *)
  let g = Generate.fig2 () in
  let st = Core.State.apply (Core.State.of_graph g) 0 in
  let reduced = Core.State.graph st in
  Core.Replay.add r
    { Nn.Pvnet.graph = Graph.copy reduced; next = 1;
      policy = [| 0.75; 0.25 |]; value = -1.0 };
  Core.Replay.add r
    { Nn.Pvnet.graph = Graph.copy g; next = 0; policy = [| 0.5; 0.5 |];
      value = 1.0 };
  let path = Filename.temp_file "replay" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.Replay.save r path;
      let r' = Core.Replay.load path in
      Alcotest.(check int) "count" 2 (Core.Replay.length r');
      Alcotest.(check int) "capacity" 10 (Core.Replay.capacity r');
      let batch = Core.Replay.sample_batch ~rng:(rng 1) r' 20 in
      List.iter
        (fun (s : Nn.Pvnet.sample) ->
          Alcotest.(check bool) "value round-tripped" true
            (s.Nn.Pvnet.value = -1.0 || s.Nn.Pvnet.value = 1.0);
          if s.Nn.Pvnet.next = 1 then begin
            Alcotest.(check bool) "vertex 0 still dead" false
              (Graph.is_alive s.Nn.Pvnet.graph 0);
            Alcotest.check vec "reduced vector preserved"
              (Graph.cost reduced 1)
              (Graph.cost s.Nn.Pvnet.graph 1)
          end)
        batch)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_replay_full_buffer_roundtrip () =
  (* a buffer that has wrapped (evicted its oldest entries) must
     round-trip exactly: same length, same capacity, same tuples in the
     same order — locked down by comparing a save→load→save double dump
     byte for byte *)
  let r = Core.Replay.create ~capacity:4 in
  List.iter (fun v -> Core.Replay.add r (mk_sample v)) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  let p1 = Filename.temp_file "replay-full" ".txt" in
  let p2 = Filename.temp_file "replay-full" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Core.Replay.save r p1;
      let r' = Core.Replay.load p1 in
      Alcotest.(check int) "length" 4 (Core.Replay.length r');
      Alcotest.(check int) "capacity" 4 (Core.Replay.capacity r');
      List.iter
        (fun (s : Nn.Pvnet.sample) ->
          Alcotest.(check bool) "evicted samples stay gone" true
            (s.Nn.Pvnet.value >= 3.0))
        (Core.Replay.sample_batch ~rng:(rng 1) r' 50);
      Core.Replay.save r' p2;
      Alcotest.(check string) "double dump identical" (read_file p1)
        (read_file p2))

let test_replay_empty () =
  let r = Core.Replay.create ~capacity:3 in
  Alcotest.(check int) "empty batch" 0
    (List.length (Core.Replay.sample_batch ~rng:(rng 1) r 10));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Replay.create: capacity <= 0") (fun () ->
      ignore (Core.Replay.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Solver facade + training smoke test *)

let test_solver_feasible_planted () =
  let m = 4 in
  let net = tiny_net ~m () in
  let g = planted_ate ~seed:3 ~n:18 ~m in
  let sol, stats =
    Core.Solver.solve_feasible ~net
      ~mcts:{ Mcts.default_config with k = 16 } g
  in
  (match sol with
  | Some s -> Alcotest.(check bool) "valid" true (Solution.valid g s)
  | None -> Alcotest.fail "planted instance should be solved");
  Alcotest.(check bool) "nodes counted" true (stats.Core.Solver.nodes > 0)

let test_solver_minimize_fig2 () =
  let net = tiny_net ~m:2 () in
  let result, _ =
    Core.Solver.minimize ~net ~mcts:{ Mcts.default_config with k = 200 }
      (Generate.fig2 ())
  in
  match result with
  | Some (_, c) -> Alcotest.check cost "optimal" 11.0 c
  | None -> Alcotest.fail "fig2 should minimize"

let test_solver_exact_reduce_hybrid () =
  (* the hybrid must reach the same answers while creating fewer (or at
     worst equal) game-tree nodes, since it only searches the hard core *)
  let m = 4 in
  let net = tiny_net ~m () in
  let solved_both = ref 0 in
  for seed = 0 to 3 do
    let g = planted_ate ~seed:(40 + seed) ~n:18 ~m in
    let sol_plain, stats_plain =
      Core.Solver.solve_feasible ~net ~mcts:{ Mcts.default_config with k = 16 } g
    in
    let sol_hybrid, stats_hybrid =
      Core.Solver.solve_feasible ~net ~exact_reduce:true
        ~mcts:{ Mcts.default_config with k = 16 } g
    in
    (match sol_hybrid with
    | Some s -> Alcotest.(check bool) "hybrid solution valid" true (Solution.valid g s)
    | None -> ());
    if sol_plain <> None && sol_hybrid <> None then begin
      incr solved_both;
      Alcotest.(check bool) "hybrid never searches more" true
        (stats_hybrid.Core.Solver.nodes <= stats_plain.Core.Solver.nodes)
    end
  done;
  Alcotest.(check bool) "hybrid solved some instances" true (!solved_both >= 2)

let test_solver_exact_reduce_minimize () =
  let net = tiny_net ~m:2 () in
  let result, _ =
    Core.Solver.minimize ~net ~exact_reduce:true
      ~mcts:{ Mcts.default_config with k = 100 }
      (Generate.fig2 ())
  in
  match result with
  | Some (_, c) -> Alcotest.check cost "fig2 optimum through hybrid" 11.0 c
  | None -> Alcotest.fail "hybrid minimize failed"

let test_training_parallel_selfplay () =
  (* correctness of the domain-parallel path (any speedup needs real
     cores; this container has one) *)
  let m = 3 in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations = 1;
      episodes_per_iteration = 4;
      domains = 2;
      mcts = { Mcts.default_config with k = 6 };
      net =
        { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
          gcn_layers = 1 };
      n_mean = 6.0;
      n_stddev = 1.0;
      n_min = 3;
      arena_games = 2;
      batches_per_iteration = 1;
      batch_size = 8;
    }
  in
  let replay_sizes = ref [] in
  let _net =
    Core.Train.run
      ~on_iteration:(fun p -> replay_sizes := p.Core.Train.replay_size :: !replay_sizes)
      ~rng:(rng 5) cfg
  in
  match !replay_sizes with
  | [ size ] -> Alcotest.(check bool) "all episodes contributed" true (size > 0)
  | _ -> Alcotest.fail "expected one iteration"

let test_training_loop_runs () =
  let m = 3 in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations = 2;
      episodes_per_iteration = 3;
      mcts = { Mcts.default_config with k = 8 };
      net =
        { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
          gcn_layers = 1 };
      n_mean = 6.0;
      n_stddev = 1.0;
      n_min = 3;
      batches_per_iteration = 2;
      batch_size = 8;
    }
  in
  let progresses = ref [] in
  let net =
    Core.Train.run ~on_iteration:(fun p -> progresses := p :: !progresses)
      ~rng:(rng 2) cfg
  in
  Alcotest.(check int) "two progress reports" 2 (List.length !progresses);
  List.iter
    (fun p ->
      Alcotest.(check bool) "replay grew" true (p.Core.Train.replay_size > 0))
    !progresses;
  (* the trained net must still drive the solver *)
  let g = planted_ate ~seed:1 ~n:10 ~m in
  let sol, _ =
    Core.Solver.solve_feasible ~net ~mcts:{ Mcts.default_config with k = 8 } g
  in
  Alcotest.(check bool) "solver works with trained net" true (sol <> None)

let test_training_checkpoint_resume () =
  let m = 3 in
  let dir = Filename.temp_file "ckpt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let prefix = Filename.concat dir "train" in
  let cfg iterations =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = 3;
      mcts = { Mcts.default_config with k = 6 };
      net =
        { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
          gcn_layers = 1 };
      n_mean = 6.0;
      n_stddev = 1.0;
      n_min = 3;
      arena_games = 2;
      batches_per_iteration = 1;
      batch_size = 8;
      checkpoint = Some prefix;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let _ = Core.Train.run ~rng:(rng 3) (cfg 1) in
      Alcotest.(check bool) "checkpoint files written" true
        (Sys.file_exists (prefix ^ ".best.ckpt")
        && Sys.file_exists (prefix ^ ".current.ckpt")
        && Sys.file_exists (prefix ^ ".replay.txt"));
      (* resume: the replay buffer must come back non-empty *)
      let sizes = ref [] in
      let _ =
        Core.Train.run
          ~on_iteration:(fun p -> sizes := p.Core.Train.replay_size :: !sizes)
          ~rng:(rng 4) (cfg 1)
      in
      match !sizes with
      | [ size ] ->
          let loaded = Core.Replay.load (prefix ^ ".replay.txt") in
          Alcotest.(check bool) "resumed buffer carries prior data" true
            (size > Core.Replay.length loaded / 2 && size > 0)
      | _ -> Alcotest.fail "expected one iteration")

let test_training_resume_bit_identical () =
  (* An interrupted-and-resumed run must continue exactly where it left
     off: nets, replay buffer AND Adam moments all round-trip through the
     checkpoint at %.17g, so running 1 iteration + resume for 1 more must
     produce bit-for-bit the same weights as 2 uninterrupted iterations.
     Arena games draw from the rng stream after the loop ends (the final
     gate), which would desynchronize the split run from the straight
     run, so they are disabled. *)
  let m = 3 in
  let dir = Filename.temp_file "ckpt-bit" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let prefix = Filename.concat dir "train" in
  let clean () =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  in
  let cfg ~iterations ~checkpoint =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = 2;
      mcts = { Mcts.default_config with k = 4 };
      net =
        { (Nn.Pvnet.default_config ~m) with trunk_width = 8; trunk_blocks = 1;
          gcn_layers = 1 };
      n_mean = 5.0;
      n_stddev = 1.0;
      n_min = 3;
      arena_games = 0;
      batches_per_iteration = 2;
      batch_size = 8;
      checkpoint;
    }
  in
  let identical a b =
    List.for_all2
      (fun (x : Nn.Var.t) (y : Nn.Var.t) ->
        tensor_bits_equal x.Nn.Var.value y.Nn.Var.value)
      (Nn.Pvnet.params a) (Nn.Pvnet.params b)
  in
  Fun.protect
    ~finally:(fun () ->
      clean ();
      Sys.rmdir dir)
    (fun () ->
      (* straight run: two iterations on one rng stream *)
      let straight =
        Core.Train.run ~rng:(rng 31) (cfg ~iterations:2 ~checkpoint:None)
      in
      (* split run: one iteration, checkpoint, resume for one more —
         threading the same rng object across the boundary *)
      let r = rng 31 in
      let _ =
        Core.Train.run ~rng:r (cfg ~iterations:1 ~checkpoint:(Some prefix))
      in
      Alcotest.(check bool) "optimizer checkpoint written" true
        (Sys.file_exists (prefix ^ ".opt.ckpt"));
      let resumed =
        Core.Train.run ~rng:r (cfg ~iterations:1 ~checkpoint:(Some prefix))
      in
      Alcotest.(check bool) "resumed = straight, bit for bit" true
        (identical straight resumed);
      (* negative control: drop the optimizer moments before resuming and
         the continuation must diverge — proof the comparison has teeth
         and the moments actually matter *)
      clean ();
      let r2 = rng 31 in
      let _ =
        Core.Train.run ~rng:r2 (cfg ~iterations:1 ~checkpoint:(Some prefix))
      in
      Sys.remove (prefix ^ ".opt.ckpt");
      let degraded =
        Core.Train.run ~rng:r2 (cfg ~iterations:1 ~checkpoint:(Some prefix))
      in
      Alcotest.(check bool) "dropping moments changes the continuation" false
        (identical straight degraded))

let () =
  Alcotest.run "core"
    [
      ( "state",
        [
          Alcotest.test_case "initial" `Quick test_state_initial;
          Alcotest.test_case "fig3 transition" `Quick test_state_fig3_transition;
          Alcotest.test_case "full play equals Equation 1" `Quick
            test_state_full_play_cost_equivalence;
          Alcotest.test_case "persistence" `Quick test_state_persistence;
          Alcotest.test_case "illegal colors" `Quick test_state_illegal;
          Alcotest.test_case "dead end detection" `Quick test_state_dead_end;
          Alcotest.test_case "custom order" `Quick test_state_custom_order;
          prop_state_cost_equivalence;
        ] );
      ("order", [ Alcotest.test_case "kinds" `Quick test_order_kinds ]);
      ( "game",
        [
          Alcotest.test_case "feasibility rewards" `Quick test_rewards_feasibility;
          Alcotest.test_case "minimize rewards" `Quick test_rewards_minimize;
        ] );
      ( "episode",
        [
          Alcotest.test_case "completes fig2" `Quick test_episode_completes_fig2;
          Alcotest.test_case "enough search finds optimum" `Quick
            test_episode_with_enough_search_is_optimal;
        ] );
      ( "backtrack",
        [
          Alcotest.test_case "solves planted instances" `Quick
            test_backtrack_solves_planted;
          Alcotest.test_case "disabled vs enabled on dead ends" `Quick
            test_backtrack_disabled_fails_on_dead_end;
          Alcotest.test_case "infeasible terminates" `Quick
            test_backtrack_infeasible_terminates;
          Alcotest.test_case "budget" `Quick test_backtrack_budget;
          Alcotest.test_case "dead on arrival" `Quick
            test_backtrack_dead_on_arrival;
        ] );
      ( "rollout",
        [
          Alcotest.test_case "greedy completion" `Quick test_rollout_greedy;
          Alcotest.test_case "dead end" `Quick test_rollout_dead_end;
        ] );
      ( "replay",
        [
          Alcotest.test_case "fifo eviction" `Quick test_replay_fifo_eviction;
          Alcotest.test_case "save/load round trip" `Quick test_replay_save_load;
          Alcotest.test_case "full (wrapped) buffer round trip" `Quick
            test_replay_full_buffer_roundtrip;
          Alcotest.test_case "empty & validation" `Quick test_replay_empty;
        ] );
      ( "solver",
        [
          Alcotest.test_case "feasible on planted" `Quick
            test_solver_feasible_planted;
          Alcotest.test_case "minimize fig2" `Quick test_solver_minimize_fig2;
          Alcotest.test_case "hybrid exact-reduce feasible" `Quick
            test_solver_exact_reduce_hybrid;
          Alcotest.test_case "hybrid exact-reduce minimize" `Quick
            test_solver_exact_reduce_minimize;
          Alcotest.test_case "training loop" `Slow test_training_loop_runs;
          Alcotest.test_case "parallel self-play" `Slow
            test_training_parallel_selfplay;
          Alcotest.test_case "checkpoint resume" `Slow
            test_training_checkpoint_resume;
          Alcotest.test_case "resume is bit-identical" `Slow
            test_training_resume_bit_identical;
        ] );
    ]
