(* Differential tests for the exact branch-and-bound solver
   (Solvers.Exact): a 500-graph seeded sweep where the exact optimum
   must match the independent brute-force enumeration bit-for-bit in
   verdict and within float tolerance in cost; family sweeps
   (spill-only, 0/inf ATE-style, dense small-m, asymmetric matrices,
   negative coalescing credits) where no other solver may ever beat the
   proven optimum; property tests for lower-bound admissibility, budget
   determinism, and node-budget respect; the Certify exact oracle; and
   replay of the minimized fixture corpus under test/fixtures/exact/. *)

open Pbqp
open Testutil

let tol c = 1e-6 *. Float.max 1.0 (Float.abs (Cost.to_float c))

let le_tol a b =
  (* a <= b within float tolerance; inf handled by Cost.compare *)
  Cost.compare a b <= 0
  || (Cost.is_finite a && Cost.is_finite b
      && Cost.to_float a <= Cost.to_float b +. tol b)

let eq_tol a b = le_tol a b && le_tol b a

(* ------------------------------------------------------------------ *)
(* Generators: the four fuzz families of the issue, plus a
   negative-credit family mirroring the register allocator's coalescing
   matrices (negative entries break naive prefix pruning, so they get
   their own oracle below). *)

(* brute force is m^n worst case: cap n by m so every family stays
   exhaustively checkable *)
let cap_n ~m n = min n (match m with 2 -> 14 | 3 -> 11 | _ -> 9)

let spill_spec i =
  let m = 2 + (i mod 3) in
  { seed = 7_000 + i; n = cap_n ~m (6 + (i mod 9)); m;
    p_edge = 0.45; p_inf = 0.0; zero_inf = false }

let ate_spec i =
  let m = 2 + (i mod 3) in
  { seed = 11_000 + i; n = cap_n ~m (6 + (i mod 9)); m;
    p_edge = 0.5; p_inf = 0.35; zero_inf = true }

let dense_spec i =
  { seed = 13_000 + i; n = cap_n ~m:2 (8 + (i mod 7)); m = 2;
    p_edge = 0.9; p_inf = 0.1; zero_inf = false }

(* Deliberately asymmetric edge matrices, M(i,j) <> M(j,i): the exact
   solver folds rows for the owning endpoint and columns for the other,
   so a transposition bug is invisible on symmetric instances. *)
let asymmetric_graph ~seed ~n ~m =
  let rng = rng seed in
  let g = Graph.create ~m ~n in
  for u = 0 to n - 1 do
    Graph.set_cost g u
      (Vec.init m (fun _ -> float_of_int (Random.State.int rng 10)))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.4 then
        Graph.add_edge g u v
          (Mat.init ~rows:m ~cols:m (fun i j ->
               if i = j && Random.State.int rng 4 = 0 then Cost.inf
               else
                 float_of_int (Random.State.int rng 6)
                 +. (3.0 *. float_of_int i)
                 +. float_of_int j))
    done
  done;
  g

let asymmetric_of i =
  let m = 2 + (i mod 3) in
  asymmetric_graph ~seed:(17_000 + i) ~n:(cap_n ~m (6 + (i mod 8))) ~m

(* Coalescing-credit style: non-negative vertex costs, matrices with
   negative same-color entries (move-coalescing discounts). *)
let negative_graph ~seed ~n ~m =
  let rng = rng seed in
  let g = Graph.create ~m ~n in
  for u = 0 to n - 1 do
    Graph.set_cost g u
      (Vec.init m (fun _ -> float_of_int (Random.State.int rng 8)))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.5 then
        Graph.add_edge g u v
          (Mat.init ~rows:m ~cols:m (fun i j ->
               if i = j then -.float_of_int (1 + Random.State.int rng 4)
               else float_of_int (Random.State.int rng 5)))
    done
  done;
  g

(* Exhaustive oracle with no pruning at all — safe for negative costs,
   unlike Solvers.Brute (which prunes on the non-negative partial-cost
   assumption).  Only for tiny graphs: m^n full evaluations. *)
let naive_optimum g =
  let alive = Graph.vertices g in
  let m = Graph.m g in
  let sol = Solution.make (Graph.capacity g) in
  let best = ref Cost.inf in
  let rec go = function
    | [] ->
        let c = Solution.cost g sol in
        if Cost.compare c !best < 0 then best := c
    | u :: rest ->
        for c = 0 to m - 1 do
          Solution.set sol u c;
          go rest
        done;
        Solution.set sol u Solution.unassigned
  in
  go alive;
  !best

let exact_cost_of_outcome = function
  | Solvers.Exact.Optimal (_, c) -> Some c
  | Solvers.Exact.Infeasible -> Some Cost.inf
  | Solvers.Exact.Timeout _ -> None

(* ------------------------------------------------------------------ *)
(* Acceptance sweep: 500 seeded graphs, exact = brute in 500/500. *)

let test_differential_500 () =
  let agreed = ref 0 in
  let total = 500 in
  for i = 0 to total - 1 do
    let g =
      match i mod 4 with
      | 0 -> build_graph (spill_spec (i / 4))
      | 1 -> build_graph (ate_spec (i / 4))
      | 2 -> build_graph (dense_spec (i / 4))
      | _ -> asymmetric_of (i / 4)
    in
    let outcome, stats = Solvers.Exact.solve g in
    let brute, _ = Solvers.Brute.solve g in
    (match (exact_cost_of_outcome outcome, brute) with
    | Some ec, Some (bsol, bc) ->
        if not (eq_tol ec bc) then
          Alcotest.failf "graph %d: exact %s <> brute %s" i
            (Cost.to_string ec) (Cost.to_string bc);
        (* brute's witness really has its claimed cost on this graph *)
        Alcotest.check cost
          (Printf.sprintf "graph %d brute witness" i)
          bc (Solution.cost g bsol);
        incr agreed
    | Some ec, None ->
        if Cost.is_finite ec then
          Alcotest.failf "graph %d: exact %s but brute says infeasible" i
            (Cost.to_string ec)
        else incr agreed
    | None, _ ->
        Alcotest.failf "graph %d: exact timed out (%d nodes)" i stats.nodes);
    (* witness solutions must certify on the original graph *)
    match outcome with
    | Solvers.Exact.Optimal (sol, c) ->
        if not (Check.Certify.valid g sol) then
          Alcotest.failf "graph %d: exact witness fails certification" i;
        Alcotest.check cost
          (Printf.sprintf "graph %d exact witness" i)
          c (Solution.cost g sol)
    | _ -> ()
  done;
  Alcotest.(check int) "500/500 agree" total !agreed

(* Negative coalescing credits: brute's pruning is unsound here, so the
   oracle is the prune-free naive enumeration. *)
let test_differential_negative () =
  for i = 0 to 79 do
    let m = 2 + (i mod 2) in
    let g = negative_graph ~seed:(19_000 + i) ~n:(4 + (i mod 4)) ~m in
    let outcome, _ = Solvers.Exact.solve g in
    match exact_cost_of_outcome outcome with
    | None -> Alcotest.failf "negative graph %d: exact timed out" i
    | Some ec ->
        let nc = naive_optimum g in
        if not (eq_tol ec nc) then
          Alcotest.failf "negative graph %d: exact %s <> naive %s" i
            (Cost.to_string ec) (Cost.to_string nc)
  done

(* ------------------------------------------------------------------ *)
(* No solver may ever report a cost below the proven optimum. *)

let classic_costs g =
  [
    ("scholz",
     let _, c, _ = Solvers.Scholz.solve_with_cost g in
     if Cost.is_finite c then Some c else None);
    ("mrv",
     Option.map (Solution.cost g) (fst (Solvers.Mrv.solve ~max_states:50_000 g)));
    ("liberty",
     Option.map (Solution.cost g)
       (fst (Solvers.Liberty.solve ~max_states:50_000 g)));
    ("greedy", Option.map snd (fst (Solvers.Greedy.solve g)));
  ]

let check_floor ~name i g =
  match exact_cost_of_outcome (fst (Solvers.Exact.solve g)) with
  | None -> Alcotest.failf "%s %d: exact timed out" name i
  | Some opt ->
      List.iter
        (fun (solver, c) ->
          match c with
          | None -> ()
          | Some c ->
              if not (le_tol opt c) then
                Alcotest.failf "%s %d: %s reports %s below proven optimum %s"
                  name i solver (Cost.to_string c) (Cost.to_string opt))
        (classic_costs g)

let test_floor_families () =
  for i = 0 to 39 do
    check_floor ~name:"spill" i (build_graph (spill_spec (1000 + i)));
    check_floor ~name:"ate" i (build_graph (ate_spec (1000 + i)));
    check_floor ~name:"dense" i (build_graph (dense_spec (1000 + i)));
    check_floor ~name:"asym" i (asymmetric_of (1000 + i))
  done

(* ATE-style m=13 instances (the paper's 13-color transfer-equation
   graphs): too many colors for brute, so the floor check alone. *)
let test_floor_ate13 () =
  for i = 0 to 11 do
    let g =
      build_graph
        { seed = 23_000 + i; n = 10 + (i mod 5); m = 13; p_edge = 0.4;
          p_inf = 0.3; zero_inf = true }
    in
    check_floor ~name:"ate13" i g
  done

(* The Deep-RL solver (untrained net, off-policy for the exact search)
   may never beat the proven optimum either. *)
let test_floor_rl () =
  let net =
    Nn.Pvnet.create ~rng:(rng 5)
      { (Nn.Pvnet.default_config ~m:3) with trunk_width = 8; trunk_blocks = 1;
        gcn_layers = 1 }
  in
  for i = 0 to 7 do
    let g =
      build_graph
        { seed = 29_000 + i; n = 6 + i; m = 3; p_edge = 0.5; p_inf = 0.1;
          zero_inf = false }
    in
    match exact_cost_of_outcome (fst (Solvers.Exact.solve g)) with
    | None -> Alcotest.failf "rl %d: exact timed out" i
    | Some opt -> (
        match
          Core.Solver.minimize ~net
            ~mcts:{ Mcts.default_config with k = 8 } g
        with
        | None, _ -> ()
        | Some (sol, c), _ ->
            Alcotest.check cost
              (Printf.sprintf "rl %d reported cost" i)
              c (Solution.cost g sol);
            if not (le_tol opt c) then
              Alcotest.failf "rl %d: deep-RL %s below proven optimum %s" i
                (Cost.to_string c) (Cost.to_string opt))
  done

(* ------------------------------------------------------------------ *)
(* Properties *)

(* The root bound never exceeds the optimum (admissibility). *)
let prop_lower_bound_admissible =
  qtest ~count:200 "lower_bound <= optimum"
    (arb_graph_spec ~nmax:8 ~mmax:3 ())
    (fun spec ->
      let g = build_graph spec in
      let lb = Solvers.Exact.lower_bound g in
      le_tol lb (Solvers.Brute.optimal_cost g))

(* ... including on negative-credit graphs (vs the prune-free oracle). *)
let test_lower_bound_negative () =
  for i = 0 to 39 do
    let g = negative_graph ~seed:(31_000 + i) ~n:(4 + (i mod 3)) ~m:2 in
    let lb = Solvers.Exact.lower_bound g in
    if not (le_tol lb (naive_optimum g)) then
      Alcotest.failf "negative graph %d: bound %s above optimum" i
        (Cost.to_string lb)
  done

let describe_run (outcome, (stats : Solvers.Exact.stats)) =
  let oc =
    match outcome with
    | Solvers.Exact.Optimal (s, c) ->
        Printf.sprintf "optimal %s %s" (Cost.to_string c)
          (Format.asprintf "%a" Solution.pp s)
    | Solvers.Exact.Infeasible -> "infeasible"
    | Solvers.Exact.Timeout None -> "timeout none"
    | Solvers.Exact.Timeout (Some (s, c)) ->
        Printf.sprintf "timeout %s %s" (Cost.to_string c)
          (Format.asprintf "%a" Solution.pp s)
  in
  Printf.sprintf "%s nodes=%d pruned=%d reduced=%d" oc stats.nodes
    stats.pruned stats.reduced

(* Equal inputs and budgets give bit-equal outcomes — including under a
   budget small enough to force timeouts. *)
let prop_budget_deterministic =
  qtest ~count:100 "budgeted solve is deterministic"
    (arb_graph_spec ~nmax:12 ~mmax:3 ())
    (fun spec ->
      let budget = 1 + (spec.seed mod 40) in
      let run () =
        describe_run (Solvers.Exact.solve ~max_nodes:budget (build_graph spec))
      in
      String.equal (run ()) (run ()))

(* The node budget is respected, and a Timeout incumbent (when present)
   is a genuine solution of the original graph. *)
let prop_budget_respected =
  qtest ~count:100 "node budget respected; incumbent valid"
    (arb_graph_spec ~nmax:12 ~mmax:4 ())
    (fun spec ->
      let budget = 1 + (spec.seed mod 60) in
      let g = build_graph spec in
      let outcome, stats = Solvers.Exact.solve ~max_nodes:budget g in
      stats.nodes <= budget
      &&
      match outcome with
      | Solvers.Exact.Timeout (Some (sol, c)) ->
          Check.Certify.valid g sol && eq_tol c (Solution.cost g sol)
      | _ -> true)

(* Reduction reuse must not change the verdict: R0/R1/R2 on, off. *)
let prop_reduce_equivalent =
  qtest ~count:150 "reduce:true = reduce:false"
    (arb_graph_spec ~nmax:9 ~mmax:3 ~p_inf:0.3 ())
    (fun spec ->
      let cost_of reduce =
        exact_cost_of_outcome
          (fst (Solvers.Exact.solve ~reduce (build_graph spec)))
      in
      match (cost_of true, cost_of false) with
      | Some a, Some b -> eq_tol a b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The Certify oracle built on the exact solver. *)

let test_certify_optimal_agrees () =
  for i = 0 to 59 do
    let g =
      build_graph
        { seed = 37_000 + i; n = 3 + (i mod 6); m = 2 + (i mod 2);
          p_edge = 0.5; p_inf = 0.2; zero_inf = i mod 3 = 0 }
    in
    let reported = Solvers.Brute.optimal_cost g in
    match Check.Certify.certify_optimal g ~reported with
    | Check.Certify.Proven opt, findings ->
        if not (eq_tol opt reported) then
          Alcotest.failf "certify %d: proven %s <> brute %s" i
            (Cost.to_string opt) (Cost.to_string reported);
        if Check.Diag.has_errors findings then
          Alcotest.failf "certify %d: errors on an optimal report" i
    | Check.Certify.Oracle_skipped r, _ ->
        Alcotest.failf "certify %d: budget hit on a tiny instance (%s)" i r
  done

let test_certify_catches_below_optimum () =
  let g =
    build_graph
      { seed = 41; n = 6; m = 3; p_edge = 0.6; p_inf = 0.0; zero_inf = false }
  in
  let opt = Solvers.Brute.optimal_cost g in
  let below = Cost.to_float opt -. 1.0 in
  let _, findings = Check.Certify.certify_optimal g ~reported:below in
  if not (Check.Diag.has_errors findings) then
    Alcotest.fail "a report below the proven optimum must be an error"

(* Satellite 2: an exhausted brute budget is an explicit Skipped with a
   reason, surfaced as a warning — never a silent pass. *)
let test_brute_skip_is_explicit () =
  let g =
    build_graph
      { seed = 43; n = 10; m = 3; p_edge = 0.6; p_inf = 0.0; zero_inf = false }
  in
  (match Check.Certify.brute_optimum ~max_states:1 g with
  | Check.Certify.Skipped reason ->
      if String.length reason = 0 then Alcotest.fail "empty skip reason"
  | _ -> Alcotest.fail "max_states:1 must yield Skipped");
  let findings =
    Check.Certify.against_brute ~max_states:1 g ~reported:(Cost.of_float 0.0)
  in
  if Check.Diag.has_errors findings then
    Alcotest.fail "a skipped brute check must not error";
  if findings = [] then
    Alcotest.fail "a skipped brute check must surface a warning"

(* ------------------------------------------------------------------ *)
(* Exact supervision labels (Core.Labels). *)

let test_labels_roundtrip () =
  let graphs =
    List.init 6 (fun i ->
        build_graph
          { seed = 47_000 + i; n = 4 + i; m = 2 + (i mod 2); p_edge = 0.5;
            p_inf = 0.15; zero_inf = false })
  in
  let labels = List.filter_map Core.Labels.of_exact graphs in
  if labels = [] then Alcotest.fail "no labels from solvable graphs";
  List.iter
    (fun (l : Core.Labels.t) ->
      Alcotest.check cost "label cost is the witness cost" l.cost
        (Solution.cost l.graph l.assignment);
      let samples = Core.Labels.to_samples l in
      Alcotest.(check int)
        "one sample per live vertex"
        (Graph.n_alive l.graph) (List.length samples);
      List.iter
        (fun (s : Nn.Pvnet.sample) ->
          let total = Array.fold_left ( +. ) 0.0 s.policy in
          if Float.abs (total -. 1.0) > 1e-9 then
            Alcotest.fail "label policy is not one-hot")
        samples)
    labels;
  let path = Filename.temp_file "labels" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Core.Labels.save path labels;
      let back = Core.Labels.load path in
      Alcotest.(check int) "load count" (List.length labels) (List.length back);
      List.iter2
        (fun (a : Core.Labels.t) (b : Core.Labels.t) ->
          Alcotest.check cost "cost" a.cost b.cost;
          Alcotest.check solution "assignment" a.assignment b.assignment;
          Alcotest.check graph "graph" a.graph b.graph)
        labels back)

(* ------------------------------------------------------------------ *)
(* Fixture corpus: minimized graphs that once exposed (or nearly
   exposed) solver disagreements; replayed exact-vs-brute on every run. *)

(* cwd is test/ under `dune runtest` but the repo root under
   `dune exec test/test_exact.exe` — accept both *)
let fixture_dir () =
  if Sys.file_exists "fixtures/exact" then "fixtures/exact"
  else Filename.concat "test" "fixtures/exact"

let test_fixtures () =
  let dir = fixture_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pbqp")
    |> List.sort String.compare
  in
  Alcotest.(check bool)
    "at least 20 fixtures" true
    (List.length files >= 20);
  List.iter
    (fun file ->
      let g = Io.of_file (Filename.concat dir file) in
      let outcome, _ = Solvers.Exact.solve g in
      match exact_cost_of_outcome outcome with
      | None -> Alcotest.failf "%s: exact timed out" file
      | Some ec ->
          (* negative-credit fixtures get the prune-free oracle *)
          let has_negative =
            Graph.fold_edges
              (fun _ _ mat acc -> acc || Cost.compare (Mat.min_value mat) 0.0 < 0)
              g false
          in
          let oracle =
            if has_negative then naive_optimum g
            else Solvers.Brute.optimal_cost g
          in
          if not (eq_tol ec oracle) then
            Alcotest.failf "%s: exact %s <> oracle %s" file (Cost.to_string ec)
              (Cost.to_string oracle);
          check_floor ~name:file 0 g)
    files

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "exact"
    [
      ( "differential",
        [
          Alcotest.test_case "500 seeded graphs: exact = brute" `Quick
            test_differential_500;
          Alcotest.test_case "negative credits: exact = naive" `Quick
            test_differential_negative;
        ] );
      ( "floor",
        [
          Alcotest.test_case "no classic solver beats the optimum" `Quick
            test_floor_families;
          Alcotest.test_case "ATE m=13 family" `Quick test_floor_ate13;
          Alcotest.test_case "deep-RL never beats the optimum" `Quick
            test_floor_rl;
        ] );
      ( "properties",
        [
          prop_lower_bound_admissible;
          Alcotest.test_case "bound admissible on negative credits" `Quick
            test_lower_bound_negative;
          prop_budget_deterministic;
          prop_budget_respected;
          prop_reduce_equivalent;
        ] );
      ( "certify",
        [
          Alcotest.test_case "certify_optimal agrees with brute" `Quick
            test_certify_optimal_agrees;
          Alcotest.test_case "below-optimum report is an error" `Quick
            test_certify_catches_below_optimum;
          Alcotest.test_case "brute budget skip is explicit" `Quick
            test_brute_skip_is_explicit;
        ] );
      ( "labels",
        [ Alcotest.test_case "roundtrip and samples" `Quick test_labels_roundtrip ] );
      ( "fixtures",
        [ Alcotest.test_case "corpus replay" `Quick test_fixtures ] );
    ]
