(* CLI: write seeded random PBQP instances (the training distribution of
   Core.Train.random_graph — Gaussian vertex counts over Erdős–Rényi
   graphs) as Pbqp.Io text files, one per instance.  The pretraining
   workflow pipes these through `pbqp_solve --exact --labels` to build a
   supervised label file for `train --pretrain-labels`. *)

open Cmdliner

let run count out m n_mean n_stddev n_min p_edge p_inf zero_inf seed =
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let rng = Random.State.make [| seed |] in
  let cfg =
    { Pbqp.Generate.default with m; p_edge; p_inf; zero_inf; cost_max = 10.0 }
  in
  for i = 0 to count - 1 do
    let n =
      Pbqp.Generate.sample_n ~rng ~mean:n_mean ~stddev:n_stddev ~min:n_min
    in
    let g = Pbqp.Generate.erdos_renyi ~rng { cfg with n } in
    let path = Filename.concat out (Printf.sprintf "gen_%03d.pbqp" i) in
    Pbqp.Io.to_file path g;
    Printf.printf "%s  n=%d m=%d\n" path n m
  done

let () =
  let count =
    Arg.(value & opt int 24 & info [ "count"; "n" ] ~doc:"instances to write")
  in
  let out =
    Arg.(value & opt string "instances"
         & info [ "out"; "o" ] ~docv:"DIR" ~doc:"output directory")
  in
  let m = Arg.(value & opt int 13 & info [ "m" ] ~doc:"number of colors") in
  let n_mean =
    Arg.(value & opt float 14.0 & info [ "n-mean" ] ~doc:"vertex-count mean")
  in
  let n_stddev =
    Arg.(value & opt float 3.0 & info [ "n-stddev" ] ~doc:"vertex-count stddev")
  in
  let n_min =
    Arg.(value & opt int 4 & info [ "n-min" ] ~doc:"vertex-count floor")
  in
  let p_edge =
    Arg.(value & opt float 0.25 & info [ "p-edge" ] ~doc:"edge probability")
  in
  let p_inf =
    Arg.(value & opt float 0.01 & info [ "p-inf" ] ~doc:"infinity ratio")
  in
  let zero_inf =
    Arg.(value & flag & info [ "zero-inf" ] ~doc:"ATE-style 0/inf costs")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"rng seed") in
  let cmd =
    Cmd.v
      (Cmd.info "pbqp_gen"
         ~doc:"Write seeded random PBQP instances (training distribution)")
      Term.(
        const run $ count $ out $ m $ n_mean $ n_stddev $ n_min $ p_edge
        $ p_inf $ zero_inf $ seed)
  in
  exit (Cmd.eval cmd)
