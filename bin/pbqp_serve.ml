(* CLI: the allocation service — run the daemon, or act as a client
   (solve / compile / allocate / stats / ping / reload) against a
   running one.  The client modes exist for scripting and the smoke
   test; heavier clients should speak Serve.Wire directly. *)

open Cmdliner

(* --- daemon mode --- *)

let daemon socket tcp_port workers queue_cap max_batch wait_us cache
    no_coalesce net_path m seed =
  let net =
    match net_path with
    | Some path -> Nn.Pvnet.load path
    | None ->
        (* a fresh net still serves deterministically (fixed seed): the
           smoke test and ad-hoc runs need no checkpoint on disk *)
        let rng = Random.State.make [| seed |] in
        Nn.Pvnet.create ~rng (Nn.Pvnet.default_config ~m)
  in
  let config =
    {
      Serve.Daemon.socket_path = socket;
      tcp_port;
      workers;
      queue_cap;
      max_batch;
      wait_us;
      cache_capacity = cache;
      coalesce = not no_coalesce;
    }
  in
  let t = Serve.Daemon.create ~config net in
  Serve.Daemon.install_signal_handlers t;
  Printf.printf "pbqp_serve: listening on %s (%d workers%s)\n%!" socket workers
    (match tcp_port with
    | Some p -> Printf.sprintf ", tcp 127.0.0.1:%d" p
    | None -> "");
  Serve.Daemon.run t;
  Printf.printf "pbqp_serve: drained, bye\n%!";
  `Ok ()

(* --- client modes --- *)

let with_client socket f =
  match Serve.Client.connect_unix socket with
  | exception Unix.Unix_error (e, _, _) ->
      `Error
        ( false,
          Printf.sprintf "cannot connect to %s: %s" socket
            (Unix.error_message e) )
  | c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let params solver k backtrack model deadline_ms =
  { Serve.Wire.solver; k; backtrack; model; deadline_ms }

let print_reply = function
  | Serve.Wire.Solution { cost; nodes; backtracks; assignment } ->
      Printf.printf "cost %s\n%s\n" cost assignment;
      if nodes > 0 then
        Printf.printf "; nodes=%d backtracks=%d\n" nodes backtracks;
      `Ok ()
  | Serve.Wire.No_solution { nodes; backtracks } ->
      Printf.printf "no solution (nodes=%d backtracks=%d)\n" nodes backtracks;
      `Ok ()
  | Serve.Wire.Compiled { cycles; spills; cost; output } ->
      if output <> "" then print_endline output;
      Printf.printf "; cycles=%d spills=%d pbqp-cost=%s\n" cycles spills cost;
      `Ok ()
  | Serve.Wire.Program text ->
      print_string text;
      `Ok ()
  | Serve.Wire.Stats_reply kvs ->
      List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) kvs;
      `Ok ()
  | Serve.Wire.Pong ->
      print_endline "pong";
      `Ok ()
  | Serve.Wire.Reloaded { version } ->
      Printf.printf "reloaded version=%d\n" version;
      `Ok ()
  | Serve.Wire.Error_reply msg -> `Error (false, "daemon error: " ^ msg)
  | Serve.Wire.Timeout -> `Error (false, "request deadline expired")
  | Serve.Wire.Overloaded -> `Error (false, "daemon overloaded")

let roundtrip socket req =
  with_client socket (fun c ->
      match Serve.Client.request c req with
      | Ok reply -> print_reply reply
      | Error e -> `Error (false, "protocol error: " ^ e))

let body_of_file path = In_channel.with_open_text path In_channel.input_all

let solve socket file solver k backtrack deadline_ms =
  roundtrip socket
    (Serve.Wire.Pbqp
       (params solver k backtrack "modelA" deadline_ms, body_of_file file))

let minic socket file alloc k deadline_ms =
  roundtrip socket
    (Serve.Wire.Minic (params alloc k false "modelA" deadline_ms,
                       body_of_file file))

let ate socket file solver k model deadline_ms =
  roundtrip socket
    (Serve.Wire.Ate (params solver k false model deadline_ms,
                     body_of_file file))

let stats socket = roundtrip socket Serve.Wire.Stats
let ping socket = roundtrip socket Serve.Wire.Ping
let reload socket path = roundtrip socket (Serve.Wire.Reload path)

(* --- argument plumbing --- *)

let socket_arg =
  Arg.(value & opt string Serve.Daemon.default_config.socket_path
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let k_arg =
  Arg.(value & opt int 50 & info [ "k" ] ~doc:"MCTS simulations (rl solvers)")

let deadline_arg =
  Arg.(value & opt int (-1)
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"per-request deadline relative to arrival (negative: none; \
                 0 expires immediately)")

let daemon_cmd =
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT" ~doc:"also listen on loopback TCP")
  in
  let workers =
    Arg.(value & opt int Serve.Daemon.default_config.workers
         & info [ "workers" ] ~docv:"N" ~doc:"solver worker domains")
  in
  let queue_cap =
    Arg.(value & opt int Serve.Daemon.default_config.queue_cap
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"admission bound; beyond it requests get `overloaded'")
  in
  let max_batch =
    Arg.(value & opt int Serve.Daemon.default_config.max_batch
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"coalesced inference batch row budget")
  in
  let wait_us =
    Arg.(value & opt int Serve.Daemon.default_config.wait_us
         & info [ "wait-us" ] ~docv:"US"
             ~doc:"partial inference batch age bound")
  in
  let cache =
    Arg.(value & opt int Serve.Daemon.default_config.cache_capacity
         & info [ "cache" ] ~docv:"N"
             ~doc:"shared evaluation cache capacity (0 disables)")
  in
  let no_coalesce =
    Arg.(value & flag
         & info [ "no-coalesce" ]
             ~doc:"ablation: per-request semantics — no cross-request \
                   batching, no shared cache (the bench baseline)")
  in
  let net =
    Arg.(value & opt (some file) None
         & info [ "net" ] ~docv:"CKPT" ~doc:"Pvnet checkpoint to serve")
  in
  let m =
    Arg.(value & opt int 13
         & info [ "m" ] ~doc:"colors for the fresh net when --net is absent")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"rng seed for the fresh net")
  in
  Cmd.v (Cmd.info "daemon" ~doc:"Run the allocation service")
    Term.(
      ret
        (const daemon $ socket_arg $ tcp $ workers $ queue_cap $ max_batch
       $ wait_us $ cache $ no_coalesce $ net $ m $ seed))

let file_pos =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let solve_cmd =
  let solver =
    Arg.(value & opt string "scholz"
         & info [ "solver"; "s" ] ~doc:"scholz or rl")
  in
  let backtrack =
    Arg.(value & flag & info [ "backtrack"; "b" ] ~doc:"rl backtracking")
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve a .pbqp instance via the daemon")
    Term.(
      ret
        (const solve $ socket_arg $ file_pos $ solver $ k_arg $ backtrack
       $ deadline_arg))

let minic_cmd =
  let alloc =
    Arg.(value & opt string "pbqp"
         & info [ "alloc"; "a" ]
             ~doc:"fast, basic, greedy, pbqp, or pbqp-rl")
  in
  Cmd.v (Cmd.info "minic" ~doc:"Compile and run a MiniC file via the daemon")
    Term.(ret (const minic $ socket_arg $ file_pos $ alloc $ k_arg
             $ deadline_arg))

let ate_cmd =
  let solver =
    Arg.(value & opt string "scholz"
         & info [ "solver"; "s" ] ~doc:"scholz or rl")
  in
  let model =
    Arg.(value & opt string "modelA" & info [ "model" ] ~doc:"ATE machine")
  in
  Cmd.v (Cmd.info "ate" ~doc:"Allocate an ATE program via the daemon")
    Term.(
      ret (const ate $ socket_arg $ file_pos $ solver $ k_arg $ model
         $ deadline_arg))

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Query daemon counters")
    Term.(ret (const stats $ socket_arg))

let ping_cmd =
  Cmd.v (Cmd.info "ping" ~doc:"Liveness check")
    Term.(ret (const ping $ socket_arg))

let reload_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CKPT")
  in
  Cmd.v (Cmd.info "reload" ~doc:"Hot-swap the served checkpoint")
    Term.(ret (const reload $ socket_arg $ path))

let () =
  let cmd =
    Cmd.group
      (Cmd.info "pbqp_serve"
         ~doc:"PBQP allocation as a service: daemon and client modes")
      [ daemon_cmd; solve_cmd; minic_cmd; ate_cmd; stats_cmd; ping_cmd;
        reload_cmd ]
  in
  exit (Cmd.eval cmd)
