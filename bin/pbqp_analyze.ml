(* CLI: run the repo's own static analysis (lib/analyze) over OCaml
   source trees.  Exit 0 when every finding is baselined, 1 otherwise —
   this is the CI gate wired into run_checks.sh and the @analyze alias.

     pbqp_analyze lib bin                 # human-readable report
     pbqp_analyze --json lib bin          # machine-readable
     pbqp_analyze --baseline ANALYZE_BASELINE lib bin
     pbqp_analyze --write-baseline ANALYZE_BASELINE lib bin  # accept current *)

open Cmdliner

let main roots json baseline write_baseline =
  let roots = if roots = [] then [ "lib"; "bin" ] else roots in
  let result = Analyze.run ~roots in
  if write_baseline then begin
    Analyze.Baseline.write baseline result.Analyze.findings;
    Printf.printf "wrote %d baseline entr%s to %s\n"
      (List.length result.Analyze.findings)
      (if List.length result.Analyze.findings = 1 then "y" else "ies")
      baseline;
    `Ok ()
  end
  else begin
    let entries = Analyze.Baseline.load baseline in
    let applied = Analyze.Baseline.apply entries result.Analyze.findings in
    if json then
      print_string
        (Analyze.Report.to_json ~baselined:applied.Analyze.Baseline.suppressed
           ~files:result.Analyze.files applied.Analyze.Baseline.fresh)
    else begin
      print_string (Analyze.Report.to_string applied.Analyze.Baseline.fresh);
      if applied.Analyze.Baseline.suppressed > 0 then
        Printf.printf "(%d baselined finding%s suppressed)\n"
          applied.Analyze.Baseline.suppressed
          (if applied.Analyze.Baseline.suppressed = 1 then "" else "s");
      List.iter
        (fun e ->
          Printf.printf "stale baseline entry (no longer fires): %s\n"
            (Analyze.Baseline.entry_key e))
        applied.Analyze.Baseline.stale
    end;
    if applied.Analyze.Baseline.fresh <> [] then exit 1;
    `Ok ()
  end

let () =
  let roots =
    Arg.(value & pos_all string []
         & info [] ~docv:"ROOTS"
             ~doc:"directories (or single .ml files) to analyze; default: \
                   lib bin")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"emit the findings as JSON (pbqp-analyze-v1)")
  in
  let baseline =
    Arg.(value & opt string "ANALYZE_BASELINE"
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"known-findings baseline; findings whose rule|file|symbol \
                   key appears in FILE do not fail the run")
  in
  let write_baseline =
    Arg.(value & flag
         & info [ "write-baseline" ]
             ~doc:"overwrite the baseline file with the current findings \
                   and exit 0")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pbqp_analyze"
         ~doc:"Concurrency, determinism and hot-path lints over the repo's \
               own OCaml sources")
      Term.(ret (const main $ roots $ json $ baseline $ write_baseline))
  in
  exit (Cmd.eval cmd)
