(* CLI: train a policy/value network, up to the paper's schedule (200
   iterations x 100 episodes, graphs of ~100 vertices, k_train 50-100 —
   expect a long run at that scale).

   Distributed mode: [--actors N] re-executes this binary N times with
   [--actor], wiring each child's stdin/stdout to the learner as a
   framed message channel (Dist).  The children parse the same command
   line (minus the learner-only flags), so learner and actors agree on
   the training config by construction. *)

open Cmdliner

(* The original argv without [--manifest]: the actor re-exec appends its
   own [--manifest] (cmdliner rejects repeated options).  Handles both
   the [--manifest PATH] and [--manifest=PATH] spellings. *)
let argv_without_manifest () =
  let rec go = function
    | [] -> []
    | "--manifest" :: _ :: rest -> go rest
    | a :: rest when String.length a > 11 && String.sub a 0 11 = "--manifest=" ->
        go rest
    | a :: rest -> a :: go rest
  in
  go (Array.to_list Sys.argv)

let spawn_actor ~manifest_path pids ~manifest ~actor =
  Dist.Manifest.save manifest manifest_path;
  let child_stdin_r, child_stdin_w = Unix.pipe ~cloexec:false () in
  let child_stdout_r, child_stdout_w = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec child_stdin_w;
  Unix.set_close_on_exec child_stdout_r;
  let argv =
    Array.of_list
      (argv_without_manifest ()
      @ [ "--actor"; "--actor-id"; string_of_int actor; "--manifest";
          manifest_path ])
  in
  let pid =
    Unix.create_process Sys.executable_name argv child_stdin_r child_stdout_w
      Unix.stderr
  in
  Unix.close child_stdin_r;
  Unix.close child_stdout_w;
  pids := pid :: !pids;
  (child_stdout_r, child_stdin_w)

let run m iterations episodes k_train n_mean p_edge p_inf zero_inf planted
    ate batch batch_leaves incremental eval_cache serve_batch serve_wait_us
    cache_stripes quantize_serve replay domains check checkpoint
    pretrain_labels actors actor actor_id manifest stale_decay dist_pipeline
    replay_shards seed out =
  let instance_generator =
    if ate then
      Some
        (fun ~rng ->
          let target = 16 + Random.State.int rng 30 in
          let p = Ate.Progen.generate ~rng ~target_vregs:target () in
          let info = Ate.Program.analyze_exn p in
          (Ate.Pbqp_build.build Ate.Machine.default info).Ate.Pbqp_build.graph)
    else None
  in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = episodes;
      graph =
        { Pbqp.Generate.default with m; p_edge; p_inf; zero_inf;
          cost_max = 30.0 };
      n_mean;
      n_stddev = n_mean /. 4.0;
      mcts = { Mcts.default_config with k = k_train };
      planted;
      batch_size = batch;
      batch_leaves;
      incremental;
      eval_cache;
      serve_batch;
      serve_wait_us;
      cache_stripes;
      quantize_serve;
      replay_capacity = replay;
      domains;
      check;
      checkpoint;
      instance_generator;
      pretrain_labels;
    }
  in
  if actor then
    (* actor mode: stdin/stdout are the learner's framed channel — no
       prints, no checkpoints, no rng of our own (everything derives
       from the manifest) *)
    let manifest =
      match manifest with
      | Some path -> Dist.Manifest.load path
      | None -> failwith "train: --actor requires --manifest"
    in
    Dist.Actor.run ~config:cfg ~manifest ~actor:actor_id ~in_fd:Unix.stdin
      ~out_fd:Unix.stdout
  else begin
    let make_source =
      if actors <= 0 then None
      else begin
        let manifest_path =
          match manifest with
          | Some path -> path
          | None -> Filename.temp_file "pbqp-manifest" ".txt"
        in
        let pids = ref [] in
        Some
          (Dist.Learner.source ~config:cfg ~actors
             ?shards:(if replay_shards > 0 then Some replay_shards else None)
             ~stale_decay ~pipeline:dist_pipeline
             ~on_shutdown:(fun () ->
               List.iter
                 (fun pid -> ignore (Unix.waitpid [] pid : int * Unix.process_status))
                 !pids)
             ~launch:(spawn_actor ~manifest_path pids)
             ())
      end
    in
    let t0 = Unix.gettimeofday () in
    let net =
      Core.Train.run
        ~on_iteration:(fun p ->
          Printf.printf
            "iter %3d/%d  loss=%.4f  arena wins/ties=%d/%d  kept=%b  \
             replay=%d  failed=%d  (%.0fs)\n%!"
            p.Core.Train.iteration iterations p.mean_loss p.arena_wins
            p.arena_ties p.kept p.replay_size p.episodes_failed
            (Unix.gettimeofday () -. t0))
        ?make_source
        ~rng:(Random.State.make [| seed |])
        cfg
    in
    Nn.Pvnet.save net out;
    Printf.printf "saved %s (%d parameters) after %.0fs\n" out
      (Nn.Pvnet.param_count net)
      (Unix.gettimeofday () -. t0)
  end

let () =
  let m = Arg.(value & opt int 13 & info [ "m" ] ~doc:"number of colors") in
  let iterations =
    Arg.(value & opt int 20 & info [ "iterations"; "i" ] ~doc:"paper: 200")
  in
  let episodes =
    Arg.(value & opt int 12 & info [ "episodes"; "e" ] ~doc:"per iteration; paper: 100")
  in
  let k_train =
    Arg.(value & opt int 25 & info [ "k-train"; "k" ] ~doc:"MCTS sims; paper: 50-100")
  in
  let n_mean =
    Arg.(value & opt float 20.0 & info [ "n-mean" ] ~doc:"graph size mean; paper: 100")
  in
  let p_edge = Arg.(value & opt float 0.2 & info [ "p-edge" ] ~doc:"edge probability") in
  let p_inf =
    Arg.(value & opt float 0.01 & info [ "p-inf" ] ~doc:"infinity ratio; paper: 1%")
  in
  let zero_inf =
    Arg.(value & flag & info [ "zero-inf" ] ~doc:"ATE-style 0/inf costs")
  in
  let planted =
    Arg.(value & flag & info [ "planted" ] ~doc:"guaranteed-solvable instances")
  in
  let ate =
    Arg.(value & flag
         & info [ "ate" ] ~doc:"train on PBQP graphs of synthetic ATE programs")
  in
  let batch = Arg.(value & opt int 32 & info [ "batch" ] ~doc:"paper: 64") in
  let batch_leaves =
    Arg.(value & opt int 1
         & info [ "batch-leaves" ]
             ~doc:"MCTS leaves per batched network evaluation (1 = exact \
                   scalar search; >1 uses virtual-loss waves)")
  in
  let incremental =
    Arg.(value & flag
         & info [ "incremental" ]
             ~doc:"run episodes on the trail-based incremental state \
                   (O(deg) apply/undo, no per-move graph copies); \
                   bit-identical results")
  in
  let eval_cache =
    Arg.(value & opt int 0
         & info [ "eval-cache" ] ~docv:"SIZE"
             ~doc:"total network-evaluation cache capacity, shared across \
                   workers (0 = off); entries are invalidated by weight \
                   version, results are unchanged")
  in
  let serve_batch =
    Arg.(value & opt int 0
         & info [ "serve-batch" ] ~docv:"N"
             ~doc:"coalesce MCTS leaf waves from all workers through a \
                   dynamic-batching inference service into batched \
                   forwards of up to N leaves (0 = per-worker batching); \
                   results are bit-identical either way")
  in
  let serve_wait_us =
    Arg.(value & opt int 200
         & info [ "serve-wait-us" ] ~docv:"US"
             ~doc:"microseconds a partial service batch may wait for more \
                   leaves before it is flushed")
  in
  let cache_stripes =
    Arg.(value & opt int 8
         & info [ "cache-stripes" ] ~docv:"N"
             ~doc:"mutex-guarded shards of the shared evaluation cache \
                   (rounded up to a power of two)")
  in
  let quantize_serve =
    Arg.(value & flag
         & info [ "quantize-serve" ]
             ~doc:"serve MCTS leaf evaluations through the int8 quantized \
                   path whenever the Check.Quantcert accuracy harness has \
                   certified the current weights (recertified after every \
                   optimizer step; uncertified versions fall back to float)")
  in
  let replay =
    Arg.(value & opt int 20_000 & info [ "replay" ] ~doc:"paper: 200000")
  in
  let domains =
    Arg.(value & opt int (Par.recommended_domains ())
         & info [ "domains"; "j" ]
             ~doc:"domain-pool size shared by self-play, the gradient step \
                   and the arena; results are bit-identical for every \
                   value.  Default: Domain.recommended_domain_count, \
                   capped at 8")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"certify every self-play episode's solution against the \
                   original graph (abort on violation)")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"PREFIX"
             ~doc:"save nets + replay after each iteration; resume if present")
  in
  let pretrain_labels =
    Arg.(value & opt (some file) None
         & info [ "pretrain-labels" ] ~docv:"FILE"
             ~doc:"seed the replay buffer with exact-optimal supervision \
                   tuples from a Core.Labels file before self-play (see \
                   pbqp_solve --exact --labels); fresh runs only")
  in
  let actors =
    Arg.(value & opt int 0
         & info [ "actors" ] ~docv:"N"
             ~doc:"run self-play in N actor subprocesses streaming samples \
                   to this (learner) process; 0 = in-process.  With the \
                   same seed, --actors 1 trains bit-identically to the \
                   in-process loop, and any N is reproducible across runs")
  in
  let actor =
    Arg.(value & flag
         & info [ "actor" ]
             ~doc:"internal: serve as a self-play actor over stdin/stdout \
                   (spawned by --actors; not for direct use)")
  in
  let actor_id =
    Arg.(value & opt int 0 & info [ "actor-id" ] ~docv:"I"
         ~doc:"internal: this actor's id in the manifest")
  in
  let manifest =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"PATH"
             ~doc:"actor-manifest file (learner writes it, actors read it); \
                   default: a temp file")
  in
  let stale_decay =
    Arg.(value & opt float 1.0
         & info [ "stale-decay" ] ~docv:"D"
             ~doc:"per-generation-lag down-weighting of stale samples in \
                   distributed mode: a sample played under weights L \
                   generations old trains with weight D^L (1.0 = off)")
  in
  let dist_pipeline =
    Arg.(value & opt int 0
         & info [ "dist-pipeline" ] ~docv:"K"
             ~doc:"dispatch episode assignments K iterations ahead of \
                   collection so actors play while the learner trains; \
                   pipelined episodes run under weights exactly K \
                   generations stale (deterministically)")
  in
  let replay_shards =
    Arg.(value & opt int 0
         & info [ "replay-shards" ] ~docv:"S"
             ~doc:"shards of the learner's replay buffer (distributed \
                   mode); 0 = one per actor")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"rng seed") in
  let out =
    Arg.(value & opt string "pvnet.ckpt" & info [ "o" ] ~doc:"output checkpoint")
  in
  let cmd =
    Cmd.v
      (Cmd.info "train" ~doc:"Train a PBQP policy/value network by self-play")
      Term.(
        const run $ m $ iterations $ episodes $ k_train $ n_mean $ p_edge
        $ p_inf $ zero_inf $ planted $ ate $ batch $ batch_leaves
        $ incremental $ eval_cache $ serve_batch $ serve_wait_us
        $ cache_stripes $ quantize_serve $ replay $ domains $ check
        $ checkpoint $ pretrain_labels $ actors $ actor $ actor_id $ manifest
        $ stale_decay $ dist_pipeline $ replay_shards $ seed $ out)
  in
  exit (Cmd.eval cmd)
