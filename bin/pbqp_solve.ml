(* CLI: solve a .pbqp instance file with any of the solvers. *)

open Cmdliner

let print_findings file findings =
  Check.Diag.print_findings ~oc:stderr file findings

let solve file solver exact_flag net_path k backtracking max_states max_nodes
    labels dot =
  match
    match Check.Invariants.parse_file file with
    | Error findings -> Error findings
    | Ok g ->
        (* structural lint: refuse representation-level errors, but keep
           semantic warnings (arc-dead colors etc.) advisory *)
        let findings = Check.Invariants.graph g in
        if Check.Diag.has_errors findings then Error findings
        else begin
          print_findings file findings;
          Ok g
        end
  with
  | Error findings ->
      print_findings file findings;
      `Error (false, Printf.sprintf "%s: malformed PBQP instance" file)
  | Ok g ->
  Option.iter (fun path -> Pbqp.Dot.to_file path g) dot;
  Printf.printf "instance: %d vertices, %d edges, m = %d\n"
    (Pbqp.Graph.n_alive g) (Pbqp.Graph.edge_count g) (Pbqp.Graph.m g);
  let report label sol cost extra =
    match sol with
    | Some s ->
        Printf.printf "%s: cost %s%s\n  solution: %s\n" label
          (Pbqp.Cost.to_string cost) extra
          (Format.asprintf "%a" Pbqp.Solution.pp s)
    | None -> Printf.printf "%s: no solution found%s\n" label extra
  in
  let solver = if exact_flag then "exact" else solver in
  match solver with
  | "exact" -> (
      let outcome, stats = Core.Solver.solve_exact ~max_nodes g in
      let extra =
        Printf.sprintf " (%d nodes, %d pruned)" stats.Core.Solver.nodes
          stats.backtracks
      in
      (* --labels FILE: append the proven optimum as a supervised
         pretraining record (see Core.Labels / train --pretrain-labels) *)
      let emit_label sol cost =
        match labels with
        | None -> ()
        | Some path ->
            let lbl =
              { Core.Labels.graph = g; assignment = sol; cost }
            in
            let existing =
              if Sys.file_exists path then Core.Labels.load path else []
            in
            Core.Labels.save path (existing @ [ lbl ]);
            Printf.printf "label appended to %s\n" path
      in
      match outcome with
      | Solvers.Exact.Optimal (s, c) ->
          report "exact" (Some s) c (extra ^ " — proven optimal");
          emit_label s c;
          `Ok ()
      | Solvers.Exact.Infeasible ->
          Printf.printf "exact: proven infeasible%s\n" extra;
          `Ok ()
      | Solvers.Exact.Timeout incumbent ->
          (match incumbent with
          | Some (s, c) ->
              report "exact" (Some s) c (extra ^ " — TIMEOUT, incumbent only")
          | None -> Printf.printf "exact: timeout, no incumbent%s\n" extra);
          `Ok ())
  | "greedy" ->
      let result, st = Solvers.Greedy.solve g in
      (match result with
      | Some (s, c) ->
          report "greedy" (Some s) c
            (Printf.sprintf " (%d steps)" st.Solvers.Greedy.steps)
      | None ->
          report "greedy" None Pbqp.Cost.inf
            (Printf.sprintf " (%d steps)" st.Solvers.Greedy.steps));
      `Ok ()
  | "brute" ->
      let result, stats = Solvers.Brute.solve ~max_states g in
      (match result with
      | Some (s, c) ->
          report "brute" (Some s) c
            (Printf.sprintf " (%d states)" stats.Solvers.Brute.states)
      | None ->
          report "brute" None Pbqp.Cost.inf
            (Printf.sprintf " (%d states)" stats.Solvers.Brute.states));
      `Ok ()
  | "scholz" ->
      let s, c, st = Solvers.Scholz.solve_with_cost g in
      report "scholz" (Some s) c
        (Printf.sprintf " (r0/r1/r2/rn = %d/%d/%d/%d)" st.Solvers.Scholz.r0
           st.r1 st.r2 st.rn);
      `Ok ()
  | "mrv" ->
      let s, st = Solvers.Mrv.solve ~max_states g in
      report "mrv" s
        (match s with
        | Some s -> Pbqp.Solution.cost g s
        | None -> Pbqp.Cost.inf)
        (Printf.sprintf " (%d states, %d backtracks%s)" st.Solvers.Mrv.states
           st.backtracks
           (if st.budget_exhausted then ", budget exhausted" else ""));
      `Ok ()
  | "liberty" ->
      let s, st = Solvers.Liberty.solve ~max_states g in
      report "liberty"
        s
        (match s with
        | Some s -> Pbqp.Solution.cost g s
        | None -> Pbqp.Cost.inf)
        (Printf.sprintf " (%d states, %d backtracks%s)" st.Solvers.Liberty.states
           st.backtracks
           (if st.budget_exhausted then ", budget exhausted" else ""));
      `Ok ()
  | "rl" -> (
      match net_path with
      | None -> `Error (false, "--net is required for the rl solver")
      | Some path ->
          let net = Nn.Pvnet.load path in
          let mcts = { Mcts.default_config with k } in
          let sol, stats = Core.Solver.solve_feasible ~net ~mcts ~backtracking g in
          report "deep-rl"
            sol
            (match sol with
            | Some s -> Pbqp.Solution.cost g s
            | None -> Pbqp.Cost.inf)
            (Printf.sprintf " (%d nodes, %d backtracks)" stats.Core.Solver.nodes
               stats.backtracks);
          `Ok ())
  | other -> `Error (false, Printf.sprintf "unknown solver %S" other)

let () =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"PBQP instance in the text format of Pbqp.Io")
  in
  let solver =
    Arg.(value & opt string "scholz"
         & info [ "solver"; "s" ] ~docv:"SOLVER"
             ~doc:"one of: brute, scholz, liberty, mrv, greedy, exact, rl")
  in
  let exact_flag =
    Arg.(value & flag
         & info [ "exact" ]
             ~doc:"shorthand for --solver exact (branch-and-bound, proven \
                   optimum or Timeout)")
  in
  let max_nodes =
    Arg.(value & opt int 1_000_000
         & info [ "max-nodes" ]
             ~doc:"branch-and-bound node budget (exact solver)")
  in
  let labels =
    Arg.(value & opt (some string) None
         & info [ "labels" ] ~docv:"FILE"
             ~doc:"append the proven-optimal (graph, assignment, cost) \
                   record to FILE (exact solver; see train \
                   --pretrain-labels)")
  in
  let net =
    Arg.(value & opt (some file) None
         & info [ "net" ] ~docv:"CKPT" ~doc:"Pvnet checkpoint (rl solver)")
  in
  let k =
    Arg.(value & opt int 50 & info [ "k" ] ~doc:"MCTS simulations per move")
  in
  let backtracking =
    Arg.(value & flag & info [ "backtrack"; "b" ] ~doc:"enable backtracking (rl)")
  in
  let max_states =
    Arg.(value & opt int 1_000_000
         & info [ "max-states" ] ~doc:"search budget (brute/liberty/mrv)")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"also write a Graphviz rendering")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pbqp_solve" ~doc:"Solve a PBQP instance")
      Term.(
        ret
          (const solve $ file $ solver $ exact_flag $ net $ k $ backtracking
         $ max_states $ max_nodes $ labels $ dot))
  in
  exit (Cmd.eval cmd)
