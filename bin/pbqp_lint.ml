(* CLI: lint PBQP instance files, certify solver outputs, check compiled
   MiniC allocations, gradient-check the network, and run the built-in
   verification battery (`--self-test`). *)

open Cmdliner

let print_findings header findings = Check.Diag.print_findings header findings

(* Optimality-gap report for one graph: prove the optimum with the exact
   branch-and-bound solver, certify that the best classic claim does not
   beat it, and print every classic solver's gap to the proven optimum. *)
let gap_report ~max_nodes header g =
  let scholz_cost =
    let _, c, _ = Solvers.Scholz.solve_with_cost g in
    if Pbqp.Cost.is_finite c then Some c else None
  in
  let runs =
    [
      ("scholz", scholz_cost);
      ( "mrv",
        Option.map
          (fun s -> Pbqp.Solution.cost g s)
          (fst (Solvers.Mrv.solve ~max_states:200_000 g)) );
      ( "liberty",
        Option.map
          (fun s -> Pbqp.Solution.cost g s)
          (fst (Solvers.Liberty.solve ~max_states:200_000 g)) );
      ("greedy", Option.map snd (fst (Solvers.Greedy.solve g)));
    ]
  in
  let best_claim =
    List.fold_left
      (fun acc (_, c) ->
        match c with Some c -> Pbqp.Cost.min acc c | None -> acc)
      Pbqp.Cost.inf runs
  in
  let oracle, findings =
    Check.Certify.certify_optimal ~max_nodes g ~reported:best_claim
  in
  (match oracle with
  | Check.Certify.Proven opt when Pbqp.Cost.is_finite opt ->
      Printf.printf "%s: proven optimum %s\n" header (Pbqp.Cost.to_string opt);
      List.iter
        (fun (name, c) ->
          match c with
          | Some c ->
              let gap =
                (Pbqp.Cost.to_float c -. Pbqp.Cost.to_float opt)
                /. Float.max 1.0 (Float.abs (Pbqp.Cost.to_float opt))
              in
              Printf.printf "  %-8s %-12s gap %+.3f%%\n" name
                (Pbqp.Cost.to_string c) (100.0 *. gap)
          | None -> Printf.printf "  %-8s no solution (gap inf)\n" name)
        runs
  | Check.Certify.Proven _ ->
      Printf.printf "%s: proven infeasible\n" header
  | Check.Certify.Oracle_skipped reason ->
      Printf.printf "%s: optimum not proven (%s)\n" header reason);
  findings

(* Lint one graph (well-formedness, optionally solver certification,
   optionally the exact optimality-gap report); returns its findings. *)
let lint_graph ~certify ~gap ~gap_nodes header g =
  let findings =
    Check.Invariants.graph g
    @ (if certify then Check.Certify.classic_findings g else [])
    @ if gap then gap_report ~max_nodes:gap_nodes header g else []
  in
  print_findings header findings;
  findings

let run_files ~certify ~gap ~gap_nodes files =
  List.concat_map
    (fun path ->
      match Check.Invariants.parse_file path with
      | Error findings ->
          print_findings path findings;
          findings
      | Ok g -> lint_graph ~certify ~gap ~gap_nodes path g)
    files

let run_gen ~certify ~gap ~gap_nodes ~seed n =
  let rng = Random.State.make [| seed |] in
  List.concat
    (List.init n (fun i ->
         let config =
           { Pbqp.Generate.default with n = 4 + (i mod 6); m = 2 + (i mod 3) }
         in
         let g = Pbqp.Generate.erdos_renyi ~rng config in
         lint_graph ~certify ~gap ~gap_nodes (Printf.sprintf "gen-%03d" i) g))

let run_cir ~kind path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
      let f = [ Check.Diag.error "io" Check.Diag.Global "%s" msg ] in
      print_findings path f;
      f
  | src ->
      let findings = Check_ir.Cir_check.check_source ~kind src in
      print_findings path findings;
      findings

let run_fuzz ~kind ~gap_vertices ~gap_nodes ~seed n =
  let rng = Random.State.make [| seed |] in
  List.concat
    (List.init n (fun i ->
         let src = Cir.Fuzzgen.generate ~rng in
         (* PBQP graphs of at most --gap-vertices live vertices are also
            routed through the exact solver (certify_optimal) *)
         let findings =
           Check_ir.Cir_check.check_source ~kind
             ~exact_vertices:gap_vertices ~exact_nodes:gap_nodes src
         in
         print_findings (Printf.sprintf "fuzz-%03d" i) findings;
         findings))

let run_gradcheck () =
  let findings =
    Check.Gradcheck.layer_battery () @ Check.Gradcheck.pvnet_battery ()
  in
  print_findings "gradcheck" findings;
  if not (Check.Diag.has_errors findings) then
    Printf.printf "gradcheck: all layers match finite differences\n";
  findings

let run_selftest ~graphs ~seed =
  let cases = Check_ir.Selftest.run ~graphs ~seed () in
  List.iter
    (fun (c : Check_ir.Selftest.case) ->
      Printf.printf "%s %s%s\n"
        (if c.ok then "ok  " else "FAIL")
        c.name
        (if c.ok then "" else "\n  " ^ c.detail))
    cases;
  let failed = List.filter (fun (c : Check_ir.Selftest.case) -> not c.ok) cases in
  Printf.printf "self-test: %d/%d cases passed\n"
    (List.length cases - List.length failed)
    (List.length cases);
  Check_ir.Selftest.ok cases

let lint files certify gap gap_vertices gap_nodes gen cir fuzz alloc gradcheck
    selftest graphs seed =
  let kind =
    match alloc with
    | "fast" -> Ok Check_ir.Cir_check.Fast
    | "basic" -> Ok Check_ir.Cir_check.Basic
    | "greedy" -> Ok Check_ir.Cir_check.Greedy
    | "pbqp" -> Ok Check_ir.Cir_check.Pbqp
    | other -> Error (Printf.sprintf "unknown allocator %S" other)
  in
  match kind with
  | Error msg -> `Error (false, msg)
  | Ok kind ->
      if
        files = [] && gen = 0 && cir = None && fuzz = 0 && (not gradcheck)
        && not selftest
      then `Error (true, "nothing to do: give FILES or a mode flag")
      else begin
        let findings =
          run_files ~certify ~gap ~gap_nodes files
          @ (if gen > 0 then run_gen ~certify ~gap ~gap_nodes ~seed gen else [])
          @ (match cir with Some p -> run_cir ~kind p | None -> [])
          @ (if fuzz > 0 then run_fuzz ~kind ~gap_vertices ~gap_nodes ~seed fuzz
             else [])
          @ if gradcheck then run_gradcheck () else []
        in
        let selftest_ok = if selftest then run_selftest ~graphs ~seed else true in
        if findings <> [] then
          Printf.printf "%s\n" (Check.Diag.summary findings);
        if Check.Diag.has_errors findings || not selftest_ok then
          (* distinct from cmdliner's own exit codes *)
          exit 1;
        `Ok ()
      end

let () =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILES"
           ~doc:"PBQP instances (Pbqp.Io text format) to lint")
  in
  let certify =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"also run every classic solver on each graph and certify \
                   the solutions (brute-force cross-check on small graphs)")
  in
  let gap =
    Arg.(value & flag
         & info [ "gap" ]
             ~doc:"prove each graph's optimum with the exact \
                   branch-and-bound solver and report every classic \
                   solver's optimality gap (certify_optimal: a cost below \
                   the proven optimum is an error, a search timeout an \
                   explicit warning)")
  in
  let gap_vertices =
    Arg.(value & opt int 24
         & info [ "gap-vertices" ] ~docv:"N"
             ~doc:"route --fuzz PBQP graphs with at most N live vertices \
                   through the exact solver (0 disables)")
  in
  let gap_nodes =
    Arg.(value & opt int 200_000
         & info [ "gap-nodes" ] ~docv:"N"
             ~doc:"branch-and-bound node budget for --gap/--fuzz exact \
                   checks")
  in
  let gen =
    Arg.(value & opt int 0
         & info [ "gen" ] ~docv:"N" ~doc:"lint N random Erdős–Rényi graphs")
  in
  let cir =
    Arg.(value & opt (some file) None
         & info [ "cir" ] ~docv:"FILE"
             ~doc:"compile a MiniC file and verify IR, allocation and spill \
                   code")
  in
  let fuzz =
    Arg.(value & opt int 0
         & info [ "fuzz" ] ~docv:"N"
             ~doc:"verify N random fuzzgen MiniC programs end to end")
  in
  let alloc =
    Arg.(value & opt string "pbqp"
         & info [ "alloc" ] ~docv:"KIND"
             ~doc:"allocator for --cir/--fuzz: fast, basic, greedy, pbqp")
  in
  let gradcheck =
    Arg.(value & flag
         & info [ "gradcheck" ]
             ~doc:"finite-difference-check the network gradients (every \
                   layer and the full pvnet loss)")
  in
  let selftest =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"run the built-in verification battery: well-formedness \
                   and certification over generated graphs, rejection of \
                   malformed inputs, gradient checks, CIR and ATE pipelines")
  in
  let graphs =
    Arg.(value & opt int 60
         & info [ "graphs" ] ~docv:"N"
             ~doc:"graphs per self-test battery (default 60)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"rng seed")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pbqp_lint"
         ~doc:"Static analysis and solution certification for the PBQP stack")
      Term.(
        ret
          (const lint $ files $ certify $ gap $ gap_vertices $ gap_nodes $ gen
         $ cir $ fuzz $ alloc $ gradcheck $ selftest $ graphs $ seed))
  in
  exit (Cmd.eval cmd)
