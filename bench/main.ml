(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md §4 for the experiment index, and
   EXPERIMENTS.md for paper-reported vs measured values).

   Usage: main.exe [e1|e2|e3|e4|e5|e6|micro|all]

   Networks are trained on first use at a laptop-scale schedule and cached
   under bench_cache/ so reruns are fast; delete the directory to retrain. *)

let cache_dir = "bench_cache"
let machine = Ate.Machine.default
let rng seed = Random.State.make [| seed |]
let section title = Printf.printf "\n=== %s ===\n%!" title

let time_it f =
  let t = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t)

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json PATH): every group that measures
   operations records (group, name, iters, ns/op, allocs/op, GC words/op
   and — where meaningful — a cache hit rate) here, so a run leaves a
   perf-trajectory file that later PRs can diff against. *)

type row = {
  r_group : string;
  r_name : string;
  r_iters : int;
  r_ns : float;
  r_allocs : float;
  r_minor : float;  (** minor-heap words per op (main domain) *)
  r_major : float;  (** major-heap + promoted words per op *)
  r_hit : float option;  (** evaluation-cache hit rate, when applicable *)
  r_cache : Nn.Evalcache.stats option;
      (** evaluation-cache counters (hits/misses/evictions/size), when a
          cache was in play *)
  r_extra : (string * float) list;
      (** group-specific numeric fields (e.g. the gap group's mean
          optimality gaps); ignored by the --compare parser, which only
          reads group/name/ns_per_op *)
}

let json_out : string option ref = ref None
let json_results : row list ref = ref []

let record ?(minor_words_per_op = 0.0) ?(major_words_per_op = 0.0) ?hit_rate
    ?cache_stats ?(extra = []) ~group ~name ~iters ~ns_per_op ~allocs_per_op
    () =
  json_results :=
    { r_group = group; r_name = name; r_iters = iters; r_ns = ns_per_op;
      r_allocs = allocs_per_op; r_minor = minor_words_per_op;
      r_major = major_words_per_op; r_hit = hit_rate; r_cache = cache_stats;
      r_extra = extra }
    :: !json_results

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"schema\": \"pbqp-rl-bench-1\",\n";
      Printf.fprintf oc "  \"recommended_domains\": %d,\n"
        (Domain.recommended_domain_count ());
      Printf.fprintf oc "  \"results\": [\n";
      let results = List.rev !json_results in
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"group\": \"%s\", \"name\": \"%s\", \"iters\": %d, \
             \"ns_per_op\": %.1f, \"allocs_per_op\": %.1f, \
             \"minor_words_per_op\": %.1f, \"major_words_per_op\": %.1f%s}%s\n"
            (json_escape r.r_group) (json_escape r.r_name) r.r_iters r.r_ns
            r.r_allocs r.r_minor r.r_major
            ((match r.r_hit with
             | None -> ""
             | Some h -> Printf.sprintf ", \"hit_rate\": %.4f" h)
            ^ (match r.r_cache with
              | None -> ""
              | Some (s : Nn.Evalcache.stats) ->
                  Printf.sprintf
                    ", \"cache_hits\": %d, \"cache_misses\": %d,                    \"cache_evictions\": %d, \"cache_size\": %d"
                    s.Nn.Evalcache.hits s.misses s.evictions s.size)
            ^ String.concat ""
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf ", \"%s\": %.4f" (json_escape k) v)
                   r.r_extra))
            (if i = List.length results - 1 then "" else ","))
        results;
      Printf.fprintf oc "  ]\n}\n")

(* Hand-rolled timing for the parallel benchmarks (Bechamel pins its
   harness to one domain, so pool effects are better measured directly):
   repeat [f] until [min_time] wall seconds and [min_iters] runs, then
   report per-op nanoseconds, per-op allocated words, and per-op GC
   minor/major words (main domain only — worker-domain allocation is not
   in the counters). *)
type measurement = {
  m_iters : int;
  m_ns : float;
  m_allocs : float;
  m_minor : float;
  m_major : float;
}

let measure ?(min_time = 0.25) ?(min_iters = 3) f =
  ignore (f ());
  let iters = ref 0 and t_total = ref 0.0 and a_total = ref 0.0 in
  let minor_total = ref 0.0 and major_total = ref 0.0 in
  while !t_total < min_time || !iters < min_iters do
    let s0 = Gc.quick_stat () in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    t_total := !t_total +. (Unix.gettimeofday () -. t0);
    a_total := !a_total +. (Gc.allocated_bytes () -. a0);
    let s1 = Gc.quick_stat () in
    minor_total := !minor_total +. (s1.Gc.minor_words -. s0.Gc.minor_words);
    major_total :=
      !major_total
      +. (s1.Gc.major_words -. s0.Gc.major_words)
      +. (s1.Gc.promoted_words -. s0.Gc.promoted_words);
    incr iters
  done;
  let n = float_of_int !iters in
  { m_iters = !iters; m_ns = !t_total *. 1e9 /. n;
    m_allocs = !a_total /. 8.0 /. n; m_minor = !minor_total /. n;
    m_major = !major_total /. n }

(* ------------------------------------------------------------------ *)
(* Trained networks (cached) *)

let ensure_cache_dir () =
  if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755

(* ATE net: m = 13, trained on a mix of PBQP graphs of small synthetic ATE
   programs and planted 0/inf Erdos-Renyi instances (feasibility labels). *)
let ate_instance ~rng =
  if Random.State.bool rng then begin
    let target = 16 + Random.State.int rng 30 in
    let p = Ate.Progen.generate ~rng ~target_vregs:target () in
    let info = Ate.Program.analyze_exn p in
    (Ate.Pbqp_build.build machine info).Ate.Pbqp_build.graph
  end
  else
    fst
      (Pbqp.Generate.planted ~rng
         {
           Pbqp.Generate.default with
           n = 12 + Random.State.int rng 20;
           m = 13;
           p_edge = 0.2;
           p_inf = 0.4;
           zero_inf = true;
         })

let train_ate_net ~k_train ~iterations =
  let m = 13 in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = 12;
      graph = { Pbqp.Generate.default with m; zero_inf = true };
      instance_generator = Some ate_instance;
      mcts = { Mcts.default_config with k = k_train };
      temperature_moves = 8;
    }
  in
  Core.Train.run
    ~on_iteration:(fun p ->
      Printf.printf "  [train ate k=%d] iter %d/%d loss=%.3f failed=%d/12\n%!"
        k_train p.Core.Train.iteration iterations p.mean_loss p.episodes_failed)
    ~rng:(rng (1000 + k_train))
    cfg

(* CPU net: m = 9 (8 registers + spill), trained per the paper's SV-A on
   random Erdos-Renyi PBQP graphs in cost-minimization mode. *)
let train_cpu_net ~k_train ~iterations =
  let m = Cir.Alloc_pbqp.num_colors in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = 12;
      graph =
        { Pbqp.Generate.default with m; p_edge = 0.22; p_inf = 0.01;
          cost_max = 30.0 };
      n_mean = 16.0;
      n_stddev = 4.0;
      mcts = { Mcts.default_config with k = k_train };
      temperature_moves = 6;
    }
  in
  Core.Train.run
    ~on_iteration:(fun p ->
      Printf.printf "  [train cpu k=%d] iter %d/%d loss=%.3f wins=%d kept=%b\n%!"
        k_train p.Core.Train.iteration iterations p.mean_loss p.arena_wins
        p.kept)
    ~rng:(rng (2000 + k_train))
    cfg

let cached name train =
  ensure_cache_dir ();
  let path = Filename.concat cache_dir (name ^ ".ckpt") in
  if Sys.file_exists path then begin
    Printf.printf "  (loading cached %s)\n%!" name;
    Nn.Pvnet.load path
  end
  else begin
    Printf.printf "  training %s ...\n%!" name;
    let net, dt = time_it train in
    Nn.Pvnet.save net path;
    Printf.printf "  trained %s in %.0fs\n%!" name dt;
    net
  end

let ate_net_25 =
  lazy (cached "ate_k25" (fun () -> train_ate_net ~k_train:25 ~iterations:14))

let ate_net_12 =
  lazy (cached "ate_k12" (fun () -> train_ate_net ~k_train:12 ~iterations:14))

let cpu_net =
  lazy (cached "cpu_k24" (fun () -> train_cpu_net ~k_train:24 ~iterations:10))

(* ------------------------------------------------------------------ *)
(* PRO graphs *)

let pros =
  lazy
    (List.init 10 (fun i ->
         let k = i + 1 in
         let p = Ate.Progen.pro k in
         let info = Ate.Program.analyze_exn p in
         let built = Ate.Pbqp_build.build machine info in
         (Printf.sprintf "PRO%d" k, built.Ate.Pbqp_build.graph)))

(* ------------------------------------------------------------------ *)
(* E1: RL without backtracking across (k_train, k_infer) pairs *)

let solve_pro ~net ~order ~k_infer ~backtracking ?(replan = true)
    ?(max_backtracks = 2500) g =
  Core.Solver.solve_feasible ~net ~order ~rng:(rng 9)
    ~mcts:{ Mcts.default_config with k = k_infer }
    ~backtracking ~replan ~max_backtracks g

let e1 () =
  section "E1  (SV-B): Deep-RL without backtracking, (k_train, k_infer) pairs";
  Printf.printf
    "Paper shape: low pairs fail on most programs; the highest pair solves more.\n";
  Printf.printf
    "(scaled: paper pairs (50,25)/(50,50)/(100,150) -> (12,12)/(25,25)/(25,50))\n\n";
  let pairs =
    [
      ("(12,12)", Lazy.force ate_net_12, 12);
      ("(25,25)", Lazy.force ate_net_25, 25);
      ("(25,50)", Lazy.force ate_net_25, 50);
    ]
  in
  Printf.printf "%-8s" "pair";
  List.iter (fun (name, _) -> Printf.printf " %-6s" name) (Lazy.force pros);
  Printf.printf " solved\n";
  List.iter
    (fun (label, net, k_infer) ->
      Printf.printf "%-8s" label;
      let solved = ref 0 in
      List.iter
        (fun (_, g) ->
          let sol, _ =
            solve_pro ~net ~order:Core.Order.Decreasing_liberty ~k_infer
              ~backtracking:false g
          in
          if sol <> None then incr solved;
          Printf.printf " %-6s" (if sol <> None then "ok" else "X"))
        (Lazy.force pros);
      Printf.printf " %d/10\n%!" !solved)
    pairs

(* ------------------------------------------------------------------ *)
(* E2: Figure 6 -- game-tree nodes for variants (a)-(d) *)

let fig6_variants =
  [
    ("(a) no-backtrack", None, false);
    ("(b) random", Some Core.Order.Random, true);
    ("(c) inc-liberty", Some Core.Order.Increasing_liberty, true);
    ("(d) dec-liberty", Some Core.Order.Decreasing_liberty, true);
  ]

let e2 () =
  section "E2  (Figure 6): game-tree nodes, variants (a)-(d), two k_infer";
  Printf.printf
    "Paper shape: backtracking variants solve far more than (a) at low k;\n";
  Printf.printf
    "node counts per variant below (X = failed within the backtrack budget).\n";
  List.iter
    (fun k_infer ->
      Printf.printf "\nk_infer = %d:\n%-18s" k_infer "variant";
      List.iter (fun (name, _) -> Printf.printf " %8s" name) (Lazy.force pros);
      Printf.printf "\n";
      List.iter
        (fun (label, order, backtracking) ->
          Printf.printf "%-18s" label;
          List.iter
            (fun (_, g) ->
              let sol, stats =
                solve_pro
                  ~net:(Lazy.force ate_net_25)
                  ~order:
                    (Option.value order
                       ~default:Core.Order.Decreasing_liberty)
                  ~k_infer ~backtracking g
              in
              Printf.printf " %7d%s" stats.Core.Solver.nodes
                (if sol = None then "X" else " "))
            (Lazy.force pros);
          Printf.printf "\n%!")
        fig6_variants)
    [ 12; 25 ]

(* ------------------------------------------------------------------ *)
(* E3: search-space comparison vs liberty-based enumeration *)

let e3 () =
  section "E3  (SV-B): states explored, Deep-RL vs liberty enumeration";
  Printf.printf
    "Paper shape: RL searches orders of magnitude fewer states (paper:\n";
  Printf.printf
    "1/3,500 - 1/13,000; the liberty baseline is budget-capped here, so\n";
  Printf.printf "ratios on capped rows are lower bounds).\n\n";
  let budget = 400_000 in
  Printf.printf "%-6s %10s %12s %12s %14s\n" "prog" "RL nodes" "lib-fwd"
    "lib-bwd" "ratio(bwd/RL)";
  List.iter
    (fun (pname, g) ->
      let sol, stats =
        solve_pro
          ~net:(Lazy.force ate_net_25)
          ~order:Core.Order.Increasing_liberty ~k_infer:25 ~backtracking:true
          ~max_backtracks:2000 g
      in
      let rl_nodes = stats.Core.Solver.nodes in
      let fwd_sol, fwd = Solvers.Liberty.solve ~max_states:budget g in
      let bwd_sol, bwd =
        Solvers.Liberty.solve ~max_states:budget
          ~pruning:Solvers.Liberty.Backward g
      in
      let show = function
        | Some _, states -> Printf.sprintf "%d" states
        | None, states -> Printf.sprintf ">%d" states
      in
      Printf.printf "%-6s %9d%s %12s %12s %14s\n%!" pname rl_nodes
        (if sol = None then "X" else " ")
        (show (fwd_sol, fwd.Solvers.Liberty.states))
        (show (bwd_sol, bwd.Solvers.Liberty.states))
        (if sol <> None then
           Printf.sprintf "%s%.0fx"
             (if bwd_sol = None then ">=" else "")
             (float_of_int bwd.Solvers.Liberty.states /. float_of_int rl_nodes)
         else "-"))
    (Lazy.force pros)

(* ------------------------------------------------------------------ *)
(* E4: PBQP vs PBQP-RL cost sums on the 24 C programs *)

let program_costs ~net ~k_infer src =
  let ir = Cir.Lower.compile src in
  let scholz_total = ref Pbqp.Cost.zero in
  let rl_total = ref Pbqp.Cost.zero in
  List.iter
    (fun (f : Cir.Ir.func) ->
      let live = Cir.Liveness.analyze f in
      let _, sc = Cir.Alloc_pbqp.solve_scholz live in
      let _, rc =
        Cir.Alloc_pbqp.solve_rl ~net
          ~mcts:{ Mcts.default_config with k = k_infer }
          live
      in
      scholz_total := Pbqp.Cost.add !scholz_total sc;
      rl_total := Pbqp.Cost.add !rl_total rc)
    ir.Cir.Ir.funcs;
  (!scholz_total, !rl_total)

let e4 () =
  section "E4  (SV-C): PBQP vs PBQP-RL cost sums on the 24 C programs";
  Printf.printf
    "Paper shape: PBQP-RL nearly matches PBQP, with a couple of programs\n";
  Printf.printf "slightly worse at low k_infer, closing as k_infer grows.\n\n";
  let net = Lazy.force cpu_net in
  let k_infer = 60 in
  Printf.printf "%-12s %12s %12s %9s\n" "program" "PBQP" "PBQP-RL" "gap";
  let worse = ref [] in
  List.iter
    (fun (name, src) ->
      let sc, rc = program_costs ~net ~k_infer src in
      let sc = Pbqp.Cost.to_float sc and rc = Pbqp.Cost.to_float rc in
      (* relative gap guarded against zero/negative sums (coalescing
         credits can push cost sums below zero) *)
      let rel = (rc -. sc) /. (Float.abs sc +. 1.0) in
      if rel > 0.02 then worse := name :: !worse;
      Printf.printf "%-12s %12.1f %12.1f %+8.1f%%\n%!" name sc rc (100. *. rel))
    Cir.Programs.all;
  Printf.printf "\nprograms with >2%% higher RL cost at k_infer=%d: %s\n"
    k_infer
    (match !worse with
    | [] -> "(none)"
    | l -> String.concat ", " (List.rev l));
  Printf.printf "\nk_infer sweep on the paper's two stragglers (Oscar, FloatMM):\n";
  List.iter
    (fun name ->
      let src = Cir.Programs.find name in
      Printf.printf "  %-8s" name;
      List.iter
        (fun k ->
          let sc, rc = program_costs ~net ~k_infer:k src in
          Printf.printf "  k=%d: RL %.1f vs PBQP %.1f;" k
            (Pbqp.Cost.to_float rc) (Pbqp.Cost.to_float sc))
        [ 15; 60; 150 ];
      Printf.printf "\n%!")
    [ "Oscar"; "FloatMM" ]

(* ------------------------------------------------------------------ *)
(* E5: speedup over FAST *)

let e5 () =
  section "E5  (SV-C): generated-code speedup over FAST";
  Printf.printf
    "Paper shape: GREEDY 1.464x, PBQP 1.422x, PBQP-RL 1.416x on x86; our\n";
  Printf.printf
    "VCPU memory model is harsher, so absolute speedups are larger, but the\n";
  Printf.printf "relative ordering of the allocators is the claim.\n\n";
  let net = Lazy.force cpu_net in
  let kinds =
    [
      Cir.Driver.Fast;
      Cir.Driver.Basic;
      Cir.Driver.Greedy;
      Cir.Driver.Pbqp;
      Cir.Driver.Pbqp_rl (net, { Mcts.default_config with k = 60 });
    ]
  in
  Printf.printf "%-12s %10s %10s %10s %10s %10s\n" "program" "FAST" "BASIC"
    "GREEDY" "PBQP" "PBQP-RL";
  let geo = Array.make (List.length kinds) 0.0 in
  let count = ref 0 in
  List.iter
    (fun (name, src) ->
      let ir = Cir.Lower.compile src in
      let expected = (Cir.Driver.reference ir).Cir.Interp.output in
      let cycles =
        List.map
          (fun kind ->
            let r = Cir.Driver.run kind ir in
            if r.Cir.Driver.outcome.Cir.Msim.output <> expected then
              failwith
                (name ^ ": wrong output under "
                ^ Cir.Driver.alloc_kind_name kind);
            r.Cir.Driver.outcome.Cir.Msim.cycles)
          kinds
      in
      let fast = float_of_int (List.hd cycles) in
      incr count;
      List.iteri
        (fun i c -> geo.(i) <- geo.(i) +. log (fast /. float_of_int c))
        cycles;
      Printf.printf "%-12s" name;
      List.iter (fun c -> Printf.printf " %9.2fx" (fast /. float_of_int c)) cycles;
      Printf.printf "\n%!")
    Cir.Programs.all;
  Printf.printf "%-12s" "geomean";
  Array.iter
    (fun s -> Printf.printf " %9.2fx" (exp (s /. float_of_int !count)))
    geo;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* E6: ablations *)

let e6 () =
  section "E6  (SV-B ablations)";
  Printf.printf
    "(i) dead-end re-planning on/off (paper: no tangible difference);\n";
  Printf.printf
    "(ii) think more in training, less at inference (paper: ~10%% fewer nodes).\n\n";
  let best_order = Core.Order.Increasing_liberty in
  Printf.printf "(i) replan vs no-replan, k_infer=12:\n";
  Printf.printf "%-10s %10s %10s\n" "prog" "replan" "no-replan";
  List.iter
    (fun (pname, g) ->
      let run replan =
        let sol, stats =
          solve_pro ~net:(Lazy.force ate_net_25) ~order:best_order ~k_infer:12
            ~backtracking:true ~replan g
        in
        Printf.sprintf "%d%s" stats.Core.Solver.nodes
          (if sol = None then "X" else "")
      in
      Printf.printf "%-10s %10s %10s\n%!" pname (run true) (run false))
    (Lazy.force pros);
  Printf.printf
    "\n(ii) high-train/low-infer (25,12) vs low-train/high-infer (12,25):\n";
  Printf.printf "%-10s %12s %12s\n" "prog" "(25,12)" "(12,25)";
  List.iter
    (fun (pname, g) ->
      let run net k_infer =
        let sol, stats =
          solve_pro ~net ~order:best_order ~k_infer ~backtracking:true g
        in
        Printf.sprintf "%d%s" stats.Core.Solver.nodes
          (if sol = None then "X" else "")
      in
      Printf.printf "%-10s %12s %12s\n%!" pname
        (run (Lazy.force ate_net_25) 12)
        (run (Lazy.force ate_net_12) 25))
    (Lazy.force pros)

(* ------------------------------------------------------------------ *)
(* EXT: ablations of this reproduction's own design choices (DESIGN.md) *)

let ext () =
  section "EXT (beyond the paper): hybrid exact reduction & roll-out blending";
  Printf.printf
    "(i) exact R0/R1/R2 pre-reduction before the RL search (same answers,\n";
  Printf.printf "fewer nodes on instances with an easy periphery):\n";
  Printf.printf "%-10s %12s %12s\n" "prog" "plain" "hybrid";
  let net = Lazy.force ate_net_25 in
  List.iteri
    (fun i (pname, g) ->
      if i < 5 then begin
        let run exact_reduce =
          let sol, stats =
            Core.Solver.solve_feasible ~net ~exact_reduce
              ~order:Core.Order.Increasing_liberty
              ~mcts:{ Mcts.default_config with k = 25 }
              ~max_backtracks:1500 g
          in
          Printf.sprintf "%d%s" stats.Core.Solver.nodes
            (if sol = None then "X" else "")
        in
        Printf.printf "%-10s %12s %12s\n%!" pname (run false) (run true)
      end)
    (Lazy.force pros);
  Printf.printf
    "\n(ii) greedy roll-out blending in minimization (per-program PBQP cost\n";
  Printf.printf "sums with roll-outs on vs off, k_infer = 60):\n";
  let cpu = Lazy.force cpu_net in
  Printf.printf "%-12s %12s %12s %12s\n" "program" "PBQP" "RL+rollout" "RL-rollout";
  List.iter
    (fun name ->
      let src = Cir.Programs.find name in
      let ir = Cir.Lower.compile src in
      let total f =
        List.fold_left
          (fun acc (fn : Cir.Ir.func) ->
            acc +. Pbqp.Cost.to_float (f (Cir.Liveness.analyze fn)))
          0.0 ir.Cir.Ir.funcs
      in
      let scholz live = snd (Cir.Alloc_pbqp.solve_scholz live) in
      let with_ro live =
        snd
          (Cir.Alloc_pbqp.solve_rl ~net:cpu
             ~mcts:{ Mcts.default_config with k = 60 }
             live)
      in
      let without_ro live =
        let t = Cir.Alloc_pbqp.build live in
        match
          Core.Solver.minimize ~net:cpu
            ~mcts:{ Mcts.default_config with k = 60 }
            ~exact_reduce:true t.Cir.Alloc_pbqp.graph
        with
        | Some (_, c), _ -> c
        | None, _ -> Pbqp.Cost.inf
      in
      Printf.printf "%-12s %12.1f %12.1f %12.1f\n%!" name (total scholz)
        (total with_ro) (total without_ro))
    [ "Queens"; "Nbody"; "Oscar"; "Gcd"; "Mandel" ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks *)

let micro () =
  section "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let g30 =
    Pbqp.Generate.erdos_renyi ~rng:(rng 3)
      { Pbqp.Generate.default with n = 30; m = 13; p_edge = 0.2 }
  in
  let net = Lazy.force ate_net_25 in
  let state = Core.State.of_graph g30 in
  let tests =
    Test.make_grouped ~name:"pbqp-rl"
      [
        Test.make ~name:"Graph.copy (n=30,m=13)"
          (Staged.stage (fun () -> ignore (Pbqp.Graph.copy g30)));
        Test.make ~name:"State.apply"
          (Staged.stage (fun () -> ignore (Core.State.apply state 0)));
        Test.make ~name:"Pvnet.predict (n=30)"
          (Staged.stage (fun () -> ignore (Nn.Pvnet.predict net g30 ~next:0)));
        Test.make ~name:"Scholz.solve (n=30)"
          (Staged.stage (fun () -> ignore (Solvers.Scholz.solve g30)));
        Test.make ~name:"MiniC compile (Sieve)"
          (Staged.stage (fun () ->
               ignore (Cir.Lower.compile (Cir.Programs.find "Sieve"))));
        Test.make ~name:"Liveness.analyze (Sieve main)"
          (Staged.stage
             (let f =
                List.hd (Cir.Lower.compile (Cir.Programs.find "Sieve")).Cir.Ir.funcs
              in
              fun () -> ignore (Cir.Liveness.analyze f)));
        Test.make ~name:"Check.Invariants.graph (n=30)"
          (Staged.stage (fun () -> ignore (Check.Invariants.graph g30)));
        Test.make ~name:"Check.Certify.recompute (n=30)"
          (Staged.stage
             (let sol, _, _ = Solvers.Scholz.solve_with_cost g30 in
              fun () -> ignore (Check.Certify.recompute g30 sol)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          record ~group:"micro" ~name ~iters:1 ~ns_per_op:est
            ~allocs_per_op:0.0 ();
          Printf.printf "  %-36s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
    results

(* ------------------------------------------------------------------ *)
(* Batched-evaluation microbenchmarks: the tiled GEMM against the naive
   kernel, one batched pvnet forward against N scalar ones, and a whole
   self-play episode with and without batched leaf evaluation.  Uses a
   fresh (untrained) net — these measure inference mechanics, not play
   quality — so the section runs in seconds. *)

let batching () =
  section "Batched evaluation microbenchmarks (Bechamel)";
  let open Bechamel in
  let mk n =
    let r = rng (n + 1) in
    let rand _ _ = Random.State.float r 2.0 -. 1.0 in
    (Tensor.init2 n n rand, Tensor.init2 n n rand)
  in
  let a64, b64 = mk 64 in
  let a192, b192 = mk 192 in
  let out192 = Tensor.zeros [| 192; 192 |] in
  let m = 13 in
  let net =
    Nn.Pvnet.create ~rng:(rng 1)
      { (Nn.Pvnet.default_config ~m) with trunk_width = 64; trunk_blocks = 2 }
  in
  let g =
    Pbqp.Generate.erdos_renyi ~rng:(rng 3)
      { Pbqp.Generate.default with n = 30; m; p_edge = 0.2 }
  in
  let states =
    List.filteri (fun i _ -> i < 16)
      (List.map (fun v -> (g, v)) (Pbqp.Graph.vertices g))
  in
  let st = Core.State.of_graph g in
  let episode ~batched ~batch () =
    let cfg =
      {
        Core.Episode.default_config with
        Core.Episode.mcts = { Mcts.default_config with k = 16; batch };
      }
    in
    ignore
      (Core.Episode.play ~batched ~rng:(rng 7) ~net
         ~mode:Core.Game.Feasibility cfg st)
  in
  let tests =
    Test.make_grouped ~name:"batching"
      [
        Test.make ~name:"matmul_naive 64x64"
          (Staged.stage (fun () -> ignore (Tensor.matmul_naive a64 b64)));
        Test.make ~name:"matmul (tiled) 64x64"
          (Staged.stage (fun () -> ignore (Tensor.matmul a64 b64)));
        Test.make ~name:"matmul_naive 192x192"
          (Staged.stage (fun () -> ignore (Tensor.matmul_naive a192 b192)));
        Test.make ~name:"matmul (tiled) 192x192"
          (Staged.stage (fun () -> ignore (Tensor.matmul a192 b192)));
        Test.make ~name:"matmul_into (tiled, no alloc) 192x192"
          (Staged.stage (fun () -> Tensor.matmul_into out192 a192 b192));
        Test.make ~name:"16 x Pvnet.predict (n=30)"
          (Staged.stage (fun () ->
               List.iter
                 (fun (g, next) -> ignore (Nn.Pvnet.predict net g ~next))
                 states));
        Test.make ~name:"Pvnet.predict_batch of 16 (n=30)"
          (Staged.stage (fun () -> ignore (Nn.Pvnet.predict_batch net states)));
        Test.make ~name:"episode, scalar eval (k=16)"
          (Staged.stage (episode ~batched:false ~batch:1));
        Test.make ~name:"episode, batch_leaves=8 (k=16)"
          (Staged.stage (episode ~batched:true ~batch:8));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          record ~group:"batch" ~name ~iters:1 ~ns_per_op:est
            ~allocs_per_op:0.0 ();
          Printf.printf "  %-42s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
    results

(* ------------------------------------------------------------------ *)
(* Parallel-runtime benchmarks: the pool-backed GEMM, the data-parallel
   training step and whole-iteration episode throughput at 1/2/4/8
   domains.  Every parallel variant computes bit-identical results to
   its serial baseline (that is what the @par test alias asserts); this
   group measures what that determinism costs or buys on this host. *)

let par_bench () =
  section "Parallel runtime (Par.Pool) at 1/2/4/8 domains";
  Printf.printf
    "host reports %d recommended domain(s); parallel results are\n\
     bit-identical to serial at every pool size, so any speedup is free.\n\n"
    (Domain.recommended_domain_count ());
  let show ~name m =
    record ~group:"par" ~name ~iters:m.m_iters ~ns_per_op:m.m_ns
      ~allocs_per_op:m.m_allocs ~minor_words_per_op:m.m_minor
      ~major_words_per_op:m.m_major ();
    Printf.printf "  %-44s %14.1f ns/op  (x%d)\n%!" name m.m_ns m.m_iters
  in
  let js = [ 1; 2; 4; 8 ] in
  (* GEMM: 256x256, comfortably above the pool threshold. *)
  let n = 256 in
  let r = rng 11 in
  let rand _ _ = Random.State.float r 2.0 -. 1.0 in
  let a = Tensor.init2 n n rand and b = Tensor.init2 n n rand in
  let out = Tensor.zeros [| n; n |] in
  Tensor.set_pool None;
  show ~name:"gemm 256x256 serial"
    (measure (fun () -> Tensor.matmul_into out a b));
  List.iter
    (fun j ->
      let pool = Par.Pool.create ~domains:j in
      Tensor.set_pool (Some pool);
      show
        ~name:(Printf.sprintf "gemm 256x256 pool j=%d" j)
        (measure (fun () -> Tensor.matmul_into out a b));
      Tensor.set_pool None;
      Par.Pool.shutdown pool)
    js;
  (* Training step: one Adam step on a 16-sample batch, m = 13. *)
  let m = 13 in
  let g =
    Pbqp.Generate.erdos_renyi ~rng:(rng 5)
      { Pbqp.Generate.default with n = 16; m; p_edge = 0.2 }
  in
  let uniform = Array.make m (1.0 /. float_of_int m) in
  let samples =
    List.map
      (fun v ->
        { Nn.Pvnet.graph = g; next = v; policy = Array.copy uniform;
          value = 0.25 })
      (Pbqp.Graph.vertices g)
  in
  let fresh_net () = Nn.Pvnet.create ~rng:(rng 6) (Nn.Pvnet.default_config ~m) in
  let serial_net = fresh_net () in
  let serial_opt = Nn.Adam.create Nn.Adam.default_config in
  show ~name:"train step (16 samples) serial"
    (measure (fun () -> Nn.Pvnet.train_batch serial_net serial_opt samples));
  List.iter
    (fun j ->
      let pool = Par.Pool.create ~domains:j in
      let net = fresh_net () in
      let opt = Nn.Adam.create Nn.Adam.default_config in
      let replicas =
        Array.init (Par.Pool.size pool) (fun w ->
            if w = 0 then net else Nn.Pvnet.clone net)
      in
      show
        ~name:(Printf.sprintf "train step (16 samples) pool j=%d" j)
        (measure (fun () ->
             Nn.Pvnet.train_batch_parallel ~pool ~replicas net opt samples));
      Par.Pool.shutdown pool)
    js;
  (* Episode throughput: one self-play iteration (8 episodes, k = 12, no
     training / arena) through Core.Train.run at each pool size. *)
  let episodes = 8 in
  let train_cfg j =
    {
      (Core.Train.default_config ~m:8) with
      iterations = 1;
      episodes_per_iteration = episodes;
      batches_per_iteration = 0;
      arena_games = 0;
      mcts = { Mcts.default_config with k = 12 };
      n_mean = 12.0;
      n_stddev = 2.0;
      domains = j;
    }
  in
  List.iter
    (fun j ->
      let m =
        measure ~min_time:0.0 ~min_iters:2 (fun () ->
            ignore (Core.Train.run ~rng:(rng 31) (train_cfg j)))
      in
      let e = float_of_int episodes in
      show
        ~name:(Printf.sprintf "self-play episode (k=12) j=%d" j)
        { m_iters = m.m_iters * episodes; m_ns = m.m_ns /. e;
          m_allocs = m.m_allocs /. e; m_minor = m.m_minor /. e;
          m_major = m.m_major /. e })
    js

(* ------------------------------------------------------------------ *)
(* Incremental-state & evaluation-cache benchmarks: the trail-based
   Istate against per-move persistent copies — first bare apply/undo,
   then whole k=12 self-play episodes (the ISSUE's headline claim is the
   allocation drop there) — and an LRU-capacity sweep of the
   transposition cache's hit rate on a repeated-position workload.
   Every incremental/cached variant computes bit-identical results to
   the persistent uncached baseline (the @incr test alias asserts it);
   this group measures what that buys. *)

let incr_bench () =
  section "Incremental state & evaluation cache";
  let show ?cache_stats ~name m =
    (* hit rate derived from the cache's own counters (Evalcache.stats)
       rather than recomputed ad hoc *)
    let hit_rate =
      Option.map
        (fun (s : Nn.Evalcache.stats) ->
          let total = s.Nn.Evalcache.hits + s.misses in
          if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total)
        cache_stats
    in
    record ~group:"incr" ~name ~iters:m.m_iters ~ns_per_op:m.m_ns
      ~allocs_per_op:m.m_allocs ~minor_words_per_op:m.m_minor
      ~major_words_per_op:m.m_major ?hit_rate ?cache_stats ();
    Printf.printf "  %-44s %12.1f ns/op  %10.0f w/op%s\n%!" name m.m_ns
      m.m_allocs
      (match hit_rate with
      | None -> ""
      | Some h -> Printf.sprintf "  hit %.0f%%" (100. *. h))
  in
  let m = 13 in
  let g =
    Pbqp.Generate.erdos_renyi ~rng:(rng 3)
      { Pbqp.Generate.default with n = 50; m; p_edge = 0.3 }
  in
  let net = Nn.Pvnet.create ~rng:(rng 1) (Nn.Pvnet.default_config ~m) in
  (* Bare state transitions: color every vertex down to the complete
     state, then (incrementally) undo back — vs rebuilding the chain of
     persistent copies.  One op = a full down-and-up walk. *)
  let depth = Pbqp.Graph.n_alive g in
  let first_legal legal =
    let rec go c = if c >= m then invalid_arg "no legal color" else
      if legal c then c else go (c + 1)
    in
    go 0
  in
  show ~name:(Printf.sprintf "apply chain x%d, persistent copies" depth)
    (measure (fun () ->
         let st = ref (Core.State.of_graph g) in
         for _ = 1 to depth do
           st := Core.State.apply !st (first_legal (Core.State.legal !st))
         done));
  let ist = Core.Istate.of_graph g in
  show ~name:(Printf.sprintf "apply/undo chain x%d, trail" depth)
    (measure (fun () ->
         for _ = 1 to depth do
           Core.Istate.apply ist (first_legal (Core.Istate.legal ist))
         done;
         for _ = 1 to depth do
           Core.Istate.undo ist
         done));
  (* Whole self-play episodes, k = 12, batched leaf evaluation (the
     tensor inference path, as production self-play runs it — the scalar
     path builds a per-leaf autodiff graph whose allocations would bury
     the state machinery this group measures).  Headline metric: >= 30%
     fewer allocations per episode with --incremental. *)
  let cfg =
    {
      Core.Episode.default_config with
      Core.Episode.mcts = { Mcts.default_config with k = 12; batch = 8 };
    }
  in
  let episode ?cache ~incremental () =
    let play =
      if incremental then Core.Episode.play_incremental else Core.Episode.play
    in
    ignore
      (play ?cache ~rng:(rng 7) ~net ~mode:Core.Game.Feasibility cfg
         (Core.State.of_graph g))
  in
  let persistent = measure (episode ~incremental:false) in
  show ~name:"episode k=12, persistent" persistent;
  let incremental = measure (episode ~incremental:true) in
  show ~name:"episode k=12, incremental" incremental;
  (* The same episodes with a transposition cache: repeated runs of one
     instance under fixed weights hit the cache (MCTS re-searches the
     same positions move after move, run after run), so the per-leaf GCN
     readout — identical in both modes and the dominant allocator above —
     collapses to cache lookups and what remains is the state machinery
     the trail eliminates.  This cached pair is the headline >= 30%
     allocation-reduction comparison. *)
  let cached_pair incremental =
    let cache = Nn.Cache.local ~capacity:4096 in
    let mm = measure (episode ~cache ~incremental) in
    (mm, Nn.Cache.stats cache)
  in
  let p_cached, p_stats = cached_pair false in
  show ~cache_stats:p_stats ~name:"episode k=12, persistent + cache 4096"
    p_cached;
  let i_cached, i_stats = cached_pair true in
  show ~cache_stats:i_stats ~name:"episode k=12, incremental + cache 4096"
    i_cached;
  Printf.printf "  -> allocations: %.0f -> %.0f w/episode (%.0f%% fewer)\n%!"
    p_cached.m_allocs i_cached.m_allocs
    (100. *. (1. -. (i_cached.m_allocs /. p_cached.m_allocs)));
  (* Hit-rate sweep over cache capacities: two identical episodes per
     data point (warm-up + measured traffic), counters reset between
     capacities. *)
  List.iter
    (fun capacity ->
      let cache = Nn.Cache.local ~capacity in
      let run = episode ~cache ~incremental:true in
      run ();
      let m = measure ~min_time:0.0 ~min_iters:2 run in
      show ~cache_stats:(Nn.Cache.stats cache)
        ~name:(Printf.sprintf "episode k=12, cache sweep cap=%d" capacity)
        m)
    [ 64; 256; 1024; 4096 ]

(* ------------------------------------------------------------------ *)
(* Inference-service benchmarks: the zero-allocation scratch-arena
   forward against the allocating baseline, then self-play episode
   throughput with per-worker batching vs the cross-worker coalescing
   service at 1/2/4/8 domains, normalized to ns per network leaf
   evaluation (counted by Pvnet.eval_count, summed over replicas).
   Service and per-worker episodes are bit-identical at every
   (j, batch, wait) setting — the @serve test alias asserts it — so
   leaf-eval throughput is the only variable.  GC words are main-domain
   only, as in the par group. *)

(* ------------------------------------------------------------------ *)
(* The GEMM ladder at the serve forward's shapes: the boxed
   [float array array] reference the flat tensor core replaced (and the
   hot-boxed-matrix lint now rejects), the flat tiled kernels, the
   packed fused-epilogue kernel, and the int8 quantized kernel.  All
   float kernels compute the same ascending-k zero-skip sums, so the
   rows differ only in storage layout and fusion, not arithmetic. *)

let gemm_bench () =
  section "GEMM ladder: boxed reference vs flat tiled vs packed vs int8";
  let show ~name m =
    record ~group:"gemm" ~name ~iters:m.m_iters ~ns_per_op:m.m_ns
      ~allocs_per_op:m.m_allocs ~minor_words_per_op:m.m_minor
      ~major_words_per_op:m.m_major ();
    Printf.printf "  %-48s %11.1f ns/op  %9.1f minor w/op\n%!" name m.m_ns
      m.m_minor
  in
  let r = rng 5 in
  (* the readout->trunk GEMM shape of a b=32 serve forward *)
  let b = 32 and k = 96 and n = 32 in
  let a = Tensor.init2 b k (fun _ _ -> Random.State.float r 2.0 -. 1.0) in
  let w = Tensor.init2 n k (fun _ _ -> Random.State.float r 2.0 -. 1.0) in
  let bias = Tensor.init1 n (fun _ -> Random.State.float r 0.5) in
  (* boxed row-pointer reference: one heap block per row, same
     zero-skip inner loop as the flat kernels *)
  let boxed_a =
    Array.init b (fun i -> Array.init k (fun j -> Tensor.get2 a i j))
  in
  let boxed_bt =
    Array.init k (fun kk -> Array.init n (fun j -> Tensor.get2 w j kk))
  in
  let boxed_out = Array.make_matrix b n 0.0 in
  let boxed () =
    for i = 0 to b - 1 do
      let ai = boxed_a.(i) and oi = boxed_out.(i) in
      Array.fill oi 0 n 0.0;
      for kk = 0 to k - 1 do
        let aik = ai.(kk) in
        if aik <> 0.0 then begin
          let bk = boxed_bt.(kk) in
          for j = 0 to n - 1 do
            oi.(j) <- oi.(j) +. (aik *. bk.(j))
          done
        end
      done
    done
  in
  let bt = Tensor.transpose w in
  let out = Tensor.zeros [| b; n |] in
  let packed = Tensor.pack_transposed w in
  let qw = Tensor.Q.quantize_rows w in
  let qscr = Tensor.Q.scratch ~rows:b ~cols:k in
  show
    ~name:(Printf.sprintf "boxed float array array %dx%dx%d" b k n)
    (measure boxed);
  show ~name:"matmul_naive (flat)"
    (measure (fun () -> ignore (Tensor.matmul_naive a bt)));
  show ~name:"matmul (flat tiled)"
    (measure (fun () -> ignore (Tensor.matmul a bt)));
  show ~name:"matmul_into (flat tiled, no alloc)"
    (measure (fun () -> Tensor.matmul_into out a bt));
  show ~name:"matmul_packed_into (no epilogue)"
    (measure (fun () -> Tensor.matmul_packed_into out a packed));
  show ~name:"matmul_packed_into (fused bias+relu)"
    (measure (fun () ->
         Tensor.matmul_packed_into ~bias ~relu:true out a packed));
  show ~name:"Q.matmul_qt_into (int8, fused bias+relu)"
    (measure (fun () ->
         Tensor.Q.matmul_qt_into ~bias ~relu:true ~scratch:qscr out a qw))

(* ------------------------------------------------------------------ *)

let serve_bench () =
  section "Cross-worker inference service (Nn.Infer) at 1/2/4/8 domains";
  Printf.printf
    "host reports %d recommended domain(s); on a 1-core host the pool rows\n\
     measure oversubscription, so the meaningful comparison is service vs\n\
     per-worker at the SAME j, not across j.\n\n"
    (Domain.recommended_domain_count ());
  let show ?(leaves = 1.0) ~name m =
    (* per-leaf numbers, so --compare tracks leaf-eval throughput *)
    record ~group:"serve" ~name ~iters:m.m_iters ~ns_per_op:(m.m_ns /. leaves)
      ~allocs_per_op:(m.m_allocs /. leaves)
      ~minor_words_per_op:(m.m_minor /. leaves)
      ~major_words_per_op:(m.m_major /. leaves) ();
    Printf.printf "  %-46s %9.1f ns/leaf  %9.0f leaf/s  %7.1f minor w/leaf\n%!"
      name (m.m_ns /. leaves)
      (1e9 /. (m.m_ns /. leaves))
      (m.m_minor /. leaves)
  in
  let m = 13 in
  let net = Nn.Pvnet.create ~rng:(rng 1) (Nn.Pvnet.default_config ~m) in
  (* Scratch-arena ablation: one coalesced 32-leaf forward, allocating
     vs arena-backed.  Runs on the main domain, so the minor-word
     counters are exact — this is the headline fewer-GC-words-per-leaf
     comparison. *)
  let gbig =
    Pbqp.Generate.erdos_renyi ~rng:(rng 2)
      { Pbqp.Generate.default with n = 40; m; p_edge = 0.15 }
  in
  let preps =
    Array.map
      (fun v -> Nn.Pvnet.prepare net gbig ~next:v)
      (Array.of_list
         (List.filteri (fun i _ -> i < 32) (Pbqp.Graph.vertices gbig)))
  in
  let b = float_of_int (Array.length preps) in
  show ~leaves:b ~name:"predict_prepared b=32, allocating"
    (measure (fun () ->
         ignore (Nn.Pvnet.predict_prepared ~scratch:false net preps)));
  show ~leaves:b ~name:"predict_prepared b=32, scratch arena"
    (measure (fun () -> ignore (Nn.Pvnet.predict_prepared net preps)));
  (* the int8 serving path, via the ungated entry point the
     certification harness itself measures *)
  show ~leaves:b ~name:"predict_prepared b=32, int8 quantized"
    (measure (fun () ->
         ignore (Nn.Pvnet.predict_prepared_quantized_unsafe net preps)));
  (* Episode throughput: 8 fixed incremental self-play episodes per op,
     farmed over the pool, per-worker batching vs the service. *)
  let episodes = 8 in
  let graphs =
    Array.init episodes (fun i ->
        Pbqp.Generate.erdos_renyi ~rng:(rng (40 + i))
          { Pbqp.Generate.default with n = 20; m; p_edge = 0.25 })
  in
  let cfg =
    {
      Core.Episode.default_config with
      Core.Episode.mcts = { Mcts.default_config with k = 12; batch = 8 };
    }
  in
  let run pool replicas serve () =
    ignore
      (Par.Pool.map pool (Array.init episodes Fun.id) ~f:(fun ~worker i ->
           Core.Episode.play_incremental ?serve ~rng:(rng (70 + i))
             ~net:replicas.(worker) ~mode:Core.Game.Feasibility cfg
             (Core.State.of_graph graphs.(i))))
  in
  List.iter
    (fun j ->
      let pool = Par.Pool.create ~domains:j in
      let nw = Par.Pool.size pool in
      let replicas =
        Array.init nw (fun w -> if w = 0 then net else Nn.Pvnet.clone net)
      in
      (* episodes are deterministic, so one counted run fixes the
         per-op leaf total for both variants at every j *)
      Array.iter Nn.Pvnet.reset_eval_count replicas;
      run pool replicas None ();
      let leaves =
        float_of_int
          (Array.fold_left (fun a r -> a + Nn.Pvnet.eval_count r) 0 replicas)
      in
      show ~leaves
        ~name:(Printf.sprintf "episodes x%d j=%d per-worker (b=8)" episodes j)
        (measure (run pool replicas None));
      let srv = Nn.Infer.create ~max_batch:32 ~wait_us:200 ~workers:nw () in
      show ~leaves
        ~name:(Printf.sprintf "episodes x%d j=%d service (b<=32)" episodes j)
        (measure (run pool replicas (Some srv)));
      let s = Nn.Infer.stats srv in
      if s.Nn.Infer.batches > 0 then
        Printf.printf
          "      service: %d batches (%d full, %d timeout), %.1f rows/batch, \
           largest %d, queue wait p50/p99 %.0f/%.0f us\n\
           %!"
          s.Nn.Infer.batches s.Nn.Infer.full_flushes s.Nn.Infer.timeout_flushes
          (float_of_int s.Nn.Infer.rows /. float_of_int s.Nn.Infer.batches)
          s.Nn.Infer.max_batch_rows s.Nn.Infer.wait_p50_us
          s.Nn.Infer.wait_p99_us;
      Par.Pool.shutdown pool)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Static analysis over the repo's own sources (lib/analyze): the wall
   cost of the @analyze CI gate — parse every .ml under lib/ and bin/,
   build the symbol registry and run all three rule families.  Skipped
   when the source tree is not visible from the cwd. *)

let analyze_bench () =
  section "Static analysis (pbqp_analyze over lib/ + bin/)";
  if not (Sys.file_exists "lib" && Sys.file_exists "bin") then
    Printf.printf "  skipped: ./lib and ./bin not visible from the cwd\n"
  else begin
    let roots = [ "lib"; "bin" ] in
    let warm = Analyze.run ~roots in
    let iters = 5 in
    let (), dt =
      time_it (fun () ->
          for _ = 1 to iters do
            ignore (Analyze.run ~roots)
          done)
    in
    let ns = dt /. float_of_int iters *. 1e9 in
    record ~group:"analyze" ~name:"whole-repo pass (lib+bin)" ~iters
      ~ns_per_op:ns ~allocs_per_op:0.0 ();
    Printf.printf "  %d files, %d findings, %.1f ms per pass (%d passes)\n%!"
      warm.Analyze.files
      (List.length warm.Analyze.findings)
      (ns /. 1e6) iters
  end

(* ------------------------------------------------------------------ *)
(* Optimality gap vs the proven optimum (the `gap` group): four graph
   families, each instance's optimum proven by the exact branch-and-bound
   solver (Solvers.Exact), then every heuristic's mean gap to it —
   classic solvers plus the Deep-RL search (the trained cached nets for
   the CPU and ATE families, an untrained net as an off-policy floor for
   the synthetic ones).  One JSON row per family: the compared metric is
   mean branch-and-bound nodes per proof (deterministic — see the note
   at the record call); the gap means, counts and mean proof wall time
   ride along as extra fields for EXPERIMENTS.md. *)

let gap_asymmetric ~seed ~n ~m =
  let rng = rng seed in
  let g = Pbqp.Graph.create ~m ~n in
  for u = 0 to n - 1 do
    Pbqp.Graph.set_cost g u
      (Pbqp.Vec.init m (fun _ -> float_of_int (Random.State.int rng 10)))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.4 then
        Pbqp.Graph.add_edge g u v
          (Pbqp.Mat.init ~rows:m ~cols:m (fun i j ->
               if i = j && Random.State.int rng 4 = 0 then Pbqp.Cost.inf
               else
                 float_of_int (Random.State.int rng 6)
                 +. (3.0 *. float_of_int i)
                 +. float_of_int j))
    done
  done;
  g

let gap_untrained ~m =
  Nn.Pvnet.create ~rng:(rng (90 + m))
    { (Nn.Pvnet.default_config ~m) with trunk_width = 16; trunk_blocks = 1;
      gcn_layers = 2 }

let gap_families () =
  let er ~seed ~n ~m ~p_edge ~p_inf ~cost_max =
    Pbqp.Generate.erdos_renyi ~rng:(rng seed)
      { Pbqp.Generate.n; m; p_edge; p_inf; cost_max; zero_inf = false;
        min_liberty = 1 }
  in
  [
    ( "cpu9",
      List.init 12 (fun i ->
          er ~seed:(8100 + i) ~n:(12 + (i mod 5)) ~m:Cir.Alloc_pbqp.num_colors
            ~p_edge:0.22 ~p_inf:0.01 ~cost_max:30.0),
      Some ("rl (cpu_k24)", cpu_net) );
    ( "ate13",
      List.init 12 (fun i ->
          fst
            (Pbqp.Generate.planted ~rng:(rng (8200 + i))
               { Pbqp.Generate.default with n = 12 + (i mod 5); m = 13;
                 p_edge = 0.2; p_inf = 0.4; zero_inf = true })),
      Some ("rl (ate_k12)", ate_net_12) );
    ( "dense3",
      List.init 12 (fun i ->
          er ~seed:(8300 + i) ~n:(10 + (i mod 4)) ~m:3 ~p_edge:0.85
            ~p_inf:0.1 ~cost_max:10.0),
      Some ("rl (untrained)", lazy (gap_untrained ~m:3)) );
    ( "asym4",
      List.init 12 (fun i ->
          gap_asymmetric ~seed:(8400 + i) ~n:(8 + (i mod 4)) ~m:4),
      Some ("rl (untrained)", lazy (gap_untrained ~m:4)) );
  ]

let gap_bench () =
  section "Optimality gap vs proven optimum (exact branch-and-bound)";
  List.iter
    (fun (family, graphs, rl) ->
      let columns =
        [ "scholz"; "mrv"; "liberty"; "greedy" ]
        @ match rl with Some (label, _) -> [ label ] | None -> []
      in
      let sums = Hashtbl.create 8 in
      let bump name gap =
        let s, c = try Hashtbl.find sums name with Not_found -> (0.0, 0) in
        Hashtbl.replace sums name (s +. gap, c + 1)
      in
      let proven = ref 0
      and infeasible = ref 0
      and timeout = ref 0
      and t_exact = ref 0.0
      and nodes_exact = ref 0 in
      List.iter
        (fun g ->
          let (outcome, st), dt =
            time_it (fun () -> Solvers.Exact.solve ~max_nodes:2_000_000 g)
          in
          t_exact := !t_exact +. dt;
          nodes_exact := !nodes_exact + st.Solvers.Exact.nodes;
          match outcome with
          | Solvers.Exact.Timeout _ -> incr timeout
          | Solvers.Exact.Infeasible -> incr infeasible
          | Solvers.Exact.Optimal (_, opt) ->
              incr proven;
              let gap c =
                (Pbqp.Cost.to_float c -. Pbqp.Cost.to_float opt)
                /. Float.max 1.0 (Float.abs (Pbqp.Cost.to_float opt))
              in
              let runs =
                [
                  ("scholz",
                   let _, c, _ = Solvers.Scholz.solve_with_cost g in
                   if Pbqp.Cost.is_finite c then Some c else None);
                  ("mrv",
                   Option.map
                     (fun s -> Pbqp.Solution.cost g s)
                     (fst (Solvers.Mrv.solve ~max_states:50_000 g)));
                  ("liberty",
                   Option.map
                     (fun s -> Pbqp.Solution.cost g s)
                     (fst (Solvers.Liberty.solve ~max_states:50_000 g)));
                  ("greedy", Option.map snd (fst (Solvers.Greedy.solve g)));
                ]
                @
                match rl with
                | None -> []
                | Some (label, net) ->
                    [ ( label,
                        Option.map snd
                          (fst
                             (Core.Solver.minimize ~net:(Lazy.force net)
                                ~mcts:{ Mcts.default_config with k = 16 }
                                g)) ) ]
              in
              List.iter
                (fun (name, c) ->
                  match c with Some c -> bump name (gap c) | None -> ())
                runs)
        graphs;
      let n = List.length graphs in
      Printf.printf
        "  %-7s %d graphs: %d proven, %d infeasible, %d timeout; mean exact \
         proof %.1f ms, %d nodes/proof\n"
        family n !proven !infeasible !timeout
        (!t_exact /. float_of_int n *. 1e3)
        (!nodes_exact / n);
      let extra = ref [] in
      List.iter
        (fun name ->
          match Hashtbl.find_opt sums name with
          | Some (s, c) when c > 0 ->
              let mean = 100.0 *. s /. float_of_int c in
              Printf.printf "    %-16s mean gap %+7.2f%%  (%d/%d solved)\n"
                name mean c !proven;
              (* stable JSON keys: strip the rl column's net suffix *)
              let key =
                if String.length name >= 2 && String.sub name 0 2 = "rl" then
                  "rl"
                else name
              in
              extra :=
                (Printf.sprintf "gap_%s_pct" key, mean)
                :: (Printf.sprintf "solved_%s" key, float_of_int c)
                :: !extra
          | _ -> Printf.printf "    %-16s no solutions\n" name)
        columns;
      (* The --compare gate watches ns_per_op, but wall time on a shared
         host swings far past the 25% threshold between identical runs.
         The prover is deterministic, so gate on branch-and-bound nodes
         per proof instead — bit-identical across runs, and a growth
         there is a real algorithmic regression (weakened bound or
         branching), which is what matters for an exact solver.  Wall
         time rides along as an informational extra field. *)
      record ~group:"gap" ~name:(family ^ " nodes/proof") ~iters:n
        ~ns_per_op:(float_of_int !nodes_exact /. float_of_int n)
        ~allocs_per_op:0.0
        ~extra:
          (List.rev !extra
          @ [
              ("proof_ms_mean", !t_exact /. float_of_int n *. 1e3);
              ("proven", float_of_int !proven);
              ("infeasible", float_of_int !infeasible);
              ("timeout", float_of_int !timeout);
            ])
        ())
    (gap_families ())

(* ------------------------------------------------------------------ *)
(* The allocation daemon (Serve.Daemon over a real Unix socket):
   requests/s, p50/p99 latency, and leaf-evals/s at 1/4/16 concurrent
   clients, for coalesced serving (shared Nn.Infer batches + shared
   striped cache) against the per-request ablation (--no-coalesce:
   process-per-request semantics, nothing shared).  The acceptance gate
   — coalesced >= 1.5x the ablation's requests/s at 4+ clients, and a
   mean coalesced batch size > 1 — is evaluated WITHIN one run, so host
   speed cancels; failures are collected here and only flunk the
   process after --json/--compare have written their outputs. *)

let gate_failures : string list ref = ref []

let daemon_bench () =
  section
    "Allocation service (pbqp_serve): coalesced vs per-request at 1/4/16 \
     clients";
  let m = 13 in
  let net = Nn.Pvnet.create ~rng:(rng 11) (Nn.Pvnet.default_config ~m) in
  (* a small rotation of distinct instances, revisited across requests:
     the steady-state shape a compile server sees (recompiles of the
     same functions), which is what the shared version-stamped cache
     and cross-request batches exploit *)
  let n_graphs = 12 in
  let bodies =
    Array.init n_graphs (fun i ->
        Pbqp.Io.to_string
          (Pbqp.Generate.erdos_renyi ~rng:(rng (300 + i))
             { Pbqp.Generate.default with n = 10 + (i mod 4); m; p_edge = 0.3 }))
  in
  let params = { Serve.Wire.default_params with solver = "rl"; k = 6 } in
  (* 96 requests over 12 instances = 8 visits each: enough steady
     state that the shared cache/batches, not the cold first pass,
     set the throughput *)
  let total = 96 in
  let run_scenario ~coalesce ~clients =
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pbqp_bench_%d_%b_%d.sock" (Unix.getpid ()) coalesce
           clients)
    in
    (try Unix.unlink sock with Unix.Unix_error _ -> ());
    let config =
      { Serve.Daemon.default_config with socket_path = sock; workers = 2;
        queue_cap = 256; coalesce }
    in
    let t = Serve.Daemon.create ~config (Nn.Pvnet.clone net) in
    let d = Domain.spawn (fun () -> Serve.Daemon.run t) in
    let per = total / clients in
    let lats = Array.make total 0.0 in
    let t0 = Unix.gettimeofday () in
    let drivers =
      Array.init clients (fun ci ->
          Domain.spawn (fun () ->
              let c = Serve.Client.connect_unix sock in
              Fun.protect
                ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  for r = 0 to per - 1 do
                    let body = bodies.((ci + (r * clients)) mod n_graphs) in
                    let u0 = Unix.gettimeofday () in
                    (match
                       Serve.Client.request c (Serve.Wire.Pbqp (params, body))
                     with
                    | Ok (Serve.Wire.Solution _) -> ()
                    | Ok _ -> failwith "daemon_bench: unexpected reply kind"
                    | Error e -> failwith ("daemon_bench: " ^ e));
                    lats.((ci * per) + r) <- Unix.gettimeofday () -. u0
                  done)))
    in
    Array.iter Domain.join drivers;
    let wall = Unix.gettimeofday () -. t0 in
    let stats =
      let c = Serve.Client.connect_unix sock in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.request c Serve.Wire.Stats with
          | Ok (Serve.Wire.Stats_reply kvs) -> kvs
          | _ -> [])
    in
    Serve.Daemon.stop t;
    Domain.join d;
    Array.sort compare lats;
    let pct p = lats.(min (total - 1) (p * total / 100)) in
    let kv key = Option.value ~default:"0" (List.assoc_opt key stats) in
    ( wall,
      pct 50 *. 1e3,
      pct 99 *. 1e3,
      float_of_string (kv "eval_count") /. wall,
      float_of_string (kv "infer_rows_per_batch"),
      float_of_string (kv "cache_hit_rate"),
      float_of_string (kv "infer_wait_p50_us"),
      float_of_string (kv "infer_wait_p99_us") )
  in
  let results = Hashtbl.create 8 in
  List.iter
    (fun clients ->
      List.iter
        (fun coalesce ->
          let name =
            Printf.sprintf "%s C=%d"
              (if coalesce then "coalesced" else "per-request")
              clients
          in
          let wall, p50, p99, evals_s, rpb, hit_rate, w50, w99 =
            run_scenario ~coalesce ~clients
          in
          let rps = float_of_int total /. wall in
          Hashtbl.replace results (coalesce, clients) (rps, rpb);
          (* leaf_evals_per_s counts network forwards only; coalesced
             rows also share an evaluation cache that short-circuits
             repeat leaves entirely, so a LOWER forwards/s with a high
             cache_hit_rate is the service doing less work per request,
             not running slower — always read the two together *)
          record ~group:"daemon" ~name ~iters:total
            ~ns_per_op:(wall /. float_of_int total *. 1e9)
            ~allocs_per_op:0.0
            ~extra:
              [
                ("rps", rps);
                ("p50_ms", p50);
                ("p99_ms", p99);
                ("leaf_evals_per_s", evals_s);
                ("cache_hit_rate", hit_rate);
                ("rows_per_batch", rpb);
                ("infer_wait_p50_us", w50);
                ("infer_wait_p99_us", w99);
              ]
            ();
          Printf.printf
            "  %-18s %7.1f req/s  p50 %7.2f ms  p99 %7.2f ms  %8.0f leaf/s  \
             (%.0f%% cache)  %5.2f rows/batch  wait p50/p99 %.0f/%.0f us\n\
             %!"
            name rps p50 p99 evals_s (hit_rate *. 100.0) rpb w50 w99)
        [ false; true ])
    [ 1; 4; 16 ];
  List.iter
    (fun clients ->
      match
        ( Hashtbl.find_opt results (true, clients),
          Hashtbl.find_opt results (false, clients) )
      with
      | Some (crps, rpb), Some (arps, _) ->
          let speedup = crps /. arps in
          Printf.printf
            "  C=%d: coalesced is %.2fx per-request (gate >= 1.50x), %.2f \
             rows/batch (gate > 1)\n\
             %!"
            clients speedup rpb;
          if speedup < 1.5 then
            gate_failures :=
              Printf.sprintf
                "daemon C=%d: coalesced %.2fx per-request requests/s, below \
                 the 1.5x gate"
                clients speedup
              :: !gate_failures;
          if rpb <= 1.0 then
            gate_failures :=
              Printf.sprintf
                "daemon C=%d: mean coalesced batch size %.2f, gate needs > 1"
                clients rpb
              :: !gate_failures
      | _ -> ())
    [ 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Distributed actor/learner self-play (lib/dist): whole training runs
   with domain-hosted actors over socketpairs — the same Frame wire
   protocol as the subprocess topology, minus fork/exec.  On this
   1-core bench host the actor domains oversubscribe the core, so the
   actors=2/4 rows measure protocol + framing overhead under
   contention, NOT parallel speedup; the meaningful comparison is
   actors=1 vs in-process, which is bit-identical by construction
   (test_dist asserts it), so that row IS the determinism overhead of
   distribution: snapshot broadcasts, sample framing, hub pumping. *)

let dist_bench () =
  section "Distributed self-play (lib/dist): in-process vs actors=1/2/4";
  Printf.printf
    "host reports %d recommended domain(s); on a 1-core host the actor\n\
     rows measure wire/protocol overhead, not parallel speedup.\n\
     actors=1 is bit-identical to the in-process loop (test_dist), so\n\
     wall_vs_in_process on that row is pure distribution overhead.\n\n"
    (Domain.recommended_domain_count ());
  let m = 8 in
  let iterations = 2 and episodes = 8 and batches = 4 in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations;
      episodes_per_iteration = episodes;
      domains = 1;
      mcts = { Mcts.default_config with k = 8 };
      net =
        { (Nn.Pvnet.default_config ~m) with trunk_width = 16;
          trunk_blocks = 1; gcn_layers = 2 };
      n_mean = 12.0;
      n_stddev = 2.0;
      arena_games = 2;
      batches_per_iteration = batches;
      batch_size = 16;
    }
  in
  let run_once ~actors =
    let samples = ref 0 in
    let on_iteration p = samples := p.Core.Train.replay_size in
    let (), wall =
      time_it (fun () ->
          let net =
            match actors with
            | 0 -> Core.Train.run ~on_iteration ~rng:(rng 7) cfg
            | n ->
                let launch, join = Dist.Spawn.domains ~config:cfg in
                Core.Train.run ~on_iteration
                  ~make_source:
                    (Dist.Learner.source ~config:cfg ~actors:n
                       ~on_shutdown:join ~launch ())
                  ~rng:(rng 7) cfg
          in
          ignore (net : Nn.Pvnet.t))
    in
    (wall, !samples)
  in
  let baseline = ref 0.0 in
  List.iter
    (fun actors ->
      let wall, samples = run_once ~actors in
      let name =
        if actors = 0 then "in-process (actors=0)"
        else Printf.sprintf "actors=%d (domain-hosted)" actors
      in
      let samples_s = float_of_int samples /. wall in
      let steps_s = float_of_int (iterations * batches) /. wall in
      if actors = 0 then baseline := wall;
      let overhead = if !baseline > 0.0 then wall /. !baseline else 1.0 in
      record ~group:"dist" ~name ~iters:iterations
        ~ns_per_op:(wall /. float_of_int iterations *. 1e9)
        ~allocs_per_op:0.0
        ~extra:
          [
            ("samples_per_s", samples_s);
            ("learner_steps_per_s", steps_s);
            ("wall_vs_in_process", overhead);
          ]
        ();
      Printf.printf
        "  %-26s %6.2f s  %8.1f samples/s  %6.2f step/s  %5.2fx in-process\n\
         %!"
        name wall samples_s steps_s overhead)
    [ 0; 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* --compare OLD.json: after the selected groups have run, diff the
   freshly recorded rows against a previous --json file (matched by
   (group, name)) and exit non-zero on any >25% ns/op regression.  The
   parser is line-based over the bench's own output format — no JSON
   dependency. *)

let find_sub s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go 0

let str_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  Option.map
    (fun i ->
      let start = i + String.length pat in
      String.sub line start (String.index_from line start '"' - start))
    (find_sub line pat)

let num_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  Option.map
    (fun i ->
      let start = i + String.length pat in
      let stop = ref start in
      while
        !stop < String.length line
        && not (String.contains ",}" line.[!stop])
      do
        incr stop
      done;
      float_of_string (String.trim (String.sub line start (!stop - start))))
    (find_sub line pat)

let parse_bench_rows path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           match (str_field line "group", str_field line "name",
                  num_field line "ns_per_op")
           with
           | Some g, Some n, Some ns -> rows := ((g, n), ns) :: !rows
           | _ -> ()
         done
       with End_of_file -> ());
      List.rev !rows)

let compare_against path =
  let old_rows = parse_bench_rows path in
  section (Printf.sprintf "compare vs %s (fail on ns/op > 1.25x)" path);
  let regressed = ref 0 and matched = ref 0 in
  List.iter
    (fun r ->
      match List.assoc_opt (r.r_group, r.r_name) old_rows with
      | Some old_ns when old_ns > 0.0 && r.r_ns > 0.0 ->
          incr matched;
          let ratio = r.r_ns /. old_ns in
          if ratio > 1.25 then begin
            incr regressed;
            Printf.printf "  %-52s %12.1f -> %12.1f ns/op  %.2fx REGRESSION\n"
              (r.r_group ^ "/" ^ r.r_name)
              old_ns r.r_ns ratio
          end
          else
            Printf.printf "  %-52s %12.1f -> %12.1f ns/op  %.2fx\n"
              (r.r_group ^ "/" ^ r.r_name)
              old_ns r.r_ns ratio
      | _ -> ())
    (List.rev !json_results);
  if !matched = 0 then
    Printf.printf "  (no rows of this run matched %s)\n" path;
  if !regressed > 0 then begin
    Printf.eprintf "%d throughput regression(s) > 25%% vs %s\n" !regressed path;
    exit 1
  end
  else Printf.printf "  ok: no regression > 25%% across %d matched row(s)\n"
      !matched

(* ------------------------------------------------------------------ *)

let () =
  let which = ref "all" in
  let compare_ref = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse rest
    | [ "--json" ] ->
        Printf.eprintf "--json needs a PATH argument\n";
        exit 1
    | "--compare" :: path :: rest ->
        compare_ref := Some path;
        parse rest
    | [ "--compare" ] ->
        Printf.eprintf "--compare needs an OLD.json argument\n";
        exit 1
    | a :: rest ->
        which := a;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "PBQP-RL benchmark harness — reproducing the evaluation of\n\
     \"Solving PBQP-Based Register Allocation using Deep Reinforcement \
     Learning\" (CGO 2022)\n";
  (match !which with
  | "e1" -> e1 ()
  | "e2" -> e2 ()
  | "e3" -> e3 ()
  | "e4" -> e4 ()
  | "e5" -> e5 ()
  | "e6" -> e6 ()
  | "ext" -> ext ()
  | "micro" -> micro ()
  | "batch" -> batching ()
  | "par" -> par_bench ()
  | "incr" -> incr_bench ()
  | "gemm" -> gemm_bench ()
  | "serve" -> serve_bench ()
  | "analyze" -> analyze_bench ()
  | "gap" -> gap_bench ()
  | "daemon" -> daemon_bench ()
  | "dist" -> dist_bench ()
  | "all" ->
      e1 ();
      e2 ();
      e3 ();
      e4 ();
      e5 ();
      e6 ();
      ext ();
      micro ();
      batching ();
      par_bench ();
      incr_bench ();
      gemm_bench ();
      serve_bench ();
      analyze_bench ();
      gap_bench ();
      daemon_bench ();
      dist_bench ()
  | other ->
      Printf.eprintf
        "unknown experiment %S (e1..e6, ext, micro, batch, par, incr, gemm, \
         serve, analyze, gap, daemon, dist, all)\n"
        other;
      exit 1);
  (match !json_out with
  | Some path ->
      write_json path;
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match !compare_ref with
  | Some path -> compare_against path
  | None -> ());
  (* the daemon acceptance gate flunks last, AFTER --json/--compare
     have written their outputs, so a failing run still leaves the
     numbers behind for inspection *)
  (match List.rev !gate_failures with
  | [] -> ()
  | fails ->
      List.iter (fun f -> Printf.eprintf "GATE FAIL: %s\n" f) fails;
      exit 1);
  Printf.printf "\ntotal wall time: %.0fs\n" (Unix.gettimeofday () -. t0)
