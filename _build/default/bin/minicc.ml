(* CLI: the MiniC compiler — compile, allocate with a chosen allocator,
   and run on the VCPU simulator. *)

open Cmdliner

let kind_of name net_path k =
  match name with
  | "fast" -> Ok Cir.Driver.Fast
  | "basic" -> Ok Cir.Driver.Basic
  | "greedy" -> Ok Cir.Driver.Greedy
  | "pbqp" -> Ok Cir.Driver.Pbqp
  | "pbqp-rl" -> (
      match net_path with
      | None -> Error "--net is required for pbqp-rl"
      | Some path ->
          Ok
            (Cir.Driver.Pbqp_rl
               (Nn.Pvnet.load path, { Mcts.default_config with k })))
  | other -> Error (Printf.sprintf "unknown allocator %S" other)

let run input builtin alloc net k dump_ir optimize =
  let src =
    match (input, builtin) with
    | Some path, None ->
        Ok (In_channel.with_open_text path In_channel.input_all)
    | None, Some name -> (
        match Cir.Programs.find name with
        | src -> Ok src
        | exception Not_found ->
            Error
              (Printf.sprintf "unknown builtin %S (known: %s)" name
                 (String.concat ", " Cir.Programs.names)))
    | _ -> Error "give exactly one of FILE or --builtin"
  in
  match src with
  | Error e -> `Error (true, e)
  | Ok src -> (
      let ir = Cir.Lower.compile src in
      let ir = if optimize then Cir.Opt.run ir else ir in
      if dump_ir then begin
        Format.printf "%a@." Cir.Ir.pp_program ir;
        `Ok ()
      end
      else
        match kind_of alloc net k with
        | Error e -> `Error (false, e)
        | Ok kind ->
            let r = Cir.Driver.run kind ir in
            List.iter print_endline r.Cir.Driver.outcome.Cir.Msim.output;
            Printf.printf
              "; allocator=%s cycles=%d spills=%d%s\n"
              (Cir.Driver.alloc_kind_name kind)
              r.Cir.Driver.outcome.Cir.Msim.cycles r.Cir.Driver.spills
              (match r.Cir.Driver.pbqp_cost with
              | Some c -> Printf.sprintf " pbqp-cost=%s" (Pbqp.Cost.to_string c)
              | None -> "");
            `Ok ())

let () =
  let input =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MiniC source file")
  in
  let builtin =
    Arg.(value & opt (some string) None
         & info [ "builtin" ] ~docv:"NAME"
             ~doc:"run a builtin benchmark instead of a file")
  in
  let alloc =
    Arg.(value & opt string "greedy"
         & info [ "alloc"; "a" ]
             ~doc:"one of: fast, basic, greedy, pbqp, pbqp-rl")
  in
  let net =
    Arg.(value & opt (some file) None
         & info [ "net" ] ~docv:"CKPT" ~doc:"Pvnet checkpoint (pbqp-rl)")
  in
  let k = Arg.(value & opt int 60 & info [ "k" ] ~doc:"MCTS simulations") in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"print the IR and exit")
  in
  let optimize =
    Arg.(value & flag
         & info [ "O"; "optimize" ]
             ~doc:"run constant folding / copy propagation / DCE first")
  in
  let cmd =
    Cmd.v
      (Cmd.info "minicc" ~doc:"Compile and run MiniC programs on the VCPU")
      Term.(
        ret (const run $ input $ builtin $ alloc $ net $ k $ dump_ir $ optimize))
  in
  exit (Cmd.eval cmd)
