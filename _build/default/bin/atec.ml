(* CLI: the ATE "compiler" — allocate registers for a test-pattern
   program (the translation workflow of the paper's SII-B), or dump the
   synthetic PRO benchmark programs. *)

open Cmdliner


let solver_of name net_path k =
  match name with
  | "liberty" ->
      Ok
        (fun g ->
          fst (Solvers.Liberty.solve ~max_liberty:13 ~max_states:2_000_000 g))
  | "scholz" ->
      Ok
        (fun g ->
          let s, c, _ = Solvers.Scholz.solve_with_cost g in
          if Pbqp.Cost.is_finite c then Some s else None)
  | "rl" -> (
      match net_path with
      | None -> Error "--net is required for the rl solver"
      | Some path ->
          let net = Nn.Pvnet.load path in
          Ok
            (fun g ->
              fst
                (Core.Solver.solve_feasible ~net
                   ~mcts:{ Mcts.default_config with k }
                   ~order:Core.Order.Increasing_liberty g)))
  | other -> Error (Printf.sprintf "unknown solver %S" other)

let run input output solver net k gen_pro stats target =
  let machine = Ate.Machine.model target in
  match gen_pro with
  | Some idx ->
      let p = Ate.Progen.pro idx in
      let text = Ate.Ast.to_string p in
      (match output with
      | Some path ->
          Out_channel.with_open_text path (fun oc -> output_string oc text)
      | None -> print_string text);
      `Ok ()
  | None -> (
      match input with
      | None -> `Error (true, "an input program (or --gen-pro) is required")
      | Some path -> (
          let p = Ate.Parse.of_file path in
          if stats then begin
            let info = Ate.Program.analyze_exn p in
            let built = Ate.Pbqp_build.build machine info in
            Format.printf "%s: %d instructions, %d vregs@.%a@."
              p.Ate.Ast.name
              (Ate.Program.instr_count info)
              (Ate.Program.vreg_count info)
              Pbqp.Stats.pp
              (Pbqp.Stats.compute built.Ate.Pbqp_build.graph);
            `Ok ()
          end
          else
            match solver_of solver net k with
            | Error e -> `Error (false, e)
            | Ok solve -> (
                match Ate.Translate.allocate machine ~solve p with
                | Error e -> `Error (false, "allocation failed: " ^ e)
                | Ok q ->
                    let text = Ate.Ast.to_string q in
                    (match output with
                    | Some path ->
                        Out_channel.with_open_text path (fun oc ->
                            output_string oc text)
                    | None -> print_string text);
                    `Ok ())))

let () =
  let input =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"ATE test-pattern program")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT"
           ~doc:"output file (default stdout)")
  in
  let solver =
    Arg.(value & opt string "liberty"
         & info [ "solver"; "s" ] ~doc:"one of: liberty, scholz, rl")
  in
  let net =
    Arg.(value & opt (some file) None
         & info [ "net" ] ~docv:"CKPT" ~doc:"Pvnet checkpoint (rl)")
  in
  let k = Arg.(value & opt int 25 & info [ "k" ] ~doc:"MCTS simulations") in
  let gen_pro =
    Arg.(value & opt (some int) None
         & info [ "gen-pro" ] ~docv:"K" ~doc:"emit the synthetic PRO$(docv) program")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"print PBQP statistics only")
  in
  let target =
    Arg.(value & opt string "modelA"
         & info [ "target"; "t" ] ~docv:"MODEL"
             ~doc:"target ATE model: modelA (13 regs, 8-way) or modelB (10 \
                   regs, 4-way)")
  in
  let cmd =
    Cmd.v
      (Cmd.info "atec" ~doc:"Allocate registers for ATE test-pattern programs")
      Term.(
        ret
          (const run $ input $ output $ solver $ net $ k $ gen_pro $ stats
         $ target))
  in
  exit (Cmd.eval cmd)
