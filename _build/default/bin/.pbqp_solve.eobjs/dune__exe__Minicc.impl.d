bin/minicc.ml: Arg Cir Cmd Cmdliner Format In_channel List Mcts Nn Pbqp Printf String Term
