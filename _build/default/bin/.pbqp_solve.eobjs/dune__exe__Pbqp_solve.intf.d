bin/pbqp_solve.mli:
