bin/train.mli:
