bin/atec.mli:
