bin/pbqp_solve.ml: Arg Cmd Cmdliner Core Format Mcts Nn Option Pbqp Printf Solvers Term
