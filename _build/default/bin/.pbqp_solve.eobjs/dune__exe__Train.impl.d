bin/train.ml: Arg Ate Cmd Cmdliner Core Mcts Nn Pbqp Printf Random Term Unix
