bin/atec.ml: Arg Ate Cmd Cmdliner Core Format Mcts Nn Out_channel Pbqp Printf Solvers Term
