bin/minicc.mli:
