(* Tests for the PBQP core library: costs, vectors, matrices, graphs,
   solutions, random generation, serialization. *)

open Pbqp
open Testutil

(* ------------------------------------------------------------------ *)
(* Cost *)

let test_cost_algebra () =
  Alcotest.(check bool) "inf is inf" true (Cost.is_inf Cost.inf);
  Alcotest.(check bool) "zero is finite" true (Cost.is_finite Cost.zero);
  Alcotest.check cost_exact "inf + x" Cost.inf (Cost.add Cost.inf 3.0);
  Alcotest.check cost_exact "x + inf" Cost.inf (Cost.add 3.0 Cost.inf);
  Alcotest.check cost_exact "min inf x" 3.0 (Cost.min Cost.inf 3.0);
  Alcotest.check cost_exact "min x inf" 3.0 (Cost.min 3.0 Cost.inf);
  Alcotest.(check int) "compare inf greatest" 1 (Cost.compare Cost.inf 1e30);
  Alcotest.(check bool) "inf equals inf" true (Cost.equal Cost.inf Cost.inf)

let test_cost_string () =
  Alcotest.(check string) "inf prints" "inf" (Cost.to_string Cost.inf);
  Alcotest.(check string) "int prints" "5" (Cost.to_string 5.0);
  Alcotest.check cost_exact "parse inf" Cost.inf (Cost.of_string "inf");
  Alcotest.check cost "parse float" 2.5 (Cost.of_string "2.5");
  Alcotest.check_raises "parse garbage"
    (Invalid_argument "Cost.of_string: \"zork\"") (fun () ->
      ignore (Cost.of_string "zork"));
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Cost.of_float: NaN")
    (fun () -> ignore (Cost.of_float Float.nan))

let test_cost_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.check cost "roundtrip" c (Cost.of_string (Cost.to_string c)))
    [ 0.0; 1.5; 1234.0; Cost.inf; 0.333333 ]

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basics () =
  let v = Vec.of_array [| 1.0; Cost.inf; 3.0 |] in
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.check cost_exact "get" Cost.inf (Vec.get v 1);
  Alcotest.(check int) "liberty" 2 (Vec.liberty v);
  Alcotest.(check (list int)) "finite indices" [ 0; 2 ] (Vec.finite_indices v);
  Alcotest.check cost "min" 1.0 (Vec.min_value v);
  Alcotest.(check int) "argmin" 0 (Vec.argmin v);
  Alcotest.(check bool) "not all inf" false (Vec.is_all_inf v);
  Alcotest.(check bool) "all inf" true (Vec.is_all_inf (Vec.make 4 Cost.inf))

let test_vec_add () =
  let a = Vec.of_array [| 1.0; 2.0; Cost.inf |] in
  let b = Vec.of_array [| 0.5; Cost.inf; 1.0 |] in
  let s = Vec.add a b in
  Alcotest.check vec "sum" (Vec.of_array [| 1.5; Cost.inf; Cost.inf |]) s;
  let d = Vec.copy a in
  Vec.add_into d b;
  Alcotest.check vec "add_into matches add" s d;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vec.add: length mismatch") (fun () ->
      ignore (Vec.add a (Vec.zero 2)))

let test_vec_copy_isolated () =
  let a = Vec.of_array [| 1.0; 2.0 |] in
  let b = Vec.copy a in
  Vec.set b 0 9.0;
  Alcotest.check cost "original unchanged" 1.0 (Vec.get a 0)

let test_vec_argmin_ties () =
  let v = Vec.of_array [| 2.0; 1.0; 1.0 |] in
  Alcotest.(check int) "first min wins" 1 (Vec.argmin v);
  Alcotest.check_raises "argmin empty" (Invalid_argument "Vec.argmin: empty")
    (fun () -> ignore (Vec.argmin (Vec.of_array [||])))

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_basics () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| Cost.inf; 4.0 |] |] in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  Alcotest.check cost_exact "get" Cost.inf (Mat.get m 1 0);
  Alcotest.check vec "row" (Vec.of_array [| Cost.inf; 4.0 |]) (Mat.row m 1);
  Alcotest.check vec "col" (Vec.of_array [| 2.0; 4.0 |]) (Mat.col m 1);
  Alcotest.(check bool) "has inf" true (Mat.has_inf m);
  Alcotest.check cost "min value" 1.0 (Mat.min_value m)

let test_mat_transpose () =
  let m = Mat.init ~rows:2 ~cols:3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose m in
  Alcotest.(check int) "t rows" 3 (Mat.rows t);
  Alcotest.check cost "t entry" 12.0 (Mat.get t 2 1);
  Alcotest.check mat "double transpose" m (Mat.transpose t)

let test_mat_add_zero () =
  let a = Mat.of_arrays [| [| 1.0; -1.0 |]; [| 0.0; 0.0 |] |] in
  let b = Mat.of_arrays [| [| -1.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  Alcotest.(check bool) "sum is zero" true (Mat.is_zero (Mat.add a b));
  Alcotest.(check bool) "a not zero" false (Mat.is_zero a)

let test_mat_interference () =
  let m = Mat.interference 3 in
  Alcotest.check cost_exact "diagonal inf" Cost.inf (Mat.get m 1 1);
  Alcotest.check cost_exact "off-diagonal zero" Cost.zero (Mat.get m 0 2)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged")
    (fun () -> ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ------------------------------------------------------------------ *)
(* Graph *)

let triangle () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.set_cost g 0 (Vec.of_array [| 1.0; 2.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 3.0; 4.0 |]);
  Graph.set_cost g 2 (Vec.of_array [| 5.0; 6.0 |]);
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 0 2 (Mat.interference 2);
  g

let test_graph_build () =
  let g = triangle () in
  Alcotest.(check int) "n alive" 3 (Graph.n_alive g);
  Alcotest.(check int) "edges" 3 (Graph.edge_count g);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Graph.check g

let test_graph_edge_orientation () =
  let g = Graph.create ~m:2 ~n:2 in
  let muv = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Graph.add_edge g 0 1 muv;
  Alcotest.check mat "u-major" muv (Option.get (Graph.edge g 0 1));
  Alcotest.check mat "v-major is transpose" (Mat.transpose muv)
    (Option.get (Graph.edge g 1 0));
  Graph.check g

let test_graph_edge_accumulate () =
  let g = Graph.create ~m:2 ~n:2 in
  let a = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  Graph.add_edge g 0 1 a;
  Graph.add_edge g 0 1 a;
  Alcotest.check mat "accumulated" (Mat.add a a) (Option.get (Graph.edge g 0 1));
  (* adding the negation cancels the edge entirely *)
  Graph.add_edge g 0 1 (Mat.map (fun c -> -2.0 *. c) a);
  Alcotest.(check bool) "edge removed when zero" true (Graph.edge g 0 1 = None);
  Alcotest.(check int) "degree 0" 0 (Graph.degree g 0);
  Graph.check g

let test_graph_remove_vertex () =
  let g = triangle () in
  Graph.remove_vertex g 1;
  Alcotest.(check bool) "dead" false (Graph.is_alive g 1);
  Alcotest.(check (list int)) "vertices" [ 0; 2 ] (Graph.vertices g);
  Alcotest.(check int) "edges left" 1 (Graph.edge_count g);
  Alcotest.(check (list int)) "0's neighbors" [ 2 ] (Graph.neighbors g 0);
  Alcotest.check_raises "dead access"
    (Invalid_argument "Graph.cost: vertex 1 is dead") (fun () ->
      ignore (Graph.cost g 1));
  Graph.check g

let test_graph_copy_independent () =
  let g = triangle () in
  let h = Graph.copy g in
  Graph.remove_vertex h 0;
  Graph.add_to_cost h 1 (Vec.of_array [| 100.0; 100.0 |]);
  Alcotest.(check int) "original intact" 3 (Graph.n_alive g);
  Alcotest.check vec "original cost intact" (Vec.of_array [| 3.0; 4.0 |])
    (Graph.cost g 1);
  Graph.check g;
  Graph.check h

let test_graph_self_edge () =
  let g = Graph.create ~m:2 ~n:2 in
  Alcotest.check_raises "self edge" (Invalid_argument "Graph.add_edge: self-edge")
    (fun () -> Graph.add_edge g 0 0 (Mat.interference 2))

let test_graph_liberty () =
  let g = Graph.create ~m:3 ~n:1 in
  Graph.set_cost g 0 (Vec.of_array [| 1.0; Cost.inf; 2.0 |]);
  Alcotest.(check int) "liberty" 2 (Graph.liberty g 0)

(* ------------------------------------------------------------------ *)
(* Solution *)

let test_solution_cost_triangle () =
  let g = triangle () in
  (* distinct colors on a 2-color triangle are impossible: some edge is
     monochromatic, so every complete assignment costs inf *)
  let s = Solution.of_array [| 0; 1; 0 |] in
  Alcotest.check cost_exact "interference hit" Cost.inf (Solution.cost g s)

let test_solution_cost_path () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.set_cost g 0 (Vec.of_array [| 1.0; 2.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 3.0; 4.0 |]);
  Graph.set_cost g 2 (Vec.of_array [| 5.0; 6.0 |]);
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  let s = Solution.of_array [| 0; 1; 0 |] in
  Alcotest.check cost "path cost" (1.0 +. 4.0 +. 5.0) (Solution.cost g s);
  Alcotest.(check bool) "valid" true (Solution.valid g s)

let test_solution_partial () =
  let g = triangle () in
  let s = Solution.of_array [| 0; Solution.unassigned; Solution.unassigned |] in
  Alcotest.(check bool) "incomplete" false (Solution.is_complete s);
  Alcotest.check cost_exact "full cost of partial is inf" Cost.inf
    (Solution.cost g s);
  Alcotest.check cost "partial cost counts prefix" 1.0
    (Solution.partial_cost g s)

let test_solution_fig2 () =
  let g = Generate.fig2 () in
  Alcotest.check cost "paper selection (1,1,0) costs 24" 24.0
    (Solution.cost g (Solution.of_array [| 1; 1; 0 |]));
  Alcotest.check cost "paper selection (0,0,0) costs 11" 11.0
    (Solution.cost g (Solution.of_array [| 0; 0; 0 |]))

(* ------------------------------------------------------------------ *)
(* Generate *)

let test_generate_shape () =
  let g =
    Generate.erdos_renyi ~rng:(rng 42)
      { Generate.default with n = 30; m = 5; p_edge = 0.3 }
  in
  Alcotest.(check int) "n" 30 (Graph.capacity g);
  Alcotest.(check int) "m" 5 (Graph.m g);
  Alcotest.(check bool) "has edges" true (Graph.edge_count g > 0);
  Graph.check g

let test_generate_deterministic () =
  let c = { Generate.default with n = 12; m = 3; p_edge = 0.4 } in
  let a = Generate.erdos_renyi ~rng:(rng 7) c in
  let b = Generate.erdos_renyi ~rng:(rng 7) c in
  Alcotest.check graph "same seed, same graph" a b

let test_generate_zero_inf () =
  let g =
    Generate.erdos_renyi ~rng:(rng 3)
      {
        Generate.default with
        n = 20;
        m = 4;
        p_edge = 0.4;
        p_inf = 0.3;
        zero_inf = true;
      }
  in
  List.iter
    (fun u ->
      Vec.iteri
        (fun _ c ->
          Alcotest.(check bool)
            "entry is 0 or inf" true
            (Cost.is_inf c || Cost.equal c Cost.zero))
        (Graph.cost g u))
    (Graph.vertices g)

let test_generate_min_liberty () =
  let g =
    Generate.erdos_renyi ~rng:(rng 5)
      { Generate.default with n = 25; m = 4; p_inf = 0.9; min_liberty = 2 }
  in
  List.iter
    (fun u -> Alcotest.(check bool) "liberty >= 2" true (Graph.liberty g u >= 2))
    (Graph.vertices g)

let test_generate_planted_witness () =
  for seed = 0 to 9 do
    let g, sol =
      Generate.planted ~rng:(rng seed)
        {
          Generate.default with
          n = 15;
          m = 4;
          p_edge = 0.5;
          p_inf = 0.5;
          zero_inf = true;
        }
    in
    Alcotest.(check bool) "witness is a valid solution" true
      (Solution.valid g sol);
    Alcotest.check cost "witness costs zero in zero_inf mode" 0.0
      (Solution.cost g sol)
  done

let test_sample_n () =
  let r = rng 11 in
  for _ = 1 to 200 do
    let n = Generate.sample_n ~rng:r ~mean:20.0 ~stddev:5.0 ~min:3 in
    Alcotest.(check bool) "clamped" true (n >= 3)
  done

let test_generate_validation () =
  Alcotest.check_raises "bad p_edge"
    (Invalid_argument "Generate: p_edge not in [0,1]") (fun () ->
      ignore
        (Generate.erdos_renyi ~rng:(rng 0)
           { Generate.default with p_edge = 1.5 }))

(* ------------------------------------------------------------------ *)
(* Io *)

let test_io_roundtrip_fig2 () =
  let g = Generate.fig2 () in
  let g' = Io.of_string (Io.to_string g) in
  Alcotest.check graph "roundtrip" g g'

let test_io_parse_basic () =
  let g =
    Io.of_string
      "# comment\npbqp 2 2\nv 0 1 inf\nv 1 0 3.5\ne 0 1 0 1 2 inf\n"
  in
  Alcotest.(check int) "n" 2 (Graph.capacity g);
  Alcotest.check cost_exact "inf parsed" Cost.inf (Vec.get (Graph.cost g 0) 1);
  Alcotest.check cost_exact "matrix entry" Cost.inf
    (Mat.get (Option.get (Graph.edge g 0 1)) 1 1)

let test_io_errors () =
  let expect_invalid s =
    match Io.of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid "v 0 1 2\n";
  expect_invalid "pbqp 2\n";
  expect_invalid "pbqp 2 2\nv 5 1 2\n";
  expect_invalid "pbqp 2 2\nv 0 1\n";
  expect_invalid "pbqp 2 2\ne 0 1 1 2 3\n";
  expect_invalid "pbqp 2 2\nzork\n"

(* ------------------------------------------------------------------ *)
(* Dot *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_export () =
  let g = Generate.fig2 () in
  let s = Dot.to_string g in
  Alcotest.(check bool) "graph header" true
    (String.length s > 5 && String.sub s 0 5 = "graph");
  List.iter
    (fun u ->
      Alcotest.(check bool) "vertex present" true
        (contains s (Printf.sprintf "v%d [" u)))
    (Graph.vertices g);
  Graph.fold_edges
    (fun u v _ () ->
      Alcotest.(check bool) "edge present" true
        (contains s (Printf.sprintf "v%d -- v%d" u v)))
    g ()

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_io_roundtrip =
  qtest "io roundtrip preserves the graph" (arb_graph_spec ~nmax:10 ())
    (fun spec ->
      let g = build_graph spec in
      Graph.approx_equal g (Io.of_string (Io.to_string g)))

let prop_io_roundtrip_reduced =
  qtest "io roundtrip preserves reduced graphs (dead vertices)"
    (arb_graph_spec ~nmax:10 ()) (fun spec ->
      let g = build_graph spec in
      (* kill a couple of vertices *)
      let r = rng (spec.seed + 13) in
      List.iter
        (fun u ->
          if Random.State.bool r && Graph.is_alive g u then
            Graph.remove_vertex g u)
        (Graph.vertices g);
      Graph.approx_equal g (Io.of_string (Io.to_string g)))

let prop_generated_invariants =
  qtest "generated graphs satisfy internal invariants"
    (arb_graph_spec ~nmax:12 ()) (fun spec ->
      let g = build_graph spec in
      Graph.check g;
      true)

let prop_copy_equal =
  qtest "copy is equal and independent" (arb_graph_spec ~nmax:10 ())
    (fun spec ->
      let g = build_graph spec in
      let h = Graph.copy g in
      let eq_before = Graph.equal g h in
      List.iter
        (fun u -> Graph.add_to_cost h u (Vec.make spec.m 1.0))
        (Graph.vertices h);
      eq_before && (Graph.vertices g = [] || not (Graph.equal g h)))

let prop_cost_symmetric_in_edge_storage =
  qtest "solution cost is independent of edge insertion order"
    (arb_graph_spec ~nmax:8 ~mmax:3 ()) (fun spec ->
      let g = build_graph spec in
      let n = Graph.capacity g in
      let r = rng (spec.seed + 1) in
      let s =
        Solution.of_array (Array.init n (fun _ -> Random.State.int r spec.m))
      in
      (* rebuild with reversed edge orientation *)
      let h = Graph.create ~m:spec.m ~n in
      List.iter
        (fun u -> Graph.set_cost h u (Graph.cost g u))
        (Graph.vertices g);
      Graph.fold_edges
        (fun u v muv () -> Graph.add_edge h v u (Mat.transpose muv))
        g ();
      Cost.approx_equal (Solution.cost g s) (Solution.cost h s))

let prop_normalize_second_pass_noop =
  qtest ~count:40 "normalization is exhausted after one pass"
    (arb_graph_spec ~nmax:8 ~mmax:3 ~p_inf:0.2 ()) (fun spec ->
      let g = build_graph spec in
      ignore (Normalize.normalize g);
      (* a second pass finds nothing left to move *)
      Normalize.normalize g = 0)

let prop_neighbors_symmetric =
  qtest ~count:60 "neighbor relation is symmetric"
    (arb_graph_spec ~nmax:10 ()) (fun spec ->
      let g = build_graph spec in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> List.mem u (Graph.neighbors g v))
            (Graph.neighbors g u))
        (Graph.vertices g))

let prop_remove_vertex_keeps_invariants =
  qtest ~count:40 "random removals keep invariants"
    (arb_graph_spec ~nmax:10 ()) (fun spec ->
      let g = build_graph spec in
      let r = rng (spec.seed + 77) in
      List.iter
        (fun u -> if Random.State.bool r then Graph.remove_vertex g u)
        (Graph.vertices g);
      Graph.check g;
      true)

let prop_liberty_counts_finite =
  qtest "liberty equals finite entry count" (arb_graph_spec ~nmax:8 ())
    (fun spec ->
      let g = build_graph spec in
      List.for_all
        (fun u ->
          Graph.liberty g u = List.length (Vec.finite_indices (Graph.cost g u)))
        (Graph.vertices g))

let test_normalize_disconnects () =
  (* a matrix that is a pure row offset normalizes to nothing *)
  let g = Graph.create ~m:2 ~n:2 in
  Graph.add_edge g 0 1 (Mat.of_arrays [| [| 3.0; 3.0 |]; [| 7.0; 7.0 |] |]);
  let removed = Normalize.normalize g in
  Alcotest.(check int) "edge removed" 1 removed;
  Alcotest.(check int) "no edges left" 0 (Graph.edge_count g);
  Alcotest.check vec "row minima moved" (Vec.of_array [| 3.0; 7.0 |])
    (Graph.cost g 0);
  Graph.check g

let test_normalize_inf_row () =
  let g = Graph.create ~m:2 ~n:2 in
  Graph.add_edge g 0 1
    (Mat.of_arrays [| [| Cost.inf; Cost.inf |]; [| 0.0; 1.0 |] |]);
  ignore (Normalize.normalize g);
  Alcotest.check cost_exact "inadmissible color surfaces in the vector"
    Cost.inf
    (Vec.get (Graph.cost g 0) 0);
  Graph.check g

let prop_normalize_preserves_all_costs =
  qtest ~count:60 "normalization preserves Equation 1 for every selection"
    (arb_graph_spec ~nmax:7 ~mmax:3 ~p_inf:0.2 ()) (fun spec ->
      let g = build_graph spec in
      let h, _ = Normalize.normalized_copy g in
      Graph.check h;
      let r = rng (spec.seed + 31) in
      List.for_all
        (fun _ ->
          let s =
            Solution.of_array
              (Array.init spec.n (fun _ -> Random.State.int r spec.m))
          in
          Cost.approx_equal ~eps:1e-6 (Solution.cost g s) (Solution.cost h s))
        (List.init 10 Fun.id))

let test_stats () =
  let g = Generate.fig2 () in
  let st = Stats.compute g in
  Alcotest.(check int) "n" 3 st.Stats.n;
  Alcotest.(check int) "edges" 3 st.Stats.edges;
  Alcotest.(check (float 1e-9)) "density (triangle)" 1.0 st.Stats.density;
  Alcotest.(check bool) "not zero/inf" false st.Stats.zero_inf;
  Alcotest.(check int) "liberty histogram total" 3
    (Array.fold_left ( + ) 0 st.Stats.liberty_histogram);
  let g2, _ =
    Generate.planted ~rng:(rng 1)
      { Generate.default with n = 10; m = 3; p_edge = 0.4; p_inf = 0.4;
        zero_inf = true }
  in
  let st2 = Stats.compute g2 in
  Alcotest.(check bool) "planted 0/inf detected" true st2.Stats.zero_inf;
  Alcotest.(check bool) "some infinite entries" true
    (st2.Stats.inf_entry_share > 0.0)

let () =
  Alcotest.run "pbqp"
    [
      ( "cost",
        [
          Alcotest.test_case "algebra" `Quick test_cost_algebra;
          Alcotest.test_case "strings" `Quick test_cost_string;
          Alcotest.test_case "roundtrip" `Quick test_cost_roundtrip;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "add" `Quick test_vec_add;
          Alcotest.test_case "copy isolation" `Quick test_vec_copy_isolated;
          Alcotest.test_case "argmin ties" `Quick test_vec_argmin_ties;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basics;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "add to zero" `Quick test_mat_add_zero;
          Alcotest.test_case "interference" `Quick test_mat_interference;
          Alcotest.test_case "ragged input" `Quick test_mat_ragged;
        ] );
      ( "graph",
        [
          Alcotest.test_case "build" `Quick test_graph_build;
          Alcotest.test_case "edge orientation" `Quick
            test_graph_edge_orientation;
          Alcotest.test_case "edge accumulation" `Quick
            test_graph_edge_accumulate;
          Alcotest.test_case "remove vertex" `Quick test_graph_remove_vertex;
          Alcotest.test_case "copy independence" `Quick
            test_graph_copy_independent;
          Alcotest.test_case "self edge rejected" `Quick test_graph_self_edge;
          Alcotest.test_case "liberty" `Quick test_graph_liberty;
        ] );
      ( "solution",
        [
          Alcotest.test_case "triangle interference" `Quick
            test_solution_cost_triangle;
          Alcotest.test_case "path cost" `Quick test_solution_cost_path;
          Alcotest.test_case "partial cost" `Quick test_solution_partial;
          Alcotest.test_case "figure 2 worked example" `Quick test_solution_fig2;
        ] );
      ( "generate",
        [
          Alcotest.test_case "shape" `Quick test_generate_shape;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "zero/inf mode" `Quick test_generate_zero_inf;
          Alcotest.test_case "min liberty" `Quick test_generate_min_liberty;
          Alcotest.test_case "planted witness" `Quick
            test_generate_planted_witness;
          Alcotest.test_case "sample_n clamps" `Quick test_sample_n;
          Alcotest.test_case "config validation" `Quick test_generate_validation;
        ] );
      ( "io",
        [
          Alcotest.test_case "fig2 roundtrip" `Quick test_io_roundtrip_fig2;
          Alcotest.test_case "parse basics" `Quick test_io_parse_basic;
          Alcotest.test_case "error reporting" `Quick test_io_errors;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "disconnects offset edges" `Quick
            test_normalize_disconnects;
          Alcotest.test_case "infinite rows surface" `Quick
            test_normalize_inf_row;
          prop_normalize_preserves_all_costs;
        ] );
      ( "properties",
        [
          prop_io_roundtrip;
          prop_io_roundtrip_reduced;
          prop_generated_invariants;
          prop_copy_equal;
          prop_cost_symmetric_in_edge_storage;
          prop_liberty_counts_finite;
          prop_normalize_second_pass_noop;
          prop_neighbors_symmetric;
          prop_remove_vertex_keeps_invariants;
        ] );
    ]
