(* Tests for the compiler substrate: MiniC frontend, IR, liveness,
   register allocators, spill rewriting, and the VCPU simulator — with the
   central end-to-end property: every allocator's machine code reproduces
   the reference interpreter's output exactly. *)

open Testutil

(* ------------------------------------------------------------------ *)
(* Lexer / parser *)

let test_lexer () =
  let toks = Cir.Minic_lex.tokenize "int x = 42; // c\n x = x + 1.5;" in
  let kinds =
    List.map (fun t -> Cir.Minic_lex.token_to_string t.Cir.Minic_lex.tok) toks
  in
  Alcotest.(check (list string)) "tokens"
    [ "int"; "x"; "="; "42"; ";"; "x"; "="; "x"; "+"; "1.5"; ";"; "<eof>" ]
    kinds;
  (* line numbers advance past the comment's newline *)
  let last = List.nth toks (List.length toks - 2) in
  Alcotest.(check int) "line tracking" 2 last.Cir.Minic_lex.line

let test_lexer_comments_and_errors () =
  let toks = Cir.Minic_lex.tokenize "/* multi\nline */ 3" in
  Alcotest.(check int) "comment skipped" 2 (List.length toks);
  Alcotest.check_raises "bad char"
    (Invalid_argument "MiniC lexer: line 1: unexpected character '@'")
    (fun () -> ignore (Cir.Minic_lex.tokenize "@"))

let test_parse_precedence () =
  (* 2 + 3 * 4 == 14 must parse with * binding tighter *)
  let ir = Cir.Lower.compile "int main() { print(2 + 3 * 4); print((2 + 3) * 4); return 0; }" in
  let out = (Cir.Interp.run ir).Cir.Interp.output in
  Alcotest.(check (list string)) "precedence" [ "14"; "20" ] out

let test_parse_errors () =
  let expect s =
    match Cir.Minic_parse.parse s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ s)
  in
  expect "int main( { }";
  expect "int main() { int x = ; }";
  expect "int main() { if x { } }";
  expect "zork";
  expect "int a[0];"

let test_lower_type_errors () =
  let expect s =
    match Cir.Lower.compile s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected lowering error: " ^ s)
  in
  expect "int main() { return y; }";
  expect "int main() { float f; return f % 2; }";
  expect "void f() {} int main() { return f(); }";
  expect "int f(int x) { return x; } int main() { return f(1, 2); }";
  expect "float a[4]; int main() { return a[1.5]; }";
  expect "int main() { int x; int x; return 0; }"

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let run_src src = (Cir.Interp.run (Cir.Lower.compile src)).Cir.Interp.output

let test_interp_arith () =
  Alcotest.(check (list string)) "div truncation and mod"
    [ "-2"; "-1"; "2"; "1" ]
    (run_src
       "int main() { print(-7 / 3); print(-7 % 3); print(7 / 3); print(7 % 3); return 0; }")

let test_interp_float () =
  Alcotest.(check (list string)) "float ops" [ "3.500000"; "1" ]
    (run_src "int main() { print(1.0 + 2.5); print(2.5 > 1.0); return 0; }")

let test_interp_recursion_globals () =
  Alcotest.(check (list string)) "mutual state" [ "10" ]
    (run_src
       "int c = 0;\nvoid bump() { c = c + 1; }\nint main() { int i; for (i = 0; i < 10; i = i + 1) { bump(); } print(c); return 0; }")

let test_interp_break_continue () =
  Alcotest.(check (list string)) "break/continue" [ "18"; "5" ]
    (run_src
       "int main() { int i; int s = 0;\n\
        for (i = 0; i < 10; i = i + 1) {\n\
          if (i == 3) { continue; }\n\
          if (i == 7) { break; }\n\
          s = s + i; }\n\
        print(s);\n\
        int j = 0;\n\
        while (1) { j = j + 1; if (j >= 5) { break; } }\n\
        print(j); return 0; }");
  (match run_src "int main() { break; return 0; }" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "break outside loop must be rejected");
  match run_src "int main() { continue; return 0; }" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "continue outside loop must be rejected"

let test_interp_div_by_zero () =
  match run_src "int main() { int z = 0; print(1 / z); return 0; }" with
  | exception Cir.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected division by zero"

let test_interp_oob () =
  match run_src "int a[3]; int main() { return a[5]; }" with
  | exception Cir.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

(* ------------------------------------------------------------------ *)
(* Liveness *)

let func_of src name =
  let ir = Cir.Lower.compile src in
  match Cir.Ir.find_func ir name with
  | Some f -> f
  | None -> Alcotest.fail ("no function " ^ name)

let test_liveness_interference_basic () =
  let f =
    func_of
      "int main() { int a = 1; int b = 2; int c = a + b; print(c); print(a); return 0; }"
      "main"
  in
  let live = Cir.Liveness.analyze f in
  (* a and b overlap; a survives past c's definition *)
  Alcotest.(check bool) "has interference" true
    (List.length live.Cir.Liveness.interference > 0);
  Alcotest.(check bool) "pressure sane" true (live.Cir.Liveness.max_pressure >= 2)

let test_liveness_loop_weights () =
  let f =
    func_of
      "int main() { int s = 0; int i; for (i = 0; i < 9; i = i + 1) { s = s + i; } print(s); return 0; }"
      "main"
  in
  let live = Cir.Liveness.analyze f in
  (* loop-carried vregs weigh more than the final print use *)
  let max_w = Array.fold_left Float.max 0.0 live.Cir.Liveness.weights in
  Alcotest.(check bool) "loop weight amplified" true (max_w >= 10.0)

let test_liveness_across_call () =
  let f =
    func_of
      "int g(int x) { return x + 1; }\nint main() { int a = 5; int b = g(1); print(a + b); return 0; }"
      "main"
  in
  let live = Cir.Liveness.analyze f in
  Alcotest.(check bool) "a lives across the call" true
    (not (Cir.Liveness.Iset.is_empty live.Cir.Liveness.across_call))

(* ------------------------------------------------------------------ *)
(* Allocators: validity and end-to-end equality *)

let all_kinds =
  [ Cir.Driver.Fast; Cir.Driver.Basic; Cir.Driver.Greedy; Cir.Driver.Pbqp ]

let test_allocators_valid_on_benchmarks () =
  List.iter
    (fun name ->
      let ir = Cir.Lower.compile (Cir.Programs.find name) in
      List.iter
        (fun (f : Cir.Ir.func) ->
          let live = Cir.Liveness.analyze f in
          List.iter
            (fun kind ->
              let alloc, _ = Cir.Driver.allocate kind live in
              match Cir.Regalloc.validate live alloc with
              | Ok () -> ()
              | Error e ->
                  Alcotest.failf "%s/%s/%s: %s" name f.Cir.Ir.name
                    (Cir.Driver.alloc_kind_name kind)
                    e)
            all_kinds)
        ir.Cir.Ir.funcs)
    [ "Queens"; "Oscar"; "Quicksort"; "Nbody" ]

let test_end_to_end_output_equality () =
  List.iter
    (fun name ->
      let ir = Cir.Lower.compile (Cir.Programs.find name) in
      let expected = (Cir.Driver.reference ir).Cir.Interp.output in
      List.iter
        (fun kind ->
          let r = Cir.Driver.run kind ir in
          Alcotest.(check (list string))
            (Printf.sprintf "%s under %s" name (Cir.Driver.alloc_kind_name kind))
            expected r.Cir.Driver.outcome.Cir.Msim.output)
        all_kinds)
    [ "Fib"; "Gcd"; "Stats"; "Treesort"; "Hash" ]

let test_fast_spills_everything () =
  let f = func_of "int main() { int a = 1; print(a); return 0; }" "main" in
  let alloc = Cir.Regalloc.fast f in
  Alcotest.(check int) "all spilled" (Cir.Ir.nvregs f)
    (Cir.Regalloc.spill_count alloc)

let test_fast_is_slowest () =
  let ir = Cir.Lower.compile (Cir.Programs.find "Sieve") in
  let fast = (Cir.Driver.run Cir.Driver.Fast ir).Cir.Driver.outcome.Cir.Msim.cycles in
  List.iter
    (fun kind ->
      let c = (Cir.Driver.run kind ir).Cir.Driver.outcome.Cir.Msim.cycles in
      Alcotest.(check bool)
        (Cir.Driver.alloc_kind_name kind ^ " beats FAST")
        true (c < fast))
    [ Cir.Driver.Basic; Cir.Driver.Greedy; Cir.Driver.Pbqp ]

let prop_allocations_valid_random =
  (* random small programs assembled from benchmark pieces are heavy to
     generate; instead fuzz over the benchmark set x allocators *)
  qtest ~count:24 "every benchmark function gets a valid allocation"
    QCheck.(int_bound (List.length Cir.Programs.all - 1))
    (fun idx ->
      let _, src = List.nth Cir.Programs.all idx in
      let ir = Cir.Lower.compile src in
      List.for_all
        (fun (f : Cir.Ir.func) ->
          let live = Cir.Liveness.analyze f in
          List.for_all
            (fun kind ->
              let alloc, _ = Cir.Driver.allocate kind live in
              Cir.Regalloc.validate live alloc = Ok ())
            all_kinds)
        ir.Cir.Ir.funcs)

(* ------------------------------------------------------------------ *)
(* PBQP construction for the VCPU *)

let test_pbqp_build_structure () =
  let f =
    func_of
      "int main() { int a = 7; int b = a % 3; float x = 1.5; print(b); print(x); print(a); return 0; }"
      "main"
  in
  let live = Cir.Liveness.analyze f in
  let t = Cir.Alloc_pbqp.build live in
  let g = t.Cir.Alloc_pbqp.graph in
  Alcotest.(check int) "colors = regs + spill" Cir.Alloc_pbqp.num_colors
    (Pbqp.Graph.m g);
  (* every vertex can spill: the spill entry is finite *)
  List.iter
    (fun u ->
      Alcotest.(check bool) "spill entry finite" true
        (Pbqp.Cost.is_finite
           (Pbqp.Vec.get (Pbqp.Graph.cost g u) Cir.Alloc_pbqp.spill_color)))
    (Pbqp.Graph.vertices g)

let test_pbqp_scholz_allocator_reasonable () =
  let ir = Cir.Lower.compile (Cir.Programs.find "IntMM") in
  let r = Cir.Driver.run Cir.Driver.Pbqp ir in
  Alcotest.(check bool) "few spills" true (r.Cir.Driver.spills <= 6);
  Alcotest.(check bool) "finite cost" true
    (match r.Cir.Driver.pbqp_cost with
    | Some c -> Pbqp.Cost.is_finite c
    | None -> false)

let test_pbqp_rl_end_to_end () =
  let net =
    Nn.Pvnet.create ~rng:(rng 4)
      { (Nn.Pvnet.default_config ~m:Cir.Alloc_pbqp.num_colors) with
        trunk_width = 8; trunk_blocks = 1; gcn_layers = 1 }
  in
  let ir = Cir.Lower.compile (Cir.Programs.find "Gcd") in
  let expected = (Cir.Driver.reference ir).Cir.Interp.output in
  let r =
    Cir.Driver.run
      (Cir.Driver.Pbqp_rl (net, { Mcts.default_config with k = 12 }))
      ir
  in
  Alcotest.(check (list string)) "correct output" expected
    r.Cir.Driver.outcome.Cir.Msim.output;
  Alcotest.(check bool) "finite cost" true
    (match r.Cir.Driver.pbqp_cost with
    | Some c -> Pbqp.Cost.is_finite c
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Rewrite / simulator details *)

let test_spill_code_inserted () =
  let f = func_of "int main() { int a = 1; int b = 2; print(a + b); return 0; }" "main" in
  let alloc = Cir.Regalloc.fast f in
  let mf = Cir.Rewrite.rewrite_func f alloc in
  Alcotest.(check bool) "has slots" true (mf.Cir.Mach.nslots > 0);
  let has_spill_ops =
    Array.exists
      (fun b ->
        List.exists
          (function
            | Cir.Mach.MSpill_load _ | Cir.Mach.MSpill_store _ -> true
            | _ -> false)
          b.Cir.Mach.instrs)
      mf.Cir.Mach.blocks
  in
  Alcotest.(check bool) "spill ops present" true has_spill_ops

let test_caller_saved_clobber_is_adversarial () =
  (* run a program with calls under FAST (everything in memory): the
     clobbering must not affect correctness *)
  let ir =
    Cir.Lower.compile
      "int id(int x) { return x; }\nint main() { int a = 41; int b = id(1); print(a + b); return 0; }"
  in
  let expected = (Cir.Driver.reference ir).Cir.Interp.output in
  List.iter
    (fun kind ->
      let r = Cir.Driver.run kind ir in
      Alcotest.(check (list string)) "call-heavy program correct" expected
        r.Cir.Driver.outcome.Cir.Msim.output)
    all_kinds

let test_cycle_accounting_monotone () =
  (* more spills can never make the program faster on this cost model *)
  let ir = Cir.Lower.compile (Cir.Programs.find "Collatz") in
  let fast = Cir.Driver.run Cir.Driver.Fast ir in
  let pbqp = Cir.Driver.run Cir.Driver.Pbqp ir in
  Alcotest.(check bool) "spill count ordering" true
    (pbqp.Cir.Driver.spills <= fast.Cir.Driver.spills);
  Alcotest.(check bool) "cycle ordering" true
    (pbqp.Cir.Driver.outcome.Cir.Msim.cycles
    <= fast.Cir.Driver.outcome.Cir.Msim.cycles)

let test_rewrite_slots_only_in_calls () =
  (* MSlot operands are a call-argument addressing mode only *)
  List.iter
    (fun name ->
      let ir = Cir.Lower.compile (Cir.Programs.find name) in
      List.iter
        (fun (f : Cir.Ir.func) ->
          let mf = Cir.Rewrite.rewrite_func f (Cir.Regalloc.fast f) in
          Array.iter
            (fun (b : Cir.Mach.mblock) ->
              List.iter
                (fun instr ->
                  let check_val who = function
                    | Cir.Mach.MSlot _ when who <> `Call ->
                        Alcotest.failf "%s: slot operand outside a call" name
                    | _ -> ()
                  in
                  match instr with
                  | Cir.Mach.MCall (_, _, args) ->
                      List.iter (check_val `Call) args
                  | Cir.Mach.MBin (_, _, a, c) ->
                      check_val `Other a;
                      check_val `Other c
                  | Cir.Mach.MMov (_, a)
                  | Cir.Mach.MI2f (_, a)
                  | Cir.Mach.MF2i (_, a)
                  | Cir.Mach.MLoad (_, _, a)
                  | Cir.Mach.MPrint (_, a) ->
                      check_val `Other a
                  | Cir.Mach.MLoad_var _ -> ()
                  | Cir.Mach.MStore (_, a, c) ->
                      check_val `Other a;
                      check_val `Other c
                  | Cir.Mach.MStore_var (_, a) -> check_val `Other a
                  | Cir.Mach.MSpill_load _ | Cir.Mach.MSpill_store _ -> ())
                b.Cir.Mach.instrs)
            mf.Cir.Mach.blocks)
        ir.Cir.Ir.funcs)
    [ "Queens"; "Oscar" ]

(* ------------------------------------------------------------------ *)
(* Optimization passes *)

let instr_count (ir : Cir.Ir.program) =
  List.fold_left
    (fun acc (f : Cir.Ir.func) ->
      acc
      + Array.fold_left
          (fun a (b : Cir.Ir.block) -> a + List.length b.Cir.Ir.instrs)
          0 f.Cir.Ir.blocks)
    0 ir.Cir.Ir.funcs

let test_opt_folds_constants () =
  let ir = Cir.Lower.compile "int main() { int a = 2 + 3 * 4; print(a); return 0; }" in
  let before = instr_count ir in
  ignore (Cir.Opt.run ir);
  Alcotest.(check bool) "shrunk" true (instr_count ir < before);
  Alcotest.(check (list string)) "same output" [ "14" ]
    (Cir.Interp.run ir).Cir.Interp.output

let test_opt_kills_dead_code () =
  let ir =
    Cir.Lower.compile
      "int main() { int unused = 1 + 2; int x = 5; print(x); return 0; }"
  in
  ignore (Cir.Opt.run ir);
  Alcotest.(check (list string)) "output preserved" [ "5" ]
    (Cir.Interp.run ir).Cir.Interp.output

let test_opt_keeps_trapping_ops () =
  (* an unused division must survive DCE: it can trap *)
  let ir =
    Cir.Lower.compile
      "int main() { int z = 0; int t = 1 / z; print(9); return 0; }"
  in
  ignore (Cir.Opt.run ir);
  match Cir.Interp.run ir with
  | exception Cir.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "the trap was optimized away"

let prop_opt_preserves_semantics =
  qtest ~count:25 "optimizations preserve outputs on random programs"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Cir.Fuzzgen.generate ~rng:(rng seed) in
      let run ir =
        match Cir.Interp.run ir with
        | o -> Some o.Cir.Interp.output
        | exception Cir.Interp.Runtime_error _ -> None
      in
      run (Cir.Lower.compile src) = run (Cir.Opt.run (Cir.Lower.compile src)))

let test_opt_benchmarks_preserved () =
  List.iter
    (fun name ->
      let src = Cir.Programs.find name in
      let plain = (Cir.Interp.run (Cir.Lower.compile src)).Cir.Interp.output in
      let opt =
        (Cir.Interp.run (Cir.Opt.run (Cir.Lower.compile src))).Cir.Interp.output
      in
      Alcotest.(check (list string)) name plain opt)
    [ "Oscar"; "Quicksort"; "Nbody"; "Knapsack" ]

(* Differential fuzzing: random MiniC programs must produce identical
   output under the reference interpreter and every allocator's machine
   code.  This is the strongest whole-backend property we have. *)
let prop_fuzz_differential =
  qtest ~count:20 "random programs: allocators match the interpreter"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Cir.Fuzzgen.generate ~rng:(rng seed) in
      let ir = Cir.Lower.compile src in
      match Cir.Driver.reference ir with
      | exception Cir.Interp.Runtime_error _ -> true (* fuel-bound corner *)
      | expected ->
          List.for_all
            (fun kind ->
              let r = Cir.Driver.run kind ir in
              r.Cir.Driver.outcome.Cir.Msim.output
              = expected.Cir.Interp.output)
            all_kinds)

let test_all_benchmarks_compile () =
  Alcotest.(check int) "24 benchmarks" 24 (List.length Cir.Programs.all);
  List.iter
    (fun (name, src) ->
      match Cir.Lower.compile src with
      | exception Invalid_argument e -> Alcotest.failf "%s: %s" name e
      | ir -> (
          match Cir.Ir.check ir with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: IR check: %s" name e))
    Cir.Programs.all

let () =
  Alcotest.run "cir"
    [
      ( "frontend",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "comments and errors" `Quick
            test_lexer_comments_and_errors;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "type errors" `Quick test_lower_type_errors;
        ] );
      ( "interp",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "float arithmetic" `Quick test_interp_float;
          Alcotest.test_case "recursion and globals" `Quick
            test_interp_recursion_globals;
          Alcotest.test_case "break/continue" `Quick test_interp_break_continue;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "bounds checking" `Quick test_interp_oob;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "interference" `Quick test_liveness_interference_basic;
          Alcotest.test_case "loop weights" `Quick test_liveness_loop_weights;
          Alcotest.test_case "across call" `Quick test_liveness_across_call;
        ] );
      ( "allocators",
        [
          Alcotest.test_case "valid on benchmarks" `Quick
            test_allocators_valid_on_benchmarks;
          Alcotest.test_case "end-to-end output equality" `Quick
            test_end_to_end_output_equality;
          Alcotest.test_case "fast spills everything" `Quick
            test_fast_spills_everything;
          Alcotest.test_case "fast is slowest" `Quick test_fast_is_slowest;
          prop_allocations_valid_random;
        ] );
      ( "pbqp",
        [
          Alcotest.test_case "build structure" `Quick test_pbqp_build_structure;
          Alcotest.test_case "scholz allocator" `Quick
            test_pbqp_scholz_allocator_reasonable;
          Alcotest.test_case "rl end to end" `Quick test_pbqp_rl_end_to_end;
        ] );
      ( "opt",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_folds_constants;
          Alcotest.test_case "dead code" `Quick test_opt_kills_dead_code;
          Alcotest.test_case "trapping ops survive" `Quick
            test_opt_keeps_trapping_ops;
          prop_opt_preserves_semantics;
          Alcotest.test_case "benchmarks preserved" `Quick
            test_opt_benchmarks_preserved;
        ] );
      ( "backend",
        [
          Alcotest.test_case "spill code inserted" `Quick test_spill_code_inserted;
          Alcotest.test_case "slots only in calls" `Quick
            test_rewrite_slots_only_in_calls;
          Alcotest.test_case "adversarial clobber" `Quick
            test_caller_saved_clobber_is_adversarial;
          Alcotest.test_case "cycle accounting" `Quick
            test_cycle_accounting_monotone;
          prop_fuzz_differential;
          Alcotest.test_case "all 24 compile" `Quick test_all_benchmarks_compile;
        ] );
    ]
