(* Tests for the ATE substrate: machine model, parser, liveness, PBQP
   construction (cross-validated against the independent checker), the
   translation pipeline and the PRO generator. *)

open Testutil

let machine = Ate.Machine.default

(* ------------------------------------------------------------------ *)
(* Machine model *)

let test_machine_banks () =
  Alcotest.(check int) "13 registers" 13 machine.Ate.Machine.nregs;
  Alcotest.(check int) "8 ways" 8 machine.Ate.Machine.ways;
  let count b = List.length (Ate.Machine.bank_regs machine b) in
  Alcotest.(check int) "bank sizes partition" 13
    (count Ate.Machine.A + count Ate.Machine.B + count Ate.Machine.C);
  Alcotest.(check bool) "r0 in A" true
    (Ate.Machine.bank_of machine 0 = Ate.Machine.A);
  Alcotest.(check bool) "r12 in C" true
    (Ate.Machine.bank_of machine 12 = Ate.Machine.C);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Machine.bank_of: register 13 out of range") (fun () ->
      ignore (Ate.Machine.bank_of machine 13))

let test_machine_pairing () =
  (* same bank always compatible *)
  List.iter
    (fun b ->
      let regs = Ate.Machine.bank_regs machine b in
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              Alcotest.(check bool) "same bank" true
                (Ate.Machine.pair_compatible machine r1 r2))
            regs)
        regs)
    [ Ate.Machine.A; Ate.Machine.B; Ate.Machine.C ];
  (* A x C never compatible *)
  List.iter
    (fun ra ->
      List.iter
        (fun rc ->
          Alcotest.(check bool) "A x C incompatible" false
            (Ate.Machine.pair_compatible machine ra rc))
        (Ate.Machine.bank_regs machine Ate.Machine.C))
    (Ate.Machine.bank_regs machine Ate.Machine.A);
  (* symmetry *)
  for r1 = 0 to 12 do
    for r2 = 0 to 12 do
      Alcotest.(check bool) "symmetric"
        (Ate.Machine.pair_compatible machine r1 r2)
        (Ate.Machine.pair_compatible machine r2 r1)
    done
  done

let test_machine_models () =
  Alcotest.(check int) "two models" 2 (List.length Ate.Machine.models);
  let b = Ate.Machine.model "modelB" in
  Alcotest.(check int) "modelB regs" 10 b.Ate.Machine.nregs;
  Alcotest.(check int) "modelB ways" 4 b.Ate.Machine.ways;
  (* banks still partition the smaller register file *)
  let count bank = List.length (Ate.Machine.bank_regs b bank) in
  Alcotest.(check int) "banks partition" 10
    (count Ate.Machine.A + count Ate.Machine.B + count Ate.Machine.C);
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Machine.model: unknown \"zork\" (known: modelA, modelB)")
    (fun () -> ignore (Ate.Machine.model "zork"))

let test_cross_ate_translation () =
  (* the paper's translation story: a program written for one ATE is
     re-allocated for a different model; the emit stream must survive *)
  let p =
    Ate.Parse.of_string
      "mov v0, #3\nmov v1, #1\nmov v2, #85\nloop:\nmov v3, v2\nemit v3\n\
       nop\nnop\nnop\nsub v0, v0, v1\njnz v0, loop\nhalt\n"
  in
  let target = Ate.Machine.model "modelB" in
  let solve g =
    fst (Solvers.Liberty.solve ~max_liberty:10 ~max_states:100_000 g)
  in
  match Ate.Translate.allocate target ~solve p with
  | Error e -> Alcotest.fail ("cross-ATE allocation failed: " ^ e)
  | Ok q ->
      Alcotest.(check bool) "emit stream preserved across models" true
        (Ate.Interp.same_behaviour p q);
      (* every physical register is within the target's file *)
      let info = Ate.Program.analyze_exn q in
      Array.iter
        (fun i ->
          List.iter
            (function
              | Ate.Ast.Phys r ->
                  Alcotest.(check bool) "register in range" true
                    (r >= 0 && r < target.Ate.Machine.nregs)
              | Ate.Ast.Virt _ -> Alcotest.fail "virtual register survived")
            (Ate.Ast.defs i @ Ate.Ast.uses i))
        info.Ate.Program.instrs

let test_machine_classes () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "counter = bank A"
        (Ate.Machine.bank_of machine r = Ate.Machine.A)
        (Ate.Machine.class_allowed machine Ate.Machine.Counter r))
    (List.init 13 Fun.id);
  Alcotest.(check bool) "any allows all" true
    (List.for_all
       (Ate.Machine.class_allowed machine Ate.Machine.Any)
       (List.init 13 Fun.id))

(* ------------------------------------------------------------------ *)
(* Parser *)

let sample_src =
  {|
; a small test program
.name sample
start:
  mov v0, #8
  mov v1, #1
loop0:
  add v2, v0, v1
  shl v3, v2, 2
  mov v4, v3
  emit v4
  sub v0, v0, v1
  jnz v0, loop0
  halt
|}

let test_parse_basic () =
  let p = Ate.Parse.of_string sample_src in
  Alcotest.(check string) "name" "sample" p.Ate.Ast.name;
  let info = Ate.Program.analyze_exn p in
  Alcotest.(check int) "instructions" 9 (Ate.Program.instr_count info);
  Alcotest.(check int) "vregs" 5 (Ate.Program.vreg_count info)

let test_parse_roundtrip () =
  let p = Ate.Parse.of_string sample_src in
  let p' = Ate.Parse.roundtrip p in
  Alcotest.(check string) "printed and reparsed equal" (Ate.Ast.to_string p)
    (Ate.Ast.to_string p')

let test_parse_errors () =
  let expect s =
    match Ate.Parse.of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ s)
  in
  expect "bogus v0, v1\n";
  expect "mov v0\n";
  expect "add v0, v1\n";
  expect "mov x9, #1\n";
  expect "jnz v0, 123bad\n";
  expect "shl v0, v1, x\n"

let test_parse_roundtrip_generated =
  qtest ~count:20 "generated programs roundtrip through the printer"
    QCheck.(int_bound 1000)
    (fun seed ->
      let p =
        Ate.Progen.generate ~rng:(rng seed) ~target_vregs:25 ()
      in
      Ate.Ast.to_string (Ate.Parse.roundtrip p) = Ate.Ast.to_string p)

(* ------------------------------------------------------------------ *)
(* Program analysis *)

let test_analyze_undefined_label () =
  let p = Ate.Parse.of_string "jnz v0, nowhere\nhalt\n" in
  match Ate.Program.analyze p with
  | Error e ->
      Alcotest.(check bool) "mentions target" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected analysis error"

let test_analyze_duplicate_label () =
  let p = Ate.Parse.of_string "l:\nnop\nl:\nhalt\n" in
  match Ate.Program.analyze p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected duplicate label error"

let test_schedulability () =
  (* two writes of v0 within one 8-instruction major cycle *)
  let p = Ate.Parse.of_string "mov v0, #1\nmov v0, #2\nhalt\n" in
  let info = Ate.Program.analyze_exn p in
  (match Ate.Program.check_schedulable machine info with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected write-twice violation");
  (* read then later write in the same cycle *)
  let p2 = Ate.Parse.of_string "mov v1, v0\nmov v0, #2\nhalt\n" in
  let info2 = Ate.Program.analyze_exn p2 in
  (match Ate.Program.check_schedulable machine info2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected read-before-write violation");
  (* spaced a full cycle apart: fine *)
  let p3 =
    Ate.Parse.of_string
      "mov v0, #1\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nmov v0, #2\nhalt\n"
  in
  let info3 = Ate.Program.analyze_exn p3 in
  Alcotest.(check bool) "separated writes fine" true
    (Ate.Program.check_schedulable machine info3 = Ok ())

(* ------------------------------------------------------------------ *)
(* Liveness *)

let test_liveness_loop () =
  let p = Ate.Parse.of_string sample_src in
  let info = Ate.Program.analyze_exn p in
  let live = Ate.Liveness.compute info in
  (* v1 (the decrement) is live throughout the loop: live at the jnz *)
  let jnz_pos = Ate.Program.instr_count info - 2 in
  Alcotest.(check bool) "decrement live across back edge" true
    (Ate.Liveness.Iset.mem 1 (Ate.Liveness.live_at live (jnz_pos - 1)));
  let pairs = Ate.Liveness.interference_pairs info live in
  Alcotest.(check bool) "counter and decrement interfere" true
    (List.mem (0, 1) pairs)

let test_liveness_pressure () =
  let p = Ate.Parse.of_string sample_src in
  let info = Ate.Program.analyze_exn p in
  let live = Ate.Liveness.compute info in
  Alcotest.(check bool) "pressure positive and below nregs" true
    (Ate.Liveness.max_pressure info live > 0
    && Ate.Liveness.max_pressure info live <= 13)

(* ------------------------------------------------------------------ *)
(* PBQP construction vs the independent validator *)

let build_pro k =
  let p = Ate.Progen.pro k in
  let info = Ate.Program.analyze_exn p in
  (p, info, Ate.Pbqp_build.build machine info)

let test_pbqp_zero_inf_structure () =
  let _, _, built = build_pro 1 in
  let g = built.Ate.Pbqp_build.graph in
  Alcotest.(check int) "m = 13" 13 (Pbqp.Graph.m g);
  List.iter
    (fun u ->
      Pbqp.Vec.iteri
        (fun _ c ->
          Alcotest.(check bool) "vertex costs 0/inf" true
            (Pbqp.Cost.is_inf c || Pbqp.Cost.equal c Pbqp.Cost.zero))
        (Pbqp.Graph.cost g u))
    (Pbqp.Graph.vertices g);
  Pbqp.Graph.fold_edges
    (fun _ _ muv () ->
      Pbqp.Mat.iteri
        (fun _ _ c ->
          Alcotest.(check bool) "matrix costs 0/inf" true
            (Pbqp.Cost.is_inf c || Pbqp.Cost.equal c Pbqp.Cost.zero))
        muv)
    g ()

(* Any zero-cost PBQP solution must pass the independent validator: the
   encoding is sound. *)
let prop_pbqp_solution_validates =
  qtest ~count:15 "PBQP solutions pass the independent validator"
    QCheck.(int_bound 500)
    (fun seed ->
      let p = Ate.Progen.generate ~rng:(rng seed) ~target_vregs:18 () in
      match Ate.Program.analyze p with
      | Error _ -> true
      | Ok info -> (
          match
            ( Ate.Program.require_virtual info,
              Ate.Program.check_schedulable machine info )
          with
          | Ok (), Ok () -> (
              let built = Ate.Pbqp_build.build machine info in
              match
                Solvers.Liberty.solve ~max_liberty:13 ~max_states:30_000
                  built.Ate.Pbqp_build.graph
              with
              | Some sol, _ ->
                  let assignment =
                    Ate.Pbqp_build.assignment_of_solution built sol
                  in
                  Ate.Validate.check machine info ~assignment = Ok ()
              | None, _ -> true)
          | _ -> true))

(* And the generator's own witness must be a zero-cost PBQP solution: the
   encoding is complete w.r.t. the machine rules. *)
let prop_witness_is_zero_cost =
  qtest ~count:15 "generator witness is a zero-cost PBQP solution"
    QCheck.(int_bound 500)
    (fun seed ->
      let p, witness =
        Ate.Progen.generate_with_witness ~rng:(rng seed) ~target_vregs:20 ()
      in
      match Ate.Program.analyze p with
      | Error _ -> false
      | Ok info ->
          let built = Ate.Pbqp_build.build machine info in
          let g = built.Ate.Pbqp_build.graph in
          let sol =
            Pbqp.Solution.of_array
              (Array.map
                 (fun v -> Option.value (witness v) ~default:(-1))
                 built.Ate.Pbqp_build.vreg_of_vertex)
          in
          Pbqp.Cost.equal (Pbqp.Solution.cost g sol) Pbqp.Cost.zero)

let test_validator_rejects_bad () =
  let p = Ate.Parse.of_string "mov v0, #1\nmov v1, v0\nemit v1\nadd v2, v0, v1\nhalt\n" in
  let info = Ate.Program.analyze_exn p in
  (* v1 must be bank C (emit); r0 is bank A *)
  let bad v = if v = 1 then Some 0 else Some (v + 4) in
  match Ate.Validate.check machine info ~assignment:bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected class violation"

(* ------------------------------------------------------------------ *)
(* Translation *)

let test_translate_apply () =
  let p = Ate.Parse.of_string sample_src in
  let q = Ate.Translate.apply p ~assignment:(fun v -> Some (v + 1)) in
  Alcotest.(check bool) "no virtual registers left" true
    (Ate.Program.require_virtual (Ate.Program.analyze_exn q) = Error "program contains physical registers")

let test_translate_end_to_end () =
  let p = Ate.Progen.pro 1 in
  let solve g =
    fst (Solvers.Liberty.solve ~max_liberty:13 ~max_states:200_000 g)
  in
  match Ate.Translate.allocate machine ~solve p with
  | Ok q ->
      (* the output program parses and has only physical registers *)
      let q' = Ate.Parse.roundtrip q in
      Alcotest.(check string) "roundtrips" (Ate.Ast.to_string q)
        (Ate.Ast.to_string q')
  | Error e -> Alcotest.fail ("translation failed: " ^ e)

(* ------------------------------------------------------------------ *)
(* Interpreter + translation end-to-end semantics *)

let test_interp_basics () =
  let p =
    Ate.Parse.of_string
      "mov v0, #3\nmov v1, #1\nloop:\nmov v2, v0\nemit v2\nsub v0, v0, v1\n\
       jnz v0, loop\nhalt\n"
  in
  let o = Ate.Interp.run p in
  Alcotest.(check (list (list int))) "emit stream" [ [ 3 ]; [ 2 ]; [ 1 ] ]
    o.Ate.Interp.emits

let test_interp_shl_masks () =
  let p = Ate.Parse.of_string "mov v0, #40000\nshl v1, v0, 4\nemit v1\nhalt\n" in
  let o = Ate.Interp.run p in
  Alcotest.(check (list (list int))) "16-bit mask" [ [ 40000 lsl 4 land 0xFFFF ] ]
    o.Ate.Interp.emits

let test_interp_fuel () =
  let p = Ate.Parse.of_string "loop:\njmp loop\n" in
  match Ate.Interp.run ~fuel:100 p with
  | exception Ate.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* the witness translation must emit exactly what the virtual program
   emits — the allocation-level semantics check *)
let prop_translation_preserves_emits =
  qtest ~count:15 "witness translation preserves the emit stream"
    QCheck.(int_bound 500)
    (fun seed ->
      let p, witness =
        Ate.Progen.generate_with_witness ~rng:(rng seed) ~target_vregs:22 ()
      in
      let q = Ate.Translate.apply p ~assignment:witness in
      Ate.Interp.same_behaviour p q)

let test_solver_translation_preserves_emits () =
  let p = Ate.Progen.pro 2 in
  let solve g =
    fst (Solvers.Liberty.solve ~max_liberty:13 ~max_states:200_000 g)
  in
  match Ate.Translate.allocate machine ~solve p with
  | Error e -> Alcotest.fail ("allocation failed: " ^ e)
  | Ok q ->
      Alcotest.(check bool) "same emit stream" true
        (Ate.Interp.same_behaviour p q)

(* a deliberately broken allocation must be caught by the interpreter *)
let test_bad_allocation_changes_emits () =
  let p =
    Ate.Parse.of_string
      "mov v0, #7\nmov v1, #9\nnop\nnop\nnop\nnop\nnop\nnop\nmov v2, v0\n\
       mov v3, v1\nemit v2, v3\nhalt\n"
  in
  (* v0 and v1 interfere; map both to r0 *)
  let clash v = Some (match v with 0 | 1 -> 0 | 2 -> 9 | _ -> 10) in
  let q = Ate.Translate.apply p ~assignment:clash in
  Alcotest.(check bool) "collision corrupts the stream" false
    (Ate.Interp.same_behaviour p q)

(* ------------------------------------------------------------------ *)
(* Scheduling (nop padding) *)

let test_schedule_fixes_write_twice () =
  let p = Ate.Parse.of_string "mov v0, #1\nmov v0, #2\nhalt\n" in
  let info = Ate.Program.analyze_exn p in
  Alcotest.(check bool) "originally unschedulable" true
    (Ate.Program.check_schedulable machine info <> Ok ());
  let padded = Ate.Schedule.pad machine p in
  let info' = Ate.Program.analyze_exn padded in
  Alcotest.(check bool) "padded program schedulable" true
    (Ate.Program.check_schedulable machine info' = Ok ());
  Alcotest.(check int) "nops inserted" 7 (Ate.Schedule.nops_added machine p)

let test_schedule_noop_on_good_programs () =
  let p = Ate.Progen.pro 1 in
  Alcotest.(check int) "already schedulable: no nops" 0
    (Ate.Schedule.nops_added machine p)

let prop_schedule_always_fixes =
  qtest ~count:25 "padding makes arbitrary write patterns schedulable"
    QCheck.(int_bound 1000)
    (fun seed ->
      (* random program with deliberate same-vreg rewrites *)
      let r = rng seed in
      let lines = ref [] in
      for _ = 1 to 20 do
        let v = Random.State.int r 4 in
        lines :=
          Ate.Ast.Instr
            (Ate.Ast.Mov
               { dst = Ate.Ast.Virt v; src = Ate.Ast.Imm (Random.State.int r 9) })
          :: !lines
      done;
      lines := Ate.Ast.Instr Ate.Ast.Halt :: !lines;
      let p = { Ate.Ast.name = "fuzz"; lines = Array.of_list (List.rev !lines) } in
      let padded = Ate.Schedule.pad machine p in
      Ate.Program.check_schedulable machine (Ate.Program.analyze_exn padded)
      = Ok ())

let test_translate_auto_schedule () =
  let p = Ate.Parse.of_string "mov v0, #1\nmov v0, #2\nemit v1\nmov v1, #3\nhalt\n" in
  let solve g =
    fst (Solvers.Liberty.solve ~max_liberty:13 ~max_states:100_000 g)
  in
  (match Ate.Translate.allocate machine ~solve p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should be unschedulable without auto_schedule");
  match Ate.Translate.allocate ~auto_schedule:true machine ~solve p with
  | Ok q ->
      Alcotest.(check bool) "result parses" true
        (Ate.Ast.to_string (Ate.Parse.roundtrip q) = Ate.Ast.to_string q)
  | Error e -> Alcotest.fail ("auto_schedule failed: " ^ e)

(* ------------------------------------------------------------------ *)
(* PRO generator *)

let test_pro_profiles () =
  List.iter
    (fun k ->
      let _, info, built = build_pro k in
      let n, low = Ate.Pbqp_build.liberty_profile built in
      Alcotest.(check bool)
        (Printf.sprintf "PRO%d size near target" k)
        true
        (abs (n - Ate.Progen.pro_sizes.(k - 1)) <= 12);
      Alcotest.(check bool)
        (Printf.sprintf "PRO%d has low-liberty vertices" k)
        true (low > 0.1);
      Alcotest.(check bool) "schedulable" true
        (Ate.Program.check_schedulable machine info = Ok ()))
    [ 1; 3; 5 ]

let test_pro_deterministic () =
  let a = Ate.Progen.pro 2 in
  let b = Ate.Progen.pro 2 in
  Alcotest.(check string) "same program" (Ate.Ast.to_string a)
    (Ate.Ast.to_string b)

let test_pro_range () =
  Alcotest.check_raises "index range"
    (Invalid_argument "Progen.pro: index must be in 1..10") (fun () ->
      ignore (Ate.Progen.pro 11))

let test_scholz_fails_on_pros () =
  (* the original solver's failure on ATE programs (§V-B: 9 of 10) *)
  let failures =
    List.filter
      (fun k ->
        let _, _, built = build_pro k in
        not (Solvers.Scholz.succeeded built.Ate.Pbqp_build.graph))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "Scholz fails on most PROs" true
    (List.length failures >= 3)

let () =
  Alcotest.run "ate"
    [
      ( "machine",
        [
          Alcotest.test_case "banks" `Quick test_machine_banks;
          Alcotest.test_case "pairing" `Quick test_machine_pairing;
          Alcotest.test_case "classes" `Quick test_machine_classes;
          Alcotest.test_case "models" `Quick test_machine_models;
          Alcotest.test_case "cross-ATE translation" `Quick
            test_cross_ate_translation;
        ] );
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          test_parse_roundtrip_generated;
        ] );
      ( "program",
        [
          Alcotest.test_case "undefined label" `Quick test_analyze_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_analyze_duplicate_label;
          Alcotest.test_case "schedulability" `Quick test_schedulability;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "loop liveness" `Quick test_liveness_loop;
          Alcotest.test_case "pressure" `Quick test_liveness_pressure;
        ] );
      ( "pbqp",
        [
          Alcotest.test_case "0/inf structure" `Quick test_pbqp_zero_inf_structure;
          prop_pbqp_solution_validates;
          prop_witness_is_zero_cost;
          Alcotest.test_case "validator rejects bad" `Quick
            test_validator_rejects_bad;
        ] );
      ( "translate",
        [
          Alcotest.test_case "apply" `Quick test_translate_apply;
          Alcotest.test_case "end to end" `Quick test_translate_end_to_end;
        ] );
      ( "interp",
        [
          Alcotest.test_case "loop semantics" `Quick test_interp_basics;
          Alcotest.test_case "shl masks to 16 bits" `Quick test_interp_shl_masks;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          prop_translation_preserves_emits;
          Alcotest.test_case "solver translation preserves emits" `Quick
            test_solver_translation_preserves_emits;
          Alcotest.test_case "bad allocation detected" `Quick
            test_bad_allocation_changes_emits;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "fixes write-twice" `Quick
            test_schedule_fixes_write_twice;
          Alcotest.test_case "no-op on good programs" `Quick
            test_schedule_noop_on_good_programs;
          prop_schedule_always_fixes;
          Alcotest.test_case "auto_schedule in translate" `Quick
            test_translate_auto_schedule;
        ] );
      ( "progen",
        [
          Alcotest.test_case "profiles" `Quick test_pro_profiles;
          Alcotest.test_case "deterministic" `Quick test_pro_deterministic;
          Alcotest.test_case "index range" `Quick test_pro_range;
          Alcotest.test_case "Scholz fails on PROs" `Quick
            test_scholz_fails_on_pros;
        ] );
    ]
