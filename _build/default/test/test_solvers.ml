(* Tests for the baseline PBQP solvers: brute-force branch & bound, the
   Scholz–Eckstein reduction solver, and liberty-based enumeration. *)

open Pbqp
open Solvers
open Testutil

(* ------------------------------------------------------------------ *)
(* Brute force *)

let test_brute_fig2 () =
  let g = Generate.fig2 () in
  match fst (Brute.solve g) with
  | Some (sol, c) ->
      Alcotest.check cost "optimum is 11 (paper)" 11.0 c;
      Alcotest.check solution "optimal selection (0,0,0)"
        (Solution.of_array [| 0; 0; 0 |])
        sol
  | None -> Alcotest.fail "fig2 is solvable"

let test_brute_single_vertex () =
  let g = Graph.create ~m:3 ~n:1 in
  Graph.set_cost g 0 (Vec.of_array [| 5.0; 1.0; Cost.inf |]);
  match fst (Brute.solve g) with
  | Some (sol, c) ->
      Alcotest.check cost "min entry" 1.0 c;
      Alcotest.(check int) "color" 1 (Solution.get sol 0)
  | None -> Alcotest.fail "solvable"

let test_brute_infeasible () =
  (* 2-color triangle with pure interference: no finite assignment *)
  let g = Graph.create ~m:2 ~n:3 in
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 0 2 (Mat.interference 2);
  Alcotest.(check bool) "infeasible" false (Brute.solvable g);
  Alcotest.check cost_exact "optimal cost inf" Cost.inf (Brute.optimal_cost g)

let test_brute_feasible_coloring () =
  (* 3-color triangle is colorable at zero cost *)
  let g = Graph.create ~m:3 ~n:3 in
  Graph.add_edge g 0 1 (Mat.interference 3);
  Graph.add_edge g 1 2 (Mat.interference 3);
  Graph.add_edge g 0 2 (Mat.interference 3);
  Alcotest.check cost "zero" 0.0 (Brute.optimal_cost g)

let test_brute_budget () =
  let g =
    Generate.erdos_renyi ~rng:(rng 1)
      { Generate.default with n = 10; m = 4; p_edge = 0.5 }
  in
  let _, stats = Brute.solve ~max_states:100 g in
  Alcotest.(check bool) "stopped at budget" true (stats.Brute.states <= 101)

let test_brute_empty_graph () =
  let g = Graph.create ~m:2 ~n:0 in
  match fst (Brute.solve g) with
  | Some (_, c) -> Alcotest.check cost "empty optimum 0" 0.0 c
  | None -> Alcotest.fail "empty graph has the empty solution"

(* ------------------------------------------------------------------ *)
(* Scholz–Eckstein *)

let test_scholz_fig2 () =
  let g = Generate.fig2 () in
  let _, c, stats = Scholz.solve_with_cost g in
  (* fig2 is a triangle: R2 then R1 then R0, all exact *)
  Alcotest.check cost "finds the optimum exactly" 11.0 c;
  Alcotest.(check int) "no heuristic reduction on a triangle" 0 stats.Scholz.rn

let test_scholz_path_exact () =
  (* all degrees <= 2: reductions are exact, result must equal brute *)
  let g = Graph.create ~m:2 ~n:4 in
  Graph.set_cost g 0 (Vec.of_array [| 2.0; 1.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; 3.0 |]);
  Graph.set_cost g 2 (Vec.of_array [| 1.0; 1.0 |]);
  Graph.set_cost g 3 (Vec.of_array [| 4.0; 0.0 |]);
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 2 3 (Mat.interference 2);
  let _, c, stats = Scholz.solve_with_cost g in
  Alcotest.check cost "matches brute" (Brute.optimal_cost g) c;
  Alcotest.(check int) "no RN needed" 0 stats.Scholz.rn

let test_scholz_cycle_exact () =
  let g = Graph.create ~m:3 ~n:4 in
  List.iter
    (fun u ->
      Graph.set_cost g u
        (Vec.of_array [| float_of_int u; 1.0; 2.0 |]))
    [ 0; 1; 2; 3 ];
  Graph.add_edge g 0 1 (Mat.interference 3);
  Graph.add_edge g 1 2 (Mat.interference 3);
  Graph.add_edge g 2 3 (Mat.interference 3);
  Graph.add_edge g 3 0 (Mat.interference 3);
  let _, c, stats = Scholz.solve_with_cost g in
  Alcotest.check cost "cycle optimum" (Brute.optimal_cost g) c;
  Alcotest.(check int) "degree-2 reductions only" 0 stats.Scholz.rn

let test_scholz_complete_assignment () =
  let g =
    Generate.erdos_renyi ~rng:(rng 9)
      { Generate.default with n = 20; m = 4; p_edge = 0.3 }
  in
  let sol, _ = Scholz.solve g in
  Alcotest.(check bool) "complete" true (Solution.is_complete sol)

let test_scholz_input_untouched () =
  let g =
    Generate.erdos_renyi ~rng:(rng 13)
      { Generate.default with n = 15; m = 3; p_edge = 0.4 }
  in
  let snapshot = Graph.copy g in
  ignore (Scholz.solve g);
  Alcotest.check graph "input graph unchanged" snapshot g

(* The motivating failure of §II-A: on dense no-spill (0/inf) graphs the
   heuristic RN reduction fails even though a solution exists. *)
let test_scholz_can_fail_on_ate_style () =
  let failures = ref 0 in
  for seed = 0 to 29 do
    let g, witness =
      Generate.planted ~rng:(rng seed)
        {
          Generate.default with
          n = 12;
          m = 4;
          p_edge = 0.6;
          p_inf = 0.5;
          zero_inf = true;
        }
    in
    Alcotest.(check bool) "witness valid" true (Solution.valid g witness);
    if not (Scholz.succeeded g) then incr failures
  done;
  Alcotest.(check bool)
    "solvable dense 0/inf instances defeat the heuristic" true (!failures > 0)

(* ------------------------------------------------------------------ *)
(* Liberty-based enumeration *)

let test_liberty_fig2 () =
  let g = Generate.fig2 () in
  match fst (Liberty.solve g) with
  | Some sol ->
      Alcotest.(check bool) "finite" true (Cost.is_finite (Solution.cost g sol))
  | None -> Alcotest.fail "fig2 feasible"

let test_liberty_infeasible () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 0 2 (Mat.interference 2);
  let result, stats = Liberty.solve g in
  Alcotest.(check bool) "no solution" true (result = None);
  Alcotest.(check bool) "not a budget stop" false stats.Liberty.budget_exhausted

let test_liberty_budget () =
  let g =
    Generate.erdos_renyi ~rng:(rng 21)
      {
        Generate.default with
        n = 14;
        m = 3;
        p_edge = 0.9;
        p_inf = 0.4;
        zero_inf = true;
      }
  in
  let result, stats = Liberty.solve ~max_states:5 g in
  if stats.Liberty.budget_exhausted then
    Alcotest.(check bool) "unknown on budget stop" true (result = None)
  else Alcotest.(check bool) "answered within budget" true (stats.Liberty.states <= 5)

let test_liberty_counts_states () =
  let g =
    Generate.erdos_renyi ~rng:(rng 2)
      {
        Generate.default with
        n = 12;
        m = 4;
        p_edge = 0.5;
        p_inf = 0.3;
        zero_inf = true;
      }
  in
  let _, stats = Liberty.solve g in
  Alcotest.(check bool) "states counted" true (stats.Liberty.states > 0)

(* ------------------------------------------------------------------ *)
(* MRV dynamic-order search *)

let test_mrv_fig2 () =
  match fst (Mrv.solve (Generate.fig2 ())) with
  | Some sol ->
      Alcotest.(check bool) "finite" true
        (Cost.is_finite (Solution.cost (Generate.fig2 ()) sol))
  | None -> Alcotest.fail "fig2 feasible"

let test_mrv_infeasible_proof () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.add_edge g 0 1 (Mat.interference 2);
  Graph.add_edge g 1 2 (Mat.interference 2);
  Graph.add_edge g 0 2 (Mat.interference 2);
  let result, stats = Mrv.solve g in
  Alcotest.(check bool) "no solution" true (result = None);
  Alcotest.(check bool) "proof, not budget" false stats.Mrv.budget_exhausted

let prop_mrv_complete =
  qtest ~count:60 "MRV agrees with brute force on feasibility"
    (arb_graph_spec ~zero_inf:true ~nmax:7 ~mmax:3 ~p_inf:0.4 ()) (fun spec ->
      let g = build_graph spec in
      let result, stats = Mrv.solve g in
      (not stats.Mrv.budget_exhausted)
      && Bool.equal (Option.is_some result) (Brute.solvable g)
      && match result with Some s -> Solution.valid g s | None -> true)

let test_mrv_beats_static_order_on_planted () =
  (* dynamic fail-first should need no more states than the static
     liberty order on hard planted instances, usually far fewer *)
  let wins = ref 0 in
  for seed = 0 to 4 do
    let g, _ =
      Generate.planted ~rng:(rng (300 + seed))
        { Generate.default with n = 20; m = 6; p_edge = 0.35; p_inf = 0.5;
          zero_inf = true }
    in
    let _, ms = Mrv.solve ~max_states:50_000 g in
    let _, ls = Liberty.solve ~max_liberty:6 ~max_states:50_000 g in
    if ms.Mrv.states <= ls.Liberty.states then incr wins
  done;
  Alcotest.(check bool) "MRV no worse on most instances" true (!wins >= 3)

(* ------------------------------------------------------------------ *)
(* Partial exact reduction *)

let test_reduce_exact_residual_degrees () =
  let g =
    Generate.erdos_renyi ~rng:(rng 17)
      { Generate.default with n = 25; m = 4; p_edge = 0.15 }
  in
  let residual, reduction = Scholz.reduce_exact g in
  List.iter
    (fun u ->
      Alcotest.(check bool) "residual degree >= 3" true
        (Pbqp.Graph.degree residual u >= 3))
    (Pbqp.Graph.vertices residual);
  Alcotest.(check int) "counts add up" (Graph.capacity g)
    (Pbqp.Graph.n_alive residual + Scholz.reduced_count reduction)

let prop_reduce_exact_preserves_optimum =
  qtest ~count:50 "exact reduction + completion preserves the optimum"
    (arb_graph_spec ~nmax:7 ~mmax:3 ~p_inf:0.15 ()) (fun spec ->
      let g = build_graph spec in
      let residual, reduction = Scholz.reduce_exact g in
      (* solve the residual exactly, complete, compare against brute *)
      let sol =
        match fst (Brute.solve residual) with
        | Some (s, _) -> Some s
        | None ->
            if Pbqp.Graph.n_alive residual = 0 then
              Some (Solution.make (Graph.capacity g))
            else None
      in
      match sol with
      | None -> true (* residual infeasible: nothing to check *)
      | Some s ->
          let s = Solution.copy s in
          Scholz.complete reduction s;
          Cost.approx_equal ~eps:1e-6 (Solution.cost g s) (Brute.optimal_cost g))

let test_complete_requires_residual_assigned () =
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 1.0; 2.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 3.0; 4.0 |]);
  Graph.add_edge g 0 1 (Mat.interference 2);
  (* degree-1 chain reduces fully; an RN-free stack still needs its
     neighbors assigned in order, which complete handles itself *)
  let residual, reduction = Scholz.reduce_exact g in
  Alcotest.(check int) "fully reduced" 0 (Pbqp.Graph.n_alive residual);
  let sol = Solution.make 2 in
  Scholz.complete reduction sol;
  Alcotest.(check bool) "complete assignment" true (Solution.is_complete sol);
  Alcotest.check cost "optimal" (Brute.optimal_cost g) (Solution.cost g sol)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_scholz_never_beats_brute =
  qtest ~count:60 "Scholz cost >= brute optimum"
    (arb_graph_spec ~nmax:7 ~mmax:3 ()) (fun spec ->
      let g = build_graph spec in
      let _, c, _ = Scholz.solve_with_cost g in
      Cost.compare (Brute.optimal_cost g) (Cost.add c 1e-6) <= 0)

let prop_scholz_exact_when_low_degree =
  qtest ~count:60 "Scholz is exact when no RN reduction fires"
    (arb_graph_spec ~nmax:7 ~mmax:3 ~p_inf:0.1 ()) (fun spec ->
      let g = build_graph spec in
      let _, c, stats = Scholz.solve_with_cost g in
      stats.Scholz.rn > 0 || Cost.approx_equal ~eps:1e-6 (Brute.optimal_cost g) c)

let prop_liberty_complete_on_zero_inf =
  (* With max_liberty covering every vertex, enumeration is complete:
     it finds a zero-cost solution exactly when brute force does. *)
  qtest ~count:60 "liberty enumeration completeness on 0/inf graphs"
    (arb_graph_spec ~zero_inf:true ~nmax:7 ~mmax:3 ~p_inf:0.4 ()) (fun spec ->
      let g = build_graph spec in
      let result, stats = Liberty.solve ~max_liberty:spec.m g in
      (not stats.Liberty.budget_exhausted)
      && Bool.equal (Option.is_some result) (Brute.solvable g))

let prop_liberty_backward_agrees_with_forward =
  qtest ~count:40 "backward pruning finds a solution iff forward does"
    (arb_graph_spec ~zero_inf:true ~nmax:7 ~mmax:3 ~p_inf:0.4 ()) (fun spec ->
      let g = build_graph spec in
      let fwd, fs = Liberty.solve ~max_liberty:spec.m g in
      let bwd, bs = Liberty.solve ~max_liberty:spec.m ~pruning:Liberty.Backward g in
      (not fs.Liberty.budget_exhausted)
      && (not bs.Liberty.budget_exhausted)
      && Bool.equal (Option.is_some fwd) (Option.is_some bwd)
      && bs.Liberty.states >= fs.Liberty.states)

let prop_liberty_solutions_are_valid =
  qtest ~count:60 "liberty solutions have finite cost"
    (arb_graph_spec ~zero_inf:true ~nmax:8 ~mmax:4 ~p_inf:0.3 ()) (fun spec ->
      let g = build_graph spec in
      match fst (Liberty.solve g) with
      | Some sol -> Solution.valid g sol
      | None -> true)

let prop_reduce_exact_idempotent =
  qtest ~count:40 "reduce_exact leaves nothing reducible"
    (arb_graph_spec ~nmax:9 ~mmax:3 ()) (fun spec ->
      let g = build_graph spec in
      let residual, _ = Scholz.reduce_exact g in
      let residual2, red2 = Scholz.reduce_exact residual in
      Scholz.reduced_count red2 = 0
      && Pbqp.Graph.n_alive residual2 = Pbqp.Graph.n_alive residual)

let prop_brute_optimal_leq_any_random_assignment =
  qtest ~count:60 "brute optimum lower-bounds random assignments"
    (arb_graph_spec ~nmax:6 ~mmax:3 ()) (fun spec ->
      let g = build_graph spec in
      let r = rng (spec.seed + 99) in
      let s =
        Solution.of_array
          (Array.init spec.n (fun _ -> Random.State.int r spec.m))
      in
      Cost.compare (Brute.optimal_cost g)
        (Cost.add (Solution.cost g s) 1e-6)
      <= 0)

let () =
  Alcotest.run "solvers"
    [
      ( "brute",
        [
          Alcotest.test_case "fig2 optimum" `Quick test_brute_fig2;
          Alcotest.test_case "single vertex" `Quick test_brute_single_vertex;
          Alcotest.test_case "infeasible" `Quick test_brute_infeasible;
          Alcotest.test_case "3-coloring triangle" `Quick
            test_brute_feasible_coloring;
          Alcotest.test_case "budget stop" `Quick test_brute_budget;
          Alcotest.test_case "empty graph" `Quick test_brute_empty_graph;
        ] );
      ( "scholz",
        [
          Alcotest.test_case "fig2" `Quick test_scholz_fig2;
          Alcotest.test_case "path is exact" `Quick test_scholz_path_exact;
          Alcotest.test_case "cycle is exact" `Quick test_scholz_cycle_exact;
          Alcotest.test_case "complete assignment" `Quick
            test_scholz_complete_assignment;
          Alcotest.test_case "input untouched" `Quick test_scholz_input_untouched;
          Alcotest.test_case "fails on dense 0/inf instances" `Quick
            test_scholz_can_fail_on_ate_style;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "fig2" `Quick test_liberty_fig2;
          Alcotest.test_case "infeasible" `Quick test_liberty_infeasible;
          Alcotest.test_case "budget stop" `Quick test_liberty_budget;
          Alcotest.test_case "state counting" `Quick test_liberty_counts_states;
        ] );
      ( "mrv",
        [
          Alcotest.test_case "fig2" `Quick test_mrv_fig2;
          Alcotest.test_case "infeasibility proof" `Quick
            test_mrv_infeasible_proof;
          prop_mrv_complete;
          Alcotest.test_case "beats static order" `Quick
            test_mrv_beats_static_order_on_planted;
        ] );
      ( "reduce-exact",
        [
          Alcotest.test_case "residual degrees" `Quick
            test_reduce_exact_residual_degrees;
          prop_reduce_exact_preserves_optimum;
          prop_reduce_exact_idempotent;
          Alcotest.test_case "full reduction completes" `Quick
            test_complete_requires_residual_assigned;
        ] );
      ( "properties",
        [
          prop_scholz_never_beats_brute;
          prop_scholz_exact_when_low_degree;
          prop_liberty_complete_on_zero_inf;
          prop_liberty_backward_agrees_with_forward;
          prop_liberty_solutions_are_valid;
          prop_brute_optimal_leq_any_random_assignment;
        ] );
    ]
