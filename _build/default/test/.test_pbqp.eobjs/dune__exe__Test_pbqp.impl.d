test/test_pbqp.ml: Alcotest Array Cost Dot Float Fun Generate Graph Io List Mat Normalize Option Pbqp Printf Random Solution Stats String Testutil Vec
