test/test_ate.mli:
