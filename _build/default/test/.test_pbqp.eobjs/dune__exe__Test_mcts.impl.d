test/test_mcts.ml: Alcotest Array List Mcts Random
