test/test_solvers.ml: Alcotest Array Bool Brute Cost Generate Graph Liberty List Mat Mrv Option Pbqp Random Scholz Solution Solvers Testutil Vec
