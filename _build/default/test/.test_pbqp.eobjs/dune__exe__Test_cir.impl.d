test/test_cir.ml: Alcotest Array Cir Float List Mcts Nn Pbqp Printf QCheck Testutil
