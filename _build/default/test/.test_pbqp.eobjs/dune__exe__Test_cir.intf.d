test/test_cir.mli:
