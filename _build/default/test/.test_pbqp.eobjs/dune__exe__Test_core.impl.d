test/test_core.ml: Alcotest Array Core Cost Filename Fun Generate Graph Int List Mat Mcts Nn Pbqp Random Solution Sys Testutil Vec
