test/test_pbqp.mli:
