test/test_ate.ml: Alcotest Array Ate Fun List Option Pbqp Printf QCheck Random Solvers String Testutil
