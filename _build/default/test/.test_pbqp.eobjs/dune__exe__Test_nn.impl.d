test/test_nn.ml: Alcotest Array Cost Filename Float Fun Graph List Mat Nn Option Pbqp Printf Sys Tensor Testutil Vec
