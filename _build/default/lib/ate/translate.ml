let apply (p : Ast.program) ~assignment =
  let map_reg = function
    | Ast.Virt v -> (
        match assignment v with
        | Some r -> Ast.Phys r
        | None ->
            invalid_arg (Printf.sprintf "Translate.apply: v%d unassigned" v))
    | Ast.Phys _ as r -> r
  in
  {
    p with
    Ast.lines =
      Array.map
        (function
          | Ast.Instr i -> Ast.Instr (Ast.map_regs map_reg i)
          | Ast.Label _ as l -> l)
        p.Ast.lines;
  }

let allocate ?(auto_schedule = false) machine ~solve p =
  match Program.analyze p with
  | Error e -> Error ("analysis failed: " ^ e)
  | Ok info0 -> (
      match Program.require_virtual info0 with
      | Error e -> Error e
      | Ok () -> (
          let p, info =
            if auto_schedule && Program.check_schedulable machine info0 <> Ok ()
            then
              let p' = Schedule.pad machine p in
              (p', Program.analyze_exn p')
            else (p, info0)
          in
          match Program.check_schedulable machine info with
          | Error e -> Error ("unschedulable: " ^ e)
          | Ok () -> (
              let built = Pbqp_build.build machine info in
              match solve built.Pbqp_build.graph with
              | None -> Error "no allocation found"
              | Some sol -> (
                  let assignment = Pbqp_build.assignment_of_solution built sol in
                  match Validate.check machine info ~assignment with
                  | Error e -> Error ("solver returned an invalid allocation: " ^ e)
                  | Ok () -> Ok (apply p ~assignment)))))
