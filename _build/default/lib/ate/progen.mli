(** Deterministic generator for the product-level ATE benchmark programs.

    The paper evaluates on 10 proprietary programs (PRO1–PRO10) whose PBQP
    graphs have 28–241 vertices with ≈40% of vertices at liberty ≤ 4
    (§II-B, §V-B).  This generator synthesizes loop-structured
    test-pattern programs — counter-driven loops over ALU chains, shifts
    into data registers, and pattern emissions — whose PBQP graphs match
    that profile.  The generator carries a concrete register assignment
    (a {e witness}) along while it generates, so every emitted program is
    allocatable by construction — mirroring the fact that the paper's
    programs are real, compilable products — while the witness itself
    never appears in the program, leaving a planted-solution search
    problem. *)

val pro_sizes : int array
(** Target PBQP vertex counts for PRO1..PRO10: 28 … 241. *)

val generate_with_witness :
  ?machine:Machine.t ->
  rng:Random.State.t ->
  target_vregs:int ->
  unit ->
  Ast.program * (int -> int option)
(** A program and its feasibility witness (vreg → physical register). *)

val generate :
  ?machine:Machine.t ->
  rng:Random.State.t ->
  target_vregs:int ->
  unit ->
  Ast.program
(** The program only. *)

val pro : ?machine:Machine.t -> int -> Ast.program
(** [pro k] for [k ∈ 1..10]: the deterministic, feasible PRO[k].
    @raise Invalid_argument on an out-of-range index. *)

val pro_all : ?machine:Machine.t -> unit -> (string * Ast.program) list
(** [("PRO1", p1); ...; ("PRO10", p10)]. *)
