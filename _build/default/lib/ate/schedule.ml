let vregs regs =
  List.filter_map (function Ast.Virt v -> Some v | Ast.Phys _ -> None) regs

(* Walk the program forward, tracking which vregs the current major cycle
   has read and written; pad with nops whenever the next instruction's
   same-vreg accesses would violate the write-once / read-before-write
   rules. *)
let pad (machine : Machine.t) (p : Ast.program) =
  let ways = machine.Machine.ways in
  let out = ref [] in
  let pos = ref 0 in
  let cyc_reads = ref [] in
  let cyc_writes = ref [] in
  let emit line =
    (match line with
    | Ast.Instr i ->
        cyc_reads := vregs (Ast.uses i) @ !cyc_reads;
        cyc_writes := vregs (Ast.defs i) @ !cyc_writes;
        incr pos;
        if !pos mod ways = 0 then begin
          cyc_reads := [];
          cyc_writes := []
        end
    | Ast.Label _ -> ());
    out := line :: !out
  in
  let conflicts i =
    let defs = vregs (Ast.defs i) in
    (* write-once: a def of a vreg already written this cycle *)
    List.exists (fun d -> List.mem d !cyc_writes) defs
    (* read-before-write: a def of a vreg already *read* this cycle *)
    || List.exists (fun d -> List.mem d !cyc_reads) defs
  in
  let pad_to_boundary () =
    while !pos mod ways <> 0 do
      emit (Ast.Instr Ast.Nop)
    done
  in
  Array.iter
    (fun line ->
      (match line with
      | Ast.Instr i when conflicts i -> pad_to_boundary ()
      | _ -> ());
      emit line)
    p.Ast.lines;
  { p with Ast.lines = Array.of_list (List.rev !out) }

let nops_added machine p =
  let count prog =
    Array.fold_left
      (fun acc line ->
        match line with Ast.Instr Ast.Nop -> acc + 1 | _ -> acc)
      0 prog.Ast.lines
  in
  count (pad machine p) - count p
