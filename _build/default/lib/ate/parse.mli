(** Parser for the ATE test-pattern language.

    Line-oriented assembly syntax; [;] starts a comment:
    {v
    .name PRO1
    start:
      mov v0, #8
    loop:
      add v1, v2, v3
      shl v5, v6, 2
      emit v10, v11
      sub v0, v0, v4
      jnz v0, loop
      halt
    v}
    Registers are [v<k>] (virtual) or [r<k>] (physical); immediates are
    [#<int>]. *)

val of_string : ?name:string -> string -> Ast.program
(** @raise Invalid_argument with a line-numbered message on syntax
    errors. *)

val of_file : string -> Ast.program

val roundtrip : Ast.program -> Ast.program
(** [of_string (Ast.to_string p)] — used by tests. *)
