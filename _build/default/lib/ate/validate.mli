(** Independent checker for ATE register assignments.

    Re-verifies every machine constraint directly on the program — operand
    classes, pairing, liveness interference, and the major-cycle rules —
    without going through the PBQP encoding.  The tests use it to
    cross-validate {!Pbqp_build}: any zero-cost PBQP solution must pass
    this checker, and vice versa. *)

val check :
  Machine.t ->
  Program.info ->
  assignment:(int -> int option) ->
  (unit, string) result
(** [assignment v] is the physical register of virtual register [v]. *)

val check_exn :
  Machine.t -> Program.info -> assignment:(int -> int option) -> unit
(** @raise Failure with the violation description. *)
