let pro_sizes = [| 28; 41; 60; 77; 95; 118; 142; 170; 205; 241 |]

(* The generator maintains an actual register assignment (the "witness")
   while it generates: every new virtual register is given a concrete
   physical register consistent with every machine constraint — classes,
   pairing, interference and the major-cycle rules — at the moment its
   defining instruction is emitted.  Programs are therefore allocatable by
   construction (like the paper's real, compilable products), yet the
   witness never appears in the emitted program, so the PBQP instance is a
   planted-solution search problem. *)

type gen = {
  machine : Machine.t;
  rng : Random.State.t;
  mutable next_vreg : int;
  mutable lines : Ast.line list;  (* reversed *)
  mutable pos : int;  (* next instruction position *)
  mutable cur_cycle : int;
  occupied : bool array;  (* physical registers held by live vregs *)
  phys : (int, int) Hashtbl.t;  (* vreg -> witness register *)
  mutable cyc_writes : int list;  (* physical regs written this cycle *)
  mutable cyc_reads : int list;  (* physical regs read this cycle *)
  mutable pool : int list;  (* live general-purpose vregs, newest first *)
  mutable label_id : int;
  mutable cur_loop : int;  (* id of the loop being generated, -1 outside *)
  def_loop : (int, int) Hashtbl.t;  (* vreg -> loop it was defined in *)
  mutable deferred : int list;  (* releases postponed to the loop's end *)
}

let create machine rng =
  {
    machine;
    rng;
    next_vreg = 0;
    lines = [];
    pos = 0;
    cur_cycle = 0;
    occupied = Array.make machine.Machine.nregs false;
    phys = Hashtbl.create 64;
    cyc_writes = [];
    cyc_reads = [];
    pool = [];
    label_id = 0;
    cur_loop = -1;
    def_loop = Hashtbl.create 64;
    deferred = [];
  }

let refresh g =
  let c = Program.cycle_of g.machine g.pos in
  if c <> g.cur_cycle then begin
    g.cur_cycle <- c;
    g.cyc_writes <- [];
    g.cyc_reads <- []
  end

let preg g v = Hashtbl.find g.phys v

(* Can the witness register [r] be written at the current position? *)
let writable g r = not (List.mem r g.cyc_writes || List.mem r g.cyc_reads)

(* Pick a witness register for a fresh vreg defined at the current
   position: free, in [cls], compatible with every register in
   [pair_with], and not violating the major-cycle rules. *)
let alloc g ?(cls = Machine.Any) ?(pair_with = []) () =
  refresh g;
  let candidates =
    Machine.class_regs g.machine cls
    |> List.filter (fun r ->
           (not g.occupied.(r))
           && writable g r
           && List.for_all (Machine.pair_compatible g.machine r) pair_with)
  in
  match candidates with
  | [] -> None
  | cs -> Some (List.nth cs (Random.State.int g.rng (List.length cs)))

let take g v r =
  Hashtbl.replace g.phys v r;
  Hashtbl.replace g.def_loop v g.cur_loop;
  g.occupied.(r) <- true

let release g v =
  let r = preg g v in
  g.occupied.(r) <- false

(* A vreg defined before the current loop but used inside it is live
   across the whole loop (back edge), so its register must stay occupied
   until the loop closes. *)
let release_smart g v =
  if g.cur_loop >= 0 && Hashtbl.find g.def_loop v <> g.cur_loop then
    g.deferred <- v :: g.deferred
  else release g v

(* Emit an instruction, recording its witness-level reads and writes in
   the current major cycle. *)
let emit g instr =
  refresh g;
  let vr = function Ast.Virt v -> preg g v | Ast.Phys p -> p in
  g.cyc_reads <- List.map vr (Ast.uses instr) @ g.cyc_reads;
  g.cyc_writes <- List.map vr (Ast.defs instr) @ g.cyc_writes;
  g.lines <- Ast.Instr instr :: g.lines;
  g.pos <- g.pos + 1

let emit_label g l = g.lines <- Ast.Label l :: g.lines

let pad_to_writable g r =
  (* Nop until the major cycle allows writing [r] (a fresh cycle always
     does). *)
  refresh g;
  while not (writable g r) do
    emit g Ast.Nop;
    refresh g
  done

let fresh g =
  let v = g.next_vreg in
  g.next_vreg <- v + 1;
  v

let fresh_label g prefix =
  let l = Printf.sprintf "%s%d" prefix g.label_id in
  g.label_id <- g.label_id + 1;
  l

let pool_cap = 6

let push_pool g v =
  g.pool <- v :: g.pool;
  if List.length g.pool > pool_cap then begin
    let keep, drop = (List.filteri (fun i _ -> i < pool_cap) g.pool,
                      List.filteri (fun i _ -> i >= pool_cap) g.pool) in
    List.iter (release_smart g) drop;
    g.pool <- keep
  end

let imm g = Ast.Imm (Random.State.int g.rng 256)

let new_value g =
  match alloc g () with
  | None -> false
  | Some r ->
      let v = fresh g in
      take g v r;
      emit g (Ast.Mov { dst = Ast.Virt v; src = imm g });
      push_pool g v;
      true

(* All (a, b) pool pairs whose witness registers are pairing-compatible. *)
let compatible_pairs g =
  let rec go acc = function
    | [] -> acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if Machine.pair_compatible g.machine (preg g a) (preg g b) then
                (a, b) :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] g.pool

let binary_op g =
  match compatible_pairs g with
  | [] -> ignore (new_value g)
  | pairs -> (
      let a, b = List.nth pairs (Random.State.int g.rng (List.length pairs)) in
      match alloc g () with
      | None -> ignore (new_value g)
      | Some r ->
          let d = fresh g in
          take g d r;
          let mk =
            match Random.State.int g.rng 3 with
            | 0 -> fun dst src1 src2 -> Ast.Add { dst; src1; src2 }
            | 1 -> fun dst src1 src2 -> Ast.Sub { dst; src1; src2 }
            | _ -> fun dst src1 src2 -> Ast.And { dst; src1; src2 }
          in
          emit g (mk (Ast.Virt d) (Ast.Virt a) (Ast.Virt b));
          push_pool g d)

(* shl into a data-bank register, then route it to the pins through a
   pattern register; both are short-lived. *)
let shift_op g =
  match g.pool with
  | src :: _ -> (
      match alloc g ~cls:Machine.Data () with
      | None -> ignore (new_value g)
      | Some rd -> (
          let d = fresh g in
          take g d rd;
          emit g
            (Ast.Shl
               { dst = Ast.Virt d; src = Ast.Virt src;
                 amount = 1 + Random.State.int g.rng 4 });
          match alloc g ~cls:Machine.Pattern () with
          | None ->
              release_smart g d;
              ignore (new_value g)
          | Some rp ->
              let p = fresh g in
              take g p rp;
              emit g (Ast.Mov { dst = Ast.Virt p; src = Ast.Reg (Ast.Virt d) });
              release_smart g d;
              emit g (Ast.Emit [ Ast.Virt p ]);
              release_smart g p))
  | [] -> ignore (new_value g)

let emit_op g =
  let k = 1 + Random.State.int g.rng 2 in
  let patterns =
    List.filter_map
      (fun _ ->
        match alloc g ~cls:Machine.Pattern () with
        | None -> None
        | Some rp ->
            let p = fresh g in
            take g p rp;
            let src =
              match g.pool with
              | v :: _ when Random.State.bool g.rng -> Ast.Reg (Ast.Virt v)
              | _ -> imm g
            in
            emit g (Ast.Mov { dst = Ast.Virt p; src });
            Some p)
      (List.init k Fun.id)
  in
  match patterns with
  | [] -> ignore (new_value g)
  | ps ->
      emit g (Ast.Emit (List.map (fun p -> Ast.Virt p) ps));
      List.iter (release_smart g) ps

let body_op g =
  match Random.State.int g.rng 10 with
  | 0 | 1 | 2 | 3 -> binary_op g
  | 4 | 5 -> shift_op g
  | 6 | 7 -> emit_op g
  | _ -> ignore (new_value g)

let segment g =
  (* a mostly segment-local pool: carry a couple of values across the
     boundary for long live ranges, release the rest *)
  (match g.pool with
  | a :: b :: rest ->
      List.iter (release g) rest;
      g.pool <- [ a; b ]
  | _ -> ());
  match alloc g ~cls:Machine.Counter () with
  | None -> (* counters exhausted: pathological; just emit filler *) emit g Ast.Nop
  | Some rc -> (
      let c = fresh g in
      take g c rc;
      emit g (Ast.Mov { dst = Ast.Virt c; src = Ast.Imm (2 + Random.State.int g.rng 14) });
      match alloc g ~pair_with:[ rc ] () with
      | None ->
          release g c;
          emit g Ast.Nop
      | Some rdec ->
          let dec = fresh g in
          take g dec rdec;
          emit g (Ast.Mov { dst = Ast.Virt dec; src = Ast.Imm 1 });
          let l = fresh_label g "loop" in
          emit_label g l;
          g.cur_loop <- g.label_id;
          let body_len = 7 + Random.State.int g.rng 6 in
          for _ = 1 to body_len do
            body_op g
          done;
          (* the counter must be writable here (write-once per cycle) *)
          pad_to_writable g rc;
          emit g
            (Ast.Sub { dst = Ast.Virt c; src1 = Ast.Virt c; src2 = Ast.Virt dec });
          emit g (Ast.Jnz { counter = Ast.Virt c; target = l });
          g.cur_loop <- -1;
          List.iter (release g) g.deferred;
          g.deferred <- [];
          release g c;
          release g dec)

let generate_with_witness ?(machine = Machine.default) ~rng ~target_vregs () =
  let g = create machine rng in
  (* Long-lived globals defined up front and consumed at the very end.
     They stay out of the pool so no eviction ever releases their
     registers while they are live. *)
  let globals =
    List.filter_map
      (fun _ ->
        match alloc g () with
        | None -> None
        | Some r ->
            let v = fresh g in
            take g v r;
            emit g (Ast.Mov { dst = Ast.Virt v; src = imm g });
            Some v)
      [ (); () ]
  in
  let guard = ref 0 in
  while g.next_vreg < target_vregs - 3 && !guard < 10_000 do
    incr guard;
    segment g
  done;
  (match globals with
  | [ g1; g2 ]
    when Machine.pair_compatible machine (preg g g1) (preg g g2) -> (
      match alloc g () with
      | Some r -> (
          let d = fresh g in
          take g d r;
          emit g
            (Ast.Add { dst = Ast.Virt d; src1 = Ast.Virt g1; src2 = Ast.Virt g2 });
          match alloc g ~cls:Machine.Pattern () with
          | Some rp ->
              let p = fresh g in
              take g p rp;
              emit g (Ast.Mov { dst = Ast.Virt p; src = Ast.Reg (Ast.Virt d) });
              emit g (Ast.Emit [ Ast.Virt p ])
          | None -> ())
      | None -> ())
  | _ -> ());
  emit g Ast.Halt;
  let program =
    { Ast.name = "generated"; lines = Array.of_list (List.rev g.lines) }
  in
  let witness v = Hashtbl.find_opt g.phys v in
  (program, witness)

let generate ?machine ~rng ~target_vregs () =
  fst (generate_with_witness ?machine ~rng ~target_vregs ())

let pro ?(machine = Machine.default) k =
  if k < 1 || k > Array.length pro_sizes then
    invalid_arg "Progen.pro: index must be in 1..10";
  let target_vregs = pro_sizes.(k - 1) in
  let rng = Random.State.make [| 7919 * k; 104729 |] in
  let p, witness = generate_with_witness ~machine ~rng ~target_vregs () in
  let p = { p with Ast.name = Printf.sprintf "PRO%d" k } in
  (* defensive: the witness must pass the independent validator *)
  let info = Program.analyze_exn p in
  (match Validate.check machine info ~assignment:witness with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Progen.pro: witness invalid: %s" e));
  p

let pro_all ?machine () =
  List.init 10 (fun i ->
      let p = pro ?machine (i + 1) in
      (p.Ast.name, p))
