(** Abstract syntax of ATE test-pattern programs.

    A small ALPG-style instruction set: register moves, binary ALU
    operations (whose register sources must be a compatible pair),
    shifts, pattern emission onto the pins, and counter-driven loops.
    Programs manipulate either virtual registers ([Virt], before
    allocation / translation) or physical registers ([Phys], after). *)

type reg = Virt of int | Phys of int

type operand = Reg of reg | Imm of int

type instr =
  | Mov of { dst : reg; src : operand }
  | Add of { dst : reg; src1 : reg; src2 : reg }
  | Sub of { dst : reg; src1 : reg; src2 : reg }
  | And of { dst : reg; src1 : reg; src2 : reg }
  | Shl of { dst : reg; src : reg; amount : int }
  | Emit of reg list  (** drive pattern registers onto the pins *)
  | Jnz of { counter : reg; target : string }
  | Jmp of string
  | Halt
  | Nop

type line = Instr of instr | Label of string

type program = { name : string; lines : line array }

val defs : instr -> reg list
val uses : instr -> reg list

val pair_sources : instr -> (reg * reg) option
(** The two sources that must form a compatible pair (binary ALU ops). *)

val operand_classes : instr -> (reg * Machine.rclass) list
(** Register occurrences with a non-[Any] class constraint. *)

val is_jump : instr -> bool

val map_regs : (reg -> reg) -> instr -> instr

val pp_reg : Format.formatter -> reg -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string
