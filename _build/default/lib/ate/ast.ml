type reg = Virt of int | Phys of int
type operand = Reg of reg | Imm of int

type instr =
  | Mov of { dst : reg; src : operand }
  | Add of { dst : reg; src1 : reg; src2 : reg }
  | Sub of { dst : reg; src1 : reg; src2 : reg }
  | And of { dst : reg; src1 : reg; src2 : reg }
  | Shl of { dst : reg; src : reg; amount : int }
  | Emit of reg list
  | Jnz of { counter : reg; target : string }
  | Jmp of string
  | Halt
  | Nop

type line = Instr of instr | Label of string
type program = { name : string; lines : line array }

let defs = function
  | Mov { dst; _ } | Add { dst; _ } | Sub { dst; _ } | And { dst; _ }
  | Shl { dst; _ } ->
      [ dst ]
  | Emit _ | Jnz _ | Jmp _ | Halt | Nop -> []

let uses = function
  | Mov { src = Reg r; _ } -> [ r ]
  | Mov { src = Imm _; _ } -> []
  | Add { src1; src2; _ } | Sub { src1; src2; _ } | And { src1; src2; _ } ->
      [ src1; src2 ]
  | Shl { src; _ } -> [ src ]
  | Emit rs -> rs
  | Jnz { counter; _ } -> [ counter ]
  | Jmp _ | Halt | Nop -> []

let pair_sources = function
  | Add { src1; src2; _ } | Sub { src1; src2; _ } | And { src1; src2; _ } ->
      Some (src1, src2)
  | _ -> None

let operand_classes = function
  | Jnz { counter; _ } -> [ (counter, Machine.Counter) ]
  | Shl { dst; _ } -> [ (dst, Machine.Data) ]
  | Emit rs -> List.map (fun r -> (r, Machine.Pattern)) rs
  | _ -> []

let is_jump = function Jnz _ | Jmp _ -> true | _ -> false

let map_regs f = function
  | Mov { dst; src } ->
      Mov { dst = f dst; src = (match src with Reg r -> Reg (f r) | i -> i) }
  | Add { dst; src1; src2 } -> Add { dst = f dst; src1 = f src1; src2 = f src2 }
  | Sub { dst; src1; src2 } -> Sub { dst = f dst; src1 = f src1; src2 = f src2 }
  | And { dst; src1; src2 } -> And { dst = f dst; src1 = f src1; src2 = f src2 }
  | Shl { dst; src; amount } -> Shl { dst = f dst; src = f src; amount }
  | Emit rs -> Emit (List.map f rs)
  | Jnz { counter; target } -> Jnz { counter = f counter; target }
  | (Jmp _ | Halt | Nop) as i -> i

let pp_reg ppf = function
  | Virt v -> Format.fprintf ppf "v%d" v
  | Phys p -> Format.fprintf ppf "r%d" p

let pp_operand ppf = function
  | Reg r -> pp_reg ppf r
  | Imm i -> Format.fprintf ppf "#%d" i

let pp_instr ppf = function
  | Mov { dst; src } -> Format.fprintf ppf "mov %a, %a" pp_reg dst pp_operand src
  | Add { dst; src1; src2 } ->
      Format.fprintf ppf "add %a, %a, %a" pp_reg dst pp_reg src1 pp_reg src2
  | Sub { dst; src1; src2 } ->
      Format.fprintf ppf "sub %a, %a, %a" pp_reg dst pp_reg src1 pp_reg src2
  | And { dst; src1; src2 } ->
      Format.fprintf ppf "and %a, %a, %a" pp_reg dst pp_reg src1 pp_reg src2
  | Shl { dst; src; amount } ->
      Format.fprintf ppf "shl %a, %a, %d" pp_reg dst pp_reg src amount
  | Emit rs ->
      Format.fprintf ppf "emit %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_reg)
        rs
  | Jnz { counter; target } -> Format.fprintf ppf "jnz %a, %s" pp_reg counter target
  | Jmp target -> Format.fprintf ppf "jmp %s" target
  | Halt -> Format.pp_print_string ppf "halt"
  | Nop -> Format.pp_print_string ppf "nop"

let pp_program ppf p =
  Format.fprintf ppf ".name %s@\n" p.name;
  Array.iter
    (function
      | Label l -> Format.fprintf ppf "%s:@\n" l
      | Instr i -> Format.fprintf ppf "  %a@\n" pp_instr i)
    p.lines

let to_string p = Format.asprintf "%a" pp_program p
