let vregs_of regs =
  List.filter_map (function Ast.Virt v -> Some v | Ast.Phys _ -> None) regs

let check machine info ~assignment =
  let result = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun s -> if !result = Ok () then result := Error s) fmt in
  let phys v =
    match assignment v with
    | Some p when p >= 0 && p < machine.Machine.nregs -> p
    | Some p ->
        fail "v%d assigned out-of-range register r%d" v p;
        0
    | None ->
        fail "v%d has no assignment" v;
        0
  in
  (* every vreg mapped *)
  List.iter (fun v -> ignore (phys v)) info.Program.vregs;
  (* operand classes *)
  Array.iter
    (fun instr ->
      List.iter
        (fun (r, cls) ->
          match r with
          | Ast.Virt v ->
              if not (Machine.class_allowed machine cls (phys v)) then
                fail "v%d -> r%d violates class %s" v (phys v)
                  (Machine.rclass_to_string cls)
          | Ast.Phys p ->
              if not (Machine.class_allowed machine cls p) then
                fail "r%d violates class %s" p (Machine.rclass_to_string cls))
        (Ast.operand_classes instr))
    info.Program.instrs;
  (* pairing *)
  Array.iter
    (fun instr ->
      match Ast.pair_sources instr with
      | Some (Ast.Virt a, Ast.Virt b) ->
          if not (Machine.pair_compatible machine (phys a) (phys b)) then
            fail "sources v%d (r%d) and v%d (r%d) are not a compatible pair" a
              (phys a) b (phys b)
      | _ -> ())
    info.Program.instrs;
  (* interference *)
  let live = Liveness.compute info in
  List.iter
    (fun (u, v) ->
      if phys u = phys v then
        fail "interfering v%d and v%d share r%d" u v (phys u))
    (Liveness.interference_pairs info live);
  (* major cycles: physical write-once and read-before-write *)
  let n = Array.length info.Program.instrs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Program.cycle_of machine i = Program.cycle_of machine j then begin
        let pdefs k =
          List.map phys (vregs_of (Ast.defs info.Program.instrs.(k)))
        in
        let puses k =
          List.map phys (vregs_of (Ast.uses info.Program.instrs.(k)))
        in
        List.iter
          (fun p ->
            if List.mem p (pdefs j) then
              fail "r%d written twice in major cycle %d" p
                (Program.cycle_of machine i))
          (pdefs i);
        List.iter
          (fun p ->
            if List.mem p (pdefs j) then
              fail "r%d read at %d before its write at %d (major cycle %d)" p i
                j (Program.cycle_of machine i))
          (puses i)
      end
    done
  done;
  !result

let check_exn machine info ~assignment =
  match check machine info ~assignment with
  | Ok () -> ()
  | Error e -> failwith ("Ate.Validate: " ^ e)
