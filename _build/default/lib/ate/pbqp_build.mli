(** PBQP graph construction for ATE register allocation (paper §II-B).

    One vertex per virtual register, [m = nregs] colors, every cost 0
    or ∞:

    - {b vertex vectors}: ∞ for registers outside the intersection of the
      operand classes the register appears in;
    - {b interference edges}: ∞ on the diagonal for live-range overlaps;
    - {b pairing edges}: ∞ at every incompatible combination for the two
      sources of each binary ALU instruction;
    - {b major-cycle edges}: ∞ on the diagonal for write/write and
      read-before-write pairs inside one cycle.

    A zero-cost solution of this graph is exactly a legal allocation
    (cross-validated against {!Validate.check} in the tests). *)

type t = {
  graph : Pbqp.Graph.t;
  vreg_of_vertex : int array;
  vertex_of_vreg : (int, int) Hashtbl.t;
}

val build : Machine.t -> Program.info -> t
(** @raise Invalid_argument if the program contains physical registers or
    is not schedulable (see {!Program.check_schedulable}). *)

val assignment_of_solution : t -> Pbqp.Solution.t -> (int -> int option)
(** Map a PBQP solution back to [vreg → physical register]. *)

val liberty_profile : t -> int * float
(** [(vertices, share)]: the number of PBQP vertices and the fraction with
    liberty ≤ 4 — the hardness profile the paper reports (~40%). *)
