(** Program rewriting: substitute an allocation into a virtual-register
    program, producing the physical-register program an ATE would run —
    the final step of the translation workflow of §II-B. *)

val apply : Ast.program -> assignment:(int -> int option) -> Ast.program
(** @raise Invalid_argument if some virtual register has no assignment. *)

val allocate :
  ?auto_schedule:bool ->
  Machine.t ->
  solve:(Pbqp.Graph.t -> Pbqp.Solution.t option) ->
  Ast.program ->
  (Ast.program, string) result
(** End-to-end: analyze, build the PBQP graph, run the given solver, check
    the result with {!Validate}, rewrite.  [Error] on unschedulable
    programs, solver failure, or (defensively) a solution that fails
    validation.  With [auto_schedule] (default false), unschedulable
    programs are first repaired by {!Schedule.pad} — a first step toward
    the combined scheduling-and-allocation problem of the paper's §VII. *)
