(** Instruction scheduling for major-cycle feasibility (a first step
    toward the combined scheduling-and-allocation problem the paper's
    §VII names as future work).

    Register allocation cannot fix major-cycle violations that involve a
    {e single} virtual register — the same vreg written twice in one
    cycle, or read before a later write to it in the same cycle.  This
    pass makes any program schedulable by padding with [nop]s: walking
    forward, an instruction that would conflict with the same-vreg
    accesses already in its major cycle is pushed to the next cycle
    boundary.  Labels are untouched, so control flow is preserved, and
    only [nop]s are added (never reordering), so data flow is trivially
    preserved. *)

val pad : Machine.t -> Ast.program -> Ast.program
(** The padded program always satisfies {!Program.check_schedulable}. *)

val nops_added : Machine.t -> Ast.program -> int
(** How many [nop]s {!pad} would insert. *)
