(** Structural analysis of ATE programs: label resolution, instruction
    positions (which determine major cycles), and static sanity checks. *)

type info = {
  program : Ast.program;
  instrs : Ast.instr array;  (** instructions only, in program order *)
  label_pos : (string, int) Hashtbl.t;
      (** label → index of the instruction it precedes (= [Array.length
          instrs] for a trailing label) *)
  vregs : int list;  (** distinct virtual registers, sorted *)
}

val analyze : Ast.program -> (info, string) result
(** Checks: unique labels, defined jump targets. *)

val analyze_exn : Ast.program -> info
(** @raise Invalid_argument on the same conditions. *)

val require_virtual : info -> (unit, string) result
(** Fails if any physical register occurs (allocation input must be fully
    virtual). *)

val successors : info -> int -> int list
(** Control-flow successors of instruction [i]. *)

val cycle_of : Machine.t -> int -> int
(** The major cycle an instruction position belongs to. *)

val check_schedulable : Machine.t -> info -> (unit, string) result
(** Detects major-cycle violations that no register assignment can fix:
    the same virtual register written twice in one cycle, or read at one
    position and written at a {e later} position of the same cycle. *)

val vreg_count : info -> int

val instr_count : info -> int
