module Iset = Set.Make (Int)

type t = { live_in : Iset.t array; live_out : Iset.t array }

let vregs_of regs =
  List.filter_map (function Ast.Virt v -> Some v | Ast.Phys _ -> None) regs

let compute info =
  let n = Array.length info.Program.instrs in
  let live_in = Array.make n Iset.empty in
  let live_out = Array.make n Iset.empty in
  let uses = Array.map (fun i -> Iset.of_list (vregs_of (Ast.uses i))) info.instrs in
  let defs = Array.map (fun i -> Iset.of_list (vregs_of (Ast.defs i))) info.instrs in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Iset.union acc live_in.(s))
          Iset.empty (Program.successors info i)
      in
      let inn = Iset.union uses.(i) (Iset.diff out defs.(i)) in
      if not (Iset.equal out live_out.(i)) then begin
        live_out.(i) <- out;
        changed := true
      end;
      if not (Iset.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

module Pair = struct
  type t = int * int

  let compare = compare
end

module Pset = Set.Make (Pair)

let interference_pairs info t =
  let acc = ref Pset.empty in
  Array.iteri
    (fun i instr ->
      let move_src =
        match instr with
        | Ast.Mov { src = Ast.Reg (Ast.Virt s); _ } -> Some s
        | _ -> None
      in
      List.iter
        (fun d ->
          Iset.iter
            (fun v ->
              if v <> d && Some v <> move_src then
                let p = if d < v then (d, v) else (v, d) in
                acc := Pset.add p !acc)
            t.live_out.(i))
        (vregs_of (Ast.defs instr)))
    info.Program.instrs;
  Pset.elements !acc

let max_pressure info t =
  let best = ref 0 in
  Array.iteri
    (fun i _ ->
      best := max !best (Iset.cardinal t.live_out.(i));
      best := max !best (Iset.cardinal t.live_in.(i)))
    info.Program.instrs;
  !best

let live_at t i = t.live_out.(i)
