let fail lineno msg =
  invalid_arg (Printf.sprintf "Ate.Parse: line %d: %s" lineno msg)

let parse_reg lineno tok =
  let body prefix =
    match
      int_of_string_opt (String.sub tok 1 (String.length tok - 1))
    with
    | Some k when k >= 0 -> k
    | _ -> fail lineno (Printf.sprintf "bad %s register %S" prefix tok)
  in
  if String.length tok < 2 then fail lineno (Printf.sprintf "bad register %S" tok)
  else
    match tok.[0] with
    | 'v' -> Ast.Virt (body "virtual")
    | 'r' -> Ast.Phys (body "physical")
    | _ -> fail lineno (Printf.sprintf "bad register %S" tok)

let parse_operand lineno tok =
  if String.length tok > 1 && tok.[0] = '#' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i -> Ast.Imm i
    | None -> fail lineno (Printf.sprintf "bad immediate %S" tok)
  else Ast.Reg (parse_reg lineno tok)

let parse_int lineno tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail lineno (Printf.sprintf "expected integer, got %S" tok)

let is_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let of_string ?name text =
  let name = ref (Option.value name ~default:"anonymous") in
  let lines = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
         let lineno = i + 1 in
         let raw =
           match String.index_opt raw ';' with
           | Some k -> String.sub raw 0 k
           | None -> raw
         in
         let raw = String.trim raw in
         if raw = "" then ()
         else if String.length raw > 6 && String.sub raw 0 6 = ".name " then
           name := String.trim (String.sub raw 6 (String.length raw - 6))
         else if raw.[String.length raw - 1] = ':' then begin
           let l = String.sub raw 0 (String.length raw - 1) in
           if not (is_label_name l) then
             fail lineno (Printf.sprintf "bad label %S" l);
           lines := Ast.Label l :: !lines
         end
         else begin
           let mnemonic, rest =
             match String.index_opt raw ' ' with
             | None -> (raw, "")
             | Some k ->
                 ( String.sub raw 0 k,
                   String.sub raw (k + 1) (String.length raw - k - 1) )
           in
           let args =
             String.split_on_char ',' rest
             |> List.map String.trim
             |> List.filter (fun s -> s <> "")
           in
           let reg = parse_reg lineno in
           let instr =
             match (String.lowercase_ascii mnemonic, args) with
             | "mov", [ d; s ] ->
                 Ast.Mov { dst = reg d; src = parse_operand lineno s }
             | "add", [ d; s1; s2 ] ->
                 Ast.Add { dst = reg d; src1 = reg s1; src2 = reg s2 }
             | "sub", [ d; s1; s2 ] ->
                 Ast.Sub { dst = reg d; src1 = reg s1; src2 = reg s2 }
             | "and", [ d; s1; s2 ] ->
                 Ast.And { dst = reg d; src1 = reg s1; src2 = reg s2 }
             | "shl", [ d; s; a ] ->
                 Ast.Shl { dst = reg d; src = reg s; amount = parse_int lineno a }
             | "emit", (_ :: _ as rs) -> Ast.Emit (List.map reg rs)
             | "jnz", [ c; target ] ->
                 if not (is_label_name target) then
                   fail lineno (Printf.sprintf "bad jump target %S" target);
                 Ast.Jnz { counter = reg c; target }
             | "jmp", [ target ] ->
                 if not (is_label_name target) then
                   fail lineno (Printf.sprintf "bad jump target %S" target);
                 Ast.Jmp target
             | "halt", [] -> Ast.Halt
             | "nop", [] -> Ast.Nop
             | m, _ ->
                 fail lineno
                   (Printf.sprintf "unknown instruction or bad arity: %S" m)
           in
           lines := Ast.Instr instr :: !lines
         end);
  { Ast.name = !name; lines = Array.of_list (List.rev !lines) }

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_string
        ~name:(Filename.remove_extension (Filename.basename path))
        (In_channel.input_all ic))

let roundtrip p = of_string (Ast.to_string p)
