(** Reference interpreter for ATE test-pattern programs.

    Executes a program — over virtual registers or, after translation,
    over physical registers — and records the stream of [emit]ted pattern
    values.  The translation end-to-end property (checked in the test
    suite) is that a program and its register-allocated translation
    produce {e identical} emit streams: allocation must not change what
    reaches the pins. *)

type outcome = {
  emits : int list list;  (** one entry per [emit], values in order *)
  steps : int;
}

exception Runtime_error of string
(** Unbound register read, missing label, or fuel exhaustion. *)

val run : ?fuel:int -> Ast.program -> outcome
(** Registers (virtual or physical) start at 0.  Default fuel 1,000,000
    executed instructions. *)

val same_behaviour : Ast.program -> Ast.program -> bool
(** Both runs succeed with identical emit streams. *)
