type info = {
  program : Ast.program;
  instrs : Ast.instr array;
  label_pos : (string, int) Hashtbl.t;
  vregs : int list;
}

let analyze (p : Ast.program) =
  let label_pos = Hashtbl.create 8 in
  let instrs = ref [] in
  let count = ref 0 in
  let error = ref None in
  Array.iter
    (fun line ->
      match line with
      | Ast.Label l ->
          if Hashtbl.mem label_pos l then
            (if !error = None then
               error := Some (Printf.sprintf "duplicate label %S" l))
          else Hashtbl.replace label_pos l !count
      | Ast.Instr i ->
          instrs := i :: !instrs;
          incr count)
    p.Ast.lines;
  let instrs = Array.of_list (List.rev !instrs) in
  (* jump targets must exist *)
  Array.iter
    (fun i ->
      let check_target t =
        if not (Hashtbl.mem label_pos t) && !error = None then
          error := Some (Printf.sprintf "undefined jump target %S" t)
      in
      match i with
      | Ast.Jnz { target; _ } | Ast.Jmp target -> check_target target
      | _ -> ())
    instrs;
  match !error with
  | Some e -> Error e
  | None ->
      let vregs =
        Array.to_seq instrs
        |> Seq.concat_map (fun i -> List.to_seq (Ast.defs i @ Ast.uses i))
        |> Seq.filter_map (function Ast.Virt v -> Some v | Ast.Phys _ -> None)
        |> List.of_seq |> List.sort_uniq Int.compare
      in
      Ok { program = p; instrs; label_pos; vregs }

let analyze_exn p =
  match analyze p with
  | Ok info -> info
  | Error e -> invalid_arg ("Program.analyze: " ^ e)

let require_virtual info =
  let has_phys =
    Array.exists
      (fun i ->
        List.exists
          (function Ast.Phys _ -> true | Ast.Virt _ -> false)
          (Ast.defs i @ Ast.uses i))
      info.instrs
  in
  if has_phys then Error "program contains physical registers" else Ok ()

let successors info i =
  let n = Array.length info.instrs in
  let next = if i + 1 < n then [ i + 1 ] else [] in
  match info.instrs.(i) with
  | Ast.Halt -> []
  | Ast.Jmp t ->
      let tp = Hashtbl.find info.label_pos t in
      if tp < n then [ tp ] else []
  | Ast.Jnz { target; _ } ->
      let tp = Hashtbl.find info.label_pos target in
      if tp < n && not (List.mem tp next) then tp :: next else next
  | _ -> next

let cycle_of (m : Machine.t) pos = pos / m.Machine.ways

let check_schedulable machine info =
  let n = Array.length info.instrs in
  let result = ref (Ok ()) in
  let fail msg = if !result = Ok () then result := Error msg in
  let vreg_defs i =
    List.filter_map
      (function Ast.Virt v -> Some v | Ast.Phys _ -> None)
      (Ast.defs info.instrs.(i))
  in
  let vreg_uses i =
    List.filter_map
      (function Ast.Virt v -> Some v | Ast.Phys _ -> None)
      (Ast.uses info.instrs.(i))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if cycle_of machine i = cycle_of machine j then begin
        List.iter
          (fun d ->
            if List.mem d (vreg_defs j) then
              fail
                (Printf.sprintf
                   "v%d written twice in major cycle %d (positions %d and %d)"
                   d (cycle_of machine i) i j))
          (vreg_defs i);
        List.iter
          (fun u ->
            if List.mem u (vreg_defs j) then
              fail
                (Printf.sprintf
                   "v%d read at %d before its write at %d in major cycle %d" u
                   i j (cycle_of machine i)))
          (vreg_uses i)
      end
    done
  done;
  !result

let vreg_count info = List.length info.vregs
let instr_count info = Array.length info.instrs
