lib/ate/translate.ml: Array Ast Pbqp_build Printf Program Schedule Validate
