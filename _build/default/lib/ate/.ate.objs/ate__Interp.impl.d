lib/ate/interp.ml: Array Ast Hashtbl List Option Printf Program
