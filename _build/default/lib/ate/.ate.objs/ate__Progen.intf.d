lib/ate/progen.mli: Ast Machine Random
