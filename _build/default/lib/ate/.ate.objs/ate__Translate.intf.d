lib/ate/translate.mli: Ast Machine Pbqp
