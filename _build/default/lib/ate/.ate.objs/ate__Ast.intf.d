lib/ate/ast.mli: Format Machine
