lib/ate/liveness.mli: Program Set
