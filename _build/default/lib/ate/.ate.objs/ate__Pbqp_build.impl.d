lib/ate/pbqp_build.ml: Array Ast Cost Graph Hashtbl List Liveness Machine Mat Pbqp Program Solution Vec
