lib/ate/liveness.ml: Array Ast Int List Program Set
