lib/ate/pbqp_build.mli: Hashtbl Machine Pbqp Program
