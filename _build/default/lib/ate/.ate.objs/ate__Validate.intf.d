lib/ate/validate.mli: Machine Program
