lib/ate/machine.mli: Format
