lib/ate/machine.ml: Format Fun List Printf String
