lib/ate/interp.mli: Ast
