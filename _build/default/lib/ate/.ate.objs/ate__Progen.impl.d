lib/ate/progen.ml: Array Ast Fun Hashtbl List Machine Printf Program Random Validate
