lib/ate/program.ml: Array Ast Hashtbl Int List Machine Printf Seq
