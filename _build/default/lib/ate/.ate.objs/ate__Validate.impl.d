lib/ate/validate.ml: Array Ast List Liveness Machine Printf Program
