lib/ate/ast.ml: Array Format List Machine
