lib/ate/parse.mli: Ast
