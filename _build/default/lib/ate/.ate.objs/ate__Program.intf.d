lib/ate/program.mli: Ast Hashtbl Machine
