lib/ate/schedule.mli: Ast Machine
