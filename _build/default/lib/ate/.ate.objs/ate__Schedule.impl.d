lib/ate/schedule.ml: Array Ast List Machine
