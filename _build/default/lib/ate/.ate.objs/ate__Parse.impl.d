lib/ate/parse.ml: Array Ast Filename Fun In_channel List Option Printf String
