(** The synthetic ATE (automated test equipment) machine model.

    This is the substitute for the proprietary ATE of the paper (§II-B);
    see DESIGN.md.  It reproduces the three sources of register
    irregularity the paper describes:

    - {b banked register classes}: the [nregs] registers are split into
      banks A (counters), B (data) and C (pattern); some instruction
      operands are restricted to one bank;
    - {b irregular pairing}: the two sources of a binary ALU instruction
      must be a {e compatible} pair — same bank always works, an
      adjacent-bank mix (A/B or B/C) only when the index parity matches,
      and an A/C mix never ("we can add registers A and B but cannot add
      registers A and C");
    - {b major cycles}: the machine interleaves [ways] ALPG units, so a
      bundle of [ways] consecutive instructions executes as one major
      cycle in which a physical register may be written at most once and
      must not be read ahead of a write.

    There is no data memory: spills are impossible, every PBQP cost is
    0 or ∞. *)

type t = { nregs : int; ways : int }

val default : t
(** 13 registers (the paper's [m = 13]), 8-way interleave. *)

val models : (string * t) list
(** Named machine profiles — different ATE vendors/models have different
    numbers of ALPGs and registers (§II-B), and translation re-allocates
    a program for the target machine: ["modelA"] is {!default} (13 regs /
    8-way); ["modelB"] is a smaller 10-register, 4-way machine. *)

val model : string -> t
(** @raise Invalid_argument on unknown names. *)

val create : nregs:int -> ways:int -> t
(** @raise Invalid_argument if [nregs < 3] or [ways < 1]. *)

type bank = A | B | C

val bank_of : t -> int -> bank
(** Banks split the register file ~40/30/30 (for the default 13:
    A = r0–r4, B = r5–r8, C = r9–r12).
    @raise Invalid_argument on an out-of-range register. *)

val bank_regs : t -> bank -> int list

val pair_compatible : t -> int -> int -> bool
(** Whether two physical registers may be the sources of one binary ALU
    instruction.  Symmetric. *)

(** Operand class constraints. *)
type rclass =
  | Any
  | Counter  (** bank A — loop counters (JNZ) *)
  | Data  (** bank B — shift destinations *)
  | Pattern  (** bank C — pattern registers driven onto pins (EMIT) *)

val class_allowed : t -> rclass -> int -> bool

val class_regs : t -> rclass -> int list

val pp_reg : Format.formatter -> int -> unit

val rclass_to_string : rclass -> string
