type t = { nregs : int; ways : int }

let create ~nregs ~ways =
  if nregs < 3 then invalid_arg "Machine.create: need at least 3 registers";
  if ways < 1 then invalid_arg "Machine.create: ways < 1";
  { nregs; ways }

let default = create ~nregs:13 ~ways:8

let models =
  [ ("modelA", default); ("modelB", create ~nregs:10 ~ways:4) ]

let model name =
  match List.assoc_opt name models with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Machine.model: unknown %S (known: %s)" name
           (String.concat ", " (List.map fst models)))

type bank = A | B | C

(* ~40% A, ~30% B, the rest C; 13 -> 5/4/4 as documented. *)
let a_end t = max 1 ((t.nregs * 2 / 5) + 1)
let b_end t = a_end t + max 1 (t.nregs * 3 / 10)

let bank_of t r =
  if r < 0 || r >= t.nregs then
    invalid_arg (Printf.sprintf "Machine.bank_of: register %d out of range" r);
  if r < a_end t then A else if r < b_end t then B else C

let bank_regs t b =
  List.filter (fun r -> bank_of t r = b) (List.init t.nregs Fun.id)

let pair_compatible t r1 r2 =
  match (bank_of t r1, bank_of t r2) with
  | A, A | B, B | C, C -> true
  | A, B | B, A | B, C | C, B -> (r1 + r2) mod 2 = 0
  | A, C | C, A -> false

type rclass = Any | Counter | Data | Pattern

let class_allowed t cls r =
  match cls with
  | Any -> r >= 0 && r < t.nregs
  | Counter -> bank_of t r = A
  | Data -> bank_of t r = B
  | Pattern -> bank_of t r = C

let class_regs t cls =
  List.filter (class_allowed t cls) (List.init t.nregs Fun.id)

let pp_reg ppf r = Format.fprintf ppf "r%d" r

let rclass_to_string = function
  | Any -> "any"
  | Counter -> "counter"
  | Data -> "data"
  | Pattern -> "pattern"
