type outcome = { emits : int list list; steps : int }

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let run ?(fuel = 1_000_000) (p : Ast.program) =
  let info =
    match Program.analyze p with
    | Ok info -> info
    | Error e -> err "bad program: %s" e
  in
  let virt = Hashtbl.create 32 in
  let phys = Hashtbl.create 16 in
  let read = function
    | Ast.Virt v -> Option.value (Hashtbl.find_opt virt v) ~default:0
    | Ast.Phys r -> Option.value (Hashtbl.find_opt phys r) ~default:0
  in
  let write r x =
    match r with
    | Ast.Virt v -> Hashtbl.replace virt v x
    | Ast.Phys r -> Hashtbl.replace phys r x
  in
  let emits = ref [] in
  let steps = ref 0 in
  let n = Array.length info.Program.instrs in
  let rec exec pc =
    if pc >= n then ()
    else begin
      incr steps;
      if !steps > fuel then err "out of fuel";
      match info.Program.instrs.(pc) with
      | Ast.Mov { dst; src } ->
          write dst (match src with Ast.Reg r -> read r | Ast.Imm i -> i);
          exec (pc + 1)
      | Ast.Add { dst; src1; src2 } ->
          write dst (read src1 + read src2);
          exec (pc + 1)
      | Ast.Sub { dst; src1; src2 } ->
          write dst (read src1 - read src2);
          exec (pc + 1)
      | Ast.And { dst; src1; src2 } ->
          write dst (read src1 land read src2);
          exec (pc + 1)
      | Ast.Shl { dst; src; amount } ->
          write dst ((read src lsl amount) land 0xFFFF);
          exec (pc + 1)
      | Ast.Emit rs ->
          emits := List.map read rs :: !emits;
          exec (pc + 1)
      | Ast.Jnz { counter; target } ->
          if read counter <> 0 then
            exec (Hashtbl.find info.Program.label_pos target)
          else exec (pc + 1)
      | Ast.Jmp target -> exec (Hashtbl.find info.Program.label_pos target)
      | Ast.Halt -> ()
      | Ast.Nop -> exec (pc + 1)
    end
  in
  exec 0;
  { emits = List.rev !emits; steps = !steps }

let same_behaviour a b =
  match (run a, run b) with
  | oa, ob -> oa.emits = ob.emits
  | exception Runtime_error _ -> false
