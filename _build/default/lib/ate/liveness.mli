(** Backward dataflow liveness over ATE programs (virtual registers).

    Standard per-instruction live-in/live-out fixpoint over the
    control-flow successors.  Interference follows Chaitin's rule — a
    definition interferes with everything live-out at its site — with the
    classic move refinement: the destination of [mov d, s] does not
    interfere with [s]. *)

module Iset : Set.S with type elt = int

type t = { live_in : Iset.t array; live_out : Iset.t array }

val compute : Program.info -> t

val interference_pairs : Program.info -> t -> (int * int) list
(** Distinct unordered pairs [(u, v)] with [u < v] of virtual registers
    that must live in different physical registers. *)

val max_pressure : Program.info -> t -> int
(** Largest number of simultaneously live virtual registers (a lower bound
    witness: more than [nregs] means certainly unallocatable). *)

val live_at : t -> int -> Iset.t
(** Live-out set of instruction [i]. *)
