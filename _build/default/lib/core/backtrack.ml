open Pbqp

type config = {
  mcts : Mcts.config;
  enabled : bool;
  replan : bool;
  max_backtracks : int;
  rollout : (State.t -> float) option;
}

let default_config =
  { mcts = Mcts.default_config; enabled = true; replan = true;
    max_backtracks = 100_000; rollout = None }

type result = {
  solution : Solution.t option;
  cost : Cost.t;
  nodes : int;
  backtracks : int;
  budget_exhausted : bool;
}

(* Per-depth search bookkeeping: which colors were already tried at this
   position, in which preference order the rest should be taken. *)
type level = { mutable untried : int list; mutable tried : int list }

let rank_actions st (p : float array) ~excluding =
  let legal_actions =
    List.filter
      (fun a -> State.legal st a && not (List.mem a excluding))
      (List.init (Array.length p) Fun.id)
  in
  (* Highest policy mass first; ties on the smaller color. *)
  List.stable_sort (fun a b -> Float.compare p.(b) p.(a)) legal_actions

let solve ~net ~mode config state =
  let m = State.m state in
  let game = Game.make ?rollout:config.rollout ~net ~mode ~m () in
  let tree = Mcts.create config.mcts game state in
  let levels : (int, level) Hashtbl.t = Hashtbl.create 32 in
  let backtracks = ref 0 in
  let budget_exhausted = ref false in
  let success st =
    {
      solution = Some (State.assignment st);
      cost = State.base_cost st;
      nodes = Mcts.nodes_created tree;
      backtracks = !backtracks;
      budget_exhausted = false;
    }
  in
  let failure () =
    {
      solution = None;
      cost = Cost.inf;
      nodes = Mcts.nodes_created tree;
      backtracks = !backtracks;
      budget_exhausted = !budget_exhausted;
    }
  in
  let level_at st depth =
    match Hashtbl.find_opt levels depth with
    | Some l -> l
    | None ->
        Mcts.run tree;
        let p = Mcts.policy tree in
        let l = { untried = rank_actions st p ~excluding:[]; tried = [] } in
        Hashtbl.replace levels depth l;
        l
  in
  let rec step () =
    let st = Mcts.root_state tree in
    if State.is_complete st then
      if Cost.is_finite (State.base_cost st) then success st else backtrack ()
    else if State.is_dead_end st then backtrack ()
    else begin
      let depth = Mcts.depth tree in
      let l = level_at st depth in
      match l.untried with
      | [] -> backtrack ()
      | a :: rest ->
          l.untried <- rest;
          l.tried <- a :: l.tried;
          Mcts.advance tree a;
          step ()
    end
  and backtrack () =
    if Mcts.depth tree = 0 then
      (* the root itself is out of options *)
      failure ()
    else if not config.enabled then failure ()
    else if !backtracks >= config.max_backtracks then begin
      budget_exhausted := true;
      failure ()
    end
    else begin
      incr backtracks;
      let depth = Mcts.depth tree in
      Hashtbl.remove levels depth;
      Mcts.retreat tree;
      let parent_depth = Mcts.depth tree in
      (match Hashtbl.find_opt levels parent_depth with
      | Some l when config.replan && l.untried <> [] ->
          (* Think again about the parent state: extend the game tree and
             re-rank the remaining candidates under the fresh policy. *)
          Mcts.run tree;
          let p = Mcts.policy tree in
          l.untried <-
            rank_actions (Mcts.root_state tree) p ~excluding:l.tried
      | _ -> ());
      step ()
    end
  in
  (* Dead-on-arrival instances (some vertex starts all-∞) fail without
     search. *)
  if State.is_dead_end state then failure () else step ()
