open Pbqp

type t = {
  graph : Graph.t;
  order : int array;
  pos : int;
  base_cost : Cost.t;
  assignment : Solution.t;
}

let of_graph ?order g =
  let live = Graph.vertices g in
  let order =
    match order with
    | None -> Array.of_list live
    | Some o ->
        if List.sort Int.compare (Array.to_list o) <> live then
          invalid_arg "State.of_graph: order is not a permutation of the vertices";
        Array.copy o
  in
  {
    graph = Graph.copy g;
    order;
    pos = 0;
    base_cost = Cost.zero;
    assignment = Solution.make (Graph.capacity g);
  }

let m t = Graph.m t.graph
let next_vertex t = if t.pos < Array.length t.order then Some t.order.(t.pos) else None

let next_cost_vector t =
  Option.map (fun u -> Graph.cost t.graph u) (next_vertex t)

let legal t c =
  match next_cost_vector t with
  | Some vec -> c >= 0 && c < m t && Cost.is_finite (Vec.get vec c)
  | None -> false

let is_complete t = t.pos >= Array.length t.order

let is_dead_end t =
  (not (is_complete t))
  && (let dead = ref false in
      for i = t.pos to Array.length t.order - 1 do
        if (not !dead) && Vec.is_all_inf (Graph.cost t.graph t.order.(i)) then
          dead := true
      done;
      !dead)

let is_terminal t = is_complete t || is_dead_end t
let base_cost t = t.base_cost
let assignment t = Solution.copy t.assignment
let graph t = t.graph
let colored_count t = t.pos
let remaining t = Array.length t.order - t.pos

let apply t c =
  match next_vertex t with
  | None -> invalid_arg "State.apply: game is complete"
  | Some u ->
      if not (legal t c) then invalid_arg "State.apply: illegal color";
      let g = Graph.copy_shared t.graph in
      let step = Vec.get (Graph.cost g u) c in
      List.iter
        (fun v ->
          let muv = Option.get (Graph.edge_ref g u v) in
          Graph.add_to_cost g v (Mat.row muv c))
        (Graph.neighbors g u);
      Graph.remove_vertex g u;
      let assignment = Solution.copy t.assignment in
      Solution.set assignment u c;
      {
        graph = g;
        order = t.order;
        pos = t.pos + 1;
        base_cost = Cost.add t.base_cost step;
        assignment;
      }

let pp ppf t =
  Format.fprintf ppf "@[<v>state: %d/%d colored, base cost %a%s@,%a@]"
    t.pos (Array.length t.order) Cost.pp t.base_cost
    (if is_dead_end t then " (dead end)" else "")
    Graph.pp t.graph
