open Pbqp

type mode = Feasibility | Minimize of { reference : Cost.t; shaping : float }

let reward mode cost =
  match mode with
  | Feasibility -> if Cost.is_finite cost then 1.0 else -1.0
  | Minimize { reference; shaping } -> (
      match (Cost.is_finite cost, Cost.is_finite reference) with
      | false, _ -> -1.0
      | true, false -> 1.0
      | true, true ->
          let d = Cost.to_float reference -. Cost.to_float cost in
          if shaping > 0.0 then Float.tanh (d /. shaping)
          else if d > 1e-9 then 1.0
          else if d < -1e-9 then -1.0
          else 0.0)

let final_cost st = if State.is_complete st then State.base_cost st else Cost.inf

let make ?rollout ~net ~mode ~m () =
  {
    Mcts.num_actions = m;
    is_terminal = State.is_terminal;
    terminal_value = (fun st -> reward mode (final_cost st));
    legal = State.legal;
    apply = State.apply;
    evaluate =
      (fun st ->
        match State.next_vertex st with
        | Some next ->
            let priors, v = Nn.Pvnet.predict net (State.graph st) ~next in
            let v =
              match rollout with
              | Some f -> 0.5 *. (v +. f st)
              | None -> v
            in
            (priors, v)
        | None -> (Array.make m 0.0, reward mode (final_cost st)));
  }
