(** Coloring orders (paper §IV-E).

    The Deep-RL player colors vertices in a fixed order.  The paper
    proposes {e decreasing} liberty — easy vertices first, so the hard
    low-liberty ones are colored late, when the accumulated game tree
    makes MCTS most accurate — and evaluates it against random and
    increasing-liberty orders (Fig. 6 variants (b), (c), (d)). *)

type kind =
  | By_id  (** increasing vertex number (the paper's §III-A default) *)
  | Random
  | Increasing_liberty  (** hard vertices first, as in Kim et al. *)
  | Decreasing_liberty  (** easy vertices first — the paper's proposal *)

val compute : ?rng:Random.State.t -> kind -> Pbqp.Graph.t -> int array
(** Liberties are taken on the initial graph; ties break on vertex id.
    [rng] is required for {!Random}.
    @raise Invalid_argument if [Random] is requested without [rng]. *)

val to_string : kind -> string
