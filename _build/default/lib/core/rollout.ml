open Pbqp

let rec complete st =
  if State.is_complete st then Some st
  else if State.is_dead_end st then None
  else
    match State.next_cost_vector st with
    | None -> None
    | Some vec ->
        let m = State.m st in
        let best = ref (-1) and best_cost = ref Cost.inf in
        for c = 0 to m - 1 do
          let x = Vec.get vec c in
          if Cost.compare x !best_cost < 0 then begin
            best := c;
            best_cost := x
          end
        done;
        if !best < 0 then None else complete (State.apply st !best)

let greedy_cost state =
  match complete state with
  | Some final -> State.base_cost final
  | None -> Cost.inf

let greedy_solution state =
  match complete state with
  | Some final -> Some (State.assignment final, State.base_cost final)
  | None -> None

let value ~mode state = Game.reward mode (greedy_cost state)
