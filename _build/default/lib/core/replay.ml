type t = {
  buf : Nn.Pvnet.sample option array;
  mutable head : int;  (* next write position *)
  mutable size : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity <= 0";
  { buf = Array.make capacity None; head = 0; size = 0 }

let capacity t = Array.length t.buf
let length t = t.size

let add t s =
  t.buf.(t.head) <- Some s;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.size <- min (t.size + 1) (Array.length t.buf)

let add_list t ss = List.iter (add t) ss

let sample_batch ~rng t n =
  if t.size = 0 then []
  else
    List.init n (fun _ ->
        match t.buf.((t.head - 1 - Random.State.int rng t.size + (2 * Array.length t.buf)) mod Array.length t.buf) with
        | Some s -> s
        | None -> assert false)


(* --- persistence ------------------------------------------------------ *)

let iter_oldest_first t f =
  for i = 0 to t.size - 1 do
    let idx = (t.head - t.size + i + (2 * Array.length t.buf)) mod Array.length t.buf in
    match t.buf.(idx) with Some s -> f s | None -> assert false
  done

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "replay %d %d\n" (Array.length t.buf) t.size;
      iter_oldest_first t (fun (s : Nn.Pvnet.sample) ->
          Printf.fprintf oc "sample %d %.17g\n" s.Nn.Pvnet.next
            s.Nn.Pvnet.value;
          Printf.fprintf oc "policy%s\n"
            (String.concat ""
               (Array.to_list
                  (Array.map (Printf.sprintf " %.17g") s.Nn.Pvnet.policy)));
          output_string oc (Pbqp.Io.to_string s.Nn.Pvnet.graph);
          output_string oc "endsample\n"))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = invalid_arg ("Replay.load: " ^ msg) in
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> fail "truncated file"
      in
      let t =
        match String.split_on_char ' ' (line ()) with
        | [ "replay"; cap; _count ] -> create ~capacity:(int_of_string cap)
        | _ -> fail "bad header"
      in
      (try
         while true do
           match In_channel.input_line ic with
           | None -> raise Exit
           | Some l when String.trim l = "" -> ()
           | Some l -> (
               match String.split_on_char ' ' l with
               | [ "sample"; next; value ] ->
                   let next = int_of_string next in
                   let value = float_of_string value in
                   let policy =
                     match String.split_on_char ' ' (line ()) with
                     | "policy" :: ps ->
                         Array.of_list (List.map float_of_string ps)
                     | _ -> fail "expected policy line"
                   in
                   let buf = Buffer.create 256 in
                   let rec slurp () =
                     let l = line () in
                     if String.trim l = "endsample" then ()
                     else begin
                       Buffer.add_string buf l;
                       Buffer.add_char buf '\n';
                       slurp ()
                     end
                   in
                   slurp ();
                   let graph = Pbqp.Io.of_string (Buffer.contents buf) in
                   add t { Nn.Pvnet.graph; next; policy; value }
               | _ -> fail ("unexpected line: " ^ l))
         done
       with Exit -> ());
      t)
