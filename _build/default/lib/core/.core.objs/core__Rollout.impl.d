lib/core/rollout.ml: Cost Game Pbqp State Vec
