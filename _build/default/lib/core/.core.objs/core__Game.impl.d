lib/core/game.ml: Array Cost Float Mcts Nn Pbqp State
