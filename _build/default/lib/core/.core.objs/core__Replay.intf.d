lib/core/replay.mli: Nn Random
