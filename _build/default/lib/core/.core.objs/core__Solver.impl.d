lib/core/solver.ml: Backtrack Game Mcts Order Pbqp Rollout Solvers State
