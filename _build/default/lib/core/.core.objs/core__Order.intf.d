lib/core/order.mli: Pbqp Random
