lib/core/episode.ml: Array Game List Mcts Nn Pbqp Random State
