lib/core/state.ml: Array Cost Format Graph Int List Mat Option Pbqp Solution Vec
