lib/core/game.mli: Cost Mcts Nn Pbqp State
