lib/core/episode.mli: Cost Game Mcts Nn Pbqp Random Solution State
