lib/core/backtrack.mli: Cost Game Mcts Nn Pbqp Solution State
