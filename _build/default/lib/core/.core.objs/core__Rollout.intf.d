lib/core/rollout.mli: Game Pbqp State
