lib/core/replay.ml: Array Buffer Fun In_channel List Nn Pbqp Printf Random String
