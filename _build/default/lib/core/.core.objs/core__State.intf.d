lib/core/state.mli: Cost Format Graph Pbqp Solution Vec
