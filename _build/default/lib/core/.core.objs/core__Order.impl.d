lib/core/order.ml: Array Int Pbqp Random
