lib/core/train.ml: Cost Domain Episode Game Generate List Mcts Nn Pbqp Random Replay Solvers State Sys
