lib/core/backtrack.ml: Array Cost Float Fun Game Hashtbl List Mcts Pbqp Solution State
