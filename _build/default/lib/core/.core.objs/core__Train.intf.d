lib/core/train.mli: Mcts Nn Pbqp Random
