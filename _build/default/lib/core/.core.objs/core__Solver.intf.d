lib/core/solver.mli: Cost Graph Mcts Nn Order Pbqp Random Solution
