type kind = By_id | Random | Increasing_liberty | Decreasing_liberty

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let compute ?rng kind g =
  let verts = Array.of_list (Pbqp.Graph.vertices g) in
  (match kind with
  | By_id -> ()
  | Random -> (
      match rng with
      | Some rng -> shuffle rng verts
      | None -> invalid_arg "Order.compute: Random order needs an rng")
  | Increasing_liberty ->
      Array.sort
        (fun a b ->
          match Int.compare (Pbqp.Graph.liberty g a) (Pbqp.Graph.liberty g b) with
          | 0 -> Int.compare a b
          | c -> c)
        verts
  | Decreasing_liberty ->
      Array.sort
        (fun a b ->
          match Int.compare (Pbqp.Graph.liberty g b) (Pbqp.Graph.liberty g a) with
          | 0 -> Int.compare a b
          | c -> c)
        verts);
  verts

let to_string = function
  | By_id -> "by-id"
  | Random -> "random"
  | Increasing_liberty -> "increasing-liberty"
  | Decreasing_liberty -> "decreasing-liberty"
