(** Greedy roll-out evaluation (an extension beyond the paper).

    AlphaZero — and the paper — evaluate MCTS leaves with the value
    network alone.  At our laptop-scale training budget the value head is
    a weak ranker mid-game, so minimization-mode inference can optionally
    blend it with the reward of a {e greedy completion} of the leaf state
    (always picking the locally cheapest legal color), in the spirit of
    AlphaGo's fast roll-out policy.  Deterministic, cheap
    (O(remaining · degree · m)), and disabled by default. *)

val greedy_cost : State.t -> Pbqp.Cost.t
(** Complete the state greedily; [inf] on a dead end. *)

val greedy_solution : State.t -> (Pbqp.Solution.t * Pbqp.Cost.t) option
(** The greedy completion itself (colors for every vertex the state still
    had to color, plus whatever was already assigned); [None] on a dead
    end. *)

val value : mode:Game.mode -> State.t -> float
(** The reward of the greedy completion under [mode]. *)
