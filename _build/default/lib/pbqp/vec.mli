(** Cost vectors.

    A cost vector of length [m] holds the per-color selection costs of one
    PBQP vertex: entry [i] is the cost of assigning color [i] (a physical
    register) to the vertex.  Vectors are mutable so that graph reductions
    and RL transitions can fold edge costs into them in place. *)

type t

val make : int -> Cost.t -> t
(** [make m c] is an [m]-vector filled with [c]. *)

val init : int -> (int -> Cost.t) -> t

val zero : int -> t

val of_array : float array -> t
(** Takes a copy. @raise Invalid_argument if any entry is NaN. *)

val of_list : float list -> t

val to_array : t -> float array
(** Returns a copy. *)

val copy : t -> t

val length : t -> int

val get : t -> int -> Cost.t

val set : t -> int -> Cost.t -> unit

val add : t -> t -> t
(** Pointwise extended-real sum; fresh vector.
    @raise Invalid_argument on length mismatch. *)

val add_into : t -> t -> unit
(** [add_into dst src] accumulates [src] into [dst] in place. *)

val min_value : t -> Cost.t
(** Smallest entry ([inf] if the vector is empty or all-infinite). *)

val argmin : t -> int
(** Index of the smallest entry (smallest index on ties).
    @raise Invalid_argument on the empty vector. *)

val liberty : t -> int
(** Number of finite entries — the number of colors still admissible for
    this vertex (the "liberty" of Kim et al.). *)

val finite_indices : t -> int list
(** Indices of finite entries, increasing. *)

val is_all_inf : t -> bool
(** True iff no color is admissible: a dead-end vertex. *)

val equal : t -> t -> bool

val approx_equal : ?eps:float -> t -> t -> bool

val fold : (int -> Cost.t -> 'a -> 'a) -> t -> 'a -> 'a

val iteri : (int -> Cost.t -> unit) -> t -> unit

val map : (Cost.t -> Cost.t) -> t -> t

val pp : Format.formatter -> t -> unit
