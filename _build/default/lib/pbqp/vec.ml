type t = float array

let make m c = Array.make m c
let init m f = Array.init m f
let zero m = Array.make m 0.0

let of_array a =
  Array.iter (fun x -> if Float.is_nan x then invalid_arg "Vec.of_array: NaN") a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let to_array v = Array.copy v
let copy = Array.copy
let length = Array.length
let get (v : t) i = v.(i)
let set (v : t) i c = v.(i) <- c

let add a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.add: length mismatch";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let add_into dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vec.add_into: length mismatch";
  Array.iteri (fun i x -> dst.(i) <- dst.(i) +. x) src

let min_value v = Array.fold_left Cost.min Cost.inf v

let argmin v =
  if Array.length v = 0 then invalid_arg "Vec.argmin: empty";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  !best

let liberty v =
  Array.fold_left (fun acc c -> if Cost.is_finite c then acc + 1 else acc) 0 v

let finite_indices v =
  let acc = ref [] in
  for i = Array.length v - 1 downto 0 do
    if Cost.is_finite v.(i) then acc := i :: !acc
  done;
  !acc

let is_all_inf v = liberty v = 0
let equal a b = Array.length a = Array.length b && Array.for_all2 Cost.equal a b

let approx_equal ?eps a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Cost.approx_equal ?eps x y) a b

let fold f v init =
  let acc = ref init in
  Array.iteri (fun i c -> acc := f i c !acc) v;
  !acc

let iteri f v = Array.iteri f v
let map f v = Array.map f v

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Cost.pp)
    (Array.to_list v)
