type t = int array

let unassigned = -1
let make n = Array.make n unassigned

let of_array a =
  Array.iter (fun c -> if c < -1 then invalid_arg "Solution.of_array: bad color") a;
  Array.copy a

let to_array = Array.copy
let copy = Array.copy
let length = Array.length
let get (s : t) u = s.(u)
let set (s : t) u c = s.(u) <- c
let is_complete s = Array.for_all (fun c -> c <> unassigned) s

let assigned_count s =
  Array.fold_left (fun acc c -> if c <> unassigned then acc + 1 else acc) 0 s

let cost_gen ~partial g s =
  if Array.length s <> Graph.capacity g then invalid_arg "Solution.cost: length mismatch";
  let m = Graph.m g in
  Array.iter
    (fun c -> if c >= m then invalid_arg "Solution.cost: color out of range")
    s;
  let vertex_costs =
    List.fold_left
      (fun acc u ->
        let c = s.(u) in
        if c = unassigned then if partial then acc else Cost.inf
        else Cost.add acc (Vec.get (Graph.cost g u) c))
      Cost.zero (Graph.vertices g)
  in
  Graph.fold_edges
    (fun u v muv acc ->
      let cu = s.(u) and cv = s.(v) in
      if cu = unassigned || cv = unassigned then
        if partial then acc else Cost.inf
      else Cost.add acc (Mat.get muv cu cv))
    g vertex_costs

let cost g s = cost_gen ~partial:false g s
let partial_cost g s = cost_gen ~partial:true g s
let valid g s = is_complete s && Cost.is_finite (cost g s)
let equal (a : t) (b : t) = a = b

let pp ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf c ->
         if c = unassigned then Format.pp_print_string ppf "_"
         else Format.pp_print_int ppf c))
    (Array.to_list s)
