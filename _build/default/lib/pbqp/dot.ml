let to_string ?(name = "pbqp") g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string b "  node [shape=circle, fontsize=10];\n";
  List.iter
    (fun u ->
      let lib = Graph.liberty g u in
      Buffer.add_string b
        (Printf.sprintf "  v%d [label=\"%d\\nlib %d\"%s];\n" u u lib
           (if lib <= 4 then ", style=filled, fillcolor=lightgray" else "")))
    (Graph.vertices g);
  Graph.fold_edges
    (fun u v muv () ->
      let infs = ref 0 in
      let minfin = ref Cost.inf in
      Mat.iteri
        (fun _ _ c ->
          if Cost.is_inf c then incr infs else minfin := Cost.min !minfin c)
        muv;
      Buffer.add_string b
        (Printf.sprintf "  v%d -- v%d [label=\"%d inf%s\", fontsize=8];\n" u v
           !infs
           (if Cost.is_finite !minfin && not (Cost.equal !minfin Cost.zero)
            then Printf.sprintf ", min %s" (Cost.to_string !minfin)
            else "")))
    g ();
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_file path g =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_string g))
