type config = {
  n : int;
  m : int;
  p_edge : float;
  p_inf : float;
  cost_max : float;
  zero_inf : bool;
  min_liberty : int;
}

let default =
  {
    n = 100;
    m = 13;
    p_edge = 0.08;
    p_inf = 0.01;
    cost_max = 10.;
    zero_inf = false;
    min_liberty = 1;
  }

let validate c =
  if c.n < 0 then invalid_arg "Generate: n < 0";
  if c.m <= 0 then invalid_arg "Generate: m <= 0";
  if c.p_edge < 0. || c.p_edge > 1. then invalid_arg "Generate: p_edge not in [0,1]";
  if c.p_inf < 0. || c.p_inf > 1. then invalid_arg "Generate: p_inf not in [0,1]";
  if c.cost_max < 0. then invalid_arg "Generate: cost_max < 0";
  if c.min_liberty < 0 || c.min_liberty > c.m then
    invalid_arg "Generate: min_liberty out of range"

let entry ~rng c =
  if Random.State.float rng 1.0 < c.p_inf then Cost.inf
  else if c.zero_inf then Cost.zero
  else Random.State.float rng c.cost_max

(* Re-draw finite entries at random infinite positions until the vector has
   the required liberty. *)
let enforce_liberty ~rng c vec =
  let finite_value () =
    if c.zero_inf then Cost.zero else Random.State.float rng c.cost_max
  in
  while Vec.liberty vec < c.min_liberty do
    let i = Random.State.int rng c.m in
    if Cost.is_inf (Vec.get vec i) then Vec.set vec i (finite_value ())
  done

let erdos_renyi ~rng c =
  validate c;
  let g = Graph.create ~m:c.m ~n:c.n in
  for u = 0 to c.n - 1 do
    let vec = Vec.init c.m (fun _ -> entry ~rng c) in
    enforce_liberty ~rng c vec;
    Graph.set_cost g u vec
  done;
  for u = 0 to c.n - 1 do
    for v = u + 1 to c.n - 1 do
      if Random.State.float rng 1.0 < c.p_edge then begin
        let muv = Mat.init ~rows:c.m ~cols:c.m (fun _ _ -> entry ~rng c) in
        if not (Mat.is_zero muv) then Graph.add_edge g u v muv
      end
    done
  done;
  g

let planted ~rng c =
  validate c;
  let g = Graph.create ~m:c.m ~n:c.n in
  let secret = Array.init c.n (fun _ -> Random.State.int rng c.m) in
  let finite_value () =
    if c.zero_inf then Cost.zero else Random.State.float rng c.cost_max
  in
  for u = 0 to c.n - 1 do
    let vec =
      Vec.init c.m (fun i ->
          if i = secret.(u) then finite_value ()
          else if Random.State.float rng 1.0 < c.p_inf then Cost.inf
          else finite_value ())
    in
    Graph.set_cost g u vec
  done;
  for u = 0 to c.n - 1 do
    for v = u + 1 to c.n - 1 do
      if Random.State.float rng 1.0 < c.p_edge then begin
        let muv =
          Mat.init ~rows:c.m ~cols:c.m (fun i j ->
              if i = secret.(u) && j = secret.(v) then finite_value ()
              else if Random.State.float rng 1.0 < c.p_inf then Cost.inf
              else finite_value ())
        in
        if not (Mat.is_zero muv) then Graph.add_edge g u v muv
      end
    done
  done;
  (g, Solution.of_array secret)

let sample_n ~rng ~mean ~stddev ~min =
  let u1 = Stdlib.max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  Stdlib.max min (int_of_float (Float.round (mean +. (stddev *. z))))

let fig2 () =
  let g = Graph.create ~m:2 ~n:3 in
  Graph.set_cost g 0 (Vec.of_array [| 5.; 2. |]);
  Graph.set_cost g 1 (Vec.of_array [| 5.; 0. |]);
  Graph.set_cost g 2 (Vec.of_array [| 0.; 7. |]);
  (* Unconstrained combinations get a large finite cost so that the
     selections discussed in the paper dominate. *)
  let x = 10. in
  Graph.add_edge g 0 1 (Mat.of_arrays [| [| 1.; x |]; [| x; 8. |] |]);
  Graph.add_edge g 1 2 (Mat.of_arrays [| [| 0.; x |]; [| 9.; x |] |]);
  Graph.add_edge g 0 2 (Mat.of_arrays [| [| 0.; x |]; [| 5.; x |] |]);
  g
