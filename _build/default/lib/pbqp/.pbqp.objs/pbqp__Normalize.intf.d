lib/pbqp/normalize.mli: Graph
