lib/pbqp/io.ml: Array Cost Float Format Fun Graph In_channel List Mat Printf String Vec
