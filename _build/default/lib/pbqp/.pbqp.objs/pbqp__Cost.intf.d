lib/pbqp/cost.mli: Format
