lib/pbqp/dot.mli: Graph
