lib/pbqp/stats.mli: Format Graph
