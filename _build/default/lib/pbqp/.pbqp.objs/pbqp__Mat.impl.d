lib/pbqp/mat.ml: Array Cost Float Format Vec
