lib/pbqp/graph.ml: Array Bool Format Fun Hashtbl Int List Mat Option Printf Vec
