lib/pbqp/dot.ml: Buffer Cost Graph List Mat Out_channel Printf
