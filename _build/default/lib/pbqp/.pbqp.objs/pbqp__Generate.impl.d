lib/pbqp/generate.ml: Array Cost Float Graph Mat Random Solution Stdlib Vec
