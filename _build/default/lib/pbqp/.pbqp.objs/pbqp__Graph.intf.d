lib/pbqp/graph.mli: Format Mat Vec
