lib/pbqp/io.mli: Format Graph
