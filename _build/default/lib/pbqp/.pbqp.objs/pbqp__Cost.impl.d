lib/pbqp/cost.ml: Float Format Printf String
