lib/pbqp/generate.mli: Graph Random Solution
