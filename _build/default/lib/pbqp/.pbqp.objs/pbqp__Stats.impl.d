lib/pbqp/stats.ml: Array Cost Format Graph List Mat Vec
