lib/pbqp/solution.mli: Cost Format Graph
