lib/pbqp/normalize.ml: Cost Graph List Mat Vec
