lib/pbqp/solution.ml: Array Cost Format Graph List Mat Vec
