lib/pbqp/mat.mli: Cost Format Vec
