lib/pbqp/vec.mli: Cost Format
