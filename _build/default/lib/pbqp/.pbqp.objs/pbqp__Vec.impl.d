lib/pbqp/vec.ml: Array Cost Float Format
