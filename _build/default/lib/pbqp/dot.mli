(** Graphviz export of PBQP graphs, for debugging and papers.

    Vertices are labeled with id / liberty; edges carry a compact summary
    of their matrix (number of ∞ entries, minimum finite entry).  Vertices
    with liberty ≤ 4 — the "hard" ones — are drawn filled. *)

val to_string : ?name:string -> Graph.t -> string

val to_file : string -> Graph.t -> unit
