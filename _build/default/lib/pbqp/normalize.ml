(* Move row/column minima of edge matrices into vertex vectors.  Works on
   matrix copies and re-adds them through [Graph.add_edge]'s accumulate /
   drop-if-zero logic, so internal invariants stay intact. *)

let reduce_matrix ~row_delta ~col_delta mat =
  let rows = Mat.rows mat and cols = Mat.cols mat in
  let out = Mat.copy mat in
  for i = 0 to rows - 1 do
    let d = ref Cost.inf in
    for j = 0 to cols - 1 do
      d := Cost.min !d (Mat.get out i j)
    done;
    row_delta i !d;
    for j = 0 to cols - 1 do
      if Cost.is_inf !d then Mat.set out i j Cost.zero
      else Mat.set out i j (Cost.add (Mat.get out i j) (-.(!d)))
    done
  done;
  for j = 0 to cols - 1 do
    let d = ref Cost.inf in
    for i = 0 to rows - 1 do
      d := Cost.min !d (Mat.get out i j)
    done;
    col_delta j !d;
    for i = 0 to rows - 1 do
      if Cost.is_inf !d then Mat.set out i j Cost.zero
      else Mat.set out i j (Cost.add (Mat.get out i j) (-.(!d)))
    done
  done;
  out

let normalize g =
  let m = Graph.m g in
  let edges = Graph.fold_edges (fun u v muv acc -> (u, v, Mat.copy muv) :: acc) g [] in
  let removed = ref 0 in
  List.iter
    (fun (u, v, muv) ->
      let du = Vec.zero m and dv = Vec.zero m in
      let reduced =
        reduce_matrix
          ~row_delta:(fun i d -> Vec.set du i d)
          ~col_delta:(fun j d -> Vec.set dv j d)
          muv
      in
      Graph.add_to_cost g u du;
      Graph.add_to_cost g v dv;
      Graph.remove_edge g u v;
      if Mat.is_zero reduced then incr removed
      else Graph.add_edge g u v reduced)
    edges;
  !removed

let normalized_copy g =
  let h = Graph.copy g in
  let removed = normalize h in
  (h, removed)
