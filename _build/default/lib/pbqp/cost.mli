(** Extended-real costs for PBQP.

    A cost is either a finite non-negative (by convention) float or
    {!infinity}, which encodes an inadmissible selection.  All PBQP
    computations only ever {e add} costs and take {e minima}, so IEEE float
    semantics give exactly the extended-real algebra we need
    ([inf + x = inf], [min inf x = x]); the ill-defined [inf - inf] never
    arises. *)

type t = float

val zero : t

val inf : t
(** The inadmissible cost. *)

val is_inf : t -> bool

val is_finite : t -> bool

val add : t -> t -> t
(** [add a b] is the extended-real sum. *)

val min : t -> t -> t

val compare : t -> t -> int
(** Total order with [inf] greatest. *)

val equal : t -> t -> bool
(** Exact equality ([inf] equals [inf]). *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Equality up to [eps] (default [1e-9]) for finite values; [inf] only
    equals [inf]. *)

val of_float : float -> t
(** Identity, with a check that the input is not NaN.
    @raise Invalid_argument on NaN. *)

val to_float : t -> float

val pp : Format.formatter -> t -> unit
(** Prints [inf] for infinity and a compact decimal otherwise. *)

val to_string : t -> string

val of_string : string -> t
(** Parses the output of {!to_string} ("inf" or a float literal).
    @raise Invalid_argument on malformed input. *)
