(** Instance statistics: the structural profile of a PBQP graph — useful
    for characterizing benchmark families (the paper reports its ATE
    graphs as 28–241 vertices with ~40% of vertices at liberty ≤ 4). *)

type t = {
  n : int;
  m : int;
  edges : int;
  density : float;  (** edges / (n choose 2) *)
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  liberty_histogram : int array;  (** index [l] = vertices with liberty l *)
  low_liberty_share : float;  (** fraction with liberty ≤ 4 *)
  zero_inf : bool;  (** every cost is 0 or ∞ *)
  inf_entry_share : float;  (** fraction of all cost entries that are ∞ *)
}

val compute : Graph.t -> t

val pp : Format.formatter -> t -> unit
