(** Random PBQP instance generation.

    The paper trains on Erdős–Rényi random PBQP graphs (§V-A): [n] vertices,
    each pair connected with probability [p_edge]; random cost vectors and
    matrices where each entry is infinite with probability [p_inf]
    (paper default 1%).  ATE-style instances restrict finite costs to zero,
    so a solution's cost is either 0 or ∞ (§II-B). *)

type config = {
  n : int;  (** number of vertices *)
  m : int;  (** number of colors *)
  p_edge : float;  (** edge probability (Erdős–Rényi) *)
  p_inf : float;  (** probability that a cost entry is infinite *)
  cost_max : float;  (** finite entries are uniform in [0, cost_max] *)
  zero_inf : bool;  (** ATE mode: finite entries are all 0 *)
  min_liberty : int;
      (** every generated cost vector keeps at least this many finite
          entries (prevents trivially unsolvable vertices) *)
}

val default : config
(** [n = 100; m = 13; p_edge = 0.08; p_inf = 0.01; cost_max = 10.;
    zero_inf = false; min_liberty = 1] *)

val erdos_renyi : rng:Random.State.t -> config -> Graph.t
(** One random instance.  @raise Invalid_argument on nonsensical configs
    (negative probabilities, [min_liberty > m], …). *)

val sample_n : rng:Random.State.t -> mean:float -> stddev:float -> min:int -> int
(** Gaussian vertex-count sampling (Box–Muller), clamped below at [min] —
    the paper draws episode sizes from a normal distribution around 100. *)

val planted : rng:Random.State.t -> config -> Graph.t * Solution.t
(** A guaranteed-solvable instance: a secret assignment is drawn first and
    infinities are only placed where they do not invalidate it (vertex
    entries other than the planted color become [inf] with probability
    [p_inf]; matrix entries other than the planted pair likewise).  In
    [zero_inf] mode this produces exactly the hard ATE family of §II-B:
    every cost is 0 or ∞ yet a zero-cost solution exists.  Returns the
    planted solution as a witness (other solutions may also exist). *)

val fig2 : unit -> Graph.t
(** The worked example of the paper's Figure 2: 3 vertices, 2 colors;
    selection (1,1,0) costs 24, selection (0,0,0) costs 11, and 11 is the
    optimum. *)
