type t = {
  n : int;
  m : int;
  edges : int;
  density : float;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  liberty_histogram : int array;
  low_liberty_share : float;
  zero_inf : bool;
  inf_entry_share : float;
}

let compute g =
  let verts = Graph.vertices g in
  let n = List.length verts in
  let m = Graph.m g in
  let edges = Graph.edge_count g in
  let degrees = List.map (Graph.degree g) verts in
  let liberty_histogram = Array.make (m + 1) 0 in
  let low = ref 0 in
  List.iter
    (fun u ->
      let l = Graph.liberty g u in
      liberty_histogram.(l) <- liberty_histogram.(l) + 1;
      if l <= 4 then incr low)
    verts;
  let zero_inf = ref true in
  let inf_entries = ref 0 in
  let total_entries = ref 0 in
  let account c =
    incr total_entries;
    if Cost.is_inf c then incr inf_entries
    else if not (Cost.equal c Cost.zero) then zero_inf := false
  in
  List.iter (fun u -> Vec.iteri (fun _ c -> account c) (Graph.cost g u)) verts;
  Graph.fold_edges (fun _ _ muv () -> Mat.iteri (fun _ _ c -> account c) muv) g ();
  {
    n;
    m;
    edges;
    density =
      (if n < 2 then 0.0
       else float_of_int edges /. (float_of_int (n * (n - 1)) /. 2.0));
    min_degree = List.fold_left min max_int (max_int :: degrees);
    max_degree = List.fold_left max 0 (0 :: degrees);
    mean_degree =
      (if n = 0 then 0.0
       else float_of_int (List.fold_left ( + ) 0 degrees) /. float_of_int n);
    liberty_histogram;
    low_liberty_share = (if n = 0 then 0.0 else float_of_int !low /. float_of_int n);
    zero_inf = !zero_inf;
    inf_entry_share =
      (if !total_entries = 0 then 0.0
       else float_of_int !inf_entries /. float_of_int !total_entries);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>n = %d, m = %d, %d edges (density %.3f)@,\
     degree min/mean/max = %d / %.1f / %d@,\
     liberty <= 4: %.0f%%; costs %s, %.1f%% infinite entries@]"
    t.n t.m t.edges t.density
    (if t.min_degree = max_int then 0 else t.min_degree)
    t.mean_degree t.max_degree
    (100. *. t.low_liberty_share)
    (if t.zero_inf then "0/inf" else "general")
    (100. *. t.inf_entry_share)
