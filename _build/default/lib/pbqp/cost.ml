type t = float

let zero = 0.0
let inf = infinity
let is_inf c = c = infinity
let is_finite c = c <> infinity
let add a b = a +. b
let min a b = if a <= b then a else b
let compare (a : t) (b : t) = Float.compare a b
let equal (a : t) (b : t) = a = b

let approx_equal ?(eps = 1e-9) a b =
  if is_inf a || is_inf b then a = b else Float.abs (a -. b) <= eps

let of_float f =
  if Float.is_nan f then invalid_arg "Cost.of_float: NaN" else f

let to_float c = c

let pp ppf c =
  if is_inf c then Format.pp_print_string ppf "inf"
  else if Float.is_integer c && Float.abs c < 1e15 then
    Format.fprintf ppf "%.0f" c
  else Format.fprintf ppf "%g" c

let to_string c = Format.asprintf "%a" pp c

let of_string s =
  match String.trim s with
  | "inf" | "Inf" | "INF" | "infinity" -> inf
  | s -> (
      match float_of_string_opt s with
      | Some f when not (Float.is_nan f) -> f
      | _ -> invalid_arg (Printf.sprintf "Cost.of_string: %S" s))
