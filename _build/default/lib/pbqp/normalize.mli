(** Exact instance normalization.

    The standard PBQP preprocessing: for each edge matrix, the minimum of
    every row is moved into the corresponding entry of the row vertex's
    cost vector (then likewise for columns).  This transformation
    preserves Equation 1 {e for every selection} — not just the optimum —
    and frequently zeroes matrices out entirely, disconnecting edges and
    exposing more R0/R1/R2 reductions to downstream solvers.

    An all-∞ row means that color is inadmissible for the row vertex; the
    ∞ is moved into the cost vector and the row cleared (∞ − ∞ never
    arises). *)

val normalize : Graph.t -> int
(** Normalizes in place; returns the number of edges removed (those whose
    matrices became all-zero). *)

val normalized_copy : Graph.t -> Graph.t * int
