(** PBQP solutions: one color per vertex.

    A solution assigns each original vertex a color in [0 .. m-1], or
    {!unassigned}.  {!cost} evaluates Equation 1 of the paper: the sum of
    selected cost-vector entries plus, for each edge counted once, the
    selected cost-matrix entry. *)

type t

val unassigned : int
(** The sentinel color [-1]. *)

val make : int -> t
(** All vertices unassigned. *)

val of_array : int array -> t
(** Copies. Entries must be [>= -1]. *)

val to_array : t -> int array

val copy : t -> t

val length : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

val is_complete : t -> bool
(** Every vertex assigned. *)

val assigned_count : t -> int

val cost : Graph.t -> t -> Cost.t
(** Equation 1 on the {e original} (fully live) graph.  Unassigned vertices
    contribute [inf] (an incomplete solution is not a solution).
    @raise Invalid_argument if lengths differ or a color is out of range. *)

val partial_cost : Graph.t -> t -> Cost.t
(** Like {!cost} but unassigned vertices and their edges contribute zero —
    the cost of the colored prefix. *)

val valid : Graph.t -> t -> bool
(** Complete and of finite cost. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
