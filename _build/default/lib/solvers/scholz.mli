(** The original PBQP solver of Scholz & Eckstein (LCTES 2002), as adopted
    by LLVM's PBQP register allocator.

    Reduction phase: repeatedly remove a vertex, preferring the lowest
    degree.  Degree 0/1/2 vertices are removed by {e equivalence}
    reductions (R0/R1/R2) that fold their costs into the remaining graph;
    higher-degree vertices are removed by the {e heuristic} RN reduction,
    which defers the choice without propagating costs — the source of
    sub-optimality, and of outright failure on no-spill (0/∞) instances.
    Back-propagation phase: color vertices in reverse removal order, each
    greedily against its already-colored neighbors.

    The solver always terminates with a complete assignment; on infeasible
    or heuristically-missed instances the assignment's cost is [inf]. *)

type stats = {
  r0 : int;
  r1 : int;
  r2 : int;
  rn : int;  (** how many vertices needed the heuristic reduction *)
}

val solve : Pbqp.Graph.t -> Pbqp.Solution.t * stats
(** The input graph is not modified. *)

val solve_with_cost : Pbqp.Graph.t -> Pbqp.Solution.t * Pbqp.Cost.t * stats
(** Also evaluates Equation 1 on the input graph ([inf] = failure). *)

val succeeded : Pbqp.Graph.t -> bool
(** Whether the heuristic finds a finite-cost solution. *)

(** {1 Partial exact reduction}

    The R0/R1/R2 reductions are {e equivalence-preserving}: applying only
    them leaves a residual graph (every remaining vertex has degree ≥ 3)
    whose optimal solutions extend to optimal solutions of the original.
    Other solvers — notably the Deep-RL solver — can attack just the
    residual hard core and let {!complete} reconstruct the rest. *)

type reduction

val reduce_exact : Pbqp.Graph.t -> Pbqp.Graph.t * reduction
(** [(residual, reduction)].  The input is not modified; the residual
    shares the input's vertex-id space (reduced vertices are dead). *)

val complete : reduction -> Pbqp.Solution.t -> unit
(** Fill in the reduced vertices of a solution that already assigns every
    residual vertex, by exact back-propagation.
    @raise Invalid_argument if a residual vertex is unassigned. *)

val reduced_count : reduction -> int
