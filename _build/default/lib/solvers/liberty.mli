(** Liberty-based enumeration, the PBQP solver of Kim et al. (TACO 2020)
    for ATE register allocation.

    A vertex's {e liberty} is its number of admissible colors.  Vertices
    with liberty ≤ [max_liberty] (default 4) are "hard": the solver
    enumerates their colorings exhaustively with chronological
    backtracking, in increasing order of initial liberty, propagating
    selected edge costs into neighbor cost vectors and pruning dead ends
    (a vertex left with no admissible color).  Once all hard vertices are
    colored, the remaining "easy" residual graph is finished with the
    Scholz–Eckstein heuristic; if that fails, the search backtracks into
    the hard enumeration.

    This is the enumeration baseline whose explored-state count the
    Deep-RL solver is compared against (§V-B, Fig. 6 discussion): it is
    complete over the hard vertices but its state count can explode
    exponentially. *)

type pruning =
  | Forward
      (** propagate each assignment into neighbor cost vectors and fail as
          soon as any unassigned vertex loses its last color (forward
          checking) — a strong modern implementation *)
  | Backward
      (** only check the attempted color against already-assigned
          neighbors — the classic enumerate-with-chronological-backtracking
          behavior, matching the state-count regime the paper reports for
          the liberty-based solver (tens of millions of states) *)

type stats = {
  states : int;  (** color assignments attempted (the paper's metric) *)
  backtracks : int;
  budget_exhausted : bool;
      (** true if the search stopped on [max_states] rather than on an
          answer — a [None] result then means "unknown", not "infeasible" *)
}

val solve :
  ?max_liberty:int ->
  ?max_states:int ->
  ?pruning:pruning ->
  Pbqp.Graph.t ->
  Pbqp.Solution.t option * stats
(** First finite-cost solution found (feasibility-oriented, as in ATE
    translation where any zero-cost solution is acceptable).  The input
    graph is not modified.  [pruning] defaults to {!Forward}. *)
