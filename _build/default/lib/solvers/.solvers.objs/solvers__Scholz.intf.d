lib/solvers/scholz.mli: Pbqp
