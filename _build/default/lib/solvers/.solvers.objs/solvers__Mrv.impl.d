lib/solvers/mrv.ml: Array Cost Graph List Mat Option Pbqp Solution Vec
