lib/solvers/liberty.ml: Array Cost Graph Hashtbl Int List Mat Option Pbqp Scholz Solution Vec
