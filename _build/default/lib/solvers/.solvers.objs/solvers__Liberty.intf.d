lib/solvers/liberty.mli: Pbqp
