lib/solvers/brute.ml: Array Cost Graph List Mat Option Pbqp Solution Vec
