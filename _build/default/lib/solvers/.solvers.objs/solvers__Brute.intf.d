lib/solvers/brute.mli: Pbqp
