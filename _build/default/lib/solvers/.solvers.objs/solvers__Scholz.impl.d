lib/solvers/scholz.ml: Cost Graph List Mat Option Pbqp Solution Vec
