lib/solvers/mrv.mli: Pbqp
