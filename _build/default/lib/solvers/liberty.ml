open Pbqp

type pruning = Forward | Backward

type stats = { states : int; backtracks : int; budget_exhausted : bool }

exception Budget
exception Found of Solution.t

let solve ?(max_liberty = 4) ?(max_states = max_int) ?(pruning = Forward) g0 =
  let g = Graph.copy g0 in
  let n = Graph.capacity g in
  let m = Graph.m g in
  let assigned = Array.make n Solution.unassigned in
  let states = ref 0 in
  let backtracks = ref 0 in
  let hard =
    Graph.vertices g
    |> List.filter (fun u -> Graph.liberty g u <= max_liberty)
    |> List.sort (fun a b ->
           match Int.compare (Graph.liberty g a) (Graph.liberty g b) with
           | 0 -> Int.compare a b
           | c -> c)
    |> Array.of_list
  in
  (* Colors of [u] ordered by current cost, cheapest first. *)
  let candidate_colors u =
    Vec.finite_indices (Graph.cost g u)
    |> List.map (fun c -> (Vec.get (Graph.cost g u) c, c))
    |> List.sort compare
    |> List.map snd
  in
  (* Forward mode: assign color [c] to hard vertex [u] by folding row [c]
     of each incident matrix into unassigned neighbors' vectors.  Returns
     the undo trail (saved vectors) and whether a dead end appeared. *)
  let propagate u c =
    let trail = ref [] in
    let dead = ref false in
    List.iter
      (fun v ->
        if assigned.(v) = Solution.unassigned then begin
          let muv = Option.get (Graph.edge_ref g u v) in
          trail := (v, Vec.copy (Graph.cost g v)) :: !trail;
          Graph.add_to_cost g v (Mat.row muv c);
          if Vec.is_all_inf (Graph.cost g v) then dead := true
        end)
      (Graph.neighbors g u);
    (!trail, !dead)
  in
  let undo trail = List.iter (fun (v, vec) -> Graph.set_cost g v vec) trail in
  (* Backward mode: [u = c] is consistent iff it is finite against every
     already-assigned neighbor.  No propagation, no undo. *)
  let consistent u c =
    List.for_all
      (fun v ->
        assigned.(v) = Solution.unassigned
        || Cost.is_finite
             (Mat.get (Option.get (Graph.edge_ref g u v)) c assigned.(v)))
      (Graph.neighbors g u)
  in
  (* Residual graph over unassigned vertices, with an id mapping back.  In
     Backward mode the working vectors were never updated, so fold the
     assigned neighbors' selected columns in here. *)
  let residual_cost u =
    let base = Vec.copy (Graph.cost g u) in
    if pruning = Backward then
      List.iter
        (fun v ->
          if assigned.(v) <> Solution.unassigned then
            let muv = Option.get (Graph.edge_ref g u v) in
            Vec.add_into base (Vec.init m (fun i -> Mat.get muv i assigned.(v))))
        (Graph.neighbors g u);
    base
  in
  let finish_easy () =
    let remaining =
      Graph.vertices g |> List.filter (fun u -> assigned.(u) = Solution.unassigned)
    in
    let k = List.length remaining in
    (* coloring the easy residual explores one state per vertex *)
    states := !states + k;
    if !states > max_states then raise Budget;
    if k = 0 then begin
      let sol = Solution.of_array assigned in
      if Cost.is_finite (Solution.cost g0 sol) then raise (Found sol)
    end
    else begin
      let back = Array.of_list remaining in
      let fwd = Hashtbl.create k in
      Array.iteri (fun i u -> Hashtbl.add fwd u i) back;
      let residual = Graph.create ~m ~n:k in
      Array.iteri (fun i u -> Graph.set_cost residual i (residual_cost u)) back;
      Graph.fold_edges
        (fun u v muv () ->
          match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
          | Some i, Some j -> Graph.add_edge residual i j muv
          | _ -> ())
        g ();
      let easy_sol, cost, _ = Scholz.solve_with_cost residual in
      if Cost.is_finite cost then begin
        let sol = Solution.of_array assigned in
        Array.iteri (fun i u -> Solution.set sol u (Solution.get easy_sol i)) back;
        if Cost.is_finite (Solution.cost g0 sol) then raise (Found sol)
      end
    end
  in
  let rec search i =
    if i = Array.length hard then begin
      finish_easy ();
      incr backtracks
    end
    else begin
      let u = hard.(i) in
      List.iter
        (fun c ->
          incr states;
          if !states > max_states then raise Budget;
          match pruning with
          | Forward ->
              let trail, dead = propagate u c in
              if not dead then begin
                assigned.(u) <- c;
                search (i + 1);
                assigned.(u) <- Solution.unassigned
              end;
              undo trail
          | Backward ->
              if consistent u c then begin
                assigned.(u) <- c;
                search (i + 1);
                assigned.(u) <- Solution.unassigned
              end)
        (candidate_colors u);
      incr backtracks
    end
  in
  let result, exhausted =
    match search 0 with
    | () -> (None, false)
    | exception Found sol -> (Some sol, false)
    | exception Budget -> (None, true)
  in
  ( result,
    { states = !states; backtracks = !backtracks; budget_exhausted = exhausted }
  )
