(** Exact PBQP solving by branch-and-bound enumeration.

    Ground truth for tests and small instances: explores all color
    assignments in vertex order, pruning branches whose partial cost
    already meets the best known bound.  Worst case [m^n] — only use on
    small graphs. *)

type stats = { states : int  (** assignments attempted *) }

val solve :
  ?max_states:int ->
  Pbqp.Graph.t ->
  (Pbqp.Solution.t * Pbqp.Cost.t) option * stats
(** [solve g] is [Some (sol, cost)] for an optimal finite-cost solution, or
    [None] when no finite-cost assignment exists.  Stops early (returning
    the best found so far, possibly [None]) after [max_states] attempted
    assignments. *)

val optimal_cost : Pbqp.Graph.t -> Pbqp.Cost.t
(** The optimum ([inf] if unsolvable). *)

val solvable : Pbqp.Graph.t -> bool
(** Whether any finite-cost solution exists. *)
