(** Dynamic-order exhaustive search: minimum-remaining-values (MRV)
    branching with forward checking.

    Where {!Liberty} fixes the vertex order up front (the TACO 2020
    baseline the paper compares against), this solver re-selects the most
    constrained vertex — fewest admissible colors under the current
    partial assignment — at {e every} step, the classic CSP fail-first
    heuristic.  It is not part of the paper; it is included as the
    strongest classical baseline we could build, to put the Deep-RL
    state counts in context (EXPERIMENTS.md reports it alongside E3). *)

type stats = { states : int; backtracks : int; budget_exhausted : bool }

val solve :
  ?max_states:int -> Pbqp.Graph.t -> Pbqp.Solution.t option * stats
(** First finite-cost solution (feasibility-oriented).  The input graph is
    not modified.  A [None] with [budget_exhausted = false] is a proof of
    infeasibility. *)
