open Pbqp

type stats = { states : int }

let solve ?(max_states = max_int) g =
  let n = Graph.capacity g in
  let m = Graph.m g in
  let order = Array.of_list (Graph.vertices g) in
  let pos = Array.make n (-1) in
  Array.iteri (fun i u -> pos.(u) <- i) order;
  let assign = Array.make n Solution.unassigned in
  let best = ref None in
  let best_cost = ref Cost.inf in
  let states = ref 0 in
  let exception Budget in
  (* Cost of assigning color [c] to [u] against already-assigned
     neighbors. *)
  let step_cost u c =
    let base = Vec.get (Graph.cost g u) c in
    List.fold_left
      (fun acc v ->
        if Cost.is_inf acc then acc
        else
          let cv = assign.(v) in
          if cv = Solution.unassigned then acc
          else
            match Graph.edge_ref g u v with
            | Some muv -> Cost.add acc (Mat.get muv c cv)
            | None -> acc)
      base (Graph.neighbors g u)
  in
  let rec go i acc =
    if i = Array.length order then begin
      if Cost.compare acc !best_cost < 0 then begin
        best_cost := acc;
        best := Some (Solution.of_array assign)
      end
    end
    else
      let u = order.(i) in
      for c = 0 to m - 1 do
        incr states;
        if !states > max_states then raise Budget;
        let dc = step_cost u c in
        let acc' = Cost.add acc dc in
        if Cost.compare acc' !best_cost < 0 then begin
          assign.(u) <- c;
          go (i + 1) acc';
          assign.(u) <- Solution.unassigned
        end
      done
  in
  (try go 0 Cost.zero with Budget -> ());
  let result =
    match !best with
    | Some sol when Cost.is_finite !best_cost -> Some (sol, !best_cost)
    | _ -> None
  in
  (result, { states = !states })

let optimal_cost g =
  match fst (solve g) with Some (_, c) -> c | None -> Cost.inf

let solvable g = Option.is_some (fst (solve g))
