open Pbqp

type stats = { states : int; backtracks : int; budget_exhausted : bool }

exception Budget
exception Found of Solution.t

let solve ?(max_states = max_int) g0 =
  let g = Graph.copy g0 in
  let n = Graph.capacity g in
  let assigned = Array.make n Solution.unassigned in
  let states = ref 0 in
  let backtracks = ref 0 in
  let unassigned_verts () =
    List.filter (fun u -> assigned.(u) = Solution.unassigned) (Graph.vertices g)
  in
  (* fold the chosen color into unassigned neighbors, with an undo trail *)
  let propagate u c =
    let trail = ref [] in
    let dead = ref false in
    List.iter
      (fun v ->
        if assigned.(v) = Solution.unassigned then begin
          let muv = Option.get (Graph.edge_ref g u v) in
          trail := (v, Vec.copy (Graph.cost g v)) :: !trail;
          Graph.add_to_cost g v (Mat.row muv c);
          if Vec.is_all_inf (Graph.cost g v) then dead := true
        end)
      (Graph.neighbors g u);
    (!trail, !dead)
  in
  let undo trail = List.iter (fun (v, vec) -> Graph.set_cost g v vec) trail in
  let rec search remaining =
    match remaining with
    | 0 ->
        let sol = Solution.of_array assigned in
        if Cost.is_finite (Solution.cost g0 sol) then raise (Found sol)
    | _ -> (
        (* fail-first: branch on the vertex with the fewest colors left,
           breaking ties toward higher degree *)
        let pick =
          List.fold_left
            (fun best u ->
              let key = (Graph.liberty g u, -Graph.degree g u, u) in
              match best with
              | Some (bkey, _) when bkey <= key -> best
              | _ -> Some (key, u))
            None (unassigned_verts ())
        in
        match pick with
        | None -> ()
        | Some (_, u) ->
            List.iter
              (fun c ->
                incr states;
                if !states > max_states then raise Budget;
                let trail, dead = propagate u c in
                if not dead then begin
                  assigned.(u) <- c;
                  search (remaining - 1);
                  assigned.(u) <- Solution.unassigned
                end;
                undo trail)
              (Vec.finite_indices (Graph.cost g u));
            incr backtracks)
  in
  let result, exhausted =
    match search (List.length (Graph.vertices g)) with
    | () -> (None, false)
    | exception Found sol -> (Some sol, false)
    | exception Budget -> (None, true)
  in
  ( result,
    { states = !states; backtracks = !backtracks; budget_exhausted = exhausted }
  )
