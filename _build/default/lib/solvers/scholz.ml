open Pbqp

type record =
  | R0 of { u : int; cu : Vec.t }
  | R1 of { u : int; cu : Vec.t; v : int; muv : Mat.t }
  | R2 of { u : int; cu : Vec.t; v : int; muv : Mat.t; w : int; muw : Mat.t }
  | RN of { u : int; cu : Vec.t; edges : (int * Mat.t) list }

type stats = { r0 : int; r1 : int; r2 : int; rn : int }

let reduce_r1 g u v =
  let cu = Graph.cost g u in
  let muv = Option.get (Graph.edge_ref g u v) in
  let m = Graph.m g in
  let delta =
    Vec.init m (fun j ->
        let best = ref Cost.inf in
        for i = 0 to m - 1 do
          best := Cost.min !best (Cost.add (Vec.get cu i) (Mat.get muv i j))
        done;
        !best)
  in
  Graph.add_to_cost g v delta;
  R1 { u; cu = Vec.copy cu; v; muv }

let reduce_r2 g u v w =
  let cu = Graph.cost g u in
  let muv = Option.get (Graph.edge_ref g u v) in
  let muw = Option.get (Graph.edge_ref g u w) in
  let m = Graph.m g in
  let delta =
    Mat.init ~rows:m ~cols:m (fun j k ->
        let best = ref Cost.inf in
        for i = 0 to m - 1 do
          best :=
            Cost.min !best
              (Cost.add (Vec.get cu i)
                 (Cost.add (Mat.get muv i j) (Mat.get muw i k)))
        done;
        !best)
  in
  (* [delta] may be all-zero, in which case [add_edge] removes the edge —
     exactly the "disconnected iff C = O" convention. *)
  if not (Mat.is_zero delta) then Graph.add_edge g v w delta;
  R2 { u; cu = Vec.copy cu; v; muv; w; muw }

let reduce g =
  let stack = ref [] in
  let stats = ref { r0 = 0; r1 = 0; r2 = 0; rn = 0 } in
  let pick () =
    (* Lowest degree first; among the >2-degree rest, take the highest
       degree (Scholz's RN choice).  Ties break on vertex id. *)
    let best_low = ref None and best_high = ref None in
    List.iter
      (fun u ->
        let d = Graph.degree g u in
        (match !best_low with
        | Some (_, d') when d' <= d -> ()
        | _ -> if d <= 2 then best_low := Some (u, d));
        match !best_high with
        | Some (_, d') when d' >= d -> ()
        | _ -> best_high := Some (u, d))
      (Graph.vertices g);
    match (!best_low, !best_high) with
    | Some (u, d), _ -> Some (u, d)
    | None, Some (u, d) -> Some (u, d)
    | None, None -> None
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some (u, d) ->
        let record =
          match (d, Graph.neighbors g u) with
          | 0, _ ->
              stats := { !stats with r0 = !stats.r0 + 1 };
              R0 { u; cu = Vec.copy (Graph.cost g u) }
          | 1, [ v ] ->
              stats := { !stats with r1 = !stats.r1 + 1 };
              reduce_r1 g u v
          | 2, [ v; w ] ->
              stats := { !stats with r2 = !stats.r2 + 1 };
              reduce_r2 g u v w
          | _, ns ->
              stats := { !stats with rn = !stats.rn + 1 };
              let edges =
                List.map (fun v -> (v, Option.get (Graph.edge_ref g u v))) ns
              in
              RN { u; cu = Vec.copy (Graph.cost g u); edges }
        in
        Graph.remove_vertex g u;
        stack := record :: !stack;
        loop ()
  in
  loop ();
  (!stack, !stats)

let back_propagate m stack sol =
  let argmin_with extra cu =
    let best = ref 0 and best_cost = ref Cost.inf in
    for i = 0 to m - 1 do
      let c = Cost.add (Vec.get cu i) (extra i) in
      if Cost.compare c !best_cost < 0 then begin
        best := i;
        best_cost := c
      end
    done;
    !best
  in
  (* The stack head is the last-removed vertex, which must be colored
     first, so process the list front to back. *)
  List.iter
    (fun record ->
      match record with
      | R0 { u; cu } -> Solution.set sol u (argmin_with (fun _ -> Cost.zero) cu)
      | R1 { u; cu; v; muv } ->
          let cv = Solution.get sol v in
          Solution.set sol u (argmin_with (fun i -> Mat.get muv i cv) cu)
      | R2 { u; cu; v; muv; w; muw } ->
          let cv = Solution.get sol v and cw = Solution.get sol w in
          Solution.set sol u
            (argmin_with
               (fun i -> Cost.add (Mat.get muv i cv) (Mat.get muw i cw))
               cu)
      | RN { u; cu; edges } ->
          Solution.set sol u
            (argmin_with
               (fun i ->
                 List.fold_left
                   (fun acc (v, muv) ->
                     Cost.add acc (Mat.get muv i (Solution.get sol v)))
                   Cost.zero edges)
               cu))
    stack

(* --- partial exact reduction (R0/R1/R2 only) --- *)

type reduction = { stack : record list; m : int }

let reduce_exact g =
  let work = Graph.copy g in
  let stack = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun u ->
        if Graph.is_alive work u then
          let record =
            match (Graph.degree work u, Graph.neighbors work u) with
            | 0, _ -> Some (R0 { u; cu = Vec.copy (Graph.cost work u) })
            | 1, [ v ] -> Some (reduce_r1 work u v)
            | 2, [ v; w ] -> Some (reduce_r2 work u v w)
            | _ -> None
          in
          match record with
          | Some r ->
              Graph.remove_vertex work u;
              stack := r :: !stack;
              progress := true
          | None -> ())
      (Graph.vertices work)
  done;
  (work, { stack = !stack; m = Graph.m g })

let complete { stack; m } sol =
  (* Process records front-to-back (reverse removal order), so each
     record's neighbors are either residual vertices (the caller's job) or
     vertices assigned by an earlier record; verify as we go. *)
  List.iter
    (fun r ->
      let check v =
        if Solution.get sol v = Solution.unassigned then
          invalid_arg "Scholz.complete: residual vertex unassigned"
      in
      (match r with
      | R0 _ -> ()
      | R1 { v; _ } -> check v
      | R2 { v; w; _ } ->
          check v;
          check w
      | RN { edges; _ } -> List.iter (fun (v, _) -> check v) edges);
      back_propagate m [ r ] sol)
    stack

let reduced_count { stack; _ } = List.length stack

let solve g =
  let work = Graph.copy g in
  let stack, stats = reduce work in
  let sol = Solution.make (Graph.capacity g) in
  back_propagate (Graph.m g) stack sol;
  (sol, stats)

let solve_with_cost g =
  let sol, stats = solve g in
  (sol, Solution.cost g sol, stats)

let succeeded g =
  let _, cost, _ = solve_with_cost g in
  Cost.is_finite cost
