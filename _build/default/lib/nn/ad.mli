(** Reverse-mode automatic differentiation over {!Tensor}s.

    Build a computation as a DAG of nodes, call {!backward} on a scalar
    root, then read gradients with {!grad} (or {!var_grad} for trainable
    parameters).  One DAG per sample: nodes are cheap and thrown away.

    Trainable parameters enter a DAG through a {!ctx}: [of_var ctx v]
    returns the {e same} leaf node every time it is called with the same
    var in the same context, so a weight used at several places (e.g. the
    shared GCN weights applied at every vertex) accumulates all its
    gradient contributions in one place. *)

type t
(** A node: an immutable value plus a gradient slot. *)

type ctx

val ctx : unit -> ctx

val value : t -> Tensor.t

val grad : t -> Tensor.t
(** Zeros if the node was not reached by {!backward}. *)

val const : Tensor.t -> t
(** A leaf that accepts but ignores gradient. *)

val scalar : float -> t

val of_var : ctx -> Var.t -> t
(** Memoized leaf for a parameter (see above). *)

val var_grad : ctx -> Var.t -> Tensor.t option
(** The parameter's accumulated gradient after {!backward}; [None] if the
    var never entered this context or received no gradient. *)

(** {1 Operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Elementwise; shapes must match. *)

val scale : float -> t -> t
val neg : t -> t
val relu : t -> t
val tanh_ : t -> t
val mv : t -> t -> t
(** Matrix–vector product. *)

val matmul : t -> t -> t
val sum : t -> t
(** → scalar node. *)

val mean : t -> t
val concat1 : t list -> t
val mean_list : t list -> t
(** Elementwise mean of same-shape rank-1 nodes (GCN aggregation).
    @raise Invalid_argument on the empty list. *)

val softmax_xent : t -> Tensor.t -> t
(** [softmax_xent logits target] is the scalar
    [- Σ_i target_i · log softmax(logits)_i].  [target] is a constant
    distribution.  Gradient to logits: [softmax(logits) - target]. *)

val layernorm : ?eps:float -> gain:t -> bias:t -> t -> t
(** [layernorm ~gain ~bias x] normalizes a rank-1 [x] to zero mean / unit
    variance, then applies the learnable elementwise affine. *)

val backward : t -> unit
(** @raise Invalid_argument unless the root is a 1-element tensor. *)

val softmax : Tensor.t -> Tensor.t
(** Plain (non-differentiating) numerically-stable softmax, for
    inference. *)
