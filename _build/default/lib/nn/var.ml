type t = { id : int; name : string; value : Tensor.t }

let counter = ref 0

let create ~name value =
  incr counter;
  { id = !counter; name; value }

let numel v = Tensor.numel v.value

let pp ppf v =
  Format.fprintf ppf "%s#%d%a" v.name v.id
    (fun ppf t ->
      Format.fprintf ppf "[%s]"
        (String.concat "x" (Array.to_list (Array.map string_of_int (Tensor.shape t)))))
    v.value
