(* Standard layers built from Vars and Ad primitives. *)

module Linear = struct
  type t = { w : Var.t; b : Var.t }

  let create ~rng ~name ~in_dim ~out_dim =
    {
      w =
        Var.create ~name:(name ^ ".w")
          (Tensor.xavier ~rng ~fan_in:in_dim ~fan_out:out_dim
             [| out_dim; in_dim |]);
      b = Var.create ~name:(name ^ ".b") (Tensor.zeros [| out_dim |]);
    }

  let forward ctx t x = Ad.add (Ad.mv (Ad.of_var ctx t.w) x) (Ad.of_var ctx t.b)
  let params t = [ t.w; t.b ]
end

module Layernorm = struct
  type t = { gain : Var.t; bias : Var.t }

  let create ~name ~dim =
    {
      gain = Var.create ~name:(name ^ ".gain") (Tensor.full [| dim |] 1.0);
      bias = Var.create ~name:(name ^ ".bias") (Tensor.zeros [| dim |]);
    }

  let forward ctx t x =
    Ad.layernorm ~gain:(Ad.of_var ctx t.gain) ~bias:(Ad.of_var ctx t.bias) x

  let params t = [ t.gain; t.bias ]
end

(* Pre-norm residual MLP block: x + W2 relu(W1 (layernorm x)). *)
module Residual = struct
  type t = { ln : Layernorm.t; fc1 : Linear.t; fc2 : Linear.t }

  let create ~rng ~name ~dim =
    {
      ln = Layernorm.create ~name:(name ^ ".ln") ~dim;
      fc1 = Linear.create ~rng ~name:(name ^ ".fc1") ~in_dim:dim ~out_dim:dim;
      fc2 = Linear.create ~rng ~name:(name ^ ".fc2") ~in_dim:dim ~out_dim:dim;
    }

  let forward ctx t x =
    let h = Layernorm.forward ctx t.ln x in
    let h = Ad.relu (Linear.forward ctx t.fc1 h) in
    let h = Linear.forward ctx t.fc2 h in
    Ad.add x h

  let params t = Layernorm.params t.ln @ Linear.params t.fc1 @ Linear.params t.fc2
end
