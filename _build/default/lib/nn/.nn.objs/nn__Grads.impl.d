lib/nn/grads.ml: Ad Hashtbl List Tensor Var
