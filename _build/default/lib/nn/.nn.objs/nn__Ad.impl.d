lib/nn/ad.ml: Array Float Hashtbl List Option Tensor Var
