lib/nn/ad.mli: Tensor Var
