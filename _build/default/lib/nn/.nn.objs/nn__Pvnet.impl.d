lib/nn/pvnet.ml: Ad Adam Array Cost Fun Grads Graph Hashtbl In_channel Layer List Mat Option Pbqp Printf Random String Tensor Var Vec
