lib/nn/var.ml: Array Format String Tensor
