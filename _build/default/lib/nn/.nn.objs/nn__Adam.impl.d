lib/nn/adam.ml: Array Hashtbl List Tensor Var
