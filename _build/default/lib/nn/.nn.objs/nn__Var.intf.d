lib/nn/var.mli: Format Tensor
