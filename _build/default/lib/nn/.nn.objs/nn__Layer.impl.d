lib/nn/layer.ml: Ad Tensor Var
