lib/nn/pvnet.mli: Ad Adam Pbqp Random Var
