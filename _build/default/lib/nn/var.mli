(** Trainable parameters.

    A [Var.t] owns a tensor that persists across forward passes (a weight
    matrix, a bias vector).  Each forward pass wraps it in a fresh autodiff
    leaf via {!Ad.of_var}; the optimizer updates [value]'s buffer in
    place. *)

type t = private { id : int; name : string; value : Tensor.t }

val create : name:string -> Tensor.t -> t
(** Fresh id; takes ownership of the tensor. *)

val numel : t -> int

val pp : Format.formatter -> t -> unit
