(* Gradient accumulation across a mini-batch: samples are processed one at
   a time (graphs have varying sizes, so there is no tensor batching) and
   their per-sample gradients summed here. *)

type t = {
  table : (int, Var.t * Tensor.t) Hashtbl.t;
  mutable samples : int;
}

let create () = { table = Hashtbl.create 32; samples = 0 }

let add t var g =
  match Hashtbl.find_opt t.table var.Var.id with
  | Some (_, acc) -> Tensor.add_into acc g
  | None -> Hashtbl.replace t.table var.Var.id (var, Tensor.copy g)

(* Collect every parameter gradient the context accumulated. *)
let add_from_ctx t ctx vars =
  List.iter
    (fun v ->
      match Ad.var_grad ctx v with Some g -> add t v g | None -> ())
    vars;
  t.samples <- t.samples + 1

let to_list ?(average = true) t =
  let s =
    if average && t.samples > 0 then 1.0 /. float_of_int t.samples else 1.0
  in
  Hashtbl.fold
    (fun _ (var, g) acc -> (var, Tensor.scale s g) :: acc)
    t.table []

let sample_count t = t.samples
