(** The VCPU target description.

    A small register machine with enough irregularity to make PBQP
    meaningful (DESIGN.md: it stands in for x86 in the paper's §V-C):

    - 8 allocatable registers P0–P7 plus two reserved scratch registers
      S0/S1 used only by spill code;
    - class constraints: integer values may live in P0–P5, floats in
      P2–P7 (the overlap creates cross-pressure);
    - the destination of an integer [mod] must be P0 or P1 (an
      encoding restriction, x86-style);
    - P0–P3 are caller-saved (clobbered by calls), P4–P7 callee-saved
      (using one costs save/restore cycles). *)

val num_regs : int
(** 8 — allocatable registers. *)

val scratch0 : int
val scratch1 : int
val total_regs : int
(** 10, including scratch. *)

val caller_saved : int list
val callee_saved : int list
val int_class : int list
val float_class : int list
val mod_dst_class : int list

val class_of_type : Ir.typ -> int list

val callee_saved_cost : float
(** Soft per-vreg cost of occupying a callee-saved register. *)

val coalesce_factor : float
(** Fraction of the move weight credited when a move's ends share a
    register. *)

(** Cycle costs for the simulator. *)

val cycles_alu : int
val cycles_mul : int
val cycles_div : int
val cycles_mem : int
(** Array and global accesses, and spill loads/stores. *)

val cycles_branch : int
val cycles_call : int
val cycles_save_restore : int
(** Per callee-saved register the callee's allocation touches. *)

val cycles_of_binop : Ir.binop -> int
