(** Register allocation interface and the three LLVM-style baseline
    allocators of the paper's §V-C:

    - {!fast}: the FAST baseline — everything lives in memory, values are
      shuttled through scratch registers per instruction;
    - {!basic}: BASIC — the Poletto–Sarkar linear scan over live
      intervals, with register classes and furthest-end spilling;
    - {!greedy}: GREEDY — priority-ordered (by spill weight) assignment
      with eviction of cheaper intervals, a simplified rendition of
      LLVM's greedy allocator. *)

type loc = Reg of int | Spill

type allocation = loc array
(** Indexed by vreg. *)

val allowed : Liveness.t -> int -> int list
(** The physical registers vreg [v] may occupy: its type class,
    intersected with the mod-destination class when it is the destination
    of a [mod], and with the callee-saved set when it lives across a
    call.  May be empty (the vreg must spill). *)

val validate : Liveness.t -> allocation -> (unit, string) result
(** Checks class/constraint membership and that interfering vregs never
    share a register. *)

val spill_count : allocation -> int
val used_callee_saved : allocation -> int list

val fast : Ir.func -> allocation
val basic : Liveness.t -> allocation
val greedy : Liveness.t -> allocation
