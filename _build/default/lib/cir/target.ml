let num_regs = 8
let scratch0 = 8
let scratch1 = 9
let total_regs = 10
let caller_saved = [ 0; 1; 2; 3 ]
let callee_saved = [ 4; 5; 6; 7 ]
let int_class = [ 0; 1; 2; 3; 4; 5 ]
let float_class = [ 2; 3; 4; 5; 6; 7 ]
let mod_dst_class = [ 0; 1 ]

let class_of_type = function
  | Ir.Tint -> int_class
  | Ir.Tfloat -> float_class

let callee_saved_cost = 0.5
let coalesce_factor = 0.3
let cycles_alu = 1
let cycles_mul = 3
let cycles_div = 10
let cycles_mem = 4
let cycles_branch = 1
let cycles_call = 2
let cycles_save_restore = 2

let cycles_of_binop = function
  | Ir.Mul | Ir.Fmul -> cycles_mul
  | Ir.Div | Ir.Mod | Ir.Fdiv -> cycles_div
  | _ -> cycles_alu
