type alloc_kind =
  | Fast
  | Basic
  | Greedy
  | Pbqp
  | Pbqp_rl of Nn.Pvnet.t * Mcts.config

let alloc_kind_name = function
  | Fast -> "FAST"
  | Basic -> "BASIC"
  | Greedy -> "GREEDY"
  | Pbqp -> "PBQP"
  | Pbqp_rl _ -> "PBQP-RL"

type result = {
  outcome : Msim.outcome;
  spills : int;
  pbqp_cost : Pbqp.Cost.t option;
}

let allocate kind (live : Liveness.t) =
  match kind with
  | Fast -> (Regalloc.fast live.Liveness.func, None)
  | Basic -> (Regalloc.basic live, None)
  | Greedy -> (Regalloc.greedy live, None)
  | Pbqp ->
      let alloc, cost = Alloc_pbqp.solve_scholz live in
      (alloc, Some cost)
  | Pbqp_rl (net, mcts) ->
      let alloc, cost = Alloc_pbqp.solve_rl ~net ~mcts live in
      (alloc, Some cost)

let run kind (p : Ir.program) =
  let spills = ref 0 in
  let total_cost = ref Pbqp.Cost.zero in
  let has_cost = ref false in
  let allocations =
    List.map
      (fun (f : Ir.func) ->
        let live = Liveness.analyze f in
        let alloc, cost = allocate kind live in
        (match Regalloc.validate live alloc with
        | Ok () -> ()
        | Error e ->
            failwith
              (Printf.sprintf "%s allocation of %s invalid: %s"
                 (alloc_kind_name kind) f.Ir.name e));
        spills := !spills + Regalloc.spill_count alloc;
        (match cost with
        | Some c ->
            has_cost := true;
            total_cost := Pbqp.Cost.add !total_cost c
        | None -> ());
        (f.Ir.name, alloc))
      p.Ir.funcs
  in
  let mp = Rewrite.rewrite p (fun name -> List.assoc name allocations) in
  let outcome = Msim.run mp in
  {
    outcome;
    spills = !spills;
    pbqp_cost = (if !has_cost then Some !total_cost else None);
  }

let reference p = Interp.run p

let cost_sums (p : Ir.program) solver =
  List.map
    (fun (f : Ir.func) ->
      let live = Liveness.analyze f in
      let _, cost = solver live in
      (f.Ir.name, cost))
    p.Ir.funcs
