module Iset = Set.Make (Int)

type t = {
  func : Ir.func;
  intervals : (int * int) array;
  interference : (int * int) list;
  moves : (int * int) list;
  across_call : Iset.t;
  weights : float array;
  max_pressure : int;
}

module Pset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let analyze (f : Ir.func) =
  let nb = Array.length f.Ir.blocks in
  let nv = Ir.nvregs f in
  (* block-level use/def *)
  let buse = Array.make nb Iset.empty in
  let bdef = Array.make nb Iset.empty in
  Array.iteri
    (fun i b ->
      let use = ref Iset.empty and def = ref Iset.empty in
      List.iter
        (fun instr ->
          List.iter
            (fun v -> if not (Iset.mem v !def) then use := Iset.add v !use)
            (Ir.uses_instr instr);
          List.iter (fun v -> def := Iset.add v !def) (Ir.defs instr))
        b.Ir.instrs;
      List.iter
        (fun v -> if not (Iset.mem v !def) then use := Iset.add v !use)
        (Ir.uses_term b.Ir.term);
      buse.(i) <- !use;
      bdef.(i) <- !def)
    f.Ir.blocks;
  (* live-in/out fixpoint *)
  let live_in = Array.make nb Iset.empty in
  let live_out = Array.make nb Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nb - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Iset.union acc live_in.(s))
          Iset.empty
          (Ir.successors f.Ir.blocks.(i).Ir.term)
      in
      let inn = Iset.union buse.(i) (Iset.diff out bdef.(i)) in
      if not (Iset.equal out live_out.(i)) then begin
        live_out.(i) <- out;
        changed := true
      end;
      if not (Iset.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (* linear walk: positions, per-instruction live-after sets, products *)
  let intervals = Array.make nv (-1, -1) in
  let touch v pos =
    let lo, hi = intervals.(v) in
    intervals.(v) <- ((if lo = -1 then pos else min lo pos), max hi pos)
  in
  let interference = ref Pset.empty in
  let moves = ref [] in
  let across_call = ref Iset.empty in
  let weights = Array.make nv 0.0 in
  let max_pressure = ref 0 in
  let pos = ref 0 in
  Array.iteri
    (fun bi b ->
      let depth_w = 10.0 ** float_of_int b.Ir.depth in
      let block_start = !pos in
      (* per-instruction live-after sets, computed backward *)
      let instrs = Array.of_list b.Ir.instrs in
      let n = Array.length instrs in
      let live_after = Array.make (n + 1) Iset.empty in
      (* slot n is the terminator's live-after = block live-out *)
      live_after.(n) <- live_out.(bi);
      let term_live =
        Iset.union live_out.(bi) (Iset.of_list (Ir.uses_term b.Ir.term))
      in
      (* live set before the terminator = after the last instruction *)
      let cur = ref term_live in
      for i = n - 1 downto 0 do
        live_after.(i) <- !cur;
        let instr = instrs.(i) in
        List.iter (fun v -> cur := Iset.remove v !cur) (Ir.defs instr);
        List.iter (fun v -> cur := Iset.add v !cur) (Ir.uses_instr instr)
      done;
      (* walk forward assigning positions and collecting products *)
      Array.iteri
        (fun i instr ->
          let p = !pos in
          incr pos;
          List.iter
            (fun v ->
              touch v p;
              weights.(v) <- weights.(v) +. depth_w)
            (Ir.defs instr @ Ir.uses_instr instr);
          max_pressure := max !max_pressure (Iset.cardinal live_after.(i));
          let move_src =
            match instr with
            | Ir.Mov (_, Ir.VReg s) -> Some s
            | _ -> None
          in
          List.iter
            (fun d ->
              Iset.iter
                (fun v ->
                  if v <> d && Some v <> move_src then
                    interference :=
                      Pset.add (if d < v then (d, v) else (v, d)) !interference)
                live_after.(i);
              (match (instr, move_src) with
              | Ir.Mov (d', _), Some s when d' = d && s <> d ->
                  moves := (d, s) :: !moves
              | _ -> ()))
            (Ir.defs instr);
          match instr with
          | Ir.Call (dst, _, _) ->
              let crossing =
                match dst with
                | Some d -> Iset.remove d live_after.(i)
                | None -> live_after.(i)
              in
              across_call := Iset.union !across_call crossing
          | _ -> ())
        instrs;
      (* the terminator occupies a position too *)
      let p = !pos in
      incr pos;
      List.iter
        (fun v ->
          touch v p;
          weights.(v) <- weights.(v) +. depth_w)
        (Ir.uses_term b.Ir.term);
      (* intervals must cover live-through ranges (loop back edges would
         otherwise punch holes a linear scan cannot see) *)
      Iset.iter (fun v -> touch v block_start) live_in.(bi);
      Iset.iter (fun v -> touch v p) live_out.(bi))
    f.Ir.blocks;
  (* keep only move pairs whose ends do not interfere *)
  let interference_set = !interference in
  let moves =
    List.filter
      (fun (d, s) ->
        not (Pset.mem (if d < s then (d, s) else (s, d)) interference_set))
      !moves
    |> List.sort_uniq compare
  in
  (* params are live (and implicitly defined) from function entry: cover
     their start and make simultaneously-live params interfere *)
  List.iter (fun v -> touch v 0) f.Ir.params;
  let interference_set =
    List.fold_left
      (fun acc p ->
        Iset.fold
          (fun v acc ->
            if v <> p then Pset.add (if p < v then (p, v) else (v, p)) acc
            else acc)
          (if nb > 0 then live_in.(0) else Iset.empty)
          acc)
      interference_set f.Ir.params
  in
  {
    func = f;
    intervals;
    interference = Pset.elements interference_set;
    moves;
    across_call = !across_call;
    weights;
    max_pressure = !max_pressure;
  }

let interferes t u v =
  let p = if u < v then (u, v) else (v, u) in
  List.mem p t.interference
