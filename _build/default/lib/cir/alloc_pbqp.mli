(** PBQP-based register allocation for the VCPU (the paper's §V-C setup:
    "the cost values are provided by the PBQP module of LLVM" — here, by
    this module).

    Colors: [0 .. Target.num_regs-1] are the physical registers, the last
    color is the {e spill option}.  Vertex vectors: ∞ for registers the
    vreg's constraints exclude, a small cost for callee-saved registers,
    and the spill weight on the spill entry.  Edge matrices: ∞ where two
    interfering vregs would share a register; a negative coalescing
    credit on the diagonal for move-related pairs. *)

type t = {
  graph : Pbqp.Graph.t;
  vregs : int array;  (** vertex index → vreg *)
  vertex_of_vreg : (int, int) Hashtbl.t;
}

val spill_color : int
(** [Target.num_regs]. *)

val num_colors : int

val build : Liveness.t -> t

val allocation_of_solution : t -> Ir.func -> Pbqp.Solution.t -> Regalloc.allocation

val solve_scholz : Liveness.t -> Regalloc.allocation * Pbqp.Cost.t
(** The paper's PBQP allocator: Scholz–Eckstein on the graph. *)

val solve_rl :
  net:Nn.Pvnet.t ->
  ?mcts:Mcts.config ->
  Liveness.t ->
  Regalloc.allocation * Pbqp.Cost.t
(** PBQP-RL: the Deep-RL solver in minimization mode (no backtracking,
    §V-C), run on the R0/R1/R2-exact residual as the LLVM PBQP framework
    would.  Falls back to the Scholz solution in the (theoretically
    impossible, since the spill color is always admissible) event of a
    dead end. *)

val solution_cost : t -> Pbqp.Solution.t -> Pbqp.Cost.t
