(* Expression/statement generator with care for totality: loops are
   bounded counters, array indices are taken modulo the array size (made
   non-negative), and division is guarded by [| d | + 1]-style
   denominators. *)

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable ints : string list;  (* assignable int locals in scope *)
  mutable floats : string list;
  mutable readonly : string list;  (* loop counters: readable, never assigned *)
  mutable fresh : int;
}

let rnd ctx n = Random.State.int ctx.rng n
let pick ctx xs = List.nth xs (rnd ctx (List.length xs))

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx prefix =
  let v = Printf.sprintf "%s%d" prefix ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  v

(* --- expressions --- *)

let rec int_expr ctx depth =
  let readable = ctx.ints @ ctx.readonly in
  if depth = 0 || readable = [] then
    match rnd ctx 3 with
    | 0 -> string_of_int (rnd ctx 100)
    | _ when readable <> [] -> pick ctx readable
    | _ -> string_of_int (rnd ctx 100)
  else
    match rnd ctx 8 with
    | 0 | 1 ->
        Printf.sprintf "(%s + %s)" (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | 2 ->
        Printf.sprintf "(%s - %s)" (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | 3 ->
        Printf.sprintf "(%s * %s)" (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | 4 ->
        (* guarded division: b %% 9 is in [-8, 8], so +10 never yields 0 *)
        Printf.sprintf "(%s / (%s %% 9 + 10))"
          (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | 5 -> Printf.sprintf "(%s %% 17 + 17)" (int_expr ctx (depth - 1))
    | 6 ->
        Printf.sprintf "(%s < %s)" (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | _ ->
        Printf.sprintf "arr[(%s %% 8 + 8) %% 8]" (int_expr ctx (depth - 1))

and float_expr ctx depth =
  if depth = 0 || ctx.floats = [] then
    match rnd ctx 3 with
    | 0 -> Printf.sprintf "%d.%d" (rnd ctx 10) (rnd ctx 100)
    | _ when ctx.floats <> [] -> pick ctx ctx.floats
    | _ -> Printf.sprintf "%d.5" (rnd ctx 10)
  else
    match rnd ctx 5 with
    | 0 ->
        Printf.sprintf "(%s + %s)" (float_expr ctx (depth - 1))
          (float_expr ctx (depth - 1))
    | 1 ->
        Printf.sprintf "(%s - %s)" (float_expr ctx (depth - 1))
          (float_expr ctx (depth - 1))
    | 2 ->
        Printf.sprintf "(%s * 0.5)" (float_expr ctx (depth - 1))
    | 3 -> Printf.sprintf "((float)%s)" (int_expr ctx (depth - 1))
    | _ ->
        Printf.sprintf "(%s / 4.0)" (float_expr ctx (depth - 1))

(* --- statements --- *)

let rec stmt ctx depth =
  match rnd ctx 10 with
  | 0 | 1 ->
      let v = fresh ctx "i" in
      line ctx "int %s = %s;" v (int_expr ctx 2);
      ctx.ints <- v :: ctx.ints
  | 2 ->
      let v = fresh ctx "f" in
      line ctx "float %s = %s;" v (float_expr ctx 2);
      ctx.floats <- v :: ctx.floats
  | 3 when ctx.ints <> [] ->
      line ctx "%s = %s;" (pick ctx ctx.ints) (int_expr ctx 2)
  | 4 when ctx.floats <> [] ->
      line ctx "%s = %s;" (pick ctx ctx.floats) (float_expr ctx 2)
  | 5 ->
      line ctx "arr[(%s %% 8 + 8) %% 8] = %s;" (int_expr ctx 1)
        (int_expr ctx 2)
  | 6 when depth > 0 ->
      (* names declared inside the braces go out of scope with them *)
      let saved = (ctx.ints, ctx.floats) in
      line ctx "if (%s) {" (int_expr ctx 1);
      ctx.indent <- ctx.indent + 1;
      block ctx (depth - 1) (1 + rnd ctx 2);
      ctx.indent <- ctx.indent - 1;
      (ctx.ints <- fst saved;
       ctx.floats <- snd saved);
      if rnd ctx 2 = 0 then begin
        line ctx "} else {";
        ctx.indent <- ctx.indent + 1;
        block ctx (depth - 1) (1 + rnd ctx 2);
        ctx.indent <- ctx.indent - 1;
        ctx.ints <- fst saved;
        ctx.floats <- snd saved
      end;
      line ctx "}"
  | 7 when depth > 0 ->
      let v = fresh ctx "k" in
      line ctx "int %s;" v;
      line ctx "for (%s = 0; %s < %d; %s = %s + 1) {" v v (2 + rnd ctx 6) v v;
      ctx.indent <- ctx.indent + 1;
      let saved = (ctx.ints, ctx.floats, ctx.readonly) in
      ctx.readonly <- v :: ctx.readonly;
      block ctx (depth - 1) (1 + rnd ctx 3);
      let si, sf, sr = saved in
      ctx.ints <- si;
      ctx.floats <- sf;
      ctx.readonly <- sr;
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | 8 ->
      line ctx "print(%s);" (int_expr ctx 2)
  | _ when ctx.floats <> [] ->
      line ctx "print(%s);" (float_expr ctx 1)
  | _ -> line ctx "print(%s);" (int_expr ctx 1)

and block ctx depth count =
  for _ = 1 to count do
    stmt ctx depth
  done

let generate ~rng =
  let ctx =
    { rng; buf = Buffer.create 512; indent = 0; ints = []; floats = [];
      readonly = []; fresh = 0 }
  in
  line ctx "int arr[8];";
  line ctx "int helper(int a, int b) { return a * 3 - b + arr[(a %% 8 + 8) %% 8]; }";
  line ctx "float scale(float x) { return x * 0.25 + 1.0; }";
  line ctx "int main() {";
  ctx.indent <- 1;
  (* seed the scopes *)
  line ctx "int s0 = %d;" (rnd ctx 50);
  line ctx "float g0 = %d.25;" (rnd ctx 10);
  ctx.ints <- [ "s0" ];
  ctx.floats <- [ "g0" ];
  block ctx 2 (4 + rnd ctx 6);
  (* exercise the helpers and close with checksums *)
  line ctx "print(helper(%s, %s));" (int_expr ctx 1) (int_expr ctx 1);
  line ctx "print(scale(%s));" (float_expr ctx 1);
  line ctx "print(s0);";
  line ctx "return 0;";
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf
