(** Reference interpreter over virtual registers.

    The semantic ground truth: every register allocator's generated code
    must reproduce exactly the outputs this interpreter produces (the
    end-to-end property the test suite checks). *)

type value = I of int | F of float

type outcome = {
  output : string list;  (** one entry per [print], in order *)
  ret : value option;
  steps : int;  (** instructions executed *)
}

exception Runtime_error of string
(** Division by zero, array index out of bounds, missing entry function,
    or fuel exhaustion. *)

val run :
  ?fuel:int -> ?entry:string -> ?args:value list -> Ir.program -> outcome
(** Default entry ["main"], no arguments, fuel [50_000_000]. *)

val value_to_string : value -> string
(** The exact formatting [print] uses. *)
