open Pbqp

type t = {
  graph : Graph.t;
  vregs : int array;
  vertex_of_vreg : (int, int) Hashtbl.t;
}

let spill_color = Target.num_regs
let num_colors = Target.num_regs + 1

let build (live : Liveness.t) =
  let f = live.Liveness.func in
  let vregs =
    Array.of_list
      (List.filter
         (fun v -> fst live.Liveness.intervals.(v) >= 0)
         (List.init (Ir.nvregs f) Fun.id))
  in
  let vertex_of_vreg = Hashtbl.create (Array.length vregs) in
  Array.iteri (fun i v -> Hashtbl.replace vertex_of_vreg v i) vregs;
  let g = Graph.create ~m:num_colors ~n:(Array.length vregs) in
  Array.iteri
    (fun i v ->
      let ok = Regalloc.allowed live v in
      let weight = Float.max 1.0 live.Liveness.weights.(v) in
      Graph.set_cost g i
        (Vec.init num_colors (fun c ->
             if c = spill_color then weight
             else if not (List.mem c ok) then Cost.inf
             else if List.mem c Target.callee_saved then
               Target.callee_saved_cost
             else Cost.zero)))
    vregs;
  let interference_mat =
    Mat.init ~rows:num_colors ~cols:num_colors (fun i j ->
        if i = j && i <> spill_color then Cost.inf else Cost.zero)
  in
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt vertex_of_vreg u, Hashtbl.find_opt vertex_of_vreg v) with
      | Some iu, Some iv -> Graph.add_edge g iu iv interference_mat
      | _ -> ())
    live.Liveness.interference;
  (* coalescing credit for move-related pairs *)
  List.iter
    (fun (d, s) ->
      match (Hashtbl.find_opt vertex_of_vreg d, Hashtbl.find_opt vertex_of_vreg s) with
      | Some id, Some is when id <> is ->
          let w =
            Target.coalesce_factor
            *. Float.max 1.0
                 (Float.min live.Liveness.weights.(d) live.Liveness.weights.(s))
          in
          let credit =
            Mat.init ~rows:num_colors ~cols:num_colors (fun i j ->
                if i = j && i <> spill_color then -.w else Cost.zero)
          in
          Graph.add_edge g id is credit
      | _ -> ())
    live.Liveness.moves;
  { graph = g; vregs; vertex_of_vreg }

let allocation_of_solution t f sol =
  let alloc = Array.make (Ir.nvregs f) Regalloc.Spill in
  Array.iteri
    (fun i v ->
      let c = Solution.get sol i in
      if c >= 0 && c < spill_color then alloc.(v) <- Regalloc.Reg c)
    t.vregs;
  alloc

let solution_cost t sol = Solution.cost t.graph sol

let solve_scholz live =
  let t = build live in
  let sol, cost, _ = Solvers.Scholz.solve_with_cost t.graph in
  (allocation_of_solution t live.Liveness.func sol, cost)

let solve_rl ~net ?(mcts = Mcts.default_config) live =
  let t = build live in
  let scholz_sol, scholz_cost, _ = Solvers.Scholz.solve_with_cost t.graph in
  (* Exact R0/R1/R2 reductions first, exactly as the LLVM PBQP framework
     applies them before consulting any heuristic: the RL search only
     decides the residual hard core. *)
  (* Shaping at 5% of the reference keeps leaf rewards from saturating on
     graphs whose costs run into the thousands. *)
  let shaping =
    if Cost.is_finite scholz_cost then
      Float.max 5.0 (0.05 *. Float.abs (Cost.to_float scholz_cost))
    else 5.0
  in
  (* Anytime behavior: the search's own greedy completion of the root is
     an incumbent solution; never return anything worse than it. *)
  let incumbent = Core.Rollout.greedy_solution (Core.State.of_graph t.graph) in
  let rl =
    match
      Core.Solver.minimize ~net ~mcts ~reference:scholz_cost
        ~exact_reduce:true ~rollouts:true ~shaping t.graph
    with
    | Some (sol, cost), _ when Cost.is_finite cost -> Some (sol, cost)
    | _ -> None
  in
  let chosen =
    match (rl, incumbent) with
    | Some (s, c), Some (_, ic) when Cost.compare c ic <= 0 -> Some (s, c)
    | _, Some (s, ic) when Cost.is_finite ic -> Some (s, ic)
    | Some (s, c), _ -> Some (s, c)
    | None, _ -> None
  in
  match chosen with
  | Some (s, c) -> (allocation_of_solution t live.Liveness.func s, c)
  | None ->
      (allocation_of_solution t live.Liveness.func scholz_sol, scholz_cost)
