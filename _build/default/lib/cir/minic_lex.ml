type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { tok : token; line : int }

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "return"; "print";
    "break"; "continue" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let fail msg = invalid_arg (Printf.sprintf "MiniC lexer: line %d: %s" !line msg) in
  let i = ref 0 in
  let push tok = toks := { tok; line = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (FLOAT_LIT (float_of_string (String.sub src start (!i - start))))
      end
      else push (INT_LIT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) else push (IDENT word)
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "==" | "!=" | "&&" | "||") as op) ->
          push (PUNCT op);
          i := !i + 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '(' | ')'
          | '{' | '}' | '[' | ']' | ';' | ',' ->
              push (PUNCT (String.make 1 c));
              incr i
          | _ -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  push EOF;
  List.rev !toks

let token_to_string = function
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
