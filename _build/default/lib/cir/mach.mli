(** VCPU machine code: the IR after register allocation and spill-code
    insertion.  Operands are physical registers (including the two
    reserved scratch registers), immediates, or — in call argument
    position only — stack slots. *)

type mval =
  | MReg of int
  | MInt of int
  | MFloat of float
  | MSlot of int  (** call arguments only *)

type minstr =
  | MBin of Ir.binop * int * mval * mval
  | MMov of int * mval
  | MI2f of int * mval
  | MF2i of int * mval
  | MLoad of int * string * mval
  | MStore of string * mval * mval
  | MLoad_var of int * string
  | MStore_var of string * mval
  | MCall of int option * string * mval list
  | MPrint of Ir.typ * mval
  | MSpill_load of int * int  (** reg ← slot *)
  | MSpill_store of int * int  (** slot ← reg *)

type ploc = PReg of int | PSlot of int

type mterm = MRet of mval option | MJmp of int | MBr of mval * int * int

type mblock = { id : int; instrs : minstr list; term : mterm }

type mfunc = {
  name : string;
  params_loc : ploc list;  (** where incoming arguments land *)
  nslots : int;  (** stack frame size in slots *)
  blocks : mblock array;
  callee_saved_used : int list;
      (** callee-saved registers this function's allocation touches
          (charged as save/restore cycles per call) *)
}

type mprogram = { globals : (string * Ir.global) list; funcs : mfunc list }

val find_func : mprogram -> string -> mfunc option
val pp_func : Format.formatter -> mfunc -> unit
