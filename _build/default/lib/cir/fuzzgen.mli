(** Random MiniC program generation for differential testing.

    Produces small, terminating, deterministic programs exercising
    arithmetic, arrays, loops, conditionals, helper-function calls and
    mixed int/float expressions.  The test suite runs the output through
    every register allocator and requires bit-identical [print] output
    against the reference interpreter — a program-level fuzzer for the
    whole backend. *)

val generate : rng:Random.State.t -> string
(** MiniC source text; always compiles, always terminates. *)
