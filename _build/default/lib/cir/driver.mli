(** End-to-end compilation pipeline: MiniC source → IR → liveness →
    chosen register allocator → spill rewriting → VCPU simulation. *)

type alloc_kind =
  | Fast
  | Basic
  | Greedy
  | Pbqp  (** Scholz–Eckstein solver *)
  | Pbqp_rl of Nn.Pvnet.t * Mcts.config  (** this paper's solver *)

val alloc_kind_name : alloc_kind -> string

type result = {
  outcome : Msim.outcome;
  spills : int;  (** total spilled vregs across functions *)
  pbqp_cost : Pbqp.Cost.t option;
      (** total Equation-1 cost of the PBQP solutions (PBQP kinds only) *)
}

val allocate : alloc_kind -> Liveness.t -> Regalloc.allocation * Pbqp.Cost.t option

val run : alloc_kind -> Ir.program -> result
(** Compile every function with the given allocator and execute [main]
    on the VCPU simulator. *)

val reference : Ir.program -> Interp.outcome
(** The virtual-register reference semantics. *)

val cost_sums :
  Ir.program -> (Liveness.t -> Regalloc.allocation * Pbqp.Cost.t) ->
  (string * Pbqp.Cost.t) list
(** Per-function PBQP cost sums under a given PBQP solver (E4). *)
