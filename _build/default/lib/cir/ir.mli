(** The compiler's intermediate representation: a control-flow graph of
    basic blocks over typed virtual registers (three-address code).

    Lowered from MiniC; the register allocators and the VCPU backend
    consume it.  Each block records the syntactic loop depth it was
    created at (used for spill weights). *)

type vreg = int

type typ = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Feq | Fne

type value = VReg of vreg | VInt of int | VFloat of float

type instr =
  | Bin of binop * vreg * value * value
  | Mov of vreg * value
  | I2f of vreg * value
  | F2i of vreg * value
  | Load of vreg * string * value  (** d = array[idx] *)
  | Store of string * value * value  (** array[idx] = v *)
  | Load_var of vreg * string  (** d = global scalar *)
  | Store_var of string * value
  | Call of vreg option * string * value list
  | Print of typ * value

type terminator =
  | Ret of value option
  | Jmp of int
  | Br of value * int * int  (** if v ≠ 0 then first else second *)

type block = {
  id : int;
  mutable instrs : instr list;  (** in execution order *)
  mutable term : terminator;
  depth : int;  (** syntactic loop nesting depth *)
}

type func = {
  name : string;
  params : vreg list;
  ret : typ option;
  mutable blocks : block array;  (** [blocks.(i).id = i]; entry is 0 *)
  mutable vreg_types : typ array;  (** indexed by vreg *)
}

type global = Array of typ * int | Scalar of typ

type program = { globals : (string * global) list; funcs : func list }

val nvregs : func -> int
val vreg_type : func -> vreg -> typ
val block : func -> int -> block

val defs : instr -> vreg list
val uses_instr : instr -> vreg list
val uses_term : terminator -> vreg list
val successors : terminator -> int list

val is_float_op : binop -> bool
val find_func : program -> string -> func option

val map_instr_vregs : (vreg -> vreg) -> instr -> instr
(** Used by tests and simple rewrites. *)

val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

val check : program -> (unit, string) result
(** Structural sanity: block ids match indices, branch targets exist,
    vregs within range, called functions defined with matching arity. *)
