(** The VCPU simulator: executes machine code with a shared physical
    register file, per-frame spill slots, and a cycle cost model
    ({!Target}).  Speedups over the FAST allocator are the §V-C metric.

    The calling convention is enforced adversarially: after every call the
    caller-saved registers and the scratch registers are deliberately
    clobbered with garbage, so any allocation that wrongly keeps a live
    value there produces wrong output (and is caught by the end-to-end
    output-equality tests) rather than silently working. *)

type outcome = {
  output : string list;
  ret : Interp.value option;
  cycles : int;
  steps : int;
}

exception Runtime_error of string

val run :
  ?fuel:int ->
  ?entry:string ->
  ?args:Interp.value list ->
  Mach.mprogram ->
  outcome
