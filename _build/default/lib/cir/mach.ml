type mval = MReg of int | MInt of int | MFloat of float | MSlot of int

type minstr =
  | MBin of Ir.binop * int * mval * mval
  | MMov of int * mval
  | MI2f of int * mval
  | MF2i of int * mval
  | MLoad of int * string * mval
  | MStore of string * mval * mval
  | MLoad_var of int * string
  | MStore_var of string * mval
  | MCall of int option * string * mval list
  | MPrint of Ir.typ * mval
  | MSpill_load of int * int
  | MSpill_store of int * int

type ploc = PReg of int | PSlot of int

type mterm = MRet of mval option | MJmp of int | MBr of mval * int * int
type mblock = { id : int; instrs : minstr list; term : mterm }

type mfunc = {
  name : string;
  params_loc : ploc list;
  nslots : int;
  blocks : mblock array;
  callee_saved_used : int list;
}

type mprogram = { globals : (string * Ir.global) list; funcs : mfunc list }

let find_func p name = List.find_opt (fun f -> f.name = name) p.funcs

let pp_mval ppf = function
  | MReg r -> Format.fprintf ppf "P%d" r
  | MInt i -> Format.fprintf ppf "%d" i
  | MFloat f -> Format.fprintf ppf "%g" f
  | MSlot s -> Format.fprintf ppf "[slot %d]" s

let pp_minstr ppf = function
  | MBin (op, d, a, b) ->
      Format.fprintf ppf "P%d = %s %a, %a" d
        (match op with
        | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul" | Ir.Div -> "div"
        | Ir.Mod -> "mod" | Ir.Lt -> "lt" | Ir.Le -> "le" | Ir.Gt -> "gt"
        | Ir.Ge -> "ge" | Ir.Eq -> "eq" | Ir.Ne -> "ne" | Ir.Fadd -> "fadd"
        | Ir.Fsub -> "fsub" | Ir.Fmul -> "fmul" | Ir.Fdiv -> "fdiv"
        | Ir.Flt -> "flt" | Ir.Fle -> "fle" | Ir.Fgt -> "fgt" | Ir.Fge -> "fge"
        | Ir.Feq -> "feq" | Ir.Fne -> "fne")
        pp_mval a pp_mval b
  | MMov (d, a) -> Format.fprintf ppf "P%d = %a" d pp_mval a
  | MI2f (d, a) -> Format.fprintf ppf "P%d = i2f %a" d pp_mval a
  | MF2i (d, a) -> Format.fprintf ppf "P%d = f2i %a" d pp_mval a
  | MLoad (d, g, i) -> Format.fprintf ppf "P%d = %s[%a]" d g pp_mval i
  | MStore (g, i, v) -> Format.fprintf ppf "%s[%a] = %a" g pp_mval i pp_mval v
  | MLoad_var (d, g) -> Format.fprintf ppf "P%d = %s" d g
  | MStore_var (g, v) -> Format.fprintf ppf "%s = %a" g pp_mval v
  | MCall (d, name, args) ->
      (match d with
      | Some d -> Format.fprintf ppf "P%d = call %s(" d name
      | None -> Format.fprintf ppf "call %s(" name);
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_mval ppf args;
      Format.fprintf ppf ")"
  | MPrint (_, v) -> Format.fprintf ppf "print %a" pp_mval v
  | MSpill_load (r, s) -> Format.fprintf ppf "P%d = [slot %d]" r s
  | MSpill_store (r, s) -> Format.fprintf ppf "[slot %d] = P%d" s r

let pp_func ppf f =
  Format.fprintf ppf "@[<v>mfunc %s (%d slots):" f.name f.nslots;
  Array.iter
    (fun b ->
      Format.fprintf ppf "@,b%d:" b.id;
      List.iter (fun i -> Format.fprintf ppf "@,  %a" pp_minstr i) b.instrs;
      (match b.term with
      | MRet None -> Format.fprintf ppf "@,  ret"
      | MRet (Some v) -> Format.fprintf ppf "@,  ret %a" pp_mval v
      | MJmp l -> Format.fprintf ppf "@,  jmp b%d" l
      | MBr (v, a, c) -> Format.fprintf ppf "@,  br %a, b%d, b%d" pp_mval v a c))
    f.blocks;
  Format.fprintf ppf "@]"
