(* The 24 benchmark sources.  All are deterministic: randomness comes from
   the Stanford-style LCG in [rand_header]. *)

let rand_header =
  {|
int rnd_seed = 74755;
int rnd() {
  rnd_seed = (rnd_seed * 1309 + 13849) % 65536;
  return rnd_seed;
}
|}

let bubblesort =
  rand_header
  ^ {|
int sortlist[120];
int main() {
  int n = 120;
  int i;
  for (i = 0; i < n; i = i + 1) { sortlist[i] = rnd(); }
  int top = n - 1;
  while (top > 0) {
    int j = 0;
    while (j < top) {
      if (sortlist[j] > sortlist[j+1]) {
        int t = sortlist[j];
        sortlist[j] = sortlist[j+1];
        sortlist[j+1] = t;
      }
      j = j + 1;
    }
    top = top - 1;
  }
  int bad = 0;
  for (i = 0; i < n - 1; i = i + 1) {
    if (sortlist[i] > sortlist[i+1]) { bad = bad + 1; }
  }
  print(bad);
  print(sortlist[0]);
  print(sortlist[n-1]);
  return 0;
}
|}

let intmm =
  rand_header
  ^ {|
int ma[144];
int mb[144];
int mc[144];
int main() {
  int n = 12;
  int i; int j; int k;
  for (i = 0; i < n*n; i = i + 1) { ma[i] = rnd() % 10; mb[i] = rnd() % 10; }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      int s = 0;
      for (k = 0; k < n; k = k + 1) { s = s + ma[i*n+k] * mb[k*n+j]; }
      mc[i*n+j] = s;
    }
  }
  int sum = 0;
  for (i = 0; i < n*n; i = i + 1) { sum = sum + mc[i]; }
  print(sum);
  print(mc[0]);
  print(mc[n*n-1]);
  return 0;
}
|}

let realmm =
  rand_header
  ^ {|
float ra[144];
float rb[144];
float rc[144];
int main() {
  int n = 12;
  int i; int j; int k;
  for (i = 0; i < n*n; i = i + 1) {
    ra[i] = (float)(rnd() % 100) / 10.0;
    rb[i] = (float)(rnd() % 100) / 10.0;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      float s = 0.0;
      for (k = 0; k < n; k = k + 1) { s = s + ra[i*n+k] * rb[k*n+j]; }
      rc[i*n+j] = s;
    }
  }
  float total = 0.0;
  for (i = 0; i < n*n; i = i + 1) { total = total + rc[i]; }
  print(total);
  print(rc[0]);
  return 0;
}
|}

let floatmm =
  rand_header
  ^ {|
float fa[100];
float fb[100];
float fc[100];
int main() {
  int n = 10;
  int trial;
  float grand = 0.0;
  int i; int j; int k;
  for (trial = 0; trial < 3; trial = trial + 1) {
    for (i = 0; i < n*n; i = i + 1) {
      fa[i] = (float)(rnd() % 50) / 7.0;
      fb[i] = (float)(rnd() % 50) / 11.0;
      fc[i] = 0.0;
    }
    for (k = 0; k < n; k = k + 1) {
      for (i = 0; i < n; i = i + 1) {
        float aik = fa[i*n+k];
        for (j = 0; j < n; j = j + 1) {
          fc[i*n+j] = fc[i*n+j] + aik * fb[k*n+j];
        }
      }
    }
    for (i = 0; i < n*n; i = i + 1) { grand = grand + fc[i]; }
  }
  print(grand);
  return 0;
}
|}

(* Oscar: the Stanford FFT benchmark; here a radix-2-style butterfly pass
   over float arrays with a polynomial sine approximation. *)
let oscar =
  {|
float re[64];
float im[64];
float sine(float x) {
  /* Taylor around 0, adequate for the range used */
  float x2 = x * x;
  return x * (1.0 - x2 / 6.0 + x2 * x2 / 120.0 - x2 * x2 * x2 / 5040.0);
}
float cosine(float x) {
  float x2 = x * x;
  return 1.0 - x2 / 2.0 + x2 * x2 / 24.0 - x2 * x2 * x2 / 720.0;
}
int main() {
  int n = 64;
  int i;
  for (i = 0; i < n; i = i + 1) {
    re[i] = sine(0.1 * (float)i);
    im[i] = 0.0;
  }
  int len = 2;
  while (len <= n) {
    float ang = 6.2831853 / (float)len;
    float wr = cosine(ang);
    float wi = 0.0 - sine(ang);
    int start = 0;
    while (start < n) {
      float cr = 1.0;
      float ci = 0.0;
      int j;
      for (j = 0; j < len / 2; j = j + 1) {
        int a = start + j;
        int b = a + len / 2;
        float tr = cr * re[b] - ci * im[b];
        float ti = cr * im[b] + ci * re[b];
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] = re[a] + tr;
        im[a] = im[a] + ti;
        float ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
      start = start + len;
    }
    len = len * 2;
  }
  float energy = 0.0;
  for (i = 0; i < n; i = i + 1) { energy = energy + re[i]*re[i] + im[i]*im[i]; }
  print(energy);
  print(re[1]);
  print(im[1]);
  return 0;
}
|}

let perm =
  {|
int permarray[12];
int pctr = 0;
void swap(int a, int b) {
  int t = permarray[a];
  permarray[a] = permarray[b];
  permarray[b] = t;
}
void permute(int n) {
  pctr = pctr + 1;
  if (n != 0) {
    permute(n - 1);
    int k;
    for (k = n - 1; k >= 0; k = k - 1) {
      swap(n - 1, k);
      permute(n - 1);
      swap(n - 1, k);
    }
  }
}
int main() {
  int i;
  for (i = 0; i < 7; i = i + 1) { permarray[i] = i; }
  permute(7);
  print(pctr);
  return 0;
}
|}

(* Puzzle: a branch-heavy subset-sum search standing in for Forest
   Baskett's puzzle. *)
let puzzle =
  rand_header
  ^ {|
int pieces[16];
int found = 0;
void search(int idx, int remaining) {
  if (remaining == 0) { found = found + 1; return; }
  if (idx >= 16) { return; }
  if (remaining < 0) { return; }
  search(idx + 1, remaining - pieces[idx]);
  search(idx + 1, remaining);
}
int main() {
  int i;
  int total = 0;
  for (i = 0; i < 16; i = i + 1) {
    pieces[i] = 1 + rnd() % 30;
    total = total + pieces[i];
  }
  search(0, total / 2);
  print(found);
  return 0;
}
|}

let queens =
  {|
int qrow[8];
int solutions = 0;
int safe(int r, int c) {
  int i;
  for (i = 0; i < c; i = i + 1) {
    int d = c - i;
    if (qrow[i] == r) { return 0; }
    if (qrow[i] == r - d) { return 0; }
    if (qrow[i] == r + d) { return 0; }
  }
  return 1;
}
void place(int c, int n) {
  if (c == n) { solutions = solutions + 1; return; }
  int r;
  for (r = 0; r < n; r = r + 1) {
    if (safe(r, c)) {
      qrow[c] = r;
      place(c + 1, n);
    }
  }
}
int main() {
  place(0, 7);
  print(solutions);
  return 0;
}
|}

let quicksort =
  rand_header
  ^ {|
int qdata[150];
void qsort(int lo, int hi) {
  if (lo >= hi) { return; }
  int pivot = qdata[(lo + hi) / 2];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (qdata[i] < pivot) { i = i + 1; }
    while (qdata[j] > pivot) { j = j - 1; }
    if (i <= j) {
      int t = qdata[i];
      qdata[i] = qdata[j];
      qdata[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  qsort(lo, j);
  qsort(i, hi);
}
int main() {
  int n = 150;
  int i;
  for (i = 0; i < n; i = i + 1) { qdata[i] = rnd(); }
  qsort(0, n - 1);
  int bad = 0;
  for (i = 0; i < n - 1; i = i + 1) {
    if (qdata[i] > qdata[i+1]) { bad = bad + 1; }
  }
  print(bad);
  print(qdata[0]);
  print(qdata[n-1]);
  return 0;
}
|}

let towers =
  {|
int moves = 0;
void hanoi(int n, int from, int to, int via) {
  if (n == 0) { return; }
  hanoi(n - 1, from, via, to);
  moves = moves + 1;
  hanoi(n - 1, via, to, from);
}
int main() {
  hanoi(12, 1, 3, 2);
  print(moves);
  return 0;
}
|}

(* Treesort: heap sort over an implicit binary tree in an array. *)
let treesort =
  rand_header
  ^ {|
int heap[128];
int hsize = 0;
void sift_down(int start, int end) {
  int root = start;
  while (root * 2 + 1 <= end) {
    int child = root * 2 + 1;
    if (child + 1 <= end) {
      if (heap[child] < heap[child+1]) { child = child + 1; }
    }
    if (heap[root] < heap[child]) {
      int t = heap[root];
      heap[root] = heap[child];
      heap[child] = t;
      root = child;
    } else {
      return;
    }
  }
}
int main() {
  int n = 128;
  int i;
  for (i = 0; i < n; i = i + 1) { heap[i] = rnd(); }
  for (i = n / 2 - 1; i >= 0; i = i - 1) { sift_down(i, n - 1); }
  int end = n - 1;
  while (end > 0) {
    int t = heap[0];
    heap[0] = heap[end];
    heap[end] = t;
    end = end - 1;
    sift_down(0, end);
  }
  int bad = 0;
  for (i = 0; i < n - 1; i = i + 1) {
    if (heap[i] > heap[i+1]) { bad = bad + 1; }
  }
  print(bad);
  print(heap[0]);
  print(heap[n-1]);
  return 0;
}
|}

let ackermann =
  {|
int ack(int m, int n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
int main() {
  print(ack(2, 6));
  print(ack(3, 3));
  return 0;
}
|}

let fib =
  {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  print(fib(18));
  return 0;
}
|}

let sieve =
  {|
int flags[400];
int main() {
  int n = 400;
  int i;
  for (i = 0; i < n; i = i + 1) { flags[i] = 1; }
  int count = 0;
  for (i = 2; i < n; i = i + 1) {
    if (flags[i]) {
      count = count + 1;
      int j = i + i;
      while (j < n) {
        flags[j] = 0;
        j = j + i;
      }
    }
  }
  print(count);
  return 0;
}
|}

let gcd =
  rand_header
  ^ {|
int gcd(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 200; i = i + 1) {
    int a = 1 + rnd();
    int b = 1 + rnd();
    acc = acc + gcd(a, b);
  }
  print(acc);
  return 0;
}
|}

let collatz =
  {|
int main() {
  int best = 0;
  int best_n = 0;
  int n;
  for (n = 1; n < 400; n = n + 1) {
    int len = 0;
    int x = n;
    while (x != 1) {
      if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      len = len + 1;
    }
    if (len > best) { best = len; best_n = n; }
  }
  print(best);
  print(best_n);
  return 0;
}
|}

let dotprod =
  rand_header
  ^ {|
float va[200];
float vb[200];
int main() {
  int n = 200;
  int i;
  for (i = 0; i < n; i = i + 1) {
    va[i] = (float)(rnd() % 1000) / 100.0;
    vb[i] = (float)(rnd() % 1000) / 100.0;
  }
  float dot = 0.0;
  float na = 0.0;
  float nb = 0.0;
  int trial;
  for (trial = 0; trial < 10; trial = trial + 1) {
    dot = 0.0;
    na = 0.0;
    nb = 0.0;
    for (i = 0; i < n; i = i + 1) {
      dot = dot + va[i] * vb[i];
      na = na + va[i] * va[i];
      nb = nb + vb[i] * vb[i];
    }
  }
  print(dot);
  print(na);
  print(nb);
  return 0;
}
|}

let mandel =
  {|
int main() {
  int inside = 0;
  int py;
  for (py = 0; py < 24; py = py + 1) {
    int px;
    for (px = 0; px < 24; px = px + 1) {
      float cx = -2.0 + 2.5 * (float)px / 24.0;
      float cy = -1.2 + 2.4 * (float)py / 24.0;
      float zx = 0.0;
      float zy = 0.0;
      int it = 0;
      int alive = 1;
      while (alive && it < 50) {
        float nzx = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = nzx;
        if (zx * zx + zy * zy > 4.0) { alive = 0; }
        it = it + 1;
      }
      if (alive) { inside = inside + 1; }
    }
  }
  print(inside);
  return 0;
}
|}

let nbody =
  {|
float px[5]; float py[5];
float vx[5]; float vy[5];
float ms[5];
int main() {
  int n = 5;
  int i; int j;
  for (i = 0; i < n; i = i + 1) {
    px[i] = (float)(i * 7 % 5) - 2.0;
    py[i] = (float)(i * 3 % 5) - 2.0;
    vx[i] = 0.0;
    vy[i] = 0.0;
    ms[i] = 1.0 + (float)i / 5.0;
  }
  float dt = 0.01;
  int step;
  for (step = 0; step < 120; step = step + 1) {
    for (i = 0; i < n; i = i + 1) {
      float ax = 0.0;
      float ay = 0.0;
      for (j = 0; j < n; j = j + 1) {
        if (j != i) {
          float dx = px[j] - px[i];
          float dy = py[j] - py[i];
          float d2 = dx * dx + dy * dy + 0.1;
          float inv = 1.0 / (d2 * d2);
          ax = ax + ms[j] * dx * inv;
          ay = ay + ms[j] * dy * inv;
        }
      }
      vx[i] = vx[i] + ax * dt;
      vy[i] = vy[i] + ay * dt;
    }
    for (i = 0; i < n; i = i + 1) {
      px[i] = px[i] + vx[i] * dt;
      py[i] = py[i] + vy[i] * dt;
    }
  }
  float e = 0.0;
  for (i = 0; i < n; i = i + 1) {
    e = e + ms[i] * (vx[i]*vx[i] + vy[i]*vy[i]);
  }
  print(e);
  print(px[0]);
  print(py[4]);
  return 0;
}
|}

let poly =
  {|
float coef[16];
int main() {
  int deg = 16;
  int i;
  for (i = 0; i < deg; i = i + 1) {
    coef[i] = 1.0 / (float)(i + 1);
  }
  float acc = 0.0;
  float x;
  for (x = -1.0; x < 1.0; x = x + 0.01) {
    float y = 0.0;
    for (i = deg - 1; i >= 0; i = i - 1) {
      y = y * x + coef[i];
    }
    acc = acc + y;
  }
  print(acc);
  return 0;
}
|}

let hash =
  rand_header
  ^ {|
int table[97];
int main() {
  int i;
  for (i = 0; i < 97; i = i + 1) { table[i] = 0; }
  int collisions = 0;
  for (i = 0; i < 500; i = i + 1) {
    int key = rnd();
    int h = (key * 31 + 17) % 97;
    if (h < 0) { h = h + 97; }
    if (table[h] != 0) { collisions = collisions + 1; }
    table[h] = key;
  }
  print(collisions);
  return 0;
}
|}

let stats =
  rand_header
  ^ {|
float samples[256];
int main() {
  int n = 256;
  int i;
  for (i = 0; i < n; i = i + 1) {
    samples[i] = (float)(rnd() % 10000) / 100.0;
  }
  float mean = 0.0;
  for (i = 0; i < n; i = i + 1) { mean = mean + samples[i]; }
  mean = mean / (float)n;
  float var = 0.0;
  for (i = 0; i < n; i = i + 1) {
    float d = samples[i] - mean;
    var = var + d * d;
  }
  var = var / (float)n;
  print(mean);
  print(var);
  return 0;
}
|}

let binsearch =
  rand_header
  ^ {|
int sorted[256];
int bsearch(int key, int n) {
  int lo = 0;
  int hi = n - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (sorted[mid] == key) { return mid; }
    if (sorted[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
  }
  return -1;
}
int main() {
  int n = 256;
  int i;
  for (i = 0; i < n; i = i + 1) { sorted[i] = i * 7 + 3; }
  int hits = 0;
  for (i = 0; i < 400; i = i + 1) {
    if (bsearch(rnd() % 2000, n) >= 0) { hits = hits + 1; }
  }
  print(hits);
  return 0;
}
|}

let knapsack =
  rand_header
  ^ {|
int value[20];
int weight[20];
int best[301];
int main() {
  int n = 20;
  int cap = 300;
  int i;
  for (i = 0; i < n; i = i + 1) {
    value[i] = 1 + rnd() % 60;
    weight[i] = 1 + rnd() % 40;
  }
  int w;
  for (w = 0; w <= cap; w = w + 1) { best[w] = 0; }
  for (i = 0; i < n; i = i + 1) {
    for (w = cap; w >= weight[i]; w = w - 1) {
      int cand = best[w - weight[i]] + value[i];
      if (cand > best[w]) { best[w] = cand; }
    }
  }
  print(best[cap]);
  return 0;
}
|}

let all =
  [
    ("Bubblesort", bubblesort);
    ("IntMM", intmm);
    ("RealMM", realmm);
    ("FloatMM", floatmm);
    ("Oscar", oscar);
    ("Perm", perm);
    ("Puzzle", puzzle);
    ("Queens", queens);
    ("Quicksort", quicksort);
    ("Towers", towers);
    ("Treesort", treesort);
    ("Ackermann", ackermann);
    ("Fib", fib);
    ("Sieve", sieve);
    ("Gcd", gcd);
    ("Collatz", collatz);
    ("Dotprod", dotprod);
    ("Mandel", mandel);
    ("Nbody", nbody);
    ("Poly", poly);
    ("Hash", hash);
    ("Stats", stats);
    ("Binsearch", binsearch);
    ("Knapsack", knapsack);
  ]

let find name = List.assoc name all
let names = List.map fst all
