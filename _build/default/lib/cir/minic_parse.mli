(** Recursive-descent parser for MiniC.

    Grammar (informal):
    {v
    program   := (global | func)*
    global    := type ident ('[' int ']')? ('=' expr)? ';'
    func      := (type | 'void') ident '(' params ')' block
    block     := '{' stmt* '}'
    stmt      := decl | assign | store | if | while | for | return
               | print | expr ';' | block
    expr      := precedence-climbing over || && == != < <= > >=
                 + - * / % with unary - ! and casts '(int)'/'(float)'
    v} *)

val parse : string -> Minic_ast.program
(** @raise Invalid_argument with a line-numbered message on syntax
    errors. *)
