module A = Minic_ast

let fail fmt = Printf.ksprintf invalid_arg fmt

let typ_of_ast = function A.Tint -> Ir.Tint | A.Tfloat -> Ir.Tfloat

(* builder-side basic block *)
type bblock = {
  id : int;
  mutable instrs_rev : Ir.instr list;
  mutable term : Ir.terminator option;
  depth : int;
}

type fctx = {
  fname : string;
  globals : (string * Ir.global) list;
  fsigs : (string, Ir.typ list * Ir.typ option) Hashtbl.t;
  mutable scopes : (string, Ir.vreg * Ir.typ) Hashtbl.t list;
  mutable types_rev : Ir.typ list;
  mutable nv : int;
  mutable blocks_rev : bblock list;
  mutable nblocks : int;
  mutable cur : bblock;
  mutable depth : int;
  mutable loops : (int * int) list;
      (* innermost first: (break target, continue target) block ids *)
  ret : Ir.typ option;
}

let new_vreg ctx t =
  let v = ctx.nv in
  ctx.nv <- v + 1;
  ctx.types_rev <- t :: ctx.types_rev;
  v

let new_block ctx =
  let b = { id = ctx.nblocks; instrs_rev = []; term = None; depth = ctx.depth } in
  ctx.nblocks <- ctx.nblocks + 1;
  ctx.blocks_rev <- b :: ctx.blocks_rev;
  b

let emit ctx i =
  if ctx.cur.term = None then ctx.cur.instrs_rev <- i :: ctx.cur.instrs_rev

let set_term ctx t = if ctx.cur.term = None then ctx.cur.term <- Some t

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes
let pop_scope ctx = ctx.scopes <- List.tl ctx.scopes

let declare ctx name t =
  match ctx.scopes with
  | [] -> assert false
  | scope :: _ ->
      if Hashtbl.mem scope name then
        fail "%s: duplicate declaration of %s" ctx.fname name;
      let v = new_vreg ctx t in
      Hashtbl.replace scope name (v, t);
      v

let lookup_local ctx name =
  List.find_map (fun scope -> Hashtbl.find_opt scope name) ctx.scopes

let global_scalar ctx name =
  match List.assoc_opt name ctx.globals with
  | Some (Ir.Scalar t) -> Some t
  | _ -> None

let global_array ctx name =
  match List.assoc_opt name ctx.globals with
  | Some (Ir.Array (t, n)) -> Some (t, n)
  | _ -> None

(* coerce a typed value to the requested type *)
let coerce ctx (v, t) want =
  match (t, want) with
  | Ir.Tint, Ir.Tint | Ir.Tfloat, Ir.Tfloat -> v
  | Ir.Tint, Ir.Tfloat -> (
      match v with
      | Ir.VInt i -> Ir.VFloat (float_of_int i)
      | _ ->
          let d = new_vreg ctx Ir.Tfloat in
          emit ctx (Ir.I2f (d, v));
          Ir.VReg d)
  | Ir.Tfloat, Ir.Tint -> (
      match v with
      | Ir.VFloat f -> Ir.VInt (int_of_float f)
      | _ ->
          let d = new_vreg ctx Ir.Tint in
          emit ctx (Ir.F2i (d, v));
          Ir.VReg d)

let int_binop = function
  | A.Add -> Ir.Add | A.Sub -> Ir.Sub | A.Mul -> Ir.Mul | A.Div -> Ir.Div
  | A.Mod -> Ir.Mod | A.Lt -> Ir.Lt | A.Le -> Ir.Le | A.Gt -> Ir.Gt
  | A.Ge -> Ir.Ge | A.Eq -> Ir.Eq | A.Ne -> Ir.Ne
  | A.LAnd | A.LOr -> assert false

let float_binop = function
  | A.Add -> Ir.Fadd | A.Sub -> Ir.Fsub | A.Mul -> Ir.Fmul | A.Div -> Ir.Fdiv
  | A.Lt -> Ir.Flt | A.Le -> Ir.Fle | A.Gt -> Ir.Fgt | A.Ge -> Ir.Fge
  | A.Eq -> Ir.Feq | A.Ne -> Ir.Fne
  | A.Mod -> assert false
  | A.LAnd | A.LOr -> assert false

let is_comparison = function
  | A.Lt | A.Le | A.Gt | A.Ge | A.Eq | A.Ne -> true
  | _ -> false

let rec lower_expr ctx (e : A.expr) : Ir.value * Ir.typ =
  match e with
  | A.Int_lit i -> (Ir.VInt i, Ir.Tint)
  | A.Float_lit f -> (Ir.VFloat f, Ir.Tfloat)
  | A.Var name -> (
      match lookup_local ctx name with
      | Some (v, t) -> (Ir.VReg v, t)
      | None -> (
          match global_scalar ctx name with
          | Some t ->
              let d = new_vreg ctx t in
              emit ctx (Ir.Load_var (d, name));
              (Ir.VReg d, t)
          | None -> fail "%s: unbound variable %s" ctx.fname name))
  | A.Index (name, idx) -> (
      match global_array ctx name with
      | None -> fail "%s: %s is not a global array" ctx.fname name
      | Some (t, _) ->
          let iv = lower_expr ctx idx in
          let iv = coerce_strict_int ctx name iv in
          let d = new_vreg ctx t in
          emit ctx (Ir.Load (d, name, iv));
          (Ir.VReg d, t))
  | A.Unop (A.Neg, e) -> (
      let v, t = lower_expr ctx e in
      match t with
      | Ir.Tint ->
          let d = new_vreg ctx Ir.Tint in
          emit ctx (Ir.Bin (Ir.Sub, d, Ir.VInt 0, v));
          (Ir.VReg d, Ir.Tint)
      | Ir.Tfloat ->
          let d = new_vreg ctx Ir.Tfloat in
          emit ctx (Ir.Bin (Ir.Fsub, d, Ir.VFloat 0.0, v));
          (Ir.VReg d, Ir.Tfloat))
  | A.Unop (A.LNot, e) ->
      let b = lower_bool ctx e in
      let d = new_vreg ctx Ir.Tint in
      emit ctx (Ir.Bin (Ir.Eq, d, b, Ir.VInt 0));
      (Ir.VReg d, Ir.Tint)
  | A.Binop ((A.LAnd | A.LOr) as op, a, b) ->
      let ba = lower_bool ctx a in
      let bb = lower_bool ctx b in
      let d = new_vreg ctx Ir.Tint in
      (match op with
      | A.LAnd -> emit ctx (Ir.Bin (Ir.Mul, d, ba, bb))
      | A.LOr ->
          let s = new_vreg ctx Ir.Tint in
          emit ctx (Ir.Bin (Ir.Add, s, ba, bb));
          emit ctx (Ir.Bin (Ir.Ne, d, Ir.VReg s, Ir.VInt 0))
      | _ -> assert false);
      (Ir.VReg d, Ir.Tint)
  | A.Binop (op, a, b) ->
      let va, ta = lower_expr ctx a in
      let vb, tb = lower_expr ctx b in
      let unified = if ta = Ir.Tfloat || tb = Ir.Tfloat then Ir.Tfloat else Ir.Tint in
      if op = A.Mod && unified = Ir.Tfloat then
        fail "%s: %% requires integer operands" ctx.fname;
      let va = coerce ctx (va, ta) unified in
      let vb = coerce ctx (vb, tb) unified in
      let result_t = if is_comparison op then Ir.Tint else unified in
      let irop = if unified = Ir.Tfloat then float_binop op else int_binop op in
      let d = new_vreg ctx result_t in
      emit ctx (Ir.Bin (irop, d, va, vb));
      (Ir.VReg d, result_t)
  | A.Call (name, args) -> (
      match Hashtbl.find_opt ctx.fsigs name with
      | None -> fail "%s: call to undefined function %s" ctx.fname name
      | Some (ptypes, ret) ->
          if List.length ptypes <> List.length args then
            fail "%s: %s expects %d arguments" ctx.fname name
              (List.length ptypes);
          let vals =
            List.map2 (fun pt a -> coerce ctx (lower_expr ctx a) pt) ptypes args
          in
          (match ret with
          | None -> fail "%s: void call to %s used as a value" ctx.fname name
          | Some rt ->
              let d = new_vreg ctx rt in
              emit ctx (Ir.Call (Some d, name, vals));
              (Ir.VReg d, rt)))
  | A.Cast (t, e) ->
      let want = typ_of_ast t in
      let v = lower_expr ctx e in
      (coerce ctx v want, want)

and coerce_strict_int ctx name (v, t) =
  if t <> Ir.Tint then fail "%s: array index of %s must be int" ctx.fname name;
  v

(* a value suitable for a ≠-0 test, always of int type *)
and lower_bool ctx e =
  let v, t = lower_expr ctx e in
  match t with
  | Ir.Tint ->
      let d = new_vreg ctx Ir.Tint in
      emit ctx (Ir.Bin (Ir.Ne, d, v, Ir.VInt 0));
      Ir.VReg d
  | Ir.Tfloat ->
      let d = new_vreg ctx Ir.Tint in
      emit ctx (Ir.Bin (Ir.Fne, d, v, Ir.VFloat 0.0));
      Ir.VReg d

let rec lower_stmt ctx (s : A.stmt) =
  match s with
  | A.Decl (t, name, init) ->
      let t = typ_of_ast t in
      let v = declare ctx name t in
      let value =
        match init with
        | Some e -> coerce ctx (lower_expr ctx e) t
        | None -> ( match t with Ir.Tint -> Ir.VInt 0 | Ir.Tfloat -> Ir.VFloat 0.0)
      in
      emit ctx (Ir.Mov (v, value))
  | A.Assign (name, e) -> (
      match lookup_local ctx name with
      | Some (v, t) ->
          let value = coerce ctx (lower_expr ctx e) t in
          emit ctx (Ir.Mov (v, value))
      | None -> (
          match global_scalar ctx name with
          | Some t ->
              let value = coerce ctx (lower_expr ctx e) t in
              emit ctx (Ir.Store_var (name, value))
          | None -> fail "%s: assignment to unbound %s" ctx.fname name))
  | A.Store (name, idx, e) -> (
      match global_array ctx name with
      | None -> fail "%s: %s is not a global array" ctx.fname name
      | Some (t, _) ->
          let iv = coerce_strict_int ctx name (lower_expr ctx idx) in
          let value = coerce ctx (lower_expr ctx e) t in
          emit ctx (Ir.Store (name, iv, value)))
  | A.If (cond, then_, else_) -> (
      let c = lower_bool ctx cond in
      let then_b = new_block ctx in
      match else_ with
      | None ->
          let join = new_block ctx in
          set_term ctx (Ir.Br (c, then_b.id, join.id));
          ctx.cur <- then_b;
          lower_block ctx then_;
          set_term ctx (Ir.Jmp join.id);
          ctx.cur <- join
      | Some else_ ->
          let else_b = new_block ctx in
          let join = new_block ctx in
          set_term ctx (Ir.Br (c, then_b.id, else_b.id));
          ctx.cur <- then_b;
          lower_block ctx then_;
          set_term ctx (Ir.Jmp join.id);
          ctx.cur <- else_b;
          lower_block ctx else_;
          set_term ctx (Ir.Jmp join.id);
          ctx.cur <- join)
  | A.While (cond, body) ->
      ctx.depth <- ctx.depth + 1;
      let header = new_block ctx in
      set_term ctx (Ir.Jmp header.id);
      ctx.cur <- header;
      let c = lower_bool ctx cond in
      let body_b = new_block ctx in
      ctx.depth <- ctx.depth - 1;
      let exit_b = new_block ctx in
      ctx.depth <- ctx.depth + 1;
      set_term ctx (Ir.Br (c, body_b.id, exit_b.id));
      ctx.cur <- body_b;
      ctx.loops <- (exit_b.id, header.id) :: ctx.loops;
      lower_block ctx body;
      ctx.loops <- List.tl ctx.loops;
      set_term ctx (Ir.Jmp header.id);
      ctx.depth <- ctx.depth - 1;
      ctx.cur <- exit_b
  | A.For (init, cond, step, body) ->
      push_scope ctx;
      Option.iter (lower_stmt ctx) init;
      ctx.depth <- ctx.depth + 1;
      let header = new_block ctx in
      set_term ctx (Ir.Jmp header.id);
      ctx.cur <- header;
      let c =
        match cond with Some c -> lower_bool ctx c | None -> Ir.VInt 1
      in
      let body_b = new_block ctx in
      let step_b = new_block ctx in
      ctx.depth <- ctx.depth - 1;
      let exit_b = new_block ctx in
      ctx.depth <- ctx.depth + 1;
      set_term ctx (Ir.Br (c, body_b.id, exit_b.id));
      ctx.cur <- body_b;
      ctx.loops <- (exit_b.id, step_b.id) :: ctx.loops;
      lower_block ctx body;
      ctx.loops <- List.tl ctx.loops;
      set_term ctx (Ir.Jmp step_b.id);
      ctx.cur <- step_b;
      Option.iter (lower_stmt ctx) step;
      set_term ctx (Ir.Jmp header.id);
      ctx.depth <- ctx.depth - 1;
      ctx.cur <- exit_b;
      pop_scope ctx
  | A.Return e -> (
      match (ctx.ret, e) with
      | None, None -> set_term ctx (Ir.Ret None)
      | None, Some _ -> fail "%s: returning a value from void" ctx.fname
      | Some _, None -> fail "%s: missing return value" ctx.fname
      | Some rt, Some e ->
          let v = coerce ctx (lower_expr ctx e) rt in
          set_term ctx (Ir.Ret (Some v)))
  | A.Break -> (
      match ctx.loops with
      | (brk, _) :: _ -> set_term ctx (Ir.Jmp brk)
      | [] -> fail "%s: break outside a loop" ctx.fname)
  | A.Continue -> (
      match ctx.loops with
      | (_, cont) :: _ -> set_term ctx (Ir.Jmp cont)
      | [] -> fail "%s: continue outside a loop" ctx.fname)
  | A.Expr_stmt (A.Call (name, args)) -> (
      (* allow calling void functions in statement position *)
      match Hashtbl.find_opt ctx.fsigs name with
      | None -> fail "%s: call to undefined function %s" ctx.fname name
      | Some (ptypes, ret) ->
          if List.length ptypes <> List.length args then
            fail "%s: %s expects %d arguments" ctx.fname name
              (List.length ptypes);
          let vals =
            List.map2 (fun pt a -> coerce ctx (lower_expr ctx a) pt) ptypes args
          in
          let d = Option.map (fun rt -> new_vreg ctx rt) ret in
          emit ctx (Ir.Call (d, name, vals)))
  | A.Expr_stmt e -> ignore (lower_expr ctx e)
  | A.Print e ->
      let v, t = lower_expr ctx e in
      emit ctx (Ir.Print (t, v))
  | A.Block b ->
      push_scope ctx;
      lower_block ctx b;
      pop_scope ctx

and lower_block ctx stmts = List.iter (lower_stmt ctx) stmts

let lower_func globals fsigs (f : A.func) ~extra_entry : Ir.func =
  let ret = Option.map typ_of_ast f.A.ret in
  let entry = { id = 0; instrs_rev = []; term = None; depth = 0 } in
  let ctx =
    {
      fname = f.A.name;
      globals;
      fsigs;
      scopes = [];
      types_rev = [];
      nv = 0;
      blocks_rev = [ entry ];
      nblocks = 1;
      cur = entry;
      depth = 0;
      loops = [];
      ret;
    }
  in
  push_scope ctx;
  let params =
    List.map
      (fun (t, name) -> declare ctx name (typ_of_ast t))
      f.A.params
  in
  List.iter (emit ctx) extra_entry;
  lower_block ctx f.A.body;
  (* fall-off-the-end: default return *)
  set_term ctx
    (match ret with
    | None -> Ir.Ret None
    | Some Ir.Tint -> Ir.Ret (Some (Ir.VInt 0))
    | Some Ir.Tfloat -> Ir.Ret (Some (Ir.VFloat 0.0)));
  let blocks =
    List.rev ctx.blocks_rev
    |> List.map (fun b ->
           {
             Ir.id = b.id;
             instrs = List.rev b.instrs_rev;
             term = Option.value b.term ~default:(Ir.Ret None);
             depth = b.depth;
           })
    |> Array.of_list
  in
  {
    Ir.name = f.A.name;
    params;
    ret;
    blocks;
    vreg_types = Array.of_list (List.rev ctx.types_rev);
  }

let const_of_expr fname = function
  | A.Int_lit i -> Ir.VInt i
  | A.Float_lit f -> Ir.VFloat f
  | A.Unop (A.Neg, A.Int_lit i) -> Ir.VInt (-i)
  | A.Unop (A.Neg, A.Float_lit f) -> Ir.VFloat (-.f)
  | _ -> fail "global initializer of %s must be a literal" fname

let lower (p : A.program) : Ir.program =
  let globals =
    List.map
      (function
        | A.Garray (t, name, n) -> (name, Ir.Array (typ_of_ast t, n))
        | A.Gvar (t, name, _) -> (name, Ir.Scalar (typ_of_ast t)))
      p.A.globals
  in
  (let names = List.map fst globals in
   if List.length (List.sort_uniq compare names) <> List.length names then
     fail "duplicate global names");
  let fsigs = Hashtbl.create 16 in
  List.iter
    (fun (f : A.func) ->
      if Hashtbl.mem fsigs f.A.name then fail "duplicate function %s" f.A.name;
      Hashtbl.replace fsigs f.A.name
        (List.map (fun (t, _) -> typ_of_ast t) f.A.params,
         Option.map typ_of_ast f.A.ret))
    p.A.funcs;
  (* global scalar initializers run at the top of main *)
  let init_instrs =
    List.filter_map
      (function
        | A.Gvar (t, name, Some e) ->
            let v = const_of_expr name e in
            let t = typ_of_ast t in
            let v =
              match (t, v) with
              | Ir.Tfloat, Ir.VInt i -> Ir.VFloat (float_of_int i)
              | Ir.Tint, Ir.VFloat _ -> fail "initializer of %s must be int" name
              | _ -> v
            in
            Some (Ir.Store_var (name, v))
        | _ -> None)
      p.A.globals
  in
  if init_instrs <> [] && not (Hashtbl.mem fsigs "main") then
    fail "global initializers need a main function";
  let funcs =
    List.map
      (fun (f : A.func) ->
        let extra_entry = if f.A.name = "main" then init_instrs else [] in
        lower_func globals fsigs f ~extra_entry)
      p.A.funcs
  in
  { Ir.globals; funcs }

let compile src =
  let ir = lower (Minic_parse.parse src) in
  (match Ir.check ir with
  | Ok () -> ()
  | Error e -> fail "IR check failed: %s" e);
  ir
