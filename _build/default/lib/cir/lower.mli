(** Lowering from the MiniC AST to the IR: scoped name resolution, type
    checking with implicit int↔float coercions at operator boundaries,
    short-circuit-free boolean lowering, loop-depth annotation of blocks,
    and global-initializer placement at the top of [main]. *)

val lower : Minic_ast.program -> Ir.program
(** @raise Invalid_argument with a descriptive message on type or
    name-resolution errors. *)

val compile : string -> Ir.program
(** [parse] then [lower]; the IR is structurally {!Ir.check}ed. *)
