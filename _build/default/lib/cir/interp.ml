type value = I of int | F of float
type outcome = { output : string list; ret : value option; steps : int }

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let value_to_string = function
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6f" f

let as_int = function I i -> i | F _ -> err "expected int value"
let as_float = function F f -> f | I _ -> err "expected float value"

type genv = {
  arrays : (string, value array) Hashtbl.t;
  scalars : (string, value ref) Hashtbl.t;
}

let make_genv (p : Ir.program) =
  let g = { arrays = Hashtbl.create 8; scalars = Hashtbl.create 8 } in
  List.iter
    (fun (name, glob) ->
      match glob with
      | Ir.Array (Ir.Tint, n) -> Hashtbl.replace g.arrays name (Array.make n (I 0))
      | Ir.Array (Ir.Tfloat, n) ->
          Hashtbl.replace g.arrays name (Array.make n (F 0.0))
      | Ir.Scalar Ir.Tint -> Hashtbl.replace g.scalars name (ref (I 0))
      | Ir.Scalar Ir.Tfloat -> Hashtbl.replace g.scalars name (ref (F 0.0)))
    p.Ir.globals;
  g

let eval_binop op a b =
  let bi f = I (f (as_int a) (as_int b)) in
  let bf f = F (f (as_float a) (as_float b)) in
  let ci f = I (if f (as_int a) (as_int b) then 1 else 0) in
  let cf f = I (if f (as_float a) (as_float b) then 1 else 0) in
  match op with
  | Ir.Add -> bi ( + )
  | Ir.Sub -> bi ( - )
  | Ir.Mul -> bi ( * )
  | Ir.Div -> if as_int b = 0 then err "integer division by zero" else bi ( / )
  | Ir.Mod -> if as_int b = 0 then err "integer modulo by zero" else bi (mod)
  | Ir.Lt -> ci ( < )
  | Ir.Le -> ci ( <= )
  | Ir.Gt -> ci ( > )
  | Ir.Ge -> ci ( >= )
  | Ir.Eq -> ci ( = )
  | Ir.Ne -> ci ( <> )
  | Ir.Fadd -> bf ( +. )
  | Ir.Fsub -> bf ( -. )
  | Ir.Fmul -> bf ( *. )
  | Ir.Fdiv -> bf ( /. )
  | Ir.Flt -> cf ( < )
  | Ir.Fle -> cf ( <= )
  | Ir.Fgt -> cf ( > )
  | Ir.Fge -> cf ( >= )
  | Ir.Feq -> cf ( = )
  | Ir.Fne -> cf ( <> )

let run ?(fuel = 50_000_000) ?(entry = "main") ?(args = []) (p : Ir.program) =
  let genv = make_genv p in
  let output = ref [] in
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > fuel then err "out of fuel (infinite loop?)"
  in
  let array_get name idx =
    match Hashtbl.find_opt genv.arrays name with
    | None -> err "no such array %s" name
    | Some a ->
        if idx < 0 || idx >= Array.length a then
          err "index %d out of bounds for %s[%d]" idx name (Array.length a)
        else a.(idx)
  in
  let array_set name idx v =
    match Hashtbl.find_opt genv.arrays name with
    | None -> err "no such array %s" name
    | Some a ->
        if idx < 0 || idx >= Array.length a then
          err "index %d out of bounds for %s[%d]" idx name (Array.length a)
        else a.(idx) <- v
  in
  let rec call fname args =
    match Ir.find_func p fname with
    | None -> err "call to undefined function %s" fname
    | Some f ->
        let regs =
          Array.init (Ir.nvregs f) (fun v ->
              match Ir.vreg_type f v with Ir.Tint -> I 0 | Ir.Tfloat -> F 0.0)
        in
        if List.length args <> List.length f.Ir.params then
          err "arity mismatch calling %s" fname;
        List.iter2 (fun v a -> regs.(v) <- a) f.Ir.params args;
        let value = function
          | Ir.VReg v -> regs.(v)
          | Ir.VInt i -> I i
          | Ir.VFloat f -> F f
        in
        let rec exec_block bid =
          let b = Ir.block f bid in
          List.iter
            (fun instr ->
              tick ();
              match instr with
              | Ir.Bin (op, d, a, c) -> regs.(d) <- eval_binop op (value a) (value c)
              | Ir.Mov (d, a) -> regs.(d) <- value a
              | Ir.I2f (d, a) -> regs.(d) <- F (float_of_int (as_int (value a)))
              | Ir.F2i (d, a) -> regs.(d) <- I (int_of_float (as_float (value a)))
              | Ir.Load (d, g, i) -> regs.(d) <- array_get g (as_int (value i))
              | Ir.Store (g, i, v) -> array_set g (as_int (value i)) (value v)
              | Ir.Load_var (d, g) -> regs.(d) <- !(Hashtbl.find genv.scalars g)
              | Ir.Store_var (g, v) -> Hashtbl.find genv.scalars g := value v
              | Ir.Call (d, name, cargs) -> (
                  let r = call name (List.map value cargs) in
                  match d with
                  | Some d -> regs.(d) <- Option.value r ~default:(I 0)
                  | None -> ())
              | Ir.Print (_, v) ->
                  output := value_to_string (value v) :: !output)
            b.Ir.instrs;
          tick ();
          match b.Ir.term with
          | Ir.Ret None -> None
          | Ir.Ret (Some v) -> Some (value v)
          | Ir.Jmp l -> exec_block l
          | Ir.Br (v, a, c) ->
              if (match value v with I 0 -> false | I _ -> true | F f -> f <> 0.0)
              then exec_block a
              else exec_block c
        in
        exec_block 0
  in
  let ret = call entry args in
  { output = List.rev !output; ret; steps = !steps }
