(** Liveness analysis for the IR: block-level dataflow fixpoint, then
    per-instruction live sets on a linearization of the function.  Also
    derives everything the allocators consume: interference pairs (with
    Chaitin's move refinement), move pairs for coalescing, the set of
    vregs live across calls, loop-depth-weighted spill weights, and live
    intervals over the linear order. *)

module Iset : Set.S with type elt = int

type t = {
  func : Ir.func;
  intervals : (int * int) array;
      (** per vreg, [(first, last)] linear positions, [(-1, -1)] if the
          vreg never occurs *)
  interference : (int * int) list;  (** unordered pairs, [u < v] *)
  moves : (int * int) list;
      (** (dst, src) of reg-to-reg moves whose ends do not interfere *)
  across_call : Iset.t;  (** vregs live through at least one call *)
  weights : float array;
      (** spill weights: Σ over occurrences of 10^depth *)
  max_pressure : int;
}

val analyze : Ir.func -> t

val interferes : t -> int -> int -> bool
(** Set-membership test over [interference]. *)
