(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string
      (** int float void if else while for return print break continue *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

type t = { tok : token; line : int }

val tokenize : string -> t list
(** @raise Invalid_argument with a line-numbered message on lexical
    errors. *)

val token_to_string : token -> string
