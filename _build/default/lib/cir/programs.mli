(** The 24 MiniC benchmark programs standing in for the paper's
    llvm-test-suite C programs (§V-C).  Names and workloads mirror the
    Stanford benchmark family (Bubblesort, IntMM, Oscar, Queens, Towers,
    …) plus classic kernels; each prints deterministic checksums so the
    allocator end-to-end tests can compare outputs exactly. *)

val all : (string * string) list
(** [(name, MiniC source)] — exactly 24 entries. *)

val find : string -> string
(** @raise Not_found on unknown names. *)

val names : string list
