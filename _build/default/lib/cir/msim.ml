open Mach

type outcome = {
  output : string list;
  ret : Interp.value option;
  cycles : int;
  steps : int;
}

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt
let garbage = Interp.I 999999937

type genv = {
  arrays : (string, Interp.value array) Hashtbl.t;
  scalars : (string, Interp.value ref) Hashtbl.t;
}

let make_genv (p : mprogram) =
  let g = { arrays = Hashtbl.create 8; scalars = Hashtbl.create 8 } in
  List.iter
    (fun (name, glob) ->
      match glob with
      | Ir.Array (Ir.Tint, n) ->
          Hashtbl.replace g.arrays name (Array.make n (Interp.I 0))
      | Ir.Array (Ir.Tfloat, n) ->
          Hashtbl.replace g.arrays name (Array.make n (Interp.F 0.0))
      | Ir.Scalar Ir.Tint -> Hashtbl.replace g.scalars name (ref (Interp.I 0))
      | Ir.Scalar Ir.Tfloat ->
          Hashtbl.replace g.scalars name (ref (Interp.F 0.0)))
    p.globals;
  g

let as_int = function Interp.I i -> i | Interp.F _ -> err "expected int"
let as_float = function Interp.F f -> f | Interp.I _ -> err "expected float"

let eval_binop op a b =
  let bi f = Interp.I (f (as_int a) (as_int b)) in
  let bf f = Interp.F (f (as_float a) (as_float b)) in
  let ci f = Interp.I (if f (as_int a) (as_int b) then 1 else 0) in
  let cf f = Interp.I (if f (as_float a) (as_float b) then 1 else 0) in
  match op with
  | Ir.Add -> bi ( + )
  | Ir.Sub -> bi ( - )
  | Ir.Mul -> bi ( * )
  | Ir.Div -> if as_int b = 0 then err "division by zero" else bi ( / )
  | Ir.Mod -> if as_int b = 0 then err "modulo by zero" else bi (mod)
  | Ir.Lt -> ci ( < )
  | Ir.Le -> ci ( <= )
  | Ir.Gt -> ci ( > )
  | Ir.Ge -> ci ( >= )
  | Ir.Eq -> ci ( = )
  | Ir.Ne -> ci ( <> )
  | Ir.Fadd -> bf ( +. )
  | Ir.Fsub -> bf ( -. )
  | Ir.Fmul -> bf ( *. )
  | Ir.Fdiv -> bf ( /. )
  | Ir.Flt -> cf ( < )
  | Ir.Fle -> cf ( <= )
  | Ir.Fgt -> cf ( > )
  | Ir.Fge -> cf ( >= )
  | Ir.Feq -> cf ( = )
  | Ir.Fne -> cf ( <> )

let run ?(fuel = 200_000_000) ?(entry = "main") ?(args = []) (p : mprogram) =
  let genv = make_genv p in
  let regs = Array.make Target.total_regs garbage in
  let output = ref [] in
  let cycles = ref 0 in
  let steps = ref 0 in
  let charge c =
    cycles := !cycles + c;
    incr steps;
    if !steps > fuel then err "out of fuel"
  in
  let array_get name idx =
    match Hashtbl.find_opt genv.arrays name with
    | None -> err "no such array %s" name
    | Some a ->
        if idx < 0 || idx >= Array.length a then
          err "index %d out of bounds for %s" idx name
        else a.(idx)
  in
  let array_set name idx v =
    match Hashtbl.find_opt genv.arrays name with
    | None -> err "no such array %s" name
    | Some a ->
        if idx < 0 || idx >= Array.length a then
          err "index %d out of bounds for %s" idx name
        else a.(idx) <- v
  in
  let rec call fname (argv : Interp.value list) : Interp.value option =
    match find_func p fname with
    | None -> err "call to undefined function %s" fname
    | Some f ->
        if List.length argv <> List.length f.params_loc then
          err "arity mismatch calling %s" fname;
        let slots = Array.make (max 1 f.nslots) garbage in
        (* deliver incoming arguments *)
        List.iter2
          (fun loc v ->
            match loc with
            | PReg r -> regs.(r) <- v
            | PSlot s -> slots.(s) <- v)
          f.params_loc argv;
        let mval = function
          | MReg r -> regs.(r)
          | MInt i -> Interp.I i
          | MFloat x -> Interp.F x
          | MSlot s -> slots.(s)
        in
        let rec exec bid =
          let b = f.blocks.(bid) in
          List.iter
            (fun instr ->
              match instr with
              | MBin (op, d, a, c) ->
                  charge (Target.cycles_of_binop op);
                  regs.(d) <- eval_binop op (mval a) (mval c)
              | MMov (d, a) ->
                  charge Target.cycles_alu;
                  regs.(d) <- mval a
              | MI2f (d, a) ->
                  charge Target.cycles_alu;
                  regs.(d) <- Interp.F (float_of_int (as_int (mval a)))
              | MF2i (d, a) ->
                  charge Target.cycles_alu;
                  regs.(d) <- Interp.I (int_of_float (as_float (mval a)))
              | MLoad (d, g, i) ->
                  charge Target.cycles_mem;
                  regs.(d) <- array_get g (as_int (mval i))
              | MStore (g, i, v) ->
                  charge Target.cycles_mem;
                  array_set g (as_int (mval i)) (mval v)
              | MLoad_var (d, g) ->
                  charge Target.cycles_mem;
                  regs.(d) <- !(Hashtbl.find genv.scalars g)
              | MStore_var (g, v) ->
                  charge Target.cycles_mem;
                  Hashtbl.find genv.scalars g := mval v
              | MSpill_load (r, s) ->
                  charge Target.cycles_mem;
                  regs.(r) <- slots.(s)
              | MSpill_store (r, s) ->
                  charge Target.cycles_mem;
                  slots.(s) <- regs.(r)
              | MPrint (_, v) ->
                  charge Target.cycles_alu;
                  output := Interp.value_to_string (mval v) :: !output
              | MCall (dst, name, margs) ->
                  let callee =
                    match find_func p name with
                    | Some c -> c
                    | None -> err "call to undefined function %s" name
                  in
                  charge
                    (Target.cycles_call
                    + List.length callee.callee_saved_used
                      * Target.cycles_save_restore);
                  (* slot-addressed arguments pay memory cost *)
                  List.iter
                    (function
                      | MSlot _ -> charge Target.cycles_mem | _ -> ())
                    margs;
                  let argv = List.map mval margs in
                  let saved =
                    List.map (fun r -> (r, regs.(r))) Target.callee_saved
                  in
                  let r = call name argv in
                  List.iter (fun (i, v) -> regs.(i) <- v) saved;
                  (* adversarial clobber of caller-saved + scratch *)
                  List.iter (fun i -> regs.(i) <- garbage) Target.caller_saved;
                  regs.(Target.scratch0) <- garbage;
                  regs.(Target.scratch1) <- garbage;
                  (match dst with
                  | Some d -> (
                      charge Target.cycles_alu;
                      match r with
                      | Some v -> regs.(d) <- v
                      | None -> regs.(d) <- garbage)
                  | None -> ()))
            b.instrs;
          match b.term with
          | MRet None ->
              charge Target.cycles_branch;
              None
          | MRet (Some v) ->
              charge Target.cycles_branch;
              Some (mval v)
          | MJmp l ->
              charge Target.cycles_branch;
              exec l
          | MBr (v, a, c) ->
              charge Target.cycles_branch;
              if
                (match mval v with
                | Interp.I 0 -> false
                | Interp.I _ -> true
                | Interp.F f -> f <> 0.0)
              then exec a
              else exec c
        in
        exec 0
  in
  let ret = call entry args in
  { output = List.rev !output; ret; cycles = !cycles; steps = !steps }
