lib/cir/liveness.ml: Array Int Ir List Set
