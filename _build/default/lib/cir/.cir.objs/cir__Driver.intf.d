lib/cir/driver.mli: Interp Ir Liveness Mcts Msim Nn Pbqp Regalloc
