lib/cir/mach.ml: Array Format Ir List
