lib/cir/regalloc.mli: Ir Liveness
