lib/cir/interp.mli: Ir
