lib/cir/ir.ml: Array Format List Option Printf
