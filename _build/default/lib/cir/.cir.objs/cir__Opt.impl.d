lib/cir/opt.ml: Array Hashtbl Ir List
