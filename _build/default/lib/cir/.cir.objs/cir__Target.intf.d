lib/cir/target.mli: Ir
