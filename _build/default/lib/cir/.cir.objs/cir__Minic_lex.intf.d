lib/cir/minic_lex.mli:
