lib/cir/msim.ml: Array Hashtbl Interp Ir List Mach Printf Target
