lib/cir/driver.ml: Alloc_pbqp Interp Ir List Liveness Mcts Msim Nn Pbqp Printf Regalloc Rewrite
