lib/cir/alloc_pbqp.mli: Hashtbl Ir Liveness Mcts Nn Pbqp Regalloc
