lib/cir/rewrite.mli: Ir Mach Regalloc
