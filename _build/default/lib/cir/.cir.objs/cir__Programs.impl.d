lib/cir/programs.ml: List
