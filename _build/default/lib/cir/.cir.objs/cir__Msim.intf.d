lib/cir/msim.mli: Interp Mach
