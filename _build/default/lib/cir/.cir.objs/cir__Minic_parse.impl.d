lib/cir/minic_parse.ml: List Minic_ast Minic_lex Printf
