lib/cir/fuzzgen.ml: Buffer List Printf Random String
