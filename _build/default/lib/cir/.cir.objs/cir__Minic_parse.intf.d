lib/cir/minic_parse.mli: Minic_ast
