lib/cir/programs.mli:
