lib/cir/rewrite.ml: Array Ir List Mach Regalloc Target
