lib/cir/opt.mli: Ir
