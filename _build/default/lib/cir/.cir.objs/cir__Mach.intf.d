lib/cir/mach.mli: Format Ir
