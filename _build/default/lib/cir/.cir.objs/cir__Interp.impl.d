lib/cir/interp.ml: Array Hashtbl Ir List Option Printf
