lib/cir/target.ml: Ir
