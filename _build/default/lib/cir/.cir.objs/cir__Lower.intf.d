lib/cir/lower.mli: Ir Minic_ast
