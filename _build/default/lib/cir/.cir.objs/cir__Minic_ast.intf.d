lib/cir/minic_ast.mli:
