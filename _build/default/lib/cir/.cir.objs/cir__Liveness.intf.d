lib/cir/liveness.mli: Ir Set
