lib/cir/minic_ast.ml:
