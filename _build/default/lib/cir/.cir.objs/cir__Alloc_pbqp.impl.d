lib/cir/alloc_pbqp.ml: Array Core Cost Float Fun Graph Hashtbl Ir List Liveness Mat Mcts Pbqp Regalloc Solution Solvers Target Vec
