lib/cir/ir.mli: Format
