lib/cir/lower.ml: Array Hashtbl Ir List Minic_ast Minic_parse Option Printf
