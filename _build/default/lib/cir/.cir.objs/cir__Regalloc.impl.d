lib/cir/regalloc.ml: Array Fun Int Ir List Liveness Printf Target
