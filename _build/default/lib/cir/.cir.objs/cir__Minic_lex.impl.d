lib/cir/minic_lex.ml: List Printf String
