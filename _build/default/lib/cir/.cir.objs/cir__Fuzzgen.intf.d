lib/cir/fuzzgen.mli: Random
