(** Abstract syntax of MiniC, the C-subset source language of the
    compiler substrate (see DESIGN.md: it stands in for the C programs of
    llvm-test-suite).

    Features: [int] and [float] scalars, global one-dimensional arrays,
    functions with parameters and recursion, [if]/[while]/[for], the
    usual arithmetic/comparison/logical operators, and [print]. *)

type typ = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr

type unop = Neg | LNot

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** [a[e]] — global arrays only *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Cast of typ * expr

type stmt =
  | Decl of typ * string * expr option
  | Assign of string * expr
  | Store of string * expr * expr  (** [a[e1] = e2] *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
  | Expr_stmt of expr
  | Print of expr
  | Block of block

and block = stmt list

type func = {
  name : string;
  params : (typ * string) list;
  ret : typ option;
  body : block;
}

type global = Garray of typ * string * int | Gvar of typ * string * expr option

type program = { globals : global list; funcs : func list }

val binop_to_string : binop -> string
val typ_to_string : typ -> string
