(** IR optimization passes.

    The paper compiles its C programs with [clang -O3]; this module is the
    corresponding cleanup for our pipeline, run before register
    allocation.  Three classic passes, iterated to a fixpoint:

    - {b constant folding}: binary operations, casts and copies of
      literals are evaluated at compile time (with C semantics; folding
      is skipped when it would trap, e.g. division by a zero literal);
    - {b copy propagation}: within a block, uses of a vreg defined by
      [mov d, s] read [s] directly while the copy is transparent;
    - {b dead code elimination}: instructions without side effects whose
      results are never used are dropped.

    All passes preserve the observable semantics (the differential fuzz
    tests in the suite check interpreter outputs before vs after). *)

val constant_fold : Ir.func -> bool
(** Returns whether anything changed.  Mutates the function in place. *)

val copy_propagate : Ir.func -> bool

val dead_code : Ir.func -> bool

val run_func : Ir.func -> unit
(** Iterate all passes to a fixpoint (bounded). *)

val run : Ir.program -> Ir.program
(** Optimize every function; returns the same (mutated) program. *)
