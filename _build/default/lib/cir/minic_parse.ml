open Minic_ast
open Minic_lex

type state = { mutable toks : Minic_lex.t list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let fail st msg =
  invalid_arg
    (Printf.sprintf "MiniC parser: line %d: %s (at %S)" (peek st).line msg
       (token_to_string (peek st).tok))

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat_punct st p =
  match (peek st).tok with
  | PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let ident st =
  match (peek st).tok with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let is_punct st p = match (peek st).tok with PUNCT q -> q = p | _ -> false
let is_kw st k = match (peek st).tok with KW q -> q = k | _ -> false

let typ_of_kw st =
  match (peek st).tok with
  | KW "int" ->
      advance st;
      Tint
  | KW "float" ->
      advance st;
      Tfloat
  | _ -> fail st "expected a type"

(* --- expressions: precedence climbing --- *)

let binop_of_punct = function
  | "+" -> Some Add | "-" -> Some Sub | "*" -> Some Mul | "/" -> Some Div
  | "%" -> Some Mod | "<" -> Some Lt | "<=" -> Some Le | ">" -> Some Gt
  | ">=" -> Some Ge | "==" -> Some Eq | "!=" -> Some Ne | "&&" -> Some LAnd
  | "||" -> Some LOr | _ -> None

let precedence = function
  | LOr -> 1
  | LAnd -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | PUNCT p -> (
        match binop_of_punct p with
        | Some op when precedence op >= min_prec ->
            advance st;
            let rhs = parse_binary st (precedence op + 1) in
            lhs := Binop (op, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match (peek st).tok with
  | PUNCT "-" ->
      advance st;
      Unop (Neg, parse_unary st)
  | PUNCT "!" ->
      advance st;
      Unop (LNot, parse_unary st)
  | PUNCT "(" when is_cast st -> (
      advance st;
      let t = typ_of_kw st in
      eat_punct st ")";
      Cast (t, parse_unary st))
  | _ -> parse_postfix st

and is_cast st =
  (* '(' followed by a type keyword then ')' *)
  match st.toks with
  | { tok = PUNCT "("; _ } :: { tok = KW ("int" | "float"); _ }
    :: { tok = PUNCT ")"; _ } :: _ ->
      true
  | _ -> false

and parse_postfix st =
  match (peek st).tok with
  | INT_LIT i ->
      advance st;
      Int_lit i
  | FLOAT_LIT f ->
      advance st;
      Float_lit f
  | PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ")";
      e
  | IDENT name -> (
      advance st;
      if is_punct st "(" then begin
        advance st;
        let args = ref [] in
        if not (is_punct st ")") then begin
          args := [ parse_expr st ];
          while is_punct st "," do
            advance st;
            args := parse_expr st :: !args
          done
        end;
        eat_punct st ")";
        Call (name, List.rev !args)
      end
      else if is_punct st "[" then begin
        advance st;
        let e = parse_expr st in
        eat_punct st "]";
        Index (name, e)
      end
      else Var name)
  | _ -> fail st "expected an expression"

(* --- statements --- *)

let rec parse_block st =
  eat_punct st "{";
  let stmts = ref [] in
  while not (is_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  eat_punct st "}";
  List.rev !stmts

and parse_simple_stmt st =
  (* a statement without its trailing ';' — used by for-headers *)
  match (peek st).tok with
  | KW ("int" | "float") ->
      let t = typ_of_kw st in
      let name = ident st in
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      Decl (t, name, init)
  | IDENT name -> (
      match st.toks with
      | _ :: { tok = PUNCT "="; _ } :: _ ->
          advance st;
          advance st;
          Assign (name, parse_expr st)
      | _ :: { tok = PUNCT "["; _ } :: _ -> (
          advance st;
          advance st;
          let idx = parse_expr st in
          eat_punct st "]";
          if is_punct st "=" then begin
            advance st;
            Store (name, idx, parse_expr st)
          end
          else fail st "expected '=' after array index")
      | _ -> Expr_stmt (parse_expr st))
  | _ -> Expr_stmt (parse_expr st)

and parse_stmt st =
  match (peek st).tok with
  | PUNCT "{" -> Block (parse_block st)
  | KW "if" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      let then_ = parse_stmt_as_block st in
      let else_ =
        if is_kw st "else" then begin
          advance st;
          Some (parse_stmt_as_block st)
        end
        else None
      in
      If (cond, then_, else_)
  | KW "while" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      While (cond, parse_stmt_as_block st)
  | KW "for" ->
      advance st;
      eat_punct st "(";
      let init =
        if is_punct st ";" then None else Some (parse_simple_stmt st)
      in
      eat_punct st ";";
      let cond = if is_punct st ";" then None else Some (parse_expr st) in
      eat_punct st ";";
      let step =
        if is_punct st ")" then None else Some (parse_simple_stmt st)
      in
      eat_punct st ")";
      For (init, cond, step, parse_stmt_as_block st)
  | KW "return" ->
      advance st;
      let e = if is_punct st ";" then None else Some (parse_expr st) in
      eat_punct st ";";
      Return e
  | KW "break" ->
      advance st;
      eat_punct st ";";
      Break
  | KW "continue" ->
      advance st;
      eat_punct st ";";
      Continue
  | KW "print" ->
      advance st;
      eat_punct st "(";
      let e = parse_expr st in
      eat_punct st ")";
      eat_punct st ";";
      Print e
  | _ ->
      let s = parse_simple_stmt st in
      eat_punct st ";";
      s

and parse_stmt_as_block st =
  if is_punct st "{" then parse_block st else [ parse_stmt st ]

(* --- top level --- *)

let parse_params st =
  eat_punct st "(";
  let params = ref [] in
  if not (is_punct st ")") then begin
    let one () =
      let t = typ_of_kw st in
      let name = ident st in
      (t, name)
    in
    params := [ one () ];
    while is_punct st "," do
      advance st;
      params := one () :: !params
    done
  end;
  eat_punct st ")";
  List.rev !params

let parse src =
  let st = { toks = tokenize src } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match (peek st).tok with
    | EOF -> ()
    | KW "void" ->
        advance st;
        let name = ident st in
        let params = parse_params st in
        let body = parse_block st in
        funcs := { name; params; ret = None; body } :: !funcs;
        loop ()
    | KW ("int" | "float") -> (
        let t = typ_of_kw st in
        let name = ident st in
        match (peek st).tok with
        | PUNCT "(" ->
            let params = parse_params st in
            let body = parse_block st in
            funcs := { name; params; ret = Some t; body } :: !funcs;
            loop ()
        | PUNCT "[" ->
            advance st;
            let size =
              match (peek st).tok with
              | INT_LIT i when i > 0 ->
                  advance st;
                  i
              | _ -> fail st "expected positive array size"
            in
            eat_punct st "]";
            eat_punct st ";";
            globals := Garray (t, name, size) :: !globals;
            loop ()
        | _ ->
            let init =
              if is_punct st "=" then begin
                advance st;
                Some (parse_expr st)
              end
              else None
            in
            eat_punct st ";";
            globals := Gvar (t, name, init) :: !globals;
            loop ())
    | _ -> fail st "expected a global or function declaration"
  in
  loop ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
