open Mach

let rewrite_func (f : Ir.func) (alloc : Regalloc.allocation) : Mach.mfunc =
  (* slot assignment for spilled vregs *)
  let nv = Ir.nvregs f in
  let slot = Array.make nv (-1) in
  let nslots = ref 0 in
  for v = 0 to nv - 1 do
    if alloc.(v) = Regalloc.Spill then begin
      slot.(v) <- !nslots;
      incr nslots
    end
  done;
  let loc v =
    match alloc.(v) with
    | Regalloc.Reg r -> `Reg r
    | Regalloc.Spill -> `Slot slot.(v)
  in
  (* Rewrite one instruction into a list of machine instructions.
     [scratch_idx] cycles S0/S1 for spilled operands. *)
  let rewrite_instr instr =
    let pre = ref [] in
    let scratch = ref Target.scratch0 in
    let next_scratch () =
      let s = !scratch in
      scratch := Target.scratch1;
      s
    in
    let operand (v : Ir.value) =
      match v with
      | Ir.VInt i -> MInt i
      | Ir.VFloat x -> MFloat x
      | Ir.VReg r -> (
          match loc r with
          | `Reg p -> MReg p
          | `Slot s ->
              let sc = next_scratch () in
              pre := MSpill_load (sc, s) :: !pre;
              MReg sc)
    in
    (* call arguments address slots directly *)
    let call_operand (v : Ir.value) =
      match v with
      | Ir.VInt i -> MInt i
      | Ir.VFloat x -> MFloat x
      | Ir.VReg r -> (
          match loc r with `Reg p -> MReg p | `Slot s -> MSlot s)
    in
    let def d k =
      match loc d with
      | `Reg p -> [ k p ]
      | `Slot s -> [ k Target.scratch0; MSpill_store (Target.scratch0, s) ]
    in
    let core =
      match instr with
      | Ir.Bin (op, d, a, b) ->
          let ma = operand a in
          let mb = operand b in
          def d (fun p -> MBin (op, p, ma, mb))
      | Ir.Mov (d, a) ->
          let ma = operand a in
          def d (fun p -> MMov (p, ma))
      | Ir.I2f (d, a) ->
          let ma = operand a in
          def d (fun p -> MI2f (p, ma))
      | Ir.F2i (d, a) ->
          let ma = operand a in
          def d (fun p -> MF2i (p, ma))
      | Ir.Load (d, g, i) ->
          let mi = operand i in
          def d (fun p -> MLoad (p, g, mi))
      | Ir.Store (g, i, v) ->
          let mi = operand i in
          let mv = operand v in
          [ MStore (g, mi, mv) ]
      | Ir.Load_var (d, g) -> def d (fun p -> MLoad_var (p, g))
      | Ir.Store_var (g, v) ->
          let mv = operand v in
          [ MStore_var (g, mv) ]
      | Ir.Call (d, name, args) -> (
          let margs = List.map call_operand args in
          match d with
          | None -> [ MCall (None, name, margs) ]
          | Some d -> def d (fun p -> MCall (Some p, name, margs)))
      | Ir.Print (t, v) ->
          let mv = operand v in
          [ MPrint (t, mv) ]
    in
    List.rev !pre @ core
  in
  let rewrite_term (t : Ir.terminator) =
    match t with
    | Ir.Ret None -> ([], MRet None)
    | Ir.Ret (Some v) -> (
        match v with
        | Ir.VInt i -> ([], MRet (Some (MInt i)))
        | Ir.VFloat x -> ([], MRet (Some (MFloat x)))
        | Ir.VReg r -> (
            match loc r with
            | `Reg p -> ([], MRet (Some (MReg p)))
            | `Slot s ->
                ( [ MSpill_load (Target.scratch0, s) ],
                  MRet (Some (MReg Target.scratch0)) )))
    | Ir.Jmp l -> ([], MJmp l)
    | Ir.Br (v, a, b) -> (
        match v with
        | Ir.VInt i -> ([], MBr (MInt i, a, b))
        | Ir.VFloat x -> ([], MBr (MFloat x, a, b))
        | Ir.VReg r -> (
            match loc r with
            | `Reg p -> ([], MBr (MReg p, a, b))
            | `Slot s ->
                ( [ MSpill_load (Target.scratch0, s) ],
                  MBr (MReg Target.scratch0, a, b) )))
  in
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        let instrs = List.concat_map rewrite_instr b.Ir.instrs in
        let pre_term, term = rewrite_term b.Ir.term in
        { id = b.Ir.id; instrs = instrs @ pre_term; term })
      f.Ir.blocks
  in
  {
    name = f.Ir.name;
    params_loc =
      List.map
        (fun v ->
          match alloc.(v) with
          | Regalloc.Reg r -> Mach.PReg r
          | Regalloc.Spill -> Mach.PSlot slot.(v))
        f.Ir.params;
    nslots = !nslots;
    blocks;
    callee_saved_used = Regalloc.used_callee_saved alloc;
  }

let rewrite (p : Ir.program) alloc_of =
  {
    Mach.globals = p.Ir.globals;
    funcs = List.map (fun f -> rewrite_func f (alloc_of f.Ir.name)) p.Ir.funcs;
  }
