type vreg = int
type typ = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Feq | Fne

type value = VReg of vreg | VInt of int | VFloat of float

type instr =
  | Bin of binop * vreg * value * value
  | Mov of vreg * value
  | I2f of vreg * value
  | F2i of vreg * value
  | Load of vreg * string * value
  | Store of string * value * value
  | Load_var of vreg * string
  | Store_var of string * value
  | Call of vreg option * string * value list
  | Print of typ * value

type terminator = Ret of value option | Jmp of int | Br of value * int * int

type block = {
  id : int;
  mutable instrs : instr list;
  mutable term : terminator;
  depth : int;
}

type func = {
  name : string;
  params : vreg list;
  ret : typ option;
  mutable blocks : block array;
  mutable vreg_types : typ array;
}

type global = Array of typ * int | Scalar of typ
type program = { globals : (string * global) list; funcs : func list }

let nvregs f = Array.length f.vreg_types
let vreg_type f v = f.vreg_types.(v)
let block f i = f.blocks.(i)

let defs = function
  | Bin (_, d, _, _) | Mov (d, _) | I2f (d, _) | F2i (d, _)
  | Load (d, _, _) | Load_var (d, _) ->
      [ d ]
  | Call (Some d, _, _) -> [ d ]
  | Call (None, _, _) | Store _ | Store_var _ | Print _ -> []

let vregs_of_values vals =
  List.filter_map (function VReg v -> Some v | _ -> None) vals

let uses_instr = function
  | Bin (_, _, a, b) -> vregs_of_values [ a; b ]
  | Mov (_, a) | I2f (_, a) | F2i (_, a) -> vregs_of_values [ a ]
  | Load (_, _, idx) -> vregs_of_values [ idx ]
  | Store (_, idx, v) -> vregs_of_values [ idx; v ]
  | Load_var _ -> []
  | Store_var (_, v) -> vregs_of_values [ v ]
  | Call (_, _, args) -> vregs_of_values args
  | Print (_, v) -> vregs_of_values [ v ]

let uses_term = function
  | Ret (Some v) -> vregs_of_values [ v ]
  | Ret None -> []
  | Jmp _ -> []
  | Br (v, _, _) -> vregs_of_values [ v ]

let successors = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Br (_, a, b) -> if a = b then [ a ] else [ a; b ]

let is_float_op = function
  | Fadd | Fsub | Fmul | Fdiv | Flt | Fle | Fgt | Fge | Feq | Fne -> true
  | _ -> false

let find_func p name = List.find_opt (fun f -> f.name = name) p.funcs

let map_value f = function VReg v -> VReg (f v) | x -> x

let map_instr_vregs f = function
  | Bin (op, d, a, b) -> Bin (op, f d, map_value f a, map_value f b)
  | Mov (d, a) -> Mov (f d, map_value f a)
  | I2f (d, a) -> I2f (f d, map_value f a)
  | F2i (d, a) -> F2i (f d, map_value f a)
  | Load (d, g, i) -> Load (f d, g, map_value f i)
  | Store (g, i, v) -> Store (g, map_value f i, map_value f v)
  | Load_var (d, g) -> Load_var (f d, g)
  | Store_var (g, v) -> Store_var (g, map_value f v)
  | Call (d, name, args) ->
      Call (Option.map f d, name, List.map (map_value f) args)
  | Print (t, v) -> Print (t, map_value f v)

(* --- printing --- *)

let binop_str = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt" | Fge -> "fge" | Feq -> "feq"
  | Fne -> "fne"

let pp_value ppf = function
  | VReg v -> Format.fprintf ppf "%%%d" v
  | VInt i -> Format.fprintf ppf "%d" i
  | VFloat f -> Format.fprintf ppf "%g" f

let pp_instr ppf = function
  | Bin (op, d, a, b) ->
      Format.fprintf ppf "%%%d = %s %a, %a" d (binop_str op) pp_value a
        pp_value b
  | Mov (d, a) -> Format.fprintf ppf "%%%d = %a" d pp_value a
  | I2f (d, a) -> Format.fprintf ppf "%%%d = i2f %a" d pp_value a
  | F2i (d, a) -> Format.fprintf ppf "%%%d = f2i %a" d pp_value a
  | Load (d, g, i) -> Format.fprintf ppf "%%%d = %s[%a]" d g pp_value i
  | Store (g, i, v) -> Format.fprintf ppf "%s[%a] = %a" g pp_value i pp_value v
  | Load_var (d, g) -> Format.fprintf ppf "%%%d = %s" d g
  | Store_var (g, v) -> Format.fprintf ppf "%s = %a" g pp_value v
  | Call (d, name, args) ->
      (match d with
      | Some d -> Format.fprintf ppf "%%%d = call %s(" d name
      | None -> Format.fprintf ppf "call %s(" name);
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_value ppf args;
      Format.fprintf ppf ")"
  | Print (_, v) -> Format.fprintf ppf "print %a" pp_value v

let pp_term ppf = function
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_value v
  | Jmp l -> Format.fprintf ppf "jmp b%d" l
  | Br (v, a, b) -> Format.fprintf ppf "br %a, b%d, b%d" pp_value v a b

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s(%a):" f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%%%d" v))
    f.params;
  Array.iter
    (fun b ->
      Format.fprintf ppf "@,b%d (depth %d):" b.id b.depth;
      List.iter (fun i -> Format.fprintf ppf "@,  %a" pp_instr i) b.instrs;
      Format.fprintf ppf "@,  %a" pp_term b.term)
    f.blocks;
  Format.fprintf ppf "@]"

let pp_program ppf p =
  List.iter
    (fun (name, g) ->
      match g with
      | Array (t, n) ->
          Format.fprintf ppf "global %s %s[%d]@,"
            (match t with Tint -> "int" | Tfloat -> "float")
            name n
      | Scalar t ->
          Format.fprintf ppf "global %s %s@,"
            (match t with Tint -> "int" | Tfloat -> "float")
            name)
    p.globals;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_func ppf p.funcs

(* --- structural check --- *)

let check p =
  let result = ref (Ok ()) in
  let fail fmt =
    Printf.ksprintf (fun s -> if !result = Ok () then result := Error s) fmt
  in
  List.iter
    (fun f ->
      let n = Array.length f.blocks in
      let nv = nvregs f in
      let check_vreg v = if v < 0 || v >= nv then fail "%s: vreg %%%d out of range" f.name v in
      let check_target l =
        if l < 0 || l >= n then fail "%s: branch target b%d out of range" f.name l
      in
      List.iter check_vreg f.params;
      Array.iteri
        (fun i b ->
          if b.id <> i then fail "%s: block id mismatch at %d" f.name i;
          List.iter
            (fun instr ->
              List.iter check_vreg (defs instr);
              List.iter check_vreg (uses_instr instr);
              match instr with
              | Call (_, name, args) -> (
                  match find_func p name with
                  | None -> fail "%s: call to undefined %s" f.name name
                  | Some callee ->
                      if List.length callee.params <> List.length args then
                        fail "%s: call to %s with wrong arity" f.name name)
              | Load (_, g, _) | Store (g, _, _) -> (
                  match List.assoc_opt g p.globals with
                  | Some (Array _) -> ()
                  | _ -> fail "%s: %s is not a global array" f.name g)
              | Load_var (_, g) | Store_var (g, _) -> (
                  match List.assoc_opt g p.globals with
                  | Some (Scalar _) -> ()
                  | _ -> fail "%s: %s is not a global scalar" f.name g)
              | _ -> ())
            b.instrs;
          List.iter check_vreg (uses_term b.term);
          List.iter check_target (successors b.term))
        f.blocks)
    p.funcs;
  !result
