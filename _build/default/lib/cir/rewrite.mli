(** Spill-code insertion: turn an IR function plus an allocation into VCPU
    machine code.

    Spilled vregs get a stack slot; their reads are preceded by a
    [MSpill_load] into a scratch register (S0 for the first spilled
    operand of an instruction, S1 for the second) and their definitions
    are followed by a [MSpill_store] from S0.  Call arguments may read
    slots directly ([MSlot]), reflecting a push-from-memory addressing
    mode. *)

val rewrite_func : Ir.func -> Regalloc.allocation -> Mach.mfunc

val rewrite :
  Ir.program -> (string -> Regalloc.allocation) -> Mach.mprogram
(** [rewrite p alloc_of] rewrites every function with its allocation. *)
