type loc = Reg of int | Spill
type allocation = loc array

let mod_dsts (f : Ir.func) =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc instr ->
          match instr with
          | Ir.Bin (Ir.Mod, d, _, _) -> Liveness.Iset.add d acc
          | _ -> acc)
        acc b.Ir.instrs)
    Liveness.Iset.empty f.Ir.blocks

let allowed (live : Liveness.t) v =
  let f = live.Liveness.func in
  let base = Target.class_of_type (Ir.vreg_type f v) in
  let base =
    if Liveness.Iset.mem v (mod_dsts f) then
      List.filter (fun r -> List.mem r Target.mod_dst_class) base
    else base
  in
  if Liveness.Iset.mem v live.Liveness.across_call then
    List.filter (fun r -> List.mem r Target.callee_saved) base
  else base

let validate (live : Liveness.t) (alloc : allocation) =
  let result = ref (Ok ()) in
  let fail fmt =
    Printf.ksprintf (fun s -> if !result = Ok () then result := Error s) fmt
  in
  Array.iteri
    (fun v loc ->
      match loc with
      | Spill -> ()
      | Reg r ->
          if not (List.mem r (allowed live v)) then
            fail "%%%d in P%d violates its register constraints" v r)
    alloc;
  List.iter
    (fun (u, v) ->
      match (alloc.(u), alloc.(v)) with
      | Reg a, Reg b when a = b ->
          fail "interfering %%%d and %%%d share P%d" u v a
      | _ -> ())
    live.Liveness.interference;
  !result

let spill_count alloc =
  Array.fold_left (fun acc l -> if l = Spill then acc + 1 else acc) 0 alloc

let used_callee_saved alloc =
  Array.fold_left
    (fun acc l ->
      match l with
      | Reg r when List.mem r Target.callee_saved && not (List.mem r acc) ->
          r :: acc
      | _ -> acc)
    [] alloc
  |> List.sort Int.compare

let fast (f : Ir.func) = Array.make (Ir.nvregs f) Spill

(* vregs that actually occur, sorted by interval start *)
let occurring (live : Liveness.t) =
  let nv = Ir.nvregs live.Liveness.func in
  List.init nv Fun.id
  |> List.filter (fun v -> fst live.Liveness.intervals.(v) >= 0)

let overlap (a1, a2) (b1, b2) = a1 <= b2 && b1 <= a2

let basic (live : Liveness.t) =
  let nv = Ir.nvregs live.Liveness.func in
  let alloc = Array.make nv Spill in
  let ivs = live.Liveness.intervals in
  let order =
    occurring live
    |> List.sort (fun a b -> compare (fst ivs.(a), a) (fst ivs.(b), b))
  in
  (* active: vregs currently holding a register *)
  let active = ref [] in
  List.iter
    (fun v ->
      let start = fst ivs.(v) in
      active := List.filter (fun u -> snd ivs.(u) >= start) !active;
      let candidates = allowed live v in
      let free =
        List.filter
          (fun r ->
            not
              (List.exists
                 (fun u -> alloc.(u) = Reg r && overlap ivs.(u) ivs.(v))
                 !active))
          candidates
      in
      match free with
      | r :: _ ->
          alloc.(v) <- Reg r;
          active := v :: !active
      | [] -> (
          (* spill the furthest-ending active interval holding a register
             this vreg could use, if it ends later than this one *)
          let stealable =
            List.filter
              (fun u ->
                match alloc.(u) with
                | Reg r -> List.mem r candidates
                | Spill -> false)
              !active
          in
          match
            List.sort (fun a b -> compare (snd ivs.(b)) (snd ivs.(a))) stealable
          with
          | u :: _ when snd ivs.(u) > snd ivs.(v) ->
              alloc.(v) <- alloc.(u);
              alloc.(u) <- Spill;
              active := v :: List.filter (fun x -> x <> u) !active
          | _ -> alloc.(v) <- Spill))
    order;
  alloc

let greedy (live : Liveness.t) =
  let nv = Ir.nvregs live.Liveness.func in
  let alloc = Array.make nv Spill in
  let ivs = live.Liveness.intervals in
  let w = live.Liveness.weights in
  (* priority queue by weight, processed greedily with eviction *)
  let queue =
    ref
      (occurring live
      |> List.sort (fun a b -> compare (w.(b), a) (w.(a), b)))
  in
  let assigned = ref [] in
  let conflicts v r =
    List.filter
      (fun u -> alloc.(u) = Reg r && overlap ivs.(u) ivs.(v))
      !assigned
  in
  let rec pump () =
    match !queue with
    | [] -> ()
    | v :: rest ->
        queue := rest;
        let candidates = allowed live v in
        (match
           List.find_opt (fun r -> conflicts v r = []) candidates
         with
        | Some r ->
            alloc.(v) <- Reg r;
            assigned := v :: !assigned
        | None -> (
            (* eviction: find the register whose conflicting intervals are
               cheapest; evict them if strictly cheaper than v *)
            let scored =
              List.map
                (fun r ->
                  let cs = conflicts v r in
                  (List.fold_left (fun acc u -> acc +. w.(u)) 0.0 cs, r, cs))
                candidates
            in
            match List.sort compare scored with
            | (cost, r, cs) :: _ when cost < w.(v) ->
                List.iter
                  (fun u ->
                    alloc.(u) <- Spill;
                    assigned := List.filter (fun x -> x <> u) !assigned;
                    queue := u :: !queue)
                  cs;
                alloc.(v) <- Reg r;
                assigned := v :: !assigned
            | _ -> alloc.(v) <- Spill));
        pump ()
  in
  pump ();
  alloc
