(* Self-play training (the paper's SIV-A loop at laptop scale): train a
   small policy/value network on random PBQP graphs, watch the arena gate,
   then use the result to solve a planted no-spill instance.

   Run: dune exec examples/selfplay_training.exe *)

let () =
  let m = 6 in
  let cfg =
    {
      (Core.Train.default_config ~m) with
      iterations = 6;
      episodes_per_iteration = 10;
      graph =
        { Pbqp.Generate.default with m; p_edge = 0.25; p_inf = 0.35;
          zero_inf = true };
      planted = true;
      n_mean = 16.0;
      n_stddev = 4.0;
      mcts = { Mcts.default_config with k = 16 };
    }
  in
  Printf.printf "training a %d-color network by self-play ...\n%!" m;
  let t0 = Unix.gettimeofday () in
  let net =
    Core.Train.run
      ~on_iteration:(fun p ->
        Printf.printf
          "  iteration %d: loss %.3f, arena wins/ties %d/%d, candidate kept: \
           %b\n%!"
          p.Core.Train.iteration p.mean_loss p.arena_wins p.arena_ties p.kept)
      ~rng:(Random.State.make [| 11 |])
      cfg
  in
  Printf.printf "trained in %.0fs (%d parameters)\n\n"
    (Unix.gettimeofday () -. t0)
    (Nn.Pvnet.param_count net);

  (* solve a fresh hard instance *)
  let g, witness =
    Pbqp.Generate.planted
      ~rng:(Random.State.make [| 99 |])
      {
        Pbqp.Generate.default with
        n = 40;
        m;
        p_edge = 0.25;
        p_inf = 0.45;
        zero_inf = true;
      }
  in
  Printf.printf "planted 0/inf instance: %d vertices, %d edges\n"
    (Pbqp.Graph.n_alive g) (Pbqp.Graph.edge_count g);
  ignore witness;
  match
    Core.Solver.solve_feasible ~net ~mcts:{ Mcts.default_config with k = 25 } g
  with
  | Some sol, stats ->
      Printf.printf
        "solved with %d game-tree nodes and %d backtracks; solution valid: %b\n"
        stats.Core.Solver.nodes stats.backtracks
        (Pbqp.Solution.valid g sol)
  | None, stats ->
      Printf.printf "failed after %d nodes / %d backtracks\n"
        stats.Core.Solver.nodes stats.backtracks
