examples/quickstart.mli:
