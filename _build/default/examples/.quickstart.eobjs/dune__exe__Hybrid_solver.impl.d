examples/hybrid_solver.ml: Core Generate Graph Mcts Nn Pbqp Printf Random Solution Solvers
