examples/quickstart.ml: Core Cost Format Generate Graph Mcts Nn Pbqp Random Solution Solvers
