examples/selfplay_training.mli:
