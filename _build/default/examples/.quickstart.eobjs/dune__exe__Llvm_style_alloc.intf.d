examples/llvm_style_alloc.mli:
