examples/ate_translation.ml: Ate Core List Mcts Nn Pbqp Printf Random Solvers String
