examples/llvm_style_alloc.ml: Cir List Mcts Nn Printf Random String
