examples/ate_translation.mli:
