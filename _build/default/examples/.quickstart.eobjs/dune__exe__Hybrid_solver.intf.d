examples/hybrid_solver.mli:
