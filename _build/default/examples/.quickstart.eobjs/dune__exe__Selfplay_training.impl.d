examples/selfplay_training.ml: Core Mcts Nn Pbqp Printf Random Unix
