(* Quickstart: the paper's Figure 2 worked example, end to end.

   Builds the 3-vertex / 2-color PBQP graph, evaluates the two selections
   discussed in the paper (cost 24 and cost 11), and solves the instance
   with brute force, the Scholz-Eckstein heuristic, and the Deep-RL solver
   (an untrained network is enough here: MCTS enumerates the whole game).

   Run: dune exec examples/quickstart.exe *)

open Pbqp

let () =
  let g = Generate.fig2 () in
  Format.printf "The Figure-2 instance:@.%a@.@." Graph.pp g;

  let show sel =
    let s = Solution.of_array sel in
    Format.printf "selection %a costs %a@." Solution.pp s Cost.pp
      (Solution.cost g s)
  in
  show [| 1; 1; 0 |];
  show [| 0; 0; 0 |];

  (* 1. exact *)
  (match fst (Solvers.Brute.solve g) with
  | Some (s, c) ->
      Format.printf "@.brute force optimum: %a with %a@." Cost.pp c
        Solution.pp s
  | None -> assert false);

  (* 2. the classic heuristic *)
  let s, c, stats = Solvers.Scholz.solve_with_cost g in
  Format.printf "Scholz-Eckstein: %a with %a (reductions r0/r1/r2/rn = %d/%d/%d/%d)@."
    Cost.pp c Solution.pp s stats.Solvers.Scholz.r0 stats.r1 stats.r2 stats.rn;

  (* 3. this paper's solver: MCTS + policy/value network *)
  let net =
    Nn.Pvnet.create ~rng:(Random.State.make [| 1 |]) (Nn.Pvnet.default_config ~m:2)
  in
  (match
     Core.Solver.minimize ~net ~mcts:{ Mcts.default_config with k = 200 } g
   with
  | Some (s, c), stats ->
      Format.printf "Deep-RL (k=200): %a with %a (%d game-tree nodes)@." Cost.pp
        c Solution.pp s stats.Core.Solver.nodes
  | None, _ -> assert false);
  Format.printf "@.All three agree that the optimum is 11.@."
