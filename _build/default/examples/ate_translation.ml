(* ATE translation (the paper's SII-B workflow): take a test-pattern
   program over virtual registers, allocate the 13 irregular physical
   registers of the target ATE with the Deep-RL solver, and emit the
   translated program.

   Run: dune exec examples/ate_translation.exe *)

let machine = Ate.Machine.default

let () =
  (* the synthetic "product-level" program PRO1 *)
  let program = Ate.Progen.pro 1 in
  let info = Ate.Program.analyze_exn program in
  let built = Ate.Pbqp_build.build machine info in
  let n, low = Ate.Pbqp_build.liberty_profile built in
  Printf.printf
    "%s: %d instructions, %d virtual registers\nPBQP graph: %d vertices, %d \
     edges, %.0f%% of vertices with liberty <= 4\n\n"
    program.Ate.Ast.name
    (Ate.Program.instr_count info)
    (Ate.Program.vreg_count info)
    n
    (Pbqp.Graph.edge_count built.Ate.Pbqp_build.graph)
    (100. *. low);

  (* the original Scholz solver fails on such graphs (the paper's
     motivation) *)
  Printf.printf "Scholz-Eckstein finds a valid allocation: %b\n\n"
    (Solvers.Scholz.succeeded built.Ate.Pbqp_build.graph);

  (* a lightly-trained network is enough once backtracking is on *)
  let net =
    Nn.Pvnet.create ~rng:(Random.State.make [| 7 |])
      (Nn.Pvnet.default_config ~m:13)
  in
  let solve g =
    let sol, stats =
      Core.Solver.solve_feasible ~net
        ~mcts:{ Mcts.default_config with k = 25 }
        ~order:Core.Order.Increasing_liberty g
    in
    Printf.printf "Deep-RL search: %d game-tree nodes, %d backtracks\n"
      stats.Core.Solver.nodes stats.backtracks;
    sol
  in
  match Ate.Translate.allocate machine ~solve program with
  | Error e -> Printf.printf "translation failed: %s\n" e
  | Ok translated ->
      let text = Ate.Ast.to_string translated in
      let lines = String.split_on_char '\n' text in
      Printf.printf "\ntranslated program (first 15 lines of %d):\n"
        (List.length lines);
      List.iteri (fun i l -> if i < 15 then print_endline l) lines;
      print_endline "  ..."
