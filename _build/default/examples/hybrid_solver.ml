(* Hybrid solving (an extension beyond the paper): apply the exact
   R0/R1/R2 reductions of Scholz & Eckstein first, run the Deep-RL search
   only on the residual hard core, and reconstruct the periphery exactly.
   Same answers, smaller game trees.

   Run: dune exec examples/hybrid_solver.exe *)

open Pbqp

let () =
  let rng = Random.State.make [| 21 |] in
  (* a sparse-ish instance: plenty of low-degree periphery around a core *)
  let g, _witness =
    Generate.planted ~rng
      {
        Generate.default with
        n = 60;
        m = 6;
        p_edge = 0.08;
        p_inf = 0.45;
        zero_inf = true;
      }
  in
  let residual, reduction = Solvers.Scholz.reduce_exact g in
  Printf.printf
    "instance: %d vertices; exact R0/R1/R2 reductions remove %d, leaving a \
     hard core of %d\n\n"
    (Graph.n_alive g)
    (Solvers.Scholz.reduced_count reduction)
    (Graph.n_alive residual);

  let net =
    Nn.Pvnet.create ~rng:(Random.State.make [| 2 |]) (Nn.Pvnet.default_config ~m:6)
  in
  let run label exact_reduce =
    match
      Core.Solver.solve_feasible ~net ~exact_reduce
        ~mcts:{ Mcts.default_config with k = 25 }
        ~order:Core.Order.Increasing_liberty g
    with
    | Some sol, stats ->
        Printf.printf "%-22s solved (valid: %b), %d game-tree nodes, %d backtracks\n"
          label (Solution.valid g sol) stats.Core.Solver.nodes stats.backtracks
    | None, stats ->
        Printf.printf "%-22s failed after %d nodes\n" label stats.Core.Solver.nodes
  in
  run "plain Deep-RL:" false;
  run "hybrid (reduce first):" true
