(* LLVM-style register allocation (the paper's SV-C setup): compile a C
   program, allocate with each of the allocators, and compare generated
   code quality on the VCPU simulator.

   Run: dune exec examples/llvm_style_alloc.exe *)

let () =
  let name = "Queens" in
  let ir = Cir.Lower.compile (Cir.Programs.find name) in
  Printf.printf "compiling %s: %d functions\n\n" name
    (List.length ir.Cir.Ir.funcs);
  let expected = (Cir.Driver.reference ir).Cir.Interp.output in
  Printf.printf "reference output: %s\n\n" (String.concat " " expected);

  let net =
    Nn.Pvnet.create ~rng:(Random.State.make [| 3 |])
      (Nn.Pvnet.default_config ~m:Cir.Alloc_pbqp.num_colors)
  in
  let kinds =
    [
      Cir.Driver.Fast;
      Cir.Driver.Basic;
      Cir.Driver.Greedy;
      Cir.Driver.Pbqp;
      Cir.Driver.Pbqp_rl (net, { Mcts.default_config with k = 60 });
    ]
  in
  Printf.printf "%-8s %10s %8s %10s %8s\n" "alloc" "cycles" "spills" "speedup"
    "output";
  let fast_cycles = ref 0 in
  List.iter
    (fun kind ->
      let r = Cir.Driver.run kind ir in
      let cycles = r.Cir.Driver.outcome.Cir.Msim.cycles in
      if kind = Cir.Driver.Fast then fast_cycles := cycles;
      Printf.printf "%-8s %10d %8d %9.2fx %8s\n"
        (Cir.Driver.alloc_kind_name kind)
        cycles r.Cir.Driver.spills
        (float_of_int !fast_cycles /. float_of_int cycles)
        (if r.Cir.Driver.outcome.Cir.Msim.output = expected then "ok"
         else "WRONG"))
    kinds
