(** AlphaZero-style Monte Carlo tree search (paper §II-C, Algorithm 1).

    Single-player, maximizing variant: values are always from the one
    player's perspective, so there is no sign alternation.  The tree is
    kept across moves — {!advance} moves the root to a child and reuses
    the subtree (and its Q/N statistics), and moving the root {e back} up
    with {!retreat} is what the paper's backtracking driver relies on.

    The search is generic over the game through a record of functions;
    states must be persistent values. *)

type 'a game = {
  num_actions : int;  (** actions are [0 .. num_actions-1] *)
  is_terminal : 'a -> bool;
      (** complete games {e and} dead ends — any state with no moves *)
  terminal_value : 'a -> float;  (** reward of a terminal state *)
  legal : 'a -> int -> bool;
  apply : 'a -> int -> 'a;
  evaluate : 'a -> float array * float;
      (** DNN roll-out: priors over actions (illegal entries ignored) and
          value estimate [v̂] *)
  batched_evaluate : ('a list -> (float array * float) array) option;
      (** optional batched roll-out: one result per input state, in
          order.  When present, {!run}/{!run_n} gather up to
          [config.batch] leaves per wave (using a visit-count virtual
          loss during selection, reverted on backup) and evaluate them in
          one call — and even [batch = 1] searches route single-leaf
          batches through it.  [None] falls back to mapping
          [evaluate]. *)
}

type config = {
  k : int;  (** simulations per {!run} *)
  c_puct : float;  (** exploration constant of Eq. 2 *)
  epsilon : float;  (** the [ε] under the square root of Eq. 2 *)
  check : bool;
      (** validate the whole game tree after every {!run}/{!run_n} (see
          {!validate}) and raise [Failure] on any violation — a debugging
          aid for new games; costs a full tree walk per search *)
  batch : int;
      (** leaves gathered per virtual-loss wave before one (batched)
          evaluation.  1 (the default) reproduces the scalar Algorithm 1
          search node for node; larger batches trade some search
          sequentiality for evaluation throughput (see DESIGN.md). *)
}

val default_config : config
(** [k = 50; c_puct = 1.5; epsilon = 1e-8; check = false; batch = 1] *)

type 'a t

val create : config -> 'a game -> 'a -> 'a t

val root_state : 'a t -> 'a

val run : 'a t -> unit
(** [config.k] SIMULATE calls on the current root (fewer effective
    expansions if simulations hit terminal states). *)

val add_root_noise :
  rng:Random.State.t -> epsilon:float -> alpha:float -> 'a t -> unit
(** Mix Dirichlet(α) noise into the root's priors:
    [p ← (1−ε)·p + ε·Dir(α)] over the legal actions — AlphaZero's
    self-play exploration device.  Evaluates the root first if the search
    has not yet.  No-op on terminal roots. *)

val run_n : 'a t -> int -> unit
(** Like {!run} with an explicit simulation count (backtracking re-plans
    use this). *)

val policy : 'a t -> float array
(** Eq. 3: visit counts normalized over the root's edges.  If the root has
    no visits yet, a uniform distribution over legal actions. *)

val root_value : 'a t -> float
(** Mean value of the root's visited edges (the DNN estimate before any
    visit). *)

val visit_counts : 'a t -> int array

val root_qs : 'a t -> float array
(** Per-edge mean action values Q at the root (0 for unvisited edges) —
    exposed so equivalence tests can compare search statistics exactly. *)

val advance : 'a t -> int -> unit
(** Make action [a]: the corresponding child becomes the root.  The child
    is created if the search never reached it.
    @raise Invalid_argument on an illegal action or terminal root. *)

val retreat : 'a t -> unit
(** Undo the last {!advance}: the parent becomes the root again, with its
    full subtree intact.  @raise Invalid_argument at the initial root. *)

val depth : 'a t -> int
(** Number of {!advance}s minus {!retreat}s from the initial root. *)

val nodes_created : 'a t -> int
(** Total states materialized in this game tree — the paper's search-space
    metric (Fig. 6). *)

val validate : 'a t -> string list
(** Re-verify every invariant the search maintains by construction, over
    the {e whole} materialized tree (including retreat-able ancestors):
    expanded nodes carry finite non-negative priors with mass on some
    legal action; visit counts are non-negative, unvisited edges carry
    [Q = 0], illegal actions are never visited or expanded; parent links
    are coherent; reachable nodes never exceed {!nodes_created}.  Returns
    {e all} violations, [[]] on a healthy tree.  Run automatically when
    [config.check] is set. *)
