type 'a game = {
  num_actions : int;
  is_terminal : 'a -> bool;
  terminal_value : 'a -> float;
  legal : 'a -> int -> bool;
  apply : 'a -> int -> 'a;
  evaluate : 'a -> float array * float;
  batched_evaluate : ('a list -> (float array * float) array) option;
}

type config = {
  k : int;
  c_puct : float;
  epsilon : float;
  check : bool;
  batch : int;
}

let default_config =
  { k = 50; c_puct = 1.5; epsilon = 1e-8; check = false; batch = 1 }

type 'a node = {
  state : 'a;
  parent : ('a node * int) option;
  mutable expanded : bool;
  mutable priors : float array;  (* valid once expanded *)
  mutable value_est : float;
  edges : 'a edge array;  (* allocated eagerly, children lazily *)
}

and 'a edge = { mutable n : int; mutable q : float; mutable child : 'a node option }

type 'a t = {
  config : config;
  game : 'a game;
  mutable root : 'a node;
  mutable created : int;
}

let fresh_node num_actions ?parent state =
  {
    state;
    parent;
    expanded = false;
    priors = [||];
    value_est = 0.0;
    edges = Array.init num_actions (fun _ -> { n = 0; q = 0.0; child = None });
  }

let make_node t ?parent state =
  t.created <- t.created + 1;
  fresh_node t.game.num_actions ?parent state

let create config game state =
  { config; game; root = fresh_node game.num_actions state; created = 1 }

let root_state t = t.root.state

let ucb t node a =
  let e = node.edges.(a) in
  let total = Array.fold_left (fun acc e -> acc + e.n) 0 node.edges in
  e.q
  +. t.config.c_puct *. node.priors.(a)
     *. sqrt (t.config.epsilon +. float_of_int total)
     /. (1.0 +. float_of_int e.n)

let select_action t node =
  let best = ref (-1) and best_u = ref neg_infinity in
  for a = 0 to t.game.num_actions - 1 do
    if t.game.legal node.state a then begin
      let u = ucb t node a in
      if u > !best_u then begin
        best := a;
        best_u := u
      end
    end
  done;
  !best

let child_of t node a =
  let e = node.edges.(a) in
  match e.child with
  | Some c -> c
  | None ->
      let c = make_node t ~parent:(node, a) (t.game.apply node.state a) in
      e.child <- Some c;
      c

(* Algorithm 1 (SIMULATE): selection by max-UCB, expansion of the first
   undiscovered node, roll-out by the DNN, and back-propagation on the
   recursion unwind. *)
let rec simulate t node =
  if t.game.is_terminal node.state then t.game.terminal_value node.state
  else if not node.expanded then begin
    let priors, v = t.game.evaluate node.state in
    if Array.length priors <> t.game.num_actions then
      invalid_arg "Mcts: evaluate returned wrong prior length";
    node.priors <- priors;
    node.value_est <- v;
    node.expanded <- true;
    v
  end
  else begin
    let a = select_action t node in
    if a < 0 then
      (* No legal action: the game should have flagged this state as
         terminal; treat it as a loss to stay safe. *)
      t.game.terminal_value node.state
    else begin
      let e = node.edges.(a) in
      let child = child_of t node a in
      let v = simulate t child in
      e.q <- ((float_of_int e.n *. e.q) +. v) /. float_of_int (e.n + 1);
      e.n <- e.n + 1;
      v
    end
  end

(* --- Batched SIMULATE (virtual-loss leaf gathering) ------------------- *)

(* A wave descends up to [config.batch] times, parking each unexpanded
   leaf it reaches instead of evaluating it on the spot, then runs one
   [batched_evaluate] call over the distinct parked states and backs all
   paths up.  During a descent every traversed edge's visit count is
   incremented (a visit-count-only virtual loss) so later descents of the
   same wave are steered away from the identical path; backup reverts the
   increment before applying the standard Q/N update, so the statistics
   after a wave carry no trace of it.

   A wave of size 1 is exactly the scalar SIMULATE: UCB at a node reads
   only that node's own edges, and within a single descent the virtual
   increments sit strictly on ancestor edges the selection below never
   consults — so batch = 1 reproduces Algorithm 1 node for node (the
   determinism suite in test_mcts pins this down). *)

let backup path v =
  List.iter
    (fun e ->
      e.n <- e.n - 1;  (* revert the virtual loss *)
      e.q <- ((float_of_int e.n *. e.q) +. v) /. float_of_int (e.n + 1);
      e.n <- e.n + 1)
    path

let rec descend t node path =
  if t.game.is_terminal node.state then
    `Value (t.game.terminal_value node.state, path)
  else if not node.expanded then `Leaf (node, path)
  else
    let a = select_action t node in
    if a < 0 then `Value (t.game.terminal_value node.state, path)
    else begin
      let e = node.edges.(a) in
      let child = child_of t node a in
      e.n <- e.n + 1;  (* virtual loss *)
      descend t child (e :: path)
    end

let evaluate_leaves t leaves =
  match t.game.batched_evaluate with
  | Some f -> f leaves
  | None -> Array.of_list (List.map t.game.evaluate leaves)

let run_wave t wave =
  let pending = ref [] in
  for _ = 1 to wave do
    match descend t t.root [] with
    | `Value (v, path) -> backup path v
    | `Leaf (node, path) -> pending := (node, path) :: !pending
  done;
  match List.rev !pending with
  | [] -> ()
  | pend ->
      (* evaluate each distinct leaf once; duplicated paths share it *)
      let uniq =
        List.rev
          (List.fold_left
             (fun acc (node, _) ->
               if List.exists (fun n -> n == node) acc then acc
               else node :: acc)
             [] pend)
      in
      let results = evaluate_leaves t (List.map (fun n -> n.state) uniq) in
      if Array.length results <> List.length uniq then
        invalid_arg "Mcts: batched_evaluate returned wrong result count";
      List.iteri
        (fun i node ->
          let priors, v = results.(i) in
          if Array.length priors <> t.game.num_actions then
            invalid_arg "Mcts: evaluate returned wrong prior length";
          node.priors <- priors;
          node.value_est <- v;
          node.expanded <- true)
        uniq;
      List.iter (fun (node, path) -> backup path node.value_est) pend

let run_n t n =
  if t.config.batch <= 1 && Option.is_none t.game.batched_evaluate then
    for _ = 1 to n do
      ignore (simulate t t.root)
    done
  else begin
    let wave = max 1 t.config.batch in
    let remaining = ref n in
    while !remaining > 0 do
      let w = min wave !remaining in
      run_wave t w;
      remaining := !remaining - w
    done
  end

(* Marsaglia-Tsang gamma sampling (shape < 1 handled by boosting). *)
let rec gamma_sample rng shape =
  if shape < 1.0 then
    let u = Float.max 1e-12 (Random.State.float rng 1.0) in
    gamma_sample rng (shape +. 1.0) *. (u ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x =
        (* Box-Muller normal *)
        let u1 = Float.max 1e-12 (Random.State.float rng 1.0) in
        let u2 = Random.State.float rng 1.0 in
        sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
      in
      let v = (1.0 +. (c *. x)) ** 3.0 in
      if v <= 0.0 then draw ()
      else
        let u = Float.max 1e-12 (Random.State.float rng 1.0) in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
        else draw ()
    in
    draw ()
  end

let add_root_noise ~rng ~epsilon ~alpha t =
  if not (t.game.is_terminal t.root.state) then begin
    if not t.root.expanded then ignore (simulate t t.root);
    let legal =
      Array.init t.game.num_actions (fun a -> t.game.legal t.root.state a)
    in
    let draws =
      Array.map (fun l -> if l then gamma_sample rng alpha else 0.0) legal
    in
    let total = Array.fold_left ( +. ) 0.0 draws in
    if total > 0.0 then
      t.root.priors <-
        Array.mapi
          (fun a p ->
            if legal.(a) then
              ((1.0 -. epsilon) *. p) +. (epsilon *. draws.(a) /. total)
            else p)
          t.root.priors
  end

(* Tree validity: every invariant the search maintains by construction,
   re-verified over the whole materialized tree.  Returns all violations
   (not just the first) as human-readable strings. *)
let validate t =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* walk up to the initial root so retreat-able ancestors are covered *)
  let rec top n = match n.parent with Some (p, _) -> top p | None -> n in
  let reachable = ref 0 in
  let rec walk path node =
    incr reachable;
    let terminal = t.game.is_terminal node.state in
    if Array.length node.edges <> t.game.num_actions then
      bad "%s: %d edges for %d actions" path (Array.length node.edges)
        t.game.num_actions;
    if node.expanded then begin
      if Array.length node.priors <> t.game.num_actions then
        bad "%s: priors length %d, expected %d" path
          (Array.length node.priors) t.game.num_actions
      else begin
        let legal_mass = ref 0.0 in
        Array.iteri
          (fun a p ->
            if Float.is_nan p || p = infinity || p < 0.0 then
              bad "%s: prior[%d] = %g is not a finite non-negative value"
                path a p
            else if t.game.legal node.state a then
              legal_mass := !legal_mass +. p)
          node.priors;
        if (not terminal) && !legal_mass <= 0.0 then
          bad "%s: no prior mass on any legal action" path
      end;
      if Float.is_nan node.value_est then bad "%s: value estimate is NaN" path
    end;
    Array.iteri
      (fun a e ->
        let where = Printf.sprintf "%s.%d" path a in
        if e.n < 0 then bad "%s: negative visit count %d" where e.n;
        if Float.is_nan e.q then bad "%s: Q is NaN" where;
        if e.n = 0 && e.q <> 0.0 then
          bad "%s: unvisited edge has Q = %g" where e.q;
        if not (t.game.legal node.state a) then begin
          if e.n > 0 then bad "%s: illegal action has %d visits" where e.n;
          if e.child <> None then bad "%s: illegal action has a child" where
        end;
        if terminal && e.n > 0 then
          bad "%s: terminal node has visited edges" where;
        match e.child with
        | None -> ()
        | Some c -> (
            (match c.parent with
            | Some (p, pa) when p == node && pa = a -> ()
            | _ -> bad "%s: child's parent link is wrong" where);
            walk where c))
      node.edges
  in
  walk "root" (top t.root);
  if !reachable > t.created then
    bad "%d reachable nodes exceed the creation count %d" !reachable t.created;
  List.rev !violations

let check_tree t =
  if t.config.check then
    match validate t with
    | [] -> ()
    | vs -> failwith ("Mcts.validate: " ^ String.concat "; " vs)

let run_n t n =
  run_n t n;
  check_tree t

let run t = run_n t t.config.k

let visit_counts t = Array.map (fun e -> e.n) t.root.edges
let root_qs t = Array.map (fun e -> e.q) t.root.edges

let policy t =
  let counts = visit_counts t in
  let total = Array.fold_left ( + ) 0 counts in
  if total > 0 then
    Array.map (fun c -> float_of_int c /. float_of_int total) counts
  else begin
    let legal =
      Array.init t.game.num_actions (fun a -> t.game.legal t.root.state a)
    in
    let k = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 legal in
    if k = 0 then Array.make t.game.num_actions 0.0
    else
      Array.map (fun l -> if l then 1.0 /. float_of_int k else 0.0) legal
  end

let root_value t =
  let num = ref 0.0 and den = ref 0 in
  Array.iter
    (fun e ->
      num := !num +. (float_of_int e.n *. e.q);
      den := !den + e.n)
    t.root.edges;
  if !den > 0 then !num /. float_of_int !den else t.root.value_est

let advance t a =
  if t.game.is_terminal t.root.state then
    invalid_arg "Mcts.advance: root is terminal";
  if a < 0 || a >= t.game.num_actions || not (t.game.legal t.root.state a) then
    invalid_arg "Mcts.advance: illegal action";
  let e = t.root.edges.(a) in
  let child =
    match e.child with
    | Some c -> c
    | None ->
        let c = make_node t ~parent:(t.root, a) (t.game.apply t.root.state a) in
        e.child <- Some c;
        c
  in
  t.root <- child

let retreat t =
  match t.root.parent with
  | Some (p, _) -> t.root <- p
  | None -> invalid_arg "Mcts.retreat: at the initial root"

let depth t =
  let rec go n acc =
    match n.parent with Some (p, _) -> go p (acc + 1) | None -> acc
  in
  go t.root 0

let nodes_created t = t.created
