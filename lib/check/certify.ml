(* Solution certifier: accepts a solver's output only after recomputing
   everything from the original graph with its own (deliberately
   independent) cost loop — a bug in [Solution.cost] or in a solver's
   incremental bookkeeping shows up as a certification failure here.

   Certification levels:
   - [solution]    well-formedness + admissibility + recomputed-vs-reported
   - [against_brute]  reported cost may not beat the brute-force optimum
   - [classic_solvers]  run every classic solver on a graph and certify
     each claim, including cross-solver consistency. *)

open Pbqp

let default_eps = 1e-6

(* Independent recomputation over the raw representation: vertex terms for
   every live vertex, each symmetric edge counted once via the u < v
   orientation.  Edges are visited in ascending (u, v) order — NOT in
   raw adjacency (hash-table) order — so the float accumulation has one
   fixed order and the certified cost is reproducible across runs and
   checkpoint reloads (pbqp_analyze's unordered-reduction lint flagged
   the previous Graph.iter_adjacency version). *)
let recompute g s =
  let acc = ref Cost.zero in
  let add x = acc := Cost.add !acc x in
  List.iter
    (fun u ->
      let cu = Solution.get s u in
      if cu = Solution.unassigned then add Cost.inf
      else add (Vec.get (Graph.cost g u) cu))
    (Graph.vertices g);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then begin
            let muv = Option.get (Graph.edge_ref g u v) in
            let cu = Solution.get s u and cv = Solution.get s v in
            if cu = Solution.unassigned || cv = Solution.unassigned then
              add Cost.inf
            else add (Mat.get muv cu cv)
          end)
        (Graph.neighbors g u))
    (Graph.vertices g);
  !acc

let solution ?(eps = default_eps) ?reported g s =
  let c = Diag.collector () in
  let n = Graph.capacity g and m = Graph.m g in
  if Solution.length s <> n then
    Diag.errorf c "certify-length" Diag.Global
      "solution has %d entries, graph capacity is %d" (Solution.length s) n
  else begin
    List.iter
      (fun u ->
        let col = Solution.get s u in
        if col = Solution.unassigned then
          Diag.errorf c "certify-unassigned" (Diag.Vertex u)
            "live vertex has no color"
        else if col < 0 || col >= m then
          Diag.errorf c "certify-color-range" (Diag.Vertex u)
            "color %d out of range [0,%d)" col m
        else if Cost.is_inf (Vec.get (Graph.cost g u) col) then
          Diag.errorf c "certify-inadmissible" (Diag.Vertex u)
            "color %d has infinite vertex cost" col)
      (Graph.vertices g);
    if Diag.error_count_in c = 0 then begin
      Graph.fold_edges
        (fun u v muv () ->
          let cu = Solution.get s u and cv = Solution.get s v in
          if Cost.is_inf (Mat.get muv cu cv) then
            Diag.errorf c "certify-conflict" (Diag.Edge (u, v))
              "colors (%d,%d) hit an infinite edge cost" cu cv)
        g ();
      let rc = recompute g s in
      (if Diag.error_count_in c = 0 && Cost.is_inf rc then
         Diag.errorf c "certify-infinite" Diag.Global
           "recomputed cost is infinite");
      match reported with
      | None -> ()
      | Some r ->
          let tol = eps *. (1.0 +. Float.abs (Cost.to_float r)) in
          if not (Cost.approx_equal ~eps:tol rc r) then
            Diag.errorf c "certify-cost-mismatch" Diag.Global
              "solver reported %s but recomputation gives %s"
              (Cost.to_string r) (Cost.to_string rc)
    end
  end;
  Diag.report c

let valid g s = not (Diag.has_errors (solution g s))

(* --- brute-force cross-check ----------------------------------------- *)

type brute_verdict =
  | Optimal of Cost.t  (* exhaustive search completed *)
  | Budget_exhausted
  | Infeasible

let brute_optimum ?(max_states = 500_000) g =
  let result, stats = Solvers.Brute.solve ~max_states g in
  if stats.Solvers.Brute.states > max_states then Budget_exhausted
  else match result with Some (_, c) -> Optimal c | None -> Infeasible

let against_brute ?max_states ?(eps = default_eps) g ~reported =
  let c = Diag.collector () in
  (match brute_optimum ?max_states g with
  | Budget_exhausted ->
      Diag.infof c "certify-brute-budget" Diag.Global
        "brute-force cross-check skipped (budget exhausted)"
  | Infeasible ->
      if Cost.is_finite reported then
        Diag.errorf c "certify-claims-infeasible" Diag.Global
          "solver reported finite cost %s on a provably infeasible graph"
          (Cost.to_string reported)
  | Optimal opt ->
      let tol = eps *. (1.0 +. Float.abs (Cost.to_float opt)) in
      if
        Cost.is_finite reported
        && Cost.to_float reported < Cost.to_float opt -. tol
      then
        Diag.errorf c "certify-below-optimum" Diag.Global
          "solver reported %s, below the proven optimum %s"
          (Cost.to_string reported) (Cost.to_string opt));
  Diag.report c

(* --- whole-solver battery -------------------------------------------- *)

type solver_run = {
  solver : string;
  cost : Cost.t option;  (* None: solver found no solution *)
  findings : Diag.finding list;
}

(* Run the four classic solvers; certify every claimed solution, and when
   the brute-force search completes within budget, cross-check the
   heuristic costs against the optimum and the feasibility claims against
   each other. *)
let classic_solvers ?(max_states = 200_000) ?(brute_max = 500_000) g =
  let runs = ref [] in
  let push solver cost findings = runs := { solver; cost; findings } :: !runs in
  (* scholz always returns a full assignment; an infinite cost is the
     heuristic failing, not a certifiable claim *)
  let scholz_sol, scholz_cost, _ = Solvers.Scholz.solve_with_cost g in
  (if Cost.is_finite scholz_cost then
     push "scholz" (Some scholz_cost)
       (solution ~reported:scholz_cost g scholz_sol)
   else push "scholz" None []);
  let certify_opt solver = function
    | Some sol ->
        let cost = recompute g sol in
        push solver (Some cost) (solution ~reported:cost g sol)
    | None -> push solver None []
  in
  certify_opt "mrv" (fst (Solvers.Mrv.solve ~max_states g));
  certify_opt "liberty" (fst (Solvers.Liberty.solve ~max_states g));
  let brute_result, brute_stats = Solvers.Brute.solve ~max_states:brute_max g in
  let brute =
    if brute_stats.Solvers.Brute.states > brute_max then Budget_exhausted
    else
      match brute_result with
      | Some (_, c) -> Optimal c
      | None -> Infeasible
  in
  (match (brute, brute_result) with
  | Optimal opt, Some (sol, _) ->
      push "brute" (Some opt) (solution ~reported:opt g sol)
  | Budget_exhausted, _ ->
      push "brute" None
        [
          Diag.info "certify-brute-budget" Diag.Global
            "brute-force search skipped (budget exhausted)";
        ]
  | _ -> push "brute" None []);
  (* cross-solver consistency *)
  let cross = Diag.collector () in
  (match brute with
  | Optimal opt ->
      List.iter
        (fun r ->
          match r.cost with
          | Some c when r.solver <> "brute" ->
              let tol = default_eps *. (1.0 +. Float.abs (Cost.to_float opt)) in
              if Cost.to_float c < Cost.to_float opt -. tol then
                Diag.errorf cross "certify-below-optimum" Diag.Global
                  "%s reported %s, below the proven optimum %s" r.solver
                  (Cost.to_string c) (Cost.to_string opt)
          | _ -> ())
        !runs
  | Infeasible ->
      List.iter
        (fun r ->
          match r.cost with
          | Some c ->
              Diag.errorf cross "certify-claims-infeasible" Diag.Global
                "%s reported %s on a provably infeasible graph" r.solver
                (Cost.to_string c)
          | None -> ())
        !runs
  | Budget_exhausted -> ());
  (List.rev !runs, Diag.report cross)

let classic_findings ?max_states ?brute_max g =
  let runs, cross = classic_solvers ?max_states ?brute_max g in
  List.concat_map
    (fun r -> List.map (fun f -> { f with Diag.rule = r.solver ^ "/" ^ f.Diag.rule }) r.findings)
    runs
  @ cross
