(* Solution certifier: accepts a solver's output only after recomputing
   everything from the original graph with its own (deliberately
   independent) cost loop — a bug in [Solution.cost] or in a solver's
   incremental bookkeeping shows up as a certification failure here.

   Certification levels:
   - [solution]    well-formedness + admissibility + recomputed-vs-reported
   - [against_brute]  reported cost may not beat the brute-force optimum
   - [classic_solvers]  run every classic solver on a graph and certify
     each claim, including cross-solver consistency. *)

open Pbqp

let default_eps = 1e-6

(* Independent recomputation over the raw representation: vertex terms for
   every live vertex, each symmetric edge counted once via the u < v
   orientation.  Edges are visited in ascending (u, v) order — NOT in
   raw adjacency (hash-table) order — so the float accumulation has one
   fixed order and the certified cost is reproducible across runs and
   checkpoint reloads (pbqp_analyze's unordered-reduction lint flagged
   the previous Graph.iter_adjacency version). *)
let recompute g s =
  let acc = ref Cost.zero in
  let add x = acc := Cost.add !acc x in
  List.iter
    (fun u ->
      let cu = Solution.get s u in
      if cu = Solution.unassigned then add Cost.inf
      else add (Vec.get (Graph.cost g u) cu))
    (Graph.vertices g);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then begin
            let muv = Option.get (Graph.edge_ref g u v) in
            let cu = Solution.get s u and cv = Solution.get s v in
            if cu = Solution.unassigned || cv = Solution.unassigned then
              add Cost.inf
            else add (Mat.get muv cu cv)
          end)
        (Graph.neighbors g u))
    (Graph.vertices g);
  !acc

let solution ?(eps = default_eps) ?reported g s =
  let c = Diag.collector () in
  let n = Graph.capacity g and m = Graph.m g in
  if Solution.length s <> n then
    Diag.errorf c "certify-length" Diag.Global
      "solution has %d entries, graph capacity is %d" (Solution.length s) n
  else begin
    List.iter
      (fun u ->
        let col = Solution.get s u in
        if col = Solution.unassigned then
          Diag.errorf c "certify-unassigned" (Diag.Vertex u)
            "live vertex has no color"
        else if col < 0 || col >= m then
          Diag.errorf c "certify-color-range" (Diag.Vertex u)
            "color %d out of range [0,%d)" col m
        else if Cost.is_inf (Vec.get (Graph.cost g u) col) then
          Diag.errorf c "certify-inadmissible" (Diag.Vertex u)
            "color %d has infinite vertex cost" col)
      (Graph.vertices g);
    if Diag.error_count_in c = 0 then begin
      Graph.fold_edges
        (fun u v muv () ->
          let cu = Solution.get s u and cv = Solution.get s v in
          if Cost.is_inf (Mat.get muv cu cv) then
            Diag.errorf c "certify-conflict" (Diag.Edge (u, v))
              "colors (%d,%d) hit an infinite edge cost" cu cv)
        g ();
      let rc = recompute g s in
      (if Diag.error_count_in c = 0 && Cost.is_inf rc then
         Diag.errorf c "certify-infinite" Diag.Global
           "recomputed cost is infinite");
      match reported with
      | None -> ()
      | Some r ->
          let tol = eps *. (1.0 +. Float.abs (Cost.to_float r)) in
          if not (Cost.approx_equal ~eps:tol rc r) then
            Diag.errorf c "certify-cost-mismatch" Diag.Global
              "solver reported %s but recomputation gives %s"
              (Cost.to_string r) (Cost.to_string rc)
    end
  end;
  Diag.report c

let valid g s = not (Diag.has_errors (solution g s))

(* --- brute-force cross-check ----------------------------------------- *)

type brute_verdict =
  | Optimal of Cost.t  (* exhaustive search completed *)
  | Skipped of string  (* search did not complete; the reason why *)
  | Infeasible

let brute_optimum ?(max_states = 500_000) g =
  let result, stats = Solvers.Brute.solve ~max_states g in
  if stats.Solvers.Brute.states > max_states then
    Skipped
      (Printf.sprintf
         "exhaustive search budget exhausted after %d states (cap %d) on %d \
          live vertices"
         stats.Solvers.Brute.states max_states (Graph.n_alive g))
  else match result with Some (_, c) -> Optimal c | None -> Infeasible

let against_brute ?max_states ?(eps = default_eps) g ~reported =
  let c = Diag.collector () in
  (match brute_optimum ?max_states g with
  | Skipped reason ->
      (* an explicit non-verdict, not a pass: callers must not read the
         absence of errors here as "cross-checked" *)
      Diag.warningf c "certify-brute-skipped" Diag.Global
        "brute-force cross-check skipped: %s" reason
  | Infeasible ->
      if Cost.is_finite reported then
        Diag.errorf c "certify-claims-infeasible" Diag.Global
          "solver reported finite cost %s on a provably infeasible graph"
          (Cost.to_string reported)
  | Optimal opt ->
      let tol = eps *. (1.0 +. Float.abs (Cost.to_float opt)) in
      if
        Cost.is_finite reported
        && Cost.to_float reported < Cost.to_float opt -. tol
      then
        Diag.errorf c "certify-below-optimum" Diag.Global
          "solver reported %s, below the proven optimum %s"
          (Cost.to_string reported) (Cost.to_string opt));
  Diag.report c

(* --- whole-solver battery -------------------------------------------- *)

type solver_run = {
  solver : string;
  cost : Cost.t option;  (* None: solver found no solution *)
  findings : Diag.finding list;
}

(* Run the four classic solvers; certify every claimed solution, and when
   the brute-force search completes within budget, cross-check the
   heuristic costs against the optimum and the feasibility claims against
   each other. *)
let classic_solvers ?(max_states = 200_000) ?(brute_max = 500_000) g =
  let runs = ref [] in
  let push solver cost findings = runs := { solver; cost; findings } :: !runs in
  (* scholz always returns a full assignment; an infinite cost is the
     heuristic failing, not a certifiable claim *)
  let scholz_sol, scholz_cost, _ = Solvers.Scholz.solve_with_cost g in
  (if Cost.is_finite scholz_cost then
     push "scholz" (Some scholz_cost)
       (solution ~reported:scholz_cost g scholz_sol)
   else push "scholz" None []);
  let certify_opt solver = function
    | Some sol ->
        let cost = recompute g sol in
        push solver (Some cost) (solution ~reported:cost g sol)
    | None -> push solver None []
  in
  certify_opt "mrv" (fst (Solvers.Mrv.solve ~max_states g));
  certify_opt "liberty" (fst (Solvers.Liberty.solve ~max_states g));
  let brute_result, brute_stats = Solvers.Brute.solve ~max_states:brute_max g in
  let brute =
    if brute_stats.Solvers.Brute.states > brute_max then
      Skipped
        (Printf.sprintf "exhaustive search budget exhausted after %d states"
           brute_stats.Solvers.Brute.states)
    else
      match brute_result with
      | Some (_, c) -> Optimal c
      | None -> Infeasible
  in
  (match (brute, brute_result) with
  | Optimal opt, Some (sol, _) ->
      push "brute" (Some opt) (solution ~reported:opt g sol)
  | Skipped reason, _ ->
      push "brute" None
        [
          Diag.warning "certify-brute-skipped" Diag.Global
            "brute-force search skipped: %s" reason;
        ]
  | _ -> push "brute" None []);
  (* cross-solver consistency *)
  let cross = Diag.collector () in
  (match brute with
  | Optimal opt ->
      List.iter
        (fun r ->
          match r.cost with
          | Some c when r.solver <> "brute" ->
              let tol = default_eps *. (1.0 +. Float.abs (Cost.to_float opt)) in
              if Cost.to_float c < Cost.to_float opt -. tol then
                Diag.errorf cross "certify-below-optimum" Diag.Global
                  "%s reported %s, below the proven optimum %s" r.solver
                  (Cost.to_string c) (Cost.to_string opt)
          | _ -> ())
        !runs
  | Infeasible ->
      List.iter
        (fun r ->
          match r.cost with
          | Some c ->
              Diag.errorf cross "certify-claims-infeasible" Diag.Global
                "%s reported %s on a provably infeasible graph" r.solver
                (Cost.to_string c)
          | None -> ())
        !runs
  | Skipped _ -> ());
  (List.rev !runs, Diag.report cross)

(* --- exact-solver oracle --------------------------------------------- *)

type oracle =
  | Proven of Cost.t  (* exact optimum; [Cost.inf] = proven infeasible *)
  | Oracle_skipped of string  (* exact budget exhausted: no verdict *)

(* Does any cost entry go below zero?  The brute-force search prunes on
   the bare prefix cost, which is only a bound for non-negative costs —
   on graphs with negative entries (the allocator's coalescing credits)
   its verdict is unreliable and must not veto the exact solver's. *)
let has_negative_costs g =
  List.exists
    (fun u -> Cost.compare (Vec.min_value (Graph.cost g u)) Cost.zero < 0)
    (Graph.vertices g)
  || Graph.fold_edges
       (fun _ _ muv acc ->
         acc || Cost.compare (Mat.min_value muv) Cost.zero < 0)
       g false

let certify_optimal ?(max_nodes = 2_000_000) ?(brute_cap = 8)
    ?(brute_states = 2_000_000) ?(eps = default_eps) g ~reported =
  let c = Diag.collector () in
  let small = Graph.n_alive g <= brute_cap && not (has_negative_costs g) in
  match Solvers.Exact.solve ~max_nodes g with
  | Solvers.Exact.Timeout _, stats ->
      (* an explicit non-verdict: no pass or fail can be concluded *)
      let reason =
        Printf.sprintf "exact search budget exhausted after %d nodes"
          stats.Solvers.Exact.nodes
      in
      Diag.warningf c "certify-exact-budget" Diag.Global
        "optimality not certified: %s" reason;
      (Oracle_skipped reason, Diag.report c)
  | Solvers.Exact.Infeasible, _ ->
      if Cost.is_finite reported then
        Diag.errorf c "certify-claims-infeasible" Diag.Global
          "solver reported finite cost %s on a provably infeasible graph"
          (Cost.to_string reported);
      (if small then
         match brute_optimum ~max_states:brute_states g with
         | Optimal b ->
             Diag.errorf c "certify-exact-vs-brute" Diag.Global
               "exact solver proved infeasibility but brute force found cost %s"
               (Cost.to_string b)
         | Infeasible | Skipped _ -> ());
      (Proven Cost.inf, Diag.report c)
  | Solvers.Exact.Optimal (sol, opt), _ ->
      (* the oracle's own claim is certified, never trusted: its witness
         must recompute to its cost, and on small graphs the optimum is
         cross-checked against the independent exhaustive search *)
      let own =
        List.map
          (fun f -> { f with Diag.rule = "exact/" ^ f.Diag.rule })
          (solution ~eps ~reported:opt g sol)
      in
      let tol = eps *. (1.0 +. Float.abs (Cost.to_float opt)) in
      (if small then
         match brute_optimum ~max_states:brute_states g with
         | Optimal b ->
             if not (Cost.approx_equal ~eps:tol b opt) then
               Diag.errorf c "certify-exact-vs-brute" Diag.Global
                 "exact solver proved optimum %s but brute force gives %s"
                 (Cost.to_string opt) (Cost.to_string b)
         | Infeasible ->
             Diag.errorf c "certify-exact-vs-brute" Diag.Global
               "exact solver proved optimum %s but brute force says infeasible"
               (Cost.to_string opt)
         | Skipped reason ->
             Diag.infof c "certify-brute-skipped" Diag.Global
               "brute cross-check of the exact solver skipped: %s" reason);
      if
        Cost.is_finite reported
        && Cost.to_float reported < Cost.to_float opt -. tol
      then
        Diag.errorf c "certify-below-optimum" Diag.Global
          "solver reported %s, below the proven optimum %s"
          (Cost.to_string reported) (Cost.to_string opt);
      (Proven opt, own @ Diag.report c)

let classic_findings ?max_states ?brute_max g =
  let runs, cross = classic_solvers ?max_states ?brute_max g in
  List.concat_map
    (fun r -> List.map (fun f -> { f with Diag.rule = r.solver ^ "/" ^ f.Diag.rule }) r.findings)
    runs
  @ cross
