(* The deterministic battery behind `pbqp-lint --self-test`: positive
   properties (generated instances are well-formed, classic-solver
   solutions certify, gradients match finite differences, the CIR and ATE
   pipelines verify end to end) and negative properties (hand-crafted
   malformed graphs/solutions are rejected). *)

open Check
open Pbqp

type case = { name : string; ok : bool; detail : string }

(* pass iff no Error finding *)
let clean name findings =
  let errs = Diag.errors_only findings in
  {
    name;
    ok = errs = [];
    detail =
      (if errs = [] then Printf.sprintf "%d finding(s), none fatal"
         (List.length findings)
       else Diag.to_string errs);
  }

(* pass iff at least one Error finding *)
let rejected name findings =
  if Diag.has_errors findings then
    { name; ok = true; detail = "rejected as expected" }
  else { name; ok = false; detail = "accepted a malformed input" }

let ok cases = List.for_all (fun c -> c.ok) cases

(* Drop the semantic arc-consistency findings: a plain Erdős–Rényi draw
   may legitimately be infeasible, which is a property of the instance,
   not of its representation. *)
let structural_only =
  List.filter (fun f ->
      not (String.starts_with ~prefix:"pbqp-arc" f.Diag.rule))

(* --- PBQP graphs + classic solver certification ------------------------ *)

let graph_battery ~rng ~graphs =
  let cases = ref [] in
  for i = 1 to graphs do
    let m = 2 + (i mod 3) in
    let n = 3 + (i mod (if m >= 4 then 6 else 7)) in
    let config =
      {
        Generate.default with
        n;
        m;
        p_edge = 0.3 +. (0.1 *. float_of_int (i mod 4));
        p_inf = (if i mod 2 = 0 then 0.0 else 0.15);
        zero_inf = i mod 5 = 0;
        min_liberty = 1;
      }
    in
    let g, tag =
      if i mod 3 = 0 then (Generate.erdos_renyi ~rng config, "er")
      else (fst (Generate.planted ~rng config), "planted")
    in
    let wf = Invariants.graph g in
    let wf = if tag = "er" then structural_only wf else wf in
    cases := clean (Printf.sprintf "wellformed-%s-%03d" tag i) wf :: !cases;
    cases :=
      clean
        (Printf.sprintf "certify-classic-%03d" i)
        (Certify.classic_findings g)
      :: !cases
  done;
  List.rev !cases

(* --- hand-crafted malformed inputs ------------------------------------- *)

let negative_battery () =
  let fig2 = Generate.fig2 () in
  let bad_vertex () =
    let g = Graph.create ~m:2 ~n:2 in
    Graph.set_cost g 0 (Vec.of_array [| Cost.inf; Cost.inf |]);
    g
  in
  let conflict_graph () =
    let g = Graph.create ~m:2 ~n:2 in
    Graph.add_edge g 0 1
      (Mat.of_arrays [| [| Cost.inf; 0.0 |]; [| 0.0; 0.0 |] |]);
    g
  in
  [
    rejected "reject-parse"
      (Invariants.lint_string "pbqp 2 2\nv 0 1.0\n");
    rejected "reject-unknown-directive"
      (Invariants.lint_string "pbqp 1 2\nq 0 1 2\n");
    rejected "reject-no-color" (Invariants.graph (bad_vertex ()));
    rejected "reject-color-range"
      (Certify.solution fig2 (Solution.of_array [| 0; 5; 0 |]));
    rejected "reject-unassigned"
      (Certify.solution fig2 (Solution.of_array [| 0; Solution.unassigned; 0 |]));
    rejected "reject-conflict"
      (Certify.solution (conflict_graph ()) (Solution.of_array [| 0; 0 |]));
    rejected "reject-cost-lie"
      (Certify.solution ~reported:5.0 fig2 (Solution.of_array [| 0; 0; 0 |]));
    rejected "reject-below-optimum"
      (Certify.against_brute fig2 ~reported:5.0);
  ]

(* --- exact branch-and-bound solver -------------------------------------- *)

(* The Exact solver variant under its own certifier: the proven optimum
   must survive the brute-force cross-check and witness re-certification
   of [Certify.certify_optimal], no classic solver may report a cost
   below it, and a node-budget timeout must be bit-deterministic. *)
let exact_battery ~rng =
  let cases = ref [] in
  for i = 1 to 8 do
    let config =
      {
        Generate.default with
        n = 6 + (i mod 5);
        m = 2 + (i mod 3);
        p_edge = 0.35;
        p_inf = (if i mod 2 = 0 then 0.0 else 0.2);
        zero_inf = i mod 4 = 0;
        min_liberty = 1;
      }
    in
    let g = Generate.erdos_renyi ~rng config in
    let _, scholz_cost, _ = Solvers.Scholz.solve_with_cost g in
    let oracle, findings =
      Certify.certify_optimal ~brute_cap:12 g ~reported:scholz_cost
    in
    (cases :=
       match oracle with
       | Certify.Oracle_skipped reason ->
           {
             name = Printf.sprintf "exact-oracle-%d" i;
             ok = false;
             detail = "budget hit on a tiny instance: " ^ reason;
           }
           :: !cases
       | Certify.Proven _ ->
           clean (Printf.sprintf "exact-oracle-%d" i) findings :: !cases);
    (match oracle with
    | Certify.Proven opt when Cost.is_finite opt ->
        let classic =
          [
            ( "scholz",
              if Cost.is_finite scholz_cost then Some scholz_cost else None );
            ( "mrv",
              Option.map
                (fun s -> Solution.cost g s)
                (fst (Solvers.Mrv.solve ~max_states:200_000 g)) );
            ("greedy", Option.map snd (fst (Solvers.Greedy.solve g)));
          ]
        in
        let tol = 1e-6 *. (1.0 +. Float.abs (Cost.to_float opt)) in
        let beats =
          List.filter_map
            (fun (name, c) ->
              match c with
              | Some c when Cost.to_float c < Cost.to_float opt -. tol ->
                  Some name
              | _ -> None)
            classic
        in
        cases :=
          {
            name = Printf.sprintf "exact-vs-classic-%d" i;
            ok = beats = [];
            detail =
              (if beats = [] then "no classic solver beats the optimum"
               else String.concat ", " beats ^ " below the proven optimum");
          }
          :: !cases
    | _ -> ())
  done;
  (* timeout determinism: the node budget is counted identically on every
     run, so two runs return the same outcome and stats *)
  let g =
    Generate.erdos_renyi ~rng
      { Generate.default with n = 14; m = 3; p_edge = 0.5; min_liberty = 1 }
  in
  let describe (outcome, (st : Solvers.Exact.stats)) =
    (match outcome with
    | Solvers.Exact.Optimal (_, c) -> "optimal " ^ Cost.to_string c
    | Solvers.Exact.Infeasible -> "infeasible"
    | Solvers.Exact.Timeout None -> "timeout none"
    | Solvers.Exact.Timeout (Some (_, c)) -> "timeout " ^ Cost.to_string c)
    ^ Printf.sprintf " nodes=%d pruned=%d" st.Solvers.Exact.nodes
        st.Solvers.Exact.pruned
  in
  let r1 = describe (Solvers.Exact.solve ~max_nodes:60 ~reduce:false g) in
  let r2 = describe (Solvers.Exact.solve ~max_nodes:60 ~reduce:false g) in
  cases :=
    {
      name = "exact-timeout-deterministic";
      ok = r1 = r2;
      detail =
        (if r1 = r2 then r1 else Printf.sprintf "%s <> %s" r1 r2);
    }
    :: !cases;
  List.rev !cases

(* --- gradients --------------------------------------------------------- *)

let grad_battery () =
  [
    clean "gradcheck-layers" (Gradcheck.layer_battery ());
    clean "gradcheck-pvnet" (Gradcheck.pvnet_battery ());
  ]

(* --- CIR pipeline ------------------------------------------------------ *)

let cir_battery ~rng =
  List.concat_map
    (fun i ->
      let src = Cir.Fuzzgen.generate ~rng in
      List.map
        (fun kind ->
          clean
            (Printf.sprintf "cir-fuzz-%d-%s" i
               (Cir_check.alloc_kind_name kind))
            (Cir_check.check_source ~kind src))
        [ Cir_check.Basic; Cir_check.Greedy; Cir_check.Pbqp ])
    [ 1; 2; 3 ]

(* --- ATE pipeline ------------------------------------------------------ *)

let ate_battery ~rng =
  let machine = Ate.Machine.default in
  let prog, witness =
    Ate.Progen.generate_with_witness ~machine ~rng ~target_vregs:12 ()
  in
  let info = Ate.Program.analyze_exn prog in
  let schedule_case = clean "ate-schedule" (Ate_check.schedule machine prog) in
  let pad_case = clean "ate-pad" (Ate_check.padded machine prog) in
  let witness_case =
    clean "ate-witness" (Ate_check.assignment machine info ~assignment:witness)
  in
  let build = Ate.Pbqp_build.build machine info in
  let graph_case = clean "ate-pbqp-graph" (Invariants.graph build.Ate.Pbqp_build.graph) in
  let solver_case =
    match fst (Solvers.Mrv.solve ~max_states:200_000 build.Ate.Pbqp_build.graph) with
    | None ->
        {
          name = "ate-pbqp-solve";
          ok = false;
          detail = "MRV found no solution on a feasible-by-construction graph";
        }
    | Some sol ->
        let cert = Certify.solution build.Ate.Pbqp_build.graph sol in
        let assignment = Ate.Pbqp_build.assignment_of_solution build sol in
        clean "ate-pbqp-roundtrip"
          (cert @ Ate_check.assignment machine info ~assignment)
  in
  [ schedule_case; pad_case; witness_case; graph_case; solver_case ]

(* --- incremental (trail) state ----------------------------------------- *)

(* Interleaved apply/undo walks on the trail state (Core.Istate): after
   every move the live trail graph must still satisfy the graph
   invariants and be structurally equal to the persistent State oracle
   rebuilt from the same move sequence — the in-place push/pop/redo
   machinery may never leave the graph in a state the persistent path
   could not reach. *)
let trail_battery ~rng =
  List.map
    (fun i ->
      let config =
        {
          Generate.default with
          n = 6 + i;
          m = 2 + (i mod 3);
          p_edge = 0.4;
          p_inf = 0.1;
          min_liberty = 1;
        }
      in
      let g = Generate.erdos_renyi ~rng config in
      let st0 = Core.State.of_graph g in
      let ist = Core.Istate.of_state st0 in
      let stack = ref [ st0 ] in
      let findings = ref [] in
      let diverged = ref 0 in
      for _step = 1 to 40 do
        let top = List.hd !stack in
        let depth = List.length !stack - 1 in
        let legal =
          List.filter (Core.State.legal top)
            (List.init (Core.State.m top) Fun.id)
        in
        (match legal with
        | _ :: _ when depth = 0 || Random.State.bool rng ->
            let c = List.nth legal (Random.State.int rng (List.length legal)) in
            stack := Core.State.apply top c :: !stack;
            Core.Istate.apply ist c
        | _ when depth > 0 ->
            stack := List.tl !stack;
            Core.Istate.undo ist
        | _ -> ());
        (* solvability rules (arc consistency, all-infinite vectors) are
           properties of the position — a mid-game dead end is a legal
           state — so only the structural rules apply here *)
        findings :=
          List.filter
            (fun f -> not (String.starts_with ~prefix:"pbqp-no-color" f.Diag.rule))
            (structural_only (Invariants.graph (Core.Istate.graph ist)))
          @ !findings;
        if
          not
            (Graph.equal
               (Core.State.graph (List.hd !stack))
               (Core.Istate.graph ist))
        then incr diverged
      done;
      if !diverged > 0 then
        {
          name = Printf.sprintf "trail-oracle-%d" i;
          ok = false;
          detail =
            Printf.sprintf "%d position(s) diverged from the persistent oracle"
              !diverged;
        }
      else clean (Printf.sprintf "trail-oracle-%d" i) !findings)
    [ 1; 2; 3; 4 ]

(* --- entry point -------------------------------------------------------- *)

(* --- flat tensor kernels + int8 certification ------------------------- *)

let tensor_battery ~rng =
  let bits_eq a b =
    let da = Tensor.data a and db = Tensor.data b in
    Tensor.shape a = Tensor.shape b
    &&
    let n = Float.Array.length da in
    let rec go i =
      i >= n
      || Int64.equal
           (Int64.bits_of_float (Float.Array.get da i))
           (Int64.bits_of_float (Float.Array.get db i))
         && go (i + 1)
    in
    go 0
  in
  let random_matrix r c =
    Tensor.init2 r c (fun _ _ ->
        if Random.State.float rng 1.0 < 0.2 then 0.0
        else Random.State.float rng 2.0 -. 1.0)
  in
  let case name ok detail =
    { name; ok; detail = (if ok then "ok" else detail) }
  in
  (* packed-panel GEMM bit-identical to the naive reference across
     panel-boundary shapes *)
  let packed_ok =
    List.for_all
      (fun (ra, ca, cb) ->
        let a = random_matrix ra ca and b = random_matrix ca cb in
        let out = Tensor.zeros [| ra; cb |] in
        Tensor.matmul_packed_into out a (Tensor.pack b);
        bits_eq out (Tensor.matmul_naive a b))
      [ (5, 7, 9); (16, 32, 8); (33, 9, 17); (1, 8, 1) ]
  in
  (* fused epilogue = unfused sequence, bitwise *)
  let fused_ok =
    let ra, ca, cb = (6, 9, 13) in
    let a = random_matrix ra ca and b = random_matrix ca cb in
    let bias = Tensor.row (random_matrix 1 cb) 0 in
    let residual = random_matrix ra cb in
    let fused = Tensor.zeros [| ra; cb |] in
    Tensor.matmul_packed_into ~bias ~residual ~relu:true fused a
      (Tensor.pack b);
    let prod = Tensor.matmul_naive a b in
    let expect =
      Tensor.init2 ra cb (fun i j ->
          let v = Tensor.get2 prod i j +. Tensor.get1 bias j in
          let v = Tensor.get2 residual i j +. v in
          if v > 0.0 then v else 0.0)
    in
    bits_eq fused expect
  in
  (* floatarray bridges round-trip as copies *)
  let bridge_ok =
    let t = Tensor.row (random_matrix 1 11) 0 in
    let fa = Tensor.to_float_array t in
    let back = Tensor.of_float_array fa in
    Float.Array.set fa 0 1234.5;
    bits_eq t back && Tensor.get1 back 0 <> 1234.5
  in
  (* int8 quantized GEMM stays within the serving accuracy envelope *)
  let quant_ok =
    let b, k, n = (8, 32, 12) in
    let x = random_matrix b k and w = random_matrix n k in
    let qw = Tensor.Q.quantize_rows w in
    let out = Tensor.zeros [| b; n |] in
    Tensor.Q.matmul_qt_into ~scratch:(Tensor.Q.scratch ~rows:b ~cols:k) out x
      qw;
    let exact = Tensor.matmul_naive x (Tensor.transpose w) in
    let worst = ref 0.0 in
    for i = 0 to b - 1 do
      for j = 0 to n - 1 do
        let d = Float.abs (Tensor.get2 out i j -. Tensor.get2 exact i j) in
        if d > !worst then worst := d
      done
    done;
    !worst <= 0.05
  in
  (* the certification harness passes clean weights and rejects the
     corrupted int8 payload *)
  let net =
    Nn.Pvnet.create ~rng
      { (Nn.Pvnet.default_config ~m:4) with
        Nn.Pvnet.trunk_width = 8; trunk_blocks = 1; gcn_layers = 1 }
  in
  let clean_report = Check.Quantcert.certify net in
  Nn.Pvnet.corrupt_quantized_for_test net;
  let dirty_report = Check.Quantcert.run net in
  [
    case "tensor-packed-bitwise" packed_ok "packed GEMM diverged from naive";
    case "tensor-fused-epilogue" fused_ok "fused epilogue diverged";
    case "tensor-floatarray-bridge" bridge_ok "bridge aliased or diverged";
    case "tensor-int8-envelope" quant_ok "quantized GEMM out of envelope";
    clean "quantcert-clean-weights" clean_report.Check.Quantcert.findings;
    rejected "quantcert-corrupted-weights"
      dirty_report.Check.Quantcert.findings;
  ]

let run ?(graphs = 60) ?(seed = 42) () =
  let rng = Random.State.make [| seed |] in
  graph_battery ~rng ~graphs
  @ negative_battery ()
  @ exact_battery ~rng
  @ grad_battery ()
  @ tensor_battery ~rng
  @ cir_battery ~rng
  @ ate_battery ~rng
  @ trail_battery ~rng
