(** The deterministic battery behind [pbqp_lint --self-test]: positive
    properties (generated instances are well-formed, classic-solver
    solutions certify, gradients match finite differences, the CIR and
    ATE pipelines verify end to end, the trail state tracks the
    persistent oracle) and negative properties (hand-crafted malformed
    graphs/solutions are rejected). *)

type case = { name : string; ok : bool; detail : string }

(** All cases pass. *)
val ok : case list -> bool

(** Run the full battery; [graphs] scales the generated-instance sweep,
    [seed] fixes the random stream. *)
val run : ?graphs:int -> ?seed:int -> unit -> case list
