(** CIR allocation verifier.

    Three layers of checks over the compiler backend: structural IR
    sanity plus a must-define (definite-assignment) forward dataflow,
    a [Cir.Regalloc.allocation] against the liveness facts, and
    spill-slot consistency of the rewritten VCPU code. *)

(** Structural sanity of one function, then (if structurally clean) the
    must-define dataflow: every use must be dominated by a definition
    along all paths. *)
val func : Cir.Ir.func -> Check.Diag.finding list

(** [Cir.Ir.check] plus [func] for every function, findings prefixed
    with the function name. *)
val program : Cir.Ir.program -> Check.Diag.finding list

(** An allocation against the liveness facts: register ranges,
    class/constraint membership, interference, and agreement with the
    repo's own fail-fast [Cir.Regalloc.validate]. *)
val allocation :
  Cir.Liveness.t -> Cir.Regalloc.allocation -> Check.Diag.finding list

(** Spill-slot consistency of rewritten VCPU code: slot ranges,
    scratch-register discipline, physical register ranges, and the
    callee-saved book-keeping. *)
val machine_func : Cir.Mach.mfunc -> Check.Diag.finding list

type alloc_kind = Fast | Basic | Greedy | Pbqp

val alloc_kind_name : alloc_kind -> string

(** Compile MiniC source and push every function through IR checks, the
    allocator under [kind] (default [Pbqp]), allocation certification,
    spill rewriting and machine-code checks.  For the PBQP allocator the
    built graph is also linted with the base well-formedness analyzer;
    additionally, when [exact_vertices > 0] and the function's PBQP
    graph has at most that many live vertices, the allocator's claimed
    cost is certified against the proven optimum of the exact
    branch-and-bound solver under an [exact_nodes] search budget
    (default 200k) — any cost below the optimum is an error, and a
    budget timeout surfaces as an explicit warning, never a silent
    pass. *)
val check_source :
  ?kind:alloc_kind ->
  ?exact_vertices:int ->
  ?exact_nodes:int ->
  string ->
  Check.Diag.finding list
