(** ATE schedule and register-assignment validator.

    Sanitizer-style counterpart of [Ate.Validate.check] /
    [Ate.Program.check_schedulable]: the same machine rules, but every
    violation is reported as a located finding instead of failing on
    the first. *)

(** Schedulability of a program under a machine's cycle rules; when it
    fails, an extra info finding reports how many nops
    [Ate.Schedule.pad] would insert. *)
val schedule : Ate.Machine.t -> Ate.Ast.program -> Check.Diag.finding list

(** [Ate.Schedule.pad] must yield a schedulable program that differs
    from the input only by inserted [Nop]s (same instructions in order,
    same labels). *)
val padded : Ate.Machine.t -> Ate.Ast.program -> Check.Diag.finding list

(** A register assignment against the machine rules: completeness,
    register ranges, class membership, pair compatibility, interference
    freedom, major-cycle write-once / read-before-write discipline —
    cross-checked against the repo's own fail-fast validator. *)
val assignment :
  Ate.Machine.t ->
  Ate.Program.info ->
  assignment:(int -> int option) ->
  Check.Diag.finding list
