(* ATE schedule and register-assignment validator.

   Sanitizer-style counterpart of [Ate.Validate.check] /
   [Ate.Program.check_schedulable]: the same machine rules, but every
   violation is reported as a located finding instead of failing on the
   first, plus a structural check that [Schedule.pad] behaved (only nops
   inserted, control flow intact). *)

open Check
open Ate

let vregs_of regs =
  List.filter_map (function Ast.Virt v -> Some v | Ast.Phys _ -> None) regs

(* --- schedule ---------------------------------------------------------- *)

let schedule machine prog =
  let c = Diag.collector () in
  (match Program.analyze prog with
  | Error msg -> Diag.errorf c "ate-labels" Diag.Global "%s" msg
  | Ok info -> (
      match Program.check_schedulable machine info with
      | Ok () -> ()
      | Error msg ->
          Diag.errorf c "ate-schedule" Diag.Global "%s" msg;
          Diag.infof c "ate-schedule" Diag.Global
            "Schedule.pad would insert %d nop(s) to fix this"
            (Schedule.nops_added machine prog)));
  Diag.report c

(* [Schedule.pad] must yield a schedulable program that differs from the
   input only by inserted [Nop]s (same instructions in order, same
   labels). *)
let padded machine prog =
  let c = Diag.collector () in
  let out = Schedule.pad machine prog in
  (match Program.analyze out with
  | Error msg ->
      Diag.errorf c "ate-pad-labels" Diag.Global "pad broke labels: %s" msg
  | Ok info -> (
      match Program.check_schedulable machine info with
      | Ok () -> ()
      | Error msg ->
          Diag.errorf c "ate-pad-schedule" Diag.Global
            "pad output still unschedulable: %s" msg));
  let strip (p : Ast.program) =
    Array.to_list p.Ast.lines
    |> List.filter (function Ast.Instr Ast.Nop -> false | _ -> true)
  in
  if strip prog <> strip out then
    Diag.errorf c "ate-pad-preserve" Diag.Global
      "pad changed the program beyond inserting nops";
  Diag.report c

(* --- register assignment ----------------------------------------------- *)

let assignment machine info ~assignment =
  let c = Diag.collector () in
  let nregs = machine.Machine.nregs in
  (* resolve every vreg once; unmapped / out-of-range vregs are reported
     and excluded from the later physical checks *)
  let phys = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match assignment v with
      | None -> Diag.errorf c "ate-unassigned" (Diag.Vreg v) "no assignment"
      | Some p when p < 0 || p >= nregs ->
          Diag.errorf c "ate-reg-range" (Diag.Vreg v)
            "assigned out-of-range register r%d" p
      | Some p -> Hashtbl.replace phys v p)
    info.Program.vregs;
  let resolve = function
    | Ast.Virt v -> Hashtbl.find_opt phys v
    | Ast.Phys p -> Some p
  in
  Array.iteri
    (fun i instr ->
      List.iter
        (fun (r, cls) ->
          match resolve r with
          | Some p when not (Machine.class_allowed machine cls p) ->
              Diag.errorf c "ate-class" (Diag.Instr i)
                "%s in r%d violates class %s"
                (Format.asprintf "%a" Ast.pp_reg r)
                p
                (Machine.rclass_to_string cls)
          | _ -> ())
        (Ast.operand_classes instr);
      match Ast.pair_sources instr with
      | Some (a, b) -> (
          match (resolve a, resolve b) with
          | Some pa, Some pb when not (Machine.pair_compatible machine pa pb)
            ->
              Diag.errorf c "ate-pair" (Diag.Instr i)
                "sources r%d and r%d are not a compatible pair" pa pb
          | _ -> ())
      | None -> ())
    info.Program.instrs;
  let live = Liveness.compute info in
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt phys u, Hashtbl.find_opt phys v) with
      | Some pu, Some pv when pu = pv ->
          Diag.errorf c "ate-interference" (Diag.Vreg u)
            "interfering v%d and v%d share r%d" u v pu
      | _ -> ())
    (Liveness.interference_pairs info live);
  (* major cycles: physical write-once and no read before a later write *)
  let n = Array.length info.Program.instrs in
  let pdefs k =
    List.filter_map resolve
      (List.map (fun v -> Ast.Virt v) (vregs_of (Ast.defs info.Program.instrs.(k))))
  in
  let puses k =
    List.filter_map resolve
      (List.map (fun v -> Ast.Virt v) (vregs_of (Ast.uses info.Program.instrs.(k))))
  in
  for i = 0 to n - 1 do
    let cyc = Program.cycle_of machine i in
    let j = ref (i + 1) in
    while !j < n && Program.cycle_of machine !j = cyc do
      let dj = pdefs !j in
      List.iter
        (fun p ->
          if List.mem p dj then
            Diag.errorf c "ate-cycle-write" (Diag.Instr i)
              "r%d written twice in major cycle %d" p cyc)
        (pdefs i);
      List.iter
        (fun p ->
          if List.mem p dj then
            Diag.errorf c "ate-cycle-read" (Diag.Instr i)
              "r%d read at %d before its write at %d (major cycle %d)" p i !j
              cyc)
        (puses i);
      incr j
    done
  done;
  (* cross-check the repo's own fail-fast validator *)
  (match
     ( Validate.check machine info ~assignment,
       Diag.error_count_in c > 0 )
   with
  | Ok (), true ->
      Diag.warningf c "ate-validator-disagrees" Diag.Global
        "Validate.check accepts an assignment this checker rejects"
  | Error msg, false ->
      Diag.errorf c "ate-validator-disagrees" Diag.Global
        "Validate.check rejects: %s" msg
  | _ -> ());
  Diag.report c
