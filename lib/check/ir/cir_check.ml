(* CIR allocation verifier.

   Three layers of checks over the compiler backend:
   - [func]: structural IR sanity plus a must-define (definite-assignment)
     forward dataflow — every use must be dominated by a definition along
     all paths, which lowered MiniC guarantees (decls default-initialize);
   - [allocation]: a [Regalloc.allocation] against the liveness facts —
     register ranges, class/constraint membership, interference, and
     must-spill consistency;
   - [machine_func]: spill-slot consistency of the rewritten VCPU code
     (slot ranges, scratch-register discipline, physical register
     ranges). *)

open Check
open Cir
module Iset = Set.Make (Int)

(* --- IR structure + definite assignment ------------------------------- *)

let check_structure c (f : Ir.func) =
  let nb = Array.length f.Ir.blocks in
  let nv = Ir.nvregs f in
  Array.iteri
    (fun i (blk : Ir.block) ->
      if blk.Ir.id <> i then
        Diag.errorf c "cir-block-id" (Diag.Block i)
          "block at index %d has id %d" i blk.Ir.id;
      List.iter
        (fun s ->
          if s < 0 || s >= nb then
            Diag.errorf c "cir-branch-target" (Diag.Block i)
              "terminator targets non-existent block %d" s)
        (Ir.successors blk.Ir.term);
      let check_vregs vs =
        List.iter
          (fun v ->
            if v < 0 || v >= nv then
              Diag.errorf c "cir-vreg-range" (Diag.Block i)
                "vreg %%%d out of range [0,%d)" v nv)
          vs
      in
      List.iter
        (fun ins ->
          check_vregs (Ir.defs ins);
          check_vregs (Ir.uses_instr ins))
        blk.Ir.instrs;
      check_vregs (Ir.uses_term blk.Ir.term))
    f.Ir.blocks;
  List.iter
    (fun p ->
      if p < 0 || p >= nv then
        Diag.errorf c "cir-vreg-range" Diag.Global
          "parameter %%%d out of range [0,%d)" p nv)
    f.Ir.params

(* Must-define forward dataflow: IN(entry) = params,
   IN(b) = ∩ over predecessors OUT, OUT(b) = IN(b) ∪ defs(b).
   A use outside the must-define set can read garbage on some path. *)
let check_must_define c (f : Ir.func) =
  let nb = Array.length f.Ir.blocks in
  if nb > 0 then begin
    let nv = Ir.nvregs f in
    let universe = Iset.of_list (List.init nv Fun.id) in
    let params = Iset.of_list f.Ir.params in
    let preds = Array.make nb [] in
    Array.iter
      (fun (blk : Ir.block) ->
        List.iter
          (fun s ->
            if s >= 0 && s < nb then preds.(s) <- blk.Ir.id :: preds.(s))
          (Ir.successors blk.Ir.term))
      f.Ir.blocks;
    let out_ = Array.make nb universe in
    let in_of b =
      if b = 0 then params
      else
        match preds.(b) with
        | [] -> universe (* unreachable: vacuously defined *)
        | ps -> List.fold_left (fun acc p -> Iset.inter acc out_.(p)) universe ps
    in
    let transfer b set =
      List.fold_left
        (fun set ins ->
          List.fold_left (fun s d -> Iset.add d s) set (Ir.defs ins))
        set f.Ir.blocks.(b).Ir.instrs
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 0 to nb - 1 do
        let o = transfer b (in_of b) in
        if not (Iset.equal o out_.(b)) then begin
          out_.(b) <- o;
          changed := true
        end
      done
    done;
    Array.iter
      (fun (blk : Ir.block) ->
        let b = blk.Ir.id in
        let cur = ref (in_of b) in
        let use where v =
          if v >= 0 && v < nv && not (Iset.mem v !cur) then
            Diag.errorf c "cir-use-before-def" (Diag.Block b)
              "%s uses %%%d with no definition on some path" where v
        in
        List.iteri
          (fun i ins ->
            List.iter (use (Printf.sprintf "instr %d" i)) (Ir.uses_instr ins);
            List.iter (fun d -> cur := Iset.add d !cur) (Ir.defs ins))
          blk.Ir.instrs;
        List.iter (use "terminator") (Ir.uses_term blk.Ir.term))
      f.Ir.blocks
  end

let func f =
  let c = Diag.collector () in
  check_structure c f;
  if Diag.error_count_in c = 0 then check_must_define c f;
  Diag.report c

let program (p : Ir.program) =
  (match Ir.check p with
  | Ok () -> []
  | Error msg -> [ Diag.error "cir-structure" Diag.Global "%s" msg ])
  @ List.concat_map
      (fun (f : Ir.func) ->
        Diag.with_context f.Ir.name (func f))
      p.Ir.funcs

(* --- register allocation ---------------------------------------------- *)

let allocation (live : Liveness.t) (alloc : Regalloc.allocation) =
  let c = Diag.collector () in
  let nv = Ir.nvregs live.Liveness.func in
  if Array.length alloc <> nv then
    Diag.errorf c "cir-alloc-length" Diag.Global
      "allocation has %d entries, function has %d vregs" (Array.length alloc)
      nv
  else begin
    Array.iteri
      (fun v loc ->
        (* vregs that never occur carry no constraints *)
        if live.Liveness.intervals.(v) <> (-1, -1) then
          match loc with
          | Regalloc.Spill -> ()
          | Regalloc.Reg r ->
              if r < 0 || r >= Target.num_regs then
                Diag.errorf c "cir-reg-range" (Diag.Vreg v)
                  "physical register %d out of range [0,%d)" r Target.num_regs
              else if not (List.mem r (Regalloc.allowed live v)) then
                Diag.errorf c "cir-class" (Diag.Vreg v)
                  "register P%d violates the vreg's class/constraint set" r)
      alloc;
    List.iter
      (fun (u, v) ->
        match (alloc.(u), alloc.(v)) with
        | Regalloc.Reg ru, Regalloc.Reg rv when ru = rv ->
            Diag.errorf c "cir-interference" (Diag.Vreg u)
              "interfering vregs %%%d and %%%d share register P%d" u v ru
        | _ -> ())
      live.Liveness.interference;
    (* independent cross-check of the repo's own validator *)
    match Regalloc.validate live alloc with
    | Ok () ->
        if Diag.error_count_in c > 0 then
          Diag.warningf c "cir-validator-disagrees" Diag.Global
            "Regalloc.validate accepts an allocation this checker rejects"
    | Error msg ->
        if Diag.error_count_in c = 0 then
          Diag.errorf c "cir-validator-disagrees" Diag.Global
            "Regalloc.validate rejects: %s" msg
  end;
  Diag.report c

(* --- spill-slot consistency over rewritten machine code ---------------- *)

let machine_func (mf : Mach.mfunc) =
  let c = Diag.collector () in
  let slot where s =
    if s < 0 || s >= mf.Mach.nslots then
      Diag.errorf c "cir-slot-range" where
        "stack slot %d out of range [0,%d)" s mf.Mach.nslots
  in
  let reg where r =
    if r < 0 || r >= Target.total_regs then
      Diag.errorf c "cir-preg-range" where
        "physical register %d out of range [0,%d)" r Target.total_regs
  in
  let mval where = function
    | Mach.MReg r -> reg where r
    | Mach.MSlot s -> slot where s
    | Mach.MInt _ | Mach.MFloat _ -> ()
  in
  let scratch where r =
    if r <> Target.scratch0 && r <> Target.scratch1 then
      Diag.errorf c "cir-spill-scratch" where
        "spill code uses non-scratch register %d" r
  in
  Array.iter
    (fun (blk : Mach.mblock) ->
      let where = Diag.Block blk.Mach.id in
      List.iter
        (fun ins ->
          match ins with
          (* both spill forms carry (register, slot) — see Msim *)
          | Mach.MSpill_load (r, s) | Mach.MSpill_store (r, s) ->
              reg where r;
              slot where s;
              scratch where r
          | Mach.MBin (_, d, a, b) ->
              reg where d;
              mval where a;
              mval where b
          | Mach.MMov (d, a) | Mach.MI2f (d, a) | Mach.MF2i (d, a) ->
              reg where d;
              mval where a
          | Mach.MLoad (d, _, a) ->
              reg where d;
              mval where a
          | Mach.MStore (_, a, b) ->
              mval where a;
              mval where b
          | Mach.MLoad_var (d, _) -> reg where d
          | Mach.MStore_var (_, a) -> mval where a
          | Mach.MCall (d, _, args) ->
              Option.iter (reg where) d;
              List.iter (mval where) args
          | Mach.MPrint (_, a) -> mval where a)
        blk.Mach.instrs;
      match blk.Mach.term with
      | Mach.MRet a -> Option.iter (mval where) a
      | Mach.MJmp _ -> ()
      | Mach.MBr (a, _, _) -> mval where a)
    mf.Mach.blocks;
  List.iter
    (fun pl ->
      match pl with
      | Mach.PReg r -> reg Diag.Global r
      | Mach.PSlot s -> slot Diag.Global s)
    mf.Mach.params_loc;
  List.iter
    (fun r ->
      if not (List.mem r Target.callee_saved) then
        Diag.errorf c "cir-callee-saved" Diag.Global
          "callee_saved_used lists non-callee-saved register %d" r)
    mf.Mach.callee_saved_used;
  Diag.report c

(* --- whole-pipeline check for the CLI ---------------------------------- *)

type alloc_kind = Fast | Basic | Greedy | Pbqp

let alloc_of kind (f : Ir.func) (live : Liveness.t) =
  match kind with
  | Fast -> Regalloc.fast f
  | Basic -> Regalloc.basic live
  | Greedy -> Regalloc.greedy live
  | Pbqp -> fst (Alloc_pbqp.solve_scholz live)

let alloc_kind_name = function
  | Fast -> "fast"
  | Basic -> "basic"
  | Greedy -> "greedy"
  | Pbqp -> "pbqp"

(* Compile MiniC source and push every function through IR checks, the
   allocator under [kind], allocation certification, spill rewriting and
   machine-code checks.  For the PBQP allocator the built graph is also
   linted with the base well-formedness analyzer, and — when the graph
   has at most [exact_vertices] live vertices — the allocator's claimed
   PBQP cost is certified against the proven optimum of the exact
   branch-and-bound solver ([Certify.certify_optimal]). *)
let check_source ?(kind = Pbqp) ?(exact_vertices = 0) ?(exact_nodes = 200_000)
    src =
  match Lower.compile src with
  | exception Invalid_argument msg ->
      [ Diag.error "cir-compile" Diag.Global "%s" msg ]
  | prog ->
      let structural = program prog in
      if Diag.has_errors structural then structural
      else
        structural
        @ List.concat_map
            (fun (f : Ir.func) ->
              let live = Liveness.analyze f in
              let per_func =
                (if kind = Pbqp then
                   let b = Alloc_pbqp.build live in
                   Invariants.graph b.Alloc_pbqp.graph
                   @ (if
                        exact_vertices > 0
                        && Pbqp.Graph.n_alive b.Alloc_pbqp.graph
                           <= exact_vertices
                      then (
                        let _, reported = Alloc_pbqp.solve_scholz live in
                        let _, findings =
                          Certify.certify_optimal ~max_nodes:exact_nodes
                            b.Alloc_pbqp.graph ~reported
                        in
                        findings)
                      else [])
                 else [])
                @
                let alloc = alloc_of kind f live in
                allocation live alloc
                @ machine_func (Rewrite.rewrite_func f alloc)
              in
              Diag.with_context (f.Ir.name ^ "/" ^ alloc_kind_name kind)
                per_func)
            prog.Ir.funcs
