(** Solution certifier: accepts a solver's output only after recomputing
    everything from the original graph with its own (deliberately
    independent) cost loop — a bug in [Pbqp.Solution.cost] or in a
    solver's incremental bookkeeping shows up as a certification
    failure here. *)

val default_eps : float

(** Independent cost recomputation over the raw representation: vertex
    terms for every live vertex, each symmetric edge counted once via
    the [u < v] orientation, accumulated in a fixed ascending
    [(u, v)] order so the float sum is reproducible. *)
val recompute : Pbqp.Graph.t -> Pbqp.Solution.t -> Pbqp.Cost.t

(** Well-formedness + admissibility of a claimed solution; with
    [?reported], also recomputed-vs-reported cost agreement within a
    relative [eps]. *)
val solution :
  ?eps:float ->
  ?reported:Pbqp.Cost.t ->
  Pbqp.Graph.t ->
  Pbqp.Solution.t ->
  Diag.finding list

(** [valid g s] iff [solution g s] has no errors. *)
val valid : Pbqp.Graph.t -> Pbqp.Solution.t -> bool

type brute_verdict =
  | Optimal of Pbqp.Cost.t  (** exhaustive search completed *)
  | Skipped of string
      (** The search did not complete and no verdict exists; the payload
          says why (budget exhausted, and at what state count).  An
          explicit non-verdict: callers must surface it rather than
          treat it as a pass. *)
  | Infeasible

val brute_optimum : ?max_states:int -> Pbqp.Graph.t -> brute_verdict

(** A reported cost may not beat the brute-force optimum (when the
    search completes within budget; a [Skipped] verdict surfaces as a
    warning finding, never as a silent pass). *)
val against_brute :
  ?max_states:int ->
  ?eps:float ->
  Pbqp.Graph.t ->
  reported:Pbqp.Cost.t ->
  Diag.finding list

(** {1 Exact-solver oracle} *)

type oracle =
  | Proven of Pbqp.Cost.t
      (** The proven optimum; [Cost.inf] means proven infeasible. *)
  | Oracle_skipped of string
      (** The exact search hit its budget: optimality was {e not}
          certified (surfaced as a warning finding, never a vacuous
          pass). *)

(** [certify_optimal g ~reported] proves the optimum of [g] with the
    branch-and-bound solver ({!Solvers.Exact}) and certifies that
    [reported] does not beat it.  The oracle itself is not trusted: its
    witness solution is re-certified with {!solution} (findings prefixed
    ["exact/"]), and on graphs of at most [brute_cap] live vertices
    (default 8) its optimum is cross-checked against the independent
    exhaustive search — any disagreement is a [certify-exact-vs-brute]
    error. *)
val certify_optimal :
  ?max_nodes:int ->
  ?brute_cap:int ->
  ?brute_states:int ->
  ?eps:float ->
  Pbqp.Graph.t ->
  reported:Pbqp.Cost.t ->
  oracle * Diag.finding list

type solver_run = {
  solver : string;
  cost : Pbqp.Cost.t option;  (** [None]: solver found no solution *)
  findings : Diag.finding list;
}

(** Run the four classic solvers; certify every claimed solution, and
    when the brute-force search completes within budget, cross-check
    the heuristic costs against the optimum and the feasibility claims
    against each other. *)
val classic_solvers :
  ?max_states:int ->
  ?brute_max:int ->
  Pbqp.Graph.t ->
  solver_run list * Diag.finding list

(** [classic_solvers] flattened into one finding list, each rule
    prefixed with the solver's name. *)
val classic_findings :
  ?max_states:int -> ?brute_max:int -> Pbqp.Graph.t -> Diag.finding list
