(** Solution certifier: accepts a solver's output only after recomputing
    everything from the original graph with its own (deliberately
    independent) cost loop — a bug in [Pbqp.Solution.cost] or in a
    solver's incremental bookkeeping shows up as a certification
    failure here. *)

val default_eps : float

(** Independent cost recomputation over the raw representation: vertex
    terms for every live vertex, each symmetric edge counted once via
    the [u < v] orientation, accumulated in a fixed ascending
    [(u, v)] order so the float sum is reproducible. *)
val recompute : Pbqp.Graph.t -> Pbqp.Solution.t -> Pbqp.Cost.t

(** Well-formedness + admissibility of a claimed solution; with
    [?reported], also recomputed-vs-reported cost agreement within a
    relative [eps]. *)
val solution :
  ?eps:float ->
  ?reported:Pbqp.Cost.t ->
  Pbqp.Graph.t ->
  Pbqp.Solution.t ->
  Diag.finding list

(** [valid g s] iff [solution g s] has no errors. *)
val valid : Pbqp.Graph.t -> Pbqp.Solution.t -> bool

type brute_verdict =
  | Optimal of Pbqp.Cost.t  (** exhaustive search completed *)
  | Budget_exhausted
  | Infeasible

val brute_optimum : ?max_states:int -> Pbqp.Graph.t -> brute_verdict

(** A reported cost may not beat the brute-force optimum (when the
    search completes within budget). *)
val against_brute :
  ?max_states:int ->
  ?eps:float ->
  Pbqp.Graph.t ->
  reported:Pbqp.Cost.t ->
  Diag.finding list

type solver_run = {
  solver : string;
  cost : Pbqp.Cost.t option;  (** [None]: solver found no solution *)
  findings : Diag.finding list;
}

(** Run the four classic solvers; certify every claimed solution, and
    when the brute-force search completes within budget, cross-check
    the heuristic costs against the optimum and the feasibility claims
    against each other. *)
val classic_solvers :
  ?max_states:int ->
  ?brute_max:int ->
  Pbqp.Graph.t ->
  solver_run list * Diag.finding list

(** [classic_solvers] flattened into one finding list, each rule
    prefixed with the solver's name. *)
val classic_findings :
  ?max_states:int -> ?brute_max:int -> Pbqp.Graph.t -> Diag.finding list
