(* PBQP well-formedness analyzer.

   [Pbqp.Graph.check] fail-fasts on the first broken internal invariant;
   this pass instead scans the raw representation (the adjacency tables,
   the alive mask, the cost vectors) and reports *every* violation as a
   finding, plus semantic diagnostics the kernel cannot enforce locally:
   NaN / -inf entries, vertices with no admissible color, and arc
   inconsistency (a color that every assignment of some neighbor maps to
   infinite cost — a dead end any search will discover the hard way). *)

open Pbqp

let check_vec c u vec m =
  if Vec.length vec <> m then
    Diag.errorf c "pbqp-cost-length" (Diag.Vertex u)
      "cost vector has length %d, graph has m = %d" (Vec.length vec) m;
  Vec.iteri
    (fun i x ->
      if Float.is_nan x then
        Diag.errorf c "pbqp-nan" (Diag.Vertex u) "cost[%d] is NaN" i
      else if x = Float.neg_infinity then
        Diag.errorf c "pbqp-neg-inf" (Diag.Vertex u) "cost[%d] is -inf" i)
    vec;
  if Vec.is_all_inf vec then
    Diag.errorf c "pbqp-no-color" (Diag.Vertex u)
      "every color is infinite: the graph is unsolvable"

let check_mat c u v muv m =
  if Mat.rows muv <> m || Mat.cols muv <> m then
    Diag.errorf c "pbqp-edge-shape" (Diag.Edge (u, v))
      "edge matrix is %dx%d, expected %dx%d" (Mat.rows muv) (Mat.cols muv) m m
  else begin
    Mat.iteri
      (fun i j x ->
        if Float.is_nan x then
          Diag.errorf c "pbqp-nan" (Diag.Edge (u, v)) "entry (%d,%d) is NaN" i j
        else if x = Float.neg_infinity then
          Diag.errorf c "pbqp-neg-inf" (Diag.Edge (u, v))
            "entry (%d,%d) is -inf" i j)
      muv;
    if Mat.is_zero muv then
      Diag.warningf c "pbqp-zero-edge" (Diag.Edge (u, v))
        "all-zero edge matrix kept (disconnected-iff-zero convention broken)"
  end

(* Arc consistency: color [i] of a live vertex [u] is locally dead when
   some incident edge admits no finite completion for it.  A vertex whose
   every admissible color is locally dead makes the instance infeasible
   even though its own cost vector looks fine. *)
let check_arc_consistency c g u =
  let m = Graph.m g in
  let vec = Graph.cost g u in
  let finite = Vec.finite_indices vec in
  if finite <> [] then begin
    let neighbors = Graph.neighbors g u in
    let locally_dead =
      List.filter
        (fun i ->
          List.exists
            (fun v ->
              let muv = Option.get (Graph.edge_ref g u v) in
              let cv = Graph.cost g v in
              not
                (List.exists
                   (fun j ->
                     Cost.is_finite (Mat.get muv i j)
                     && Cost.is_finite (Vec.get cv j))
                   (List.init m Fun.id)))
            neighbors)
        finite
    in
    List.iter
      (fun i ->
        Diag.warningf c "pbqp-arc-dead" (Diag.Vertex u)
          "color %d is finite but no neighbor assignment completes it finitely"
          i)
      locally_dead;
    if List.length locally_dead = List.length finite then
      Diag.errorf c "pbqp-arc-infeasible" (Diag.Vertex u)
        "every admissible color is arc-inconsistent: the graph is unsolvable"
  end

(* The raw-representation scan: symmetric storage, transposition, no
   self-loops or duplicate/dangling entries, clean dead vertices.  Works
   off [Graph.iter_adjacency], which exposes every stored directed entry
   (including those [fold_edges] filters out). *)
let check_adjacency c (g : Graph.t) =
  let n = Graph.capacity g in
  let m = Graph.m g in
  (* materialize the raw adjacency into per-vertex entry lists *)
  let entries = Array.make (max n 1) [] in
  (Graph.iter_adjacency (fun u v muv -> entries.(u) <- (v, muv) :: entries.(u)) g
   [@analyze.order_insensitive
     "bucketing into per-vertex lists; validation below is per-entry \
      with no accumulation"]);
  Array.iteri
    (fun u es ->
      if u < n && not (Graph.is_alive g u) then begin
        if es <> [] then
          Diag.errorf c "pbqp-dead-adjacency" (Diag.Vertex u)
            "dead vertex still has %d adjacency entries" (List.length es)
      end
      else begin
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (v, muv) ->
            if v = u then
              Diag.errorf c "pbqp-self-loop" (Diag.Vertex u) "self edge"
            else if v < 0 || v >= n then
              Diag.errorf c "pbqp-edge-range" (Diag.Edge (u, v))
                "neighbor id out of range [0,%d)" n
            else if not (Hashtbl.mem seen v) then begin
              Hashtbl.replace seen v ();
              let dups =
                List.length (List.filter (fun (w, _) -> w = v) es)
              in
              if dups > 1 then
                Diag.errorf c "pbqp-duplicate-edge" (Diag.Edge (u, v))
                  "%d parallel entries for the same neighbor" dups;
              if not (Graph.is_alive g v) then
                Diag.errorf c "pbqp-edge-dead" (Diag.Edge (u, v))
                  "edge endpoint %d is dead" v;
              check_mat c u v muv m;
              match List.assoc_opt u entries.(v) with
              | None ->
                  Diag.errorf c "pbqp-asymmetric" (Diag.Edge (u, v))
                    "stored at %d but missing from %d's adjacency" u v
              | Some mvu ->
                  if
                    u < v
                    && Mat.rows muv = m && Mat.cols muv = m
                    && Mat.rows mvu = m && Mat.cols mvu = m
                    && not (Mat.equal mvu (Mat.transpose muv))
                  then
                    Diag.errorf c "pbqp-transpose" (Diag.Edge (u, v))
                      "reverse matrix is not the transpose"
            end)
          es
      end)
    entries

let graph g =
  let c = Diag.collector () in
  let m = Graph.m g in
  if m <= 0 then
    Diag.errorf c "pbqp-shape" Diag.Global "m = %d must be positive" m;
  for u = 0 to Graph.capacity g - 1 do
    if Graph.is_alive g u then check_vec c u (Graph.cost g u) m
  done;
  check_adjacency c g;
  (* arc consistency only once the representation itself is sane *)
  if Diag.error_count_in c = 0 then
    List.iter (fun u -> check_arc_consistency c g u) (Graph.vertices g);
  Diag.report c

(* --- text inputs ----------------------------------------------------- *)

(* [Io.of_string] raises [Invalid_argument "Io.of_string: line %d: %s"];
   recover the line number so CLI findings point at the input. *)
let finding_of_parse_error msg =
  let location, message =
    match String.index_opt msg ':' with
    | Some _ -> (
        try
          Scanf.sscanf msg "Io.of_string: line %d: %[^\n]" (fun l m ->
              (Diag.Line l, m))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          (Diag.Global, msg))
    | None -> (Diag.Global, msg)
  in
  Diag.error "pbqp-parse" location "%s" message

let parse_string s =
  match Io.of_string s with
  | g -> Ok g
  | exception Invalid_argument msg -> Error [ finding_of_parse_error msg ]

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> parse_string s
  | exception Sys_error msg -> Error [ Diag.error "io" Diag.Global "%s" msg ]

let lint_string s =
  match parse_string s with Ok g -> graph g | Error fs -> fs

let lint_file path =
  match parse_file path with Ok g -> graph g | Error fs -> fs
