(* Numerical gradient checker: central finite differences against the
   reverse-mode gradients of nn/ad.ml.  Exposed both as a primitive
   ([scalar]) for tests and as ready-made batteries over every layer type
   and the full policy/value network. *)

let default_eps = 1e-4
let default_tol = 1e-4

(* Check d(f)/d(var) for every var; findings name the offending parameter
   and component.  [f] must build a scalar from a fresh Ad context. *)
let scalar ?(eps = default_eps) ?(tol = default_tol) ~name vars f =
  let c = Diag.collector () in
  let eval () =
    let ctx = Nn.Ad.ctx () in
    Tensor.get1 (Nn.Ad.value (f ctx)) 0
  in
  let ctx = Nn.Ad.ctx () in
  let root = f ctx in
  (if Tensor.numel (Nn.Ad.value root) <> 1 then
     Diag.errorf c "grad-not-scalar" Diag.Global "%s: function is not scalar"
       name
   else begin
     Nn.Ad.backward root;
     List.iter
       (fun (v : Nn.Var.t) ->
         let g =
           match Nn.Ad.var_grad ctx v with
           | Some g -> g
           | None -> Tensor.zeros (Tensor.shape v.Nn.Var.value)
         in
         let data = Tensor.data v.Nn.Var.value in
         let gd = Tensor.data g in
         let worst = ref 0.0 and worst_i = ref (-1) in
         Float.Array.iteri
           (fun i x ->
             Float.Array.set data i (x +. eps);
             let up = eval () in
             Float.Array.set data i (x -. eps);
             let down = eval () in
             Float.Array.set data i x;
             let num = (up -. down) /. (2.0 *. eps) in
             let rel =
               Float.abs (num -. Float.Array.get gd i)
               /. (1.0 +. Float.abs num)
             in
             if rel > !worst then begin
               worst := rel;
               worst_i := i
             end)
           data;
         if !worst > tol then
           Diag.errorf c "grad-mismatch" (Diag.Param v.Nn.Var.name)
             "%s: component %d disagrees with finite differences \
              (relative error %.2e > %.2e)"
             name !worst_i !worst tol)
       vars
   end);
  Diag.report c

(* --- layer battery ---------------------------------------------------- *)

let mkvar name a = Nn.Var.create ~name (Tensor.of_array1 a)

(* Inputs chosen away from the ReLU kink so the subgradient is exact. *)
let probe = [| 0.47; -1.23; 2.01; 0.31 |]

let layer_battery ?eps ?tol () =
  let rng = Random.State.make [| 2024 |] in
  let x = mkvar "x" probe in
  let check name vars f = scalar ?eps ?tol ~name vars f in
  let dim = Array.length probe in
  List.concat
    [
      (let lin =
         Nn.Layer.Linear.create ~rng ~name:"gc.lin" ~in_dim:dim ~out_dim:3
       in
       check "linear" (x :: Nn.Layer.Linear.params lin) (fun ctx ->
           Nn.Ad.sum
             (Nn.Ad.tanh_
                (Nn.Layer.Linear.forward ctx lin (Nn.Ad.of_var ctx x)))));
      check "relu" [ x ] (fun ctx ->
          Nn.Ad.sum (Nn.Ad.relu (Nn.Ad.of_var ctx x)));
      check "tanh" [ x ] (fun ctx ->
          Nn.Ad.sum (Nn.Ad.tanh_ (Nn.Ad.of_var ctx x)));
      (let ln = Nn.Layer.Layernorm.create ~name:"gc.ln" ~dim in
       check "layernorm"
         (x :: Nn.Layer.Layernorm.params ln)
         (fun ctx ->
           Nn.Ad.sum
             (Nn.Ad.tanh_
                (Nn.Layer.Layernorm.forward ctx ln (Nn.Ad.of_var ctx x)))));
      (let res = Nn.Layer.Residual.create ~rng ~name:"gc.res" ~dim in
       check "residual"
         (x :: Nn.Layer.Residual.params res)
         (fun ctx ->
           Nn.Ad.sum
             (Nn.Ad.tanh_
                (Nn.Layer.Residual.forward ctx res (Nn.Ad.of_var ctx x)))));
    ]

(* --- full network ----------------------------------------------------- *)

(* Check the training loss gradient for every parameter of [net] on one
   sample; this exercises the GCN message passing, trunk, heads, and the
   loss itself. *)
let pvnet ?eps ?(tol = 2e-3) net sample =
  scalar ?eps ~tol ~name:"pvnet-loss" (Nn.Pvnet.params net) (fun ctx ->
      Nn.Pvnet.loss net ctx sample)

(* Self-contained battery: a tiny network over a 2-vertex graph, so the
   finite-difference sweep over every parameter stays fast. *)
let pvnet_battery ?eps ?tol () =
  let open Pbqp in
  let net =
    Nn.Pvnet.create
      ~rng:(Random.State.make [| 7 |])
      {
        (Nn.Pvnet.default_config ~m:2) with
        trunk_width = 4;
        trunk_blocks = 1;
        gcn_layers = 1;
      }
  in
  let g = Graph.create ~m:2 ~n:2 in
  Graph.set_cost g 0 (Vec.of_array [| 0.5; 1.0 |]);
  Graph.set_cost g 1 (Vec.of_array [| 0.0; 2.0 |]);
  Graph.add_edge g 0 1 (Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]);
  let sample =
    { Nn.Pvnet.graph = g; next = 0; policy = [| 0.7; 0.3 |]; value = 0.5 }
  in
  pvnet ?eps ?tol net sample
