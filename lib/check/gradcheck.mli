(** Numerical gradient checker: central finite differences against the
    reverse-mode gradients of [nn/ad.ml].  Exposed both as a primitive
    ([scalar]) for tests and as ready-made batteries over every layer
    type and the full policy/value network. *)

val default_eps : float
val default_tol : float

(** Check [d(f)/d(var)] for every var; findings name the offending
    parameter and component.  [f] must build a scalar from a fresh
    [Nn.Ad] context. *)
val scalar :
  ?eps:float ->
  ?tol:float ->
  name:string ->
  Nn.Var.t list ->
  (Nn.Ad.ctx -> Nn.Ad.t) ->
  Diag.finding list

(** One gradient check per layer kind (linear, relu, tanh, layernorm,
    residual) on fixed probe inputs away from the ReLU kink. *)
val layer_battery : ?eps:float -> ?tol:float -> unit -> Diag.finding list

(** Check the training-loss gradient of every parameter of [net] on one
    sample: exercises the GCN message passing, trunk, heads, and the
    loss itself. *)
val pvnet :
  ?eps:float -> ?tol:float -> Nn.Pvnet.t -> Nn.Pvnet.sample -> Diag.finding list

(** Self-contained [pvnet] run: a tiny network over a 2-vertex graph,
    so the finite-difference sweep over every parameter stays fast. *)
val pvnet_battery : ?eps:float -> ?tol:float -> unit -> Diag.finding list
