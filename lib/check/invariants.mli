(** PBQP well-formedness analyzer.

    [Pbqp.Graph.check] fail-fasts on the first broken internal
    invariant; this pass instead scans the raw representation (the
    adjacency tables, the alive mask, the cost vectors) and reports
    {e every} violation as a finding, plus semantic diagnostics the
    kernel cannot enforce locally: NaN / -inf entries, vertices with no
    admissible color, and arc inconsistency. *)

(** Full scan of a graph: representation invariants (symmetric storage,
    transposed reverse matrices, no self-loops / duplicates / dangling
    entries, clean dead vertices), per-vertex cost sanity, and — once
    the representation itself is sane — arc consistency. *)
val graph : Pbqp.Graph.t -> Diag.finding list

(** Parse a textual instance; parse errors come back as findings that
    point at the offending input line. *)
val parse_string : string -> (Pbqp.Graph.t, Diag.finding list) result

val parse_file : string -> (Pbqp.Graph.t, Diag.finding list) result

(** [parse_string] followed by [graph]; parse errors are findings. *)
val lint_string : string -> Diag.finding list

val lint_file : string -> Diag.finding list
