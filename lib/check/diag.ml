(* Findings shared by every checker in lib/check: a severity, a stable
   rule name (kebab-case, greppable), a location in whatever layer the
   checker inspects, and a human message.  Checkers collect findings
   instead of raising so that one pass reports everything it can see. *)

type severity = Error | Warning | Info

type location =
  | Global
  | Vertex of int  (* PBQP vertex *)
  | Edge of int * int  (* PBQP edge *)
  | Vreg of int  (* virtual register, CIR or ATE *)
  | Instr of int  (* linear instruction position *)
  | Block of int  (* CIR basic block *)
  | Param of string  (* network parameter by name *)
  | Line of int  (* line of a text input *)
  | Src of string * int  (* source file and line, for static analysis *)

type finding = {
  severity : severity;
  rule : string;
  location : location;
  message : string;
}

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let finding severity rule location fmt =
  Printf.ksprintf (fun message -> { severity; rule; location; message }) fmt

let error rule location fmt = finding Error rule location fmt
let warning rule location fmt = finding Warning rule location fmt
let info rule location fmt = finding Info rule location fmt

(* Accumulator used by the checkers; findings come back in insertion
   order. *)
type collector = { mutable rev : finding list; mutable n_error : int }

let collector () = { rev = []; n_error = 0 }

let add c f =
  if f.severity = Error then c.n_error <- c.n_error + 1;
  c.rev <- f :: c.rev

let addf c severity rule location fmt =
  Printf.ksprintf
    (fun message -> add c { severity; rule; location; message })
    fmt

let errorf c rule location fmt = addf c Error rule location fmt
let warningf c rule location fmt = addf c Warning rule location fmt
let infof c rule location fmt = addf c Info rule location fmt
let report c = List.rev c.rev
let error_count_in c = c.n_error

let count sev findings =
  List.fold_left
    (fun acc f -> if f.severity = sev then acc + 1 else acc)
    0 findings

let has_errors findings = List.exists (fun f -> f.severity = Error) findings
let errors_only findings = List.filter (fun f -> f.severity = Error) findings

let by_severity findings =
  List.stable_sort
    (fun a b -> compare (severity_rank b.severity) (severity_rank a.severity))
    findings

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_string = function
  | Global -> ""
  | Vertex u -> Printf.sprintf "v%d" u
  | Edge (u, v) -> Printf.sprintf "e(%d,%d)" u v
  | Vreg v -> Printf.sprintf "%%%d" v
  | Instr i -> Printf.sprintf "instr %d" i
  | Block b -> Printf.sprintf "b%d" b
  | Param p -> p
  | Line l -> Printf.sprintf "line %d" l
  | Src (f, l) -> Printf.sprintf "%s:%d" f l

let pp_finding ppf f =
  let loc = location_string f.location in
  Format.fprintf ppf "%s[%s]%s%s: %s"
    (severity_string f.severity)
    f.rule
    (if loc = "" then "" else " ")
    loc f.message

let pp_report ppf findings =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_finding)
    findings

let to_string findings = Format.asprintf "%a" pp_report findings

(* The CLI findings printer shared by pbqp_solve / pbqp_lint / pbqp_serve:
   a header line, then one indented finding per line.  Nothing is printed
   for an empty list. *)
let print_findings ?(oc = stdout) header findings =
  if findings <> [] then begin
    Printf.fprintf oc "%s\n" header;
    List.iter
      (fun f ->
        Printf.fprintf oc "  %s\n" (Format.asprintf "%a" pp_finding f))
      findings
  end

let summary findings =
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error findings)
    (count Warning findings) (count Info findings)

(* Prefix every finding's rule, used by batteries that aggregate several
   sub-checks under one namespace. *)
let with_context ctx findings =
  List.map (fun f -> { f with message = ctx ^ ": " ^ f.message }) findings

let exit_code findings = if has_errors findings then 1 else 0
