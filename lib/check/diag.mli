(** Findings shared by every checker in [lib/check] (and by the static
    analyzer in [lib/analyze]): a severity, a stable kebab-case rule
    name, a location in whatever layer the checker inspects, and a human
    message.  Checkers collect findings instead of raising so that one
    pass reports everything it can see. *)

type severity = Error | Warning | Info

type location =
  | Global
  | Vertex of int  (** PBQP vertex *)
  | Edge of int * int  (** PBQP edge *)
  | Vreg of int  (** virtual register, CIR or ATE *)
  | Instr of int  (** linear instruction position *)
  | Block of int  (** CIR basic block *)
  | Param of string  (** network parameter by name *)
  | Line of int  (** line of a text input *)
  | Src of string * int  (** source file and line, for static analysis *)

type finding = {
  severity : severity;
  rule : string;
  location : location;
  message : string;
}

val severity_rank : severity -> int

(** [finding sev rule loc fmt ...] builds a finding with a printf-style
    message. *)
val finding :
  severity -> string -> location -> ('a, unit, string, finding) format4 -> 'a

val error : string -> location -> ('a, unit, string, finding) format4 -> 'a
val warning : string -> location -> ('a, unit, string, finding) format4 -> 'a
val info : string -> location -> ('a, unit, string, finding) format4 -> 'a

(** Accumulator used by the checkers; findings come back in insertion
    order. *)
type collector

val collector : unit -> collector
val add : collector -> finding -> unit

val addf :
  collector ->
  severity ->
  string ->
  location ->
  ('a, unit, string, unit) format4 ->
  'a

val errorf :
  collector -> string -> location -> ('a, unit, string, unit) format4 -> 'a

val warningf :
  collector -> string -> location -> ('a, unit, string, unit) format4 -> 'a

val infof :
  collector -> string -> location -> ('a, unit, string, unit) format4 -> 'a

(** Findings in insertion order. *)
val report : collector -> finding list

(** Errors added so far (cheaper than filtering [report]). *)
val error_count_in : collector -> int

val count : severity -> finding list -> int
val has_errors : finding list -> bool
val errors_only : finding list -> finding list

(** Stable sort, most severe first. *)
val by_severity : finding list -> finding list

val severity_string : severity -> string
val location_string : location -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit

val print_findings : ?oc:out_channel -> string -> finding list -> unit
(** The CLI report form shared by the binaries: a header line and one
    indented finding per line; prints nothing for an empty list. *)

val to_string : finding list -> string

(** ["%d error(s), %d warning(s), %d info"]. *)
val summary : finding list -> string

(** Prefix every finding's message with [ctx ^ ": "], used by batteries
    that aggregate several sub-checks under one namespace. *)
val with_context : string -> finding list -> finding list

(** 1 when any finding is an [Error], 0 otherwise. *)
val exit_code : finding list -> int
