(** Certification harness for the int8 quantized serving path.

    The quantized forward ([Pvnet.predict_prepared_quantized_unsafe]) is
    an approximation of the float forward; it may only serve after this
    harness has measured the approximation error on a battery of seeded
    random PBQP states and found it within bounds.  Three properties are
    checked per state, float path vs int8 path:

    - {b policy argmax agreement} on {e decisive} states — states where
      the float priors' top-1/top-2 gap is at least [decisive_margin]
      (near-tie states are excluded: their argmax is not meaningful and
      flips under any perturbation, quantized or not);
    - {b prior L∞}: the largest absolute prior difference over the
      colors stays below [max_prior_linf];
    - {b value error}: the absolute value-head difference stays below
      [max_value_err].

    [certify] runs the battery and installs the certificate
    ([Pvnet.mark_quantized_certified]) iff no bound was violated; on any
    violation it clears the certificate instead.  The certificate is
    version-stamped, so any later weight mutation silently revokes it. *)

type config = {
  seed : int;  (** RNG seed for the graph battery (deterministic) *)
  graphs : int;  (** number of seeded graphs *)
  n : int;  (** vertices per graph *)
  p_edge : float;
  p_inf : float;
  decisive_margin : float;
      (** float top-1/top-2 prior gap above which a state counts as
          decisive and its argmax must be preserved *)
  max_prior_linf : float;
  max_value_err : float;
}

val default : config
(** 8 graphs of 24 vertices, [p_edge = 0.3], [p_inf = 0.05],
    [decisive_margin = 0.05], [max_prior_linf = 0.05],
    [max_value_err = 0.1] (the value head is a tanh in [-1, 1]). *)

type report = {
  states : int;  (** states evaluated (one per live vertex per graph) *)
  decisive : int;  (** states subject to the argmax check *)
  argmax_flips : int;
  prior_linf : float;  (** worst prior L∞ observed *)
  value_err : float;  (** worst absolute value error observed *)
  findings : Diag.finding list;
}

val run : ?config:config -> Nn.Pvnet.t -> report
(** Measure only; never touches the certificate.  Findings carry one
    error per violated bound (rules [quant-argmax], [quant-prior],
    [quant-value]) plus an info summary. *)

val certify : ?config:config -> Nn.Pvnet.t -> report
(** {!run}, then [mark_quantized_certified] on a clean report or
    [clear_quantized_certificate] on a dirty one. *)

val certified : report -> bool
(** Whether the report is clean (no error findings). *)
