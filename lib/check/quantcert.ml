type config = {
  seed : int;
  graphs : int;
  n : int;
  p_edge : float;
  p_inf : float;
  decisive_margin : float;
  max_prior_linf : float;
  max_value_err : float;
}

let default =
  {
    seed = 1789;
    graphs = 8;
    n = 24;
    p_edge = 0.3;
    p_inf = 0.05;
    decisive_margin = 0.05;
    max_prior_linf = 0.05;
    max_value_err = 0.1;
  }

type report = {
  states : int;
  decisive : int;
  argmax_flips : int;
  prior_linf : float;
  value_err : float;
  findings : Diag.finding list;
}

(* Top-1 index and top-1/top-2 gap of a prior vector; [None] when the
   state is a dead end (all-zero priors, no meaningful argmax). *)
let top2 (p : float array) =
  let best = ref (-1) and bv = ref neg_infinity and sv = ref neg_infinity in
  Array.iteri
    (fun i x ->
      if x > !bv then begin
        sv := !bv;
        bv := x;
        best := i
      end
      else if x > !sv then sv := x)
    p;
  if !bv <= 0.0 then None
  else Some (!best, !bv -. max !sv 0.0)

let run ?(config = default) net =
  let cfg = config in
  let m = (Nn.Pvnet.config net).Nn.Pvnet.m in
  let rng = Random.State.make [| cfg.seed |] in
  let c = Diag.collector () in
  let states = ref 0 and decisive = ref 0 and flips = ref 0 in
  let worst_prior = ref 0.0 and worst_value = ref 0.0 in
  for gi = 0 to cfg.graphs - 1 do
    let g =
      Pbqp.Generate.erdos_renyi ~rng
        {
          Pbqp.Generate.default with
          n = cfg.n;
          m;
          p_edge = cfg.p_edge;
          p_inf = cfg.p_inf;
        }
    in
    let verts = Array.of_list (Pbqp.Graph.vertices g) in
    let preps =
      Array.map (fun v -> Nn.Pvnet.prepare net g ~next:v) verts
    in
    let float_out = Nn.Pvnet.predict_prepared net preps in
    let quant_out = Nn.Pvnet.predict_prepared_quantized_unsafe net preps in
    Array.iteri
      (fun i v ->
        incr states;
        let pf, vf = float_out.(i) and pq, vq = quant_out.(i) in
        let linf = ref 0.0 in
        for j = 0 to m - 1 do
          let d = Float.abs (pf.(j) -. pq.(j)) in
          if d > !linf then linf := d
        done;
        if !linf > !worst_prior then worst_prior := !linf;
        if !linf > cfg.max_prior_linf then
          Diag.errorf c "quant-prior" (Diag.Vertex v)
            "graph %d vertex %d: prior L-inf %.2e exceeds bound %.2e" gi v
            !linf cfg.max_prior_linf;
        let dv = Float.abs (vf -. vq) in
        if dv > !worst_value then worst_value := dv;
        if dv > cfg.max_value_err then
          Diag.errorf c "quant-value" (Diag.Vertex v)
            "graph %d vertex %d: value error %.2e exceeds bound %.2e" gi v dv
            cfg.max_value_err;
        match top2 pf with
        | Some (best, gap) when gap >= cfg.decisive_margin ->
            incr decisive;
            (match top2 pq with
            | Some (qbest, _) when qbest = best -> ()
            | _ ->
                incr flips;
                Diag.errorf c "quant-argmax" (Diag.Vertex v)
                  "graph %d vertex %d: decisive argmax flipped (float gap \
                   %.3f)"
                  gi v gap)
        | _ -> ())
      verts
  done;
  Diag.infof c "quant-summary" Diag.Global
    "%d states (%d decisive): %d argmax flips, prior L-inf %.2e (bound \
     %.2e), value err %.2e (bound %.2e)"
    !states !decisive !flips !worst_prior cfg.max_prior_linf !worst_value
    cfg.max_value_err;
  {
    states = !states;
    decisive = !decisive;
    argmax_flips = !flips;
    prior_linf = !worst_prior;
    value_err = !worst_value;
    findings = Diag.report c;
  }

let certified r = not (Diag.has_errors r.findings)

let certify ?config net =
  let r = run ?config net in
  if certified r then Nn.Pvnet.mark_quantized_certified net
  else Nn.Pvnet.clear_quantized_certificate net;
  r
