type config = {
  mcts : Mcts.config;
  temperature_moves : int;
  root_noise : (float * float) option;
}

let default_config =
  { mcts = Mcts.default_config; temperature_moves = 0; root_noise = None }

type outcome = {
  solution : Pbqp.Solution.t option;
  cost : Pbqp.Cost.t;
  nodes : int;
}

let sample_index rng (p : float array) =
  let total = Array.fold_left ( +. ) 0.0 p in
  if total <= 0.0 then invalid_arg "Episode: empty policy";
  let x = Random.State.float rng total in
  let acc = ref 0.0 and chosen = ref (-1) in
  Array.iteri
    (fun i pi ->
      if !chosen < 0 then begin
        acc := !acc +. pi;
        if x < !acc then chosen := i
      end)
    p;
  if !chosen < 0 then
    (* float roundoff: fall back to the last positive entry *)
    Array.iteri (fun i pi -> if pi > 0.0 then chosen := i) p;
  !chosen

let argmax (p : float array) =
  let best = ref 0 in
  Array.iteri (fun i pi -> if pi > p.(!best) then best := i) p;
  !best

(* State-representation adapter: the one loop below drives both the
   persistent State game and the incremental cursor game. *)
type 'a driver = {
  game : 'a Mcts.game;
  next_vertex : 'a -> int option;
  sample_graph : 'a -> Pbqp.Graph.t;
      (* snapshot for a training tuple; must outlive the episode *)
  finish : 'a -> Pbqp.Cost.t * Pbqp.Solution.t option;
}

let play_driver ?(collect = false) ~rng driver config state =
  let game = driver.game in
  let tree = Mcts.create config.mcts game state in
  let samples = ref [] in
  let move = ref 0 in
  let rec loop () =
    let st = Mcts.root_state tree in
    if game.Mcts.is_terminal st then ()
    else begin
      (match config.root_noise with
      | Some (epsilon, alpha) -> Mcts.add_root_noise ~rng ~epsilon ~alpha tree
      | None -> ());
      Mcts.run tree;
      let p = Mcts.policy tree in
      (if collect then
         match driver.next_vertex st with
         | Some next ->
             samples :=
               {
                 Nn.Pvnet.graph = driver.sample_graph st;
                 next;
                 policy = Array.copy p;
                 value = 0.0;
               }
               :: !samples
         | None -> ());
      let a =
        if !move < config.temperature_moves then sample_index rng p
        else argmax p
      in
      incr move;
      Mcts.advance tree a;
      loop ()
    end
  in
  loop ();
  let cost, solution = driver.finish (Mcts.root_state tree) in
  ( { solution; cost; nodes = Mcts.nodes_created tree },
    List.rev !samples )

let finish_state st =
  let cost = Game.final_cost st in
  let solution =
    if State.is_complete st && Pbqp.Cost.is_finite cost then
      Some (State.assignment st)
    else None
  in
  (cost, solution)

let play ?collect ?(batched = true) ?cache ?serve ~rng ~net ~mode config state
    =
  let m = State.m state in
  play_driver ?collect ~rng
    {
      game = Game.make ~batched ?cache ?serve ~net ~mode ~m ();
      next_vertex = State.next_vertex;
      sample_graph = State.graph;
      finish = finish_state;
    }
    config state

let finish_cursor c =
  let cost = Game.cursor_final_cost c in
  let solution =
    if Istate.Cursor.is_complete c && Pbqp.Cost.is_finite cost then
      Some (Istate.Cursor.assignment c)
    else None
  in
  (cost, solution)

let play_incremental ?collect ?(batched = true) ?cache ?serve ~rng ~net ~mode
    config state =
  let m = State.m state in
  let ist = Istate.of_state state in
  play_driver ?collect ~rng
    {
      game = Game.make_incremental ~batched ?cache ?serve ~net ~mode ~m ();
      next_vertex = Istate.Cursor.next_vertex;
      sample_graph = Istate.Cursor.graph_snapshot;
      finish = finish_cursor;
    }
    config
    (Istate.Cursor.root ist)

let set_values v samples =
  List.map (fun s -> { s with Nn.Pvnet.value = v }) samples
