(* Zobrist-style incremental state hashing for the evaluation cache.

   A game state is (graph instance, coloring order, sequence of chosen
   colors); its hash is the graph's base key xor'ed with one move key per
   colored prefix position.  Move keys depend on (depth, vertex, color),
   so two different move sequences never share a key by commutation —
   each depth contributes exactly once per path, making xor safe for the
   down-only maintenance both State.apply and the Istate cursors do.

   Keys come from the splitmix64 finalizer instead of a random table: no
   per-instance setup, no table sizing, and the avalanche behavior is
   well studied.  Truncated to OCaml's 62 positive bits. *)

let mix (x : int) : int =
  let open Int64 in
  let z = mul (add (of_int x) 1L) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z (of_int Stdlib.max_int))

let base ~uid = mix uid
let move ~depth ~vertex ~color ~m = mix (mix ((vertex * m) + color) + depth)
