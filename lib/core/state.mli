(** PBQP game states in reduced-graph form (paper §III-C, §IV-B).

    A state is the yet-uncolored remainder of the instance: colored
    vertices have been {e detached}, their selected matrix rows folded
    into the neighbors' cost vectors, and their own selected costs
    accumulated into [base_cost].  By the equivalence of Fig. 3, the cost
    of the final assignment on the original graph equals the accumulated
    [base_cost] when the game completes.

    States are persistent (transitions copy the graph), as the MCTS tree
    requires. *)

open Pbqp

type t

val of_graph : ?order:int array -> Graph.t -> t
(** Initial state.  [order] is the fixed coloring order (a permutation of
    the vertex ids, see {!Order}); defaults to increasing id.  The graph is
    copied.  @raise Invalid_argument if [order] is not a permutation of
    the live vertices. *)

val m : t -> int

val next_vertex : t -> int option
(** The vertex the next action colors; [None] when all are colored. *)

val next_cost_vector : t -> Vec.t option
(** Current (reduced) cost vector of the next vertex. *)

val legal : t -> int -> bool
(** Color [c] is legal iff the next vertex's entry for [c] is finite. *)

val is_complete : t -> bool

val is_dead_end : t -> bool
(** Some vertex still to color has an all-∞ cost vector.  Checking every
    remaining vertex (not just the next) detects failures as early as the
    information exists, like the graph manager of §IV-B.  Stops at the
    first dead vertex found. *)

val has_dead_vertex : Pbqp.Graph.t -> int array -> pos:int -> bool
(** The scan behind {!is_dead_end}, shared with the incremental state:
    does any vertex of [order.(pos ..)] have an all-∞ cost vector in [g]?
    Short-circuits on the first hit. *)

val is_terminal : t -> bool
(** Complete or dead end. *)

val apply : t -> int -> t
(** The transition 𝒯 of §IV-B: color the next vertex, fold its selected
    row into each live neighbor, detach it.
    @raise Invalid_argument if complete or the color is illegal. *)

val base_cost : t -> Cost.t
(** Accumulated cost of the colored prefix (the final Equation-1 cost when
    complete). *)

val assignment : t -> Solution.t
(** Colors chosen so far (over original vertex ids). *)

val graph : t -> Graph.t
(** The reduced graph itself (do not mutate). *)

val order : t -> int array
(** The fixed coloring order (a copy). *)

val colored_count : t -> int

val remaining : t -> int

val hash : t -> int
(** Incrementally maintained {!Zhash} key of (graph instance, colored
    prefix) — equal for states reached by the same moves on copies of the
    same instance, including [Istate] cursors.  Keys the evaluation
    cache. *)

val pp : Format.formatter -> t -> unit
