(** Bounded FIFO replay buffer of training tuples (paper §V-A: fresh
    episode data is enqueued into a fixed-size queue of previous data "to
    avoid a radical update of the DNN"). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val add : t -> Nn.Pvnet.sample -> unit
(** Evicts the oldest sample when full. *)

val add_list : t -> Nn.Pvnet.sample list -> unit
val length : t -> int
val capacity : t -> int

val sample_batch :
  rng:Random.State.t -> t -> int -> Nn.Pvnet.sample list
(** Uniform sample with replacement; at most [length t] distinct tuples.
    Empty list if the buffer is empty. *)

(** {1 Sample wire codec}

    One sample as a self-delimiting text block — the unit format shared
    by replay checkpoint files and the distributed trainer's
    actor→learner sample frames.  Floats are rendered [%.17g], so a
    round-trip is value-exact. *)

val sample_to_string : Nn.Pvnet.sample -> string

val samples_of_string : string -> Nn.Pvnet.sample list
(** Parse zero or more concatenated sample blocks.
    @raise Invalid_argument on malformed blocks. *)

(** {1 Persistence}

    Checkpointing for long (paper-scale) training runs: the buffer's
    tuples — including their reduced-graph states — round-trip through a
    text file. *)

val save : t -> string -> unit

val load : string -> t
(** @raise Invalid_argument on malformed files. *)
