(** One self-play of the PBQP game without backtracking (paper §IV-A,
    Fig. 1): repeat { run MCTS on the current state; pick a color from the
    visit distribution; transition } until the game ends.

    With [collect = true] the per-move training tuples are returned; their
    [value] fields are placeholders (0) — the caller fills in the final
    reward once it is known (the comparison with the best player happens
    outside the episode). *)

open Pbqp

type config = {
  mcts : Mcts.config;
  temperature_moves : int;
      (** sample actions from π for this many opening moves, then play
          argmax (0 = always argmax, the inference behavior) *)
  root_noise : (float * float) option;
      (** [(epsilon, alpha)]: AlphaZero Dirichlet noise mixed into root
          priors before each move's search — self-play exploration;
          [None] for inference *)
}

val default_config : config

type outcome = {
  solution : Solution.t option;  (** [None] on a dead end *)
  cost : Cost.t;  (** [inf] on a dead end *)
  nodes : int;  (** states created in the game tree *)
}

val play :
  ?collect:bool ->
  ?batched:bool ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  rng:Random.State.t ->
  net:Nn.Pvnet.t ->
  mode:Game.mode ->
  config ->
  State.t ->
  outcome * Nn.Pvnet.sample list
(** [batched] (default [true]), [cache] and [serve] are forwarded to
    {!Game.make}: [~batched:false] forces scalar per-leaf network
    evaluation — the pre-batching baseline used by the equivalence tests
    and benchmarks — [cache] short-circuits repeated leaf evaluations,
    and [serve] coalesces wave evaluations across pool workers.  Search
    results are bit-identical in every combination. *)

val play_incremental :
  ?collect:bool ->
  ?batched:bool ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  rng:Random.State.t ->
  net:Nn.Pvnet.t ->
  mode:Game.mode ->
  config ->
  State.t ->
  outcome * Nn.Pvnet.sample list
(** {!play} over a trail state ({!Istate}) instead of persistent copies:
    the given fresh state (no colored vertices — see {!Istate.of_state})
    seeds one shared mutable graph, MCTS holds cursors into it, and each
    simulated move costs O(deg) push/pop instead of an O(V+E) graph
    copy.  Outcomes, node counts and collected samples (snapshotted per
    move) are bit-identical to {!play} on the same inputs. *)

val set_values : float -> Nn.Pvnet.sample list -> Nn.Pvnet.sample list
(** Stamp the final reward on every tuple of the episode (§II-C: "all
    tuples of this game will have the same v value"). *)
