(** The backtracking coloring driver (paper §IV-E).

    Plain Deep-RL coloring is a one-way walk; on the 0/∞ ATE instances it
    can reach a dead end even with MCTS look-ahead.  This driver cancels
    the most recent coloring when that happens, re-plans the parent state
    with additional MCTS simulations (the dead end "was probably due to a
    lack of thinking time"), and tries the next-best untried color —
    chronological backtracking over the whole game, with the accumulated
    game tree (and its node counter) shared across retries.

    [replan = false] is the §V-B ablation: on a dead end just take the
    next-highest-probability color from the original ranking without
    extending the tree. *)

open Pbqp

type config = {
  mcts : Mcts.config;
  enabled : bool;  (** [false] = the paper's variant (a): fail on dead end *)
  replan : bool;
  max_backtracks : int;
  rollout : (State.t -> float) option;
      (** optional leaf roll-out blending (see {!Rollout}) *)
}

val default_config : config
(** backtracking on, replanning on, [max_backtracks = 100_000]. *)

type result = {
  solution : Solution.t option;
  cost : Cost.t;
  nodes : int;  (** total states created in the game tree, incl. re-plans *)
  backtracks : int;
  budget_exhausted : bool;
}

val solve :
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  net:Nn.Pvnet.t -> mode:Game.mode -> config -> State.t -> result
(** [cache] and [serve] are forwarded to {!Game.make} — backtracking
    revisits tree ancestors, so repeated leaf evaluations short-circuit,
    and wave evaluations can coalesce across pool workers. *)

val solve_incremental :
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  net:Nn.Pvnet.t -> mode:Game.mode -> config -> State.t -> result
(** {!solve} over a trail state ({!Istate}): the fresh input state seeds
    one shared mutable graph and MCTS walks it with O(deg) push/pop
    instead of per-move graph copies.  Results (solution, cost, node and
    backtrack counts) are bit-identical to {!solve}.  [config.rollout]
    is unsupported here.
    @raise Invalid_argument if [config.rollout] is set. *)
