(** The user-facing Deep-RL PBQP solver (the paper's contribution,
    assembled).

    Two entry points mirroring the paper's two settings:
    {!solve_feasible} is the ATE register-allocation mode — 0/∞ costs,
    any zero-cost solution acceptable, backtracking on by default;
    {!minimize} is the general LLVM-style mode — minimize the cost sum,
    no backtracking (§V-C: there are no dead ends when spilling is
    possible). *)

open Pbqp

type stats = {
  nodes : int;  (** states generated in the game tree (Fig. 6 metric) *)
  backtracks : int;
}

val solve_exact :
  ?max_nodes:int ->
  ?max_seconds:float ->
  Graph.t ->
  Solvers.Exact.outcome * stats
(** The exact branch-and-bound solver ({!Solvers.Exact}) behind the same
    stats surface as the Deep-RL entry points — proves the optimum (or
    infeasibility) within its budget, or returns
    [Solvers.Exact.Timeout incumbent].  [backtracks] reports pruned
    subtrees. *)

val solve_feasible :
  net:Nn.Pvnet.t ->
  ?mcts:Mcts.config ->
  ?order:Order.kind ->
  ?backtracking:bool ->
  ?replan:bool ->
  ?max_backtracks:int ->
  ?exact_reduce:bool ->
  ?rollouts:bool ->
  ?incremental:bool ->
  ?eval_cache:int ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  ?rng:Random.State.t ->
  Graph.t ->
  Solution.t option * stats
(** Find any finite-cost solution.  Default order: decreasing liberty
    (§IV-E); default [mcts.k]: 50.  [rng] is only needed for
    [~order:Random].

    [incremental] (default false) runs the search on the trail-based
    {!Istate} — O(deg) apply/undo instead of per-move graph copies, with
    bit-identical results; incompatible with [rollouts].  A positive
    [eval_cache] gives the solve an LRU transposition cache of that many
    network evaluations (see {!Nn.Evalcache}), also result-preserving.

    [cache] supplies an external (possibly striped, pool-shared)
    evaluation cache instead — it takes precedence over [eval_cache] —
    and [serve] routes wave evaluations through a cross-worker
    {!Nn.Infer} service so unrelated concurrent solves coalesce into
    shared forward batches.  Both preserve results bitwise; they are the
    serving-tier hooks ({!Serve.Daemon}).

    [exact_reduce] (default false) is a hybrid extension beyond the
    paper: the equivalence-preserving R0/R1/R2 reductions strip the easy
    periphery first, the Deep-RL search runs only on the residual hard
    core, and the periphery is reconstructed exactly — fewer game-tree
    nodes for the same answers. *)

val minimize :
  net:Nn.Pvnet.t ->
  ?mcts:Mcts.config ->
  ?order:Order.kind ->
  ?reference:Cost.t ->
  ?shaping:float ->
  ?exact_reduce:bool ->
  ?rollouts:bool ->
  ?incremental:bool ->
  ?eval_cache:int ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  ?rng:Random.State.t ->
  Graph.t ->
  (Solution.t * Cost.t) option * stats
(** Minimize the cost sum.  [incremental]/[eval_cache]/[cache]/[serve] as in
    {!solve_feasible}.  [reference] anchors the search's terminal
    values (defaults to the Scholz–Eckstein cost of the graph);
    [shaping] (default 5.0) smooths the comparison reward.  [rollouts]
    blends greedy roll-out values into leaf evaluation (see {!Rollout}; an
    extension beyond the paper, default off).  [None] only on instances
    with dead ends (impossible when a spill option keeps every cost vector
    finite). *)
