(** Incremental (trail-based) PBQP game states.

    The mutable counterpart of {!State}: one shared graph is mutated in
    place, every {!apply} records an O(deg) memo of the move's effect on
    its move-tree node — the detached vertex with its physical incident
    matrices, the neighbors' cost vectors before {e and} after the move,
    the base cost before and after — and {!undo} restores the before
    side exactly (saved values are re-installed wholesale, never
    recomputed, so a pop is bit-exact in floating point).  Replaying an
    already-memoized tree edge — the common case when MCTS re-descends an
    existing branch — re-installs the after side the same way: no float
    recomputation, no allocation.  An MCTS simulation walks down and back
    up the move tree with {e zero} graph copies.

    {!Cursor} values are pure identities of positions in the move tree
    (shared parent-linked paths); any query on a cursor first {e seeks}
    the trail to that position (pop to the lowest common ancestor, replay
    the suffix).  MCTS stores cursors in its nodes and its root-to-leaf
    access pattern makes seeking O(1) amortized trail moves per query.
    The persistent {!State} remains the oracle: states reached by the
    same moves are structurally bit-equal, as the differential tests
    assert. *)

open Pbqp

type t

val of_graph : ?order:int array -> Graph.t -> t
(** Mirror of {!State.of_graph}: copies the graph, validates [order].
    @raise Invalid_argument if [order] is not a permutation of the live
    vertices. *)

val of_state : State.t -> t
(** Trail twin of a fresh persistent state — same instance (uid), same
    order, so {!hash}/{!Cursor.hash} agree with {!State.hash} move for
    move.  @raise Invalid_argument if the state has colored vertices. *)

(** {1 Direct trail operations} *)

val apply : t -> int -> unit
(** Color the next vertex (the transition 𝒯 of §IV-B), recording the
    undo/redo memo.  Same float operations as {!State.apply}.
    @raise Invalid_argument if complete or the color is illegal. *)

val undo : t -> unit
(** Revert the most recent {!apply} exactly.
    @raise Invalid_argument at the root. *)

val m : t -> int
val depth : t -> int
val next_vertex : t -> int option
val legal : t -> int -> bool
val is_complete : t -> bool
val is_dead_end : t -> bool
val is_terminal : t -> bool
val base_cost : t -> Cost.t
val assignment : t -> Solution.t
(** A copy. *)

val graph : t -> Graph.t
(** The live shared graph — valid only until the next apply/undo/seek. *)

val hash : t -> int
(** {!Zhash} key of the current position (= {!State.hash} of the
    equivalent persistent state). *)

(** {1 Cursors — what MCTS holds} *)

module Cursor : sig
  type istate := t
  type t

  val root : istate -> t
  (** Cursor at the trail state's initial (empty-prefix) position. *)

  val apply : t -> int -> t
  (** Pure tree extension: returns the child cursor, O(1) plus a seek.
      @raise Invalid_argument if complete or the color is illegal. *)

  val istate : t -> istate
  val depth : t -> int
  val color : t -> int  (** move that produced this position; -1 at root *)

  val hash : t -> int
  (** O(1), no seek — cursors carry their hash. *)

  val next_vertex : t -> int option
  val legal : t -> int -> bool
  val is_complete : t -> bool
  val is_dead_end : t -> bool
  val is_terminal : t -> bool
  val base_cost : t -> Cost.t
  val assignment : t -> Solution.t

  val graph : t -> Graph.t
  (** Seeks, then returns the live shared graph — valid only until any
      other cursor of the same trail state is queried. *)

  val graph_snapshot : t -> Graph.t
  (** A private copy that outlives further trail motion (shared immutable
      matrices, fresh vectors/tables) — for replay samples. *)

  val sync : t -> unit
  (** Seek the trail to this cursor explicitly (queries do it
      implicitly).  All cursors must come from the same trail state. *)
end
