(** Exact supervision labels: [(graph, assignment, cost)] records whose
    assignment is a {e proven-optimal} coloring (from {!Solvers.Exact}),
    for supervised pretraining of the policy/value net.

    A label expands into one training tuple per move ({!to_samples}): the
    state walk replays the optimal assignment in a coloring order, with a
    one-hot policy at the optimal color and value +1 (the optimal line of
    play wins-or-ties any opponent under the comparison reward of
    §III-B).  {!Train} can seed its replay buffer from a label file
    before self-play begins (the [pretrain_labels] config field /
    [bin/train --pretrain-labels]). *)

open Pbqp

type t = {
  graph : Graph.t;
  assignment : Solution.t;  (** complete over the graph's live vertices *)
  cost : Cost.t;  (** the proven optimum (Equation 1 of [assignment]) *)
}

val of_exact :
  ?max_nodes:int -> ?max_seconds:float -> Graph.t -> t option
(** Solve [g] exactly and wrap the proven optimum; [None] when the exact
    search times out or the instance is infeasible. *)

val to_samples :
  ?order:Order.kind ->
  ?rng:Random.State.t ->
  ?value:float ->
  t ->
  Nn.Pvnet.sample list
(** One tuple per move of the optimal assignment replayed in [order]
    (default [By_id], matching self-play); [value] defaults to [+1.0].
    @raise Invalid_argument if the assignment is not a legal play of its
    graph. *)

(** {1 Persistence}

    Line-oriented text, one record per [label .. endlabel] block:
    {v
    label <cost>
    assign <c_0> ... <c_{capacity-1}>   # -1 = unassigned (dead vertex)
    <graph in Pbqp.Io format>
    endlabel
    v} *)

val save : string -> t list -> unit
val load : string -> t list
(** @raise Invalid_argument with a descriptive message on malformed
    input. *)
