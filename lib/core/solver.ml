

type stats = { nodes : int; backtracks : int }

let make_state ?rng ~order g =
  let order = Order.compute ?rng order g in
  State.of_graph ~order g

(* Run [solve] on the R0/R1/R2-residual core and reconstruct the easy
   periphery exactly. *)
let with_exact_reduction g solve =
  let residual, reduction = Solvers.Scholz.reduce_exact g in
  match solve residual with
  | None, stats -> (None, stats)
  | Some sol, stats ->
      let sol = Pbqp.Solution.copy sol in
      Solvers.Scholz.complete reduction sol;
      (Some sol, stats)

(* Route to the persistent or the trail-based driver; a positive
   [eval_cache] gives the solve its own transposition cache (repeated
   positions appear across backtracking replans and retreats).  An
   explicit [cache] (possibly striped-shared across a serving pool)
   takes precedence; [serve] routes wave evaluations through the
   cross-worker Nn.Infer service — both result-preserving. *)
let backtrack_solve ?cache ?serve ~incremental ~eval_cache ~net ~mode config
    state =
  let cache =
    match cache with
    | Some _ -> cache
    | None ->
        if eval_cache > 0 then Some (Nn.Cache.local ~capacity:eval_cache)
        else None
  in
  if incremental then
    Backtrack.solve_incremental ?cache ?serve ~net ~mode config state
  else Backtrack.solve ?cache ?serve ~net ~mode config state

(* The exact branch-and-bound engine behind the same stats surface as the
   Deep-RL entry points: the optimality-gap harness's oracle.  [backtracks]
   reports the search's pruned-subtree count. *)
let solve_exact ?max_nodes ?max_seconds g =
  let outcome, st = Solvers.Exact.solve ?max_nodes ?max_seconds g in
  ( outcome,
    { nodes = st.Solvers.Exact.nodes; backtracks = st.Solvers.Exact.pruned } )

let solve_feasible ~net ?(mcts = Mcts.default_config)
    ?(order = Order.Decreasing_liberty) ?(backtracking = true)
    ?(replan = true) ?(max_backtracks = 100_000) ?(exact_reduce = false)
    ?(rollouts = false) ?(incremental = false) ?(eval_cache = 0) ?cache ?serve
    ?rng g =
  if rollouts && incremental then
    invalid_arg "Solver.solve_feasible: rollouts are unsupported incrementally";
  let rollout =
    if rollouts then Some (Rollout.value ~mode:Game.Feasibility) else None
  in
  let solve_on g =
    let state = make_state ?rng ~order g in
    let result =
      backtrack_solve ?cache ?serve ~incremental ~eval_cache ~net
        ~mode:Game.Feasibility
        { Backtrack.mcts; enabled = backtracking; replan; max_backtracks;
          rollout }
        state
    in
    ( result.Backtrack.solution,
      { nodes = result.Backtrack.nodes;
        backtracks = result.Backtrack.backtracks } )
  in
  if exact_reduce then
    let sol, stats = with_exact_reduction g solve_on in
    (* the reconstruction must yield a finite-cost full solution *)
    match sol with
    | Some s when Pbqp.Cost.is_finite (Pbqp.Solution.cost g s) -> (Some s, stats)
    | _ -> (None, stats)
  else solve_on g

let minimize ~net ?(mcts = Mcts.default_config) ?(order = Order.By_id)
    ?reference ?(shaping = 5.0) ?(exact_reduce = false) ?(rollouts = false)
    ?(incremental = false) ?(eval_cache = 0) ?cache ?serve ?rng g =
  if rollouts && incremental then
    invalid_arg "Solver.minimize: rollouts are unsupported incrementally";
  let reference =
    match reference with
    | Some r -> r
    | None ->
        let _, c, _ = Solvers.Scholz.solve_with_cost g in
        c
  in
  let mode = Game.Minimize { reference; shaping } in
  let rollout = if rollouts then Some (Rollout.value ~mode) else None in
  let solve_on g =
    let state = make_state ?rng ~order g in
    let result =
      backtrack_solve ?cache ?serve ~incremental ~eval_cache ~net ~mode
        { Backtrack.default_config with mcts; enabled = false; rollout }
        state
    in
    ( result.Backtrack.solution,
      { nodes = result.Backtrack.nodes;
        backtracks = result.Backtrack.backtracks } )
  in
  let sol, stats =
    if exact_reduce then with_exact_reduction g solve_on else solve_on g
  in
  match sol with
  | Some s -> (Some (s, Pbqp.Solution.cost g s), stats)
  | None -> (None, stats)
