type t = {
  buf : Nn.Pvnet.sample option array;
  mutable head : int;  (* next write position *)
  mutable size : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity <= 0";
  { buf = Array.make capacity None; head = 0; size = 0 }

let capacity t = Array.length t.buf
let length t = t.size

let add t s =
  t.buf.(t.head) <- Some s;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.size <- min (t.size + 1) (Array.length t.buf)

let add_list t ss = List.iter (add t) ss

let sample_batch ~rng t n =
  if t.size = 0 then []
  else
    List.init n (fun _ ->
        match t.buf.((t.head - 1 - Random.State.int rng t.size + (2 * Array.length t.buf)) mod Array.length t.buf) with
        | Some s -> s
        | None -> assert false)


(* --- sample codec ----------------------------------------------------- *)

(* One sample as a text block ([sample]/[policy] header lines, a PBQP
   instance via Pbqp.Io, an [endsample] terminator).  Floats are %.17g,
   so values round-trip exactly.  The same blocks appear inside replay
   checkpoint files and — the distributed trainer — inside actor→learner
   sample frames, which is why the codec is exposed separately from
   {!save}/{!load}. *)

let write_sample buf (s : Nn.Pvnet.sample) =
  Buffer.add_string buf
    (Printf.sprintf "sample %d %.17g\n" s.Nn.Pvnet.next s.Nn.Pvnet.value);
  Buffer.add_string buf
    (Printf.sprintf "policy%s\n"
       (String.concat ""
          (Array.to_list
             (Array.map (Printf.sprintf " %.17g") s.Nn.Pvnet.policy))));
  Buffer.add_string buf (Pbqp.Io.to_string s.Nn.Pvnet.graph);
  Buffer.add_string buf "endsample\n"

let sample_to_string s =
  let b = Buffer.create 256 in
  write_sample b s;
  Buffer.contents b

(* Parse consecutive sample blocks from a pull-based line source until
   it is exhausted; blank lines between blocks are tolerated. *)
let parse_samples ~what next_line emit =
  let fail msg = invalid_arg (what ^ ": " ^ msg) in
  let line () =
    match next_line () with
    | Some l -> l
    | None -> fail "truncated sample block"
  in
  try
    while true do
      match next_line () with
      | None -> raise Exit
      | Some l when String.trim l = "" -> ()
      | Some l -> (
          match String.split_on_char ' ' l with
          | [ "sample"; next; value ] ->
              let next = int_of_string next in
              let value = float_of_string value in
              let policy =
                match String.split_on_char ' ' (line ()) with
                | "policy" :: ps -> Array.of_list (List.map float_of_string ps)
                | _ -> fail "expected policy line"
              in
              let buf = Buffer.create 256 in
              let rec slurp () =
                let l = line () in
                if String.trim l = "endsample" then ()
                else begin
                  Buffer.add_string buf l;
                  Buffer.add_char buf '\n';
                  slurp ()
                end
              in
              slurp ();
              let graph = Pbqp.Io.of_string (Buffer.contents buf) in
              emit { Nn.Pvnet.graph; next; policy; value }
          | _ -> fail ("unexpected line: " ^ l))
    done
  with Exit -> ()

let samples_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let next_line () =
    match !lines with
    | [] -> None
    | l :: rest ->
        lines := rest;
        Some l
  in
  let acc = ref [] in
  parse_samples ~what:"Replay.samples_of_string" next_line (fun s ->
      acc := s :: !acc);
  List.rev !acc

(* --- persistence ------------------------------------------------------ *)

let iter_oldest_first t f =
  for i = 0 to t.size - 1 do
    let idx = (t.head - t.size + i + (2 * Array.length t.buf)) mod Array.length t.buf in
    match t.buf.(idx) with Some s -> f s | None -> assert false
  done

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "replay %d %d\n" (Array.length t.buf) t.size;
      let b = Buffer.create 1024 in
      iter_oldest_first t (fun s ->
          Buffer.clear b;
          write_sample b s;
          Buffer.output_buffer oc b))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = invalid_arg ("Replay.load: " ^ msg) in
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> fail "truncated file"
      in
      let t =
        match String.split_on_char ' ' (line ()) with
        | [ "replay"; cap; _count ] -> create ~capacity:(int_of_string cap)
        | _ -> fail "bad header"
      in
      parse_samples ~what:"Replay.load"
        (fun () -> In_channel.input_line ic)
        (add t);
      t)
