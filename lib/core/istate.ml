open Pbqp

(* One move's full effect, memoized on its move-tree node the first time
   the move is pushed.  Undo re-installs the saved old values wholesale —
   never by subtracting — and a {e redo} (replaying the same tree edge, the
   common case when MCTS re-descends an existing branch) re-installs the
   saved new values: both directions are bit-exact by construction and
   allocation-free after the first push.  A path node identifies a unique
   move prefix, so the pre-/post-move values are well-defined per node. *)
type memo = {
  m_prev_base : Cost.t;
  m_new_base : Cost.t;
  m_detached : Graph.detached;
  m_vecs : (int * Vec.t * Vec.t) list;  (* neighbor, pre-move, post-move *)
}

(* Pure identity of a position in the move tree.  Path nodes are shared
   (parent links), so MCTS can hold thousands of cursors into one trail
   state for the cost of a few words each. *)
type path = {
  p_depth : int;
  p_color : int;  (* move that produced this node; -1 at the root *)
  p_hash : int;
  p_parent : path option;
  mutable p_memo : memo option;  (* set by the first push through this node *)
}

type t = {
  graph : Graph.t;  (* mutated in place by push/pop *)
  order : int array;
  assignment : Solution.t;
  mutable pos : int;
  mutable base_cost : Cost.t;
  mutable cur : path;  (* invariant: cur.p_depth = pos; doubles as the
                          trail — popping walks the parent links, the undo
                          data lives in the nodes' memos *)
  root_path : path;
}

let of_graph ?order g =
  let live = Graph.vertices g in
  let order =
    match order with
    | None -> Array.of_list live
    | Some o ->
        if List.sort Int.compare (Array.to_list o) <> live then
          invalid_arg "Istate.of_graph: order is not a permutation of the vertices";
        Array.copy o
  in
  let root =
    { p_depth = 0; p_color = -1; p_hash = Zhash.base ~uid:(Graph.uid g);
      p_parent = None; p_memo = None }
  in
  {
    graph = Graph.copy g;
    order;
    assignment = Solution.make (Graph.capacity g);
    pos = 0;
    base_cost = Cost.zero;
    cur = root;
    root_path = root;
  }

let of_state st =
  if State.colored_count st <> 0 then
    invalid_arg "Istate.of_state: state already has colored vertices";
  (* The state's graph is a copy of the instance (same uid), so hashes —
     and therefore cache keys — agree with the persistent path. *)
  of_graph ~order:(State.order st) (State.graph st)

let m t = Graph.m t.graph
let graph t = t.graph
let depth t = t.pos
let base_cost t = t.base_cost
let assignment t = Solution.copy t.assignment
let hash t = t.cur.p_hash

let next_vertex t =
  if t.pos < Array.length t.order then Some t.order.(t.pos) else None

let legal t c =
  match next_vertex t with
  | Some u ->
      c >= 0 && c < m t && Cost.is_finite (Vec.get (Graph.cost t.graph u) c)
  | None -> false

let is_complete t = t.pos >= Array.length t.order

let is_dead_end t =
  (not (is_complete t)) && State.has_dead_vertex t.graph t.order ~pos:t.pos

let is_terminal t = is_complete t || is_dead_end t

(* The transition 𝒯, advancing the trail into path node [node] (a child
   of the current node).  First traversal of the edge: same float
   operations as State.apply (each neighbor's new vector is a copy of the
   old one with the selected matrix row folded in, ascending), O(deg(u)),
   memoized on the node.  Redo: swap the memoized post-move vectors back
   in — no recomputation, no allocation, bitwise the same objects. *)
(* Allocation-free walks over a memo's neighbor list: top-level
   recursive functions instead of per-call [List.iter] closures, so the
   redo/undo hot paths allocate nothing (found by pbqp_analyze's [@hot]
   closure lint). *)
let rec swap_in_post g = function
  | [] -> ()
  | (v, _, nw) :: tl ->
      ignore (Graph.swap_cost g v nw);
      swap_in_post g tl
[@@hot]

let rec swap_in_pre g = function
  | [] -> ()
  | (v, old, _) :: tl ->
      ignore (Graph.swap_cost g v old);
      swap_in_pre g tl
[@@hot]

let push_node t node =
  let c = node.p_color in
  (match next_vertex t with
  | None -> invalid_arg "Istate.apply: game is complete"
  | Some u ->
      if not (legal t c) then invalid_arg "Istate.apply: illegal color";
      let g = t.graph in
      let memo =
        match node.p_memo with
        | Some memo ->
            swap_in_post g memo.m_vecs;
            Graph.redetach_vertex g memo.m_detached;
            memo
        | None ->
            (let step = Vec.get (Graph.cost g u) c in
             let vecs = ref [] in
             Graph.iter_neighbors g u (fun v muv ->
                 let fresh = Vec.copy (Graph.cost g v) in
                 Mat.add_row_into muv c fresh;
                 vecs := (v, Graph.swap_cost g v fresh, fresh) :: !vecs);
             let detached = Graph.detach_vertex g u in
             let memo =
               { m_prev_base = t.base_cost;
                 m_new_base = Cost.add t.base_cost step;
                 m_detached = detached; m_vecs = !vecs }
             in
             node.p_memo <- Some memo;
             memo)
            [@analyze.ok
              "first traversal of a tree edge memoizes: these                allocations happen once per edge by design; every redo                takes the allocation-free branch above"]
      in
      Solution.set t.assignment u c;
      t.base_cost <- memo.m_new_base;
      t.pos <- t.pos + 1);
  t.cur <- node
[@@hot]

let pop t =
  match (t.cur.p_parent, t.cur.p_memo) with
  | Some parent, Some memo ->
      t.pos <- t.pos - 1;
      let u = t.order.(t.pos) in
      Solution.set t.assignment u Solution.unassigned;
      Graph.reattach_vertex t.graph memo.m_detached;
      swap_in_pre t.graph memo.m_vecs;
      t.base_cost <- memo.m_prev_base;
      t.cur <- parent
  | _ -> invalid_arg "Istate.undo: at the root"
[@@hot]

let extend_path t p c =
  let u = t.order.(p.p_depth) in
  {
    p_depth = p.p_depth + 1;
    p_color = c;
    p_hash = p.p_hash lxor Zhash.move ~depth:p.p_depth ~vertex:u ~color:c ~m:(m t);
    p_parent = Some p;
    p_memo = None;
  }

let apply t c = push_node t (extend_path t t.cur c)
let undo t = pop t

(* Reposition the trail to [target]: pop up to the lowest common ancestor
   of the current path and [target], then replay [target]'s suffix.
   Successive MCTS queries follow root-to-leaf walks, so the amortized
   work per query is O(1) trail moves of O(deg) each. *)
let seek t target =
  if t.cur != target then begin
    let rec split a b redo =
      if a == b then redo
      else if a.p_depth > b.p_depth then split (Option.get a.p_parent) b redo
      else if b.p_depth > a.p_depth then
        split a (Option.get b.p_parent) (b :: redo)
      else split (Option.get a.p_parent) (Option.get b.p_parent) (b :: redo)
    in
    let redo = split t.cur target [] in
    let lca_depth = match redo with [] -> target.p_depth | n :: _ -> n.p_depth - 1 in
    while t.pos > lca_depth do
      pop t
    done;
    List.iter (fun node -> push_node t node) redo
  end

module Cursor = struct
  type istate = t
  type nonrec t = { ist : istate; path : path }

  let root ist = { ist; path = ist.root_path }
  let istate c = c.ist
  let depth c = c.path.p_depth
  let hash c = c.path.p_hash
  let color c = c.path.p_color
  let sync c = seek c.ist c.path

  let next_vertex c = sync c; next_vertex c.ist
  let legal c color = sync c; legal c.ist color
  let is_complete c = sync c; is_complete c.ist
  let is_dead_end c = sync c; is_dead_end c.ist
  let is_terminal c = sync c; is_terminal c.ist
  let base_cost c = sync c; c.ist.base_cost
  let assignment c = sync c; Solution.copy c.ist.assignment
  let graph c = sync c; c.ist.graph

  let graph_snapshot c =
    sync c;
    (* shared matrices: they are immutable, the trail re-installs the same
       physical objects on undo, and Mat.id-keyed caches stay hot *)
    Graph.copy_shared c.ist.graph

  let apply c color =
    sync c;
    (match next_vertex c with
    | None -> invalid_arg "Istate.Cursor.apply: game is complete"
    | Some _ ->
        if not (legal c color) then
          invalid_arg "Istate.Cursor.apply: illegal color");
    { c with path = extend_path c.ist c.path color }
end
