open Pbqp

type config = {
  iterations : int;
  episodes_per_iteration : int;
  graph : Generate.config;
  n_mean : float;
  n_stddev : float;
  n_min : int;
  mcts : Mcts.config;
  net : Nn.Pvnet.config;
  adam : Nn.Adam.config;
  batch_size : int;
  batches_per_iteration : int;
  replay_capacity : int;
  arena_games : int;
  arena_wins_needed : int;
  temperature_moves : int;
  shaping : float;
  planted : bool;
  reset_on_reject : bool;
  instance_generator : (rng:Random.State.t -> Pbqp.Graph.t) option;
  domains : int;
  checkpoint : string option;
  check : bool;
  batch_leaves : int;
  incremental : bool;
  eval_cache : int;
  serve_batch : int;
  serve_wait_us : int;
  cache_stripes : int;
  pretrain_labels : string option;
  quantize_serve : bool;
}

let default_config ~m =
  {
    iterations = 4;
    episodes_per_iteration = 12;
    graph =
      { Generate.default with m; p_edge = 0.25; p_inf = 0.01; cost_max = 10. };
    n_mean = 14.0;
    n_stddev = 3.0;
    n_min = 4;
    mcts = { Mcts.default_config with k = 24 };
    net =
      { (Nn.Pvnet.default_config ~m) with trunk_width = 32; trunk_blocks = 2 };
    adam = Nn.Adam.default_config;
    batch_size = 32;
    batches_per_iteration = 12;
    replay_capacity = 20_000;
    arena_games = 10;
    arena_wins_needed = 5;
    temperature_moves = 6;
    shaping = 5.0;
    planted = false;
    reset_on_reject = false;
    instance_generator = None;
    domains = 1;
    checkpoint = None;
    check = false;
    batch_leaves = 1;
    incremental = false;
    eval_cache = 0;
    serve_batch = 0;
    serve_wait_us = 200;
    cache_stripes = 8;
    pretrain_labels = None;
    quantize_serve = false;
  }

type progress = {
  iteration : int;
  mean_loss : float;
  arena_wins : int;
  arena_ties : int;
  kept : bool;
  replay_size : int;
  episodes_failed : int;
}

let random_graph ~rng config =
  match config.instance_generator with
  | Some f -> f ~rng
  | None ->
      let n =
        Generate.sample_n ~rng ~mean:config.n_mean ~stddev:config.n_stddev
          ~min:config.n_min
      in
      let gcfg = { config.graph with Generate.n } in
      if config.planted then fst (Generate.planted ~rng gcfg)
      else Generate.erdos_renyi ~rng gcfg

(* Search guidance: compare against the Scholz cost of this graph, shaped
   so that near-misses still rank (see .mli). *)
let search_mode config g =
  if config.graph.Generate.zero_inf then Game.Feasibility
  else
    let _, ref_cost, _ = Solvers.Scholz.solve_with_cost g in
    let reference = if Cost.is_finite ref_cost then ref_cost else Cost.inf in
    Game.Minimize { reference; shaping = config.shaping }

let play_once ?(collect = false) ?cache ?serve ~rng ~net ~temperature_moves
    config g =
  let mode = search_mode config g in
  let state = State.of_graph g in
  (* AlphaZero-style: the training run explores with Dirichlet root noise;
     inference runs (temperature 0) play clean *)
  let root_noise = if temperature_moves > 0 then Some (0.25, 0.5) else None in
  let mcts = { config.mcts with Mcts.batch = max 1 config.batch_leaves } in
  let play = if config.incremental then Episode.play_incremental else Episode.play in
  play ~collect ?cache ?serve ~rng ~net ~mode
    { Episode.mcts; temperature_moves; root_noise }
    state

(* With [config.check]: certify an episode's claim against the original
   graph — the solution must be admissible and its recomputed cost must
   equal the cost the episode reports.  A violation is a solver bug, so
   training aborts loudly rather than learning from corrupt labels. *)
let certify_outcome config who g (outcome : Episode.outcome) =
  if config.check then
    match outcome.Episode.solution with
    | None -> ()
    | Some sol ->
        let reported = outcome.Episode.cost in
        let findings =
          if Cost.is_finite reported then
            Check.Certify.solution ~reported g sol
          else Check.Certify.solution g sol
        in
        if Check.Diag.has_errors findings then
          failwith
            (Printf.sprintf "Train: %s episode failed certification:\n%s" who
               (Check.Diag.to_string (Check.Diag.errors_only findings)))

let compare_costs current best =
  if Cost.compare current best < 0 then 1.0
  else if Cost.compare current best > 0 then -1.0
  else 0.0

let checkpoint_paths prefix =
  ( prefix ^ ".best.ckpt",
    prefix ^ ".current.ckpt",
    prefix ^ ".replay.txt",
    prefix ^ ".opt.ckpt" )

let dist_state_path prefix = prefix ^ ".dist.txt"

(* --- episode rng discipline (shared with the distributed trainer) ----- *)

(* Per-episode rngs come from per-actor split streams rooted in a
   manifest seed: actor [i]'s root is the (i+1)-th sequential
   [Random.State.split] of [Random.State.make [|seed|]], and episode G
   (global index) uses split #((G - i) / actors) of the root of actor
   [G mod actors].  The in-process trainer IS the actors=1 topology —
   it draws its episode rngs as successive splits of actor 0's root —
   which is what makes a [--actors 1] distributed run sample-for-sample
   equal to it by construction, and an N-actor run reproducible from
   (seed, N) alone. *)
let actor_root ~manifest_seed actor =
  if actor < 0 then invalid_arg "Train.actor_root: negative actor id";
  let mrng = Random.State.make [| manifest_seed |] in
  let root = ref (Random.State.split mrng) in
  for _ = 1 to actor do
    root := Random.State.split mrng
  done;
  !root

(* One self-play episode: the candidate plays (collecting) against the
   best player's cost on the same graph; returns the stamped training
   tuples and whether the candidate failed to finish.  Safe to run as a
   pool task — or in an actor process — given private net replicas and a
   private rng.  Caches and serving are bitwise-neutral (they return
   what the net would compute), so a plain uncached call produces the
   same tuples as the learner's cached, coalescing configuration. *)
let self_play_episode ?best_cache ?current_cache ?best_serve ?current_serve
    ~rng ~best ~current config =
  let g = random_graph ~rng config in
  let best_outcome, _ =
    play_once ?cache:best_cache ?serve:best_serve ~rng ~net:best
      ~temperature_moves:0 config g
  in
  let cur_outcome, samples =
    play_once ~collect:true ?cache:current_cache ?serve:current_serve ~rng
      ~net:current ~temperature_moves:config.temperature_moves config g
  in
  certify_outcome config "best" g best_outcome;
  certify_outcome config "current" g cur_outcome;
  (* In the no-spill (0/∞) setting the game is feasibility: finishing is
     the win condition itself, so the label is absolute.  In the general
     setting the label is the paper's comparison against the best
     player. *)
  let z =
    if config.graph.Generate.zero_inf then
      Game.reward Game.Feasibility cur_outcome.Episode.cost
    else compare_costs cur_outcome.Episode.cost best_outcome.Episode.cost
  in
  (Episode.set_values z samples, cur_outcome.Episode.solution = None)

(* --- episode/replay source ------------------------------------------- *)

type episode_result = {
  er_samples : Nn.Pvnet.sample list;
  er_failed : bool;
  er_generation : int;
  er_origin : int;
}

type source = {
  src_pipeline : int;
  src_broadcast : generation:int -> unit;
  src_dispatch : iteration:int -> unit;
  src_collect : iteration:int -> episode_result array;
  src_add : episode_result array -> unit;
  src_seed : Nn.Pvnet.sample list -> unit;
  src_sample :
    rng:Random.State.t -> int -> Nn.Pvnet.sample list * float array option;
  src_length : unit -> int;
  src_save : string -> unit;
  src_load : string -> unit;
  src_shutdown : unit -> unit;
}

let run ?(on_iteration = fun _ -> ()) ?make_source ~rng config =
  (* resume from a checkpoint prefix when the three original files exist
     (the optimizer file is optional for back-compat with older runs) *)
  let resume =
    match config.checkpoint with
    | Some prefix ->
        let b, c, r, _ = checkpoint_paths prefix in
        if Sys.file_exists b && Sys.file_exists c && Sys.file_exists r then
          Some (Nn.Pvnet.load b, Nn.Pvnet.load c)
        else None
    | None -> None
  in
  let best, current =
    match resume with
    | Some (b, c) -> (b, c)
    | None ->
        let best = Nn.Pvnet.create ~rng config.net in
        (best, Nn.Pvnet.clone best)
  in
  (* The episode-stream manifest (see [actor_root]).  A fresh run draws
     the seed from the main rng at this fixed point — identically in the
     in-process and distributed modes, so both consume the same rng
     prefix.  A resumed run reads the seed and the episode-stream
     position back from the checkpoint (drawing a fresh seed would
     desynchronize both the main rng and the episode streams from an
     uninterrupted run). *)
  let manifest_seed, resume_episodes =
    let resumed =
      match (resume, config.checkpoint) with
      | Some _, Some prefix when Sys.file_exists (dist_state_path prefix) -> (
          let ic = open_in (dist_state_path prefix) in
          let line =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> input_line ic)
          in
          match String.split_on_char ' ' line with
          | [ "manifest"; seed; episodes ] -> (
              match (int_of_string_opt seed, int_of_string_opt episodes) with
              | Some s, Some e -> Some (s, e)
              | _ -> invalid_arg "Train: malformed dist-state checkpoint")
          | _ -> invalid_arg "Train: malformed dist-state checkpoint")
      | _ -> None
    in
    match resumed with
    | Some se -> se
    | None -> (Random.State.bits rng, 0)
  in
  let episodes_collected = ref resume_episodes in
  (* Int8 quantized serving: switch both nets into quantized mode and
     certify the initial weights before any replica is cloned — the
     certificate travels with every subsequent [sync]/[copy_into].
     Certification is version-stamped, so each optimizer step revokes it
     and [recertify] below re-earns it (or the net silently serves
     float for that version when the harness rejects the weights). *)
  let recertify net =
    if config.quantize_serve && not (Nn.Pvnet.quantized_certified net) then
      ignore (Check.Quantcert.certify net : Check.Quantcert.report)
  in
  if config.quantize_serve then begin
    Nn.Pvnet.set_quantized_serve best true;
    Nn.Pvnet.set_quantized_serve current true;
    recertify best;
    recertify current
  end;
  let opt = Nn.Adam.create config.adam in
  (* Only the current net is ever trained, so its params key the moments. *)
  (match (resume, config.checkpoint) with
  | Some _, Some prefix ->
      let _, _, _, o = checkpoint_paths prefix in
      if Sys.file_exists o then
        Nn.Adam.load opt ~params:(Nn.Pvnet.params current) o
  | _ -> ());
  (* One persistent pool for the whole run: self-play episodes, the
     data-parallel gradient step, arena games and (via [Tensor.set_pool])
     any large main-domain GEMM all share it, instead of paying a
     [Domain.spawn] + net re-clone per iteration. *)
  let pool = Par.Pool.create ~domains:config.domains in
  let prev_tensor_pool = Tensor.get_pool () in
  Fun.protect
    ~finally:(fun () ->
      Tensor.set_pool prev_tensor_pool;
      Par.Pool.shutdown pool)
  @@ fun () ->
  Tensor.set_pool (Some pool);
  let nw = Par.Pool.size pool in
  (* Per-worker net replicas (the GCN message cache inside a net is not
     thread-safe), allocated once for the whole run.  Worker 0 is the
     submitting domain and uses the real nets; workers >= 1 get clones
     refreshed in place — and only when the source weights actually
     changed, which the version counters below track. *)
  let bests =
    Array.init nw (fun w -> if w = 0 then best else Nn.Pvnet.clone best)
  in
  let currents =
    Array.init nw (fun w -> if w = 0 then current else Nn.Pvnet.clone current)
  in
  (* One shared evaluation cache per net role, striped over mutex-guarded
     shards when the pool has several workers (plain single-owner LRU at
     nw = 1) — a position solved by one worker is a hit for every other.
     Sharing cannot perturb results: hits return bitwise what the network
     would compute under the same weights version, so only the hit/miss
     counters — never run outputs — depend on the task→worker mapping.
     Version stamps make entries from pre-step weights self-invalidating;
     the promotion/reset [sync]s below copy stamps with weights, so no
     explicit clearing is needed. *)
  let make_cache () =
    if config.eval_cache > 0 then
      Some
        (if nw > 1 then
           Nn.Cache.striped
             ~stripes:(max 1 config.cache_stripes)
             ~capacity:config.eval_cache
         else Nn.Cache.local ~capacity:config.eval_cache)
    else None
  in
  let best_cache = make_cache () and current_cache = make_cache () in
  (* Two inference services, one per net role, so a coalesced batch never
     mixes best-player and candidate leaves: within a pool region each
     role's tickets all carry the same weights version (versions only
     move between regions), which is what lets the server drain a FIFO
     prefix.  Workers' waves coalesce into larger trunk/head GEMMs; the
     floating-server protocol (Nn.Infer) keeps results bit-identical to
     per-worker batching. *)
  let make_serve () =
    if config.serve_batch > 0 then
      Some
        (Nn.Infer.create ~max_batch:config.serve_batch
           ~wait_us:config.serve_wait_us ~workers:nw ())
    else None
  in
  let best_serve = make_serve () and current_serve = make_serve () in
  let best_version = ref 0 and current_version = ref 0 in
  let bver = Array.make nw 0 and cver = Array.make nw 0 in
  let refresh_replicas () =
    for w = 1 to nw - 1 do
      if bver.(w) <> !best_version then begin
        Nn.Pvnet.copy_into ~src:best ~dst:bests.(w);
        bver.(w) <- !best_version
      end;
      if cver.(w) <> !current_version then begin
        Nn.Pvnet.copy_into ~src:current ~dst:currents.(w);
        cver.(w) <- !current_version
      end
    done
  in
  (* Per-task rng derivation: split one child stream per episode/game off
     the main stream, sequentially, on the submitting domain.  Unlike
     seeding from [Random.State.int] draws, split streams cannot collide,
     and keying them by task index (not worker index) makes the streams —
     and with the fixed merge order below, the whole run — independent of
     [config.domains] and of scheduling. *)
  let split_rngs n = Array.init n (fun _ -> Random.State.split rng) in
  let indices n = Array.init n (fun i -> i) in
  (* An arena round: each game generates its own graph from its own split
     stream and pits the two nets at temperature 0; outcomes come back in
     game order. *)
  let arena () =
    refresh_replicas ();
    let rngs = split_rngs config.arena_games in
    Par.Pool.map pool (indices config.arena_games) ~f:(fun ~worker i ->
        let rng = rngs.(i) in
        let g = random_graph ~rng config in
        let b, _ =
          play_once ?cache:best_cache ?serve:best_serve ~rng
            ~net:bests.(worker) ~temperature_moves:0 config g
        in
        let c, _ =
          play_once ?cache:current_cache ?serve:current_serve ~rng
            ~net:currents.(worker) ~temperature_moves:0 config g
        in
        compare_costs c.Episode.cost b.Episode.cost)
  in
  (* --- episode/replay source --- *)
  (* The in-process default source plays episodes on the run's own pool
     and stores them in a plain [Replay] ring: the actors=1 topology of
     the distributed trainer, executed inline.  [make_source] (the
     distributed learner) swaps in actor processes and a sharded replay
     behind the same interface; the iteration loop below is shared. *)
  let in_process_source () =
    let root = actor_root ~manifest_seed 0 in
    for _ = 1 to resume_episodes do
      ignore (Random.State.split root : Random.State.t)
    done;
    let replay = ref (Replay.create ~capacity:config.replay_capacity) in
    {
      src_pipeline = 0;
      src_broadcast = (fun ~generation:_ -> ());
      src_dispatch = (fun ~iteration:_ -> ());
      src_collect =
        (fun ~iteration:_ ->
          refresh_replicas ();
          let rngs =
            Array.init config.episodes_per_iteration (fun _ ->
                Random.State.split root)
          in
          Par.Pool.map pool (indices config.episodes_per_iteration)
            ~f:(fun ~worker i ->
              let samples, failed =
                self_play_episode ~rng:rngs.(i) ~best:bests.(worker)
                  ~current:currents.(worker) ?best_cache ?current_cache
                  ?best_serve ?current_serve config
              in
              {
                er_samples = samples;
                er_failed = failed;
                er_generation = 0;
                er_origin = 0;
              }));
      src_add =
        (fun results ->
          Array.iter (fun r -> Replay.add_list !replay r.er_samples) results);
      src_seed = (fun ss -> Replay.add_list !replay ss);
      src_sample =
        (fun ~rng n -> (Replay.sample_batch ~rng !replay n, None));
      src_length = (fun () -> Replay.length !replay);
      src_save = (fun path -> Replay.save !replay path);
      src_load = (fun path -> replay := Replay.load path);
      src_shutdown = (fun () -> ());
    }
  in
  let source =
    match make_source with
    | Some f ->
        f ~manifest_seed ~resume_episodes ~best ~current
    | None -> in_process_source ()
  in
  Fun.protect ~finally:(fun () -> source.src_shutdown ())
  @@ fun () ->
  (* Replay contents: resumed runs reload the checkpointed buffer;
     fresh runs optionally seed it with supervised pretraining tuples —
     each exact-optimal label expands into one tuple per move, so the
     first gradient batches already train on proven-optimal decisions.
     (Fresh runs only: a resumed replay already contains possibly the
     same data, and re-seeding would break bit-identical resumption.) *)
  (match (resume, config.checkpoint) with
  | Some _, Some prefix ->
      let _, _, r, _ = checkpoint_paths prefix in
      source.src_load r
  | _ -> (
      match config.pretrain_labels with
      | Some path ->
          source.src_seed
            (List.concat_map (fun l -> Labels.to_samples l) (Labels.load path))
      | None -> ()));
  let save_checkpoint () =
    match config.checkpoint with
    | None -> ()
    | Some prefix ->
        let b, c, r, o = checkpoint_paths prefix in
        Nn.Pvnet.save best b;
        Nn.Pvnet.save current c;
        source.src_save r;
        Nn.Adam.save opt ~params:(Nn.Pvnet.params current) o;
        let oc = open_out (dist_state_path prefix) in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc "manifest %d %d\n" manifest_seed
              !episodes_collected)
  in
  (* Dispatch runs [src_pipeline] iterations ahead of collection — the
     assignment for iteration t+p is sent before the snapshot that
     follows iteration t's optimizer step enters the (FIFO) stream, so
     pipelined episodes are played under weights exactly p generations
     stale: the staleness schedule is part of the message order, not of
     wall-clock scheduling, which keeps pipelined runs bit-reproducible.
     The in-process source pipelines by 0 (episodes run inline). *)
  let dispatched = ref 0 in
  let ensure_dispatched upto =
    while !dispatched < upto do
      incr dispatched;
      source.src_dispatch ~iteration:!dispatched
    done
  in
  for iteration = 1 to config.iterations do
    (* --- self-play data generation --- *)
    source.src_broadcast ~generation:!current_version;
    ensure_dispatched (min (iteration + source.src_pipeline) config.iterations);
    let results = source.src_collect ~iteration in
    (* Merge in episode order: replay contents and [episodes_failed] are
       reproducible for a fixed seed regardless of scheduling. *)
    let episodes_failed = ref 0 in
    Array.iter (fun r -> if r.er_failed then incr episodes_failed) results;
    source.src_add results;
    episodes_collected := !episodes_collected + Array.length results;
    (* --- gradient training (data-parallel, bit-identical to serial) --- *)
    let losses = ref [] in
    for _ = 1 to config.batches_per_iteration do
      let batch, weights = source.src_sample ~rng config.batch_size in
      if batch <> [] then
        losses :=
          Nn.Pvnet.train_batch_parallel ?weights ~pool ~replicas:currents
            current opt batch
          :: !losses
    done;
    if !losses <> [] then incr current_version;
    (* the step above revoked the candidate's int8 certificate; re-earn
       it before the arena (whose replica refresh copies it along) *)
    recertify current;
    let mean_loss =
      match !losses with
      | [] -> 0.0
      | ls -> List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls)
    in
    (* --- arena gate --- *)
    let wins = ref 0 and ties = ref 0 in
    Array.iter
      (fun outcome ->
        if outcome = 1.0 then incr wins else if outcome = 0.0 then incr ties)
      (arena ());
    (* Promote the candidate when it wins the majority of the games that
       were decisive at all, requiring at least one decisive win.  (A
       fixed ">5 of 10" threshold as in the paper needs large arenas to
       ever engage; with ties counted out, small arenas gate sensibly.) *)
    let losses = config.arena_games - !wins - !ties in
    let kept = !wins > losses in
    if kept then begin
      Nn.Pvnet.sync ~src:current ~dst:best;
      incr best_version
    end
    else if config.reset_on_reject then begin
      Nn.Pvnet.sync ~src:best ~dst:current;
      incr current_version
    end;
    on_iteration
      {
        iteration;
        mean_loss;
        arena_wins = !wins;
        arena_ties = !ties;
        kept;
        replay_size = source.src_length ();
        episodes_failed = !episodes_failed;
      };
    save_checkpoint ()
  done;
  (* Final gate: the candidate carries all accumulated training; return it
     unless the incumbent actually beats it head-to-head (with an all-tie
     arena the candidate's extra training is the better bet). *)
  let wins = ref 0 and losses = ref 0 in
  Array.iter
    (fun outcome ->
      if outcome = 1.0 then incr wins
      else if outcome = -1.0 then incr losses)
    (arena ());
  if !losses > !wins then best else current
