open Pbqp

type config = {
  iterations : int;
  episodes_per_iteration : int;
  graph : Generate.config;
  n_mean : float;
  n_stddev : float;
  n_min : int;
  mcts : Mcts.config;
  net : Nn.Pvnet.config;
  adam : Nn.Adam.config;
  batch_size : int;
  batches_per_iteration : int;
  replay_capacity : int;
  arena_games : int;
  arena_wins_needed : int;
  temperature_moves : int;
  shaping : float;
  planted : bool;
  reset_on_reject : bool;
  instance_generator : (rng:Random.State.t -> Pbqp.Graph.t) option;
  domains : int;
  checkpoint : string option;
  check : bool;
  batch_leaves : int;
}

let default_config ~m =
  {
    iterations = 4;
    episodes_per_iteration = 12;
    graph =
      { Generate.default with m; p_edge = 0.25; p_inf = 0.01; cost_max = 10. };
    n_mean = 14.0;
    n_stddev = 3.0;
    n_min = 4;
    mcts = { Mcts.default_config with k = 24 };
    net =
      { (Nn.Pvnet.default_config ~m) with trunk_width = 32; trunk_blocks = 2 };
    adam = Nn.Adam.default_config;
    batch_size = 32;
    batches_per_iteration = 12;
    replay_capacity = 20_000;
    arena_games = 10;
    arena_wins_needed = 5;
    temperature_moves = 6;
    shaping = 5.0;
    planted = false;
    reset_on_reject = false;
    instance_generator = None;
    domains = 1;
    checkpoint = None;
    check = false;
    batch_leaves = 1;
  }

type progress = {
  iteration : int;
  mean_loss : float;
  arena_wins : int;
  arena_ties : int;
  kept : bool;
  replay_size : int;
  episodes_failed : int;
}

let random_graph ~rng config =
  match config.instance_generator with
  | Some f -> f ~rng
  | None ->
      let n =
        Generate.sample_n ~rng ~mean:config.n_mean ~stddev:config.n_stddev
          ~min:config.n_min
      in
      let gcfg = { config.graph with Generate.n } in
      if config.planted then fst (Generate.planted ~rng gcfg)
      else Generate.erdos_renyi ~rng gcfg

(* Search guidance: compare against the Scholz cost of this graph, shaped
   so that near-misses still rank (see .mli). *)
let search_mode config g =
  if config.graph.Generate.zero_inf then Game.Feasibility
  else
    let _, ref_cost, _ = Solvers.Scholz.solve_with_cost g in
    let reference = if Cost.is_finite ref_cost then ref_cost else Cost.inf in
    Game.Minimize { reference; shaping = config.shaping }

let play_once ?(collect = false) ~rng ~net ~temperature_moves config g =
  let mode = search_mode config g in
  let state = State.of_graph g in
  (* AlphaZero-style: the training run explores with Dirichlet root noise;
     inference runs (temperature 0) play clean *)
  let root_noise = if temperature_moves > 0 then Some (0.25, 0.5) else None in
  let mcts = { config.mcts with Mcts.batch = max 1 config.batch_leaves } in
  Episode.play ~collect ~rng ~net ~mode
    { Episode.mcts; temperature_moves; root_noise }
    state

(* With [config.check]: certify an episode's claim against the original
   graph — the solution must be admissible and its recomputed cost must
   equal the cost the episode reports.  A violation is a solver bug, so
   training aborts loudly rather than learning from corrupt labels. *)
let certify_outcome config who g (outcome : Episode.outcome) =
  if config.check then
    match outcome.Episode.solution with
    | None -> ()
    | Some sol ->
        let reported = outcome.Episode.cost in
        let findings =
          if Cost.is_finite reported then
            Check.Certify.solution ~reported g sol
          else Check.Certify.solution g sol
        in
        if Check.Diag.has_errors findings then
          failwith
            (Printf.sprintf "Train: %s episode failed certification:\n%s" who
               (Check.Diag.to_string (Check.Diag.errors_only findings)))

let compare_costs current best =
  if Cost.compare current best < 0 then 1.0
  else if Cost.compare current best > 0 then -1.0
  else 0.0

let checkpoint_paths prefix =
  ( prefix ^ ".best.ckpt",
    prefix ^ ".current.ckpt",
    prefix ^ ".replay.txt",
    prefix ^ ".opt.ckpt" )

let run ?(on_iteration = fun _ -> ()) ~rng config =
  (* resume from a checkpoint prefix when the three original files exist
     (the optimizer file is optional for back-compat with older runs) *)
  let resume =
    match config.checkpoint with
    | Some prefix ->
        let b, c, r, _ = checkpoint_paths prefix in
        if Sys.file_exists b && Sys.file_exists c && Sys.file_exists r then
          Some (Nn.Pvnet.load b, Nn.Pvnet.load c, Replay.load r)
        else None
    | None -> None
  in
  let best, current, replay =
    match resume with
    | Some (b, c, r) -> (b, c, r)
    | None ->
        let best = Nn.Pvnet.create ~rng config.net in
        (best, Nn.Pvnet.clone best,
         Replay.create ~capacity:config.replay_capacity)
  in
  let opt = Nn.Adam.create config.adam in
  (* Only the current net is ever trained, so its params key the moments. *)
  (match (resume, config.checkpoint) with
  | Some _, Some prefix ->
      let _, _, _, o = checkpoint_paths prefix in
      if Sys.file_exists o then
        Nn.Adam.load opt ~params:(Nn.Pvnet.params current) o
  | _ -> ());
  let save_checkpoint () =
    match config.checkpoint with
    | None -> ()
    | Some prefix ->
        let b, c, r, o = checkpoint_paths prefix in
        Nn.Pvnet.save best b;
        Nn.Pvnet.save current c;
        Replay.save replay r;
        Nn.Adam.save opt ~params:(Nn.Pvnet.params current) o
  in
  (* One self-play episode: returns the stamped training tuples and
     whether the (collecting) player failed to finish.  Safe to run in a
     worker domain given private nets and rng. *)
  let one_episode ~rng ~best ~current =
    let g = random_graph ~rng config in
    let best_outcome, _ =
      play_once ~rng ~net:best ~temperature_moves:0 config g
    in
    let cur_outcome, samples =
      play_once ~collect:true ~rng ~net:current
        ~temperature_moves:config.temperature_moves config g
    in
    certify_outcome config "best" g best_outcome;
    certify_outcome config "current" g cur_outcome;
    (* In the no-spill (0/∞) setting the game is feasibility: finishing is
       the win condition itself, so the label is absolute.  In the general
       setting the label is the paper's comparison against the best
       player. *)
    let z =
      if config.graph.Generate.zero_inf then
        Game.reward Game.Feasibility cur_outcome.Episode.cost
      else compare_costs cur_outcome.Episode.cost best_outcome.Episode.cost
    in
    (Episode.set_values z samples, cur_outcome.Episode.solution = None)
  in
  for iteration = 1 to config.iterations do
    let episodes_failed = ref 0 in
    (* --- self-play data generation --- *)
    (if config.domains <= 1 then
       for _ = 1 to config.episodes_per_iteration do
         let samples, failed = one_episode ~rng ~best ~current in
         if failed then incr episodes_failed;
         Replay.add_list replay samples
       done
     else begin
       (* Parallel self-play: each worker gets private clones of both nets
          (the GCN message cache inside a net is not thread-safe) and a
          private rng seeded from the main stream.  Training stays on the
          main domain. *)
       let nd = min config.domains config.episodes_per_iteration in
       let base = config.episodes_per_iteration / nd in
       let extra = config.episodes_per_iteration mod nd in
       let workers =
         List.init nd (fun i ->
             let count = base + (if i < extra then 1 else 0) in
             let seed = Random.State.int rng 0x3FFFFFFF in
             let best = Nn.Pvnet.clone best in
             let current = Nn.Pvnet.clone current in
             Domain.spawn (fun () ->
                 let rng = Random.State.make [| seed; i |] in
                 List.init count (fun _ -> one_episode ~rng ~best ~current)))
       in
       List.iter
         (fun d ->
           List.iter
             (fun (samples, failed) ->
               if failed then incr episodes_failed;
               Replay.add_list replay samples)
             (Domain.join d))
         workers
     end);
    (* --- gradient training --- *)
    let losses = ref [] in
    for _ = 1 to config.batches_per_iteration do
      let batch = Replay.sample_batch ~rng replay config.batch_size in
      if batch <> [] then
        losses := Nn.Pvnet.train_batch current opt batch :: !losses
    done;
    let mean_loss =
      match !losses with
      | [] -> 0.0
      | ls -> List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls)
    in
    (* --- arena gate --- *)
    let wins = ref 0 and ties = ref 0 in
    for _ = 1 to config.arena_games do
      let g = random_graph ~rng config in
      let b, _ = play_once ~rng ~net:best ~temperature_moves:0 config g in
      let c, _ = play_once ~rng ~net:current ~temperature_moves:0 config g in
      match compare_costs c.Episode.cost b.Episode.cost with
      | 1.0 -> incr wins
      | 0.0 -> incr ties
      | _ -> ()
    done;
    (* Promote the candidate when it wins the majority of the games that
       were decisive at all, requiring at least one decisive win.  (A
       fixed ">5 of 10" threshold as in the paper needs large arenas to
       ever engage; with ties counted out, small arenas gate sensibly.) *)
    let losses = config.arena_games - !wins - !ties in
    let kept = !wins > losses in
    if kept then Nn.Pvnet.sync ~src:current ~dst:best
    else if config.reset_on_reject then Nn.Pvnet.sync ~src:best ~dst:current;
    on_iteration
      {
        iteration;
        mean_loss;
        arena_wins = !wins;
        arena_ties = !ties;
        kept;
        replay_size = Replay.length replay;
        episodes_failed = !episodes_failed;
      };
    save_checkpoint ()
  done;
  (* Final gate: the candidate carries all accumulated training; return it
     unless the incumbent actually beats it head-to-head (with an all-tie
     arena the candidate's extra training is the better bet). *)
  let wins = ref 0 and losses = ref 0 in
  for _ = 1 to config.arena_games do
    let g = random_graph ~rng config in
    let b, _ = play_once ~rng ~net:best ~temperature_moves:0 config g in
    let c, _ = play_once ~rng ~net:current ~temperature_moves:0 config g in
    match compare_costs c.Episode.cost b.Episode.cost with
    | 1.0 -> incr wins
    | -1.0 -> incr losses
    | _ -> ()
  done;
  if !losses > !wins then best else current
