(** The PBQP game: rewards and the MCTS bridge (paper §III).

    Terminal rewards (§III-B): the single-player game is scored by
    comparison.  {!Feasibility} is the ATE setting, where every cost is
    0 or ∞ — a finite finish wins (+1), a dead end or infinite cost
    loses (−1).  {!Minimize} compares the final cost sum against a
    reference (during training, the best player's cost on the same
    graph): smaller wins (+1), equal ties (0), larger loses (−1); a
    positive [shaping] replaces the step by [tanh ((ref − cost)/shaping)]
    so search can rank near-ties (0 keeps the paper's exact ±1/0). *)

open Pbqp

type mode =
  | Feasibility
  | Minimize of { reference : Cost.t; shaping : float }

val reward : mode -> Cost.t -> float
(** Terminal reward for a final cost ([inf] = failed/dead end). *)

val make :
  ?rollout:(State.t -> float) ->
  ?batched:bool ->
  net:Nn.Pvnet.t ->
  mode:mode ->
  m:int ->
  unit ->
  State.t Mcts.game
(** The game record MCTS searches: legality and transitions from
    {!State}, leaf evaluation from the network.  When [rollout] is given,
    leaf values are the mean of the network's estimate and the roll-out
    value (see {!Rollout}) — an opt-in extension beyond the paper.
    [batched] (default [true]) fills the game's [batched_evaluate] with
    {!Nn.Pvnet.predict_batch}, so searches evaluate leaf waves in one
    batched forward; results are bit-identical to the scalar path.  Pass
    [~batched:false] to force the pre-batching scalar evaluation (the
    baseline the equivalence tests and benchmarks compare against). *)

val final_cost : State.t -> Cost.t
(** [base_cost] if complete, [inf] otherwise. *)
