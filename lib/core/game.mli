(** The PBQP game: rewards and the MCTS bridge (paper §III).

    Terminal rewards (§III-B): the single-player game is scored by
    comparison.  {!Feasibility} is the ATE setting, where every cost is
    0 or ∞ — a finite finish wins (+1), a dead end or infinite cost
    loses (−1).  {!Minimize} compares the final cost sum against a
    reference (during training, the best player's cost on the same
    graph): smaller wins (+1), equal ties (0), larger loses (−1); a
    positive [shaping] replaces the step by [tanh ((ref − cost)/shaping)]
    so search can rank near-ties (0 keeps the paper's exact ±1/0). *)

open Pbqp

type mode =
  | Feasibility
  | Minimize of { reference : Cost.t; shaping : float }

val reward : mode -> Cost.t -> float
(** Terminal reward for a final cost ([inf] = failed/dead end). *)

val make :
  ?rollout:(State.t -> float) ->
  ?batched:bool ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  net:Nn.Pvnet.t ->
  mode:mode ->
  m:int ->
  unit ->
  State.t Mcts.game
(** The game record MCTS searches: legality and transitions from
    {!State}, leaf evaluation from the network.  When [rollout] is given,
    leaf values are the mean of the network's estimate and the roll-out
    value (see {!Rollout}) — an opt-in extension beyond the paper.
    [batched] (default [true]) fills the game's [batched_evaluate] with
    {!Nn.Pvnet.predict_batch}, so searches evaluate leaf waves in one
    batched forward; results are bit-identical to the scalar path.  Pass
    [~batched:false] to force the pre-batching scalar evaluation (the
    baseline the equivalence tests and benchmarks compare against).

    [cache] consults an {!Nn.Cache} (single-owner or striped-shared)
    before every network forward — scalar and batched — keyed by
    [(State.hash, next vertex)] and versioned by {!Nn.Pvnet.version};
    hits skip the forward (and drop out of a wave's batch), misses are
    stored.  Search results are bit-identical with or without it.

    [serve] routes each wave's cache misses through the cross-worker
    {!Nn.Infer} service instead of a direct [predict_prepared] — same
    bits, coalesced GEMMs (the scalar [evaluate] path stays direct; it
    only runs when waves are off). *)

val make_incremental :
  ?batched:bool ->
  ?cache:Nn.Cache.t ->
  ?serve:Nn.Infer.t ->
  net:Nn.Pvnet.t ->
  mode:mode ->
  m:int ->
  unit ->
  Istate.Cursor.t Mcts.game
(** {!make} over incremental cursors (see {!Istate}): transitions are
    pure O(1) cursor extensions, every query seeks the shared trail
    state, and a batched wave captures each leaf as an
    {!Nn.Pvnet.prepared} before the common trunk GEMMs.  All cursors in
    one search must come from a single {!Istate.t} (MCTS guarantees this
    by construction: children come from [apply]).  No [rollout] — that
    extension stays on the persistent path.  Searches are node-for-node
    identical to {!make} on the equivalent persistent states. *)

val final_cost : State.t -> Cost.t
(** [base_cost] if complete, [inf] otherwise. *)

val cursor_final_cost : Istate.Cursor.t -> Cost.t
