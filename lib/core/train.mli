(** The self-play training loop (paper §IV-A, §V-A).

    One {e iteration} = [episodes_per_iteration] self-plays on fresh
    random Erdős–Rényi PBQP graphs, each contributing one tuple per move
    to the replay queue, followed by gradient training of the current net
    and an arena gate: the candidate plays the incumbent best net on
    [arena_games] fresh graphs and replaces it only with more than
    [arena_wins_needed] wins (paper: >5 of 10); otherwise the candidate is
    reset to the incumbent.

    Rewards: each episode's graph is first colored by the best net; the
    training tuples of the current net's coloring are stamped with
    +1/0/−1 by cost comparison (§III-B).  Search guidance {e inside}
    both colorings uses a [Minimize] mode whose reference is the
    Scholz–Eckstein cost of the graph — a fixed, cheap yardstick that
    makes terminal values meaningful from iteration zero (an engineering
    choice documented in DESIGN.md; the training labels themselves follow
    the paper exactly). *)

type config = {
  iterations : int;
  episodes_per_iteration : int;
  graph : Pbqp.Generate.config;  (** template; [n] is resampled per episode *)
  n_mean : float;
  n_stddev : float;
  n_min : int;
  mcts : Mcts.config;  (** [mcts.k] is the paper's k_train *)
  net : Nn.Pvnet.config;
  adam : Nn.Adam.config;
  batch_size : int;
  batches_per_iteration : int;
  replay_capacity : int;
  arena_games : int;
  arena_wins_needed : int;
  temperature_moves : int;
  shaping : float;  (** reward shaping scale for search guidance *)
  planted : bool;
      (** generate guaranteed-solvable planted instances instead of plain
          Erdős–Rényi — used when training nets for the no-spill ATE
          setting, where unsolvable instances teach nothing *)
  reset_on_reject : bool;
      (** paper-faithful gating: discard the candidate's weights whenever
          the arena rejects it.  Off by default: with small arenas the
          reset destroys all learning, so the candidate keeps training and
          only the data-generation (best) net is gated. *)
  instance_generator : (rng:Random.State.t -> Pbqp.Graph.t) option;
      (** when set, overrides the built-in Erdős–Rényi/planted sampling —
          e.g. to train the ATE net on PBQP graphs of small synthetic ATE
          programs (the target distribution). *)
  domains : int;
      (** size of the run's persistent domain pool ([Par.Pool], OCaml 5
          parallelism): self-play episodes, arena games and the
          data-parallel gradient step all share it, with per-worker
          network replicas kept alive across iterations and refreshed in
          place only when weights change.  Every per-task rng is a
          [Random.State.split] child keyed by episode/game index (never
          by worker), and all merges happen in task-index order — so for
          a fixed seed the run (replay contents, [episodes_failed],
          trained weights) is bit-identical for {e every} value of
          [domains], 1 included. *)
  checkpoint : string option;
      (** checkpoint file prefix: after every iteration both networks, the
          replay buffer and the Adam optimizer state are saved to
          [<prefix>.best.ckpt], [<prefix>.current.ckpt],
          [<prefix>.replay.txt] and [<prefix>.opt.ckpt]; {!run} resumes
          when the first three exist (the optimizer file is optional for
          back-compat — when present, moments and step count are restored
          and a resumed run continues bit-identically). *)
  check : bool;
      (** certify every self-play episode's solution with
          [Check.Certify.solution] against the original graph (the
          episode's incremental cost bookkeeping must match an
          independent recomputation); any violation aborts training with
          [Failure].  Off by default — it adds a per-episode
          recomputation. *)
  batch_leaves : int;
      (** MCTS leaves gathered per virtual-loss wave and evaluated in one
          batched network forward during self-play and arena games
          (overrides [mcts.batch]).  1 (the default) reproduces the
          scalar search exactly; larger values trade some search
          sequentiality for evaluation throughput (see DESIGN.md). *)
  incremental : bool;
      (** run self-play and arena episodes on the trail-based
          incremental state ([Istate]) instead of persistent per-move
          graph copies — O(deg) apply/undo, far fewer allocations, and
          runs bit-identical to the persistent path (the [@incr] test
          alias locks this down).  Default [false]. *)
  eval_cache : int;
      (** total capacity of the shared per-net-role evaluation cache
          ([Nn.Cache]: a striped [Nn.Stripedcache] when [domains > 1],
          a single-owner [Nn.Evalcache] otherwise); 0 (the default)
          disables caching.  Entries are versioned by [Nn.Pvnet.version],
          so optimizer steps and promotions invalidate them implicitly;
          hits return bitwise-identical results, so runs are unchanged by
          the cache at every [domains] value. *)
  serve_batch : int;
      (** row budget of the cross-worker dynamic-batching inference
          service ([Nn.Infer]): each net role gets a service that
          coalesces MCTS waves from all pool workers into single batched
          forwards of up to this many leaves.  0 (the default) keeps
          per-worker batching.  Coalescing is scheduling-dependent;
          results are not (row independence of the batched GEMMs), so
          runs stay bit-identical for every setting. *)
  serve_wait_us : int;
      (** microseconds a partial service batch may age before some
          submitter flushes it (only meaningful with [serve_batch > 0]). *)
  cache_stripes : int;
      (** number of mutex-guarded shards of the shared striped cache
          (rounded up to a power of two; only meaningful with
          [eval_cache > 0] and [domains > 1]). *)
  pretrain_labels : string option;
      (** path to a {!Labels} file of exact-optimal [(graph, assignment,
          cost)] records: each label is expanded into one training tuple
          per move and enqueued into the replay buffer {e before} any
          self-play, so early gradient batches learn from proven-optimal
          decisions (RL4ReAl-style supervised warm-up).  Fresh runs only
          — ignored when resuming from a checkpoint.  [None] (the
          default) disables seeding. *)
  quantize_serve : bool;
      (** serve MCTS leaf evaluations through the int8 quantized path
          ([Nn.Pvnet]) whenever a current [Check.Quantcert] certificate
          is held: both nets are certified at startup and the candidate
          is recertified after every optimizer step (weight mutation
          revokes the version-stamped certificate); when certification
          fails, that version silently serves float.  Replicas inherit
          certificates with the weights.  Default [false] — the int8
          path is an approximation, so runs are {e not} bit-identical
          to float serving. *)
}

val default_config : m:int -> config
(** Laptop-scale defaults (see DESIGN.md §6); raise the knobs toward the
    paper's 200 × 100 schedule with the [bin/train] CLI. *)

type progress = {
  iteration : int;
  mean_loss : float;
  arena_wins : int;
  arena_ties : int;
  kept : bool;  (** candidate accepted as the new best *)
  replay_size : int;
  episodes_failed : int;  (** self-plays that dead-ended *)
}

(** {1 Episode rng discipline (shared with the distributed trainer)}

    Per-episode rngs come from per-actor split streams rooted in a
    {e manifest seed}: actor [i]'s root is the (i+1)-th sequential
    [Random.State.split] of [Random.State.make [|seed|]], and global
    episode [G] uses split #[(G - i) / actors] of actor [G mod actors]'s
    root.  The in-process trainer is the actors=1 topology (successive
    splits of actor 0's root), so a [--actors 1] distributed run is
    sample-for-sample equal to it by construction, and an N-actor run is
    bit-reproducible from [(seed, N)] alone.  The seed itself is drawn
    from the main rng once per fresh run and checkpointed (with the
    episode-stream position) in [<prefix>.dist.txt]. *)

val actor_root : manifest_seed:int -> int -> Random.State.t
(** The root rng of one actor's episode stream.
    @raise Invalid_argument on a negative actor id. *)

val self_play_episode :
  ?best_cache:Nn.Cache.t ->
  ?current_cache:Nn.Cache.t ->
  ?best_serve:Nn.Infer.t ->
  ?current_serve:Nn.Infer.t ->
  rng:Random.State.t ->
  best:Nn.Pvnet.t ->
  current:Nn.Pvnet.t ->
  config ->
  Nn.Pvnet.sample list * bool
(** One self-play episode exactly as the training loop plays it (best
    player sets the cost reference, candidate collects tuples): the
    stamped samples and whether the candidate dead-ended.  Exposed for
    actor processes; caches/serving are bitwise-neutral, so an uncached
    actor call yields the same tuples as the learner's configuration. *)

(** {1 Episode/replay source}

    The training loop is abstracted over where episodes come from and
    where replay tuples live.  The in-process default plays episodes on
    the run's own domain pool into a plain {!Replay} ring; the
    distributed learner ([Dist.Learner]) substitutes actor processes
    and a sharded replay behind the same record.  The loop drives it as:
    broadcast parameters, dispatch [src_pipeline] iterations ahead,
    collect, add, sample (with optional per-sample staleness weights fed
    to [Nn.Pvnet.train_batch_parallel]). *)

type episode_result = {
  er_samples : Nn.Pvnet.sample list;
  er_failed : bool;
  er_generation : int;  (** generation the episode was played under *)
  er_origin : int;  (** producing actor id (0 in-process) *)
}

type source = {
  src_pipeline : int;
      (** iterations dispatch runs ahead of collection (0 in-process);
          pipelined episodes are played under weights exactly this many
          generations stale, deterministically *)
  src_broadcast : generation:int -> unit;
  src_dispatch : iteration:int -> unit;
  src_collect : iteration:int -> episode_result array;
      (** blocks until the iteration's episodes are in, returned in
          global episode order *)
  src_add : episode_result array -> unit;
  src_seed : Nn.Pvnet.sample list -> unit;  (** pretraining tuples *)
  src_sample :
    rng:Random.State.t -> int -> Nn.Pvnet.sample list * float array option;
      (** a training batch plus optional per-sample staleness weights
          ([None] means all ones) *)
  src_length : unit -> int;
  src_save : string -> unit;  (** replay checkpoint (Replay text format) *)
  src_load : string -> unit;
  src_shutdown : unit -> unit;
}

val run :
  ?on_iteration:(progress -> unit) ->
  ?make_source:
    (manifest_seed:int ->
    resume_episodes:int ->
    best:Nn.Pvnet.t ->
    current:Nn.Pvnet.t ->
    source) ->
  rng:Random.State.t ->
  config ->
  Nn.Pvnet.t
(** Returns the final best network.  [make_source] (default: the
    in-process source) receives the run's manifest seed, the number of
    episodes already consumed by a resumed checkpoint (its streams must
    fast-forward past them), and the two live nets it will broadcast. *)
