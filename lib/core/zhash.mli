(** Zobrist-style incremental hashing of PBQP game states.

    [hash(state) = base ~uid:(Graph.uid g)  xor  ⊕ move keys of the
    colored prefix], maintained in O(1) per transition by {!State} and
    [Istate] cursors.  Keys are splitmix64-mixed (no table); including
    the depth in each move key makes distinct color {e sequences} hash
    differently, not just distinct multisets, so cache entries are only
    shared between states produced by the same moves on the same instance
    — which are bitwise equal. *)

val mix : int -> int
(** The splitmix64 finalizer, truncated to [0 .. max_int]. *)

val base : uid:int -> int
(** Base key of a graph instance ([Pbqp.Graph.uid]). *)

val move : depth:int -> vertex:int -> color:int -> m:int -> int
(** Key of "the [depth]-th move colored [vertex] with [color]" ([m] =
    number of colors, making [(vertex, color)] encodings disjoint). *)
