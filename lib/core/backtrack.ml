open Pbqp

type config = {
  mcts : Mcts.config;
  enabled : bool;
  replan : bool;
  max_backtracks : int;
  rollout : (State.t -> float) option;
}

let default_config =
  { mcts = Mcts.default_config; enabled = true; replan = true;
    max_backtracks = 100_000; rollout = None }

type result = {
  solution : Solution.t option;
  cost : Cost.t;
  nodes : int;
  backtracks : int;
  budget_exhausted : bool;
}

(* Per-depth search bookkeeping: which colors were already tried at this
   position, in which preference order the rest should be taken. *)
type level = { mutable untried : int list; mutable tried : int list }

(* State-representation adapter: the driver below runs over persistent
   states and incremental cursors alike (legality/terminality already
   live in the game record; these are the solver-only queries). *)
type 'a ops = {
  is_complete : 'a -> bool;
  is_dead_end : 'a -> bool;
  base_cost : 'a -> Cost.t;
  assignment : 'a -> Solution.t;
}

let rank_actions legal st (p : float array) ~excluding =
  let legal_actions =
    List.filter
      (fun a -> legal st a && not (List.mem a excluding))
      (List.init (Array.length p) Fun.id)
  in
  (* Highest policy mass first; ties on the smaller color. *)
  List.stable_sort (fun a b -> Float.compare p.(b) p.(a)) legal_actions

let solve_with ~game ~ops config state =
  let tree = Mcts.create config.mcts game state in
  let legal = game.Mcts.legal in
  let levels : (int, level) Hashtbl.t = Hashtbl.create 32 in
  let backtracks = ref 0 in
  let budget_exhausted = ref false in
  let success st =
    {
      solution = Some (ops.assignment st);
      cost = ops.base_cost st;
      nodes = Mcts.nodes_created tree;
      backtracks = !backtracks;
      budget_exhausted = false;
    }
  in
  let failure () =
    {
      solution = None;
      cost = Cost.inf;
      nodes = Mcts.nodes_created tree;
      backtracks = !backtracks;
      budget_exhausted = !budget_exhausted;
    }
  in
  let level_at st depth =
    match Hashtbl.find_opt levels depth with
    | Some l -> l
    | None ->
        Mcts.run tree;
        let p = Mcts.policy tree in
        let l = { untried = rank_actions legal st p ~excluding:[]; tried = [] } in
        Hashtbl.replace levels depth l;
        l
  in
  let rec step () =
    let st = Mcts.root_state tree in
    if ops.is_complete st then
      if Cost.is_finite (ops.base_cost st) then success st else backtrack ()
    else if ops.is_dead_end st then backtrack ()
    else begin
      let depth = Mcts.depth tree in
      let l = level_at st depth in
      match l.untried with
      | [] -> backtrack ()
      | a :: rest ->
          l.untried <- rest;
          l.tried <- a :: l.tried;
          Mcts.advance tree a;
          step ()
    end
  and backtrack () =
    if Mcts.depth tree = 0 then
      (* the root itself is out of options *)
      failure ()
    else if not config.enabled then failure ()
    else if !backtracks >= config.max_backtracks then begin
      budget_exhausted := true;
      failure ()
    end
    else begin
      incr backtracks;
      let depth = Mcts.depth tree in
      Hashtbl.remove levels depth;
      Mcts.retreat tree;
      let parent_depth = Mcts.depth tree in
      (match Hashtbl.find_opt levels parent_depth with
      | Some l when config.replan && l.untried <> [] ->
          (* Think again about the parent state: extend the game tree and
             re-rank the remaining candidates under the fresh policy. *)
          Mcts.run tree;
          let p = Mcts.policy tree in
          l.untried <-
            rank_actions legal (Mcts.root_state tree) p ~excluding:l.tried
      | _ -> ());
      step ()
    end
  in
  (* Dead-on-arrival instances (some vertex starts all-∞) fail without
     search. *)
  if ops.is_dead_end state then failure () else step ()

let state_ops =
  {
    is_complete = State.is_complete;
    is_dead_end = State.is_dead_end;
    base_cost = State.base_cost;
    assignment = State.assignment;
  }

let cursor_ops =
  {
    is_complete = Istate.Cursor.is_complete;
    is_dead_end = Istate.Cursor.is_dead_end;
    base_cost = Istate.Cursor.base_cost;
    assignment = Istate.Cursor.assignment;
  }

let solve ?cache ?serve ~net ~mode config state =
  let m = State.m state in
  let game =
    Game.make ?rollout:config.rollout ?cache ?serve ~net ~mode ~m ()
  in
  solve_with ~game ~ops:state_ops config state

let solve_incremental ?cache ?serve ~net ~mode config state =
  if config.rollout <> None then
    invalid_arg "Backtrack.solve_incremental: rollouts are unsupported";
  let m = State.m state in
  let ist = Istate.of_state state in
  let game = Game.make_incremental ?cache ?serve ~net ~mode ~m () in
  solve_with ~game ~ops:cursor_ops config (Istate.Cursor.root ist)
