open Pbqp

type t = { graph : Graph.t; assignment : Solution.t; cost : Cost.t }

let of_exact ?max_nodes ?max_seconds g =
  match Solvers.Exact.solve ?max_nodes ?max_seconds g with
  | Solvers.Exact.Optimal (sol, cost), _ ->
      Some { graph = Graph.copy g; assignment = sol; cost }
  | (Solvers.Exact.Infeasible | Solvers.Exact.Timeout _), _ -> None

let to_samples ?(order = Order.By_id) ?rng ?(value = 1.0) lbl =
  let m = Graph.m lbl.graph in
  let order = Order.compute ?rng order lbl.graph in
  let rec walk st acc =
    match State.next_vertex st with
    | None -> List.rev acc
    | Some u ->
        let c = Solution.get lbl.assignment u in
        if c < 0 || c >= m || not (State.legal st c) then
          invalid_arg
            (Printf.sprintf
               "Labels.to_samples: color %d of vertex %d is not a legal play"
               c u);
        let policy = Array.make m 0.0 in
        policy.(c) <- 1.0;
        (* the state is persistent, so its graph is a private snapshot *)
        let sample =
          { Nn.Pvnet.graph = State.graph st; next = u; policy; value }
        in
        walk (State.apply st c) (sample :: acc)
  in
  walk (State.of_graph ~order lbl.graph) []

(* --- persistence ------------------------------------------------------ *)

let to_buffer buf lbl =
  Buffer.add_string buf "label ";
  (* full precision, like Io: the cost must survive a save/load round
     trip bit-for-bit *)
  Buffer.add_string buf
    (if Cost.is_finite lbl.cost then Printf.sprintf "%.17g" lbl.cost
     else "inf");
  Buffer.add_char buf '\n';
  (* the shared one-line solution form of Pbqp.Io ("assign <colors...>") *)
  Buffer.add_string buf (Io.solution_to_string lbl.assignment);
  Buffer.add_string buf (Io.to_string lbl.graph);
  Buffer.add_string buf "endlabel\n"

let save path labels =
  let buf = Buffer.create 4096 in
  List.iter (to_buffer buf) labels;
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let fail fmt = Printf.ksprintf invalid_arg ("Labels.load: " ^^ fmt)

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  (* one record: the "assign" line, then graph lines until "endlabel" *)
  let parse_record cost rest =
    let assignment, rest =
      match rest with
      | line :: rest when String.length (String.trim line) >= 6
                          && String.sub (String.trim line) 0 6 = "assign" -> (
          match Io.solution_of_string line with
          | sol -> (sol, rest)
          | exception Invalid_argument msg -> fail "%s" msg)
      | _ -> fail "expected an assign line after a label header"
    in
    let rec graph_lines acc = function
      | [] -> fail "missing endlabel"
      | line :: rest when String.trim line = "endlabel" -> (List.rev acc, rest)
      | line :: rest -> graph_lines (line :: acc) rest
    in
    let glines, rest = graph_lines [] rest in
    let graph = Io.of_string (String.concat "\n" glines) in
    ({ graph; assignment; cost }, rest)
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        let t = String.trim line in
        if t = "" || t.[0] = '#' then parse acc rest
        else
          match String.split_on_char ' ' t with
          | [ "label"; c ] ->
              let cost =
                try Cost.of_string c
                with Invalid_argument _ -> fail "bad cost %S" c
              in
              let record, rest = parse_record cost rest in
              parse (record :: acc) rest
          | _ -> fail "expected a label header, got %S" t)
  in
  parse [] lines
