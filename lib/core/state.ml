open Pbqp

type t = {
  graph : Graph.t;
  order : int array;
  pos : int;
  base_cost : Cost.t;
  assignment : Solution.t;
  hash : int;
}

let of_graph ?order g =
  let live = Graph.vertices g in
  let order =
    match order with
    | None -> Array.of_list live
    | Some o ->
        if List.sort Int.compare (Array.to_list o) <> live then
          invalid_arg "State.of_graph: order is not a permutation of the vertices";
        Array.copy o
  in
  {
    graph = Graph.copy g;
    order;
    pos = 0;
    base_cost = Cost.zero;
    assignment = Solution.make (Graph.capacity g);
    hash = Zhash.base ~uid:(Graph.uid g);
  }

let m t = Graph.m t.graph
let next_vertex t = if t.pos < Array.length t.order then Some t.order.(t.pos) else None

let next_cost_vector t =
  Option.map (fun u -> Graph.cost t.graph u) (next_vertex t)

let legal t c =
  match next_cost_vector t with
  | Some vec -> c >= 0 && c < m t && Cost.is_finite (Vec.get vec c)
  | None -> false

let is_complete t = t.pos >= Array.length t.order

(* Shared with Istate: any yet-uncolored vertex with an all-∞ vector? *)
let has_dead_vertex g order ~pos =
  let n = Array.length order in
  let rec scan i =
    i < n && (Vec.is_all_inf (Graph.cost g order.(i)) || scan (i + 1))
  in
  scan pos

let is_dead_end t =
  (not (is_complete t)) && has_dead_vertex t.graph t.order ~pos:t.pos

let is_terminal t = is_complete t || is_dead_end t
let base_cost t = t.base_cost
let assignment t = Solution.copy t.assignment
let graph t = t.graph
let order t = Array.copy t.order
let colored_count t = t.pos
let remaining t = Array.length t.order - t.pos
let hash t = t.hash

let apply t c =
  match next_vertex t with
  | None -> invalid_arg "State.apply: game is complete"
  | Some u ->
      if not (legal t c) then invalid_arg "State.apply: illegal color";
      let g = Graph.copy_shared t.graph in
      let step = Vec.get (Graph.cost g u) c in
      (Graph.iter_neighbors g u (fun v muv ->
           Mat.add_row_into muv c (Graph.cost g v))
       [@analyze.order_insensitive
         "each neighbor's cost vector is updated independently; no \
          cross-neighbor accumulation"]);
      Graph.remove_vertex g u;
      let assignment = Solution.copy t.assignment in
      Solution.set assignment u c;
      {
        graph = g;
        order = t.order;
        pos = t.pos + 1;
        base_cost = Cost.add t.base_cost step;
        assignment;
        hash = t.hash lxor Zhash.move ~depth:t.pos ~vertex:u ~color:c ~m:(m t);
      }

let pp ppf t =
  Format.fprintf ppf "@[<v>state: %d/%d colored, base cost %a%s@,%a@]"
    t.pos (Array.length t.order) Cost.pp t.base_cost
    (if is_dead_end t then " (dead end)" else "")
    Graph.pp t.graph
