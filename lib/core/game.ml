open Pbqp

type mode = Feasibility | Minimize of { reference : Cost.t; shaping : float }

let reward mode cost =
  match mode with
  | Feasibility -> if Cost.is_finite cost then 1.0 else -1.0
  | Minimize { reference; shaping } -> (
      match (Cost.is_finite cost, Cost.is_finite reference) with
      | false, _ -> -1.0
      | true, false -> 1.0
      | true, true ->
          let d = Cost.to_float reference -. Cost.to_float cost in
          if shaping > 0.0 then Float.tanh (d /. shaping)
          else if d > 1e-9 then 1.0
          else if d < -1e-9 then -1.0
          else 0.0)

let final_cost st = if State.is_complete st then State.base_cost st else Cost.inf

(* The transposition cache holds the network's raw (priors, value) keyed
   by (state hash, next vertex) and stamped with the weights version; a
   roll-out blend is applied after lookup (it depends on the state, not
   the weights).  Keys only repeat for bitwise-identical states, so
   search results with and without a cache are bit-identical. *)
let cached cache net key compute =
  match cache with
  | None -> compute ()
  | Some cache -> (
      let version = Nn.Pvnet.version net in
      match Nn.Cache.find cache ~version key with
      | Some r -> r
      | None ->
          let r = compute () in
          Nn.Cache.store cache ~version key r;
          r)

(* A wave's cache misses in one coalesced forward: through the
   cross-worker inference service when one is installed, directly on the
   caller's replica otherwise.  [Infer.submit] is bitwise identical to
   the direct call (row independence of the batched GEMMs), so the two
   paths are interchangeable result-wise. *)
let run_batch serve net preps =
  match serve with
  | Some srv -> Nn.Infer.submit srv ~net preps
  | None -> Nn.Pvnet.predict_prepared net preps

let make ?rollout ?(batched = true) ?cache ?serve ~net ~mode ~m () =
  let blend st v =
    match rollout with Some f -> 0.5 *. (v +. f st) | None -> v
  in
  (* One network forward for a whole wave of leaves: states that still
     have a vertex to color go through [Pvnet.predict_batch] together
     (bit-identical to per-state [predict]) — minus the cache hits, which
     skip the forward entirely; the rest — complete games and dead ends
     that slipped past [is_terminal] — get the same defensive terminal
     reward the scalar path uses. *)
  let batched_evaluate states =
    let states = Array.of_list states in
    let out = Array.make (Array.length states) ([||], 0.0) in
    let version = Nn.Pvnet.version net in
    let misses = ref [] in
    Array.iteri
      (fun i st ->
        match State.next_vertex st with
        | Some next -> (
            let key = (State.hash st, next) in
            let hit =
              match cache with
              | Some cache -> Nn.Cache.find cache ~version key
              | None -> None
            in
            match hit with
            | Some (priors, v) -> out.(i) <- (priors, blend st v)
            | None -> misses := (i, st, next, key) :: !misses)
        | None -> out.(i) <- (Array.make m 0.0, reward mode (final_cost st)))
      states;
    let misses = List.rev !misses in
    (match misses with
    | [] -> ()
    | _ ->
        let preds =
          run_batch serve net
            (Array.of_list
               (List.map
                  (fun (_, st, next, _) ->
                    Nn.Pvnet.prepare net (State.graph st) ~next)
                  misses))
        in
        List.iteri
          (fun j (i, st, _, key) ->
            let ((priors, v) as r) = preds.(j) in
            (match cache with
            | Some cache -> Nn.Cache.store cache ~version key r
            | None -> ());
            out.(i) <- (priors, blend st v))
          misses);
    out
  in
  {
    Mcts.num_actions = m;
    is_terminal = State.is_terminal;
    terminal_value = (fun st -> reward mode (final_cost st));
    legal = State.legal;
    apply = State.apply;
    evaluate =
      (fun st ->
        match State.next_vertex st with
        | Some next ->
            let priors, v =
              cached cache net (State.hash st, next) (fun () ->
                  Nn.Pvnet.predict net (State.graph st) ~next)
            in
            (priors, blend st v)
        | None -> (Array.make m 0.0, reward mode (final_cost st)));
    batched_evaluate = (if batched then Some batched_evaluate else None);
  }

(* --- Incremental variant --------------------------------------------- *)

let cursor_final_cost c =
  if Istate.Cursor.is_complete c then Istate.Cursor.base_cost c else Cost.inf

let make_incremental ?(batched = true) ?cache ?serve ~net ~mode ~m () =
  (* Leaves of a wave live on one shared trail graph, so each is seeked
     and captured as a [Pvnet.prepared] in turn; the trunk GEMMs then run
     over the whole batch at once.  Roll-out blending is a persistent-
     state extension and is not offered here. *)
  let batched_evaluate cursors =
    let cursors = Array.of_list cursors in
    let out = Array.make (Array.length cursors) ([||], 0.0) in
    let version = Nn.Pvnet.version net in
    let misses = ref [] in
    Array.iteri
      (fun i cur ->
        match Istate.Cursor.next_vertex cur with
        | Some next -> (
            let key = (Istate.Cursor.hash cur, next) in
            let hit =
              match cache with
              | Some cache -> Nn.Cache.find cache ~version key
              | None -> None
            in
            match hit with
            | Some r -> out.(i) <- r
            | None ->
                let p = Nn.Pvnet.prepare net (Istate.Cursor.graph cur) ~next in
                misses := (i, key, p) :: !misses)
        | None ->
            out.(i) <- (Array.make m 0.0, reward mode (cursor_final_cost cur)))
      cursors;
    let misses = List.rev !misses in
    (match misses with
    | [] -> ()
    | _ ->
        let preds =
          run_batch serve net
            (Array.of_list (List.map (fun (_, _, p) -> p) misses))
        in
        List.iteri
          (fun j (i, key, _) ->
            let r = preds.(j) in
            (match cache with
            | Some cache -> Nn.Cache.store cache ~version key r
            | None -> ());
            out.(i) <- r)
          misses);
    out
  in
  {
    Mcts.num_actions = m;
    is_terminal = Istate.Cursor.is_terminal;
    terminal_value = (fun c -> reward mode (cursor_final_cost c));
    legal = Istate.Cursor.legal;
    apply = Istate.Cursor.apply;
    evaluate =
      (fun c ->
        match Istate.Cursor.next_vertex c with
        | Some next ->
            cached cache net
              (Istate.Cursor.hash c, next)
              (fun () -> Nn.Pvnet.predict net (Istate.Cursor.graph c) ~next)
        | None -> (Array.make m 0.0, reward mode (cursor_final_cost c)));
    batched_evaluate = (if batched then Some batched_evaluate else None);
  }
