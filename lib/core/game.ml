open Pbqp

type mode = Feasibility | Minimize of { reference : Cost.t; shaping : float }

let reward mode cost =
  match mode with
  | Feasibility -> if Cost.is_finite cost then 1.0 else -1.0
  | Minimize { reference; shaping } -> (
      match (Cost.is_finite cost, Cost.is_finite reference) with
      | false, _ -> -1.0
      | true, false -> 1.0
      | true, true ->
          let d = Cost.to_float reference -. Cost.to_float cost in
          if shaping > 0.0 then Float.tanh (d /. shaping)
          else if d > 1e-9 then 1.0
          else if d < -1e-9 then -1.0
          else 0.0)

let final_cost st = if State.is_complete st then State.base_cost st else Cost.inf

let make ?rollout ?(batched = true) ~net ~mode ~m () =
  let blend st v =
    match rollout with Some f -> 0.5 *. (v +. f st) | None -> v
  in
  (* One network forward for a whole wave of leaves: states that still
     have a vertex to color go through [Pvnet.predict_batch] together
     (bit-identical to per-state [predict]); the rest — complete games
     and dead ends that slipped past [is_terminal] — get the same
     defensive terminal reward the scalar path uses. *)
  let batched_evaluate states =
    let states = Array.of_list states in
    let out = Array.make (Array.length states) ([||], 0.0) in
    let with_next = ref [] in
    Array.iteri
      (fun i st ->
        match State.next_vertex st with
        | Some next -> with_next := (i, st, next) :: !with_next
        | None -> out.(i) <- (Array.make m 0.0, reward mode (final_cost st)))
      states;
    let with_next = List.rev !with_next in
    (match with_next with
    | [] -> ()
    | _ ->
        let preds =
          Nn.Pvnet.predict_batch net
            (List.map (fun (_, st, next) -> (State.graph st, next)) with_next)
        in
        List.iteri
          (fun j (i, st, _) ->
            let priors, v = preds.(j) in
            out.(i) <- (priors, blend st v))
          with_next);
    out
  in
  {
    Mcts.num_actions = m;
    is_terminal = State.is_terminal;
    terminal_value = (fun st -> reward mode (final_cost st));
    legal = State.legal;
    apply = State.apply;
    evaluate =
      (fun st ->
        match State.next_vertex st with
        | Some next ->
            let priors, v = Nn.Pvnet.predict net (State.graph st) ~next in
            (priors, blend st v)
        | None -> (Array.make m 0.0, reward mode (final_cost st)));
    batched_evaluate = (if batched then Some batched_evaluate else None);
  }
