(** PBQP graphs.

    A PBQP problem instance [G(V, E, C^V, C^E)] over [m] colors: every
    vertex carries an [m]-entry cost vector, every edge an [m × m] cost
    matrix.  The structure is mutable — graph reductions and RL transitions
    delete vertices and fold costs in place — and {!copy} gives the
    persistent snapshots that search trees need.

    Vertices are identified by dense integer ids [0 .. capacity-1]; deleted
    vertices stay allocated but dead.  Each undirected edge is stored in
    both orientations (the matrix at [v]'s side is the transpose of the one
    at [u]'s side), kept coherent by this module.  An edge whose matrix is
    all-zero carries no constraint and is removed eagerly, so [degree]
    counts only meaningful edges — matching the paper's convention that
    [u, v] are disconnected iff [C_uv = O]. *)

type t

val create : m:int -> n:int -> t
(** [create ~m ~n] is a graph with [n] live vertices, zero cost vectors and
    no edges. @raise Invalid_argument if [m <= 0] or [n < 0]. *)

val uid : t -> int
(** A process-unique {e instance} identity, minted by {!create} and
    preserved by {!copy} and {!copy_shared} — every state derived from one
    problem instance shares it.  Used to key per-instance memoization
    (the evaluation cache's Zobrist base). *)

val m : t -> int
(** Number of colors. *)

val capacity : t -> int
(** Size of the id space (original vertex count). *)

val n_alive : t -> int

val is_alive : t -> int -> bool

val vertices : t -> int list
(** Live vertex ids, increasing. *)

val cost : t -> int -> Vec.t
(** The live cost vector itself (not a copy) — mutate with care.
    @raise Invalid_argument if the vertex is dead or out of range. *)

val set_cost : t -> int -> Vec.t -> unit
(** Replaces the vector (takes a copy). *)

val add_to_cost : t -> int -> Vec.t -> unit
(** Accumulates into the vertex's cost vector. *)

val edge : t -> int -> int -> Mat.t option
(** [edge g u v] is the cost matrix oriented with [u]'s colors as rows, or
    [None] if there is no (non-zero) edge.  The returned matrix is a copy. *)

val edge_ref : t -> int -> int -> Mat.t option
(** Like {!edge} but returns the graph's own matrix without copying — for
    read-only hot paths (solvers, the GCN encoder).  Callers must not
    mutate it. *)

val add_edge : t -> int -> int -> Mat.t -> unit
(** [add_edge g u v muv] accumulates [muv] (oriented [u]-rows) into the
    edge, creating it if absent; if the resulting matrix is all-zero the
    edge is removed.  @raise Invalid_argument on self-edges, dead endpoints
    or shape mismatch. *)

val remove_edge : t -> int -> int -> unit

val neighbors : t -> int -> int list
(** Live neighbors, increasing. *)

val iter_neighbors : t -> int -> (int -> Mat.t -> unit) -> unit
(** [iter_neighbors g u f] calls [f v muv] for every live neighbor [v] of
    [u] with the stored matrix oriented [u]-rows, in unspecified order and
    without allocating the sorted {!neighbors} list.  The matrices are the
    graph's own — do not mutate.  [f] must not add or remove edges of [u]
    (it iterates the live adjacency table). *)

val degree : t -> int -> int

val remove_vertex : t -> int -> unit
(** Kills the vertex and detaches all its edges. *)

(** {1 Trail primitives}

    Constant-bookkeeping mutators for incremental apply/undo states
    (see [Core.Istate]): a move detaches a vertex keeping enough to put it
    back, and swaps neighbor cost vectors wholesale so undo restores the
    {e original} float contents bit for bit (never by subtracting). *)

val swap_cost : t -> int -> Vec.t -> Vec.t
(** [swap_cost g u v] installs [v] as [u]'s cost vector {e without
    copying} and returns the previous vector.  The caller owns the
    returned vector and must not mutate [v] afterwards.
    @raise Invalid_argument on a dead vertex or length mismatch. *)

type detached
(** Undo record of one {!detach_vertex}: the vertex and its incident
    matrix pairs (physical, both orientations). *)

val detach_vertex : t -> int -> detached
(** Like {!remove_vertex} but returns the undo record, in O(deg). *)

val redetach_vertex : t -> detached -> unit
(** Detach again a vertex previously detached with {!detach_vertex} and
    restored with {!reattach_vertex}: the record already lists the
    incident edges, so the redo builds no list — O(deg), allocation-free.
    Only valid when the graph is back in the exact state the record was
    made in.  @raise Invalid_argument on a dead vertex. *)

val reattach_vertex : t -> detached -> unit
(** Restores a detached vertex and its edges, re-installing the {e same}
    physical matrices (so [Mat.id]-keyed caches stay hot).  Only valid on
    the graph that produced the record, with the neighbors alive again —
    i.e. undo in LIFO order.  @raise Invalid_argument if the vertex is
    alive. *)

val liberty : t -> int -> int
(** Number of admissible colors of a vertex (finite cost-vector entries). *)

val copy : t -> t
(** Deep copy (fresh vectors and matrices). *)

val copy_shared : t -> t
(** Copy with fresh cost vectors and adjacency tables but {e shared}
    matrix objects.  Sound because no graph operation mutates a matrix in
    place ([add_edge] replaces with a freshly-built sum); the RL state
    transition uses this so that MCTS states share matrices and
    per-matrix caches stay hot. *)

val fold_edges : (int -> int -> Mat.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over each live undirected edge exactly once, with [u < v] and the
    matrix oriented [u]-rows (the internal matrix, not a copy). *)

val edge_count : t -> int

val iter_adjacency : (int -> int -> Mat.t -> unit) -> t -> unit
(** Iterates over every {e stored} directed adjacency entry [(u, v, muv)],
    without the liveness and orientation filtering of {!fold_edges}: a
    symmetric edge is visited in both orientations, and entries dangling
    on dead vertices (which {!check} would reject) are visited too.  This
    exposes the raw representation for external invariant checkers; the
    matrices are the graph's own — do not mutate. *)

val equal : t -> t -> bool
(** Structural equality on live vertices, costs and edges (exact). *)

val approx_equal : ?eps:float -> t -> t -> bool

val check : t -> unit
(** Validates internal invariants (orientation coherence, symmetry, no
    dead-edge references); raises [Failure] describing the first violation.
    Used by tests. *)

val pp : Format.formatter -> t -> unit
