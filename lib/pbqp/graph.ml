type t = {
  uid : int;
  m : int;
  n : int;
  alive : bool array;
  costs : Vec.t array;
  adj : (int, Mat.t) Hashtbl.t array;
      (* adj.(u) maps live neighbor v to the matrix oriented with u's colors
         as rows.  Symmetric: adj.(v) holds the transpose. *)
}

(* Instance identities survive copies (both [copy] flavors use [{ g with
   ... }]), so all states derived from one problem share the uid.  Atomic:
   graphs are minted concurrently from self-play worker domains. *)
let next_uid =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let create ~m ~n =
  if m <= 0 then invalid_arg "Graph.create: m <= 0";
  if n < 0 then invalid_arg "Graph.create: n < 0";
  {
    uid = next_uid ();
    m;
    n;
    alive = Array.make n true;
    costs = Array.init n (fun _ -> Vec.zero m);
    adj = Array.init n (fun _ -> Hashtbl.create 4);
  }

let uid g = g.uid
let m g = g.m
let capacity g = g.n

let check_vertex g u name =
  if u < 0 || u >= g.n then invalid_arg (Printf.sprintf "Graph.%s: vertex %d out of range" name u);
  if not g.alive.(u) then invalid_arg (Printf.sprintf "Graph.%s: vertex %d is dead" name u)

let is_alive g u = u >= 0 && u < g.n && g.alive.(u)

let vertices g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if g.alive.(u) then acc := u :: !acc
  done;
  !acc

let n_alive g = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 g.alive

let cost g u =
  check_vertex g u "cost";
  g.costs.(u)

let set_cost g u v =
  check_vertex g u "set_cost";
  if Vec.length v <> g.m then invalid_arg "Graph.set_cost: wrong length";
  g.costs.(u) <- Vec.copy v

let add_to_cost g u v =
  check_vertex g u "add_to_cost";
  Vec.add_into g.costs.(u) v

let edge g u v =
  check_vertex g u "edge";
  check_vertex g v "edge";
  Option.map Mat.copy (Hashtbl.find_opt g.adj.(u) v)

let edge_ref g u v =
  check_vertex g u "edge_ref";
  check_vertex g v "edge_ref";
  Hashtbl.find_opt g.adj.(u) v

let remove_edge g u v =
  check_vertex g u "remove_edge";
  check_vertex g v "remove_edge";
  Hashtbl.remove g.adj.(u) v;
  Hashtbl.remove g.adj.(v) u

let add_edge g u v muv =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-edge";
  if Mat.rows muv <> g.m || Mat.cols muv <> g.m then
    invalid_arg "Graph.add_edge: shape mismatch";
  let combined =
    match Hashtbl.find_opt g.adj.(u) v with
    | None -> Mat.copy muv
    | Some existing -> Mat.add existing muv
  in
  if Mat.is_zero combined then remove_edge g u v
  else begin
    Hashtbl.replace g.adj.(u) v combined;
    Hashtbl.replace g.adj.(v) u (Mat.transpose combined)
  end

let neighbors g u =
  check_vertex g u "neighbors";
  (Hashtbl.fold (fun v _ acc -> v :: acc) g.adj.(u) []
  |> List.sort Int.compare)
[@@analyze.order_insensitive "collected set is sorted before use"]

let iter_neighbors g u f =
  check_vertex g u "iter_neighbors";
  Hashtbl.iter f g.adj.(u)
[@@analyze.order_insensitive
  "hot-path raw-order iteration; every caller's per-neighbor work is \
   independent (no cross-neighbor accumulation), see Istate.push_node"]

let degree g u =
  check_vertex g u "degree";
  Hashtbl.length g.adj.(u)

let remove_vertex g u =
  check_vertex g u "remove_vertex";
  Hashtbl.iter (fun v _ -> Hashtbl.remove g.adj.(v) u) g.adj.(u);
  Hashtbl.reset g.adj.(u);
  g.alive.(u) <- false
[@@analyze.order_insensitive "commuting removals of distinct keys"]

(* --- Trail primitives (incremental apply/undo) ----------------------- *)

let swap_cost g u v =
  check_vertex g u "swap_cost";
  if Vec.length v <> g.m then invalid_arg "Graph.swap_cost: wrong length";
  let old = g.costs.(u) in
  g.costs.(u) <- v;
  old

type detached = { d_vertex : int; d_adj : (int * Mat.t * Mat.t) list }

let detach_vertex g u =
  check_vertex g u "detach_vertex";
  let entries =
    Hashtbl.fold
      (fun v muv acc -> (v, muv, Hashtbl.find g.adj.(v) u) :: acc)
      g.adj.(u) []
  in
  List.iter (fun (v, _, _) -> Hashtbl.remove g.adj.(v) u) entries;
  Hashtbl.reset g.adj.(u);
  g.alive.(u) <- false;
  { d_vertex = u; d_adj = entries }
[@@analyze.order_insensitive
  "entry-list order only sequences commuting per-neighbor \
   detach/reattach operations"]

(* Detach again a vertex previously detached and reattached: the record
   already lists the incident edges, so no list is rebuilt — the
   allocation-free redo counterpart of [detach_vertex]. *)
let redetach_vertex g d =
  let u = d.d_vertex in
  check_vertex g u "redetach_vertex";
  List.iter (fun (v, _, _) -> Hashtbl.remove g.adj.(v) u) d.d_adj;
  Hashtbl.reset g.adj.(u);
  g.alive.(u) <- false

let reattach_vertex g d =
  let u = d.d_vertex in
  if u < 0 || u >= g.n then invalid_arg "Graph.reattach_vertex: out of range";
  if g.alive.(u) then invalid_arg "Graph.reattach_vertex: vertex is alive";
  g.alive.(u) <- true;
  List.iter
    (fun (v, muv, mvu) ->
      Hashtbl.replace g.adj.(u) v muv;
      Hashtbl.replace g.adj.(v) u mvu)
    d.d_adj

let liberty g u = Vec.liberty (cost g u)

let copy_with mat_copy g =
  {
    g with
    alive = Array.copy g.alive;
    costs = Array.map Vec.copy g.costs;
    adj =
      Array.map
        (fun tbl ->
          let tbl' = Hashtbl.create (Hashtbl.length tbl) in
          Hashtbl.iter (fun v m -> Hashtbl.add tbl' v (mat_copy m)) tbl;
          tbl')
        g.adj;
  }
[@@analyze.order_insensitive
  "populates a fresh table keyed by neighbor id; adjacency is a map, \
   consumers never depend on its physical order"]

let copy g = copy_with Mat.copy g
let copy_shared g = copy_with Fun.id g

(* Deterministic edge order: u ascending, then v ascending within u's
   (sorted) neighbor list — never raw hash-table order.  Callers fold
   floats through this (Solution.cost, Stats, Liberty), so a fixed
   visit order is what keeps summed costs reproducible across runs and
   checkpoint reloads regardless of edge insertion/removal history. *)
let fold_edges f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    if g.alive.(u) then
      List.iter
        (fun v -> if u < v then acc := f u v (Hashtbl.find g.adj.(u) v) !acc)
        (neighbors g u)
  done;
  !acc

let edge_count g = fold_edges (fun _ _ _ acc -> acc + 1) g 0

let iter_adjacency f g =
  Array.iteri (fun u tbl -> Hashtbl.iter (fun v muv -> f u v muv) tbl) g.adj
[@@analyze.order_insensitive
  "raw representation scan for the checkers; callers bucket entries \
   per vertex before order-sensitive processing"]

let equal_with vec_eq mat_eq a b =
  a.m = b.m && a.n = b.n
  && Array.for_all2 Bool.equal a.alive b.alive
  && (let ok = ref true in
      for u = 0 to a.n - 1 do
        if a.alive.(u) then begin
          if not (vec_eq a.costs.(u) b.costs.(u)) then ok := false;
          if Hashtbl.length a.adj.(u) <> Hashtbl.length b.adj.(u) then ok := false
          else
            Hashtbl.iter
              (fun v muv ->
                match Hashtbl.find_opt b.adj.(u) v with
                | Some muv' when mat_eq muv muv' -> ()
                | _ -> ok := false)
              a.adj.(u)
        end
      done;
      !ok)
[@@analyze.order_insensitive "per-key membership tests only"]

let equal a b = equal_with Vec.equal Mat.equal a b

let approx_equal ?eps a b =
  equal_with (Vec.approx_equal ?eps) (Mat.approx_equal ?eps) a b

let check g =
  for u = 0 to g.n - 1 do
    if g.alive.(u) then begin
      if Vec.length g.costs.(u) <> g.m then
        failwith (Printf.sprintf "Graph.check: vertex %d cost length" u);
      Hashtbl.iter
        (fun v muv ->
          if not (is_alive g v) then
            failwith (Printf.sprintf "Graph.check: edge (%d,%d) to dead vertex" u v);
          if v = u then failwith (Printf.sprintf "Graph.check: self edge %d" u);
          if Mat.rows muv <> g.m || Mat.cols muv <> g.m then
            failwith (Printf.sprintf "Graph.check: edge (%d,%d) shape" u v);
          if Mat.is_zero muv then
            failwith (Printf.sprintf "Graph.check: zero edge (%d,%d) kept" u v);
          match Hashtbl.find_opt g.adj.(v) u with
          | None -> failwith (Printf.sprintf "Graph.check: edge (%d,%d) asymmetric" u v)
          | Some mvu ->
              if not (Mat.equal mvu (Mat.transpose muv)) then
                failwith (Printf.sprintf "Graph.check: edge (%d,%d) not transposed" u v))
        g.adj.(u)
    end
    else if Hashtbl.length g.adj.(u) <> 0 then
      failwith (Printf.sprintf "Graph.check: dead vertex %d has edges" u)
  done
[@@analyze.order_insensitive "per-edge validation, no accumulation"]

let pp ppf g =
  Format.fprintf ppf "@[<v>PBQP graph: m=%d, %d live / %d vertices, %d edges" g.m
    (n_alive g) g.n (edge_count g);
  List.iter
    (fun u -> Format.fprintf ppf "@,  v%d: %a" u Vec.pp g.costs.(u))
    (vertices g);
  fold_edges
    (fun u v muv () ->
      Format.fprintf ppf "@,  e(%d,%d):@,    @[<v>%a@]" u v Mat.pp muv)
    g ();
  Format.fprintf ppf "@]"
