(** Cost matrices.

    A cost matrix on edge [(u, v)] has [rows] = number of colors of [u] and
    [cols] = number of colors of [v]; entry [(i, j)] is the additional cost
    of coloring [u] with [i] {e and} [v] with [j].  The all-zero matrix
    means the two vertices do not interact (the edge is redundant). *)

type t

val make : rows:int -> cols:int -> Cost.t -> t

val init : rows:int -> cols:int -> (int -> int -> Cost.t) -> t

val zero : rows:int -> cols:int -> t

val of_arrays : float array array -> t
(** Row-major copy. @raise Invalid_argument on ragged input, empty input or
    NaN entries. *)

val id : t -> int
(** A unique identity minted at construction.  Every constructor
    ([init], [copy], [add], [map], [transpose], …) returns a fresh id;
    matrix contents are immutable except through {!set}, so the id is a
    sound memoization key for callers that never call [set] (the GCN
    encoder caches per-matrix derived tensors by it). *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> Cost.t

val set : t -> int -> int -> Cost.t -> unit

val copy : t -> t

val transpose : t -> t

val row : t -> int -> Vec.t
(** [row m i] is a fresh vector of row [i]. *)

val col : t -> int -> Vec.t

val add : t -> t -> t
(** Pointwise sum. @raise Invalid_argument on shape mismatch. *)

val add_into : t -> t -> unit

val add_row_into : t -> int -> Vec.t -> unit
(** [add_row_into m i v] accumulates row [i] of [m] into [v] in place,
    entry by entry in ascending column order — the same float additions
    as [Vec.add_into v (Mat.row m i)], without allocating the row.
    @raise Invalid_argument on a bad row index or length mismatch. *)

val is_zero : t -> bool
(** True iff every entry is exactly [0.] — the edge carries no constraint. *)

val has_inf : t -> bool

val min_value : t -> Cost.t

val interference : int -> t
(** [interference m] is the classic graph-coloring matrix: [inf] on the
    diagonal, [0] elsewhere. *)

val equal : t -> t -> bool

val approx_equal : ?eps:float -> t -> t -> bool

val map : (Cost.t -> Cost.t) -> t -> t

val iteri : (int -> int -> Cost.t -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
