type t = { id : int; rows : int; cols : int; data : float array }

(* Unique ids let callers (the GCN encoder) memoize derived data by
   physical matrix; every constructor mints a fresh id, and no operation
   ever mutates [data] of an existing matrix except the explicit [set].
   Atomic: matrices are minted concurrently from self-play worker
   domains, and a torn increment would hand two matrices one cache key. *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let make ~rows ~cols c =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.make: non-positive shape";
  { id = next_id (); rows; cols; data = Array.make (rows * cols) c }

let init ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.init: non-positive shape";
  { id = next_id (); rows; cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let id m = m.id

let zero ~rows ~cols = make ~rows ~cols 0.0

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged";
      Array.iter (fun x -> if Float.is_nan x then invalid_arg "Mat.of_arrays: NaN") r)
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j c = m.data.((i * m.cols) + j) <- c
let copy m = { m with id = next_id (); data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)
let row m i = Vec.init m.cols (fun j -> get m i j)
let col m j = Vec.init m.rows (fun i -> get m i j)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape mismatch";
  { a with id = next_id ();
    data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let add_into dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Mat.add_into: shape mismatch";
  Array.iteri (fun k x -> dst.data.(k) <- dst.data.(k) +. x) src.data

let add_row_into m i (v : Vec.t) =
  if i < 0 || i >= m.rows then invalid_arg "Mat.add_row_into: row out of range";
  if Vec.length v <> m.cols then invalid_arg "Mat.add_row_into: length mismatch";
  let base = i * m.cols in
  for j = 0 to m.cols - 1 do
    Vec.set v j (Vec.get v j +. m.data.(base + j))
  done

let is_zero m = Array.for_all (fun x -> x = 0.0) m.data
let has_inf m = Array.exists Cost.is_inf m.data
let min_value m = Array.fold_left Cost.min Cost.inf m.data

let interference m =
  init ~rows:m ~cols:m (fun i j -> if i = j then Cost.inf else Cost.zero)

let equal a b =
  a.rows = b.rows && a.cols = b.cols && Array.for_all2 Cost.equal a.data b.data

let approx_equal ?eps a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cost.approx_equal ?eps x y) a.data b.data

let map f m = { m with id = next_id (); data = Array.map f m.data }

let iteri f m =
  Array.iteri (fun k x -> f (k / m.cols) (k mod m.cols) x) m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Cost.pp)
      (Array.to_list (Vec.to_array (row m i)))
  done;
  Format.fprintf ppf "@]"
