(* Full-precision cost formatting so parsing recovers the exact float
   (Cost.pp is for human display and rounds). *)
let cost_str c =
  if Cost.is_inf c then "inf"
  else if Float.is_integer c && Float.abs c < 1e15 then
    Printf.sprintf "%.0f" c
  else Printf.sprintf "%.17g" c

let print ppf g =
  let n = Graph.capacity g and m = Graph.m g in
  Format.fprintf ppf "pbqp %d %d@\n" n m;
  (let dead =
     List.filter (fun u -> not (Graph.is_alive g u)) (List.init n Fun.id)
   in
   if dead <> [] then
     Format.fprintf ppf "dead%s@\n"
       (String.concat "" (List.map (Printf.sprintf " %d") dead)));
  List.iter
    (fun u ->
      let vec = Graph.cost g u in
      Format.fprintf ppf "v %d" u;
      Vec.iteri (fun _ c -> Format.fprintf ppf " %s" (cost_str c)) vec;
      Format.fprintf ppf "@\n")
    (Graph.vertices g);
  Graph.fold_edges
    (fun u v muv () ->
      Format.fprintf ppf "e %d %d" u v;
      Mat.iteri (fun _ _ c -> Format.fprintf ppf " %s" (cost_str c)) muv;
      Format.fprintf ppf "@\n")
    g ()

let to_string g = Format.asprintf "%a" print g

let of_string s =
  let fail lineno msg =
    invalid_arg (Printf.sprintf "Io.of_string: line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' s in
  let g = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      let toks =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "" && t <> "\r")
      in
      let int_tok t =
        match int_of_string_opt t with
        | Some k -> k
        | None -> fail lineno (Printf.sprintf "expected integer, got %S" t)
      in
      let cost_tok t =
        try Cost.of_string t
        with Invalid_argument _ ->
          fail lineno (Printf.sprintf "expected cost, got %S" t)
      in
      match toks with
      | [] -> ()
      | "pbqp" :: rest -> (
          if !g <> None then fail lineno "duplicate header";
          match rest with
          | [ n; m ] -> g := Some (Graph.create ~n:(int_tok n) ~m:(int_tok m))
          | _ -> fail lineno "header must be: pbqp <n> <m>")
      | "v" :: rest -> (
          match !g with
          | None -> fail lineno "vertex line before header"
          | Some g -> (
              match rest with
              | id :: costs ->
                  let id = int_tok id in
                  if id < 0 || id >= Graph.capacity g then
                    fail lineno "vertex id out of range";
                  let costs = List.map cost_tok costs in
                  if List.length costs <> Graph.m g then
                    fail lineno "wrong cost vector length";
                  Graph.set_cost g id (Vec.of_list (List.map Cost.to_float costs))
              | [] -> fail lineno "vertex line must be: v <id> <costs...>"))
      | "dead" :: ids -> (
          match !g with
          | None -> fail lineno "dead line before header"
          | Some g ->
              List.iter
                (fun tok ->
                  let id = int_tok tok in
                  if not (Graph.is_alive g id) then
                    fail lineno "dead vertex out of range or repeated"
                  else Graph.remove_vertex g id)
                ids)
      | "e" :: rest -> (
          match !g with
          | None -> fail lineno "edge line before header"
          | Some g -> (
              match rest with
              | u :: v :: entries ->
                  let u = int_tok u and v = int_tok v in
                  let m = Graph.m g in
                  if List.length entries <> m * m then
                    fail lineno "wrong matrix entry count";
                  let arr = Array.of_list (List.map cost_tok entries) in
                  let muv = Mat.init ~rows:m ~cols:m (fun i j -> arr.((i * m) + j)) in
                  if u = v || not (Graph.is_alive g u) || not (Graph.is_alive g v)
                  then fail lineno "bad edge endpoints"
                  else Graph.add_edge g u v muv
              | _ -> fail lineno "edge line must be: e <u> <v> <entries...>"))
      | tok :: _ -> fail lineno (Printf.sprintf "unknown directive %S" tok))
    lines;
  match !g with None -> invalid_arg "Io.of_string: missing header" | Some g -> g

(* --- solutions -------------------------------------------------------- *)

(* One line, shared by the label files (Core.Labels) and the serving
   wire format (Serve.Wire): "assign <c_0> ... <c_{n-1}>", unassigned
   vertices as -1. *)
let print_solution ppf sol =
  Format.fprintf ppf "assign";
  Array.iter (fun c -> Format.fprintf ppf " %d" c) (Solution.to_array sol);
  Format.fprintf ppf "@\n"

let solution_to_string sol = Format.asprintf "%a" print_solution sol

let solution_of_string s =
  let toks =
    String.split_on_char ' ' (String.trim s)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "" && t <> "\r")
  in
  let cols =
    match toks with
    | "assign" :: rest -> rest
    | _ -> invalid_arg "Io.solution_of_string: missing assign header"
  in
  Solution.of_array
    (Array.of_list
       (List.map
          (fun t ->
            match int_of_string_opt t with
            | Some c -> c
            | None ->
                invalid_arg
                  (Printf.sprintf "Io.solution_of_string: bad color %S" t))
          cols))

let to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
