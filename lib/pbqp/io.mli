(** Text serialization for PBQP graphs.

    Line-oriented format, whitespace-separated, ['#'] comments:
    {v
    pbqp <n> <m>
    v <id> <c_0> ... <c_{m-1}>
    e <u> <v> <a_00> <a_01> ... <a_{m-1,m-1}>   # row-major, u-major
    v}
    Infinite entries print as [inf].  Vertices with zero cost vectors and
    absent edges may be omitted. *)

val to_string : Graph.t -> string
(** Reduced graphs serialize too: dead vertex ids are recorded on a
    [dead ...] line and re-killed on parse. *)

val print : Format.formatter -> Graph.t -> unit

val of_string : string -> Graph.t
(** @raise Invalid_argument with a line-numbered message on malformed
    input. *)

val to_file : string -> Graph.t -> unit

val of_file : string -> Graph.t

(** {1 Solutions}

    One-line text form shared by the label files ({!Core.Labels}) and
    the serving wire format: [assign <c_0> ... <c_{n-1}>], with
    unassigned vertices as [-1]. *)

val print_solution : Format.formatter -> Solution.t -> unit
val solution_to_string : Solution.t -> string

val solution_of_string : string -> Solution.t
(** @raise Invalid_argument on malformed input. *)
