open Pbqp

type t = {
  graph : Graph.t;
  vreg_of_vertex : int array;
  vertex_of_vreg : (int, int) Hashtbl.t;
}

let vreg = function Ast.Virt v -> v | Ast.Phys _ -> assert false

let build machine info =
  (match Program.require_virtual info with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pbqp_build.build: " ^ e));
  (match Program.check_schedulable machine info with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pbqp_build.build: " ^ e));
  let m = machine.Machine.nregs in
  let vregs = Array.of_list info.Program.vregs in
  let n = Array.length vregs in
  let vertex_of_vreg = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace vertex_of_vreg v i) vregs;
  let vx v = Hashtbl.find vertex_of_vreg v in
  let g = Graph.create ~m ~n in
  (* vertex class constraints *)
  let allowed = Array.make_matrix n m true in
  Array.iter
    (fun instr ->
      List.iter
        (fun (r, cls) ->
          let i = vx (vreg r) in
          for c = 0 to m - 1 do
            if not (Machine.class_allowed machine cls c) then
              allowed.(i).(c) <- false
          done)
        (Ast.operand_classes instr))
    info.Program.instrs;
  for i = 0 to n - 1 do
    Graph.set_cost g i
      (Vec.init m (fun c -> if allowed.(i).(c) then Cost.zero else Cost.inf))
  done;
  (* diagonal-∞ (must-differ) pairs: interference + major-cycle rules *)
  let diff_pairs = Hashtbl.create 64 in
  let add_diff u v =
    if u <> v then begin
      let p = (min u v, max u v) in
      Hashtbl.replace diff_pairs p ()
    end
  in
  let live = Liveness.compute info in
  List.iter (fun (u, v) -> add_diff u v) (Liveness.interference_pairs info live);
  let ninstr = Array.length info.Program.instrs in
  let vdefs i =
    List.filter_map
      (function Ast.Virt v -> Some v | Ast.Phys _ -> None)
      (Ast.defs info.Program.instrs.(i))
  in
  let vuses i =
    List.filter_map
      (function Ast.Virt v -> Some v | Ast.Phys _ -> None)
      (Ast.uses info.Program.instrs.(i))
  in
  for i = 0 to ninstr - 1 do
    for j = i + 1 to ninstr - 1 do
      if Program.cycle_of machine i = Program.cycle_of machine j then begin
        (* write-once per cycle *)
        List.iter (fun d -> List.iter (add_diff d) (vdefs j)) (vdefs i);
        (* no read before a later write *)
        List.iter (fun u -> List.iter (add_diff u) (vdefs j)) (vuses i)
      end
    done
  done;
  (Hashtbl.iter
     (fun (u, v) () -> Graph.add_edge g (vx u) (vx v) (Mat.interference m))
     diff_pairs
   [@analyze.order_insensitive
     "distinct keys touch distinct graph edges and Graph.add_edge is \
      commutative across them"]);
  (* pairing constraints: sources of binary ALU ops *)
  let pairing =
    Mat.init ~rows:m ~cols:m (fun i j ->
        if Machine.pair_compatible machine i j then Cost.zero else Cost.inf)
  in
  let pair_seen = Hashtbl.create 16 in
  Array.iter
    (fun instr ->
      match Ast.pair_sources instr with
      | Some (r1, r2) ->
          let u = vreg r1 and v = vreg r2 in
          if u <> v then begin
            let p = (min u v, max u v) in
            if not (Hashtbl.mem pair_seen p) then begin
              Hashtbl.replace pair_seen p ();
              Graph.add_edge g (vx (fst p)) (vx (snd p)) pairing
            end
          end
          (* same vreg on both sides: pair_compatible is reflexive within a
             bank, so no vertex constraint is needed *)
      | None -> ())
    info.Program.instrs;
  { graph = g; vreg_of_vertex = vregs; vertex_of_vreg }

let assignment_of_solution t sol v =
  match Hashtbl.find_opt t.vertex_of_vreg v with
  | None -> None
  | Some i ->
      let c = Solution.get sol i in
      if c = Solution.unassigned then None else Some c

let liberty_profile t =
  let verts = Graph.vertices t.graph in
  let n = List.length verts in
  let low =
    List.fold_left
      (fun acc u -> if Graph.liberty t.graph u <= 4 then acc + 1 else acc)
      0 verts
  in
  (n, if n = 0 then 0.0 else float_of_int low /. float_of_int n)
