(** The self-play actor loop: one process (or domain) that receives
    parameter snapshots and episode assignments over {!Frame}d
    {!Msg} messages and streams finished episodes back.

    The actor owns no rng of its own: every episode's rng comes from the
    manifest-derived split stream of its actor id (see [Core.Train]'s
    rng discipline), so episode [G]'s tuples depend only on
    [(manifest, G)] and the snapshot generation it was played under —
    never on timing. *)

val run :
  config:Core.Train.config ->
  manifest:Manifest.t ->
  actor:int ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit
(** Serve until [Quit] or EOF on [in_fd].  Blocking IO throughout (the
    learner's {!Hub} side guarantees progress).  [config] must equal the
    learner's config — in the subprocess topology both parse the same
    command line.
    @raise Invalid_argument if an assignment arrives before the first
    snapshot. *)
