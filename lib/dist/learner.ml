open Core.Train

let source ~config ~actors ?shards ?(stale_decay = 1.0) ?(pipeline = 0)
    ?(on_shutdown = fun () -> ()) ~launch () ~manifest_seed ~resume_episodes
    ~best ~current =
  if actors <= 0 then invalid_arg "Learner.source: actors <= 0";
  if pipeline < 0 then invalid_arg "Learner.source: pipeline < 0";
  if not (stale_decay > 0.0 && stale_decay <= 1.0) then
    invalid_arg "Learner.source: stale_decay outside (0, 1]";
  let shards = match shards with Some s -> s | None -> actors in
  let manifest = Manifest.make ~seed:manifest_seed ~actors in
  let fds = Array.init actors (fun actor -> launch ~manifest ~actor) in
  let hub = Hub.create fds in
  let replay =
    Shards.create
      ~capacity:(max shards config.replay_capacity)
      ~shards
  in
  let epi = config.episodes_per_iteration in
  let next_index = ref resume_episodes in
  let cur_gen = ref 0 in
  let sent_versions = ref None in
  (* episodes that arrived ahead of their collection point (pipelining
     interleaves iterations on the wire), keyed by iteration *)
  let pending : (int, episode_result * int) Hashtbl.t = Hashtbl.create 16 in
  let stash iteration index r = Hashtbl.add pending iteration (r, index) in
  let receive_one () =
    let _, payload = Hub.recv hub in
    match Msg.to_learner_of_string payload with
    | Msg.Episode { iteration; index; actor; generation; failed; samples } ->
        stash iteration index
          {
            er_samples = samples;
            er_failed = failed;
            er_generation = generation;
            er_origin = actor;
          }
  in
  {
    src_pipeline = pipeline;
    src_broadcast =
      (fun ~generation ->
        cur_gen := generation;
        (* resend only when either net actually changed: equal
           [Pvnet.version] stamps imply bitwise-equal weights *)
        let versions = (Nn.Pvnet.version best, Nn.Pvnet.version current) in
        if !sent_versions <> Some versions then begin
          Hub.broadcast hub
            (Msg.to_actor_to_string
               (Msg.Snapshot
                  {
                    generation;
                    best = Nn.Pvnet.snapshot best;
                    current = Nn.Pvnet.snapshot current;
                  }));
          sent_versions := Some versions
        end);
    src_dispatch =
      (fun ~iteration ->
        let lo = !next_index in
        let hi = lo + epi in
        next_index := hi;
        Hub.broadcast hub
          (Msg.to_actor_to_string (Msg.Assign { iteration; lo; hi })));
    src_collect =
      (fun ~iteration ->
        while List.length (Hashtbl.find_all pending iteration) < epi do
          receive_one ()
        done;
        let rs = Hashtbl.find_all pending iteration in
        while Hashtbl.mem pending iteration do
          Hashtbl.remove pending iteration
        done;
        let arr = Array.of_list rs in
        (* merge in global episode order, independent of arrival order *)
        Array.sort (fun (_, i) (_, j) -> compare i j) arr;
        Array.map fst arr);
    src_add =
      (fun results ->
        Array.iter
          (fun r ->
            let lag = max 0 (!cur_gen - r.er_generation) in
            List.iter
              (Shards.add replay ~origin:r.er_origin ~lag)
              r.er_samples)
          results);
    src_seed =
      (fun ss ->
        List.iteri (fun i s -> Shards.add replay ~origin:i ~lag:0 s) ss);
    src_sample =
      (fun ~rng n ->
        let drawn = Shards.sample_batch ~rng replay n in
        let samples = List.map fst drawn in
        let weights =
          List.map
            (fun (_, lag) ->
              if lag <= 0 then 1.0
              else stale_decay ** float_of_int lag)
            drawn
        in
        (samples, Some (Array.of_list weights)));
    src_length = (fun () -> Shards.length replay);
    src_save = (fun path -> Shards.save replay path);
    src_load = (fun path -> Shards.load_into replay path);
    src_shutdown =
      (fun () ->
        (try
           Hub.broadcast hub (Msg.to_actor_to_string Msg.Quit);
           Hub.flush hub
         with _ -> ());
        Hub.close hub;
        on_shutdown ());
  }
