type pending = { p_bytes : Bytes.t; mutable p_off : int }

type conn = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_raw : Buffer.t;  (* incoming bytes not yet forming a complete frame *)
  c_inbox : string Queue.t;  (* complete frame payloads *)
  c_outq : pending Queue.t;  (* encoded frames awaiting write *)
  mutable c_eof : bool;
}

type t = { conns : conn array; mutable rr : int; chunk : Bytes.t }

let create fds =
  {
    conns =
      Array.map
        (fun (fd_in, fd_out) ->
          Unix.set_nonblock fd_in;
          if fd_out != fd_in then Unix.set_nonblock fd_out;
          {
            c_in = fd_in;
            c_out = fd_out;
            c_raw = Buffer.create 4096;
            c_inbox = Queue.create ();
            c_outq = Queue.create ();
            c_eof = false;
          })
        fds;
    rr = 0;
    chunk = Bytes.create 65536;
  }

(* Move any complete frames out of the raw byte buffer.  The buffer is
   rebuilt with the unconsumed tail — frames are consumed as soon as
   they complete, so the tail is at most one partial frame. *)
let parse_frames conn =
  let data = Buffer.contents conn.c_raw in
  let len = String.length data in
  let pos = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if len - !pos < Frame.header_bytes then continue_ := false
    else begin
      let n = Frame.decode_len (Bytes.unsafe_of_string data) !pos in
      Frame.check_len n;
      if len - !pos - Frame.header_bytes < n then continue_ := false
      else begin
        Queue.add (String.sub data (!pos + Frame.header_bytes) n) conn.c_inbox;
        pos := !pos + Frame.header_bytes + n
      end
    end
  done;
  if !pos > 0 then begin
    Buffer.clear conn.c_raw;
    Buffer.add_substring conn.c_raw data !pos (len - !pos)
  end

let would_block = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      true
  | _ -> false

let pump_read t conn =
  match Unix.read conn.c_in t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> conn.c_eof <- true
  | n ->
      Buffer.add_subbytes conn.c_raw t.chunk 0 n;
      parse_frames conn
  | exception e when would_block e -> ()

let pump_write conn =
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty conn.c_outq) do
    let p = Queue.peek conn.c_outq in
    let remaining = Bytes.length p.p_bytes - p.p_off in
    match Unix.write conn.c_out p.p_bytes p.p_off remaining with
    | 0 -> continue_ := false
    | n ->
        p.p_off <- p.p_off + n;
        if p.p_off = Bytes.length p.p_bytes then ignore (Queue.pop conn.c_outq)
    | exception e when would_block e -> continue_ := false
  done

let send t actor payload =
  let conn = t.conns.(actor) in
  Queue.add { p_bytes = Frame.encode payload; p_off = 0 } conn.c_outq;
  pump_write conn

let broadcast t payload =
  Array.iteri (fun i _ -> send t i payload) t.conns

(* One select round: wait for any readable actor or writable backlog,
   then pump both directions. *)
let pump_once t =
  let reads =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun c -> if c.c_eof then None else Some c.c_in)
            (Array.to_seq t.conns)))
  in
  let writes =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun c -> if Queue.is_empty c.c_outq then None else Some c.c_out)
            (Array.to_seq t.conns)))
  in
  if reads = [] && writes = [] then failwith "Dist.Hub: all actors disconnected";
  let r, w, _ = Unix.select reads writes [] (-1.0) in
  Array.iter
    (fun c ->
      if List.memq c.c_in r then pump_read t c;
      if List.memq c.c_out w then pump_write c)
    t.conns

let recv t =
  let n = Array.length t.conns in
  let rec find k =
    if k = n then None
    else
      let i = (t.rr + k) mod n in
      if not (Queue.is_empty t.conns.(i).c_inbox) then
        Some (i, Queue.pop t.conns.(i).c_inbox)
      else find (k + 1)
  in
  let rec loop () =
    match find 0 with
    | Some (i, payload) ->
        t.rr <- (i + 1) mod n;
        (i, payload)
    | None ->
        if
          Array.for_all
            (fun c -> c.c_eof && Queue.is_empty c.c_inbox)
            t.conns
        then failwith "Dist.Hub: actor closed connection";
        pump_once t;
        loop ()
  in
  loop ()

let flush t =
  while Array.exists (fun c -> not (Queue.is_empty c.c_outq)) t.conns do
    pump_once t
  done

let close t =
  Array.iter
    (fun c ->
      (try Unix.close c.c_in with Unix.Unix_error _ -> ());
      if c.c_out != c.c_in then
        try Unix.close c.c_out with Unix.Unix_error _ -> ())
    t.conns
