let run ~config ~manifest ~actor ~in_fd ~out_fd =
  let actors = manifest.Manifest.actors in
  let root = Manifest.actor_root manifest actor in
  let consumed = ref 0 in
  (* split streams are consumed strictly in episode order *)
  let next_episode_rng k =
    while !consumed < k do
      ignore (Random.State.split root : Random.State.t);
      incr consumed
    done;
    if !consumed <> k then
      invalid_arg "Dist.Actor: episode assignments regressed";
    incr consumed;
    Random.State.split root
  in
  let best = ref None and current = ref None in
  let generation = ref 0 in
  (* Mirror the learner's quantized-serving discipline: certification is
     deterministic in the weights, so when the learner serves int8 for a
     given parameter set, so does the actor (and episode tuples stay
     bitwise-equal to the in-process run). *)
  let install slot snap =
    match !slot with
    | None ->
        let net = Nn.Pvnet.snapshot_of_string snap in
        if config.Core.Train.quantize_serve then begin
          Nn.Pvnet.set_quantized_serve net true;
          ignore (Check.Quantcert.certify net : Check.Quantcert.report)
        end;
        slot := Some net
    | Some net ->
        Nn.Pvnet.load_snapshot net snap;
        if
          config.Core.Train.quantize_serve
          && not (Nn.Pvnet.quantized_certified net)
        then ignore (Check.Quantcert.certify net : Check.Quantcert.report)
  in
  let net_of slot =
    match !slot with
    | Some net -> net
    | None -> invalid_arg "Dist.Actor: assignment before first snapshot"
  in
  let running = ref true in
  while !running do
    match Frame.read in_fd with
    | None -> running := false
    | Some payload -> (
        match Msg.to_actor_of_string payload with
        | Msg.Quit -> running := false
        | Msg.Snapshot { generation = g; best = bs; current = cs } ->
            install best bs;
            install current cs;
            generation := g
        | Msg.Assign { iteration; lo; hi } ->
            let bnet = net_of best and cnet = net_of current in
            for index = lo to hi - 1 do
              if index mod actors = actor then begin
                let rng = next_episode_rng ((index - actor) / actors) in
                let samples, failed =
                  Core.Train.self_play_episode ~rng ~best:bnet ~current:cnet
                    config
                in
                Frame.write out_fd
                  (Msg.to_learner_to_string
                     (Msg.Episode
                        {
                          iteration;
                          index;
                          actor;
                          generation = !generation;
                          failed;
                          samples;
                        }))
              end
            done)
  done
