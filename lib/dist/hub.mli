(** The learner's side of the actor connections: a [select]-based,
    non-blocking frame pump.

    The learner broadcasts multi-hundred-KB snapshot frames while actors
    may simultaneously be blocked writing episode results back; if the
    learner wrote blockingly, both sides could fill their pipe buffers
    and deadlock.  The hub therefore keeps every fd non-blocking,
    queues outbound frames per connection, and {!recv} keeps draining
    readable fds {e and} flushing writable ones until a complete frame
    arrives — the learner never blocks on a write.  Actors use plain
    blocking {!Frame} IO; this asymmetry is safe because the hub
    guarantees the learner side always makes progress. *)

type t

val create : (Unix.file_descr * Unix.file_descr) array -> t
(** One [(read_from_actor, write_to_actor)] fd pair per actor, indexed
    by actor id.  Both fds are switched to non-blocking mode (they may
    be the same fd, e.g. a socketpair end). *)

val send : t -> int -> string -> unit
(** Queue one frame payload to an actor and flush opportunistically. *)

val broadcast : t -> string -> unit
(** {!send} to every actor. *)

val recv : t -> int * string
(** The next complete frame from any actor, as [(actor, payload)] —
    pumping pending writes while it waits.  Fair across actors (the
    scan origin rotates), though callers must not depend on arrival
    order for determinism.
    @raise Failure if every connection reaches EOF with no frame
    buffered (an actor died). *)

val flush : t -> unit
(** Block (via the pump) until all queued outbound frames are written. *)

val close : t -> unit
(** Close all fds; double-closes are ignored. *)
