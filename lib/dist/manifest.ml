type t = { seed : int; actors : int }

let make ~seed ~actors =
  if actors <= 0 then invalid_arg "Manifest.make: actors <= 0";
  { seed; actors }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Printf.fprintf oc "manifest %d %d\n" t.seed t.actors)

let load path =
  let ic = open_in path in
  let line =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try input_line ic
        with End_of_file -> invalid_arg "Manifest.load: empty file")
  in
  match String.split_on_char ' ' line with
  | [ "manifest"; seed; actors ] -> (
      match (int_of_string_opt seed, int_of_string_opt actors) with
      | Some seed, Some actors when actors > 0 -> { seed; actors }
      | _ -> invalid_arg "Manifest.load: malformed manifest")
  | _ -> invalid_arg "Manifest.load: malformed manifest"

let actor_root t i =
  if i < 0 || i >= t.actors then invalid_arg "Manifest.actor_root: bad actor id";
  Core.Train.actor_root ~manifest_seed:t.seed i
