(** The learner's sharded replay buffer.

    Bounded FIFO rings of training tuples, sharded by producing actor
    ([origin mod shards]) so ring maintenance per insertion touches one
    small shard.  Each slot carries the sample's staleness {e lag} (how
    many generations behind the learner the weights that played it
    were — fixed at insertion time) and a global sequence number that
    orders checkpoints.

    At [shards = 1] the structure is element-for-element the plain
    [Core.Replay] ring: [sample_batch] performs the identical
    newest-first index arithmetic per draw and [save] emits a
    byte-identical checkpoint file — the keystone of the [--actors 1] ≡
    in-process equality. *)

type t

val create : capacity:int -> shards:int -> t
(** Total [capacity] split as evenly as possible across [shards] rings.
    @raise Invalid_argument if [shards <= 0] or [capacity < shards]. *)

val add : t -> origin:int -> lag:int -> Nn.Pvnet.sample -> unit
(** Insert into shard [origin mod shards], evicting that shard's oldest
    sample when it is full. *)

val length : t -> int
val capacity : t -> int

val sample_batch :
  rng:Random.State.t -> t -> int -> (Nn.Pvnet.sample * int) list
(** [n] uniform draws with replacement (one rng draw per sample, as
    [Replay.sample_batch]), each returned with its staleness lag.  Draw
    [u] indexes the concatenation of the shards' newest-first
    sequences.  Empty list if the buffer is empty. *)

val save : t -> string -> unit
(** Checkpoint in the plain [Replay] text format, globally oldest-first
    (lags are not persisted: reloaded samples restart at lag 0). *)

val load_into : t -> string -> unit
(** Refill from a [Replay]-format checkpoint, oldest-first at lag 0,
    distributing samples round-robin across shards.
    @raise Invalid_argument on malformed files. *)
