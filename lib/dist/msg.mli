(** Frame payloads spoken between the learner and its actors (both
    directions ride the shared length-prefixed {!Frame} codec).

    Payloads are one text header line followed by an optional body:
    binary parameter snapshots ([Nn.Pvnet.snapshot]) in learner→actor
    frames, replay-format sample blocks ([Core.Replay.sample_to_string])
    in actor→learner frames.  Both ends are our own processes, so
    malformed payloads are bugs and raise [Invalid_argument]. *)

type to_actor =
  | Snapshot of { generation : int; best : string; current : string }
      (** new parameters for both net roles, stamped with the learner's
          staleness generation (the [Pvnet.version] stamps travel inside
          the snapshot bodies) *)
  | Assign of { iteration : int; lo : int; hi : int }
      (** play the global episodes [lo, hi) of [iteration] — each actor
          keeps the indices congruent to its id modulo the actor count *)
  | Quit

type to_learner =
  | Episode of {
      iteration : int;
      index : int;  (** global episode index *)
      actor : int;
      generation : int;  (** generation of the snapshot it played under *)
      failed : bool;
      samples : Nn.Pvnet.sample list;
    }

val to_actor_to_string : to_actor -> string
val to_actor_of_string : string -> to_actor
val to_learner_to_string : to_learner -> string
val to_learner_of_string : string -> to_learner
