let domains ~config =
  let spawned : unit Domain.t list ref = ref [] in
  let launch ~manifest ~actor =
    let learner_end, actor_end =
      Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    let d =
      Domain.spawn (fun () ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close actor_end with Unix.Unix_error _ -> ())
            (fun () ->
              Actor.run ~config ~manifest ~actor ~in_fd:actor_end
                ~out_fd:actor_end))
    in
    spawned := d :: !spawned;
    (learner_end, learner_end)
  in
  let join () = List.iter Domain.join !spawned in
  (launch, join)
