(** Actor launchers.

    The production topology spawns actor {e subprocesses} (bin/train
    re-executes itself with [--actor]); tests and benchmarks host actors
    in {e domains} of the same process over socketpairs — same wire
    protocol, no fork (the bench host runs everything on one core, and
    forking after domains have been spawned is hazardous). *)

val domains :
  config:Core.Train.config ->
  (manifest:Manifest.t -> actor:int -> Unix.file_descr * Unix.file_descr)
  * (unit -> unit)
(** [(launch, join)] for domain-hosted actors: [launch] starts one
    {!Actor.run} domain on the far end of a socketpair and returns the
    learner-side fds; pass [launch] to {!Learner.source} and [join] as
    its [on_shutdown].  [join] re-raises the first actor exception. *)
