type to_actor =
  | Snapshot of { generation : int; best : string; current : string }
  | Assign of { iteration : int; lo : int; hi : int }
  | Quit

type to_learner =
  | Episode of {
      iteration : int;
      index : int;
      actor : int;
      generation : int;
      failed : bool;
      samples : Nn.Pvnet.sample list;
    }

let split_header s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_field what v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Dist.Msg: malformed %s %S" what v)

let to_actor_to_string = function
  | Snapshot { generation; best; current } ->
      Printf.sprintf "snapshot %d %d\n%s%s" generation (String.length best)
        best current
  | Assign { iteration; lo; hi } -> Printf.sprintf "assign %d %d %d" iteration lo hi
  | Quit -> "quit"

let to_actor_of_string s =
  let line, body = split_header s in
  match String.split_on_char ' ' line with
  | [ "snapshot"; generation; blen ] ->
      let generation = int_field "generation" generation in
      let blen = int_field "snapshot length" blen in
      if blen < 0 || blen > String.length body then
        invalid_arg "Dist.Msg: snapshot body shorter than declared";
      Snapshot
        {
          generation;
          best = String.sub body 0 blen;
          current = String.sub body blen (String.length body - blen);
        }
  | [ "assign"; iteration; lo; hi ] ->
      Assign
        {
          iteration = int_field "iteration" iteration;
          lo = int_field "lo" lo;
          hi = int_field "hi" hi;
        }
  | [ "quit" ] -> Quit
  | _ -> invalid_arg ("Dist.Msg: unknown learner frame: " ^ line)

let to_learner_to_string = function
  | Episode { iteration; index; actor; generation; failed; samples } ->
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf "episode %d %d %d %d %d\n" iteration index actor
           generation
           (if failed then 1 else 0));
      List.iter
        (fun s -> Buffer.add_string b (Core.Replay.sample_to_string s))
        samples;
      Buffer.contents b

let to_learner_of_string s =
  let line, body = split_header s in
  match String.split_on_char ' ' line with
  | [ "episode"; iteration; index; actor; generation; failed ] ->
      Episode
        {
          iteration = int_field "iteration" iteration;
          index = int_field "index" index;
          actor = int_field "actor" actor;
          generation = int_field "generation" generation;
          failed = int_field "failed" failed <> 0;
          samples = Core.Replay.samples_of_string body;
        }
  | _ -> invalid_arg ("Dist.Msg: unknown actor frame: " ^ line)
