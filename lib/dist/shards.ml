type slot = { s_sample : Nn.Pvnet.sample; s_lag : int; s_seq : int }

type shard = {
  buf : slot option array;
  mutable head : int;  (* next write position *)
  mutable size : int;
}

type t = { shards : shard array; mutable seq : int }

let create ~capacity ~shards =
  if shards <= 0 then invalid_arg "Shards.create: shards <= 0";
  if capacity < shards then invalid_arg "Shards.create: capacity < shards";
  let base = capacity / shards and extra = capacity mod shards in
  {
    shards =
      Array.init shards (fun i ->
          let cap = base + if i < extra then 1 else 0 in
          { buf = Array.make cap None; head = 0; size = 0 });
    seq = 0;
  }

let capacity t =
  Array.fold_left (fun acc s -> acc + Array.length s.buf) 0 t.shards

let length t = Array.fold_left (fun acc s -> acc + s.size) 0 t.shards

let add t ~origin ~lag sample =
  let sh = t.shards.(origin mod Array.length t.shards) in
  sh.buf.(sh.head) <- Some { s_sample = sample; s_lag = lag; s_seq = t.seq };
  t.seq <- t.seq + 1;
  sh.head <- (sh.head + 1) mod Array.length sh.buf;
  sh.size <- min (sh.size + 1) (Array.length sh.buf)

(* The [u]-th element of the concatenation of the shards' newest-first
   sequences.  Within a shard the index arithmetic is exactly
   [Replay.sample_batch]'s, so at shards=1 draw [u] selects the very
   same element the plain ring would. *)
let nth_newest t u =
  let rec go i u =
    let sh = t.shards.(i) in
    if u < sh.size then
      let cap = Array.length sh.buf in
      match sh.buf.((sh.head - 1 - u + (2 * cap)) mod cap) with
      | Some s -> s
      | None -> assert false
    else go (i + 1) (u - sh.size)
  in
  go 0 u

let sample_batch ~rng t n =
  let total = length t in
  if total = 0 then []
  else
    List.init n (fun _ ->
        let s = nth_newest t (Random.State.int rng total) in
        (s.s_sample, s.s_lag))

let iter_oldest_first t f =
  (* flatten and order globally by insertion sequence *)
  let all = ref [] in
  Array.iter
    (fun sh ->
      for i = 0 to sh.size - 1 do
        let cap = Array.length sh.buf in
        match sh.buf.((sh.head - sh.size + i + (2 * cap)) mod cap) with
        | Some s -> all := s :: !all
        | None -> assert false
      done)
    t.shards;
  List.iter (fun s -> f s.s_sample)
    (List.sort (fun a b -> compare a.s_seq b.s_seq) !all)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "replay %d %d\n" (capacity t) (length t);
      let b = Buffer.create 1024 in
      iter_oldest_first t (fun s ->
          Buffer.clear b;
          Buffer.add_string b (Core.Replay.sample_to_string s);
          Buffer.output_buffer oc b))

let load_into t path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  in
  let header, body =
    match String.index_opt text '\n' with
    | None -> invalid_arg "Shards.load_into: truncated file"
    | Some i ->
        (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  in
  (match String.split_on_char ' ' header with
  | [ "replay"; _cap; _count ] -> ()
  | _ -> invalid_arg "Shards.load_into: bad header");
  List.iteri
    (fun i s -> add t ~origin:i ~lag:0 s)
    (Core.Replay.samples_of_string body)
