(** The distributed episode source: a [Core.Train.source] whose episodes
    are played by actor processes.

    Topology: the learner (the process running [Core.Train.run]) owns
    the optimizer, the arena and a {!Shards} replay buffer; [actors]
    self-play actors receive parameter snapshots and episode
    assignments through the {!Hub} and stream [(state, policy, value)]
    samples back.  Staleness is deterministic: with [pipeline = p],
    iteration [t+p]'s assignment enters each actor's FIFO stream before
    the snapshot that follows iteration [t]'s optimizer step, so its
    episodes are played under weights exactly [p] generations old and
    their samples are down-weighted by [stale_decay]^lag forever after
    ([lag <= 0] weighs exactly 1.0, so an unpipelined run trains
    bit-identically to the in-process loop). *)

val source :
  config:Core.Train.config ->
  actors:int ->
  ?shards:int ->
  ?stale_decay:float ->
  ?pipeline:int ->
  ?on_shutdown:(unit -> unit) ->
  launch:(manifest:Manifest.t -> actor:int -> Unix.file_descr * Unix.file_descr) ->
  unit ->
  manifest_seed:int ->
  resume_episodes:int ->
  best:Nn.Pvnet.t ->
  current:Nn.Pvnet.t ->
  Core.Train.source
(** A factory for [Core.Train.run]'s [make_source].  [launch] starts
    actor [i] (subprocess, domain, ...) and returns the learner-side
    [(read, write)] fds of its channel; [on_shutdown] runs after the
    hub closes (reap/join the actors there).  [shards] defaults to
    [actors], [stale_decay] to [1.0] (no down-weighting), [pipeline] to
    [0].
    @raise Invalid_argument if [actors <= 0], [pipeline < 0], or
    [stale_decay] is outside [(0, 1]]. *)
