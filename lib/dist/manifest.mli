(** The seeded actor manifest: the (seed, actor count) pair from which
    every per-actor episode rng stream derives (see [Core.Train]'s rng
    discipline).  The learner writes it before spawning actors; each
    actor subprocess reads it back, so a [--actors N] run is
    bit-reproducible from the manifest file alone. *)

type t = { seed : int; actors : int }

val make : seed:int -> actors:int -> t
(** @raise Invalid_argument if [actors <= 0]. *)

val save : t -> string -> unit
(** One text line: [manifest <seed> <actors>]. *)

val load : string -> t
(** @raise Invalid_argument on malformed files. *)

val actor_root : t -> int -> Random.State.t
(** Actor [i]'s episode-stream root ([Core.Train.actor_root]).
    @raise Invalid_argument unless [0 <= i < actors]. *)
